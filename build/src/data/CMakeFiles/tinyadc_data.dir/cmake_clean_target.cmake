file(REMOVE_RECURSE
  "libtinyadc_data.a"
)
