// Reproduces §IV-E (fault tolerance): accuracy drop under Stuck-At-0
// faults at 5/10/15 % for the TinyADC CP-pruned model vs a DCP-style
// (3.3× channel-pruned) baseline and the dense model, on the ImageNet-like
// tier.
//
// Expected shape (paper): TinyADC's drop is 0.5 / 1.8 / 3.9 points smaller
// than DCP's at 5 / 10 / 15 % — the deliberately G_off-parked cells are
// immune to SA0.
#include <cmath>

#include "fault/evaluate.hpp"

#include "bench_util.hpp"

namespace {

using namespace tinyadc;

std::unique_ptr<nn::Model> train_dense(const data::DatasetPair& data) {
  auto model = bench::bench_model("resnet18", data.train.num_classes);
  auto cfg = bench::bench_pipeline({16, 16});
  cfg.pretrain.epochs += 4;  // give the dense twin a solid baseline
  nn::Trainer trainer(*model, cfg.pretrain);
  trainer.fit(data.train, data.test);
  return model;
}

std::unique_ptr<nn::Model> train_dcp_like(const data::DatasetPair& data) {
  // DCP-style channel pruning at 3.3x: filter pruning without crossbar
  // alignment and without the CP constraint.
  auto model = bench::bench_model("resnet18", data.train.num_classes);
  auto cfg = bench::bench_pipeline({16, 16});
  auto specs = core::uniform_cp_specs(*model, 1, {16, 16});
  core::add_structured(specs, *model, 1.0 - 1.0 / 3.3, 0.0, {16, 16},
                       /*crossbar_aware=*/false);
  core::run_pipeline(*model, data.train, data.test, specs, cfg);
  return model;
}

std::unique_ptr<nn::Model> train_tinyadc(const data::DatasetPair& data) {
  auto model = bench::bench_model("resnet18", data.train.num_classes);
  auto cfg = bench::bench_pipeline({16, 16});
  auto specs = core::uniform_cp_specs(*model, 4, {16, 16});
  core::run_pipeline(*model, data.train, data.test, specs, cfg);
  return model;
}

}  // namespace

int main() {
  std::printf("=== Section IV-E: accuracy drop under Stuck-At-0 faults ===\n");
  std::printf("(imagenet-like tier, ResNet-18; mean over trials)\n\n");
  auto data = bench::bench_dataset("imagenet");

  auto dense = train_dense(data);
  auto dcp = train_dcp_like(data);
  auto tiny = train_tinyadc(data);

  xbar::MappingConfig map_cfg;
  map_cfg.dims = {16, 16};
  const int trials = bench::quick_mode() ? 2 : 5;

  std::printf("%-9s %12s %12s %14s %12s %14s\n", "SA0 rate", "dense drop",
              "DCP-like drop", "TinyADC drop", "advantage", "TinyADC+remap");
  bench::hr(80);
  for (double rate : {0.05, 0.10, 0.15}) {
    fault::FaultSpec spec;
    spec.rate = rate;
    spec.sa0_fraction = 1.0;
    const auto dres =
        fault::evaluate_under_faults(*dense, data.test, map_cfg, spec, trials);
    const auto pres =
        fault::evaluate_under_faults(*dcp, data.test, map_cfg, spec, trials);
    const auto tres =
        fault::evaluate_under_faults(*tiny, data.test, map_cfg, spec, trials);
    const auto rres = fault::evaluate_under_faults_remapped(
        *tiny, data.test, map_cfg, spec, trials);
    std::printf("%-9.0f%% %11.1fpp %12.1fpp %13.1fpp %10.1fpp %13.1fpp\n",
                100.0 * rate, 100.0 * dres.accuracy_drop(),
                100.0 * pres.accuracy_drop(), 100.0 * tres.accuracy_drop(),
                100.0 * (pres.accuracy_drop() - tres.accuracy_drop()),
                100.0 * rres.accuracy_drop());
    std::fflush(stdout);
  }
  std::printf("\n(paper shape: TinyADC's drop is smaller than DCP's at every "
              "rate, gap widening with rate: 0.5/1.8/3.9pp;\n the remap "
              "column is our extension — fault-aware wordline reordering "
              "recovers most residual damage)\n");
  return 0;
}
