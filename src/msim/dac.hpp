// DAC-side input bit streaming.
//
// With a v-bit DAC, an `input_bits`-bit activation code is applied to the
// wordlines over ⌈input_bits / v⌉ cycles, least-significant chunk first;
// the digital shift-and-add stage re-weights each cycle's ADC output by
// 2^(cycle · v). A 1-bit DAC (the paper's configuration) degenerates to
// plain bit-serial streaming.
#pragma once

#include <cstdint>
#include <vector>

namespace tinyadc::msim {

/// Splits an unsigned activation code into little-endian v-bit chunks.
std::vector<std::int32_t> dac_chunks(std::int32_t code, int input_bits,
                                     int dac_bits);

/// Number of streaming cycles for the given precisions.
int dac_cycles(int input_bits, int dac_bits);

}  // namespace tinyadc::msim
