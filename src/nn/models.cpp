#include "nn/models.hpp"

#include <cmath>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/pool.hpp"

namespace tinyadc::nn {

namespace {

/// Main + shortcut branches of one basic residual block.
LayerPtr basic_block(const std::string& path, std::int64_t in_ch,
                     std::int64_t out_ch, std::int64_t stride, Rng& rng) {
  auto main = std::make_unique<Sequential>(path + ".main");
  main->emplace<Conv2d>(path + ".conv1", in_ch, out_ch, 3, stride, 1,
                        /*bias=*/false, rng);
  main->emplace<BatchNorm2d>(path + ".bn1", out_ch);
  main->emplace<ReLU>(path + ".relu1");
  main->emplace<Conv2d>(path + ".conv2", out_ch, out_ch, 3, 1, 1,
                        /*bias=*/false, rng);
  main->emplace<BatchNorm2d>(path + ".bn2", out_ch);

  LayerPtr shortcut;
  if (stride != 1 || in_ch != out_ch) {
    auto sc = std::make_unique<Sequential>(path + ".shortcut");
    sc->emplace<Conv2d>(path + ".downsample", in_ch, out_ch, 1, stride, 0,
                        /*bias=*/false, rng);
    sc->emplace<BatchNorm2d>(path + ".bn_sc", out_ch);
    shortcut = std::move(sc);
  }
  return std::make_unique<Residual>(path, std::move(main), std::move(shortcut));
}

/// Bottleneck residual block (1×1 reduce, 3×3, 1×1 expand ×4).
LayerPtr bottleneck_block(const std::string& path, std::int64_t in_ch,
                          std::int64_t mid_ch, std::int64_t stride, Rng& rng) {
  const std::int64_t out_ch = mid_ch * 4;
  auto main = std::make_unique<Sequential>(path + ".main");
  main->emplace<Conv2d>(path + ".conv1", in_ch, mid_ch, 1, 1, 0,
                        /*bias=*/false, rng);
  main->emplace<BatchNorm2d>(path + ".bn1", mid_ch);
  main->emplace<ReLU>(path + ".relu1");
  main->emplace<Conv2d>(path + ".conv2", mid_ch, mid_ch, 3, stride, 1,
                        /*bias=*/false, rng);
  main->emplace<BatchNorm2d>(path + ".bn2", mid_ch);
  main->emplace<ReLU>(path + ".relu2");
  main->emplace<Conv2d>(path + ".conv3", mid_ch, out_ch, 1, 1, 0,
                        /*bias=*/false, rng);
  main->emplace<BatchNorm2d>(path + ".bn3", out_ch);

  LayerPtr shortcut;
  if (stride != 1 || in_ch != out_ch) {
    auto sc = std::make_unique<Sequential>(path + ".shortcut");
    sc->emplace<Conv2d>(path + ".downsample", in_ch, out_ch, 1, stride, 0,
                        /*bias=*/false, rng);
    sc->emplace<BatchNorm2d>(path + ".bn_sc", out_ch);
    shortcut = std::move(sc);
  }
  return std::make_unique<Residual>(path, std::move(main), std::move(shortcut));
}

void add_stem(Sequential& root, const ModelConfig& cfg, std::int64_t out_ch,
              Rng& rng) {
  if (cfg.imagenet_stem) {
    root.emplace<Conv2d>("stem.conv", cfg.in_channels, out_ch, 7, 2, 3,
                         /*bias=*/false, rng);
    root.emplace<BatchNorm2d>("stem.bn", out_ch);
    root.emplace<ReLU>("stem.relu");
    root.emplace<MaxPool2d>("stem.pool", 3, 2);
  } else {
    root.emplace<Conv2d>("stem.conv", cfg.in_channels, out_ch, 3, 1, 1,
                         /*bias=*/false, rng);
    root.emplace<BatchNorm2d>("stem.bn", out_ch);
    root.emplace<ReLU>("stem.relu");
  }
}

}  // namespace

std::int64_t scaled_channels(std::int64_t base, float mult) {
  auto c = static_cast<std::int64_t>(
      std::lround(static_cast<double>(base) * mult));
  c = std::max<std::int64_t>(c, 4);
  if (c % 2 != 0) ++c;
  return c;
}

std::unique_ptr<Model> resnet18(const ModelConfig& cfg) {
  Rng rng(cfg.seed);
  auto root = std::make_unique<Sequential>("resnet18");
  const std::int64_t widths[4] = {
      scaled_channels(64, cfg.width_mult), scaled_channels(128, cfg.width_mult),
      scaled_channels(256, cfg.width_mult),
      scaled_channels(512, cfg.width_mult)};
  add_stem(*root, cfg, widths[0], rng);
  std::int64_t in_ch = widths[0];
  for (int stage = 0; stage < 4; ++stage) {
    const std::int64_t out_ch = widths[stage];
    const std::int64_t stage_stride = stage == 0 ? 1 : 2;
    for (int block = 0; block < 2; ++block) {
      const std::string path =
          "layer" + std::to_string(stage + 1) + "." + std::to_string(block);
      root->add(basic_block(path, in_ch, out_ch,
                            block == 0 ? stage_stride : 1, rng));
      in_ch = out_ch;
    }
  }
  root->emplace<GlobalAvgPool>("gap");
  root->emplace<Linear>("fc", in_ch, cfg.num_classes, /*bias=*/true, rng);
  return std::make_unique<Model>("resnet18", std::move(root));
}

std::unique_ptr<Model> resnet50(const ModelConfig& cfg) {
  Rng rng(cfg.seed);
  auto root = std::make_unique<Sequential>("resnet50");
  const std::int64_t mids[4] = {
      scaled_channels(64, cfg.width_mult), scaled_channels(128, cfg.width_mult),
      scaled_channels(256, cfg.width_mult),
      scaled_channels(512, cfg.width_mult)};
  const int depths[4] = {3, 4, 6, 3};
  add_stem(*root, cfg, mids[0], rng);
  std::int64_t in_ch = mids[0];
  for (int stage = 0; stage < 4; ++stage) {
    const std::int64_t stage_stride = stage == 0 ? 1 : 2;
    for (int block = 0; block < depths[stage]; ++block) {
      const std::string path =
          "layer" + std::to_string(stage + 1) + "." + std::to_string(block);
      root->add(bottleneck_block(path, in_ch, mids[stage],
                                 block == 0 ? stage_stride : 1, rng));
      in_ch = mids[stage] * 4;
    }
  }
  root->emplace<GlobalAvgPool>("gap");
  root->emplace<Linear>("fc", in_ch, cfg.num_classes, /*bias=*/true, rng);
  return std::make_unique<Model>("resnet50", std::move(root));
}

std::unique_ptr<Model> vgg16(const ModelConfig& cfg) {
  Rng rng(cfg.seed);
  auto root = std::make_unique<Sequential>("vgg16");
  // Per-stage (width, conv count); 'pool' after each stage while spatial > 1.
  const std::int64_t stage_widths[5] = {
      scaled_channels(64, cfg.width_mult), scaled_channels(128, cfg.width_mult),
      scaled_channels(256, cfg.width_mult),
      scaled_channels(512, cfg.width_mult),
      scaled_channels(512, cfg.width_mult)};
  const int stage_convs[5] = {2, 2, 3, 3, 3};
  std::int64_t in_ch = cfg.in_channels;
  std::int64_t spatial = cfg.image_size;
  int conv_id = 0;
  for (int stage = 0; stage < 5; ++stage) {
    for (int i = 0; i < stage_convs[stage]; ++i, ++conv_id) {
      const std::string path = "features." + std::to_string(conv_id);
      root->emplace<Conv2d>(path + ".conv", in_ch, stage_widths[stage], 3, 1,
                            1, /*bias=*/false, rng);
      root->emplace<BatchNorm2d>(path + ".bn", stage_widths[stage]);
      root->emplace<ReLU>(path + ".relu");
      in_ch = stage_widths[stage];
    }
    if (spatial > 1) {
      root->emplace<MaxPool2d>("pool" + std::to_string(stage + 1), 2, 2);
      spatial /= 2;
    }
  }
  root->emplace<Flatten>("flatten");
  // Scaled stand-in for VGG's 4096-wide FC pair (see DESIGN.md §2).
  const std::int64_t hidden = scaled_channels(512, cfg.width_mult);
  const std::int64_t feat = in_ch * spatial * spatial;
  root->emplace<Linear>("classifier.fc1", feat, hidden, /*bias=*/true, rng);
  root->emplace<ReLU>("classifier.relu1");
  root->emplace<Dropout>("classifier.dropout", 0.2F, cfg.seed + 1);
  root->emplace<Linear>("classifier.fc2", hidden, cfg.num_classes,
                        /*bias=*/true, rng);
  return std::make_unique<Model>("vgg16", std::move(root));
}

std::unique_ptr<Model> build_model(const std::string& name,
                                   const ModelConfig& cfg) {
  if (name == "resnet18") return resnet18(cfg);
  if (name == "resnet50") return resnet50(cfg);
  if (name == "vgg16") return vgg16(cfg);
  TINYADC_CHECK(false, "unknown model '" << name << "'");
}

}  // namespace tinyadc::nn
