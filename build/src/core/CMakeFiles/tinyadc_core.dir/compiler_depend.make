# Empty compiler generated dependencies file for tinyadc_core.
# This may be replaced when dependencies are built.
