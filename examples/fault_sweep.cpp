// Scenario: reliability sweep under stuck-at faults (§IV-E).
//
// Trains one model twice — dense and TinyADC CP-pruned — then sweeps the
// SA0 fault rate and reports the accuracy drop of each. The pruned model's
// deliberately G_off-parked cells make it the more robust design.
//
// Run: ./build/examples/fault_sweep
#include <cstdio>

#include "core/pruner.hpp"
#include "data/synthetic.hpp"
#include "fault/evaluate.hpp"
#include "nn/models.hpp"

int main() {
  using namespace tinyadc;

  data::SyntheticSpec dspec = data::imagenet_like();
  dspec.image_size = 8;
  dspec.train_per_class = 16;
  dspec.test_per_class = 6;
  dspec.num_classes = 10;  // keep the example snappy
  const auto data = data::make_synthetic(dspec);

  nn::ModelConfig mcfg;
  mcfg.num_classes = dspec.num_classes;
  mcfg.image_size = dspec.image_size;
  mcfg.width_mult = 0.125F;

  // Dense reference.
  auto dense = nn::resnet18(mcfg);
  {
    nn::TrainConfig tc;
    tc.epochs = 12;
    tc.batch_size = 32;
    tc.sgd.lr = 0.05F;
    tc.sgd.total_epochs = 12;
    nn::Trainer trainer(*dense, tc);
    trainer.fit(data.train, data.test);
  }

  // TinyADC 4x CP-pruned twin.
  auto tiny = nn::resnet18(mcfg);
  core::PipelineConfig pcfg;
  pcfg.xbar = {16, 16};
  pcfg.pretrain.epochs = 12;
  pcfg.pretrain.batch_size = 32;
  pcfg.pretrain.sgd.lr = 0.05F;
  pcfg.pretrain.sgd.total_epochs = 12;
  pcfg.admm.epochs = 6;
  pcfg.admm.batch_size = 32;
  pcfg.admm.sgd.lr = 0.02F;
  pcfg.retrain.epochs = 6;
  pcfg.retrain.batch_size = 32;
  pcfg.retrain.sgd.lr = 0.01F;
  auto specs = core::uniform_cp_specs(*tiny, 4, pcfg.xbar);
  core::run_pipeline(*tiny, data.train, data.test, specs, pcfg);

  xbar::MappingConfig map_cfg;
  map_cfg.dims = pcfg.xbar;

  std::printf("%-10s %16s %16s %12s\n", "SA0 rate", "dense drop (%)",
              "TinyADC drop (%)", "advantage");
  for (double rate : {0.05, 0.10, 0.15}) {
    fault::FaultSpec fspec;
    fspec.rate = rate;
    fspec.sa0_fraction = 1.0;
    const auto dres =
        fault::evaluate_under_faults(*dense, data.test, map_cfg, fspec, 5);
    const auto tres =
        fault::evaluate_under_faults(*tiny, data.test, map_cfg, fspec, 5);
    std::printf("%-10.0f%% %15.1f %16.1f %11.1fpp\n", 100.0 * rate,
                100.0 * dres.accuracy_drop(), 100.0 * tres.accuracy_drop(),
                100.0 * (dres.accuracy_drop() - tres.accuracy_drop()));
  }
  return 0;
}
