file(REMOVE_RECURSE
  "CMakeFiles/analog_network_test.dir/analog_network_test.cpp.o"
  "CMakeFiles/analog_network_test.dir/analog_network_test.cpp.o.d"
  "analog_network_test"
  "analog_network_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analog_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
