// Tensor/checkpoint serialization round trips and malformed-input handling.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "tensor/ops.hpp"
#include "tensor/serialize.hpp"

namespace tinyadc {
namespace {

TEST(Serialize, TensorRoundTrip) {
  Rng rng(21);
  Tensor t = Tensor::randn({3, 4, 5}, rng);
  std::stringstream ss;
  write_tensor(ss, t);
  Tensor back = read_tensor(ss);
  EXPECT_EQ(back.shape(), t.shape());
  EXPECT_TRUE(allclose(back, t, 0.0F));
}

TEST(Serialize, ScalarAndEmptyShapes) {
  std::stringstream ss;
  write_tensor(ss, Tensor::full({1}, 3.0F));
  write_tensor(ss, Tensor::zeros({0}));
  Tensor a = read_tensor(ss);
  Tensor b = read_tensor(ss);
  EXPECT_FLOAT_EQ(a.at(0), 3.0F);
  EXPECT_EQ(b.numel(), 0);
}

TEST(Serialize, BadMagicRejected) {
  std::stringstream ss("XXXXgarbage");
  EXPECT_THROW(read_tensor(ss), CheckError);
}

TEST(Serialize, TruncatedPayloadRejected) {
  std::stringstream ss;
  write_tensor(ss, Tensor::ones({8}));
  std::string payload = ss.str();
  payload.resize(payload.size() - 4);
  std::stringstream truncated(payload);
  EXPECT_THROW(read_tensor(truncated), CheckError);
}

TEST(Serialize, RecordsRoundTripThroughFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tinyadc_records_test.bin")
          .string();
  Rng rng(5);
  std::vector<TensorRecord> records;
  records.push_back({"conv1.weight", Tensor::randn({4, 3, 3, 3}, rng)});
  records.push_back({"fc.bias", Tensor::randn({10}, rng)});
  save_records(path, records);
  const auto loaded = load_records(path);
  ASSERT_EQ(loaded.size(), 2U);
  EXPECT_EQ(loaded[0].name, "conv1.weight");
  EXPECT_EQ(loaded[1].name, "fc.bias");
  EXPECT_TRUE(allclose(loaded[0].value, records[0].value, 0.0F));
  EXPECT_TRUE(allclose(loaded[1].value, records[1].value, 0.0F));
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_records("/nonexistent/path/x.bin"), CheckError);
}

/// Builds a tensor header (magic, version, rank, dims) with no payload.
std::stringstream tensor_header(const std::vector<std::int64_t>& dims) {
  std::stringstream ss;
  ss.write("TADC", 4);
  const std::uint32_t version = 1;
  ss.write(reinterpret_cast<const char*>(&version), 4);
  const auto ndim = static_cast<std::uint32_t>(dims.size());
  ss.write(reinterpret_cast<const char*>(&ndim), 4);
  for (const auto d : dims) ss.write(reinterpret_cast<const char*>(&d), 8);
  return ss;
}

TEST(Serialize, AbsurdRankRejected) {
  std::stringstream ss = tensor_header({1, 1, 1, 1, 1, 1, 1, 1, 1});
  EXPECT_THROW(read_tensor(ss), CheckError);
}

TEST(Serialize, NegativeExtentRejected) {
  std::stringstream ss = tensor_header({4, -2});
  EXPECT_THROW(read_tensor(ss), CheckError);
}

TEST(Serialize, AbsurdDimProductRejectedBeforeAllocating) {
  // Each extent individually passes the < 2^32 bound, but the product is
  // ~2^93: the guard must fire before Tensor's allocation turns the corrupt
  // header into bad_alloc (or worse, an overflowed small allocation).
  std::stringstream ss =
      tensor_header({1LL << 31, 1LL << 31, 1LL << 31});
  EXPECT_THROW(read_tensor(ss), CheckError);
}

TEST(Serialize, TruncatedHeaderRejected) {
  std::stringstream ss = tensor_header({8, 8});
  std::string bytes = ss.str();
  bytes.resize(14);  // mid-rank field
  std::stringstream truncated(bytes);
  EXPECT_THROW(read_tensor(truncated), CheckError);
}

}  // namespace
}  // namespace tinyadc
