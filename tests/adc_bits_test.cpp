// Eq. 1 (required ADC bits): paper examples, edge cases, and the dominance
// property over the information-theoretic bound.
#include <gtest/gtest.h>

#include <tuple>

#include "tensor/check.hpp"
#include "xbar/adc_bits.hpp"

namespace tinyadc::xbar {
namespace {

TEST(CeilLog2, KnownValues) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(8), 3);
  EXPECT_EQ(ceil_log2(9), 4);
  EXPECT_EQ(ceil_log2(128), 7);
  EXPECT_THROW(ceil_log2(0), tinyadc::CheckError);
}

TEST(RequiredAdcBits, PaperSection2BExample) {
  // "8 activated rows, 1-bit DAC, 2-bit MLC → a 5-bit ADC is required."
  EXPECT_EQ(required_adc_bits(1, 2, 8), 5);
}

TEST(RequiredAdcBits, PaperFig2Example) {
  // 4× CP pruning on an 8×8 array: 2 active rows → 3-bit ADC replaces 5-bit.
  EXPECT_EQ(required_adc_bits(1, 2, 2), 3);
}

TEST(RequiredAdcBits, DenseBaseline128Rows) {
  // Pure Eq. 1 asks for 9 bits at 128 rows; the paper's 8-bit baseline
  // additionally relies on ISAAC's weight-flip encoding, modeled as the
  // one-bit design saving (see MappingConfig::isaac_encoding).
  EXPECT_EQ(required_adc_bits(1, 2, 128), 9);
}

TEST(RequiredAdcBits, Table1Reductions) {
  // Table I: CP rates 8/16/32/64× on 128-row crossbars reduce the 8-bit
  // baseline by 3/4/5/6 bits.
  const int dense = required_adc_bits(1, 2, 128);
  EXPECT_EQ(dense - required_adc_bits(1, 2, 128 / 8), 3);
  EXPECT_EQ(dense - required_adc_bits(1, 2, 128 / 16), 4);
  EXPECT_EQ(dense - required_adc_bits(1, 2, 128 / 32), 5);
  EXPECT_EQ(dense - required_adc_bits(1, 2, 128 / 64), 6);
  // And 2×/4× (the ImageNet rows) reduce by 1/2 bits.
  EXPECT_EQ(dense - required_adc_bits(1, 2, 64), 1);
  EXPECT_EQ(dense - required_adc_bits(1, 2, 32), 2);
}

TEST(RequiredAdcBits, MultiBitBranchOfEq1) {
  // v > 1 and w > 1 keeps the full v + w + log r.
  EXPECT_EQ(required_adc_bits(2, 2, 8), 7);
  EXPECT_EQ(required_adc_bits(1, 1, 8), 4);  // both 1: minus one
}

TEST(RequiredAdcBits, EdgeRows) {
  EXPECT_EQ(required_adc_bits(1, 2, 0), 0);  // fully-pruned column
  EXPECT_EQ(required_adc_bits(1, 2, 1), 2);  // single row: 1+2+0−1
}

TEST(RequiredAdcBits, MonotonicInRows) {
  int prev = 0;
  for (std::int64_t r = 1; r <= 256; ++r) {
    const int bits = required_adc_bits(1, 2, r);
    EXPECT_GE(bits, prev);
    prev = bits;
  }
}

TEST(ExactAdcBits, MatchesBruteForceCount) {
  // ceil(log2(max_sum+1)) for small cases.
  EXPECT_EQ(exact_adc_bits(1, 2, 8), 5);   // 24 + 1 → 5 bits
  EXPECT_EQ(exact_adc_bits(1, 1, 3), 2);   // 3 + 1 → 2 bits
  EXPECT_EQ(exact_adc_bits(2, 2, 1), 4);   // 9 + 1 → 4 bits
}

/// Dominance: the paper's formula is always a safe (≥ exact) sizing rule.
class AdcBitsDominance
    : public ::testing::TestWithParam<std::tuple<int, int, std::int64_t>> {};

TEST_P(AdcBitsDominance, PaperFormulaIsSafe) {
  const auto [v, w, r] = GetParam();
  EXPECT_GE(required_adc_bits(v, w, r), exact_adc_bits(v, w, r))
      << "v=" << v << " w=" << w << " r=" << r;
  // And never wasteful by more than 1 bit.
  EXPECT_LE(required_adc_bits(v, w, r), exact_adc_bits(v, w, r) + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdcBitsDominance,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values<std::int64_t>(1, 2, 3, 4, 7, 8, 16,
                                                       100, 128)));

}  // namespace
}  // namespace tinyadc::xbar
