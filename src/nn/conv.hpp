// 2-D convolution layer (im2col + GEMM implementation).
#pragma once

#include "nn/layer.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/rng.hpp"

namespace tinyadc::nn {

/// Conv2d with square stride/padding and optional bias.
///
/// Weight layout is (F, C, Kh, Kw) — the standard filter-major layout, which
/// flattens to the 2-D (C·Kh·Kw) × F matrix the crossbar mapper consumes
/// (each 2-D column = one filter, matching Fig. 3 of the paper).
///
/// Two execution paths:
///  * **batched** (default): the whole batch is lowered into one
///    (patch_rows × batch·patch_cols) matrix held in a persistent grow-only
///    workspace — one GEMM for forward, two for backward, no per-sample
///    tensor allocations. Bit-identical at any thread count (GEMM row tiles
///    are globally aligned; im2col/col2im writes are disjoint).
///  * **reference**: the original per-sample loop, retained as the golden
///    path for gradient checks and the bench before/after pairs
///    (set_batched(false) — mirrors MsimConfig::use_plan).
class Conv2d final : public Layer {
 public:
  /// Constructs with Kaiming initialization.
  Conv2d(std::string name, std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t padding,
         bool bias, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  LayerPtr clone() const override;

  /// Weight parameter, shape (F, C, Kh, Kw). Exposed mutably so the pruning
  /// framework can project/mask it.
  Param& weight() { return weight_; }
  const Param& weight() const { return weight_; }
  /// True if the layer has a bias term.
  bool has_bias() const { return has_bias_; }
  /// Bias parameter (requires has_bias()).
  Param& bias();

  /// Installs (or clears, with nullptr) the inference MVM backend.
  void set_mvm_hook(MvmHook hook) { mvm_hook_ = std::move(hook); }

  /// Selects the batched workspace path (default) or the per-sample
  /// reference path. Switching invalidates any cached training forward.
  void set_batched(bool batched);
  /// True when the batched path is active.
  bool batched() const { return use_batched_; }

  /// Frees all workspace storage (im2col matrix, GEMM staging, scratch).
  /// The next forward pass regrows it; call between phases to return the
  /// training footprint (e.g. train → analog-inference hand-off).
  void release_workspace();

  /// Geometry of the most recent forward pass (for workload accounting,
  /// e.g. MVMs per inference). Requires at least one forward() call.
  const ConvGeometry& last_geometry() const {
    TINYADC_CHECK(geom_.in_channels > 0,
                  "Conv2d " << name() << ": no forward pass recorded yet");
    return geom_;
  }

  std::int64_t in_channels() const { return in_channels_; }
  std::int64_t out_channels() const { return out_channels_; }
  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t padding() const { return padding_; }

 private:
  /// Tag for the uninitialized-weights constructor used by clone(): the
  /// replica's weights are overwritten right after construction, so the
  /// Kaiming normal-variate draw would be pure waste (clone runs once per
  /// fault-Monte-Carlo replica).
  struct Uninit {};
  Conv2d(Uninit, std::string name, std::int64_t in_channels,
         std::int64_t out_channels, std::int64_t kernel, std::int64_t stride,
         std::int64_t padding, bool bias);

  Tensor forward_batched(const Tensor& input, bool training);
  Tensor backward_batched(const Tensor& grad_output);
  Tensor forward_reference(const Tensor& input, bool training, bool use_hook);
  Tensor backward_reference(const Tensor& grad_output);
  void invalidate_cache();

  std::int64_t in_channels_, out_channels_, kernel_, stride_, padding_;
  bool has_bias_;
  Param weight_;
  Param bias_;
  MvmHook mvm_hook_;
  bool use_batched_ = true;

  // forward cache / persistent training workspace (grow-only across steps)
  ConvGeometry geom_{};
  Shape input_shape_;
  bool cache_valid_ = false;        ///< a training forward is pending backward
  Tensor ws_cols_;                  ///< batched im2col matrix [rows, N·p];
                                    ///< reused as dL/dcols during backward
  Tensor ws_out2d_;                 ///< GEMM staging [F, N·p] (fwd and bwd)
  GemmScratch ws_gemm_;             ///< transpose staging for the two
                                    ///< backward GEMMs
  std::vector<Tensor> cols_;        ///< reference path: per-sample matrices
};

}  // namespace tinyadc::nn
