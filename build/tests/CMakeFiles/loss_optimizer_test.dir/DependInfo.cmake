
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/loss_optimizer_test.cpp" "tests/CMakeFiles/loss_optimizer_test.dir/loss_optimizer_test.cpp.o" "gcc" "tests/CMakeFiles/loss_optimizer_test.dir/loss_optimizer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tinyadc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xbar/CMakeFiles/tinyadc_xbar.dir/DependInfo.cmake"
  "/root/repo/build/src/msim/CMakeFiles/tinyadc_msim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/tinyadc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/tinyadc_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/tinyadc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/tinyadc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tinyadc_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
