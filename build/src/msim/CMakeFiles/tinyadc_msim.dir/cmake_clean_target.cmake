file(REMOVE_RECURSE
  "libtinyadc_msim.a"
)
