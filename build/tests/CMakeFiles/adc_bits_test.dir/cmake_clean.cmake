file(REMOVE_RECURSE
  "CMakeFiles/adc_bits_test.dir/adc_bits_test.cpp.o"
  "CMakeFiles/adc_bits_test.dir/adc_bits_test.cpp.o.d"
  "adc_bits_test"
  "adc_bits_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adc_bits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
