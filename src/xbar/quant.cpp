#include "xbar/quant.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/check.hpp"

namespace tinyadc::xbar {

QuantParams fit_signed(float max_abs, int bits) {
  TINYADC_CHECK(bits >= 2 && bits <= 16, "signed quant bits must be in [2,16]");
  QuantParams p;
  p.bits = bits;
  const auto qmax = static_cast<float>((1 << (bits - 1)) - 1);
  p.scale = (max_abs > 0.0F) ? max_abs / qmax : 1.0F;
  return p;
}

QuantParams fit_unsigned(float max_value, int bits) {
  TINYADC_CHECK(bits >= 1 && bits <= 16, "unsigned quant bits must be in [1,16]");
  QuantParams p;
  p.bits = bits;
  const auto qmax = static_cast<float>((1 << bits) - 1);
  p.scale = (max_value > 0.0F) ? max_value / qmax : 1.0F;
  return p;
}

std::int32_t quantize_signed(float v, const QuantParams& p) {
  const std::int32_t qmax = (1 << (p.bits - 1)) - 1;
  const auto q = static_cast<std::int32_t>(std::lround(v / p.scale));
  return std::clamp(q, -qmax, qmax);
}

std::int32_t quantize_unsigned(float v, const QuantParams& p) {
  const std::int32_t qmax = (1 << p.bits) - 1;
  const auto q = static_cast<std::int32_t>(std::lround(v / p.scale));
  return std::clamp(q, 0, qmax);
}

float dequantize(std::int32_t q, const QuantParams& p) {
  return static_cast<float>(q) * p.scale;
}

int cells_per_weight(int weight_bits, int cell_bits) {
  TINYADC_CHECK(weight_bits >= 2, "weight_bits must be >= 2");
  TINYADC_CHECK(cell_bits >= 1, "cell_bits must be >= 1");
  const int magnitude_bits = weight_bits - 1;  // sign handled differentially
  return (magnitude_bits + cell_bits - 1) / cell_bits;
}

std::vector<int> slice_magnitude(std::int32_t magnitude, int cell_bits,
                                 int num_slices) {
  TINYADC_CHECK(magnitude >= 0, "magnitude must be non-negative");
  TINYADC_CHECK(num_slices >= 1, "need at least one slice");
  const std::int32_t mask = (1 << cell_bits) - 1;
  std::vector<int> slices(static_cast<std::size_t>(num_slices));
  std::int32_t rest = magnitude;
  for (int j = 0; j < num_slices; ++j) {
    slices[static_cast<std::size_t>(j)] = rest & mask;
    rest >>= cell_bits;
  }
  TINYADC_CHECK(rest == 0, "magnitude " << magnitude << " does not fit "
                                        << num_slices << " x " << cell_bits
                                        << "-bit slices");
  return slices;
}

std::int32_t unslice_magnitude(const std::vector<int>& slices, int cell_bits) {
  std::int32_t v = 0;
  for (std::size_t j = slices.size(); j > 0; --j) {
    v = (v << cell_bits) | slices[j - 1];
  }
  return v;
}

}  // namespace tinyadc::xbar
