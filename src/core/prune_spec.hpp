// Per-layer pruning configuration and the combined projection.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/layout.hpp"
#include "core/projection.hpp"

namespace tinyadc::artifact {
class SectionWriter;
class SectionReader;
}  // namespace tinyadc::artifact

namespace tinyadc::core {

/// What to prune in one layer. Produced by the spec builders in pruner.hpp
/// and consumed by the ADMM regularizer's projection step.
struct LayerPruneSpec {
  std::string layer_name;        ///< for reports
  bool enabled = true;           ///< false ⇒ layer left dense (e.g. first conv)
  std::int64_t cp_keep = 0;      ///< ≤ this many non-zeros per block column (0 = no CP)
  std::int64_t remove_filters = 0;  ///< whole 2-D columns to remove (crossbar-rounded)
  std::int64_t remove_shapes = 0;   ///< whole 2-D rows to remove (crossbar-rounded)

  /// True if this spec constrains anything.
  bool active() const {
    return enabled && (cp_keep > 0 || remove_filters > 0 || remove_shapes > 0);
  }
};

/// The rows/columns a combined projection chose to remove structurally.
/// This selection defines the reform geometry (which rows compact away
/// before crossbar tiling), so it must travel with the pruned weights all
/// the way to the mapper — re-deriving it from zeros alone is ambiguous
/// once CP pruning has created incidental all-zero rows.
struct StructuralSelection {
  std::vector<std::int64_t> rows;  ///< pruned filter shapes, ascending
  std::vector<std::int64_t> cols;  ///< pruned filters, ascending
};

/// Artifact (de)serialization of one layer's prune spec. The spec travels
/// with deployed weights so a redeployment never re-derives what was pruned.
void serialize(const LayerPruneSpec& spec, artifact::SectionWriter& w);
LayerPruneSpec deserialize_prune_spec(artifact::SectionReader& r);

/// Artifact (de)serialization of a structural selection (reform geometry).
void serialize(const StructuralSelection& selection,
               artifact::SectionWriter& w);
StructuralSelection deserialize_selection(artifact::SectionReader& r);

/// Euclidean projection onto the combined constraint set of `spec`:
/// filter-shape rows first, then filter columns, then the CP constraint on
/// the *reformed* geometry — the ordering §III-D requires (shape pruning
/// must precede CP pruning). Returns the structural selection made.
StructuralSelection project_combined_tracked(MatrixRef m,
                                             const LayerPruneSpec& spec,
                                             CrossbarDims dims);

/// project_combined_tracked without the selection (convenience for callers
/// that do not map afterwards, e.g. the ADMM Z-update).
void project_combined(MatrixRef m, const LayerPruneSpec& spec,
                      CrossbarDims dims);

/// True iff `m` satisfies all constraints in `spec` under the reform
/// geometry of `selection` (pass the selection returned by the projection).
bool satisfies_combined(ConstMatrixRef m, const LayerPruneSpec& spec,
                        CrossbarDims dims,
                        const StructuralSelection& selection);

/// Heuristic overload: recovers the selection as the first remove_shapes /
/// remove_filters all-zero rows/columns. Exact for CP-only and filter-only
/// specs; for specs that combine shape pruning with CP it can disagree with
/// the projection's actual selection when CP created extra all-zero rows.
bool satisfies_combined(ConstMatrixRef m, const LayerPruneSpec& spec,
                        CrossbarDims dims);

}  // namespace tinyadc::core
