// google-benchmark microbenchmarks of the performance-critical kernels:
// GEMM, im2col, the CP projection, crossbar mapping and the analog MVM.
// These bound how large a model the training/simulation benches can afford.
//
// Invoked with `--json <path>` (or TINYADC_BENCH_JSON=<path>) the binary
// instead runs a self-timed thread sweep of the parallelized kernels at
// 1/2/N threads, verifies every output is bit-identical to the 1-thread
// run (the runtime's determinism contract), and writes the timings as JSON.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>

#include "bench_util.hpp"
#include "core/projection.hpp"
#include "fault/evaluate.hpp"
#include "msim/analog_mvm.hpp"
#include "runtime/parallel.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"

namespace {

using namespace tinyadc;

void BM_Gemm(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(a, false, b, false, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Im2col(benchmark::State& state) {
  const auto size = state.range(0);
  Rng rng(2);
  Tensor img = Tensor::randn({16, size, size}, rng);
  ConvGeometry g{16, size, size, 3, 3, 1, 1};
  for (auto _ : state) {
    Tensor cols = im2col(img, g);
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2col)->Arg(16)->Arg(32);

void BM_CpProjection(benchmark::State& state) {
  const auto rows = state.range(0);
  Rng rng(3);
  std::vector<float> data(static_cast<std::size_t>(rows * 512));
  for (auto _ : state) {
    state.PauseTiming();
    for (auto& v : data) v = rng.normal(0.0F, 1.0F);
    state.ResumeTiming();
    core::project_column_proportional({data.data(), rows, 512}, {128, 128},
                                      8);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_CpProjection)->Arg(128)->Arg(1152)->Arg(4608);

void BM_MapMatrix(benchmark::State& state) {
  const auto rows = state.range(0);
  Rng rng(4);
  Tensor m = Tensor::randn({rows, 512}, rng);
  xbar::MappingConfig cfg;
  for (auto _ : state) {
    auto layer = xbar::map_matrix(m, "bench", cfg);
    benchmark::DoNotOptimize(layer.blocks.data());
  }
}
BENCHMARK(BM_MapMatrix)->Arg(1152)->Arg(4608);

void BM_AnalogMvm(benchmark::State& state) {
  const auto rows = state.range(0);
  Rng rng(5);
  Tensor m = Tensor::randn({rows, 64}, rng);
  xbar::MappingConfig cfg;
  cfg.dims = {128, 128};
  const auto layer = xbar::map_matrix(m, "bench", cfg);
  msim::AnalogLayerSim sim(layer, {});
  std::vector<std::int32_t> x(static_cast<std::size_t>(rows));
  for (auto& v : x) v = static_cast<std::int32_t>(rng.uniform_int(256));
  for (auto _ : state) {
    auto y = sim.mvm(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_AnalogMvm)->Arg(128)->Arg(512);

/// A 512×64 matrix CP-projected to `keep` active rows per 128-row crossbar
/// column — the sparsity structure the TinyADC framework itself creates.
Tensor cp_bench_matrix(std::int64_t keep) {
  constexpr std::int64_t rows = 512, cols = 64;
  Rng rng(6);
  std::vector<float> store(static_cast<std::size_t>(rows * cols));
  for (auto& v : store) v = rng.normal(0.0F, 1.0F);
  core::project_column_proportional({store.data(), rows, cols}, {128, 128},
                                    keep);
  Tensor m({rows, cols});
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t c = 0; c < cols; ++c)
      m.at(r, c) = store[static_cast<std::size_t>(c * rows + r)];
  return m;
}

/// Plan-executor selection for the CP benchmarks: 0 = legacy dense row
/// scan, 1..4 = packed plan with PlanKernel kAuto/kAos/kSoa/kBitslice.
msim::MsimConfig cp_bench_sim_config(std::int64_t executor) {
  msim::MsimConfig sim_cfg;
  if (executor == 0) {
    sim_cfg.use_plan = false;
  } else {
    sim_cfg.plan_kernel = static_cast<msim::PlanKernel>(executor - 1);
  }
  return sim_cfg;
}

/// Analog MVM at CP sparsity l = range(0) of r = 128 crossbar rows across
/// the plan executors (range(1): see cp_bench_sim_config).
void BM_AnalogMvmCp(benchmark::State& state) {
  const Tensor m = cp_bench_matrix(state.range(0));
  xbar::MappingConfig cfg;
  cfg.dims = {128, 128};
  const auto layer = xbar::map_matrix(m, "bench", cfg);
  msim::AnalogLayerSim sim(layer, cp_bench_sim_config(state.range(1)));
  Rng rng(7);
  std::vector<std::int32_t> x(512);
  for (auto& v : x) v = static_cast<std::int32_t>(rng.uniform_int(256));
  for (auto _ : state) {
    auto y = sim.mvm(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_AnalogMvmCp)
    ->ArgNames({"l", "exec"})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({16, 3})
    ->Args({16, 4})
    ->Args({4, 1})
    ->Args({128, 1});

// ---------------------------------------------------------------------------
// Thread sweep with bit-identity verification (--json / TINYADC_BENCH_JSON).
// ---------------------------------------------------------------------------

using bench::fnv1a;

/// A sweep kernel: does a fixed amount of work and returns a digest of its
/// output bytes. The same kernel is run at each thread count; digests must
/// match the 1-thread run exactly.
struct SweepKernel {
  std::string name;
  std::function<std::uint64_t()> run;
};

std::vector<SweepKernel> make_sweep_kernels() {
  std::vector<SweepKernel> kernels;

  kernels.push_back({"gemm_256", [] {
    Rng rng(1);
    const Tensor a = Tensor::randn({256, 256}, rng);
    const Tensor b = Tensor::randn({256, 256}, rng);
    Tensor c({256, 256});
    std::uint64_t h = 0;
    for (int rep = 0; rep < 8; ++rep) {
      gemm(a, false, b, false, c);
      h ^= fnv1a(c.data(), sizeof(float) * static_cast<std::size_t>(c.numel()));
    }
    return h;
  }});

  // The random fill is hoisted into a shared template: the serial RNG draw
  // (2.36M normal variates) used to dominate the kernel's time and masked
  // the projection's own scaling. A memcpy restores the input per run.
  {
    auto tmpl = std::make_shared<std::vector<float>>(
        static_cast<std::size_t>(4608) * 512);
    Rng rng(3);
    for (auto& v : *tmpl) v = rng.normal(0.0F, 1.0F);
    kernels.push_back({"cp_projection_4608x512", [tmpl] {
      std::vector<float> data(*tmpl);
      core::project_column_proportional({data.data(), 4608, 512}, {128, 128},
                                        8);
      return fnv1a(data.data(), sizeof(float) * data.size());
    }});
  }

  kernels.push_back({"analog_mvm_512", [] {
    Rng rng(5);
    Tensor m = Tensor::randn({512, 64}, rng);
    xbar::MappingConfig cfg;
    cfg.dims = {128, 128};
    const auto layer = xbar::map_matrix(m, "bench", cfg);
    msim::AnalogLayerSim sim(layer, {});
    std::vector<std::int32_t> x(512);
    for (auto& v : x) v = static_cast<std::int32_t>(rng.uniform_int(256));
    std::uint64_t h = 0;
    for (int rep = 0; rep < 16; ++rep) {
      const auto y = sim.mvm(x);
      h ^= fnv1a(y.data(), sizeof(y[0]) * y.size());
    }
    return h;
  }});

  // The acceptance case (ISSUE 3, re-cut by ISSUE 7): analog MVM at CP
  // sparsity l = 16 of r = 128 through every executor. The fixture (matrix
  // generation, mapping, plan compilation) is hoisted out of the timed
  // region — these rows measure exactly 16 mvm() calls, i.e. the executor
  // itself, which is what the SoA/bit-slice work optimizes. All five rows
  // compute the same product, so their digests must agree across *kernels*
  // as well as thread counts (checked in run_thread_sweep).
  {
    struct CpCase {
      const char* name;
      std::int64_t executor;  // cp_bench_sim_config encoding
    };
    const CpCase cases[] = {
        {"analog_mvm_cp16_dense", 0},    {"analog_mvm_cp16_plan", 1},
        {"analog_mvm_cp16_aos", 2},      {"analog_mvm_cp16_soa", 3},
        {"analog_mvm_cp16_bitslice", 4},
    };
    const Tensor m = cp_bench_matrix(16);
    xbar::MappingConfig cfg;
    cfg.dims = {128, 128};
    auto layer =
        std::make_shared<xbar::MappedLayer>(xbar::map_matrix(m, "bench", cfg));
    auto x = std::make_shared<std::vector<std::int32_t>>(512);
    Rng rng(7);
    for (auto& v : *x) v = static_cast<std::int32_t>(rng.uniform_int(256));
    for (const auto& c : cases) {
      auto sim = std::make_shared<msim::AnalogLayerSim>(
          *layer, cp_bench_sim_config(c.executor));
      kernels.push_back({c.name, [sim, x, layer] {
        std::uint64_t h = 0;
        for (int rep = 0; rep < 16; ++rep) {
          const auto y = sim->mvm(*x);
          h ^= fnv1a(y.data(), sizeof(y[0]) * y.size());
        }
        return h;
      }});
    }
  }

  return kernels;
}

int run_thread_sweep(const std::string& json_path) {
  // Fault Monte-Carlo fixtures are built once: evaluate_under_faults leaves
  // the model's weights untouched (trials run on clones).
  data::DatasetPair ds = bench::bench_dataset("cifar10");
  auto model = bench::bench_model("resnet18", 10);
  const xbar::MappingConfig mapping = bench::paper_mapping();

  auto kernels = make_sweep_kernels();
  kernels.push_back({"fault_run_trials_4", [&] {
    fault::FaultSpec spec;
    const fault::FaultTrialResult r =
        fault::evaluate_under_faults(*model, ds.test, mapping, spec, 4);
    const double vals[3] = {r.clean_accuracy, r.mean_accuracy,
                            r.min_accuracy};
    return fnv1a(vals, sizeof(vals));
  }});

  const unsigned hw = std::thread::hardware_concurrency();
  std::vector<int> thread_counts{1, 2,
                                 static_cast<int>(hw > 4 ? hw : 4U)};

  std::vector<bench::KernelTiming> rows;
  bool all_identical = true;
  // The analog_mvm_cp16_* rows compute the identical product through
  // different executors — their digests must also agree with each other.
  std::uint64_t cp16_digest = 0;
  bool cp16_seen = false;
  for (const auto& kernel : kernels) {
    std::uint64_t baseline = 0;
    for (const int threads : thread_counts) {
      runtime::set_thread_count(threads);
      const auto t0 = std::chrono::steady_clock::now();
      const std::uint64_t digest = kernel.run();
      const auto t1 = std::chrono::steady_clock::now();
      if (threads == 1) baseline = digest;
      bench::KernelTiming row;
      row.kernel = kernel.name;
      row.threads = threads;
      row.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
      row.identical = digest == baseline;
      all_identical = all_identical && row.identical;
      std::printf("%-24s threads=%-2d %10.3f ms  %s\n", row.kernel.c_str(),
                  row.threads, row.ms,
                  row.identical ? "bit-identical" : "MISMATCH");
      rows.push_back(row);
    }
    if (kernel.name.rfind("analog_mvm_cp16", 0) == 0) {
      if (!cp16_seen) {
        cp16_digest = baseline;
        cp16_seen = true;
      } else if (baseline != cp16_digest) {
        std::printf("%-24s digest DIVERGES from the other cp16 executors\n",
                    kernel.name.c_str());
        all_identical = false;
      }
    }
  }
  runtime::set_thread_count(0);  // restore default resolution

  if (!bench::write_bench_json(json_path, "bench_kernels", rows)) return 1;
  std::printf("wrote %s\n", json_path.c_str());
  return all_identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = tinyadc::bench::bench_json_path(argc, argv);
  if (!json_path.empty()) return run_thread_sweep(json_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
