#include "artifact/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "tensor/check.hpp"

namespace tinyadc::artifact {

std::shared_ptr<MappedFile> MappedFile::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  TINYADC_CHECK(fd >= 0, "cannot open " << path << " for mapping: "
                                        << std::strerror(errno));
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    TINYADC_CHECK(false, "cannot stat " << path << ": " << std::strerror(err));
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    TINYADC_CHECK(false, "artifact " << path << " is empty, cannot map");
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  const int map_err = errno;
  ::close(fd);  // the mapping keeps its own reference to the file
  TINYADC_CHECK(base != MAP_FAILED, "mmap of " << path << " (" << size
                                               << " bytes) failed: "
                                               << std::strerror(map_err));
  auto f = std::shared_ptr<MappedFile>(new MappedFile());
  f->base_ = base;
  f->size_ = size;
  f->path_ = path;
  return f;
}

MappedFile::~MappedFile() {
  if (base_ != nullptr) ::munmap(base_, size_);
}

void MappedFile::advise_willneed(std::uint64_t offset,
                                 std::uint64_t length) const {
  if (base_ == nullptr || offset >= size_) return;
  length = std::min<std::uint64_t>(length, size_ - offset);
  if (length == 0) return;
  // madvise wants page-aligned addresses; round the range outward.
  const auto page = static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
  const std::uint64_t begin = offset / page * page;
  const std::uint64_t end = offset + length;
  ::madvise(static_cast<char*>(base_) + begin,
            static_cast<std::size_t>(end - begin), MADV_WILLNEED);
}

}  // namespace tinyadc::artifact
