#include "serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace tinyadc {

namespace {

constexpr char kMagic[4] = {'T', 'A', 'D', 'C'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  TINYADC_CHECK(static_cast<bool>(is), "unexpected end of stream");
  return v;
}

void write_string(std::ostream& os, const std::string& s) {
  write_pod(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const auto n = read_pod<std::uint32_t>(is);
  TINYADC_CHECK(n < (1U << 20), "implausible string length " << n);
  std::string s(n, '\0');
  is.read(s.data(), n);
  TINYADC_CHECK(static_cast<bool>(is), "unexpected end of stream");
  return s;
}

}  // namespace

void write_tensor(std::ostream& os, const Tensor& t) {
  os.write(kMagic, sizeof(kMagic));
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint32_t>(t.ndim()));
  for (auto d : t.shape()) write_pod(os, d);
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

Tensor read_tensor(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof(magic));
  TINYADC_CHECK(static_cast<bool>(is) && std::memcmp(magic, kMagic, 4) == 0,
                "bad tensor magic");
  const auto version = read_pod<std::uint32_t>(is);
  TINYADC_CHECK(version == kVersion, "unsupported tensor version " << version);
  const auto ndim = read_pod<std::uint32_t>(is);
  TINYADC_CHECK(ndim <= 8, "implausible tensor rank " << ndim);
  Shape shape(ndim);
  std::uint64_t numel = 1;
  for (auto& d : shape) {
    d = read_pod<std::int64_t>(is);
    TINYADC_CHECK(d >= 0 && d < (1LL << 32), "implausible extent " << d);
    // Overflow-safe product guard: reject before multiplying, and before
    // Tensor's allocation can turn a corrupt header into bad_alloc.
    TINYADC_CHECK(d == 0 || numel <= (1ULL << 33) / static_cast<std::uint64_t>(d),
                  "implausible tensor element count");
    numel *= static_cast<std::uint64_t>(d);
  }
  Tensor t(shape);
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  TINYADC_CHECK(static_cast<bool>(is), "truncated tensor payload");
  return t;
}

void save_records(const std::string& path,
                  const std::vector<TensorRecord>& records) {
  std::ofstream os(path, std::ios::binary);
  TINYADC_CHECK(os.is_open(), "cannot open " << path << " for writing");
  write_pod(os, static_cast<std::uint32_t>(records.size()));
  for (const auto& r : records) {
    write_string(os, r.name);
    write_tensor(os, r.value);
  }
  TINYADC_CHECK(static_cast<bool>(os), "write failure on " << path);
}

std::vector<TensorRecord> load_records(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  TINYADC_CHECK(is.is_open(), "cannot open " << path << " for reading");
  const auto n = read_pod<std::uint32_t>(is);
  TINYADC_CHECK(n < (1U << 20), "implausible record count " << n);
  std::vector<TensorRecord> records;
  records.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    TensorRecord r;
    r.name = read_string(is);
    r.value = read_tensor(is);
    records.push_back(std::move(r));
  }
  return records;
}

}  // namespace tinyadc
