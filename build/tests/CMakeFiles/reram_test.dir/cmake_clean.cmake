file(REMOVE_RECURSE
  "CMakeFiles/reram_test.dir/reram_test.cpp.o"
  "CMakeFiles/reram_test.dir/reram_test.cpp.o.d"
  "reram_test"
  "reram_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
