# Empty dependencies file for reram_test.
# This may be replaced when dependencies are built.
