// Composite layers: sequential chains and residual blocks.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "nn/layer.hpp"

namespace tinyadc::nn {

/// Chains child layers; backward runs them in reverse.
class Sequential : public Layer {
 public:
  explicit Sequential(std::string name) : Layer(std::move(name)) {}

  /// Appends a layer and returns a typed raw observer pointer to it.
  template <typename L>
  L* add(std::unique_ptr<L> layer) {
    L* raw = layer.get();
    children_.push_back(std::move(layer));
    return raw;
  }

  /// Constructs a child in place.
  template <typename L, typename... Args>
  L* emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void visit(const std::function<void(Layer&)>& fn) override;
  LayerPtr clone() const override;

  /// Runs only children [begin, end) — the pipeline-stage slice of the
  /// chain. forward(x, t) == forward_range(x, 0, size(), t) by
  /// construction, so splitting a forward at any child boundary never
  /// changes what each child computes (the determinism basis of the
  /// stage-parallel executor).
  Tensor forward_range(const Tensor& input, std::size_t begin,
                       std::size_t end, bool training);

  /// Number of direct children.
  std::size_t size() const { return children_.size(); }
  /// Direct child access.
  Layer& child(std::size_t i) { return *children_.at(i); }

 private:
  std::vector<LayerPtr> children_;
};

/// Residual connection: output = main(x) + shortcut(x), followed by ReLU.
/// `shortcut` may be null, meaning identity (shapes must then match).
class Residual final : public Layer {
 public:
  Residual(std::string name, LayerPtr main_branch, LayerPtr shortcut);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void visit(const std::function<void(Layer&)>& fn) override;
  LayerPtr clone() const override;

 private:
  LayerPtr main_;
  LayerPtr shortcut_;  // null ⇒ identity
  Tensor relu_mask_;
};

}  // namespace tinyadc::nn
