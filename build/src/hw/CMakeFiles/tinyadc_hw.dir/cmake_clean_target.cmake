file(REMOVE_RECURSE
  "libtinyadc_hw.a"
)
