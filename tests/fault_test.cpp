// Stuck-at fault model (§IV-E): injection mechanics, SA0 immunity of pruned
// cells, damage monotonicity, and the pruned-vs-dense robustness gap.
#include <gtest/gtest.h>

#include "core/pruner.hpp"
#include "data/synthetic.hpp"
#include "fault/evaluate.hpp"
#include "nn/models.hpp"
#include "tensor/ops.hpp"

namespace tinyadc::fault {
namespace {

xbar::MappingConfig map_config() {
  xbar::MappingConfig cfg;
  cfg.dims = {4, 4};
  return cfg;
}

xbar::MappedLayer mapped_from(const Tensor& m) {
  return xbar::map_matrix(m, "l", map_config());
}

TEST(FaultInjection, RateZeroChangesNothing) {
  tinyadc::Rng gen(1);
  Tensor m = Tensor::randn({8, 8}, gen);
  auto layer = mapped_from(m);
  const auto original = layer.blocks;
  FaultSpec spec;
  spec.rate = 0.0;
  tinyadc::Rng rng(2);
  const auto stats = inject_faults(layer, spec, rng);
  EXPECT_EQ(stats.sa0 + stats.sa1, 0);
  EXPECT_EQ(stats.weights_changed, 0);
  for (std::size_t i = 0; i < original.size(); ++i)
    EXPECT_EQ(layer.blocks[i].q, original[i].q);
}

TEST(FaultInjection, CountsCellsPerWeight) {
  Tensor m = Tensor::ones({4, 4});
  auto layer = mapped_from(m);
  FaultSpec spec;
  spec.rate = 0.0;
  tinyadc::Rng rng(3);
  const auto stats = inject_faults(layer, spec, rng);
  // 16 weights × 4 slices × 2 polarities = 128 cells.
  EXPECT_EQ(stats.cells, 128);
}

TEST(FaultInjection, Sa0CannotHurtZeroWeights) {
  // An all-zero (fully pruned) layer is immune to SA0 — its cells already
  // sit at G_off. This is the mechanism behind TinyADC's fault tolerance.
  auto layer = mapped_from(Tensor::zeros({8, 8}));
  FaultSpec spec;
  spec.rate = 1.0;       // every cell faulted
  spec.sa0_fraction = 1.0;  // all SA0
  tinyadc::Rng rng(4);
  const auto stats = inject_faults(layer, spec, rng);
  EXPECT_GT(stats.sa0, 0);
  EXPECT_EQ(stats.weights_changed, 0);
}

TEST(FaultInjection, Sa1CorruptsEvenZeroWeights) {
  auto layer = mapped_from(Tensor::zeros({4, 4}));
  FaultSpec spec;
  spec.rate = 0.5;  // asymmetric hits: polarity planes won't cancel
  spec.sa0_fraction = 0.0;  // all SA1
  tinyadc::Rng rng(5);
  const auto stats = inject_faults(layer, spec, rng);
  EXPECT_GT(stats.sa1, 0);
  EXPECT_GT(stats.weights_changed, 0);
}

TEST(FaultInjection, FullSymmetricSa1CancelsDifferentially) {
  // rate = 1 SA1 faults hit both polarity planes of every weight with the
  // full level, so the differential readout cancels to zero net change —
  // a sanity check of the differential cell model.
  auto layer = mapped_from(Tensor::zeros({4, 4}));
  FaultSpec spec;
  spec.rate = 1.0;
  spec.sa0_fraction = 0.0;
  tinyadc::Rng rng(55);
  const auto stats = inject_faults(layer, spec, rng);
  EXPECT_GT(stats.sa1, 0);
  EXPECT_EQ(stats.weights_changed, 0);
}

TEST(FaultInjection, FullSa0WipesEverything) {
  tinyadc::Rng gen(6);
  Tensor m = Tensor::randn({8, 4}, gen);
  auto layer = mapped_from(m);
  FaultSpec spec;
  spec.rate = 1.0;
  spec.sa0_fraction = 1.0;
  tinyadc::Rng rng(7);
  inject_faults(layer, spec, rng);
  for (const auto& b : layer.blocks)
    for (auto q : b.q) EXPECT_EQ(q, 0);
  EXPECT_EQ(layer.max_active_rows(), 0);
}

TEST(FaultInjection, CensusRefreshedAfterInjection) {
  Tensor m = Tensor::ones({4, 4});
  auto layer = mapped_from(m);
  EXPECT_EQ(layer.max_active_rows(), 4);
  FaultSpec spec;
  spec.rate = 1.0;
  spec.sa0_fraction = 1.0;
  tinyadc::Rng rng(8);
  inject_faults(layer, spec, rng);
  EXPECT_EQ(layer.max_active_rows(), 0);
}

TEST(FaultInjection, DamageGrowsWithRate) {
  tinyadc::Rng gen(9);
  Tensor m = Tensor::randn({16, 16}, gen);
  std::int64_t prev_changed = -1;
  for (double rate : {0.02, 0.10, 0.40}) {
    auto layer = mapped_from(m);
    FaultSpec spec;
    spec.rate = rate;
    tinyadc::Rng rng(10);
    const auto stats = inject_faults(layer, spec, rng);
    EXPECT_GT(stats.weights_changed, prev_changed);
    prev_changed = stats.weights_changed;
  }
}

TEST(FaultInjection, NetworkInjectionAggregates) {
  nn::ModelConfig mc;
  mc.num_classes = 4;
  mc.image_size = 8;
  mc.width_mult = 0.0625F;
  auto model = nn::resnet18(mc);
  auto net = xbar::map_model(*model, map_config());
  FaultSpec spec;
  spec.rate = 0.05;
  const auto stats = inject_faults(net, spec);
  EXPECT_GT(stats.cells, 0);
  EXPECT_GT(stats.sa0, 0);
  // ~5 % of cells hit.
  EXPECT_NEAR(static_cast<double>(stats.sa0) / stats.cells, 0.05, 0.01);
}

TEST(FaultInjection, DeterministicInSeed) {
  tinyadc::Rng gen(11);
  Tensor m = Tensor::randn({8, 8}, gen);
  auto a = mapped_from(m);
  auto b = mapped_from(m);
  FaultSpec spec;
  spec.rate = 0.2;
  tinyadc::Rng r1(12), r2(12);
  inject_faults(a, spec, r1);
  inject_faults(b, spec, r2);
  for (std::size_t i = 0; i < a.blocks.size(); ++i)
    EXPECT_EQ(a.blocks[i].q, b.blocks[i].q);
}

TEST(FaultEvaluate, PrunedModelToleratesSa0BetterThanDense) {
  // The §IV-E experiment in miniature: train one model, evaluate accuracy
  // under SA0 faults for (a) its dense form and (b) its CP-pruned form.
  data::SyntheticSpec dspec;
  dspec.num_classes = 4;
  dspec.image_size = 8;
  dspec.train_per_class = 20;
  dspec.test_per_class = 10;
  dspec.seed = 21;
  const auto data = data::make_synthetic(dspec);

  nn::ModelConfig mc;
  mc.num_classes = 4;
  mc.image_size = 8;
  mc.width_mult = 0.0625F;
  auto model = nn::resnet18(mc);

  core::PipelineConfig pcfg;
  pcfg.xbar = {4, 4};
  pcfg.pretrain.epochs = 12;
  pcfg.pretrain.batch_size = 16;
  pcfg.pretrain.sgd.lr = 0.05F;
  pcfg.pretrain.sgd.total_epochs = 12;
  pcfg.admm.epochs = 3;
  pcfg.admm.batch_size = 16;
  pcfg.admm.sgd.lr = 0.02F;
  pcfg.retrain.epochs = 3;
  pcfg.retrain.batch_size = 16;
  pcfg.retrain.sgd.lr = 0.01F;

  // Dense twin: pretrain only.
  auto dense = nn::resnet18(mc);
  {
    nn::TrainConfig tc = pcfg.pretrain;
    nn::Trainer trainer(*dense, tc);
    trainer.fit(data.train, data.test);
  }
  // Pruned model via the pipeline.
  auto specs = core::uniform_cp_specs(*model, 4, pcfg.xbar);
  core::run_pipeline(*model, data.train, data.test, specs, pcfg);

  FaultSpec fspec;
  fspec.rate = 0.15;
  fspec.sa0_fraction = 1.0;
  const auto dense_res =
      evaluate_under_faults(*dense, data.test, map_config(), fspec, 3);
  const auto pruned_res =
      evaluate_under_faults(*model, data.test, map_config(), fspec, 3);
  // Both models must actually work clean, or the comparison says nothing.
  EXPECT_GT(dense_res.clean_accuracy, 0.5);
  EXPECT_GT(pruned_res.clean_accuracy, 0.5);
  // The pruned model's drop must not exceed the dense model's (it holds
  // far fewer SA0-vulnerable cells). The margin is statistical — 3 trials
  // on a tiny model — and calibrated on the portable reference build;
  // -march=native shifts the training floats enough to flip it, so the
  // native job only checks the comparison stays in the same ballpark.
#ifdef TINYADC_NATIVE
  EXPECT_LE(pruned_res.accuracy_drop(), dense_res.accuracy_drop() + 0.15);
#else
  EXPECT_LE(pruned_res.accuracy_drop(), dense_res.accuracy_drop() + 0.05);
#endif
}

TEST(FaultEvaluate, RemappingNeverHurtsOnAverage) {
  // Fault-aware wordline remapping minimizes per-trial code damage, so the
  // mean accuracy under the same defect patterns must not get worse.
  data::SyntheticSpec dspec;
  dspec.num_classes = 4;
  dspec.image_size = 8;
  dspec.train_per_class = 16;
  dspec.test_per_class = 8;
  dspec.seed = 23;
  const auto data = data::make_synthetic(dspec);
  nn::ModelConfig mc;
  mc.num_classes = 4;
  mc.image_size = 8;
  mc.width_mult = 0.0625F;
  auto model = nn::resnet18(mc);
  {
    nn::TrainConfig tc;
    tc.epochs = 8;
    tc.batch_size = 16;
    tc.sgd.lr = 0.05F;
    tc.sgd.total_epochs = 8;
    nn::Trainer trainer(*model, tc);
    trainer.fit(data.train, data.test);
  }
  FaultSpec fspec;
  fspec.rate = 0.10;
  fspec.sa0_fraction = 1.0;
  const auto plain =
      evaluate_under_faults(*model, data.test, map_config(), fspec, 3);
  const auto remapped = evaluate_under_faults_remapped(
      *model, data.test, map_config(), fspec, 3);
  EXPECT_DOUBLE_EQ(plain.clean_accuracy, remapped.clean_accuracy);
  EXPECT_GE(remapped.mean_accuracy + 1e-9, plain.mean_accuracy - 0.05);
}

TEST(FaultEvaluate, RestoresWeightsExactly) {
  nn::ModelConfig mc;
  mc.num_classes = 4;
  mc.image_size = 8;
  mc.width_mult = 0.0625F;
  auto model = nn::resnet18(mc);
  std::vector<Tensor> before;
  for (const auto& v : model->prunable_views())
    before.push_back(v.weight->value.clone());

  data::SyntheticSpec dspec;
  dspec.num_classes = 4;
  dspec.image_size = 8;
  dspec.train_per_class = 4;
  dspec.test_per_class = 4;
  const auto data = data::make_synthetic(dspec);
  FaultSpec fspec;
  fspec.rate = 0.3;
  evaluate_under_faults(*model, data.test, map_config(), fspec, 2);

  auto views = model->prunable_views();
  for (std::size_t i = 0; i < views.size(); ++i)
    EXPECT_TRUE(allclose(views[i].weight->value, before[i], 0.0F));
}

TEST(FaultEvaluate, ValidatesTrialCount) {
  nn::ModelConfig mc;
  mc.num_classes = 4;
  mc.image_size = 8;
  mc.width_mult = 0.0625F;
  auto model = nn::resnet18(mc);
  data::SyntheticSpec dspec;
  dspec.num_classes = 4;
  dspec.image_size = 8;
  dspec.train_per_class = 2;
  dspec.test_per_class = 2;
  const auto data = data::make_synthetic(dspec);
  EXPECT_THROW(
      evaluate_under_faults(*model, data.test, map_config(), {}, 0),
      tinyadc::CheckError);
}

}  // namespace
}  // namespace tinyadc::fault
