file(REMOVE_RECURSE
  "libtinyadc_core.a"
)
