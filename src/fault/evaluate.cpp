#include "fault/evaluate.hpp"

#include <algorithm>
#include <functional>
#include <vector>

#include "fault/remap.hpp"
#include "tensor/check.hpp"

namespace tinyadc::fault {

namespace {

/// Deep-copies every prunable weight so it can be restored after a trial.
std::vector<Tensor> snapshot_weights(nn::Model& model) {
  std::vector<Tensor> snap;
  for (const auto& view : model.prunable_views())
    snap.push_back(view.weight->value.clone());
  return snap;
}

void restore_weights(nn::Model& model, const std::vector<Tensor>& snap) {
  auto views = model.prunable_views();
  TINYADC_CHECK(views.size() == snap.size(), "snapshot size mismatch");
  for (std::size_t i = 0; i < views.size(); ++i)
    views[i].weight->value.copy_from(snap[i]);
}

/// Writes a mapped network's (possibly faulted) weights back into the model.
void write_back(nn::Model& model, const xbar::MappedNetwork& net) {
  auto views = model.prunable_views();
  TINYADC_CHECK(views.size() == net.layers.size(), "layer count mismatch");
  for (std::size_t i = 0; i < views.size(); ++i)
    views[i].from_matrix(net.layers[i].demap());
}

double accuracy(nn::Model& model, const data::Dataset& test) {
  nn::TrainConfig tc;
  tc.batch_size = 64;
  nn::Trainer trainer(model, tc);
  return trainer.evaluate(test);
}

}  // namespace

namespace {

FaultTrialResult run_trials(
    nn::Model& model, const data::Dataset& test,
    const xbar::MappingConfig& map_config, const FaultSpec& spec, int trials,
    const std::function<void(xbar::MappedNetwork&, const FaultSpec&)>&
        injector) {
  TINYADC_CHECK(trials >= 1, "need at least one trial");
  const auto snap = snapshot_weights(model);
  FaultTrialResult result;

  // Map the clean model once: every trial starts from this same base
  // mapping (quantization is deterministic, so re-mapping per trial only
  // re-derived identical codes), and the clean pass reuses it too.
  const xbar::MappedNetwork base_net = xbar::map_model(model, map_config);

  // Clean pass: map + demap without faults isolates quantization effects.
  write_back(model, base_net);
  result.clean_accuracy = accuracy(model, test);
  restore_weights(model, snap);

  // Trials run serially with the parallelism *inside* each trial: the
  // accuracy evaluation's GEMM/conv batches already saturate the worker
  // pool, whereas the old trial-parallel loop cloned the full model and
  // re-ran quantization per trial and made N replicas fight over the cache
  // (fault_run_trials_4 *lost* time going 1 → 4 threads). Per trial: copy
  // the base mapping (bulk vector copies), inject, write the faulted
  // weights into the (single) model, evaluate, restore. write_back touches
  // only prunable weights, so restoring the snapshot returns the model to
  // its pre-trial state exactly; the per-trial seed derivation and the
  // in-order reduction are unchanged, so the reported statistics match the
  // old loop bit for bit.
  double sum = 0.0;
  for (int t = 0; t < trials; ++t) {
    xbar::MappedNetwork net = base_net;
    FaultSpec trial_spec = spec;
    trial_spec.seed = spec.seed + static_cast<std::uint64_t>(t) * 7919;
    injector(net, trial_spec);
    write_back(model, net);
    const double acc = accuracy(model, test);
    restore_weights(model, snap);
    sum += acc;
    result.min_accuracy = std::min(result.min_accuracy, acc);
  }
  result.mean_accuracy = sum / static_cast<double>(trials);
  return result;
}

}  // namespace

FaultTrialResult evaluate_under_faults(nn::Model& model,
                                       const data::Dataset& test,
                                       const xbar::MappingConfig& map_config,
                                       const FaultSpec& spec, int trials) {
  return run_trials(model, test, map_config, spec, trials,
                    [](xbar::MappedNetwork& net, const FaultSpec& s) {
                      inject_faults(net, s);
                    });
}

FaultTrialResult evaluate_under_faults_remapped(
    nn::Model& model, const data::Dataset& test,
    const xbar::MappingConfig& map_config, const FaultSpec& spec,
    int trials) {
  return run_trials(
      model, test, map_config, spec, trials,
      [](xbar::MappedNetwork& net, const FaultSpec& s) {
        Rng rng(s.seed);
        for (auto& layer : net.layers) {
          const auto map = sample_fault_map(layer, s, rng);
          const auto perms = remap_rows_greedy(layer, map);
          apply_fault_map(layer, map, perms);
        }
      });
}

}  // namespace tinyadc::fault
