#include "xbar/adc_bits.hpp"

#include "tensor/check.hpp"

namespace tinyadc::xbar {

int ceil_log2(std::int64_t n) {
  TINYADC_CHECK(n >= 1, "ceil_log2 requires n >= 1, got " << n);
  int bits = 0;
  std::int64_t v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

int required_adc_bits(int input_bits, int cell_bits,
                      std::int64_t active_rows) {
  TINYADC_CHECK(input_bits >= 1 && cell_bits >= 1,
                "input/cell bits must be >= 1");
  TINYADC_CHECK(active_rows >= 0, "active_rows must be non-negative");
  if (active_rows == 0) return 0;
  const int log_r = ceil_log2(active_rows);
  int bits = input_bits + cell_bits + log_r;
  if (input_bits == 1 || cell_bits == 1) bits -= 1;
  return bits;
}

int exact_adc_bits(int input_bits, int cell_bits, std::int64_t active_rows) {
  TINYADC_CHECK(input_bits >= 1 && cell_bits >= 1,
                "input/cell bits must be >= 1");
  TINYADC_CHECK(active_rows >= 0, "active_rows must be non-negative");
  if (active_rows == 0) return 0;
  const std::int64_t max_in = (std::int64_t{1} << input_bits) - 1;
  const std::int64_t max_cell = (std::int64_t{1} << cell_bits) - 1;
  const std::int64_t max_sum = active_rows * max_in * max_cell;
  return ceil_log2(max_sum + 1);
}

}  // namespace tinyadc::xbar
