# Empty dependencies file for xbar_edge_test.
# This may be replaced when dependencies are built.
