#include "hw/cost_model.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "tensor/check.hpp"

namespace tinyadc::hw {

TileCost tile_cost(const CostConstants& k, int adc_bits) {
  TINYADC_CHECK(adc_bits >= 0 && adc_bits <= 24, "bad adc_bits " << adc_bits);
  TileCost t;
  const auto n = static_cast<double>(k.arrays_per_tile);
  // Datapath width tracks ADC resolution (floored: control logic doesn't
  // vanish below ~4 bits of payload).
  const double width_scale =
      std::max(static_cast<double>(adc_bits), 4.0) / 8.0;

  t.adc_area_mm2 = n * k.adc.area_mm2(adc_bits);
  t.adc_power_w = n * k.adc.power_w(adc_bits, k.adc_rate_hz);

  const double fixed_area = n * (k.array_area_mm2 + k.dac_area_mm2);
  const double fixed_power = n * (k.array_power_w + k.dac_power_w);
  const double scaled_area =
      n * (k.sh_area_mm2 + k.shiftadd_area_mm2 + k.reg_area_mm2) *
          width_scale +
      (k.buffer_area_mm2 + k.router_area_mm2) * width_scale;
  const double scaled_power =
      n * (k.sh_power_w + k.shiftadd_power_w + k.reg_power_w) * width_scale +
      (k.buffer_power_w + k.router_power_w) * width_scale;

  t.area_mm2 = t.adc_area_mm2 + fixed_area + scaled_area;
  t.power_w = t.adc_power_w + fixed_power + scaled_power;
  return t;
}

double AcceleratorReport::area_vs(const AcceleratorReport& baseline) const {
  TINYADC_CHECK(baseline.area_mm2 > 0.0, "baseline has zero area");
  return area_mm2 / baseline.area_mm2;
}

double AcceleratorReport::power_vs(const AcceleratorReport& baseline) const {
  TINYADC_CHECK(baseline.power_w > 0.0, "baseline has zero power");
  return power_w / baseline.power_w;
}

AcceleratorReport build_accelerator(const xbar::MappedNetwork& net,
                                    const CostConstants& constants,
                                    bool full_first_layer_adc) {
  AcceleratorReport report;
  const int dense_bits =
      xbar::design_adc_bits(net.config, net.config.dims.rows);
  for (std::size_t i = 0; i < net.layers.size(); ++i) {
    const auto& layer = net.layers[i];
    LayerHwReport lr;
    lr.name = layer.name;
    lr.arrays = layer.active_arrays();
    lr.tiles = (lr.arrays + constants.arrays_per_tile - 1) /
               constants.arrays_per_tile;
    lr.adc_bits = (i == 0 && full_first_layer_adc)
                      ? dense_bits
                      : layer.design_adc_bits();
    const TileCost tc = tile_cost(constants, lr.adc_bits);
    lr.area_mm2 = static_cast<double>(lr.tiles) * tc.area_mm2;
    lr.power_w = static_cast<double>(lr.tiles) * tc.power_w;
    report.area_mm2 += lr.area_mm2;
    report.power_w += lr.power_w;
    report.tiles += lr.tiles;
    report.arrays += lr.arrays;
    report.layers.push_back(std::move(lr));
  }
  return report;
}

std::string to_table(const AcceleratorReport& report) {
  std::ostringstream os;
  os << std::left << std::setw(28) << "layer" << std::right << std::setw(8)
     << "arrays" << std::setw(7) << "tiles" << std::setw(9) << "ADCbits"
     << std::setw(12) << "area(mm2)" << std::setw(11) << "power(W)" << "\n";
  for (const auto& l : report.layers) {
    os << std::left << std::setw(28) << l.name << std::right << std::setw(8)
       << l.arrays << std::setw(7) << l.tiles << std::setw(9) << l.adc_bits
       << std::setw(12) << std::fixed << std::setprecision(4) << l.area_mm2
       << std::setw(11) << std::setprecision(4) << l.power_w << "\n";
  }
  os << "total: " << report.tiles << " tiles, " << std::fixed
     << std::setprecision(3) << report.area_mm2 << " mm2, "
     << std::setprecision(3) << report.power_w << " W\n";
  return os.str();
}

}  // namespace tinyadc::hw
