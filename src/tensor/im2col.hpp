// im2col / col2im lowering for convolution.
//
// Conv2d forward becomes a single GEMM over the im2col patch matrix; the
// weight-gradient and input-gradient passes reuse the same matrix (and
// col2im for scattering back). The patch-matrix layout here also defines the
// crossbar mapping order used by src/xbar: row index = (c, kh, kw) in
// row-major order, matching the 2-D flattening of Fig. 3 in the paper.
#pragma once

#include <cstdint>

#include "tensor.hpp"

namespace tinyadc {

/// Static geometry of a 2-D convolution.
struct ConvGeometry {
  std::int64_t in_channels = 0;   ///< C_in
  std::int64_t in_h = 0;          ///< input height
  std::int64_t in_w = 0;          ///< input width
  std::int64_t kernel_h = 0;      ///< filter height
  std::int64_t kernel_w = 0;      ///< filter width
  std::int64_t stride = 1;        ///< stride (same both dims)
  std::int64_t padding = 0;       ///< zero padding (same both dims)

  /// Output spatial height.
  std::int64_t out_h() const {
    return (in_h + 2 * padding - kernel_h) / stride + 1;
  }
  /// Output spatial width.
  std::int64_t out_w() const {
    return (in_w + 2 * padding - kernel_w) / stride + 1;
  }
  /// Rows of the patch matrix: C_in · K_h · K_w.
  std::int64_t patch_rows() const { return in_channels * kernel_h * kernel_w; }
  /// Columns of the patch matrix per image: out_h · out_w.
  std::int64_t patch_cols() const { return out_h() * out_w(); }
};

/// Lowers one image `input` (C, H, W — 3-D) to the patch matrix
/// (patch_rows × patch_cols). Out-of-bounds (padding) taps read as zero.
Tensor im2col(const Tensor& input, const ConvGeometry& g);

/// Adjoint of im2col: scatters a patch matrix back into an image (C, H, W),
/// accumulating overlapping taps. Used by the conv input-gradient pass.
Tensor col2im(const Tensor& cols, const ConvGeometry& g);

/// Batched im2col: lowers `batch` images stored contiguously at `input`
/// (N, C, H, W layout) straight into one patch matrix of shape
/// (patch_rows × batch·patch_cols), sample n occupying the column block
/// [n·patch_cols, (n+1)·patch_cols). Reads the input with strides — no
/// per-sample image copy — and writes `out` (size patch_rows · batch ·
/// patch_cols, caller-allocated). Rows fan out over the parallel runtime
/// (disjoint writes), so the result is bit-identical at any thread count.
void im2col_batch(const float* input, std::int64_t batch,
                  const ConvGeometry& g, float* out);

/// Adjoint of im2col_batch: scatters a (patch_rows × batch·patch_cols)
/// patch matrix back into `batch` images at `images` (N, C, H, W layout,
/// caller-allocated; overwritten, overlapping taps accumulate). Samples fan
/// out over the parallel runtime (disjoint outputs) — bit-identical at any
/// thread count.
void col2im_batch(const float* cols, std::int64_t batch,
                  const ConvGeometry& g, float* images);

}  // namespace tinyadc
