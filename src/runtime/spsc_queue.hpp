// Bounded single-producer/single-consumer handoff queue.
//
// The inter-stage primitive of the serving pipeline (serve/pipeline.hpp):
// each stage thread pops from its input queue and pushes into the next
// stage's queue, so every queue has exactly one producer and one consumer.
// The implementation is a mutex + two condition variables rather than a
// lock-free ring: a pipeline stage's unit of work is a whole model-stage
// forward (tens of microseconds to milliseconds), so handoff cost is noise
// and the blocking semantics are what the executor actually wants —
// `push` into a full queue is the pipeline's backpressure (the in-flight
// window is the queue capacities plus one job per stage), and `pop` on an
// empty queue is the stage's idle wait. Both return false only when the
// queue has been closed and (for pop) fully drained, which is how a
// shutdown propagates stage by stage without a sentinel value.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace tinyadc::runtime {

/// Bounded blocking FIFO for exactly one producer and one consumer thread.
template <typename T>
class SpscQueue {
 public:
  /// `capacity` is the number of items the queue buffers (>= 1).
  explicit SpscQueue(std::size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Blocks while the queue is full. Returns false (dropping `item`) if the
  /// queue was closed before space became available.
  bool push(T&& item) {
    std::unique_lock<std::mutex> lk(mu_);
    not_full_.wait(lk, [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty. Returns false once the queue is
  /// closed *and* drained; items pushed before close() are still delivered.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lk(mu_);
    not_empty_.wait(lk, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    out = std::move(items_.front());
    items_.pop_front();
    lk.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Wakes both sides; subsequent push() calls fail, pop() drains then
  /// fails. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// Items currently buffered (diagnostic; racy by nature).
  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace tinyadc::runtime
