// Sparsity reporting over a pruned model.
#pragma once

#include <string>
#include <vector>

#include "core/prune_spec.hpp"
#include "nn/model.hpp"

namespace tinyadc::core {

/// Sparsity facts for one prunable layer.
struct LayerSparsityReport {
  std::string name;
  bool enabled = true;          ///< was this layer under a pruning constraint
  std::int64_t rows = 0;        ///< 2-D matrix rows (input taps)
  std::int64_t cols = 0;        ///< 2-D matrix columns (output units)
  std::int64_t total = 0;       ///< rows × cols
  std::int64_t nonzero = 0;     ///< current support size
  std::int64_t max_col_nonzeros = 0;  ///< worst block-column occupancy
  std::int64_t zero_rows = 0;   ///< fully-zero rows (shape-pruned)
  std::int64_t zero_cols = 0;   ///< fully-zero columns (filter-pruned)

  /// total / nonzero (∞-safe: returns total when nonzero == 0).
  double pruning_rate() const;
};

/// Whole-network sparsity summary.
struct NetworkSparsityReport {
  std::vector<LayerSparsityReport> layers;
  std::int64_t total = 0;
  std::int64_t nonzero = 0;
  std::int64_t max_col_nonzeros = 0;  ///< worst over *enabled* layers

  /// Overall pruning rate total/nonzero.
  double pruning_rate() const;
  /// Worst occupancy over enabled layers only (drives the per-design ADC).
  std::int64_t worst_enabled_occupancy() const { return max_col_nonzeros; }
};

/// Gathers the report for `model` given its layer specs (aligned with
/// Model::prunable_views()) and the crossbar dims.
NetworkSparsityReport build_report(nn::Model& model,
                                   const std::vector<LayerPruneSpec>& specs,
                                   CrossbarDims dims);

/// Renders the report as an aligned text table.
std::string to_table(const NetworkSparsityReport& report);

}  // namespace tinyadc::core
