// Sparsity-packed execution plans: the packed O(l)-per-column mvm path must
// reproduce the legacy dense O(r) row scan bit for bit — outputs AND ADC
// statistics — for every non-ideality combination, CP rate and thread
// count. Plus the shift-and-add int64 overflow guard.
#include <gtest/gtest.h>

#include <tuple>

#include "core/projection.hpp"
#include "data/synthetic.hpp"
#include "msim/analog_mvm.hpp"
#include "msim/analog_network.hpp"
#include "nn/models.hpp"
#include "runtime/parallel.hpp"
#include "tensor/ops.hpp"

namespace tinyadc::msim {
namespace {

/// A 256×32 matrix CP-projected to `keep` active rows per 128-row crossbar
/// column (keep == 128 leaves the matrix dense). One column is zeroed
/// entirely so empty conversion pairs are always exercised.
Tensor cp_matrix(std::int64_t keep, std::uint64_t seed) {
  constexpr std::int64_t rows = 256, cols = 32;
  tinyadc::Rng rng(seed);
  // Generate in weight-storage (column-major) layout, CP-project there,
  // then transpose into the row-major matrix the mapper consumes.
  std::vector<float> store(static_cast<std::size_t>(rows * cols));
  for (auto& v : store) v = rng.normal(0.0F, 1.0F);
  core::project_column_proportional({store.data(), rows, cols}, {128, 128},
                                    keep);
  Tensor m({rows, cols});
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t c = 0; c < cols; ++c)
      m.at(r, c) = store[static_cast<std::size_t>(c * rows + r)];
  for (std::int64_t r = 0; r < rows; ++r) m.at(r, 5) = 0.0F;
  return m;
}

std::vector<std::int32_t> random_codes(std::int64_t n, int bits,
                                       std::uint64_t seed) {
  tinyadc::Rng rng(seed);
  std::vector<std::int32_t> x(static_cast<std::size_t>(n));
  for (auto& v : x)
    v = static_cast<std::int32_t>(rng.uniform_int(1ULL << bits));
  return x;
}

/// Golden bit-exactness sweep: CP sparsity l ∈ {4, 16, 128} × thread count
/// ∈ {1, 4}, each under four non-ideality settings (ideal, variation,
/// IR drop, both).
class PlanExactness
    : public ::testing::TestWithParam<std::tuple<std::int64_t, int>> {
 protected:
  void TearDown() override { runtime::set_thread_count(0); }
};

TEST_P(PlanExactness, PackedMatchesDenseBitForBit) {
  const auto [keep, threads] = GetParam();
  runtime::set_thread_count(threads);
  const Tensor m = cp_matrix(keep, static_cast<std::uint64_t>(keep));
  xbar::MappingConfig map_cfg;  // paper config: 128×128, 8/8-bit, 1-bit DAC
  const auto layer = xbar::map_matrix(m, "l", map_cfg);
  ASSERT_LE(layer.max_active_rows(), keep);

  MsimConfig variants[4];
  variants[1].variation_sigma = 0.1;
  variants[2].ir_drop_alpha = 0.3;
  variants[3].variation_sigma = 0.1;
  variants[3].ir_drop_alpha = 0.3;
  for (MsimConfig cfg : variants) {
    MsimConfig dense_cfg = cfg;
    dense_cfg.use_plan = false;
    AnalogLayerSim packed(layer, cfg);
    AnalogLayerSim dense(layer, dense_cfg);
    for (std::uint64_t seed : {7ULL, 8ULL}) {
      const auto x = random_codes(layer.rows, map_cfg.input_bits, seed);
      EXPECT_EQ(packed.mvm(x), dense.mvm(x))
          << "keep=" << keep << " threads=" << threads
          << " sigma=" << cfg.variation_sigma
          << " alpha=" << cfg.ir_drop_alpha;
    }
    EXPECT_EQ(packed.stats().adc_conversions, dense.stats().adc_conversions);
    EXPECT_EQ(packed.stats().adc_clip_events, dense.stats().adc_clip_events);
    EXPECT_EQ(packed.stats().dac_cycles, dense.stats().dac_cycles);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RatesAndThreads, PlanExactness,
    ::testing::Combine(::testing::Values<std::int64_t>(4, 16, 128),
                       ::testing::Values(1, 4)));

TEST(PlanExactness, MultiBitDacMatchesDense) {
  const Tensor m = cp_matrix(16, 99);
  xbar::MappingConfig map_cfg;
  map_cfg.dac_bits = 2;
  const auto layer = xbar::map_matrix(m, "l", map_cfg);
  MsimConfig dense_cfg;
  dense_cfg.use_plan = false;
  AnalogLayerSim packed(layer, {});
  AnalogLayerSim dense(layer, dense_cfg);
  const auto x = random_codes(layer.rows, map_cfg.input_bits, 11);
  EXPECT_EQ(packed.mvm(x), dense.mvm(x));
  EXPECT_EQ(packed.stats().adc_conversions, dense.stats().adc_conversions);
}

TEST(PlanExactness, UnderProvisionedAdcClipsIdentically) {
  // Clipping paths must agree too: force saturation with a 2-bit ADC.
  const Tensor m = cp_matrix(128, 42);
  const auto layer = xbar::map_matrix(m, "l", xbar::MappingConfig{});
  MsimConfig cfg;
  cfg.adc_bits_override = 2;
  MsimConfig dense_cfg = cfg;
  dense_cfg.use_plan = false;
  AnalogLayerSim packed(layer, cfg);
  AnalogLayerSim dense(layer, dense_cfg);
  std::vector<std::int32_t> x(static_cast<std::size_t>(layer.rows), 255);
  EXPECT_EQ(packed.mvm(x), dense.mvm(x));
  EXPECT_GT(packed.stats().adc_clip_events, 0);
  EXPECT_EQ(packed.stats().adc_clip_events, dense.stats().adc_clip_events);
}

TEST(OverflowGuard, RejectsAccumulatorOverflow) {
  // 15 one-bit slices × 32 one-bit DAC cycles × a 24-bit ADC cannot fit the
  // int64 shift-and-add accumulator — construction must refuse instead of
  // silently wrapping `acc += code << shift`.
  tinyadc::Rng rng(1);
  Tensor m = Tensor::randn({4, 4}, rng);
  xbar::MappingConfig map_cfg;
  map_cfg.dims = {8, 8};
  map_cfg.weight_bits = 16;
  map_cfg.cell_bits = 1;
  map_cfg.input_bits = 32;
  map_cfg.dac_bits = 1;
  const auto layer = xbar::map_matrix(m, "l", map_cfg);
  MsimConfig cfg;
  cfg.adc_bits_override = 24;
  EXPECT_THROW(AnalogLayerSim(layer, cfg), tinyadc::CheckError);
}

/// Whole-network evaluation must not depend on how the test set is
/// chunked: accuracy and the summed ADC counters of a calibrated
/// AnalogNetwork are identical at batch sizes 1, 7 and 16 — per-sample
/// analog MVMs and per-sample digital layers make each image's path
/// independent of its batch neighbours. Checked for both the packed-plan
/// and the legacy dense execution paths.
TEST(BatchInvariance, EvaluateIndependentOfBatchSize) {
  nn::ModelConfig mc;
  mc.num_classes = 4;
  mc.image_size = 8;
  mc.width_mult = 0.0625F;
  const auto model = nn::resnet18(mc);

  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.image_size = 8;
  spec.train_per_class = 8;
  spec.test_per_class = 6;
  spec.seed = 17;
  const auto data = data::make_synthetic(spec);

  xbar::MappingConfig map_cfg;
  map_cfg.dims = {16, 16};
  const auto net = xbar::map_model(*model, map_cfg);

  for (const bool use_plan : {true, false}) {
    double ref_acc = 0.0;
    MsimStats ref;
    bool first = true;
    for (const std::size_t batch : {std::size_t{1}, std::size_t{7},
                                    std::size_t{16}}) {
      // Fresh sims (zero counters) with identical calibration per run.
      MsimConfig cfg;
      cfg.use_plan = use_plan;
      AnalogNetwork analog(*model, net, cfg);
      analog.calibrate(data.train, 8);
      const double acc = analog.evaluate(data.test, batch);
      MsimStats total;
      for (const auto& sim : analog.sims()) {
        const MsimStats s = sim->stats_snapshot();
        total.adc_conversions += s.adc_conversions;
        total.adc_clip_events += s.adc_clip_events;
        total.dac_cycles += s.dac_cycles;
      }
      if (first) {
        ref_acc = acc;
        ref = total;
        first = false;
        EXPECT_GT(total.adc_conversions, 0);
        EXPECT_GT(total.dac_cycles, 0);
      } else {
        EXPECT_DOUBLE_EQ(acc, ref_acc)
            << "use_plan=" << use_plan << " batch=" << batch;
        EXPECT_EQ(total.adc_conversions, ref.adc_conversions)
            << "use_plan=" << use_plan << " batch=" << batch;
        EXPECT_EQ(total.adc_clip_events, ref.adc_clip_events)
            << "use_plan=" << use_plan << " batch=" << batch;
        EXPECT_EQ(total.dac_cycles, ref.dac_cycles)
            << "use_plan=" << use_plan << " batch=" << batch;
      }
    }
  }
}

TEST(OverflowGuard, AcceptsPaperConfiguration) {
  tinyadc::Rng rng(2);
  Tensor m = Tensor::randn({128, 16}, rng);
  const auto layer = xbar::map_matrix(m, "l", xbar::MappingConfig{});
  EXPECT_NO_THROW(AnalogLayerSim(layer, MsimConfig{}));
}

}  // namespace
}  // namespace tinyadc::msim
