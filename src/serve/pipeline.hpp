// Pipeline-parallel stage execution over one compiled analog network.
//
// Full-width models (resnet50/vgg16 at width 1.0) are deep chains of
// layers whose analog cost the mapping already knows exactly — each
// layer's packed plan sweeps census_nonzeros() row slots per sample. A
// replicated-worker engine scales throughput but never batch-1 latency;
// pipelining does: the root Sequential's child list splits into K
// contiguous *stages*, each stage runs on its own thread with its own
// Model::clone() session (private Conv2d workspaces and Residual state —
// the shared compiled AnalogLayerSims are concurrency-safe by design),
// and bounded SPSC queues hand each batch from stage k to stage k+1. Up
// to K batches are then in flight at once, so steady-state batch latency
// approaches the slowest stage instead of the whole network.
//
// Stage boundaries come from a DP-optimal minimize-the-maximum
// contiguous partition of per-unit costs (StagePartition below). A unit
// is one direct child of the root chain — a stem conv, a whole residual
// block, a pool, the classifier head — so splitting can never reorder or
// split a fused block. Unit costs blend two sources:
//   * the mapping's occupancy census (census_nonzeros summed over the
//     unit's prunable layers) — the static analog-work prior, exact in
//     plan row-slots but blind to digital layers and per-pixel counts;
//   * a one-shot micro-calibration timing pass (one forward through each
//     unit on a sample batch) — noisy but sees everything.
// The probe's forward pollutes the shared sims' ADC counters; the
// executor records the exact delta (probe_stats) so the owning engine
// can fold it into its baseline and keep counter deltas byte-identical
// to the sequential path.
//
// Determinism: stage boundaries never change what each child layer
// computes (Sequential::forward_range composes to forward), batches flow
// through the queues in submit order, and the shared sims' counter
// merges are locked commutative integer adds — so in deterministic
// batching mode outputs, counter deltas and serve digests are
// byte-identical across stage counts and vs the sequential engine.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "msim/analog_network.hpp"
#include "runtime/spsc_queue.hpp"
#include "serve/stats.hpp"

namespace tinyadc::serve {

/// One pipeline stage's contiguous unit range and cost estimate.
struct StageSpan {
  std::size_t begin = 0;   ///< first root-child index (inclusive)
  std::size_t end = 0;     ///< last root-child index (exclusive)
  double cost = 0.0;       ///< summed unit cost of the span
};

/// Minimize-the-maximum contiguous partition of `costs` into `stages`
/// spans (classic linear-partition DP, O(n²·K)). Every span is non-empty
/// while units remain; `stages` is clamped to [1, costs.size()]. The
/// returned bottleneck satisfies max_span ≤ total/K + max_unit, which for
/// bounded unit-cost spread keeps the partition within 2× of the mean
/// (tests/serve_pipeline_test.cpp checks the property on random censuses).
std::vector<StageSpan> partition_stages(const std::vector<double>& costs,
                                        int stages);

/// Runs batches through K stage threads connected by bounded SPSC queues.
///
/// `submit` is single-producer (one dispatcher thread): it blocks while
/// the pipeline's in-flight window (one queued + one executing batch per
/// stage) is full — that backpressure is the latency/memory bound. The
/// completion callback fires on the *last* stage's thread, in submit
/// order; keep it cheap and never call back into submit from it.
class PipelineExecutor {
 public:
  /// Builds stage spans from the compiled network's census blended with a
  /// one-shot timing probe over `sample` (any calibrated input batch,
  /// e.g. the first real batch), then starts the stage threads.
  PipelineExecutor(const msim::AnalogNetwork& compiled, int stages,
                   const Tensor& sample);
  ~PipelineExecutor();
  PipelineExecutor(const PipelineExecutor&) = delete;
  PipelineExecutor& operator=(const PipelineExecutor&) = delete;

  /// Completion: logits (empty on error) plus the error, if any.
  using Done = std::function<void(Tensor logits, std::exception_ptr error)>;

  /// Enqueues one (N, C, H, W) batch; blocks while the window is full.
  /// Single producer only. Throws after shutdown().
  void submit(Tensor images, Done done);

  /// Drains in-flight batches, closes the queues and joins the stage
  /// threads. Idempotent; also run by the destructor. Batches already
  /// submitted are always completed, never dropped.
  void shutdown();

  /// The partition in use (after census/timing blending).
  const std::vector<StageSpan>& spans() const { return spans_; }
  /// ADC/DAC counters the construction-time timing probe added to the
  /// shared sims — the owning engine folds this into its baseline so
  /// served-traffic deltas stay byte-identical to the sequential path.
  const msim::MsimStats& probe_stats() const { return probe_stats_; }
  /// Per-stage counters snapshot (approximate while running).
  std::vector<PipelineStageStats> stage_stats() const;

 private:
  struct Job {
    Tensor x;
    Done done;
    std::exception_ptr error;  ///< sticky: set once, later stages skip
  };
  struct Stage {
    std::size_t begin = 0, end = 0;
    std::unique_ptr<msim::AnalogSession> session;
    std::unique_ptr<runtime::SpscQueue<Job>> in;  ///< stage's input queue
    // Shared sims of the *next* stage's first prunable layers, prefetched
    // after each downstream push so the successor finds its plan streams
    // warm (DESIGN.md §13).
    std::vector<const msim::AnalogLayerSim*> next_sims;
    std::thread thread;
    // Counters (relaxed atomics would do; a dedicated mutex keeps TSan
    // conversations short and the hot path is milliseconds per batch).
    std::uint64_t batches = 0;
    std::int64_t busy_us = 0, stall_in_us = 0, stall_out_us = 0;
  };

  void stage_main(std::size_t k);

  const msim::AnalogNetwork& compiled_;
  std::vector<StageSpan> spans_;
  std::vector<Stage> stages_;
  msim::MsimStats probe_stats_;
  mutable std::mutex stats_mu_;  ///< guards the per-stage counters
  bool down_ = false;
};

}  // namespace tinyadc::serve
