// Deployment-artifact assembly: one `.tadc` file carrying everything a
// serving process needs to cold-start in milliseconds.
//
// Sections (see format.hpp for the container layout):
//
//   META     architecture name + ModelConfig — enough to rebuild the
//            layer graph with nn::build_model (weights come separately)
//   WEIGHTS  trained parameters + buffers (Model::serialize)
//   PRUNE    prune specs and structural selections (optional: absent for
//            dense deployments)
//   MAPPING  the full crossbar mapping — config, quantizers, reform index
//            maps, block grids, quantized codes, occupancy census
//   PLANS    MsimConfig + per-layer compiled execution state (ADC sizing,
//            variation draws, sparsity-packed plans)
//   CALIB    activation-calibration state (quantizer ranges, signed flags)
//
// load_artifact() reconstructs the whole deployment *without* invoking the
// pruning pipeline, the plan compiler or the calibration pass — verified
// by AnalogLayerSim::plan_compilations() / AnalogNetwork::calibration_runs()
// staying flat across a load. A loaded deployment produces bit-identical
// forward outputs and ADC counters to the in-process pipeline it was saved
// from, and re-saving it reproduces the input file byte for byte.
//
// load_artifact_mapped() is the zero-copy variant: the file is mmap()ed
// once and the hot payloads — the PLANS SoA streams and the MAPPING code
// grids — become read-only spans over the mapping instead of copies (the
// Deployment's MappedFile handle pins the pages; see DESIGN.md §14). With
// async streaming the cold sections (WEIGHTS, PRUNE, CALIB) are paged in by
// a background thread while the main thread validates the hot ones.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "artifact/mmap_file.hpp"
#include "core/prune_spec.hpp"
#include "msim/analog_network.hpp"
#include "nn/model.hpp"
#include "nn/models.hpp"
#include "xbar/mapping.hpp"

namespace tinyadc::artifact {

/// Model-identity metadata (the META section).
struct ArtifactMeta {
  std::string arch;        ///< zoo name for nn::build_model
  std::string model_name;  ///< Model::name() of the deployed instance
  nn::ModelConfig model_config;
};

/// Everything save_artifact() snapshots. All references must outlive the
/// call; `analog` must be calibrated.
struct ArtifactInputs {
  ArtifactMeta meta;
  nn::Model& model;  ///< non-const: serialization walks live named views
  const xbar::MappedNetwork& mapping;
  const msim::AnalogNetwork& analog;
  /// Optional pruning provenance (empty for dense deployments).
  std::vector<core::LayerPruneSpec> specs;
  std::vector<core::StructuralSelection> selections;
};

/// Writes a deployment artifact to `path`.
void save_artifact(const std::string& path, const ArtifactInputs& inputs);

/// Background page-in of artifact sections (the io stage of a staged
/// cold-start): advises the kernel that the extents will be needed and then
/// touches one byte per page, so the first forward pass never stalls on
/// major faults for the cold sections. Purely read-side; joining (wait_ms
/// or destruction) is the only synchronization a caller needs.
class SectionStreamer {
 public:
  SectionStreamer(
      std::shared_ptr<MappedFile> map,
      std::vector<std::pair<std::uint64_t, std::uint64_t>> extents);
  ~SectionStreamer();
  SectionStreamer(const SectionStreamer&) = delete;
  SectionStreamer& operator=(const SectionStreamer&) = delete;

  /// Joins the staging thread (idempotent) and returns its wall time in ms.
  double wait_ms();

 private:
  std::shared_ptr<MappedFile> map_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> extents_;
  double elapsed_ms_ = 0.0;
  std::thread thread_;
};

/// Identity of the artifact file a deployment was loaded from — the
/// version metadata a fleet registry surfaces so operators can tell which
/// bytes a tenant is actually serving after a hot-swap. The content digest
/// covers the hot sections only (META, MAPPING, PLANS): they are validated
/// eagerly by both load paths anyway, they pin the model identity (weights
/// reach inference through the quantized MAPPING codes and compiled PLANS),
/// and skipping the cold sections keeps the mapped load's async streaming
/// overlap intact (digesting the whole file would fault every page in
/// synchronously).
struct ArtifactInfo {
  std::string path;                     ///< file the deployment came from
  std::uint32_t container_version = 0;  ///< format.hpp container version
  std::uint64_t file_bytes = 0;         ///< total artifact size
  std::uint64_t content_digest = 0;     ///< FNV-1a over META+MAPPING+PLANS
};

/// Wall-clock breakdown of an artifact load (all milliseconds).
struct LoadPhases {
  double map_ms = 0.0;       ///< file open + mmap + container table parse
  double validate_ms = 0.0;  ///< section validation + engine construction
  double stream_ms = 0.0;    ///< async staging thread (finish_streaming())
};

/// A deployment reconstructed from an artifact. The members reference each
/// other (the analog network hooks the model and reads the mapping), so
/// they live behind stable unique_ptrs and the struct is move-only.
struct Deployment {
  ArtifactMeta meta;
  std::vector<core::LayerPruneSpec> specs;
  std::vector<core::StructuralSelection> selections;
  std::unique_ptr<nn::Model> model;
  std::unique_ptr<xbar::MappedNetwork> mapping;
  std::unique_ptr<msim::AnalogNetwork> analog;
  /// Non-null for mapped loads: pins the pages every borrowed plan/mapping
  /// span points into. (The spans also hold their own keeper references,
  /// so the handle here is observability + explicit lifetime, not the only
  /// thing keeping the mapping alive.)
  std::shared_ptr<MappedFile> mapped;
  /// Live async section streamer, if the load requested one. Destroyed
  /// (joined) with the deployment; finish_streaming() collects it earlier.
  std::shared_ptr<SectionStreamer> streamer;
  LoadPhases load_phases;
  /// Provenance of the file this deployment was loaded from; default
  /// (empty path, zero digest) when the deployment was built in-process.
  ArtifactInfo info;

  /// Joins the async streamer if one is still running and records its wall
  /// time in load_phases.stream_ms. No-op for copied/sync loads.
  void finish_streaming();
};

/// Loads a deployment artifact: rebuilds the model from META, restores the
/// weights, mapping, compiled plans and calibration state. Never touches
/// training, pruning, plan-compilation or calibration code paths.
Deployment load_artifact(const std::string& path);

/// Zero-copy load: mmap()s the artifact and restores the PLANS streams and
/// MAPPING code grids as read-only spans over the mapping (v3 payloads; v2
/// files transparently fall back to copies). With `async_stream` the cold
/// sections (WEIGHTS, PRUNE, CALIB) are paged in by a background thread
/// while the hot sections validate on the calling thread. Outputs, ADC
/// counters and serve digests are bit-identical to load_artifact(), and no
/// plan compilation or calibration runs either way.
Deployment load_artifact_mapped(const std::string& path,
                                bool async_stream = false);

/// Re-serializes a loaded deployment. save → load → save is byte-identical,
/// which is the round-trip guarantee tests/artifact_test.cpp enforces.
void save_artifact(const std::string& path, const Deployment& deployment);

}  // namespace tinyadc::artifact
