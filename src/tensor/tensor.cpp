#include "tensor.hpp"

#include <sstream>

namespace tinyadc {

std::int64_t numel_of(const Shape& shape) {
  std::int64_t n = 1;
  for (auto d : shape) {
    TINYADC_CHECK(d >= 0, "negative extent in shape " << shape_to_string(shape));
    n *= d;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor() : Tensor(Shape{0}) {}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      numel_(numel_of(shape_)),
      storage_(std::make_shared<std::vector<float>>(numel_, 0.0F)) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), numel_(numel_of(shape_)) {
  TINYADC_CHECK(static_cast<std::int64_t>(data.size()) == numel_,
                "data size " << data.size() << " does not match shape "
                             << shape_to_string(shape_));
  storage_ = std::make_shared<std::vector<float>>(std::move(data));
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::ones(Shape shape) { return full(std::move(shape), 1.0F); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i) p[i] = rng.normal(0.0F, stddev);
  return t;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i) p[i] = rng.uniform(lo, hi);
  return t;
}

Tensor Tensor::from(std::initializer_list<float> values) {
  return Tensor({static_cast<std::int64_t>(values.size())},
                std::vector<float>(values));
}

std::int64_t Tensor::dim(int d) const {
  const int n = ndim();
  if (d < 0) d += n;
  TINYADC_CHECK(d >= 0 && d < n,
                "dim " << d << " out of range for " << shape_to_string(shape_));
  return shape_[static_cast<std::size_t>(d)];
}

Tensor Tensor::reshape(Shape new_shape) const {
  std::int64_t known = 1;
  int infer_at = -1;
  for (std::size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      TINYADC_CHECK(infer_at < 0, "at most one -1 extent allowed in reshape");
      infer_at = static_cast<int>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (infer_at >= 0) {
    TINYADC_CHECK(known > 0 && numel_ % known == 0,
                  "cannot infer extent: numel " << numel_ << " vs known "
                                                << known);
    new_shape[static_cast<std::size_t>(infer_at)] = numel_ / known;
  }
  TINYADC_CHECK(numel_of(new_shape) == numel_,
                "reshape " << shape_to_string(shape_) << " -> "
                           << shape_to_string(new_shape)
                           << " changes element count");
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.numel_ = numel_;
  t.storage_ = storage_;
  return t;
}

Tensor Tensor::clone() const {
  Tensor t;
  t.shape_ = shape_;
  t.numel_ = numel_;
  t.storage_ = std::make_shared<std::vector<float>>(*storage_);
  return t;
}

float& Tensor::at(std::int64_t flat_index) {
  TINYADC_CHECK(flat_index >= 0 && flat_index < numel_,
                "flat index " << flat_index << " out of range [0, " << numel_
                              << ")");
  return (*storage_)[static_cast<std::size_t>(flat_index)];
}

float Tensor::at(std::int64_t flat_index) const {
  return const_cast<Tensor*>(this)->at(flat_index);
}

float& Tensor::at(std::int64_t row, std::int64_t col) {
  TINYADC_CHECK(ndim() == 2, "2-D access on " << shape_to_string(shape_));
  TINYADC_CHECK(row >= 0 && row < shape_[0] && col >= 0 && col < shape_[1],
                "index (" << row << ", " << col << ") out of range for "
                          << shape_to_string(shape_));
  return (*storage_)[static_cast<std::size_t>(row * shape_[1] + col)];
}

float Tensor::at(std::int64_t row, std::int64_t col) const {
  return const_cast<Tensor*>(this)->at(row, col);
}

float& Tensor::at4(std::int64_t n, std::int64_t c, std::int64_t h,
                   std::int64_t w) {
  TINYADC_CHECK(ndim() == 4, "4-D access on " << shape_to_string(shape_));
  TINYADC_CHECK(n >= 0 && n < shape_[0] && c >= 0 && c < shape_[1] && h >= 0 &&
                    h < shape_[2] && w >= 0 && w < shape_[3],
                "index (" << n << ", " << c << ", " << h << ", " << w
                          << ") out of range for " << shape_to_string(shape_));
  const std::int64_t flat =
      ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
  return (*storage_)[static_cast<std::size_t>(flat)];
}

float Tensor::at4(std::int64_t n, std::int64_t c, std::int64_t h,
                  std::int64_t w) const {
  return const_cast<Tensor*>(this)->at4(n, c, h, w);
}

void Tensor::fill(float value) {
  for (auto& v : *storage_) v = value;
}

void Tensor::copy_from(const Tensor& src) {
  TINYADC_CHECK(src.numel_ == numel_,
                "copy_from element-count mismatch: " << src.numel_ << " vs "
                                                     << numel_);
  *storage_ = *src.storage_;
}

std::string Tensor::to_string(std::int64_t max_values) const {
  std::ostringstream os;
  os << shape_to_string(shape_) << " {";
  const std::int64_t n = std::min(numel_, max_values);
  for (std::int64_t i = 0; i < n; ++i) {
    if (i > 0) os << ", ";
    os << (*storage_)[static_cast<std::size_t>(i)];
  }
  if (numel_ > n) os << ", …";
  os << "}";
  return os.str();
}

}  // namespace tinyadc
