// Deterministic pseudo-random number generation for reproducible training,
// dataset synthesis and fault injection.
//
// We use xoshiro256** (public domain, Blackman & Vigna) rather than
// std::mt19937 because it is faster, has a tiny state, and — critically for
// reproducibility — its output sequence is fully specified here rather than
// delegated to a standard-library implementation that distributions may
// consume differently across platforms. All distribution transforms
// (uniform, normal, bernoulli, permutation) are implemented in this header
// so a given seed yields bit-identical streams everywhere.
#pragma once

#include <cstdint>
#include <cmath>
#include <numbers>
#include <vector>

#include "check.hpp"

namespace tinyadc {

/// xoshiro256** generator with explicit, portable distribution transforms.
class Rng {
 public:
  /// Seeds the generator with splitmix64 expansion of `seed` (any value,
  /// including 0, is a valid seed).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from `seed`.
  void reseed(std::uint64_t seed) {
    // splitmix64 to spread a small seed over 256 bits of state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
    have_cached_normal_ = false;
  }

  /// Next raw 64-bit output.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) {
    return lo + static_cast<float>(uniform()) * (hi - lo);
  }

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t uniform_int(std::uint64_t n) {
    TINYADC_CHECK(n > 0, "uniform_int requires n > 0");
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  /// Standard normal via Box–Muller (caches the second deviate).
  double normal() {
    if (have_cached_normal_) {
      have_cached_normal_ = false;
      return cached_normal_;
    }
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_normal_ = r * std::sin(theta);
    have_cached_normal_ = true;
    return r * std::cos(theta);
  }

  /// Normal with mean/stddev as float.
  float normal(float mean, float stddev) {
    return mean + stddev * static_cast<float>(normal());
  }

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p) { return uniform() < p; }

  /// Fisher–Yates permutation of {0, …, n-1}.
  std::vector<std::size_t> permutation(std::size_t n) {
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_int(i));
      std::swap(idx[i - 1], idx[j]);
    }
    return idx;
  }

  /// Derive an independent child generator (for per-worker streams).
  Rng split() { return Rng(next_u64() ^ 0xa0761d6478bd642fULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cached_normal_ = 0.0;
  bool have_cached_normal_ = false;
};

}  // namespace tinyadc
