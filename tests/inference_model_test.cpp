// Per-inference energy/latency model: workload accounting, monotonicity
// with pruning, and component breakdown consistency.
#include <gtest/gtest.h>

#include "core/pruner.hpp"
#include "hw/inference_model.hpp"
#include "nn/models.hpp"

namespace tinyadc::hw {
namespace {

std::unique_ptr<nn::Model> tiny_model() {
  nn::ModelConfig mc;
  mc.num_classes = 4;
  mc.image_size = 8;
  mc.width_mult = 0.0625F;
  return nn::resnet18(mc);
}

xbar::MappingConfig map_cfg() {
  xbar::MappingConfig cfg;
  cfg.dims = {16, 16};
  return cfg;
}

TEST(MvmsPerInference, CountsConvPixelsAndFcOnce) {
  auto model = tiny_model();
  const auto mvms = mvms_per_inference(*model, {3, 8, 8});
  ASSERT_EQ(mvms.size(), model->prunable_views().size());
  // Stem conv: stride 1 pad 1 on 8x8 → 64 output pixels.
  EXPECT_EQ(mvms.front(), 64);
  // FC head: one MVM per image.
  EXPECT_EQ(mvms.back(), 1);
  // Downsampled stages shrink: layer4 convs see 1x1 spatial.
  EXPECT_EQ(mvms[mvms.size() - 2], 1);
}

TEST(MvmsPerInference, ValidatesShape) {
  auto model = tiny_model();
  EXPECT_THROW(mvms_per_inference(*model, {3, 8}), CheckError);
}

TEST(EstimateInference, ComponentsSumToTotal) {
  auto model = tiny_model();
  const auto mvms = mvms_per_inference(*model, {3, 8, 8});
  const auto net = xbar::map_model(*model, map_cfg());
  const CostConstants constants;
  const auto cost = estimate_inference(net, mvms, constants);
  EXPECT_GT(cost.latency_s, 0.0);
  EXPECT_GT(cost.energy_j, 0.0);
  EXPECT_NEAR(cost.adc_energy_j + cost.array_energy_j + cost.dac_energy_j +
                  cost.digital_energy_j,
              cost.energy_j, 1e-12);
  double layer_latency = 0.0, layer_energy = 0.0;
  for (const auto& l : cost.layers) {
    layer_latency += l.latency_s;
    layer_energy += l.energy_j;
    EXPECT_GE(l.adc_conversions, 0);
  }
  EXPECT_NEAR(layer_latency, cost.latency_s, 1e-12);
  EXPECT_NEAR(layer_energy, cost.energy_j, 1e-9);
  EXPECT_GT(cost.fps(), 0.0);
  EXPECT_GT(cost.images_per_joule(), 0.0);
}

TEST(EstimateInference, CpPruningCutsEnergy) {
  auto dense = tiny_model();
  const auto mvms = mvms_per_inference(*dense, {3, 8, 8});
  const auto dense_net = xbar::map_model(*dense, map_cfg());
  const CostConstants constants;
  const auto dense_cost = estimate_inference(dense_net, mvms, constants);

  auto pruned = tiny_model();
  auto views = pruned->prunable_views();
  for (std::size_t i = 1; i < views.size(); ++i) {
    core::MatrixRef ref{views[i].weight->value.data(), views[i].rows,
                        views[i].cols};
    core::project_column_proportional(ref, {16, 16}, 2);
  }
  const auto pruned_net = xbar::map_model(*pruned, map_cfg());
  const auto pruned_cost = estimate_inference(pruned_net, mvms, constants);
  // Same MVM counts, but smaller ADCs everywhere after layer 0.
  EXPECT_LT(pruned_cost.energy_j, dense_cost.energy_j);
  EXPECT_LT(pruned_cost.adc_energy_j, dense_cost.adc_energy_j);
  // Latency is ADC-rate-bound per column, unchanged by resolution here.
  EXPECT_NEAR(pruned_cost.latency_s, dense_cost.latency_s, 1e-12);
}

TEST(EstimateInference, StructuredPruningCutsLatencyViaNarrowerBlocks) {
  auto model = tiny_model();
  const auto mvms = mvms_per_inference(*model, {3, 8, 8});
  // Remove one crossbar's worth of filters from a wide layer.
  auto specs = core::uniform_cp_specs(*model, 1, {16, 16});
  core::add_structured(specs, *model, 0.6, 0.0, {16, 16});
  auto views = model->prunable_views();
  bool any_removed = false;
  for (std::size_t i = 0; i < views.size(); ++i) {
    core::MatrixRef ref{views[i].weight->value.data(), views[i].rows,
                        views[i].cols};
    core::project_combined(ref, specs[i], {16, 16});
    any_removed |= specs[i].remove_filters > 0;
  }
  ASSERT_TRUE(any_removed);
  const auto net = xbar::map_model(*model, map_cfg(), specs);
  const CostConstants constants;
  const auto cost = estimate_inference(net, mvms, constants);

  auto dense = tiny_model();
  const auto dense_net = xbar::map_model(*dense, map_cfg());
  const auto dense_cost = estimate_inference(dense_net, mvms, constants);
  EXPECT_LT(cost.energy_j, dense_cost.energy_j);
}

TEST(EstimateInference, ValidatesAlignment) {
  auto model = tiny_model();
  const auto net = xbar::map_model(*model, map_cfg());
  const CostConstants constants;
  std::vector<std::int64_t> wrong(3, 1);
  EXPECT_THROW(estimate_inference(net, wrong, constants), CheckError);
}

}  // namespace
}  // namespace tinyadc::hw
