#include "nn/init.hpp"

#include <cmath>

#include "tensor/check.hpp"

namespace tinyadc::nn {

void kaiming_normal_(Tensor& w, std::int64_t fan_in, Rng& rng) {
  TINYADC_CHECK(fan_in > 0, "kaiming init requires positive fan_in");
  const float stddev = std::sqrt(2.0F / static_cast<float>(fan_in));
  float* p = w.data();
  for (std::int64_t i = 0; i < w.numel(); ++i) p[i] = rng.normal(0.0F, stddev);
}

}  // namespace tinyadc::nn
