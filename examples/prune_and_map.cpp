// Scenario: combined pruning + crossbar mapping + analog verification.
//
// Reproduces the paper's two-pronged recipe on a VGG-16-style network:
// crossbar-aware filter pruning removes whole crossbar arrays, column
// proportional pruning shrinks every surviving ADC, and the functional
// mixed-signal simulator proves the reduced-ADC readout is bit-exact.
//
// Run: ./build/examples/prune_and_map
#include <cstdio>

#include "core/pruner.hpp"
#include "data/synthetic.hpp"
#include "msim/analog_mvm.hpp"
#include "nn/models.hpp"
#include "xbar/programming.hpp"

int main() {
  using namespace tinyadc;

  data::SyntheticSpec dspec = data::cifar100_like();
  dspec.image_size = 8;
  dspec.train_per_class = 24;
  dspec.test_per_class = 8;
  const auto data = data::make_synthetic(dspec);

  nn::ModelConfig mcfg;
  mcfg.num_classes = dspec.num_classes;
  mcfg.image_size = dspec.image_size;
  mcfg.width_mult = 0.125F;
  auto model = nn::vgg16(mcfg);

  // Combined pruning: 25 % of filters (rounded down to whole crossbar
  // columns) + 4x column proportional pruning.
  core::PipelineConfig pcfg;
  pcfg.xbar = {16, 16};
  pcfg.pretrain.epochs = 10;
  pcfg.pretrain.batch_size = 32;
  pcfg.pretrain.sgd.lr = 0.03F;
  pcfg.pretrain.sgd.total_epochs = 10;
  pcfg.admm.epochs = 6;
  pcfg.admm.batch_size = 32;
  pcfg.admm.sgd.lr = 0.01F;
  pcfg.retrain.epochs = 6;
  pcfg.retrain.batch_size = 32;
  pcfg.retrain.sgd.lr = 0.005F;

  auto specs = core::uniform_cp_specs(*model, 4, pcfg.xbar);
  core::add_structured(specs, *model, /*filter_frac=*/0.25,
                       /*shape_frac=*/0.0, pcfg.xbar);
  const auto result =
      core::run_pipeline(*model, data.train, data.test, specs, pcfg);

  std::printf("baseline %.1f%% -> combined-pruned %.1f%% (rate %.1fx)\n",
              100.0 * result.baseline_accuracy,
              100.0 * result.final_accuracy, result.report.pruning_rate());

  // Map the pruned network and account crossbars + ADCs per layer. Passing
  // the specs lets the mapper compact the structurally-pruned filters away
  // (the paper's reform step), converting them into crossbar reductions.
  xbar::MappingConfig map_cfg;
  map_cfg.dims = pcfg.xbar;
  const auto net = xbar::map_model(*model, map_cfg, specs);
  std::printf("\n%-22s %8s %8s %10s %9s\n", "layer", "dense", "active",
              "occupancy", "ADC bits");
  for (const auto& layer : net.layers) {
    std::printf("%-22s %8lld %8lld %10lld %9d\n", layer.name.c_str(),
                static_cast<long long>(layer.dense_blocks() *
                                       layer.arrays_per_block()),
                static_cast<long long>(layer.active_arrays()),
                static_cast<long long>(layer.max_active_rows()),
                layer.design_adc_bits());
  }
  std::printf("crossbar reduction: %.1f%%\n",
              100.0 * net.crossbar_reduction());

  // One-time programming cost: pruned chips also load faster (zero-level
  // cells need no SET pulse).
  const auto prog = xbar::programming_cost(net);
  std::printf("programming: %lld of %lld cells, %.2f ms, %.2f uJ\n",
              static_cast<long long>(prog.cells_programmed),
              static_cast<long long>(prog.cells_total), 1e3 * prog.time_s,
              1e6 * prog.energy_j);

  // Verify the central claim on a real layer: analog MVM with the REDUCED
  // Eq. 1 ADC equals the integer reference exactly.
  const auto& probe = net.layers[4];
  msim::AnalogLayerSim sim(probe, {});
  Rng rng(5);
  std::vector<std::int32_t> x(static_cast<std::size_t>(probe.rows));
  for (auto& v : x)
    v = static_cast<std::int32_t>(rng.uniform_int(1U << map_cfg.input_bits));
  const bool exact = sim.mvm(x) == xbar::reference_mvm(probe, x);
  std::printf(
      "\nanalog MVM on '%s' with a %d-bit ADC: %s (clips: %lld)\n",
      probe.name.c_str(), sim.adc_bits(),
      exact ? "bit-exact" : "MISMATCH",
      static_cast<long long>(sim.stats().adc_clip_events));
  return exact ? 0 : 1;
}
