// Extension tests: sensitivity-scanned per-layer CP rates (non-uniform
// pruning, beyond the paper's uniform-rate protocol).
#include <gtest/gtest.h>

#include "core/pruner.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "tensor/ops.hpp"

namespace tinyadc::core {
namespace {

struct Fixture {
  std::unique_ptr<nn::Model> model;
  data::DatasetPair data;

  Fixture() {
    nn::ModelConfig mc;
    mc.num_classes = 4;
    mc.image_size = 8;
    mc.width_mult = 0.0625F;
    model = nn::resnet18(mc);

    data::SyntheticSpec spec;
    spec.num_classes = 4;
    spec.image_size = 8;
    spec.train_per_class = 20;
    spec.test_per_class = 10;
    spec.seed = 61;
    data = data::make_synthetic(spec);

    nn::TrainConfig tc;
    tc.epochs = 8;
    tc.batch_size = 16;
    tc.sgd.lr = 0.05F;
    tc.sgd.total_epochs = 8;
    nn::Trainer trainer(*model, tc);
    trainer.fit(data.train, data.test);
  }
};

TEST(Sensitivity, LeavesModelWeightsUntouched) {
  Fixture f;
  std::vector<Tensor> before;
  for (const auto& v : f.model->prunable_views())
    before.push_back(v.weight->value.clone());
  sensitivity_cp_specs(*f.model, f.data.test, {8, 8}, {2, 4, 8}, 0.05);
  auto views = f.model->prunable_views();
  for (std::size_t i = 0; i < views.size(); ++i)
    EXPECT_TRUE(allclose(views[i].weight->value, before[i], 0.0F));
}

TEST(Sensitivity, SpecLayoutMatchesViews) {
  Fixture f;
  const auto specs =
      sensitivity_cp_specs(*f.model, f.data.test, {8, 8}, {2, 4}, 0.05);
  EXPECT_EQ(specs.size(), f.model->prunable_views().size());
  EXPECT_FALSE(specs.front().enabled);  // first conv skipped
}

TEST(Sensitivity, ZeroToleranceMeansConservativeRates) {
  // With a huge tolerance every layer takes the max rate; with a negative
  // -like zero tolerance layers only keep rates that cost literally
  // nothing. The strict specs can never be more aggressive than the loose
  // ones.
  Fixture f;
  const auto strict =
      sensitivity_cp_specs(*f.model, f.data.test, {8, 8}, {2, 4, 8}, 0.0);
  const auto loose =
      sensitivity_cp_specs(*f.model, f.data.test, {8, 8}, {2, 4, 8}, 1.0);
  for (std::size_t i = 0; i < strict.size(); ++i) {
    if (!strict[i].enabled) continue;
    // Larger keep = milder pruning. keep==0 means "no constraint chosen".
    ASSERT_EQ(loose[i].cp_keep, 1);  // tolerance 1.0 accepts the 8x rate
    if (strict[i].cp_keep != 0)
      EXPECT_GE(strict[i].cp_keep, loose[i].cp_keep);
  }
}

TEST(Sensitivity, PipelineRunsOnSensitivitySpecs) {
  Fixture f;
  auto specs =
      sensitivity_cp_specs(*f.model, f.data.test, {8, 8}, {2, 4, 8}, 0.1);
  PipelineConfig cfg;
  cfg.xbar = {8, 8};
  cfg.pretrain.epochs = 0;
  cfg.admm.epochs = 5;
  cfg.admm.batch_size = 16;
  cfg.admm.sgd.lr = 0.02F;
  cfg.retrain.epochs = 5;
  cfg.retrain.batch_size = 16;
  cfg.retrain.sgd.lr = 0.01F;
  const auto result =
      run_pipeline(*f.model, f.data.train, f.data.test, specs, cfg);
  // Sensitivity specs bounded each layer's immediate damage at 10pp, so
  // after ADMM + retraining the model must stay comfortably above chance
  // (0.25 for 4 classes).
  EXPECT_GT(result.final_accuracy, 0.45);
  auto views = f.model->prunable_views();
  for (std::size_t i = 0; i < views.size(); ++i) {
    ConstMatrixRef m{views[i].weight->value.data(), views[i].rows,
                     views[i].cols};
    EXPECT_TRUE(satisfies_combined(m, specs[i], {8, 8}));
  }
}

TEST(Sensitivity, ValidatesArguments) {
  Fixture f;
  EXPECT_THROW(sensitivity_cp_specs(*f.model, f.data.test, {8, 8}, {}, 0.1),
               CheckError);
  EXPECT_THROW(
      sensitivity_cp_specs(*f.model, f.data.test, {8, 8}, {2}, -0.1),
      CheckError);
}

}  // namespace
}  // namespace tinyadc::core
