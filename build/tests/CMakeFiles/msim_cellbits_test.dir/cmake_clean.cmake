file(REMOVE_RECURSE
  "CMakeFiles/msim_cellbits_test.dir/msim_cellbits_test.cpp.o"
  "CMakeFiles/msim_cellbits_test.dir/msim_cellbits_test.cpp.o.d"
  "msim_cellbits_test"
  "msim_cellbits_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_cellbits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
