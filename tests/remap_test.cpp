// Fault-aware row remapping: sampler/applier equivalence, damage
// accounting, and the greedy remapper's guarantees.
#include <gtest/gtest.h>

#include "fault/remap.hpp"
#include "tensor/ops.hpp"

namespace tinyadc::fault {
namespace {

xbar::MappedLayer mapped(const Tensor& m) {
  xbar::MappingConfig cfg;
  cfg.dims = {8, 8};
  return xbar::map_matrix(m, "l", cfg);
}

TEST(FaultMap, SamplerHitsExpectedFraction) {
  tinyadc::Rng gen(1);
  auto layer = mapped(Tensor::randn({16, 16}, gen));
  FaultSpec spec;
  spec.rate = 0.1;
  tinyadc::Rng rng(2);
  const auto map = sample_fault_map(layer, spec, rng);
  // 256 weights × 8 cells = 2048 cells; ~10 % faulty.
  EXPECT_NEAR(static_cast<double>(map.total_faults()) / 2048.0, 0.1, 0.03);
}

TEST(FaultMap, IdentityPermApplicationMatchesDirectInjection) {
  // apply_fault_map under identity perms must equal inject_faults when both
  // consume the same random stream.
  tinyadc::Rng gen(3);
  Tensor m = Tensor::randn({16, 8}, gen);
  auto a = mapped(m);
  auto b = mapped(m);
  FaultSpec spec;
  spec.rate = 0.2;
  spec.sa0_fraction = 0.7;
  tinyadc::Rng r1(4), r2(4);
  inject_faults(a, spec, r1);
  const auto map = sample_fault_map(b, spec, r2);
  apply_fault_map(b, map, identity_permutations(b));
  for (std::size_t i = 0; i < a.blocks.size(); ++i)
    EXPECT_EQ(a.blocks[i].q, b.blocks[i].q) << "block " << i;
}

TEST(FaultMap, DamageZeroWithoutFaults) {
  tinyadc::Rng gen(5);
  auto layer = mapped(Tensor::randn({8, 8}, gen));
  FaultMap empty;
  empty.blocks.resize(layer.blocks.size());
  EXPECT_EQ(fault_damage(layer, empty, identity_permutations(layer)), 0);
}

TEST(FaultMap, DamageMatchesAppliedDelta) {
  tinyadc::Rng gen(6);
  auto layer = mapped(Tensor::randn({8, 8}, gen));
  FaultSpec spec;
  spec.rate = 0.15;
  tinyadc::Rng rng(7);
  const auto map = sample_fault_map(layer, spec, rng);
  const auto perms = identity_permutations(layer);
  const std::int64_t predicted = fault_damage(layer, map, perms);
  auto copy = layer;
  apply_fault_map(copy, map, perms);
  std::int64_t realized = 0;
  for (std::size_t b = 0; b < layer.blocks.size(); ++b)
    for (std::size_t k = 0; k < layer.blocks[b].q.size(); ++k)
      realized += std::abs(copy.blocks[b].q[k] - layer.blocks[b].q[k]);
  EXPECT_EQ(predicted, realized);
}

TEST(Remap, GreedyNeverWorseThanIdentity) {
  for (std::uint64_t seed = 10; seed < 20; ++seed) {
    tinyadc::Rng gen(seed);
    auto layer = mapped(Tensor::randn({16, 16}, gen));
    FaultSpec spec;
    spec.rate = 0.1;
    tinyadc::Rng rng(seed * 7);
    const auto map = sample_fault_map(layer, spec, rng);
    const auto greedy = remap_rows_greedy(layer, map);
    EXPECT_LE(fault_damage(layer, map, greedy),
              fault_damage(layer, map, identity_permutations(layer)))
        << "seed " << seed;
  }
}

TEST(Remap, GreedyProducesValidPermutations) {
  tinyadc::Rng gen(21);
  auto layer = mapped(Tensor::randn({16, 8}, gen));
  FaultSpec spec;
  spec.rate = 0.3;
  tinyadc::Rng rng(22);
  const auto map = sample_fault_map(layer, spec, rng);
  const auto perms = remap_rows_greedy(layer, map);
  ASSERT_EQ(perms.size(), layer.blocks.size());
  for (std::size_t b = 0; b < perms.size(); ++b) {
    std::vector<bool> seen(perms[b].size(), false);
    for (std::int64_t p : perms[b]) {
      ASSERT_GE(p, 0);
      ASSERT_LT(p, static_cast<std::int64_t>(perms[b].size()));
      EXPECT_FALSE(seen[static_cast<std::size_t>(p)]);
      seen[static_cast<std::size_t>(p)] = true;
    }
  }
}

TEST(Remap, CpPrunedLayerCanAbsorbSa0Completely) {
  // A CP-pruned block has mostly-zero rows; if the faults are SA0-only and
  // fewer wordlines are faulty than there are all-zero rows per... the
  // greedy remapper should often park every faulty wordline under a zero
  // weight, reaching zero damage.
  Tensor m = Tensor::zeros({8, 8});
  for (int c = 0; c < 8; ++c) m.at(c % 2, c) = 1.0F;  // 2 live rows only
  auto layer = mapped(m);
  FaultSpec spec;
  spec.rate = 0.05;
  spec.sa0_fraction = 1.0;
  tinyadc::Rng rng(30);
  const auto map = sample_fault_map(layer, spec, rng);
  if (map.total_faults() == 0) GTEST_SKIP();
  const auto greedy = remap_rows_greedy(layer, map);
  EXPECT_EQ(fault_damage(layer, map, greedy), 0);
}

TEST(Remap, AlignmentValidated) {
  tinyadc::Rng gen(31);
  auto layer = mapped(Tensor::randn({8, 8}, gen));
  FaultMap bad;  // wrong block count
  EXPECT_THROW(fault_damage(layer, bad, identity_permutations(layer)),
               tinyadc::CheckError);
}

}  // namespace
}  // namespace tinyadc::fault
