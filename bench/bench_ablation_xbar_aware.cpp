// Ablation E8: is the crossbar-size-aware rounding of structured pruning
// (§III-D) actually load-bearing? Compares filter pruning with and without
// rounding removals to crossbar-column multiples, measuring how much of the
// removed weight volume converts into removed crossbar arrays.
//
// Expected shape: aware pruning converts ~100 % of removed filters into
// array reductions; unaware pruning strands remainder filters in partially
// filled arrays, so its crossbar reduction lags its weight reduction.
#include <cmath>

#include "hw/cost_model.hpp"

#include "bench_util.hpp"

namespace {

using namespace tinyadc;

void run(const char* net, std::int64_t classes, double filter_frac) {
  for (bool aware : {true, false}) {
    auto model = bench::full_width_model(net, classes);
    const xbar::MappingConfig map_cfg = bench::paper_mapping();
    auto specs = core::uniform_cp_specs(*model, 1, map_cfg.dims);
    core::add_structured(specs, *model, filter_frac, 0.0, map_cfg.dims,
                         aware);
    auto views = model->prunable_views();
    std::int64_t removed_weights = 0, total_weights = 0;
    for (std::size_t i = 0; i < views.size(); ++i) {
      core::MatrixRef ref{views[i].weight->value.data(), views[i].rows,
                          views[i].cols};
      core::project_combined(ref, specs[i], map_cfg.dims);
      total_weights += views[i].rows * views[i].cols;
      removed_weights += specs[i].remove_filters * views[i].rows;
    }
    const auto mapped = xbar::map_model(*model, map_cfg, specs);
    const double weight_reduction =
        static_cast<double>(removed_weights) / total_weights;
    const double xbar_reduction = mapped.crossbar_reduction();
    const double conversion =
        weight_reduction > 0 ? xbar_reduction / weight_reduction : 0.0;
    std::printf("%-10s %-9s %12.1f%% %14.1f%% %14.1f%% %12.2f\n", net,
                aware ? "aware" : "unaware", 100.0 * filter_frac,
                100.0 * weight_reduction, 100.0 * xbar_reduction, conversion);
  }
}

}  // namespace

int main() {
  std::printf("=== Ablation E8: crossbar-size-aware structured pruning ===\n");
  std::printf("(filter pruning on full-width models, 128x128 crossbars)\n\n");
  std::printf("%-10s %-9s %13s %15s %15s %12s\n", "network", "rounding",
              "filter frac", "weights removed", "xbar reduction",
              "conversion");
  tinyadc::bench::hr(80);
  run("resnet18", 1000, 0.30);
  run("resnet18", 1000, 0.55);
  run("vgg16", 100, 0.30);
  run("vgg16", 100, 0.55);
  std::printf("\n(conversion = crossbar reduction / weight reduction; aware "
              "rounding should sit at ~1.0,\n unaware below — stranded "
              "remainder filters still occupy whole arrays)\n");
  return 0;
}
