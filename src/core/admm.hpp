// ADMM regularizer for constraint-set pruning (the paper's §III-B).
//
// Training alternates two sub-problems:
//  (4) SGD on  f(W) + Σ ρ/2 ‖W − Zᵗ + Uᵗ‖²  — handled by adding
//      ρ(W − Z + U) to the weight gradients via the Trainer grad hook;
//  (5) Zᵗ⁺¹ = Π_S(Wᵗ⁺¹ + Uᵗ)               — the Euclidean projection of
//      prune_spec.hpp, run at epoch boundaries;
//  with the dual update Uᵗ⁺¹ = Uᵗ + Wᵗ⁺¹ − Zᵗ⁺¹.
// After convergence, hard_prune() sets W = Π_S(W) and records the support
// masks used for masked retraining.
#pragma once

#include <vector>

#include "core/prune_spec.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"

namespace tinyadc::core {

/// ADMM hyperparameters.
struct AdmmConfig {
  float rho = 1e-2F;      ///< penalty ρ (uniform over layers)
  int z_update_every = 1; ///< epochs between Z/U updates
};

/// Residual diagnostics (property P5 in DESIGN.md).
struct AdmmResiduals {
  double primal = 0.0;  ///< ‖W − Z‖_F over all constrained layers
  double dual = 0.0;    ///< ρ·‖Zᵗ − Zᵗ⁻¹‖_F over all constrained layers
};

/// Drives ADMM regularization over a model's prunable weights.
///
/// The spec vector must align 1:1 with Model::prunable_views() order.
class AdmmPruner {
 public:
  AdmmPruner(nn::Model& model, std::vector<LayerPruneSpec> specs,
             CrossbarDims dims, AdmmConfig config);

  /// Z ← Π(W), U ← 0. Call once before the ADMM training phase.
  void initialize();

  /// Installs grad/epoch hooks on `trainer` so its fit() runs subproblem (4)
  /// with periodic Z/U updates.
  void attach(nn::Trainer& trainer);

  /// Adds ρ(W − Z + U) to every constrained weight gradient (grad hook).
  void add_proximal_gradient();

  /// Runs the Z-projection and dual update; returns residuals.
  AdmmResiduals update_duals();

  /// Projects W onto the constraint set in place and snapshots the support
  /// masks for masked retraining, recording each layer's structural
  /// selection (the reform geometry the mapper must use).
  void hard_prune();

  /// Per-layer structural selections recorded by hard_prune() (aligned with
  /// Model::prunable_views(); empty selections for CP-only layers).
  const std::vector<StructuralSelection>& selections() const {
    return selections_;
  }

  /// Re-applies the recorded masks to W (post-optimizer-step hook during
  /// masked retraining). Requires hard_prune() first.
  void enforce_masks();

  /// Installs the mask-enforcement hook on `trainer` (for retraining).
  void attach_mask_enforcement(nn::Trainer& trainer);

  /// True once hard_prune() has run.
  bool pruned() const { return !masks_.empty(); }

  /// Layer specs (aligned with Model::prunable_views()).
  const std::vector<LayerPruneSpec>& specs() const { return specs_; }
  /// Crossbar dims the constraints are defined over.
  CrossbarDims dims() const { return dims_; }
  /// Most recent residuals from update_duals().
  const AdmmResiduals& residuals() const { return last_residuals_; }

  /// Auxiliary variable Z for layer `i` (storage layout; empty when the
  /// layer's spec is inactive). Exposed for the determinism tests.
  const std::vector<float>& z(std::size_t i) const { return z_[i]; }
  /// Scaled dual U for layer `i` (same caveats as z()).
  const std::vector<float>& u(std::size_t i) const { return u_[i]; }

 private:
  MatrixRef view_ref(std::size_t i);

  nn::Model& model_;
  std::vector<LayerPruneSpec> specs_;
  CrossbarDims dims_;
  AdmmConfig config_;
  std::vector<nn::WeightMatrixView> views_;
  std::vector<std::vector<float>> z_;      // auxiliary variables, storage layout
  std::vector<std::vector<float>> u_;      // scaled duals, storage layout
  std::vector<std::vector<float>> masks_;  // support masks after hard_prune
  std::vector<StructuralSelection> selections_;  // reform geometry
  AdmmResiduals last_residuals_;
  // Persistent update_duals() scratch (grow-only; sized to the largest
  // layer): Zᵗ snapshot and per-chunk residual partial sums.
  std::vector<float> zprev_scratch_;
  std::vector<double> partials_;
};

}  // namespace tinyadc::core
