#include "core/admm.hpp"

#include <algorithm>
#include <cmath>

#include "runtime/parallel.hpp"
#include "tensor/check.hpp"

namespace tinyadc::core {

namespace {

// Elements per parallel chunk of the elementwise ADMM sweeps. Chunk
// boundaries depend only on this constant, so per-chunk partial sums merged
// in ascending chunk order are bit-identical at any thread count (the same
// contract as the PR 2 fault-trial reduction).
constexpr std::int64_t kAdmmGrain = 16384;

}  // namespace

AdmmPruner::AdmmPruner(nn::Model& model, std::vector<LayerPruneSpec> specs,
                       CrossbarDims dims, AdmmConfig config)
    : model_(model),
      specs_(std::move(specs)),
      dims_(dims),
      config_(config),
      views_(model.prunable_views()) {
  TINYADC_CHECK(specs_.size() == views_.size(),
                "spec count " << specs_.size() << " != prunable layer count "
                              << views_.size());
  TINYADC_CHECK(config_.rho > 0.0F, "rho must be positive");
  TINYADC_CHECK(config_.z_update_every >= 1, "z_update_every must be >= 1");
}

MatrixRef AdmmPruner::view_ref(std::size_t i) {
  auto& v = views_[i];
  return MatrixRef{v.weight->value.data(), v.rows, v.cols};
}

void AdmmPruner::initialize() {
  z_.assign(views_.size(), {});
  u_.assign(views_.size(), {});
  for (std::size_t i = 0; i < views_.size(); ++i) {
    if (!specs_[i].active()) continue;
    const auto n = static_cast<std::size_t>(views_[i].rows * views_[i].cols);
    const float* w = views_[i].weight->value.data();
    z_[i].assign(w, w + n);
    project_combined({z_[i].data(), views_[i].rows, views_[i].cols}, specs_[i],
                     dims_);
    u_[i].assign(n, 0.0F);
  }
}

void AdmmPruner::attach(nn::Trainer& trainer) {
  initialize();
  trainer.set_grad_hook([this] { add_proximal_gradient(); });
  trainer.set_epoch_hook([this](int epoch) {
    if ((epoch + 1) % config_.z_update_every == 0)
      last_residuals_ = update_duals();
  });
}

void AdmmPruner::add_proximal_gradient() {
  TINYADC_CHECK(!z_.empty(), "AdmmPruner used before initialize()");
  for (std::size_t i = 0; i < views_.size(); ++i) {
    if (!specs_[i].active()) continue;
    float* g = views_[i].weight->grad.data();
    const float* w = views_[i].weight->value.data();
    const float* z = z_[i].data();
    const float* u = u_[i].data();
    const std::int64_t n = views_[i].rows * views_[i].cols;
    const float rho = config_.rho;
    runtime::parallel_for(0, n, kAdmmGrain,
                          [&](std::int64_t k0, std::int64_t k1) {
                            for (std::int64_t k = k0; k < k1; ++k)
                              g[k] += rho * (w[k] - z[k] + u[k]);
                          });
  }
}

AdmmResiduals AdmmPruner::update_duals() {
  TINYADC_CHECK(!z_.empty(), "AdmmPruner used before initialize()");
  AdmmResiduals res;
  double primal_sq = 0.0;
  double dual_sq = 0.0;
  for (std::size_t i = 0; i < views_.size(); ++i) {
    if (!specs_[i].active()) continue;
    const float* w = views_[i].weight->value.data();
    const std::int64_t n = views_[i].rows * views_[i].cols;
    std::vector<float>& z = z_[i];
    std::vector<float>& u = u_[i];
    // Snapshot Zᵗ and form the pre-projection candidate W + U in one fused
    // parallel pass. The snapshot lives in a persistent grow-only scratch —
    // no per-call full-tensor allocation.
    if (zprev_scratch_.size() < static_cast<std::size_t>(n))
      zprev_scratch_.resize(static_cast<std::size_t>(n));
    float* zp = zprev_scratch_.data();
    float* zd = z.data();
    float* ud = u.data();
    runtime::parallel_for(0, n, kAdmmGrain,
                          [&](std::int64_t k0, std::int64_t k1) {
                            for (std::int64_t k = k0; k < k1; ++k) {
                              zp[k] = zd[k];
                              zd[k] = w[k] + ud[k];
                            }
                          });
    // Z ← Π(W + U)
    project_combined({zd, views_[i].rows, views_[i].cols}, specs_[i], dims_);
    // U ← U + W − Z fused with the residual accumulation: per-chunk partial
    // sums, merged serially in ascending chunk order below. The loop runs
    // over *chunk indices* so the grouping of the floating-point sums is
    // fixed by kAdmmGrain alone — the runtime's serial fallback hands the
    // body one whole-range span, which would otherwise collapse all chunks
    // into a single differently-rounded accumulation.
    const std::int64_t num_chunks = (n + kAdmmGrain - 1) / kAdmmGrain;
    if (partials_.size() < static_cast<std::size_t>(2 * num_chunks))
      partials_.resize(static_cast<std::size_t>(2 * num_chunks));
    double* parts = partials_.data();
    runtime::parallel_for(
        0, num_chunks, 1, [&](std::int64_t c0, std::int64_t c1) {
          for (std::int64_t c = c0; c < c1; ++c) {
            const std::int64_t k0 = c * kAdmmGrain;
            const std::int64_t k1 = std::min(n, k0 + kAdmmGrain);
            double p_sq = 0.0;
            double d_sq = 0.0;
            for (std::int64_t k = k0; k < k1; ++k) {
              ud[k] += w[k] - zd[k];
              const double p = static_cast<double>(w[k]) - zd[k];
              const double d = static_cast<double>(zd[k]) - zp[k];
              p_sq += p * p;
              d_sq += d * d;
            }
            parts[2 * c] = p_sq;
            parts[2 * c + 1] = d_sq;
          }
        });
    for (std::int64_t c = 0; c < num_chunks; ++c) {
      primal_sq += parts[2 * c];
      dual_sq += parts[2 * c + 1];
    }
  }
  res.primal = std::sqrt(primal_sq);
  res.dual = static_cast<double>(config_.rho) * std::sqrt(dual_sq);
  return res;
}

void AdmmPruner::hard_prune() {
  masks_.assign(views_.size(), {});
  selections_.assign(views_.size(), {});
  for (std::size_t i = 0; i < views_.size(); ++i) {
    if (!specs_[i].active()) continue;
    MatrixRef m = view_ref(i);
    selections_[i] = project_combined_tracked(m, specs_[i], dims_);
    masks_[i] = support_mask({m.data, m.rows, m.cols});
  }
}

void AdmmPruner::enforce_masks() {
  TINYADC_CHECK(!masks_.empty(), "enforce_masks before hard_prune");
  for (std::size_t i = 0; i < views_.size(); ++i) {
    if (masks_[i].empty()) continue;
    apply_mask(view_ref(i), masks_[i]);
  }
}

void AdmmPruner::attach_mask_enforcement(nn::Trainer& trainer) {
  TINYADC_CHECK(!masks_.empty(), "attach_mask_enforcement before hard_prune");
  trainer.set_grad_hook({});
  trainer.set_epoch_hook({});
  trainer.set_step_hook([this] { enforce_masks(); });
}

}  // namespace tinyadc::core
