// Ablation E9: what happens when the ADC is provisioned BELOW the Eq. 1
// requirement? Sweeps the ADC resolution for a CP-pruned layer and
// measures clip events and output error of the analog MVM — quantifying
// the "without introducing any computational inaccuracy" boundary.
//
// Expected shape: zero error at and above the Eq. 1 resolution, rapidly
// growing error below it.
#include <cmath>
#include <cstdio>

#include "core/projection.hpp"
#include "msim/analog_mvm.hpp"

int main() {
  using namespace tinyadc;
  constexpr std::int64_t kRows = 64;
  constexpr std::int64_t kCols = 16;
  constexpr std::int64_t kKeep = 8;  // 8x CP on a 64-row crossbar

  Rng rng(7);
  std::vector<float> store(kRows * kCols);
  for (auto& v : store) v = rng.normal(0.0F, 1.0F);
  core::project_column_proportional({store.data(), kRows, kCols},
                                    {kRows, kRows}, kKeep);
  Tensor m({kRows, kCols});
  for (std::int64_t r = 0; r < kRows; ++r)
    for (std::int64_t c = 0; c < kCols; ++c)
      m.at(r, c) = store[c * kRows + r];

  xbar::MappingConfig cfg;
  cfg.dims = {kRows, kRows};
  cfg.input_bits = 8;
  const auto layer = xbar::map_matrix(m, "probe", cfg);
  const int eq1_bits = layer.required_adc_bits();

  std::printf("=== Ablation E9: under-provisioned ADC resolution ===\n");
  std::printf("(64-row crossbar, 8x CP => %d active rows, Eq.1 needs %d "
              "bits)\n\n",
              static_cast<int>(layer.max_active_rows()), eq1_bits);
  std::printf("%-10s %14s %16s %16s\n", "ADC bits", "clip events",
              "rel. L2 error", "exact?");

  constexpr int kTrials = 50;
  for (int bits = eq1_bits + 1; bits >= 1; --bits) {
    msim::MsimConfig mcfg;
    mcfg.adc_bits_override = bits;
    msim::AnalogLayerSim sim(layer, mcfg);
    double err_sq = 0.0, ref_sq = 0.0;
    bool exact = true;
    for (int t = 0; t < kTrials; ++t) {
      std::vector<std::int32_t> x(kRows);
      for (auto& v : x) v = static_cast<std::int32_t>(rng.uniform_int(256));
      const auto got = sim.mvm(x);
      const auto ref = xbar::reference_mvm(layer, x);
      for (std::size_t i = 0; i < ref.size(); ++i) {
        const double d = static_cast<double>(got[i]) - ref[i];
        err_sq += d * d;
        ref_sq += static_cast<double>(ref[i]) * ref[i];
        if (d != 0.0) exact = false;
      }
    }
    std::printf("%-10d %14lld %16.4f %16s\n", bits,
                static_cast<long long>(sim.stats().adc_clip_events),
                std::sqrt(err_sq / (ref_sq + 1e-12)),
                exact ? "yes" : "NO");
  }
  std::printf("\n(Eq. 1 is the worst-case-safe boundary. Random-sign weights "
              "split across the differential\n polarity planes, so this "
              "instance survives one bit below it — but the next bit down "
              "clips\n hard. A design may only bank that extra bit if it can "
              "bound per-polarity occupancy.)\n");
  return 0;
}
