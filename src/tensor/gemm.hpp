// General matrix multiplication kernels used by the NN stack.
//
// Dependency-free, cache-blocked loops around a 4×32 register-blocked
// microkernel: the accumulator tile is held across the k loop and
// auto-vectorized (build with -DTINYADC_NATIVE=ON to let the compiler use
// the host's full SIMD width). Work is partitioned over
// globally-aligned row tiles, so results are bit-identical at any thread
// count. matvec routes through the same blocked path (N = 1).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor.hpp"

namespace tinyadc {

/// Reusable operand scratch for gemm's transpose materialization. Transposed
/// operands are copied row-major before the blocked loops; passing the same
/// scratch across calls makes that copy allocation-free after warmup
/// (grow-only buffers). One scratch must not be shared by concurrent gemm
/// calls — give each persistent call site (layer workspace) its own.
struct GemmScratch {
  std::vector<float> a;  ///< op(A) buffer when transpose_a
  std::vector<float> b;  ///< op(B) buffer when transpose_b
};

/// C = alpha * op(A) · op(B) + beta * C.
///
/// A is (M×K) after optional transpose, B is (K×N) after optional transpose,
/// C is (M×N). All matrices are dense row-major 2-D tensors; C must be
/// pre-allocated with the right shape. `scratch` (optional) backs the
/// transpose materialization; nullptr falls back to per-call buffers.
void gemm(const Tensor& a, bool transpose_a, const Tensor& b, bool transpose_b,
          Tensor& c, float alpha = 1.0F, float beta = 0.0F,
          GemmScratch* scratch = nullptr);

/// Convenience: returns op(A) · op(B) as a fresh tensor.
Tensor matmul(const Tensor& a, const Tensor& b, bool transpose_a = false,
              bool transpose_b = false);

/// y = A · x for a 2-D matrix A (M×N) and 1-D vector x (N); returns 1-D (M).
Tensor matvec(const Tensor& a, const Tensor& x);

}  // namespace tinyadc
