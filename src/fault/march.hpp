// March-test fault detection (the mechanism behind the paper's fault model
// citation, Chen et al., IEEE TC 2015).
//
// Before deployment, a memory/crossbar array is screened by a march test:
// a sequence of (read, write) element passes over every cell in ascending
// and descending address order. March C− — ⇕(w0) ⇑(r0,w1) ⇑(r1,w0)
// ⇓(r0,w1) ⇓(r1,w0) ⇕(r0) — detects all stuck-at faults: a SA0 cell fails
// the first r1 after a w1, a SA1 cell fails the first r0 after a w0.
// The detected map is exactly what the fault-aware row remapper (remap.hpp)
// consumes: detection → remap → program is the full deployment flow.
//
// Cells here are binary test locations; an MLC cell is tested per bit-plane
// (a stuck cell fails in every plane), so one pass per physical cell
// suffices for stuck-at screening.
#pragma once

#include "fault/remap.hpp"

namespace tinyadc::fault {

/// A simulated physical cell array with hidden stuck-at defects, exposing
/// only write/read — what a march test gets to work with.
class CellArrayUnderTest {
 public:
  /// Builds the array for one crossbar block's physical cells
  /// (rows × cols × slices × 2 polarities) carrying `faults`.
  CellArrayUnderTest(std::int64_t rows, std::int64_t cols, int slices,
                     const std::vector<CellFault>& faults);

  /// Number of addressable test cells.
  std::int64_t size() const { return static_cast<std::int64_t>(state_.size()); }

  /// Writes a bit; stuck cells ignore it.
  void write(std::int64_t address, bool bit);
  /// Reads the stored bit; stuck cells return their stuck value.
  bool read(std::int64_t address) const;

  /// Translates a cell coordinate to its test address.
  std::int64_t address_of(std::int64_t row, std::int64_t col, int slice,
                          int polarity) const;
  /// Inverse of address_of.
  CellFault coordinate_of(std::int64_t address) const;

 private:
  std::int64_t rows_, cols_;
  int slices_;
  std::vector<std::int8_t> state_;   // current stored bit
  std::vector<std::int8_t> stuck_;   // -1 = healthy, 0 = SA0, 1 = SA1
};

/// Runs March C− over the array; returns every detected fault with its
/// coordinates and stuck polarity. Guaranteed complete and exact for
/// stuck-at faults (no false positives/negatives) — pinned by tests.
std::vector<CellFault> march_c_minus(const CellArrayUnderTest& array_template);

/// Full screening of a mapped layer: builds a cell array per block from the
/// (hidden) `actual` fault map, marches it, and returns the detected map.
FaultMap detect_faults(const xbar::MappedLayer& layer, const FaultMap& actual);

}  // namespace tinyadc::fault
