// Concurrent inference serving engine with dynamic batching.
//
// Requests (single images) enter a thread-safe FIFO queue; a pool of
// worker threads coalesces them into batches and executes each batch on
// its own AnalogSession — a cheap Model::clone() replica hooked to the
// *shared* compiled analog-MVM plans, so the expensive plan compilation
// and activation calibration happen once per deployment (see
// msim::AnalogSession). The batcher is dynamic: a worker takes up to
// `max_batch` requests immediately when available, and otherwise holds
// the partial batch until the oldest request's `max_wait_us` deadline
// expires (latency/throughput trade-off, ISAAC-style tiles are
// throughput machines fed by many concurrent queries).
//
// Determinism contract (`ServeConfig::deterministic`): batches are formed
// strictly as consecutive arrival-order groups of exactly `max_batch`
// requests — the deadline flush is disabled, and partial batches are only
// released when the engine drains (wait_idle/shutdown). Since takes are
// serialized FIFO pops under one lock, batch k always contains request
// seqs [k*B, k*B+B), independent of worker count and timing jitter; each
// request's logits depend only on its own image (per-sample-independent
// digital layers, per-pixel analog MVMs), and the shared sims' ADC
// counters are commutative integer merges — so outputs AND aggregate
// counters are byte-identical at any worker count. Latency/queue-depth
// statistics are timing-dependent and excluded from the contract.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "msim/analog_network.hpp"
#include "serve/pipeline.hpp"
#include "serve/stats.hpp"

namespace tinyadc::serve {

/// Engine tuning knobs.
struct ServeConfig {
  int workers = 1;               ///< worker sessions (threads)
  std::size_t max_batch = 8;     ///< batch coalescing limit
  std::int64_t max_wait_us = 1000;  ///< partial-batch flush deadline
  bool deterministic = false;    ///< pin batch composition by arrival order
  std::size_t max_queue = 0;     ///< 0 = unbounded; else reject when full
  /// Third execution mode: > 0 splits the model into that many
  /// pipeline-parallel stages (see serve/pipeline.hpp) fed by a single
  /// batching dispatcher; `workers` is ignored. 0 keeps the sequential /
  /// replicated-worker modes above. Composes with dynamic batching and
  /// the determinism contract: in deterministic mode outputs, counter
  /// deltas and digests are byte-identical across stage counts and vs
  /// the sequential engine.
  int pipeline_stages = 0;
};

/// Outcome of one served request.
struct InferenceResult {
  std::uint64_t seq = 0;         ///< arrival sequence number
  std::vector<float> logits;     ///< class scores
  std::int64_t label = 0;        ///< argmax of logits
  double latency_us = 0.0;       ///< submit-to-completion (not deterministic)
  std::uint64_t batch_seq = 0;   ///< which batch served this request
  std::size_t batch_size = 0;    ///< size of that batch
  /// Model-version ordinal that served this request (fleet serving: 1 for
  /// the version a tenant started with, incremented by every hot-swap).
  /// 0 for the single-model InferenceEngine, which has no versions.
  std::uint64_t version = 0;
};

/// Accepts single-image requests, batches them dynamically and executes
/// them on a pool of worker sessions over one calibrated AnalogNetwork.
/// The compiled network must outlive the engine; `submit` is safe from
/// any number of producer threads.
class InferenceEngine {
 public:
  InferenceEngine(const msim::AnalogNetwork& compiled, ServeConfig config);
  ~InferenceEngine();
  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Enqueues one (C, H, W) image. The future resolves when a worker has
  /// served the request; it carries an exception if the queue bound
  /// rejected the submit or the forward pass failed. All submitted images
  /// must share one shape.
  std::future<InferenceResult> submit(Tensor image);

  /// Blocks until every submitted request has completed. In deterministic
  /// mode this also releases the trailing partial batch (the drain point
  /// is part of the deterministic request stream).
  void wait_idle();

  /// Stops accepting work, serves everything still queued (in-flight
  /// requests are never dropped), and joins the workers. Idempotent;
  /// also run by the destructor.
  void shutdown();

  /// Live counter snapshot; safe to call while serving.
  ServeStats stats() const;

  const ServeConfig& config() const { return config_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    std::uint64_t seq = 0;
    Tensor image;
    Clock::time_point t_submit;
    std::promise<InferenceResult> promise;
  };

  /// Pops the next batch under the batching policy; false when stopping.
  bool take_batch(std::vector<Pending>& batch, std::uint64_t& batch_seq);
  void worker_main(msim::AnalogSession& session);
  /// Pipeline mode's single batching thread: forms batches exactly like a
  /// worker, then hands them to the stage pipeline instead of running
  /// them inline. Builds the PipelineExecutor lazily on the first batch
  /// (the micro-calibration probe needs a real input batch).
  void dispatcher_main();
  void run_batch(msim::AnalogSession& session, std::vector<Pending>& batch,
                 std::uint64_t batch_seq);
  /// Shared completion tail: fulfills every promise of `batch` from
  /// `logits` (or `error`) and merges the latency/batch statistics.
  void finish_batch(std::vector<Pending>& batch, std::uint64_t batch_seq,
                    const Tensor& logits, std::exception_ptr error);

  const msim::AnalogNetwork& compiled_;
  const ServeConfig config_;
  std::vector<std::unique_ptr<msim::AnalogSession>> sessions_;
  std::vector<std::thread> threads_;
  Clock::time_point t_start_;

  mutable std::mutex mu_;  ///< guards the queue block below
  std::condition_variable cv_;       ///< work available / drain / stop
  std::condition_variable idle_cv_;  ///< queue empty and nothing in flight
  std::deque<Pending> queue_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_batch_seq_ = 0;
  std::size_t inflight_ = 0;  ///< requests taken but not yet completed
  int drain_waiters_ = 0;     ///< wait_idle callers (releases partial batches)
  bool stop_ = false;
  std::uint64_t rejected_ = 0;
  std::size_t max_queue_depth_ = 0;
  std::vector<std::int64_t> expected_shape_;  ///< fixed by the first submit

  mutable std::mutex stats_mu_;  ///< guards the completion stats below
  LatencyHistogram latency_;
  std::uint64_t completed_ = 0;
  std::uint64_t batches_done_ = 0;
  std::vector<std::uint64_t> batch_hist_;
  /// Counters at engine start (stats() reports deltas). Mutated once more
  /// by the dispatcher when the pipeline's timing probe runs — guarded by
  /// stats_mu_ alongside the executor pointer.
  msim::MsimStats sims_baseline_;
  std::unique_ptr<PipelineExecutor> executor_;  ///< pipeline mode only
};

}  // namespace tinyadc::serve
