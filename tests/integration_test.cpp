// Full-stack integration: train → ADMM CP-prune → map to crossbars →
// verify analog exactness with the reduced ADC → hardware savings.
// This is the whole TinyADC story on one miniature instance.
#include <gtest/gtest.h>

#include "core/pruner.hpp"
#include "data/synthetic.hpp"
#include "fault/evaluate.hpp"
#include "hw/cost_model.hpp"
#include "msim/analog_mvm.hpp"
#include "nn/models.hpp"
#include "tensor/ops.hpp"

namespace tinyadc {
namespace {

TEST(Integration, WholePipelineOnMiniatureInstance) {
  // --- data & model -------------------------------------------------------
  data::SyntheticSpec dspec;
  dspec.num_classes = 4;
  dspec.image_size = 8;
  dspec.train_per_class = 24;
  dspec.test_per_class = 10;
  dspec.seed = 91;
  const auto data = data::make_synthetic(dspec);

  nn::ModelConfig mc;
  mc.num_classes = 4;
  mc.image_size = 8;
  mc.width_mult = 0.0625F;
  auto model = nn::resnet18(mc);

  // --- TinyADC pipeline: 4x CP on 8-row crossbars -------------------------
  core::PipelineConfig pcfg;
  pcfg.xbar = {8, 8};
  pcfg.pretrain.epochs = 8;
  pcfg.pretrain.batch_size = 16;
  pcfg.pretrain.sgd.lr = 0.05F;
  pcfg.pretrain.sgd.total_epochs = 8;
  pcfg.admm.epochs = 4;
  pcfg.admm.batch_size = 16;
  pcfg.admm.sgd.lr = 0.02F;
  pcfg.retrain.epochs = 4;
  pcfg.retrain.batch_size = 16;
  pcfg.retrain.sgd.lr = 0.01F;
  // Constrain the FC layer too so every post-first-layer ADC shrinks (the
  // paper applies the reduction "to all ADCs except for the first layer").
  core::SpecOptions opts;
  opts.include_linear = true;
  auto specs = core::uniform_cp_specs(*model, 4, pcfg.xbar, opts);
  const auto result =
      core::run_pipeline(*model, data.train, data.test, specs, pcfg);
  EXPECT_GT(result.baseline_accuracy, 0.5);
  EXPECT_GT(result.final_accuracy, result.baseline_accuracy - 0.2);

  // --- map to crossbars ----------------------------------------------------
  xbar::MappingConfig map_cfg;
  map_cfg.dims = pcfg.xbar;
  auto net = xbar::map_model(*model, map_cfg);
  // CP constraint shows up as reduced occupancy everywhere after layer 0.
  for (std::size_t i = 1; i < net.layers.size(); ++i)
    EXPECT_LE(net.layers[i].max_active_rows(), 2) << net.layers[i].name;
  const int reduced_bits = net.worst_adc_bits_after_first();
  const int dense_bits = xbar::required_adc_bits(1, 2, map_cfg.dims.rows);
  EXPECT_LT(reduced_bits, dense_bits);

  // --- analog exactness with the reduced ADC ------------------------------
  // Pick a mid conv layer and check the analog MVM against the integer
  // reference with random inputs.
  const auto& layer = net.layers[3];
  msim::AnalogLayerSim sim(layer, {});
  Rng rng(17);
  std::vector<std::int32_t> x(static_cast<std::size_t>(layer.rows));
  for (auto& v : x)
    v = static_cast<std::int32_t>(rng.uniform_int(1U << map_cfg.input_bits));
  EXPECT_EQ(sim.mvm(x), xbar::reference_mvm(layer, x));
  EXPECT_EQ(sim.stats().adc_clip_events, 0);

  // --- hardware savings ----------------------------------------------------
  // Dense twin with identical topology and training, no pruning.
  auto dense_model = nn::resnet18(mc);
  {
    nn::TrainConfig tc = pcfg.pretrain;
    nn::Trainer trainer(*dense_model, tc);
    trainer.fit(data.train, data.test);
  }
  auto dense_net = xbar::map_model(*dense_model, map_cfg);
  const hw::CostConstants constants;
  const auto dense_report = hw::build_accelerator(dense_net, constants);
  const auto pruned_report = hw::build_accelerator(net, constants);
  EXPECT_LT(pruned_report.power_vs(dense_report), 0.95);
  EXPECT_LT(pruned_report.area_vs(dense_report), 0.95);

  // --- quantized model still classifies ------------------------------------
  // Write the mapped (quantized) weights back and re-evaluate.
  auto views = model->prunable_views();
  for (std::size_t i = 0; i < views.size(); ++i)
    views[i].from_matrix(net.layers[i].demap());
  nn::TrainConfig eval_tc;
  nn::Trainer eval_trainer(*model, eval_tc);
  const double quantized_acc = eval_trainer.evaluate(data.test);
  EXPECT_GT(quantized_acc, result.final_accuracy - 0.15);
}

}  // namespace
}  // namespace tinyadc
