file(REMOVE_RECURSE
  "CMakeFiles/tinyadc_msim.dir/adc.cpp.o"
  "CMakeFiles/tinyadc_msim.dir/adc.cpp.o.d"
  "CMakeFiles/tinyadc_msim.dir/analog_mvm.cpp.o"
  "CMakeFiles/tinyadc_msim.dir/analog_mvm.cpp.o.d"
  "CMakeFiles/tinyadc_msim.dir/analog_network.cpp.o"
  "CMakeFiles/tinyadc_msim.dir/analog_network.cpp.o.d"
  "CMakeFiles/tinyadc_msim.dir/dac.cpp.o"
  "CMakeFiles/tinyadc_msim.dir/dac.cpp.o.d"
  "libtinyadc_msim.a"
  "libtinyadc_msim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinyadc_msim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
