file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_xbar_aware.dir/bench_ablation_xbar_aware.cpp.o"
  "CMakeFiles/bench_ablation_xbar_aware.dir/bench_ablation_xbar_aware.cpp.o.d"
  "bench_ablation_xbar_aware"
  "bench_ablation_xbar_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_xbar_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
