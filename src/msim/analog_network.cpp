#include "msim/analog_network.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "artifact/format.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "runtime/parallel.hpp"
#include "tensor/ops.hpp"

namespace tinyadc::msim {

namespace {

// v1 plan payloads carry the PR-3 AoS entry arrays; v2 carries the SoA
// streams (plus MsimConfig::plan_kernel); v3 carries the same streams as
// 64-byte-aligned arrays so a mapped load can execute them in place
// (zero-copy). Readers accept all three — v1 converts, v2 copies — and
// writers always emit v3.
constexpr std::uint32_t kPlansSectionVersion = 3;
constexpr std::uint32_t kMinPlansSectionVersion = 1;
constexpr std::uint32_t kCalibSectionVersion = 1;

std::atomic<std::int64_t> g_calibration_runs{0};

/// Analog execution of one conv lowering: `cols` is the (taps × pixels)
/// patch matrix, each pixel an independent MVM (disjoint output columns;
/// the sim's statistics merge is commutative), so pixels run on the
/// worker pool.
Tensor analog_conv_mvm(AnalogLayerSim& sim, const Tensor& cols,
                       const xbar::QuantParams& quant, bool signed_input,
                       std::int64_t out_ch) {
  const std::int64_t rows = cols.dim(0);
  const std::int64_t pixels = cols.dim(1);
  // Gather the patch matrix into row-major samples and stream the whole
  // pixel batch through the plan in one call (parallel inside, fused
  // sample loop on the clip-free path) — bit-identical to per-pixel calls.
  std::vector<float> xs(static_cast<std::size_t>(rows * pixels));
  for (std::int64_t p = 0; p < pixels; ++p)
    for (std::int64_t r = 0; r < rows; ++r)
      xs[static_cast<std::size_t>(p * rows + r)] = cols.at(r, p);
  const auto y = sim.mvm_real_batch(xs, pixels, quant, signed_input);
  const auto ycols = static_cast<std::int64_t>(y.size()) / std::max<
      std::int64_t>(pixels, 1);
  Tensor out({out_ch, pixels});
  for (std::int64_t p = 0; p < pixels; ++p)
    for (std::int64_t f = 0; f < out_ch; ++f)
      out.at(f, p) = y[static_cast<std::size_t>(p * ycols + f)];
  return out;
}

/// Analog execution of one linear layer: batch samples are independent
/// MVMs — same batched contract as the conv pixel loop.
Tensor analog_linear_mvm(AnalogLayerSim& sim, const Tensor& input,
                         const xbar::QuantParams& quant, bool signed_input,
                         std::int64_t out_features) {
  const std::int64_t batch = input.dim(0);
  const std::int64_t in_features = input.dim(1);
  std::vector<float> xs(static_cast<std::size_t>(batch * in_features));
  for (std::int64_t n = 0; n < batch; ++n)
    for (std::int64_t k = 0; k < in_features; ++k)
      xs[static_cast<std::size_t>(n * in_features + k)] = input.at(n, k);
  const auto y = sim.mvm_real_batch(xs, batch, quant, signed_input);
  const auto ycols = static_cast<std::int64_t>(y.size()) / std::max<
      std::int64_t>(batch, 1);
  Tensor out({batch, out_features});
  for (std::int64_t n = 0; n < batch; ++n)
    for (std::int64_t o = 0; o < out_features; ++o)
      out.at(n, o) = y[static_cast<std::size_t>(n * ycols + o)];
  return out;
}

}  // namespace

AnalogNetwork::AnalogNetwork(nn::Model& model, const xbar::MappedNetwork& net,
                             MsimConfig config)
    : model_(model), net_(net), config_(config) {
  const auto views = model_.prunable_views();
  TINYADC_CHECK(views.size() == net_.layers.size(),
                "mapped network has " << net_.layers.size()
                                      << " layers, model has "
                                      << views.size());
  sims_.reserve(views.size());
  for (std::size_t i = 0; i < views.size(); ++i) {
    TINYADC_CHECK(views[i].layer_name == net_.layers[i].name,
                  "layer order mismatch: " << views[i].layer_name << " vs "
                                           << net_.layers[i].name);
    TINYADC_CHECK(views[i].rows == net_.layers[i].rows &&
                      views[i].cols == net_.layers[i].cols,
                  "layer shape mismatch on " << views[i].layer_name);
    MsimConfig layer_cfg = config_;
    layer_cfg.seed = config_.seed + i * 131;  // independent variation draws
    sims_.push_back(
        std::make_unique<AnalogLayerSim>(net_.layers[i], layer_cfg));
  }
  observed_max_.assign(views.size(), 0.0F);
  act_quant_.assign(views.size(), {});
  signed_input_.assign(views.size(), false);
  install_hooks();
}

AnalogNetwork::AnalogNetwork(nn::Model& model, const xbar::MappedNetwork& net,
                             artifact::SectionReader& plans,
                             artifact::SectionReader& calib)
    : model_(model), net_(net) {
  const auto views = model_.prunable_views();
  TINYADC_CHECK(views.size() == net_.layers.size(),
                "mapped network has " << net_.layers.size()
                                      << " layers, model has "
                                      << views.size());

  // --- Compiled plans section: shared config + one sim per layer. ---------
  const auto plans_version = plans.pod<std::uint32_t>();
  TINYADC_CHECK(plans_version >= kMinPlansSectionVersion &&
                    plans_version <= kPlansSectionVersion,
                "unsupported plans-section version " << plans_version);
  config_ = deserialize_msim_config(plans, plans_version);
  const auto nsims = plans.pod<std::uint64_t>();
  TINYADC_CHECK(nsims == views.size(),
                "artifact holds " << nsims << " compiled layers, model has "
                                  << views.size());
  sims_.reserve(views.size());
  for (std::size_t i = 0; i < views.size(); ++i) {
    TINYADC_CHECK(views[i].layer_name == net_.layers[i].name,
                  "layer order mismatch: " << views[i].layer_name << " vs "
                                           << net_.layers[i].name);
    TINYADC_CHECK(views[i].rows == net_.layers[i].rows &&
                      views[i].cols == net_.layers[i].cols,
                  "layer shape mismatch on " << views[i].layer_name);
    MsimConfig layer_cfg = config_;
    layer_cfg.seed = config_.seed + i * 131;  // mirrors the compile-time draw
    sims_.push_back(AnalogLayerSim::deserialize(net_.layers[i], layer_cfg,
                                                plans, plans_version));
  }
  TINYADC_CHECK(plans.remaining() == 0,
                "trailing bytes after the compiled plans");

  // --- Calibration section: quantizer ranges + signed-input flags. --------
  const auto calib_version = calib.pod<std::uint32_t>();
  TINYADC_CHECK(calib_version == kCalibSectionVersion,
                "unsupported calibration-section version " << calib_version);
  const auto nlayers = calib.pod<std::uint64_t>();
  TINYADC_CHECK(nlayers == views.size(),
                "artifact calibrates " << nlayers << " layers, model has "
                                       << views.size());
  act_quant_.reserve(views.size());
  for (std::size_t i = 0; i < views.size(); ++i) {
    xbar::QuantParams q;
    q.bits = static_cast<int>(calib.pod<std::int32_t>());
    q.scale = calib.pod<float>();
    TINYADC_CHECK(q.bits == net_.config.input_bits,
                  "layer " << views[i].layer_name
                           << ": activation quantizer has " << q.bits
                           << " bits, mapping uses " << net_.config.input_bits);
    TINYADC_CHECK(std::isfinite(q.scale) && q.scale > 0.0F,
                  "layer " << views[i].layer_name
                           << ": non-positive activation scale");
    act_quant_.push_back(q);
  }
  signed_input_ = calib.vec_bool();
  TINYADC_CHECK(signed_input_.size() == views.size(),
                "artifact's signed-input flags cover "
                    << signed_input_.size() << " layers, model has "
                    << views.size());
  TINYADC_CHECK(calib.remaining() == 0,
                "trailing bytes after the calibration state");

  observed_max_.assign(views.size(), 0.0F);
  calibrated_ = true;
  mode_ = Mode::kAnalog;
  install_hooks();
}

void AnalogNetwork::serialize_plans(artifact::SectionWriter& w) const {
  w.pod(kPlansSectionVersion);
  serialize(config_, w);
  w.pod(static_cast<std::uint64_t>(sims_.size()));
  for (const auto& sim : sims_) sim->serialize(w);
}

void AnalogNetwork::serialize_calibration(artifact::SectionWriter& w) const {
  TINYADC_CHECK(calibrated_,
                "serialize_calibration before calibrate(): the artifact "
                "must carry final quantizer ranges");
  w.pod(kCalibSectionVersion);
  w.pod(static_cast<std::uint64_t>(act_quant_.size()));
  for (const auto& q : act_quant_) {
    w.pod(static_cast<std::int32_t>(q.bits));
    w.pod(q.scale);
  }
  w.vec_bool(signed_input_);
}

std::int64_t AnalogNetwork::calibration_runs() {
  return g_calibration_runs.load(std::memory_order_relaxed);
}

AnalogNetwork::~AnalogNetwork() { remove_hooks(); }

void AnalogNetwork::install_hooks() {
  std::size_t index = 0;
  model_.root().visit([this, &index](nn::Layer& layer) {
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
      const std::size_t i = index++;
      conv->set_mvm_hook([this, i](const Tensor& cols)
                             -> std::optional<Tensor> {
        if (mode_ == Mode::kCalibrate) {
          observed_max_[i] = std::max(observed_max_[i], max_abs(cols));
          if (min_value(cols) < 0.0F) signed_input_[i] = true;
          return std::nullopt;  // float path computes the result
        }
        return analog_conv_mvm(*sims_[i], cols, act_quant_[i],
                               signed_input_[i], net_.layers[i].cols);
      });
    } else if (auto* fc = dynamic_cast<nn::Linear*>(&layer)) {
      const std::size_t i = index++;
      fc->set_mvm_hook([this, i](const Tensor& input)
                           -> std::optional<Tensor> {
        if (mode_ == Mode::kCalibrate) {
          observed_max_[i] = std::max(observed_max_[i], max_abs(input));
          if (min_value(input) < 0.0F) signed_input_[i] = true;
          return std::nullopt;
        }
        return analog_linear_mvm(*sims_[i], input, act_quant_[i],
                                 signed_input_[i], net_.layers[i].cols);
      });
    }
  });
}

void AnalogNetwork::remove_hooks() {
  model_.root().visit([](nn::Layer& layer) {
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
      conv->set_mvm_hook(nullptr);
    } else if (auto* fc = dynamic_cast<nn::Linear*>(&layer)) {
      fc->set_mvm_hook(nullptr);
    }
  });
}

void AnalogNetwork::calibrate(const data::Dataset& sample,
                              std::int64_t max_images) {
  TINYADC_CHECK(sample.size() > 0, "calibration set is empty");
  g_calibration_runs.fetch_add(1, std::memory_order_relaxed);
  mode_ = Mode::kCalibrate;
  std::fill(observed_max_.begin(), observed_max_.end(), 0.0F);
  std::fill(signed_input_.begin(), signed_input_.end(), false);
  const auto n = std::min<std::int64_t>(sample.size(), max_images);
  std::vector<std::size_t> idx(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  const auto subset = sample.subset(idx);
  (void)model_.forward(subset.images, /*training=*/false);
  for (std::size_t i = 0; i < act_quant_.size(); ++i)
    act_quant_[i] = xbar::fit_unsigned(
        observed_max_[i] > 0.0F ? observed_max_[i] : 1.0F,
        net_.config.input_bits);
  calibrated_ = true;
  mode_ = Mode::kAnalog;
}

Tensor AnalogNetwork::forward(const Tensor& images) {
  TINYADC_CHECK(calibrated_, "AnalogNetwork::forward before calibrate()");
  mode_ = Mode::kAnalog;
  return model_.forward(images, /*training=*/false);
}

double AnalogNetwork::evaluate(const data::Dataset& test,
                               std::size_t batch_size) {
  TINYADC_CHECK(calibrated_, "AnalogNetwork::evaluate before calibrate()");
  data::BatchIterator it(test, batch_size, nullptr);
  data::Batch batch;
  std::int64_t correct = 0;
  std::int64_t seen = 0;
  while (it.next(batch)) {
    Tensor logits = forward(batch.images);
    const std::int64_t k = logits.dim(1);
    for (std::size_t i = 0; i < batch.labels.size(); ++i) {
      const auto row = static_cast<std::int64_t>(i);
      if (argmax_range(logits, row * k, (row + 1) * k) == batch.labels[i])
        ++correct;
    }
    seen += static_cast<std::int64_t>(batch.labels.size());
  }
  return seen ? static_cast<double>(correct) / static_cast<double>(seen) : 0.0;
}

AnalogSession::AnalogSession(const AnalogNetwork& compiled)
    : compiled_(compiled), model_(compiled.model().clone()) {
  TINYADC_CHECK(compiled_.calibrated(),
                "AnalogSession requires a calibrated AnalogNetwork");
  // Hook the replica's prunable layers to the shared simulators. The hooks
  // capture the compiled network by pointer (stable across session moves)
  // and only read its post-calibration state.
  const AnalogNetwork* c = &compiled_;
  std::size_t index = 0;
  model_.root().visit([c, &index](nn::Layer& layer) {
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
      const std::size_t i = index++;
      conv->set_mvm_hook([c, i](const Tensor& cols) -> std::optional<Tensor> {
        return analog_conv_mvm(*c->sims()[i], cols, c->activation_quant()[i],
                               c->signed_input()[i], c->net().layers[i].cols);
      });
    } else if (auto* fc = dynamic_cast<nn::Linear*>(&layer)) {
      const std::size_t i = index++;
      fc->set_mvm_hook([c, i](const Tensor& input) -> std::optional<Tensor> {
        return analog_linear_mvm(*c->sims()[i], input,
                                 c->activation_quant()[i],
                                 c->signed_input()[i], c->net().layers[i].cols);
      });
    }
  });
}

Tensor AnalogSession::forward(const Tensor& images) {
  return model_.forward(images, /*training=*/false);
}

}  // namespace tinyadc::msim
