// March C− fault detection: completeness, exactness, and the full
// detect → remap deployment flow.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "fault/march.hpp"
#include "tensor/ops.hpp"

namespace tinyadc::fault {
namespace {

using Key = std::tuple<std::int32_t, std::int32_t, std::int16_t, std::int16_t,
                       bool>;

Key key(const CellFault& f) {
  return {f.row, f.col, f.slice, f.polarity, f.stuck_at_zero};
}

std::set<Key> keys(const std::vector<CellFault>& faults) {
  std::set<Key> out;
  for (const auto& f : faults) out.insert(key(f));
  return out;
}

TEST(CellArray, HealthyCellsStoreAndRecall) {
  CellArrayUnderTest array(2, 2, 2, {});
  for (std::int64_t a = 0; a < array.size(); ++a) {
    array.write(a, true);
    EXPECT_TRUE(array.read(a));
    array.write(a, false);
    EXPECT_FALSE(array.read(a));
  }
}

TEST(CellArray, StuckCellsIgnoreWrites) {
  CellFault sa0;
  sa0.row = 0;
  sa0.col = 1;
  sa0.slice = 0;
  sa0.polarity = 0;
  sa0.stuck_at_zero = true;
  CellFault sa1 = sa0;
  sa1.col = 0;
  sa1.stuck_at_zero = false;
  CellArrayUnderTest array(1, 2, 1, {sa0, sa1});
  const auto a0 = array.address_of(0, 1, 0, 0);
  const auto a1 = array.address_of(0, 0, 0, 0);
  array.write(a0, true);
  EXPECT_FALSE(array.read(a0));  // SA0 stays 0
  array.write(a1, false);
  EXPECT_TRUE(array.read(a1));  // SA1 stays 1
}

TEST(CellArray, AddressRoundTrip) {
  CellArrayUnderTest array(3, 4, 2, {});
  for (std::int64_t a = 0; a < array.size(); ++a) {
    const CellFault c = array.coordinate_of(a);
    EXPECT_EQ(array.address_of(c.row, c.col, c.slice, c.polarity), a);
  }
}

TEST(MarchCMinus, CleanArrayDetectsNothing) {
  CellArrayUnderTest array(4, 4, 4, {});
  EXPECT_TRUE(march_c_minus(array).empty());
}

TEST(MarchCMinus, DetectsEveryStuckAtExactly) {
  // Property: detected set == injected set, including stuck polarity.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    tinyadc::Rng rng(seed);
    std::vector<CellFault> injected;
    for (std::int32_t r = 0; r < 6; ++r)
      for (std::int32_t c = 0; c < 5; ++c)
        for (std::int16_t s = 0; s < 2; ++s)
          for (std::int16_t pol = 0; pol < 2; ++pol) {
            if (!rng.bernoulli(0.15)) continue;
            CellFault f;
            f.row = r;
            f.col = c;
            f.slice = s;
            f.polarity = pol;
            f.stuck_at_zero = rng.bernoulli(0.5);
            injected.push_back(f);
          }
    CellArrayUnderTest array(6, 5, 2, injected);
    const auto detected = march_c_minus(array);
    EXPECT_EQ(keys(detected), keys(injected)) << "seed " << seed;
  }
}

TEST(DetectFaults, LayerScreeningMatchesActualMap) {
  tinyadc::Rng gen(11);
  xbar::MappingConfig cfg;
  cfg.dims = {8, 8};
  const auto layer =
      xbar::map_matrix(Tensor::randn({16, 16}, gen), "l", cfg);
  FaultSpec spec;
  spec.rate = 0.08;
  spec.sa0_fraction = 0.6;
  tinyadc::Rng rng(12);
  const auto actual = sample_fault_map(layer, spec, rng);
  const auto detected = detect_faults(layer, actual);
  ASSERT_EQ(detected.blocks.size(), actual.blocks.size());
  for (std::size_t b = 0; b < actual.blocks.size(); ++b)
    EXPECT_EQ(keys(detected.blocks[b]), keys(actual.blocks[b]))
        << "block " << b;
}

TEST(DetectFaults, DetectedMapDrivesRemapIdentically) {
  // Full deployment flow: screen with the march test, remap on the
  // *detected* map — the result must equal remapping on ground truth
  // (because detection is exact).
  tinyadc::Rng gen(13);
  xbar::MappingConfig cfg;
  cfg.dims = {8, 8};
  const auto layer =
      xbar::map_matrix(Tensor::randn({16, 8}, gen), "l", cfg);
  FaultSpec spec;
  spec.rate = 0.1;
  tinyadc::Rng rng(14);
  const auto actual = sample_fault_map(layer, spec, rng);
  const auto detected = detect_faults(layer, actual);
  EXPECT_EQ(remap_rows_greedy(layer, detected),
            remap_rows_greedy(layer, actual));
}

}  // namespace
}  // namespace tinyadc::fault
