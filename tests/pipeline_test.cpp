// End-to-end pruning pipeline (integration across nn + data + core).
#include <gtest/gtest.h>

#include "core/pruner.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"

namespace tinyadc::core {
namespace {

struct Fixture {
  std::unique_ptr<nn::Model> model;
  data::DatasetPair data;

  Fixture() {
    nn::ModelConfig mc;
    mc.num_classes = 4;
    mc.image_size = 8;
    mc.width_mult = 0.0625F;
    model = nn::resnet18(mc);

    data::SyntheticSpec spec;
    spec.num_classes = 4;
    spec.image_size = 8;
    spec.train_per_class = 20;
    spec.test_per_class = 8;
    spec.noise = 0.2F;
    spec.seed = 31;
    data = data::make_synthetic(spec);
  }
};

PipelineConfig quick_config() {
  PipelineConfig cfg;
  cfg.xbar = {8, 8};
  cfg.pretrain.epochs = 5;
  cfg.pretrain.batch_size = 16;
  cfg.pretrain.sgd.lr = 0.05F;
  cfg.pretrain.sgd.total_epochs = 5;
  cfg.admm.epochs = 4;
  cfg.admm.batch_size = 16;
  cfg.admm.sgd.lr = 0.02F;
  cfg.admm.sgd.total_epochs = 4;
  cfg.admm_params.rho = 5e-2F;
  cfg.retrain.epochs = 4;
  cfg.retrain.batch_size = 16;
  cfg.retrain.sgd.lr = 0.01F;
  cfg.retrain.sgd.total_epochs = 4;
  return cfg;
}

TEST(Pipeline, EndToEndCpPruningKeepsConstraintAndAccuracy) {
  Fixture f;
  const auto cfg = quick_config();
  auto specs = uniform_cp_specs(*f.model, 4, cfg.xbar);
  const auto result =
      run_pipeline(*f.model, f.data.train, f.data.test, specs, cfg);

  // Final weights satisfy every constraint exactly.
  auto views = f.model->prunable_views();
  for (std::size_t i = 0; i < views.size(); ++i) {
    ConstMatrixRef m{views[i].weight->value.data(), views[i].rows,
                     views[i].cols};
    EXPECT_TRUE(satisfies_combined(m, specs[i], cfg.xbar))
        << views[i].layer_name;
  }
  // Learning happened and pruning did not destroy it.
  EXPECT_GT(result.baseline_accuracy, 0.5);
  EXPECT_GT(result.final_accuracy, result.baseline_accuracy - 0.15);
  // Occupancy is at the CP budget.
  EXPECT_EQ(result.report.max_col_nonzeros, 2);  // 8 rows / 4x
  // Traces recorded per phase.
  EXPECT_EQ(result.pretrain_trace.size(), 5U);
  EXPECT_EQ(result.admm_trace.size(), 4U);
  EXPECT_EQ(result.retrain_trace.size(), 4U);
}

TEST(Pipeline, MaskedRetrainRecoversHardPruneDamage) {
  Fixture f;
  auto cfg = quick_config();
  auto specs = uniform_cp_specs(*f.model, 8, cfg.xbar);  // aggressive
  const auto result =
      run_pipeline(*f.model, f.data.train, f.data.test, specs, cfg);
  // Retraining should not do worse than the raw hard-pruned model.
  EXPECT_GE(result.final_accuracy + 1e-9, result.hard_prune_accuracy - 0.05);
}

TEST(Pipeline, CombinedPruningReducesStructures) {
  Fixture f;
  auto cfg = quick_config();
  auto specs = uniform_cp_specs(*f.model, 2, cfg.xbar);
  add_structured(specs, *f.model, 0.5, 0.0, cfg.xbar);
  const auto result =
      run_pipeline(*f.model, f.data.train, f.data.test, specs, cfg);
  // Some layer must have fully-zero columns in crossbar multiples.
  bool any_zero_cols = false;
  for (const auto& l : result.report.layers)
    if (l.enabled && l.zero_cols > 0) {
      any_zero_cols = true;
      EXPECT_GE(l.zero_cols, 8);  // at least one crossbar column block
    }
  EXPECT_TRUE(any_zero_cols);
  EXPECT_GT(result.report.pruning_rate(), 2.0);
}

TEST(Pipeline, SkippedPretrainUsesProvidedWeights) {
  Fixture f;
  auto cfg = quick_config();
  cfg.pretrain.epochs = 0;
  auto specs = uniform_cp_specs(*f.model, 4, cfg.xbar);
  const auto result =
      run_pipeline(*f.model, f.data.train, f.data.test, specs, cfg);
  EXPECT_TRUE(result.pretrain_trace.empty());
  // Untrained baseline is near chance.
  EXPECT_LT(result.baseline_accuracy, 0.6);
}

}  // namespace
}  // namespace tinyadc::core
