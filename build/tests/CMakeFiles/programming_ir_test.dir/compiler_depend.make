# Empty compiler generated dependencies file for programming_ir_test.
# This may be replaced when dependencies are built.
