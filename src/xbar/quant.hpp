// Fixed-point weight/activation quantization and MLC bit-slicing.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace tinyadc::xbar {

/// Symmetric linear quantizer parameters: real ≈ q · scale with
/// q ∈ [−(2^(bits−1)−1), 2^(bits−1)−1] for signed, [0, 2^bits−1] unsigned.
struct QuantParams {
  int bits = 8;
  float scale = 1.0F;
};

/// Chooses a scale so that `max_abs` maps to the largest signed code.
QuantParams fit_signed(float max_abs, int bits);
/// Chooses a scale so that `max_value` maps to the largest unsigned code.
QuantParams fit_unsigned(float max_value, int bits);

/// Quantizes one value to a signed code (round-to-nearest, saturating).
std::int32_t quantize_signed(float v, const QuantParams& p);
/// Quantizes one value to an unsigned code (negative inputs clamp to 0).
std::int32_t quantize_unsigned(float v, const QuantParams& p);
/// Reconstructs the real value of a code.
float dequantize(std::int32_t q, const QuantParams& p);

/// Number of `cell_bits` cells needed for a (bits−1)-bit magnitude.
int cells_per_weight(int weight_bits, int cell_bits);

/// Splits a non-negative magnitude into `num_slices` little-endian
/// `cell_bits`-wide slices: magnitude = Σ slice[j] · 2^(j·cell_bits).
std::vector<int> slice_magnitude(std::int32_t magnitude, int cell_bits,
                                 int num_slices);

/// Inverse of slice_magnitude.
std::int32_t unslice_magnitude(const std::vector<int>& slices, int cell_bits);

}  // namespace tinyadc::xbar
