#include "data/augment.hpp"

#include "tensor/check.hpp"

namespace tinyadc::data {

namespace {

/// Shifts one (C, H, W) image by (dy, dx), zero-padding the exposed edge.
void shift_image(float* img, std::int64_t channels, std::int64_t h,
                 std::int64_t w, std::int64_t dy, std::int64_t dx) {
  if (dy == 0 && dx == 0) return;
  std::vector<float> out(static_cast<std::size_t>(channels * h * w), 0.0F);
  for (std::int64_t c = 0; c < channels; ++c)
    for (std::int64_t y = 0; y < h; ++y) {
      const std::int64_t sy = y - dy;
      if (sy < 0 || sy >= h) continue;
      for (std::int64_t x = 0; x < w; ++x) {
        const std::int64_t sx = x - dx;
        if (sx < 0 || sx >= w) continue;
        out[static_cast<std::size_t>((c * h + y) * w + x)] =
            img[(c * h + sy) * w + sx];
      }
    }
  std::copy(out.begin(), out.end(), img);
}

void flip_image(float* img, std::int64_t channels, std::int64_t h,
                std::int64_t w) {
  for (std::int64_t c = 0; c < channels; ++c)
    for (std::int64_t y = 0; y < h; ++y) {
      float* row = img + (c * h + y) * w;
      for (std::int64_t x = 0; x < w / 2; ++x)
        std::swap(row[x], row[w - 1 - x]);
    }
}

}  // namespace

void augment_batch(Batch& batch, const AugmentConfig& config, Rng& rng) {
  if (!config.active() || batch.images.numel() == 0) return;
  TINYADC_CHECK(batch.images.ndim() == 4, "augment expects (N, C, H, W)");
  const std::int64_t n = batch.images.dim(0);
  const std::int64_t c = batch.images.dim(1);
  const std::int64_t h = batch.images.dim(2);
  const std::int64_t w = batch.images.dim(3);
  const std::int64_t per = c * h * w;
  for (std::int64_t i = 0; i < n; ++i) {
    float* img = batch.images.data() + i * per;
    if (config.max_shift > 0) {
      const auto span = 2 * config.max_shift + 1;
      const std::int64_t dy =
          static_cast<std::int64_t>(rng.uniform_int(
              static_cast<std::uint64_t>(span))) - config.max_shift;
      const std::int64_t dx =
          static_cast<std::int64_t>(rng.uniform_int(
              static_cast<std::uint64_t>(span))) - config.max_shift;
      shift_image(img, c, h, w, dy, dx);
    }
    if (config.hflip && rng.bernoulli(0.5)) flip_image(img, c, h, w);
    if (config.noise > 0.0F)
      for (std::int64_t k = 0; k < per; ++k)
        img[k] += rng.normal(0.0F, config.noise);
  }
}

}  // namespace tinyadc::data
