#include "serve/loadgen.hpp"

#include <chrono>
#include <cmath>
#include <cstring>
#include <deque>
#include <sstream>
#include <thread>

namespace tinyadc::serve {

namespace {

/// Copies example `index` of `ds` into a standalone (C, H, W) tensor.
Tensor extract_image(const data::Dataset& ds, std::int64_t index) {
  const std::int64_t chw = ds.images.numel() / ds.images.dim(0);
  Tensor image({ds.images.dim(1), ds.images.dim(2), ds.images.dim(3)});
  std::memcpy(image.data(), ds.images.data() + index * chw,
              static_cast<std::size_t>(chw) * sizeof(float));
  return image;
}

}  // namespace

LoadgenReport run_loadgen(InferenceEngine& engine, const data::Dataset& ds,
                          const LoadgenConfig& config) {
  TINYADC_CHECK(ds.size() > 0, "loadgen needs a non-empty dataset");
  TINYADC_CHECK(config.requests > 0, "loadgen needs requests > 0");
  using Clock = std::chrono::steady_clock;

  struct Outstanding {
    std::int64_t index = 0;  ///< dataset row (for the label check)
    std::future<InferenceResult> future;
  };

  LoadgenReport report;
  std::int64_t correct = 0;
  std::int64_t completed = 0;
  std::uint64_t digest = fnv1a(nullptr, 0);
  std::deque<Outstanding> window;

  auto drain_one = [&] {
    Outstanding o = std::move(window.front());
    window.pop_front();
    const InferenceResult r = o.future.get();
    digest = fnv1a(r.logits.data(), r.logits.size() * sizeof(float), digest);
    digest = fnv1a(&r.label, sizeof(r.label), digest);
    if (r.label == ds.labels[static_cast<std::size_t>(o.index)]) ++correct;
    ++completed;
  };

  const auto t0 = Clock::now();
  for (std::int64_t i = 0; i < config.requests; ++i) {
    if (config.target_qps > 0.0) {
      const auto due =
          t0 + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(
                       static_cast<double>(i) / config.target_qps));
      std::this_thread::sleep_until(due);
    }
    const std::int64_t index = i % ds.size();
    Outstanding o;
    o.index = index;
    o.future = engine.submit(extract_image(ds, index));
    window.push_back(std::move(o));
    while (window.size() > config.max_outstanding) drain_one();
  }
  engine.wait_idle();  // releases deterministic partial batches
  while (!window.empty()) drain_one();
  const double wall =
      std::chrono::duration<double>(Clock::now() - t0).count();

  report.achieved_qps =
      wall > 0.0 ? static_cast<double>(completed) / wall : 0.0;
  report.accuracy = completed
                        ? static_cast<double>(correct) /
                              static_cast<double>(completed)
                        : 0.0;
  report.output_digest = digest;
  report.stats = engine.stats();
  return report;
}

FleetLoadgenReport run_fleet_loadgen(
    FleetServer& fleet, const std::vector<TenantLoadSpec>& specs) {
  TINYADC_CHECK(!specs.empty(), "fleet loadgen needs at least one tenant");
  using Clock = std::chrono::steady_clock;

  struct Outstanding {
    std::int64_t index = 0;  ///< dataset row (for the label check)
    std::future<InferenceResult> future;
  };
  struct Run {
    const TenantLoadSpec* spec = nullptr;
    int tenant = -1;
    std::vector<Outstanding> window;
    double wall_s = 0.0;
    std::thread thread;
  };

  std::vector<Run> runs(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const TenantLoadSpec& spec = specs[i];
    TINYADC_CHECK(spec.dataset != nullptr && spec.dataset->size() > 0,
                  "tenant '" << spec.name << "' needs a non-empty dataset");
    TINYADC_CHECK(spec.requests > 0, "tenant '" << spec.name
                                                << "' needs requests > 0");
    TINYADC_CHECK(spec.burst_factor > 0.0, "burst_factor must be > 0");
    runs[i].spec = &spec;
    runs[i].tenant = fleet.tenant_id(spec.name);  // throws on unknown names
    runs[i].window.reserve(static_cast<std::size_t>(spec.requests));
  }

  // One open-loop submitter per tenant: arrivals follow the clock (base
  // rate, or rate × burst_factor during the first half of each burst
  // period); futures are harvested after the fleet drains, so a slow
  // tenant never throttles its own or anyone else's arrival process.
  for (Run& run : runs) {
    run.thread = std::thread([&fleet, &run] {
      const TenantLoadSpec& spec = *run.spec;
      const data::Dataset& ds = *spec.dataset;
      const auto t0 = Clock::now();
      double due_s = 0.0;  ///< next arrival offset from t0
      for (std::int64_t i = 0; i < spec.requests; ++i) {
        if (spec.qps > 0.0) {
          std::this_thread::sleep_until(
              t0 + std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(due_s)));
          double rate = spec.qps;
          if (spec.burst_period_s > 0.0 && spec.burst_factor != 1.0) {
            const double phase =
                due_s - std::floor(due_s / spec.burst_period_s) *
                            spec.burst_period_s;
            if (phase < spec.burst_period_s * 0.5)
              rate = spec.qps * spec.burst_factor;
          }
          due_s += 1.0 / rate;
        }
        const std::int64_t index = i % ds.size();
        Outstanding o;
        o.index = index;
        o.future = fleet.submit(run.tenant, extract_image(ds, index));
        run.window.push_back(std::move(o));
      }
      run.wall_s =
          std::chrono::duration<double>(Clock::now() - t0).count();
    });
  }
  for (Run& run : runs) run.thread.join();
  fleet.wait_idle();  // releases deterministic partial batches everywhere

  FleetLoadgenReport report;
  for (Run& run : runs) {
    TenantLoadReport tr;
    tr.name = run.spec->name;
    tr.submitted = static_cast<std::int64_t>(run.window.size());
    std::uint64_t digest = fnv1a(nullptr, 0);
    std::int64_t correct = 0;
    const data::Dataset& ds = *run.spec->dataset;
    for (Outstanding& o : run.window) {
      InferenceResult r;
      try {
        r = o.future.get();
      } catch (const std::exception&) {
        ++tr.rejected;  // admission rejection (or a failed forward)
        continue;
      }
      digest = fnv1a(r.logits.data(), r.logits.size() * sizeof(float),
                     digest);
      digest = fnv1a(&r.label, sizeof(r.label), digest);
      if (r.label == ds.labels[static_cast<std::size_t>(o.index)]) ++correct;
      ++tr.completed;
    }
    tr.achieved_qps = run.wall_s > 0.0
                          ? static_cast<double>(tr.completed) / run.wall_s
                          : 0.0;
    tr.accuracy = tr.completed ? static_cast<double>(correct) /
                                     static_cast<double>(tr.completed)
                               : 0.0;
    tr.output_digest = digest;
    report.tenants.push_back(std::move(tr));
  }
  report.fleet = fleet.stats();
  return report;
}

std::string FleetLoadgenReport::to_json() const {
  std::ostringstream out;
  std::string inner = fleet.to_json();
  inner.pop_back();  // strip the closing brace; extend the same object
  out << inner << ", \"loadgen\": [";
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const TenantLoadReport& t = tenants[i];
    out << (i ? ", " : "") << "{\"name\": \"" << json_escape(t.name)
        << "\", \"submitted\": " << t.submitted
        << ", \"completed\": " << t.completed
        << ", \"rejected\": " << t.rejected
        << ", \"achieved_qps\": " << t.achieved_qps
        << ", \"accuracy\": " << t.accuracy << ", \"output_digest\": \""
        << std::hex << t.output_digest << std::dec << "\"}";
  }
  out << "]}";
  return out.str();
}

std::string LoadgenReport::to_json() const {
  std::ostringstream out;
  std::string inner = stats.to_json();
  inner.pop_back();  // strip the closing brace; extend the same object
  out << inner << ", \"achieved_qps\": " << achieved_qps
      << ", \"accuracy\": " << accuracy << ", \"output_digest\": \""
      << std::hex << output_digest << "\"}";
  return out.str();
}

}  // namespace tinyadc::serve
