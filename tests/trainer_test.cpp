// Trainer: learning actually happens, hooks fire in the right places.
#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"

namespace tinyadc::nn {
namespace {

data::DatasetPair easy_data() {
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.image_size = 8;
  spec.train_per_class = 24;
  spec.test_per_class = 8;
  spec.noise = 0.15F;
  spec.seed = 77;
  return data::make_synthetic(spec);
}

std::unique_ptr<Model> small_model() {
  ModelConfig cfg;
  cfg.num_classes = 4;
  cfg.image_size = 8;
  cfg.width_mult = 0.0625F;
  return resnet18(cfg);
}

TEST(Trainer, LearnsSeparableTask) {
  const auto data = easy_data();
  auto model = small_model();
  TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 16;
  tc.sgd.lr = 0.05F;
  tc.sgd.total_epochs = 8;
  Trainer trainer(*model, tc);
  const double before = trainer.evaluate(data.test);
  const auto trace = trainer.fit(data.train, data.test);
  const double after = trainer.evaluate(data.test);
  EXPECT_GT(after, before + 0.2);
  EXPECT_GT(after, 0.6);
  // Loss should broadly decrease from first to last epoch.
  EXPECT_LT(trace.back().loss, trace.front().loss);
}

TEST(Trainer, AdamBackendAlsoLearns) {
  const auto data = easy_data();
  auto model = small_model();
  TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 16;
  tc.optimizer = OptimizerKind::kAdam;
  tc.adam.lr = 2e-3F;
  Trainer trainer(*model, tc);
  trainer.fit(data.train, data.test);
  EXPECT_GT(trainer.evaluate(data.test), 0.6);
}

TEST(Trainer, TopkEvaluationBoundsTop1) {
  const auto data = easy_data();
  auto model = small_model();
  TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 16;
  tc.sgd.lr = 0.05F;
  tc.sgd.total_epochs = 4;
  Trainer trainer(*model, tc);
  trainer.fit(data.train, data.test);
  const double top1 = trainer.evaluate(data.test);
  const double top2 = trainer.evaluate_topk(data.test, 2);
  EXPECT_GE(top2, top1);
  EXPECT_DOUBLE_EQ(trainer.evaluate_topk(data.test, 4), 1.0);  // 4 classes
  EXPECT_NEAR(trainer.evaluate_topk(data.test, 1), top1, 1e-12);
}

TEST(Trainer, EvaluateIsDeterministic) {
  const auto data = easy_data();
  auto model = small_model();
  TrainConfig tc;
  Trainer trainer(*model, tc);
  EXPECT_DOUBLE_EQ(trainer.evaluate(data.test), trainer.evaluate(data.test));
}

TEST(Trainer, GradHookRunsPerBatchBeforeStep) {
  const auto data = easy_data();
  auto model = small_model();
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 32;
  Trainer trainer(*model, tc);
  int grad_calls = 0, step_calls = 0;
  trainer.set_grad_hook([&] { ++grad_calls; });
  trainer.set_step_hook([&] { ++step_calls; });
  trainer.train_epoch(data.train, 0);
  const int batches = (96 + 31) / 32;
  EXPECT_EQ(grad_calls, batches);
  EXPECT_EQ(step_calls, batches);
}

TEST(Trainer, EpochHookSeesEpochIndex) {
  const auto data = easy_data();
  auto model = small_model();
  TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 96;
  Trainer trainer(*model, tc);
  std::vector<int> epochs;
  trainer.set_epoch_hook([&](int e) { epochs.push_back(e); });
  trainer.fit(data.train, data.test);
  EXPECT_EQ(epochs, (std::vector<int>{0, 1, 2}));
}

TEST(Trainer, FitReturnsOneStatPerEpoch) {
  const auto data = easy_data();
  auto model = small_model();
  TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 48;
  Trainer trainer(*model, tc);
  const auto trace = trainer.fit(data.train, data.test);
  ASSERT_EQ(trace.size(), 2U);
  for (const auto& s : trace) {
    EXPECT_GE(s.train_accuracy, 0.0);
    EXPECT_LE(s.train_accuracy, 1.0);
    EXPECT_GE(s.test_accuracy, 0.0);
    EXPECT_LE(s.test_accuracy, 1.0);
  }
}

}  // namespace
}  // namespace tinyadc::nn
