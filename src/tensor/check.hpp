// Lightweight runtime-check utilities shared across all TinyADC libraries.
//
// Errors in this codebase are reported with exceptions (per the C++ Core
// Guidelines, E.2): TINYADC_CHECK is used for precondition/argument
// validation on public API boundaries and for internal invariants that are
// cheap to test. The macro captures file/line so failures are actionable.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tinyadc {

/// Exception type thrown by all TINYADC_CHECK failures.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "TINYADC_CHECK failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace tinyadc

/// Validate `cond`; on failure throw tinyadc::CheckError carrying `msg`
/// (which may use stream syntax, e.g. TINYADC_CHECK(a==b, "a=" << a)).
#define TINYADC_CHECK(cond, msg)                                         \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::ostringstream tinyadc_check_os_;                              \
      tinyadc_check_os_ << msg;                                          \
      ::tinyadc::detail::check_failed(#cond, __FILE__, __LINE__,         \
                                      tinyadc_check_os_.str());          \
    }                                                                    \
  } while (false)
