// Property tests of the CP-pruning Euclidean projection and the structured
// projections (P1, P4 in DESIGN.md).
#include <gtest/gtest.h>

#include <tuple>

#include "core/projection.hpp"
#include "tensor/ops.hpp"

namespace tinyadc::core {
namespace {

/// Builds a random (rows × cols) matrix wrapped for MatrixRef access
/// (column-major storage, matching the weight-tensor layout).
std::vector<float> random_matrix(std::int64_t rows, std::int64_t cols,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> data(static_cast<std::size_t>(rows * cols));
  for (auto& v : data) v = rng.normal(0.0F, 1.0F);
  return data;
}

std::int64_t column_nonzeros(ConstMatrixRef m, std::int64_t col,
                             std::int64_t r0, std::int64_t r1) {
  std::int64_t nz = 0;
  for (std::int64_t r = r0; r < r1; ++r) nz += (m.at(r, col) != 0.0F);
  return nz;
}

TEST(CpProjection, EnforcesKeepBound) {
  auto data = random_matrix(8, 8, 1);
  MatrixRef m{data.data(), 8, 8};
  project_column_proportional(m, {8, 8}, 2);
  EXPECT_TRUE(satisfies_column_proportional({data.data(), 8, 8}, {8, 8}, 2));
  for (std::int64_t c = 0; c < 8; ++c)
    EXPECT_EQ(column_nonzeros({data.data(), 8, 8}, c, 0, 8), 2);
}

TEST(CpProjection, KeepsLargestMagnitudes) {
  // One column with known magnitudes: keep=3 must retain {9, -8, 7}.
  std::vector<float> data = {1, -8, 3, 9, 0.5F, 7, -2, 4};
  MatrixRef m{data.data(), 8, 1};
  project_column_proportional(m, {8, 8}, 3);
  EXPECT_FLOAT_EQ(data[1], -8.0F);
  EXPECT_FLOAT_EQ(data[3], 9.0F);
  EXPECT_FLOAT_EQ(data[5], 7.0F);
  EXPECT_FLOAT_EQ(data[0], 0.0F);
  EXPECT_FLOAT_EQ(data[2], 0.0F);
}

TEST(CpProjection, IsIdempotent) {
  auto data = random_matrix(16, 12, 2);
  MatrixRef m{data.data(), 16, 12};
  project_column_proportional(m, {4, 4}, 1);
  auto once = data;
  project_column_proportional(m, {4, 4}, 1);
  EXPECT_EQ(data, once);
}

TEST(CpProjection, EuclideanOptimalAmongConstraintSet) {
  // The projection must be the closest point: any other support choice of
  // the same cardinality is farther in L2. Verify against exhaustive
  // support enumeration on a small column.
  std::vector<float> data = {3, -1, 2, -4};
  std::vector<float> orig = data;
  MatrixRef m{data.data(), 4, 1};
  project_column_proportional(m, {4, 4}, 2);
  auto dist = [&orig](const std::vector<float>& x) {
    double d = 0.0;
    for (std::size_t i = 0; i < orig.size(); ++i) {
      const double diff = orig[i] - x[i];
      d += diff * diff;
    }
    return d;
  };
  const double proj_dist = dist(data);
  // All 2-element supports.
  for (int i = 0; i < 4; ++i)
    for (int j = i + 1; j < 4; ++j) {
      std::vector<float> cand(4, 0.0F);
      cand[static_cast<std::size_t>(i)] = orig[static_cast<std::size_t>(i)];
      cand[static_cast<std::size_t>(j)] = orig[static_cast<std::size_t>(j)];
      EXPECT_LE(proj_dist, dist(cand) + 1e-9);
    }
}

TEST(CpProjection, BlockStructureRespected) {
  // 8 rows, crossbar rows 4 → two vertical blocks; keep=1 per block column
  // means 2 survivors per full matrix column.
  auto data = random_matrix(8, 4, 3);
  MatrixRef m{data.data(), 8, 4};
  project_column_proportional(m, {4, 8}, 1);
  ConstMatrixRef cm{data.data(), 8, 4};
  for (std::int64_t c = 0; c < 4; ++c) {
    EXPECT_LE(column_nonzeros(cm, c, 0, 4), 1);
    EXPECT_LE(column_nonzeros(cm, c, 4, 8), 1);
  }
}

TEST(CpProjection, RemainderBlocksConstrained) {
  // 10 rows with crossbar rows 4 → blocks of 4, 4, 2; the 2-row remainder
  // block must also satisfy keep=1.
  auto data = random_matrix(10, 3, 4);
  MatrixRef m{data.data(), 10, 3};
  project_column_proportional(m, {4, 4}, 1);
  ConstMatrixRef cm{data.data(), 10, 3};
  for (std::int64_t c = 0; c < 3; ++c)
    EXPECT_LE(column_nonzeros(cm, c, 8, 10), 1);
}

TEST(CpProjection, KeepGreaterThanBlockIsNoop) {
  auto data = random_matrix(4, 4, 5);
  auto orig = data;
  MatrixRef m{data.data(), 4, 4};
  project_column_proportional(m, {8, 8}, 8);
  EXPECT_EQ(data, orig);
}

TEST(CpProjection, KeepZeroZeroesEverything) {
  auto data = random_matrix(4, 4, 6);
  MatrixRef m{data.data(), 4, 4};
  project_column_proportional(m, {4, 4}, 0);
  for (float v : data) EXPECT_EQ(v, 0.0F);
}

TEST(MaxColumnNonzeros, CountsWorstBlockColumn) {
  std::vector<float> data(16, 0.0F);
  MatrixRef m{data.data(), 4, 4};
  m.at(0, 2) = 1.0F;
  m.at(1, 2) = 1.0F;
  m.at(3, 2) = 1.0F;
  m.at(0, 0) = 1.0F;
  EXPECT_EQ(max_column_nonzeros({data.data(), 4, 4}, {4, 4}), 3);
  EXPECT_EQ(max_column_nonzeros({data.data(), 4, 4}, {2, 4}), 2);
}

TEST(Satisfies, DetectsViolation) {
  std::vector<float> data(16, 1.0F);
  EXPECT_FALSE(
      satisfies_column_proportional({data.data(), 4, 4}, {4, 4}, 3));
  EXPECT_TRUE(satisfies_column_proportional({data.data(), 4, 4}, {4, 4}, 4));
}

TEST(Structured, LowestNormColumnSelection) {
  std::vector<float> data(12, 0.0F);
  MatrixRef m{data.data(), 4, 3};
  for (std::int64_t r = 0; r < 4; ++r) {
    m.at(r, 0) = 10.0F;
    m.at(r, 1) = 0.1F;
    m.at(r, 2) = 5.0F;
  }
  const auto cols = lowest_norm_columns({data.data(), 4, 3}, 2);
  EXPECT_EQ(cols, (std::vector<std::int64_t>{1, 2}));
}

TEST(Structured, LowestNormRowSelection) {
  std::vector<float> data(12, 0.0F);
  MatrixRef m{data.data(), 3, 4};
  for (std::int64_t c = 0; c < 4; ++c) {
    m.at(0, c) = 1.0F;
    m.at(1, c) = 0.01F;
    m.at(2, c) = 2.0F;
  }
  const auto rows = lowest_norm_rows({data.data(), 3, 4}, 1);
  EXPECT_EQ(rows, (std::vector<std::int64_t>{1}));
}

TEST(Structured, ZeroColumnsAndRows) {
  auto data = random_matrix(4, 4, 7);
  MatrixRef m{data.data(), 4, 4};
  zero_columns(m, {1, 3});
  zero_rows(m, {0});
  ConstMatrixRef cm{data.data(), 4, 4};
  for (std::int64_t r = 0; r < 4; ++r) {
    EXPECT_EQ(cm.at(r, 1), 0.0F);
    EXPECT_EQ(cm.at(r, 3), 0.0F);
  }
  for (std::int64_t c = 0; c < 4; ++c) EXPECT_EQ(cm.at(0, c), 0.0F);
  EXPECT_THROW(zero_columns(m, {4}), CheckError);
}

TEST(Structured, RoundRemovalToCrossbarMultiple) {
  EXPECT_EQ(round_removal(300, 128, true), 256);
  EXPECT_EQ(round_removal(127, 128, true), 0);
  EXPECT_EQ(round_removal(128, 128, true), 128);
  EXPECT_EQ(round_removal(300, 128, false), 300);  // ablation mode
}

TEST(Masks, SupportMaskAndApply) {
  std::vector<float> data = {1.0F, 0.0F, -2.0F, 0.0F};
  const auto mask = support_mask({data.data(), 2, 2});
  EXPECT_EQ(mask, (std::vector<float>{1, 0, 1, 0}));
  std::vector<float> other = {5, 6, 7, 8};
  apply_mask({other.data(), 2, 2}, mask);
  EXPECT_EQ(other, (std::vector<float>{5, 0, 7, 0}));
}

/// Parameterized sweep: for every (rows, cols, crossbar, keep) combination
/// the projection must satisfy the constraint, be idempotent, and preserve
/// exactly min(keep, block_rows) entries per full block column.
class CpSweep : public ::testing::TestWithParam<
                    std::tuple<std::int64_t, std::int64_t, std::int64_t,
                               std::int64_t>> {};

TEST_P(CpSweep, ConstraintAndIdempotence) {
  const auto [rows, cols, xrows, keep] = GetParam();
  auto data = random_matrix(rows, cols,
                            static_cast<std::uint64_t>(rows * 1000 + cols * 10 +
                                                       xrows + keep));
  MatrixRef m{data.data(), rows, cols};
  const CrossbarDims dims{xrows, xrows};
  project_column_proportional(m, dims, keep);
  EXPECT_TRUE(
      satisfies_column_proportional({data.data(), rows, cols}, dims, keep));
  auto once = data;
  project_column_proportional(m, dims, keep);
  EXPECT_EQ(data, once);
  // Random dense input ⇒ full blocks keep exactly `keep` (a.s. no zeros).
  ConstMatrixRef cm{data.data(), rows, cols};
  for (std::int64_t c = 0; c < cols; ++c)
    for (std::int64_t r0 = 0; r0 + xrows <= rows; r0 += xrows)
      EXPECT_EQ(column_nonzeros(cm, c, r0, r0 + xrows),
                std::min<std::int64_t>(keep, xrows));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CpSweep,
    ::testing::Combine(::testing::Values<std::int64_t>(4, 9, 16, 33),
                       ::testing::Values<std::int64_t>(1, 5, 12),
                       ::testing::Values<std::int64_t>(4, 8),
                       ::testing::Values<std::int64_t>(1, 2, 4)));

/// Randomized trials over shapes the grid sweep above does not enumerate:
/// projection followed by projection is projection (idempotence) for
/// arbitrary (rows, cols, crossbar, keep) draws, including keep == block.
TEST(CpProjectionProperty, RandomizedIdempotence) {
  Rng rng(20260806);
  for (int trial = 0; trial < 40; ++trial) {
    const std::int64_t rows = 1 + rng.uniform_int(48);
    const std::int64_t cols = 1 + rng.uniform_int(24);
    const std::int64_t xrows = 2 + rng.uniform_int(15);
    const std::int64_t keep = rng.uniform_int(xrows + 2);  // may exceed block
    auto data = random_matrix(rows, cols, rng.uniform_int(1 << 20));
    MatrixRef m{data.data(), rows, cols};
    const CrossbarDims dims{xrows, xrows};
    project_column_proportional(m, dims, keep);
    EXPECT_TRUE(satisfies_column_proportional({data.data(), rows, cols},
                                              dims, keep))
        << "trial " << trial << " rows=" << rows << " cols=" << cols
        << " xrows=" << xrows << " keep=" << keep;
    auto once = data;
    project_column_proportional(m, dims, keep);
    EXPECT_EQ(data, once) << "trial " << trial;
  }
}

/// The CP constraint treats every block column independently, so the
/// projection must commute with any permutation of the matrix columns:
/// project(permute(W)) == permute(project(W)). Random normal entries make
/// magnitude ties (where survivor choice could legitimately differ)
/// probability-zero.
TEST(CpProjectionProperty, ColumnPermutationEquivariance) {
  Rng rng(4096);
  for (int trial = 0; trial < 20; ++trial) {
    const std::int64_t rows = 2 + rng.uniform_int(30);
    const std::int64_t cols = 2 + rng.uniform_int(12);
    const std::int64_t xrows = 2 + rng.uniform_int(10);
    const std::int64_t keep = 1 + rng.uniform_int(xrows);
    const auto orig = random_matrix(rows, cols, 777 + trial);

    // Fisher–Yates permutation of column indices.
    std::vector<std::int64_t> perm(static_cast<std::size_t>(cols));
    for (std::int64_t c = 0; c < cols; ++c)
      perm[static_cast<std::size_t>(c)] = c;
    for (std::int64_t c = cols - 1; c > 0; --c)
      std::swap(perm[static_cast<std::size_t>(c)],
                perm[static_cast<std::size_t>(rng.uniform_int(c + 1))]);

    const CrossbarDims dims{xrows, xrows};
    auto direct = orig;
    project_column_proportional({direct.data(), rows, cols}, dims, keep);

    // Column-major storage: column c occupies rows contiguous at c * rows.
    auto permuted = orig;
    {
      ConstMatrixRef src{orig.data(), rows, cols};
      MatrixRef dst{permuted.data(), rows, cols};
      for (std::int64_t c = 0; c < cols; ++c)
        for (std::int64_t r = 0; r < rows; ++r)
          dst.at(r, c) = src.at(r, perm[static_cast<std::size_t>(c)]);
    }
    project_column_proportional({permuted.data(), rows, cols}, dims, keep);
    ConstMatrixRef got{permuted.data(), rows, cols};
    ConstMatrixRef want{direct.data(), rows, cols};
    for (std::int64_t c = 0; c < cols; ++c)
      for (std::int64_t r = 0; r < rows; ++r)
        EXPECT_EQ(got.at(r, c),
                  want.at(r, perm[static_cast<std::size_t>(c)]))
            << "trial " << trial << " r=" << r << " c=" << c;
  }
}

}  // namespace
}  // namespace tinyadc::core
