file(REMOVE_RECURSE
  "CMakeFiles/group_lasso_test.dir/group_lasso_test.cpp.o"
  "CMakeFiles/group_lasso_test.dir/group_lasso_test.cpp.o.d"
  "group_lasso_test"
  "group_lasso_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/group_lasso_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
