// 2-D convolution layer (im2col + GEMM implementation).
#pragma once

#include "nn/layer.hpp"
#include "tensor/im2col.hpp"
#include "tensor/rng.hpp"

namespace tinyadc::nn {

/// Conv2d with square stride/padding and optional bias.
///
/// Weight layout is (F, C, Kh, Kw) — the standard filter-major layout, which
/// flattens to the 2-D (C·Kh·Kw) × F matrix the crossbar mapper consumes
/// (each 2-D column = one filter, matching Fig. 3 of the paper).
class Conv2d final : public Layer {
 public:
  /// Constructs with Kaiming initialization.
  Conv2d(std::string name, std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t padding,
         bool bias, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  LayerPtr clone() const override;

  /// Weight parameter, shape (F, C, Kh, Kw). Exposed mutably so the pruning
  /// framework can project/mask it.
  Param& weight() { return weight_; }
  const Param& weight() const { return weight_; }
  /// True if the layer has a bias term.
  bool has_bias() const { return has_bias_; }
  /// Bias parameter (requires has_bias()).
  Param& bias();

  /// Installs (or clears, with nullptr) the inference MVM backend.
  void set_mvm_hook(MvmHook hook) { mvm_hook_ = std::move(hook); }

  /// Geometry of the most recent forward pass (for workload accounting,
  /// e.g. MVMs per inference). Requires at least one forward() call.
  const ConvGeometry& last_geometry() const {
    TINYADC_CHECK(geom_.in_channels > 0,
                  "Conv2d " << name() << ": no forward pass recorded yet");
    return geom_;
  }

  std::int64_t in_channels() const { return in_channels_; }
  std::int64_t out_channels() const { return out_channels_; }
  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t padding() const { return padding_; }

 private:
  std::int64_t in_channels_, out_channels_, kernel_, stride_, padding_;
  bool has_bias_;
  Param weight_;
  Param bias_;
  MvmHook mvm_hook_;

  // forward cache
  ConvGeometry geom_{};
  std::vector<Tensor> cols_;  // per-sample im2col matrices
  Shape input_shape_;
};

}  // namespace tinyadc::nn
