// Ablation E10 (extension beyond the paper): uniform CP rate (the paper's
// protocol) vs per-layer sensitivity-scanned rates. The sensitivity
// variant prunes each layer as hard as it individually tolerates, so it
// should reach a comparable-or-better accuracy/rate point, at the cost of
// per-layer ADC heterogeneity (the worst layer still pins the shared-ADC
// design).
#include "bench_util.hpp"

int main() {
  using namespace tinyadc;
  std::printf("=== Ablation E10: uniform vs sensitivity-scanned CP rates "
              "===\n(cifar100-like tier, ResNet-18, 16x16 crossbars)\n\n");

  const auto data = bench::bench_dataset("cifar100");
  const core::CrossbarDims dims{16, 16};

  // One shared pretrained model.
  auto base = bench::bench_model("resnet18", data.train.num_classes);
  {
    auto cfg = bench::bench_pipeline(dims);
    nn::Trainer trainer(*base, cfg.pretrain);
    trainer.fit(data.train, data.test);
  }
  base->save("/tmp/tinyadc_e10.bin");

  std::printf("%-24s %10s %10s %12s %14s\n", "policy", "overall", "final",
              "worst keep", "mean ADC bits");
  bench::hr(76);

  auto run = [&](const char* label, std::vector<core::LayerPruneSpec> specs) {
    auto model = bench::bench_model("resnet18", data.train.num_classes);
    model->load("/tmp/tinyadc_e10.bin");
    // Re-derive specs on the loaded model when label needs it — specs were
    // built against `base`, whose layout matches exactly.
    auto cfg = bench::bench_pipeline(dims);
    cfg.pretrain.epochs = 0;
    const auto result =
        core::run_pipeline(*model, data.train, data.test, specs, cfg);
    xbar::MappingConfig map_cfg;
    map_cfg.dims = dims;
    const auto mapped = xbar::map_model(*model, map_cfg, specs);
    std::int64_t worst_keep = 0;
    double bit_sum = 0.0;
    int counted = 0;
    for (std::size_t i = 1; i < mapped.layers.size(); ++i) {
      if (!specs[i].active()) continue;
      worst_keep = std::max(worst_keep, mapped.layers[i].max_active_rows());
      bit_sum += mapped.layers[i].design_adc_bits();
      ++counted;
    }
    std::printf("%-24s %9.1fx %10.2f %12lld %14.2f\n", label,
                result.report.pruning_rate(), 100.0 * result.final_accuracy,
                static_cast<long long>(worst_keep),
                counted ? bit_sum / counted : 0.0);
    std::fflush(stdout);
  };

  for (std::int64_t rate : {4, 8}) {
    char label[32];
    std::snprintf(label, sizeof label, "uniform %lldx",
                  static_cast<long long>(rate));
    run(label, core::uniform_cp_specs(*base, rate, dims));
  }
  for (double tol : {0.02, 0.10}) {
    char label[40];
    std::snprintf(label, sizeof label, "sensitivity (tol %.0f%%)",
                  100.0 * tol);
    run(label, core::sensitivity_cp_specs(*base, data.test, dims,
                                          {2, 4, 8, 16}, tol));
  }
  std::printf("\n(expected: sensitivity rows trade per-layer heterogeneity "
              "for a better accuracy/rate point;\n the mean ADC bits column "
              "shows the headroom a per-layer-ADC design could bank)\n");
  return 0;
}
