#include "ops.hpp"

#include <algorithm>
#include <cmath>

namespace tinyadc {

namespace {

void check_same_numel(const Tensor& a, const Tensor& b, const char* op) {
  TINYADC_CHECK(a.numel() == b.numel(),
                op << ": element-count mismatch " << a.numel() << " vs "
                   << b.numel());
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor c = a.clone();
  add_(c, b);
  return c;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor c = a.clone();
  sub_(c, b);
  return c;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  Tensor c = a.clone();
  mul_(c, b);
  return c;
}

Tensor scale(const Tensor& a, float s) {
  Tensor c = a.clone();
  scale_(c, s);
  return c;
}

Tensor relu(const Tensor& a) {
  Tensor c = a.clone();
  float* p = c.data();
  for (std::int64_t i = 0; i < c.numel(); ++i) p[i] = std::max(p[i], 0.0F);
  return c;
}

Tensor abs(const Tensor& a) {
  Tensor c = a.clone();
  float* p = c.data();
  for (std::int64_t i = 0; i < c.numel(); ++i) p[i] = std::fabs(p[i]);
  return c;
}

void add_(Tensor& a, const Tensor& b) {
  check_same_numel(a, b, "add_");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) pa[i] += pb[i];
}

void sub_(Tensor& a, const Tensor& b) {
  check_same_numel(a, b, "sub_");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) pa[i] -= pb[i];
}

void mul_(Tensor& a, const Tensor& b) {
  check_same_numel(a, b, "mul_");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) pa[i] *= pb[i];
}

void scale_(Tensor& a, float s) {
  float* pa = a.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) pa[i] *= s;
}

void axpy_(Tensor& a, float s, const Tensor& b) {
  check_same_numel(a, b, "axpy_");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) pa[i] += s * pb[i];
}

void clamp_(Tensor& a, float lo, float hi) {
  TINYADC_CHECK(lo <= hi, "clamp_ requires lo <= hi, got " << lo << " > " << hi);
  float* pa = a.data();
  for (std::int64_t i = 0; i < a.numel(); ++i)
    pa[i] = std::clamp(pa[i], lo, hi);
}

void apply_(Tensor& a, const std::function<float(float)>& f) {
  float* pa = a.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) pa[i] = f(pa[i]);
}

double sum(const Tensor& a) {
  double s = 0.0;
  const float* p = a.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) s += p[i];
  return s;
}

double mean(const Tensor& a) {
  return a.numel() == 0 ? 0.0 : sum(a) / static_cast<double>(a.numel());
}

float max_value(const Tensor& a) {
  TINYADC_CHECK(a.numel() > 0, "max_value of empty tensor");
  const float* p = a.data();
  float m = p[0];
  for (std::int64_t i = 1; i < a.numel(); ++i) m = std::max(m, p[i]);
  return m;
}

float min_value(const Tensor& a) {
  TINYADC_CHECK(a.numel() > 0, "min_value of empty tensor");
  const float* p = a.data();
  float m = p[0];
  for (std::int64_t i = 1; i < a.numel(); ++i) m = std::min(m, p[i]);
  return m;
}

float max_abs(const Tensor& a) {
  const float* p = a.data();
  float m = 0.0F;
  for (std::int64_t i = 0; i < a.numel(); ++i) m = std::max(m, std::fabs(p[i]));
  return m;
}

double frobenius_norm(const Tensor& a) {
  double s = 0.0;
  const float* p = a.data();
  for (std::int64_t i = 0; i < a.numel(); ++i)
    s += static_cast<double>(p[i]) * p[i];
  return std::sqrt(s);
}

std::int64_t count_nonzero(const Tensor& a) {
  std::int64_t n = 0;
  const float* p = a.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) n += (p[i] != 0.0F);
  return n;
}

std::int64_t argmax_range(const Tensor& a, std::int64_t begin,
                          std::int64_t end) {
  TINYADC_CHECK(begin >= 0 && end <= a.numel() && begin < end,
                "argmax_range [" << begin << ", " << end << ") invalid for "
                                 << a.numel() << " elements");
  const float* p = a.data();
  std::int64_t best = begin;
  for (std::int64_t i = begin + 1; i < end; ++i)
    if (p[i] > p[best]) best = i;
  return best - begin;
}

bool allclose(const Tensor& a, const Tensor& b, float tol) {
  return max_abs_diff(a, b) <= tol;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  TINYADC_CHECK(a.numel() == b.numel(),
                "max_abs_diff element-count mismatch: " << a.numel() << " vs "
                                                        << b.numel());
  const float* pa = a.data();
  const float* pb = b.data();
  float m = 0.0F;
  for (std::int64_t i = 0; i < a.numel(); ++i)
    m = std::max(m, std::fabs(pa[i] - pb[i]));
  return m;
}

}  // namespace tinyadc
