// Fault-aware row remapping (extension of §IV-E).
//
// A crossbar's wordline order is a free parameter: permuting the logical
// rows of a block only reorders the input router's connections, at zero
// analog cost. After manufacturing test reveals the stuck-at fault map,
// the rows that carry important (large-magnitude) weights can be steered
// onto clean wordlines and — in a CP-pruned model, where most cells are
// deliberately zero — faulty wordlines can absorb rows whose cells the
// faults cannot damage (SA0 on a G_off cell is a no-op).
//
// The sampler/applier split also gives §IV-E's base experiment a reusable
// form: sample_fault_map draws a chip's defect pattern once; apply_fault_map
// realizes it under any row permutation.
#pragma once

#include "fault/fault_model.hpp"

namespace tinyadc::fault {

/// One defective cell in a block: the (physical row, column, magnitude
/// slice, polarity) coordinates plus the stuck level.
struct CellFault {
  std::int32_t row = 0;       ///< physical wordline within the block
  std::int32_t col = 0;       ///< column within the block
  std::int16_t slice = 0;     ///< magnitude slice plane
  std::int16_t polarity = 0;  ///< 0 = positive plane, 1 = negative plane
  bool stuck_at_zero = true;  ///< SA0 (G_off) vs SA1 (G_on)
};

/// A sampled chip defect pattern: per-block sparse fault lists.
struct FaultMap {
  std::vector<std::vector<CellFault>> blocks;  ///< aligned with layer.blocks
  std::int64_t total_faults() const;
};

/// Draws a defect pattern for `layer`'s physical arrays (each weight owns
/// 2·slices cells). Deterministic in `rng`.
FaultMap sample_fault_map(const xbar::MappedLayer& layer,
                          const FaultSpec& spec, Rng& rng);

/// Row permutations, one per block: perm[b][logical_row] = physical_row.
using RowPermutations = std::vector<std::vector<std::int64_t>>;

/// The identity permutation set for `layer`.
RowPermutations identity_permutations(const xbar::MappedLayer& layer);

/// Applies `map` to `layer` in place with logical rows steered through
/// `perms` (the weight that logically lives in row r sits on physical
/// wordline perms[b][r], whose faults it inherits). Censuses refresh.
FaultStats apply_fault_map(xbar::MappedLayer& layer, const FaultMap& map,
                           const RowPermutations& perms);

/// Greedy fault-aware remapping: processes logical rows in descending
/// weight-magnitude order, assigning each to the free physical wordline
/// where the sampled faults change its codes the least. Quadratic in block
/// rows but only over the sparse fault lists.
RowPermutations remap_rows_greedy(const xbar::MappedLayer& layer,
                                  const FaultMap& map);

/// Total |Δcode| the fault map inflicts on `layer` under `perms` — the
/// objective the greedy remapper minimizes (evaluated without mutating).
std::int64_t fault_damage(const xbar::MappedLayer& layer, const FaultMap& map,
                          const RowPermutations& perms);

}  // namespace tinyadc::fault
