// Parameterized property sweeps over the hardware cost models (P6 at
// scale): monotonicity and dominance must hold across the whole
// configuration grid, not just the defaults.
#include <gtest/gtest.h>

#include <tuple>

#include "hw/cost_model.hpp"
#include "xbar/adc_bits.hpp"

namespace tinyadc::hw {
namespace {

/// ADC cost monotonicity across anchor variations.
class AdcCostSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(AdcCostSweep, MonotoneAndPositive) {
  const auto [capdac_fraction, rate_scale] = GetParam();
  AdcCostModel adc;
  adc.capdac_fraction = capdac_fraction;
  const double rate = adc.ref_rate_hz * rate_scale;
  double prev_power = 0.0, prev_area = 0.0;
  for (int bits = 1; bits <= 14; ++bits) {
    const double p = adc.power_w(bits, rate);
    const double a = adc.area_mm2(bits);
    EXPECT_GT(p, prev_power) << "bits " << bits;
    EXPECT_GT(a, prev_area) << "bits " << bits;
    prev_power = p;
    prev_area = a;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, AdcCostSweep,
                         ::testing::Combine(::testing::Values(0.1, 0.4, 0.9),
                                            ::testing::Values(0.25, 1.0,
                                                              2.0)));

/// Tile cost monotonicity across array counts and resolutions.
class TileCostSweep
    : public ::testing::TestWithParam<std::tuple<std::int64_t, int>> {};

TEST_P(TileCostSweep, AdcShareGrowsWithResolution) {
  const auto [arrays, bits] = GetParam();
  CostConstants k;
  k.arrays_per_tile = arrays;
  const TileCost low = tile_cost(k, bits);
  const TileCost high = tile_cost(k, bits + 2);
  EXPECT_GT(high.area_mm2, low.area_mm2);
  EXPECT_GT(high.power_w, low.power_w);
  // The ADC *share* grows with resolution (its cost is the exponential
  // term).
  EXPECT_GT(high.adc_power_w / high.power_w, low.adc_power_w / low.power_w);
  // Components never exceed totals.
  EXPECT_LE(low.adc_area_mm2, low.area_mm2);
  EXPECT_LE(low.adc_power_w, low.power_w);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TileCostSweep,
    ::testing::Combine(::testing::Values<std::int64_t>(4, 8, 16),
                       ::testing::Values(4, 6, 8)));

/// Eq. 1 deltas drive strictly decreasing tile costs — the whole premise
/// of the paper, checked across every CP rate on 128-row crossbars.
class CpRateCostSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(CpRateCostSweep, MoreCpMeansCheaperTiles) {
  const std::int64_t rate = GetParam();
  const CostConstants k;
  xbar::MappingConfig cfg;
  const int dense_bits = xbar::design_adc_bits(cfg, 128);
  const int pruned_bits = xbar::design_adc_bits(cfg, 128 / rate);
  EXPECT_LT(pruned_bits, dense_bits);
  const TileCost dense = tile_cost(k, dense_bits);
  const TileCost pruned = tile_cost(k, pruned_bits);
  EXPECT_LT(pruned.power_w, dense.power_w);
  EXPECT_LT(pruned.area_mm2, dense.area_mm2);
  // And the paper's headline: the ADC term is the largest single
  // contributor to the saving (the resolution-scaled digital datapath
  // claims the rest, growing in share at extreme CP rates).
  EXPECT_GT(dense.adc_power_w - pruned.adc_power_w,
            0.4 * (dense.power_w - pruned.power_w));
}

INSTANTIATE_TEST_SUITE_P(Rates, CpRateCostSweep,
                         ::testing::Values<std::int64_t>(2, 4, 8, 16, 32,
                                                         64));

}  // namespace
}  // namespace tinyadc::hw
