# Empty dependencies file for inference_model_test.
# This may be replaced when dependencies are built.
