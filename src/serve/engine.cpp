#include "serve/engine.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace tinyadc::serve {

namespace {

/// Sum of the locked per-layer counter snapshots of a compiled network.
msim::MsimStats sims_total(const msim::AnalogNetwork& compiled) {
  msim::MsimStats total;
  for (const auto& sim : compiled.sims()) {
    const msim::MsimStats s = sim->stats_snapshot();
    total.adc_conversions += s.adc_conversions;
    total.adc_clip_events += s.adc_clip_events;
    total.dac_cycles += s.dac_cycles;
  }
  return total;
}

}  // namespace

InferenceEngine::InferenceEngine(const msim::AnalogNetwork& compiled,
                                 ServeConfig config)
    : compiled_(compiled), config_(config), t_start_(Clock::now()) {
  TINYADC_CHECK(compiled_.calibrated(),
                "InferenceEngine requires a calibrated AnalogNetwork");
  TINYADC_CHECK(config_.workers >= 1, "need at least one worker");
  TINYADC_CHECK(config_.max_batch >= 1, "max_batch must be >= 1");
  TINYADC_CHECK(config_.pipeline_stages >= 0,
                "pipeline_stages must be >= 0");
  sims_baseline_ = sims_total(compiled_);
  batch_hist_.assign(config_.max_batch + 1, 0);
  if (config_.pipeline_stages > 0) {
    // Pipeline mode: one batching dispatcher feeds the stage threads (the
    // PipelineExecutor itself is built lazily, on the first batch). The
    // dispatcher is the queues' single producer, which also pins batch
    // composition exactly like a 1-worker engine.
    threads_.emplace_back([this] { dispatcher_main(); });
    return;
  }
  sessions_.reserve(static_cast<std::size_t>(config_.workers));
  threads_.reserve(static_cast<std::size_t>(config_.workers));
  for (int w = 0; w < config_.workers; ++w)
    sessions_.push_back(std::make_unique<msim::AnalogSession>(compiled_));
  for (int w = 0; w < config_.workers; ++w)
    threads_.emplace_back(
        [this, w] { worker_main(*sessions_[static_cast<std::size_t>(w)]); });
}

InferenceEngine::~InferenceEngine() { shutdown(); }

std::future<InferenceResult> InferenceEngine::submit(Tensor image) {
  TINYADC_CHECK(image.ndim() == 3, "submit expects a (C, H, W) image, got "
                                       << image.ndim() << " dims");
  std::lock_guard<std::mutex> lk(mu_);
  TINYADC_CHECK(!stop_, "submit after shutdown");
  if (expected_shape_.empty()) {
    expected_shape_ = {image.dim(0), image.dim(1), image.dim(2)};
  } else {
    TINYADC_CHECK(image.dim(0) == expected_shape_[0] &&
                      image.dim(1) == expected_shape_[1] &&
                      image.dim(2) == expected_shape_[2],
                  "image shape differs from earlier submits");
  }
  if (config_.max_queue > 0 && queue_.size() >= config_.max_queue) {
    ++rejected_;
    std::promise<InferenceResult> p;
    p.set_exception(std::make_exception_ptr(
        std::runtime_error("serve queue full (max_queue reached)")));
    return p.get_future();
  }
  Pending pending;
  pending.seq = next_seq_++;
  pending.image = std::move(image);
  pending.t_submit = Clock::now();
  auto future = pending.promise.get_future();
  queue_.push_back(std::move(pending));
  max_queue_depth_ = std::max(max_queue_depth_, queue_.size());
  cv_.notify_one();
  return future;
}

bool InferenceEngine::take_batch(std::vector<Pending>& batch,
                                 std::uint64_t& batch_seq) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return false;  // only possible when stopping
    if (queue_.size() >= config_.max_batch || stop_ || drain_waiters_ > 0)
      break;  // full batch ready, or flushing partials
    if (config_.deterministic) {
      // Deterministic mode: release only full consecutive batches;
      // partials wait for a drain or shutdown, never for a clock.
      cv_.wait(lk, [this] {
        return stop_ || drain_waiters_ > 0 ||
               queue_.size() >= config_.max_batch;
      });
    } else {
      // Dynamic batching: hold the partial batch until the oldest
      // request's deadline, waking early if the batch fills up or
      // another worker empties the queue.
      const auto deadline = queue_.front().t_submit +
                            std::chrono::microseconds(config_.max_wait_us);
      cv_.wait_until(lk, deadline, [this] {
        return stop_ || drain_waiters_ > 0 || queue_.empty() ||
               queue_.size() >= config_.max_batch;
      });
    }
    if (!queue_.empty()) break;  // take whatever is there now
  }
  const std::size_t take = std::min(config_.max_batch, queue_.size());
  batch.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  batch_seq = next_batch_seq_++;
  inflight_ += batch.size();
  lk.unlock();
  cv_.notify_all();  // more work may remain for other takers
  return true;
}

void InferenceEngine::worker_main(msim::AnalogSession& session) {
  for (;;) {
    std::vector<Pending> batch;
    std::uint64_t batch_seq = 0;
    if (!take_batch(batch, batch_seq)) return;
    run_batch(session, batch, batch_seq);
    {
      std::lock_guard<std::mutex> lk(mu_);
      inflight_ -= batch.size();
      if (inflight_ == 0 && queue_.empty()) idle_cv_.notify_all();
    }
  }
}

void InferenceEngine::dispatcher_main() {
  for (;;) {
    std::vector<Pending> batch;
    std::uint64_t batch_seq = 0;
    if (!take_batch(batch, batch_seq)) return;

    const auto b = static_cast<std::int64_t>(batch.size());
    const Tensor& first = batch.front().image;
    const std::int64_t chw = first.numel();
    Tensor images({b, first.dim(0), first.dim(1), first.dim(2)});
    for (std::int64_t i = 0; i < b; ++i)
      std::memcpy(images.data() + i * chw,
                  batch[static_cast<std::size_t>(i)].image.data(),
                  static_cast<std::size_t>(chw) * sizeof(float));

    if (!executor_) {
      // First batch: build the pipeline, using this batch as the timing
      // probe's sample, and fold the probe's ADC/DAC activity into the
      // baseline — served-traffic deltas stay byte-identical to the
      // sequential engine's.
      auto executor = std::make_unique<PipelineExecutor>(
          compiled_, config_.pipeline_stages, images);
      std::lock_guard<std::mutex> lk(stats_mu_);
      const msim::MsimStats& probe = executor->probe_stats();
      sims_baseline_.adc_conversions += probe.adc_conversions;
      sims_baseline_.adc_clip_events += probe.adc_clip_events;
      sims_baseline_.dac_cycles += probe.dac_cycles;
      executor_ = std::move(executor);
    }

    // The completion runs on the last stage's thread; promises are
    // move-only, so the batch travels in a shared_ptr (std::function
    // requires a copyable callable).
    auto shared = std::make_shared<std::vector<Pending>>(std::move(batch));
    executor_->submit(
        std::move(images),
        [this, shared, batch_seq](Tensor logits, std::exception_ptr error) {
          finish_batch(*shared, batch_seq, logits, error);
          std::lock_guard<std::mutex> lk(mu_);
          inflight_ -= shared->size();
          if (inflight_ == 0 && queue_.empty()) idle_cv_.notify_all();
        });
  }
}

void InferenceEngine::run_batch(msim::AnalogSession& session,
                                std::vector<Pending>& batch,
                                std::uint64_t batch_seq) {
  const auto b = static_cast<std::int64_t>(batch.size());
  const Tensor& first = batch.front().image;
  const std::int64_t chw = first.numel();
  Tensor images({b, first.dim(0), first.dim(1), first.dim(2)});
  for (std::int64_t i = 0; i < b; ++i)
    std::memcpy(images.data() + i * chw,
                batch[static_cast<std::size_t>(i)].image.data(),
                static_cast<std::size_t>(chw) * sizeof(float));

  Tensor logits;
  std::exception_ptr error;
  try {
    logits = session.forward(images);
  } catch (...) {
    error = std::current_exception();
  }
  finish_batch(batch, batch_seq, logits, error);
}

void InferenceEngine::finish_batch(std::vector<Pending>& batch,
                                   std::uint64_t batch_seq,
                                   const Tensor& logits,
                                   std::exception_ptr error) {
  if (error) {
    for (Pending& p : batch) p.promise.set_exception(error);
    return;
  }
  const auto b = static_cast<std::int64_t>(batch.size());
  const auto t_done = Clock::now();
  const std::int64_t k = logits.dim(1);

  LatencyHistogram local;
  for (std::int64_t i = 0; i < b; ++i) {
    Pending& p = batch[static_cast<std::size_t>(i)];
    InferenceResult result;
    result.seq = p.seq;
    result.logits.assign(logits.data() + i * k, logits.data() + (i + 1) * k);
    result.label = argmax_range(logits, i * k, (i + 1) * k);
    result.latency_us =
        std::chrono::duration<double, std::micro>(t_done - p.t_submit)
            .count();
    result.batch_seq = batch_seq;
    result.batch_size = batch.size();
    local.record(result.latency_us);
    p.promise.set_value(std::move(result));
  }
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    latency_.merge(local);
    completed_ += batch.size();
    ++batches_done_;
    ++batch_hist_[batch.size()];
  }
}

void InferenceEngine::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  ++drain_waiters_;
  cv_.notify_all();  // release deterministic partial batches
  idle_cv_.wait(lk, [this] { return queue_.empty() && inflight_ == 0; });
  --drain_waiters_;
}

void InferenceEngine::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  // Pipeline mode: the dispatcher has exited, so no more submits; drain
  // the stage threads (batches already in the pipeline still complete).
  // The executor itself stays alive for post-shutdown stage_stats().
  if (executor_) executor_->shutdown();
}

ServeStats InferenceEngine::stats() const {
  ServeStats s;
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    s.requests = completed_;
    s.batches = batches_done_;
    s.batch_hist = batch_hist_;
    s.p50_us = latency_.percentile(50.0);
    s.p95_us = latency_.percentile(95.0);
    s.p99_us = latency_.percentile(99.0);
    s.mean_us = latency_.mean_us();
    s.max_us = latency_.max_us();
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    s.rejected = rejected_;
    s.max_queue_depth = max_queue_depth_;
  }
  s.wall_s = std::chrono::duration<double>(Clock::now() - t_start_).count();
  s.qps = s.wall_s > 0.0 ? static_cast<double>(s.requests) / s.wall_s : 0.0;
  s.mean_batch =
      s.batches ? static_cast<double>(s.requests) / s.batches : 0.0;
  const msim::MsimStats now = sims_total(compiled_);
  {
    // The baseline moves once more when the pipeline's timing probe runs;
    // the executor pointer appears at the same moment (both under
    // stats_mu_, written by the dispatcher).
    std::lock_guard<std::mutex> lk(stats_mu_);
    s.adc_conversions = now.adc_conversions - sims_baseline_.adc_conversions;
    s.adc_clip_events = now.adc_clip_events - sims_baseline_.adc_clip_events;
    s.dac_cycles = now.dac_cycles - sims_baseline_.dac_cycles;
    s.pipeline_stages = config_.pipeline_stages;
    if (executor_) s.stages = executor_->stage_stats();
  }
  s.peak_rss_kb = peak_rss_kb();
  return s;
}

}  // namespace tinyadc::serve
