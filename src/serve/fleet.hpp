// Multi-tenant model fleet serving: one registry, many deployments.
//
// A FleetServer owns N named tenants. Each tenant is one deployed model —
// loaded from a `.tadc` artifact (copied or mmap path) or hooked to an
// in-process AnalogNetwork — with its own batching policy, queue bound,
// priority class and fair-share weight. Tenants share the process's
// serving threads: a pool of `FleetConfig::workers` threads serves every
// non-pipeline tenant (each worker holds one AnalogSession replica per
// tenant version), while a tenant configured with `pipeline_stages > 0`
// gets its own batching dispatcher feeding a PipelineExecutor's stage
// threads (serve/pipeline.hpp), so both execution modes from the
// single-model engine compose with the registry.
//
// Admission and scheduling:
//  * `max_queue` rejection is per tenant — one tenant flooding its queue
//    never consumes another tenant's budget (each rejection is reported in
//    that tenant's stats).
//  * Dequeue across tenants is strict-priority between classes (priority 0
//    is served before priority 1 whenever it has a ready batch, so a
//    saturated low-priority tenant cannot starve a high-priority one) and
//    weighted-fair within a class (start-time fair queueing: each flow
//    carries a virtual finish time advanced by batch_cost/weight; the
//    backlogged flow with the smallest virtual start tag is served next,
//    so long-run service is proportional to the configured weights).
//
// Shape-bucketed batching: a tenant accepts mixed (C, H, W) input sizes;
// requests land in per-shape buckets and batches are formed within one
// bucket, so mixed-size traffic still batches instead of degenerating to
// singletons. The per-tenant determinism contract survives: in
// deterministic mode each bucket releases only consecutive arrival-order
// groups of exactly `max_batch` (partials at drain), so batch composition
// — and therefore outputs, per-request digests and the tenant's ADC
// counter deltas — is byte-identical at any worker count and unaffected by
// co-tenant load. The cross-tenant *interleaving* is timing-dependent and
// outside the contract; nothing a tenant reports depends on it.
//
// Live hot-swap: swap_tenant() loads a new artifact version off to the
// side (no lock held — traffic keeps flowing), then blocks the tenant's
// dequeues, waits for its in-flight batches to drain, retires the old
// version's counter delta into the tenant's accumulated stats, flips the
// version pointer and re-captures the ADC baseline, and unblocks. Queued
// and newly submitted requests are never dropped — they simply execute on
// the new version. Because every batch pins the version it was popped
// under (a shared_ptr captured at dequeue, before the swap can flip), no
// batch ever spans two versions, and each response carries the version
// ordinal that served it.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "artifact/artifact.hpp"
#include "msim/analog_network.hpp"
#include "serve/engine.hpp"
#include "serve/pipeline.hpp"
#include "serve/stats.hpp"

namespace tinyadc::serve {

/// Per-tenant deployment + admission policy.
struct TenantConfig {
  std::string name;                 ///< unique registry key
  std::size_t max_batch = 8;        ///< batch coalescing limit
  std::int64_t max_wait_us = 1000;  ///< partial-batch flush deadline
  std::size_t max_queue = 0;        ///< 0 = unbounded; else reject when full
  bool deterministic = false;       ///< pin batch composition per bucket
  int priority = 0;    ///< strict admission class; 0 is served first
  double weight = 1.0; ///< fair share within the priority class (> 0)
  int pipeline_stages = 0;  ///< > 0: dedicated stage-pipeline execution
};

/// Fleet-wide knobs.
struct FleetConfig {
  int workers = 1;  ///< shared worker threads for non-pipeline tenants
};

/// One tenant's slice of a FleetStats snapshot.
struct TenantStats {
  std::string name;
  std::uint64_t version = 0;  ///< active version ordinal (1 = initial)
  int priority = 0;
  double weight = 1.0;
  std::size_t queued = 0;     ///< requests waiting in the shape buckets
  std::string artifact_path;  ///< active version's file ("" = in-process)
  std::uint64_t artifact_digest = 0;  ///< artifact::ArtifactInfo digest
  ServeStats stats;           ///< the shared per-engine schema
};

/// Point-in-time snapshot of the whole fleet.
struct FleetStats {
  ServeStats aggregate;  ///< summed/merged across tenants
  std::vector<TenantStats> tenants;

  /// Human-readable fleet table (the `fleet` CLI output).
  std::string to_table() const;
  /// {"aggregate": {...}, "tenants": [{"name": ..., "stats": {...}}, ...]}.
  std::string to_json() const;
};

/// Start-time fair queueing over a fixed set of flows, with strict
/// priority between classes. Public so the admission-control property
/// tests can drive it directly against randomized arrival orders.
///
/// pick() is pure; after executing the chosen flow's batch the caller
/// reports the service cost via account(), which advances the class
/// virtual clock and the flow's virtual finish time by cost/weight.
class WeightedFairPicker {
 public:
  /// Registers the next flow (index = registration order).
  void add(int priority, double weight);

  /// Index of the flow to serve next among those with `ready[i] != 0`,
  /// or -1 when none is ready. Strict priority first; within the top
  /// ready class, the smallest virtual start tag max(vfinish, vclock)
  /// wins, ties broken by lowest index.
  int pick(const std::vector<char>& ready) const;

  /// Charges `cost` units of service to flow `idx` (chosen by pick()).
  void account(int idx, double cost);

  std::size_t size() const { return flows_.size(); }

 private:
  struct Flow {
    int priority = 0;
    double weight = 1.0;
    double vfinish = 0.0;  ///< virtual finish time of the last batch
  };
  /// Virtual start tag flow i would dequeue with right now.
  double start_tag(std::size_t i) const;

  std::vector<Flow> flows_;
  double vclock_ = 0.0;  ///< start tag of the most recent dequeue
};

/// The registry. Construction starts the shared worker pool; tenants may
/// be added before or after traffic starts. All public methods are safe
/// to call concurrently from any number of threads (swap_tenant for
/// *different* tenants included; swaps of one tenant serialize).
class FleetServer {
 public:
  explicit FleetServer(FleetConfig config);
  ~FleetServer();
  FleetServer(const FleetServer&) = delete;
  FleetServer& operator=(const FleetServer&) = delete;

  /// Registers a tenant served from a `.tadc` artifact (version ordinal 1).
  /// `mmap` selects the zero-copy load path with async section streaming.
  /// Returns the tenant's index.
  int add_tenant(const TenantConfig& config, const std::string& artifact_path,
                 bool mmap = false);

  /// Registers a tenant over an in-process compiled network, which must
  /// outlive the fleet (or the tenant's first swap, whichever is earlier).
  int add_tenant(const TenantConfig& config,
                 const msim::AnalogNetwork& compiled);

  /// Index of the tenant named `name`; throws when unknown.
  int tenant_id(const std::string& name) const;

  /// Active version ordinal of a tenant (1 until the first swap).
  std::uint64_t tenant_version(const std::string& name) const;

  /// Enqueues one (C, H, W) image for a tenant. The future carries an
  /// exception when the tenant's queue bound rejects the submit or the
  /// forward pass fails. Mixed shapes are fine (shape-bucketed batching).
  std::future<InferenceResult> submit(int tenant, Tensor image);
  std::future<InferenceResult> submit(const std::string& name, Tensor image);

  /// Hot-swaps `name` to the artifact at `path` under traffic: drains the
  /// tenant's in-flight batches, flips the version, re-captures the ADC
  /// baseline. No queued or in-flight request is dropped. Returns the new
  /// version ordinal. Throws (leaving the tenant untouched) when the
  /// artifact is unloadable or its class count differs.
  std::uint64_t swap_tenant(const std::string& name, const std::string& path,
                            bool mmap = false);

  /// Blocks until every tenant's queue and in-flight set is empty; also
  /// releases deterministic partial batches (the drain is part of each
  /// tenant's deterministic request stream).
  void wait_idle();

  /// Stops accepting work, serves everything still queued, joins all
  /// threads. Idempotent; also run by the destructor.
  void shutdown();

  /// Live fleet snapshot; safe to call while serving and mid-swap.
  FleetStats stats() const;

  const FleetConfig& config() const { return config_; }
  std::size_t tenant_count() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    std::uint64_t seq = 0;
    Tensor image;
    Clock::time_point t_submit;
    std::promise<InferenceResult> promise;
  };

  /// One (C, H, W) shape class within a tenant's queue.
  struct Bucket {
    std::array<std::int64_t, 3> shape{};
    std::deque<Pending> items;
  };

  /// One deployed model version. Batches pin their version with a
  /// shared_ptr copied at dequeue, so a retired version stays alive until
  /// its last batch completes. Member order is destruction order in
  /// reverse: the executor and sessions go first, the deployment last.
  struct Version {
    std::uint64_t ordinal = 1;
    std::optional<artifact::Deployment> deployment;  ///< empty = in-process
    const msim::AnalogNetwork* analog = nullptr;
    /// One session replica per shared worker (empty for pipeline tenants).
    std::vector<std::unique_ptr<msim::AnalogSession>> sessions;
    std::unique_ptr<PipelineExecutor> executor;  ///< pipeline mode, lazy
    /// Counter totals at activation (plus the pipeline probe's delta once
    /// the executor builds); guarded by stats_mu_.
    msim::MsimStats baseline;
  };

  struct Tenant {
    TenantConfig cfg;
    Clock::time_point t_start;

    // Queue state — guarded by FleetServer::mu_. (A deque: growing the
    // bucket set must not relocate the move-only promise queues.)
    std::deque<Bucket> buckets;
    std::size_t queued = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t next_batch_seq = 0;
    std::size_t inflight = 0;
    bool swap_blocked = false;  ///< dequeues held while a swap drains/flips
    std::uint64_t rejected = 0;
    std::size_t max_queue_depth = 0;
    std::uint64_t next_ordinal = 2;
    std::shared_ptr<Version> current;
    std::thread dispatcher;  ///< pipeline tenants only

    // Completion stats — guarded by FleetServer::stats_mu_.
    LatencyHistogram latency;
    std::uint64_t completed = 0;
    std::uint64_t batches_done = 0;
    std::vector<std::uint64_t> batch_hist;
    /// Accumulated counter deltas of retired (swapped-out) versions.
    msim::MsimStats retired;
  };

  /// A dequeued batch: everything a worker needs with mu_ released.
  /// `tenant` is captured under mu_ so workers never index tenants_
  /// unlocked (register_tenant may reallocate the vector under traffic);
  /// the Tenant object itself is stable for the fleet's lifetime.
  struct Popped {
    Tenant* tenant = nullptr;
    std::vector<Pending> batch;
    std::uint64_t batch_seq = 0;
    std::shared_ptr<Version> version;  ///< pinned at dequeue — never torn
  };

  /// Builds a Version over a loaded artifact (sessions sized for the
  /// shared pool unless the tenant runs a pipeline). No locks taken.
  std::shared_ptr<Version> build_version(const TenantConfig& cfg,
                                         artifact::Deployment deployment);
  int register_tenant(const TenantConfig& config,
                      std::shared_ptr<Version> version);
  int tenant_id_locked(const std::string& name) const;

  /// True when `bucket` can release a batch right now (full, flushing,
  /// or — non-deterministic tenants only — past the deadline).
  bool bucket_ready(const Tenant& t, const Bucket& bucket,
                    Clock::time_point now) const;
  /// True when tenant `t` has any ready bucket (and isn't swap-blocked).
  bool tenant_ready(const Tenant& t, Clock::time_point now) const;
  /// Earliest partial-batch flush deadline across `t`'s buckets, if any.
  std::optional<Clock::time_point> tenant_deadline(const Tenant& t) const;

  /// Pops the next batch for tenant `idx` (caller holds mu_ and has
  /// established readiness). Picks the ready bucket with the oldest
  /// front sequence number — deterministic given arrival order.
  Popped pop_batch(int idx);

  /// Shared-pool dequeue: waits for any ready non-pipeline tenant, picks
  /// one via the weighted-fair picker, pops. False when the pool should
  /// exit (stopping and nothing left to serve).
  bool take_shared(Popped& out);
  /// Single-tenant dequeue for a pipeline dispatcher. False on exit.
  bool take_tenant(int idx, Popped& out);

  void worker_main(int worker);
  void tenant_dispatcher_main(int idx);

  /// Copies the batch's images into one (B, C, H, W) tensor.
  static Tensor assemble(const std::vector<Pending>& batch);
  /// Fulfills promises, stamps the version ordinal, merges latency/batch
  /// stats into tenant `t`.
  void finish_batch(Tenant& t, std::vector<Pending>& batch,
                    std::uint64_t batch_seq, std::uint64_t version,
                    const Tensor& logits, std::exception_ptr error);
  /// Retires `n` in-flight requests of tenant `t`, waking drain/swap
  /// waiters when the tenant (or the fleet) goes idle.
  void complete_inflight(Tenant& t, std::size_t n);

  const FleetConfig config_;
  Clock::time_point t_start_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;  ///< guards tenant queue state + the picker
  std::condition_variable cv_;       ///< work / stop / swap-unblocked
  std::condition_variable idle_cv_;  ///< a tenant (or the fleet) drained
  std::vector<std::unique_ptr<Tenant>> tenants_;
  WeightedFairPicker picker_;
  int drain_waiters_ = 0;
  bool stop_ = false;

  mutable std::mutex stats_mu_;  ///< guards completion stats + baselines
};

}  // namespace tinyadc::serve
