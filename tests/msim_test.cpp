// Mixed-signal simulator: DAC streaming, ADC behaviour, and the paper's
// central claim (P2): with Eq. 1-sized ADCs, CP-pruned analog MVM is
// bit-exact — "without introducing any computational inaccuracy".
#include <gtest/gtest.h>

#include <tuple>

#include "core/projection.hpp"
#include "msim/analog_mvm.hpp"
#include "tensor/ops.hpp"

namespace tinyadc::msim {
namespace {

using xbar::MappingConfig;

TEST(Dac, CycleCount) {
  EXPECT_EQ(dac_cycles(8, 1), 8);
  EXPECT_EQ(dac_cycles(8, 2), 4);
  EXPECT_EQ(dac_cycles(7, 2), 4);
  EXPECT_EQ(dac_cycles(1, 1), 1);
}

TEST(Dac, ChunksReassembleCode) {
  for (std::int32_t code = 0; code < 256; code += 7) {
    const auto chunks = dac_chunks(code, 8, 1);
    std::int32_t back = 0;
    for (std::size_t t = chunks.size(); t > 0; --t)
      back = (back << 1) | chunks[t - 1];
    EXPECT_EQ(back, code);
  }
}

TEST(Dac, RejectsOutOfRangeCodes) {
  EXPECT_THROW(dac_chunks(-1, 8, 1), tinyadc::CheckError);
  EXPECT_THROW(dac_chunks(256, 8, 1), tinyadc::CheckError);
}

TEST(Adc, ExactWithinFullScale) {
  Adc adc(5);
  EXPECT_EQ(adc.full_scale(), 31);
  for (int v = 0; v <= 31; ++v) EXPECT_EQ(adc.convert(v), v);
  EXPECT_EQ(adc.clip_events(), 0);
  EXPECT_EQ(adc.conversions(), 32);
}

TEST(Adc, ClipsAndCounts) {
  Adc adc(3);
  EXPECT_EQ(adc.convert(100.0), 7);
  EXPECT_EQ(adc.clip_events(), 1);
}

TEST(Adc, RoundsToNearestCode) {
  Adc adc(8);
  EXPECT_EQ(adc.convert(4.4), 4);
  EXPECT_EQ(adc.convert(4.6), 5);
  EXPECT_EQ(adc.convert(-0.4), 0);
}

TEST(Adc, ZeroBitsDegenerate) {
  Adc adc(0);
  EXPECT_EQ(adc.convert(5.0), 0);
}

MappingConfig sim_config(std::int64_t xbar_rows = 8) {
  MappingConfig cfg;
  cfg.dims = {xbar_rows, xbar_rows};
  cfg.weight_bits = 8;
  cfg.cell_bits = 2;
  cfg.input_bits = 4;
  cfg.dac_bits = 1;
  return cfg;
}

std::vector<std::int32_t> random_codes(std::int64_t n, int bits,
                                       std::uint64_t seed) {
  tinyadc::Rng rng(seed);
  std::vector<std::int32_t> x(static_cast<std::size_t>(n));
  for (auto& v : x)
    v = static_cast<std::int32_t>(rng.uniform_int(1ULL << bits));
  return x;
}

TEST(AnalogMvm, DenseMatrixExactWithEq1Adc) {
  tinyadc::Rng rng(11);
  Tensor m = Tensor::randn({8, 6}, rng);
  const auto layer = xbar::map_matrix(m, "l", sim_config());
  AnalogLayerSim sim(layer, {});
  EXPECT_EQ(sim.adc_bits(), xbar::required_adc_bits(1, 2, 8));
  const auto x = random_codes(8, 4, 1);
  EXPECT_EQ(sim.mvm(x), xbar::reference_mvm(layer, x));
  EXPECT_EQ(sim.stats().adc_clip_events, 0);
}

TEST(AnalogMvm, MultiBitDacExact) {
  tinyadc::Rng rng(12);
  auto cfg = sim_config();
  cfg.dac_bits = 2;
  cfg.input_bits = 8;
  Tensor m = Tensor::randn({8, 4}, rng);
  const auto layer = xbar::map_matrix(m, "l", cfg);
  AnalogLayerSim sim(layer, {});
  const auto x = random_codes(8, 8, 2);
  EXPECT_EQ(sim.mvm(x), xbar::reference_mvm(layer, x));
}

TEST(AnalogMvm, UnderProvisionedAdcClipsAndErrs) {
  tinyadc::Rng rng(13);
  // All-max weights and inputs force worst-case column sums.
  Tensor m = Tensor::ones({8, 2});
  const auto layer = xbar::map_matrix(m, "l", sim_config());
  MsimConfig cfg;
  cfg.adc_bits_override = 2;  // Eq. 1 demands 5
  AnalogLayerSim sim(layer, cfg);
  std::vector<std::int32_t> x(8, 15);
  const auto y = sim.mvm(x);
  EXPECT_GT(sim.stats().adc_clip_events, 0);
  EXPECT_NE(y, xbar::reference_mvm(layer, x));
}

TEST(AnalogMvm, RealDomainMatchesFloatWithinQuantError) {
  tinyadc::Rng rng(14);
  Tensor m = Tensor::randn({16, 5}, rng);
  auto cfg = sim_config(16);
  cfg.input_bits = 8;
  const auto layer = xbar::map_matrix(m, "l", cfg);
  AnalogLayerSim sim(layer, {});
  std::vector<float> x(16);
  for (auto& v : x) v = rng.uniform(0.0F, 1.0F);
  const auto xq = xbar::fit_unsigned(1.0F, 8);
  const auto y = sim.mvm_real(x, xq);
  // Float reference.
  for (std::int64_t c = 0; c < 5; ++c) {
    double expect = 0.0;
    for (std::int64_t r = 0; r < 16; ++r)
      expect += static_cast<double>(m.at(r, c)) * x[static_cast<std::size_t>(r)];
    // Error bounded by accumulated quantization steps.
    EXPECT_NEAR(y[static_cast<std::size_t>(c)], expect, 0.15)
        << "column " << c;
  }
}

TEST(AnalogMvm, SmallVariationAbsorbedByAdcRounding) {
  // One active row per column: analog sum perturbation is < ½ LSB for a
  // 5 % spread on a single small level, so rounding recovers exactness.
  Tensor m = Tensor::zeros({8, 4});
  for (int c = 0; c < 4; ++c) m.at(c, c) = 0.01F;  // quantizes to small code
  auto cfg = sim_config();
  const auto layer = xbar::map_matrix(m, "l", cfg);
  MsimConfig mcfg;
  mcfg.variation_sigma = 0.01;
  AnalogLayerSim ideal(layer, {});
  AnalogLayerSim noisy(layer, mcfg);
  const auto x = random_codes(8, 4, 3);
  EXPECT_EQ(noisy.mvm(x), ideal.mvm(x));
}

TEST(AnalogMvm, LargeVariationEventuallyBreaksExactness) {
  tinyadc::Rng rng(15);
  Tensor m = Tensor::randn({8, 8}, rng);
  const auto layer = xbar::map_matrix(m, "l", sim_config());
  MsimConfig mcfg;
  mcfg.variation_sigma = 0.5;  // far beyond the paper's 10 %
  AnalogLayerSim noisy(layer, mcfg);
  std::vector<std::int32_t> x(8, 15);
  EXPECT_NE(noisy.mvm(x), xbar::reference_mvm(layer, x));
}

TEST(AnalogMvm, StatsAccumulateAcrossCalls) {
  tinyadc::Rng rng(16);
  const auto layer =
      xbar::map_matrix(Tensor::randn({4, 4}, rng), "l", sim_config(4));
  AnalogLayerSim sim(layer, {});
  const auto x = random_codes(4, 4, 4);
  sim.mvm(x);
  const auto once = sim.stats().adc_conversions;
  sim.mvm(x);
  EXPECT_EQ(sim.stats().adc_conversions, 2 * once);
  sim.reset_stats();
  EXPECT_EQ(sim.stats().adc_conversions, 0);
}

TEST(AnalogMvm, NetworkSimsCoverEveryLayer) {
  tinyadc::Rng rng(17);
  xbar::MappedNetwork net;
  net.config = sim_config();
  net.layers.push_back(
      xbar::map_matrix(Tensor::randn({8, 4}, rng), "a", net.config));
  net.layers.push_back(
      xbar::map_matrix(Tensor::randn({4, 2}, rng), "b", net.config));
  auto sims = make_network_sims(net, {});
  ASSERT_EQ(sims.size(), 2U);
  const auto x = random_codes(8, 4, 5);
  EXPECT_EQ(sims[0].mvm(x), xbar::reference_mvm(net.layers[0], x));
}

/// THE paper property (P2): for every CP rate, a CP-pruned matrix with the
/// *reduced* Eq. 1 ADC (sized by `keep`, not by the crossbar height)
/// reproduces the reference MVM exactly — no computational inaccuracy.
class CpExactness
    : public ::testing::TestWithParam<std::tuple<std::int64_t, int>> {};

TEST_P(CpExactness, ReducedAdcIsStillExact) {
  const auto [keep, input_bits] = GetParam();
  tinyadc::Rng rng(static_cast<std::uint64_t>(keep * 100 + input_bits));
  // Generate in weight-storage (column-major) layout, CP-project there,
  // then transpose into the row-major matrix the mapper consumes.
  constexpr std::int64_t rows = 16, cols = 6;
  std::vector<float> store(static_cast<std::size_t>(rows * cols));
  for (auto& v : store) v = rng.normal(0.0F, 1.0F);
  core::project_column_proportional({store.data(), rows, cols}, {16, 16},
                                    keep);
  Tensor m({rows, cols});
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t c = 0; c < cols; ++c)
      m.at(r, c) = store[static_cast<std::size_t>(c * rows + r)];
  auto cfg = sim_config(16);
  cfg.input_bits = input_bits;
  const auto layer = xbar::map_matrix(m, "l", cfg);
  ASSERT_LE(layer.max_active_rows(), keep);

  // The census-driven ADC is smaller than the dense one…
  const int dense_bits = xbar::required_adc_bits(1, 2, 16);
  AnalogLayerSim sim(layer, {});
  EXPECT_LT(sim.adc_bits(), dense_bits);
  // …and still bit-exact for random and adversarial inputs.
  const auto x = random_codes(16, input_bits, 6);
  EXPECT_EQ(sim.mvm(x), xbar::reference_mvm(layer, x));
  std::vector<std::int32_t> worst(16, (1 << input_bits) - 1);
  EXPECT_EQ(sim.mvm(worst), xbar::reference_mvm(layer, worst));
  EXPECT_EQ(sim.stats().adc_clip_events, 0);
}

INSTANTIATE_TEST_SUITE_P(
    RatesAndPrecisions, CpExactness,
    ::testing::Combine(::testing::Values<std::int64_t>(1, 2, 4, 8),
                       ::testing::Values(1, 4, 8)));

}  // namespace
}  // namespace tinyadc::msim
