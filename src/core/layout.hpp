// Shared 2-D weight-matrix layout conventions for the pruning framework.
//
// Every prunable weight in this project is viewed as the paper's Fig. 3
// 2-D matrix: `rows` input taps × `cols` output units. The underlying
// parameter storage (conv (F, C, Kh, Kw) or linear (out, in)) holds that
// matrix **column-major**: element (r, c) lives at `data[c * rows + r]`.
// All core projections operate directly on this layout so no transpose
// copies happen inside the training loop.
#pragma once

#include <cstdint>

namespace tinyadc::core {

/// Crossbar array dimensions in weight units (paper default: 128×128).
struct CrossbarDims {
  std::int64_t rows = 128;  ///< m: wordlines (input taps per array)
  std::int64_t cols = 128;  ///< n: bitlines (output units per array)
};

/// Column-major 2-D accessor over a flat weight buffer.
struct MatrixRef {
  float* data = nullptr;
  std::int64_t rows = 0;
  std::int64_t cols = 0;

  /// Element (r, c).
  float& at(std::int64_t r, std::int64_t c) const { return data[c * rows + r]; }
};

/// Read-only variant of MatrixRef.
struct ConstMatrixRef {
  const float* data = nullptr;
  std::int64_t rows = 0;
  std::int64_t cols = 0;

  float at(std::int64_t r, std::int64_t c) const { return data[c * rows + r]; }
};

}  // namespace tinyadc::core
