// Closed-loop load generator over an InferenceEngine.
//
// Submits single-image requests drawn round-robin from a dataset, paced
// to a target QPS (0 = as fast as the engine accepts them), with a bound
// on outstanding requests (closed loop: the generator blocks on the
// oldest future once the window is full, so it never outruns the engine
// unboundedly). Collects per-request results, verifies labels against
// the dataset, and digests every result (logits bytes + predicted label,
// in arrival order) so deterministic-mode runs can be compared
// byte-for-byte across worker counts.
// run_fleet_loadgen() is the multi-tenant variant: one *open-loop*
// submitter thread per tenant, paced to a per-tenant QPS mix with optional
// square-wave burst patterns (rate × burst_factor for the first half of
// every burst period). Open loop means arrivals are scheduled by the
// clock, not by completions — overload shows up as queue growth and (with
// a per-tenant max_queue) admission rejections, which the per-tenant
// report counts separately from completions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "serve/engine.hpp"
#include "serve/fleet.hpp"

namespace tinyadc::serve {

struct LoadgenConfig {
  std::int64_t requests = 256;   ///< total requests to issue
  double target_qps = 0.0;       ///< pacing rate; 0 = max speed
  std::size_t max_outstanding = 64;  ///< closed-loop window
};

struct LoadgenReport {
  ServeStats stats;             ///< engine snapshot after the run drained
  double achieved_qps = 0.0;    ///< completed requests / loadgen wall time
  double accuracy = 0.0;        ///< predicted label vs dataset label
  std::uint64_t output_digest = 0;  ///< FNV over (logits, label) by seq

  /// Stats JSON extended with the loadgen-level fields.
  std::string to_json() const;
};

/// Runs the load and drains the engine (wait_idle) before snapshotting.
LoadgenReport run_loadgen(InferenceEngine& engine, const data::Dataset& ds,
                          const LoadgenConfig& config);

/// One tenant's traffic mix for the multi-tenant load generator.
struct TenantLoadSpec {
  std::string name;                   ///< registered FleetServer tenant
  const data::Dataset* dataset = nullptr;  ///< images + oracle labels
  std::int64_t requests = 256;        ///< total requests to issue
  double qps = 0.0;                   ///< base pacing rate; 0 = max speed
  /// Square-wave burst pattern: the arrival rate is qps × burst_factor
  /// during the first half of every burst_period_s window and qps during
  /// the second half. burst_period_s == 0 (or factor 1) disables bursts.
  double burst_factor = 1.0;
  double burst_period_s = 0.0;
};

/// One tenant's outcome of a fleet loadgen run.
struct TenantLoadReport {
  std::string name;
  std::int64_t submitted = 0;   ///< requests issued (incl. rejected)
  std::int64_t completed = 0;   ///< requests served
  std::int64_t rejected = 0;    ///< admission-rejected submits
  double achieved_qps = 0.0;    ///< completed / tenant wall time
  double accuracy = 0.0;        ///< predicted label vs dataset label
  /// FNV over (logits, label) of every completed request in submission
  /// order — rejected submits are skipped, so under deterministic
  /// batching with no rejections the digest is byte-stable across worker
  /// counts and co-tenant load.
  std::uint64_t output_digest = 0;
};

struct FleetLoadgenReport {
  FleetStats fleet;  ///< registry snapshot after the run drained
  std::vector<TenantLoadReport> tenants;

  /// FleetStats JSON extended with a per-tenant loadgen array.
  std::string to_json() const;
};

/// Runs every tenant's open-loop traffic concurrently, drains the fleet
/// and snapshots it. Every spec's tenant must already be registered.
FleetLoadgenReport run_fleet_loadgen(FleetServer& fleet,
                                     const std::vector<TenantLoadSpec>& specs);

}  // namespace tinyadc::serve
