// im2col/col2im: geometry, known patch layouts, and the adjoint property.
#include <gtest/gtest.h>

#include <tuple>

#include "tensor/im2col.hpp"
#include "tensor/ops.hpp"

namespace tinyadc {
namespace {

TEST(ConvGeometry, OutputDims) {
  ConvGeometry g{3, 8, 8, 3, 3, 1, 1};
  EXPECT_EQ(g.out_h(), 8);
  EXPECT_EQ(g.out_w(), 8);
  EXPECT_EQ(g.patch_rows(), 27);
  EXPECT_EQ(g.patch_cols(), 64);
}

TEST(ConvGeometry, StrideShrinksOutput) {
  ConvGeometry g{1, 8, 8, 3, 3, 2, 1};
  EXPECT_EQ(g.out_h(), 4);
  EXPECT_EQ(g.out_w(), 4);
}

TEST(Im2col, Kernel1x1IsIdentityLayout) {
  Tensor img({2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  ConvGeometry g{2, 2, 2, 1, 1, 1, 0};
  Tensor cols = im2col(img, g);
  EXPECT_EQ(cols.shape(), Shape({2, 4}));
  // Row c of the patch matrix is channel c's pixels in scan order.
  for (int i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(cols.at(i), img.at(i));
}

TEST(Im2col, PaddingReadsZero) {
  Tensor img({1, 2, 2}, {1, 2, 3, 4});
  ConvGeometry g{1, 2, 2, 3, 3, 1, 1};
  Tensor cols = im2col(img, g);
  EXPECT_EQ(cols.shape(), Shape({9, 4}));
  // Patch at output (0,0): top-left tap (kh=0,kw=0) is out of bounds.
  EXPECT_FLOAT_EQ(cols.at(0, 0), 0.0F);
  // Center tap (kh=1,kw=1 → row 4) is the pixel itself.
  EXPECT_FLOAT_EQ(cols.at(4, 0), 1.0F);
  EXPECT_FLOAT_EQ(cols.at(4, 3), 4.0F);
}

TEST(Im2col, RowOrderIsChannelKhKw) {
  // Two channels, 2x2 kernel on a 2x2 image without padding: one patch.
  Tensor img({2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  ConvGeometry g{2, 2, 2, 2, 2, 1, 0};
  Tensor cols = im2col(img, g);
  EXPECT_EQ(cols.shape(), Shape({8, 1}));
  for (int i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(cols.at(i, 0), img.at(i));
}

TEST(Im2col, RejectsMismatchedInput) {
  Tensor img({1, 4, 4});
  ConvGeometry g{2, 4, 4, 3, 3, 1, 1};
  EXPECT_THROW(im2col(img, g), CheckError);
}

TEST(Im2col, RejectsDegenerateGeometry) {
  Tensor img({1, 2, 2});
  ConvGeometry bad{1, 2, 2, 5, 5, 1, 0};  // kernel larger than input
  EXPECT_THROW(im2col(img, bad), CheckError);
}

TEST(Col2im, AccumulatesOverlaps) {
  // 3x3 kernel, stride 1, pad 1 on a 2x2 image: center pixels are touched by
  // several patches; scattering all-ones patch matrix counts the taps.
  ConvGeometry g{1, 2, 2, 3, 3, 1, 1};
  Tensor cols = Tensor::ones({g.patch_rows(), g.patch_cols()});
  Tensor img = col2im(cols, g);
  // Every pixel is covered by 4 valid (in-bounds) taps in this geometry.
  for (std::int64_t i = 0; i < img.numel(); ++i)
    EXPECT_FLOAT_EQ(img.at(i), 4.0F);
}

/// Adjoint property: <im2col(x), y> == <x, col2im(y)> for random x, y.
/// This is exactly the identity the conv backward pass relies on.
class Im2colAdjoint
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(Im2colAdjoint, InnerProductIdentity) {
  const auto [channels, size, kernel, stride] = GetParam();
  const int pad = kernel / 2;
  ConvGeometry g{channels, size, size, kernel, kernel, stride, pad};
  if (g.out_h() <= 0 || g.out_w() <= 0) GTEST_SKIP();
  Rng rng(static_cast<std::uint64_t>(channels * 100 + size * 10 + kernel));
  Tensor x = Tensor::randn({channels, size, size}, rng);
  Tensor y = Tensor::randn({g.patch_rows(), g.patch_cols()}, rng);
  const Tensor ax = im2col(x, g);
  const Tensor aty = col2im(y, g);
  const double lhs = sum(mul(ax, y));
  const double rhs = sum(mul(x, aty));
  EXPECT_NEAR(lhs, rhs, 1e-2 * (std::abs(lhs) + 1.0));
}

INSTANTIATE_TEST_SUITE_P(Geometries, Im2colAdjoint,
                         ::testing::Combine(::testing::Values(1, 3),
                                            ::testing::Values(4, 7, 8),
                                            ::testing::Values(1, 3, 5),
                                            ::testing::Values(1, 2)));

}  // namespace
}  // namespace tinyadc
