// Crossbar-mapping edge cases and the selections-based map_model overload.
#include <gtest/gtest.h>

#include "core/pruner.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "tensor/ops.hpp"
#include "xbar/mapping.hpp"

namespace tinyadc::xbar {
namespace {

MappingConfig cfg4() {
  MappingConfig cfg;
  cfg.dims = {4, 4};
  return cfg;
}

TEST(MappingEdge, SingleElementMatrix) {
  Tensor m({1, 1}, {0.5F});
  const auto layer = map_matrix(m, "l", cfg4());
  EXPECT_EQ(layer.total_blocks(), 1);
  EXPECT_EQ(layer.blocks[0].rows, 1);
  EXPECT_EQ(layer.blocks[0].cols, 1);
  EXPECT_EQ(layer.max_active_rows(), 1);
  std::vector<std::int32_t> x{3};
  EXPECT_EQ(reference_mvm(layer, x).size(), 1U);
}

TEST(MappingEdge, FullyRemovedColumnsLeaveEmptyMapping) {
  Tensor m = Tensor::zeros({4, 4});
  StructuralRemoval removal;
  removal.cols = {0, 1, 2, 3};
  const auto layer = map_matrix(m, "l", cfg4(), removal);
  EXPECT_TRUE(layer.kept_cols.empty());
  EXPECT_EQ(layer.total_blocks(), 0);
  EXPECT_EQ(layer.active_arrays(), 0);
  EXPECT_EQ(layer.required_adc_bits(), 0);
  // Demap yields the all-zero logical matrix; reference MVM is all zero.
  EXPECT_EQ(count_nonzero(layer.demap()), 0);
  std::vector<std::int32_t> x(4, 7);
  for (auto v : reference_mvm(layer, x)) EXPECT_EQ(v, 0);
}

TEST(MappingEdge, AllZeroMatrixNeedsNoAdc) {
  const auto layer = map_matrix(Tensor::zeros({8, 8}), "l", cfg4());
  EXPECT_EQ(layer.max_active_rows(), 0);
  EXPECT_EQ(layer.required_adc_bits(), 0);
  EXPECT_EQ(layer.design_adc_bits(), 0);
  EXPECT_EQ(layer.active_blocks(), 0);
}

TEST(MappingEdge, ExtremeDynamicRangeQuantizesSmallWeightsToZero) {
  // One huge weight sets the scale; 0.01-magnitude weights fall below half
  // an LSB, quantize to code 0 and deactivate their rows — quantization-
  // induced pruning the census must reflect.
  Tensor m = Tensor::full({4, 4}, 0.01F);
  m.at(0, 0) = 100.0F;
  const auto layer = map_matrix(m, "l", cfg4());
  EXPECT_EQ(layer.max_active_rows(), 1);
  // With a balanced range every weight stays live.
  Tensor balanced = Tensor::full({4, 4}, 0.5F);
  balanced.at(0, 0) = 1.0F;
  EXPECT_EQ(map_matrix(balanced, "l", cfg4()).max_active_rows(), 4);
}

TEST(MapModelSelections, MatchesPipelineReform) {
  // Combined pipeline → selections → map; the mapper must compact exactly
  // the selected structures and the census must honor the CP budget.
  data::SyntheticSpec dspec;
  dspec.num_classes = 4;
  dspec.image_size = 8;
  dspec.train_per_class = 12;
  dspec.test_per_class = 4;
  dspec.seed = 17;
  const auto data = data::make_synthetic(dspec);
  nn::ModelConfig mc;
  mc.num_classes = 4;
  mc.image_size = 8;
  mc.width_mult = 0.0625F;
  auto model = nn::resnet18(mc);

  core::PipelineConfig pcfg;
  pcfg.xbar = {4, 4};
  pcfg.pretrain.epochs = 2;
  pcfg.pretrain.batch_size = 16;
  pcfg.admm.epochs = 2;
  pcfg.admm.batch_size = 16;
  pcfg.retrain.epochs = 2;
  pcfg.retrain.batch_size = 16;
  auto specs = core::uniform_cp_specs(*model, 2, pcfg.xbar);
  core::add_structured(specs, *model, 0.3, 0.3, pcfg.xbar);
  const auto result =
      core::run_pipeline(*model, data.train, data.test, specs, pcfg);
  ASSERT_EQ(result.selections.size(), specs.size());

  MappingConfig map_cfg;
  map_cfg.dims = {4, 4};
  const auto net = map_model(*model, map_cfg, result.selections);
  for (std::size_t i = 0; i < net.layers.size(); ++i) {
    const auto& layer = net.layers[i];
    if (!specs[i].active()) continue;
    // Compaction matches the recorded selection sizes.
    EXPECT_EQ(static_cast<std::int64_t>(layer.kept_rows.size()),
              layer.rows - specs[i].remove_shapes)
        << layer.name;
    EXPECT_EQ(static_cast<std::int64_t>(layer.kept_cols.size()),
              layer.cols - specs[i].remove_filters)
        << layer.name;
    // CP budget holds on the reformed tiling.
    if (specs[i].cp_keep > 0)
      EXPECT_LE(layer.max_active_rows(), specs[i].cp_keep) << layer.name;
  }
  // Selections-based mapping never reports less reduction than spec-based
  // inference (they agree when no CP zeros confuse the inference).
  const auto inferred = map_model(*model, map_cfg, specs);
  EXPECT_EQ(net.total_arrays(), inferred.total_arrays());
}

TEST(MapModelSelections, CountMismatchRejected) {
  nn::ModelConfig mc;
  mc.num_classes = 4;
  mc.image_size = 8;
  mc.width_mult = 0.0625F;
  auto model = nn::resnet18(mc);
  std::vector<core::StructuralSelection> too_few(3);
  EXPECT_THROW(map_model(*model, cfg4(), too_few), tinyadc::CheckError);
}

}  // namespace
}  // namespace tinyadc::xbar
