// Crossbar mapping: tiling geometry (incl. remainders), quantized round
// trips (P3), occupancy census, crossbar accounting, reference MVM.
#include <gtest/gtest.h>

#include "core/projection.hpp"
#include "nn/models.hpp"
#include "tensor/ops.hpp"
#include "xbar/mapping.hpp"

namespace tinyadc::xbar {
namespace {

MappingConfig small_config() {
  MappingConfig cfg;
  cfg.dims = {4, 4};
  cfg.weight_bits = 8;
  cfg.cell_bits = 2;
  cfg.input_bits = 4;
  cfg.dac_bits = 1;
  return cfg;
}

TEST(Mapping, ExactTiling) {
  Rng rng(1);
  Tensor m = Tensor::randn({8, 8}, rng);
  const auto layer = map_matrix(m, "l", small_config());
  EXPECT_EQ(layer.block_grid_rows, 2);
  EXPECT_EQ(layer.block_grid_cols, 2);
  EXPECT_EQ(layer.total_blocks(), 4);
  for (const auto& b : layer.blocks) {
    EXPECT_EQ(b.rows, 4);
    EXPECT_EQ(b.cols, 4);
  }
}

TEST(Mapping, RemainderBlocksGetExtraArrays) {
  // Paper §III-C: "if the number of columns/rows cannot be divided by the
  // block size, additional crossbar arrays are needed".
  Rng rng(2);
  Tensor m = Tensor::randn({10, 7}, rng);
  const auto layer = map_matrix(m, "l", small_config());
  EXPECT_EQ(layer.block_grid_rows, 3);  // 4+4+2
  EXPECT_EQ(layer.block_grid_cols, 2);  // 4+3
  EXPECT_EQ(layer.total_blocks(), 6);
  EXPECT_EQ(layer.blocks.back().rows, 2);
  EXPECT_EQ(layer.blocks.back().cols, 3);
}

TEST(Mapping, DemapRoundTripsQuantizedValues) {
  Rng rng(3);
  Tensor m = Tensor::randn({9, 6}, rng);
  const auto layer = map_matrix(m, "l", small_config());
  const Tensor back = layer.demap();
  // Reconstruction within half a quantization step everywhere.
  EXPECT_LT(max_abs_diff(back, m), layer.quant.scale * 0.5F + 1e-6F);
  // And remapping the demapped matrix is exact (quantization idempotent).
  const auto layer2 = map_matrix(back, "l2", small_config());
  for (std::size_t i = 0; i < layer.blocks.size(); ++i)
    EXPECT_EQ(layer.blocks[i].q, layer2.blocks[i].q);
}

TEST(Mapping, ZerosStayExactlyZero) {
  Tensor m = Tensor::zeros({8, 4});
  m.at(3, 2) = 1.0F;
  const auto layer = map_matrix(m, "l", small_config());
  const Tensor back = layer.demap();
  for (std::int64_t i = 0; i < m.numel(); ++i)
    if (m.at(i) == 0.0F) EXPECT_EQ(back.at(i), 0.0F);
}

TEST(Mapping, CensusCountsPerBlockColumn) {
  Tensor m = Tensor::zeros({8, 4});
  // Column 1, top block: 3 non-zeros; bottom block: 1.
  m.at(0, 1) = 1.0F;
  m.at(1, 1) = -1.0F;
  m.at(3, 1) = 0.5F;
  m.at(6, 1) = 2.0F;
  const auto layer = map_matrix(m, "l", small_config());
  EXPECT_EQ(layer.blocks[0].max_col_nonzeros, 3);  // block (0,0)
  EXPECT_EQ(layer.blocks[1].max_col_nonzeros, 1);  // block (1,0)
  EXPECT_EQ(layer.max_active_rows(), 3);
  // Per-column occupancy (consumed by the msim execution plan): column 1
  // carries the census, every other column is empty.
  ASSERT_EQ(layer.blocks[0].col_nonzeros.size(), 4U);
  EXPECT_EQ(layer.blocks[0].column_nonzeros(1), 3);
  EXPECT_EQ(layer.blocks[1].column_nonzeros(1), 1);
  for (std::int64_t c : {0, 2, 3}) {
    EXPECT_EQ(layer.blocks[0].column_nonzeros(c), 0);
    EXPECT_EQ(layer.blocks[1].column_nonzeros(c), 0);
  }
}

TEST(Mapping, RequiredAdcBitsFollowsCensus) {
  Tensor dense = Tensor::ones({4, 4});
  auto cfg = small_config();
  const auto layer = map_matrix(dense, "l", cfg);
  EXPECT_EQ(layer.required_adc_bits(), required_adc_bits(1, 2, 4));

  Tensor sparse = Tensor::zeros({4, 4});
  for (int c = 0; c < 4; ++c) sparse.at(c % 4, c) = 1.0F;
  const auto sl = map_matrix(sparse, "l", cfg);
  EXPECT_EQ(sl.required_adc_bits(), required_adc_bits(1, 2, 1));
}

TEST(Mapping, ArraysPerBlockCountsSlicesAndPolarity) {
  const auto cfg = small_config();  // 8-bit weights, 2-bit cells → 4 slices
  Rng rng(5);
  const auto layer = map_matrix(Tensor::randn({4, 4}, rng), "l", cfg);
  EXPECT_EQ(layer.arrays_per_block(), 8);  // 4 slices × 2 polarities
}

TEST(Mapping, AllZeroBlocksAreInactive) {
  // Diagonal nonzeros: every row/column survives the reform, but the two
  // off-diagonal 4×4 blocks hold only zeros.
  Tensor m = Tensor::zeros({8, 8});
  for (int i = 0; i < 8; ++i) m.at(i, i) = 1.0F;
  const auto layer = map_matrix(m, "l", small_config());
  EXPECT_EQ(layer.total_blocks(), 4);
  EXPECT_EQ(layer.active_blocks(), 2);
  EXPECT_EQ(layer.active_arrays(), 2 * layer.arrays_per_block());
}

TEST(Mapping, ReformCompactsZeroRowsAndColumns) {
  // Paper §III-D: removing whole filters/shapes converts fully into
  // crossbar reductions — the designated zero rows/cols vanish from the
  // tiling when the structural removal is passed to the mapper.
  Rng rng(21);
  Tensor m = Tensor::randn({8, 8}, rng);
  // Zero out 4 columns (one crossbar's worth) and 4 rows.
  for (std::int64_t c : {1, 3, 5, 7})
    for (std::int64_t r = 0; r < 8; ++r) m.at(r, c) = 0.0F;
  for (std::int64_t r : {0, 2, 4, 6})
    for (std::int64_t c = 0; c < 8; ++c) m.at(r, c) = 0.0F;
  const auto removal = infer_removal(m, 4, 4);
  EXPECT_EQ(removal.rows, (std::vector<std::int64_t>{0, 2, 4, 6}));
  EXPECT_EQ(removal.cols, (std::vector<std::int64_t>{1, 3, 5, 7}));
  const auto layer = map_matrix(m, "l", small_config(), removal);
  EXPECT_EQ(layer.kept_rows.size(), 4U);
  EXPECT_EQ(layer.kept_cols.size(), 4U);
  EXPECT_EQ(layer.dense_blocks(), 4);   // 8×8 would need 2×2 blocks
  EXPECT_EQ(layer.total_blocks(), 1);   // compacted 4×4 needs one
  EXPECT_EQ(layer.active_blocks(), 1);
  // Removing a row that still holds weights is rejected.
  StructuralRemoval bad;
  bad.rows = {1};
  EXPECT_THROW(map_matrix(m, "l", small_config(), bad), tinyadc::CheckError);
  // Demap restores original coordinates, zeros included.
  const Tensor back = layer.demap();
  for (std::int64_t c : {1, 3, 5, 7}) EXPECT_EQ(back.at(2, c), 0.0F);
  EXPECT_NEAR(back.at(1, 0), m.at(1, 0), layer.quant.scale * 0.5F + 1e-6F);
  // Reference MVM still speaks original coordinates.
  std::vector<std::int32_t> x(8, 1);
  const auto y = reference_mvm(layer, x);
  EXPECT_EQ(y[1], 0);  // zeroed column
}

TEST(Mapping, NetworkAccountingAndReduction) {
  nn::ModelConfig mc;
  mc.num_classes = 4;
  mc.image_size = 8;
  mc.width_mult = 0.0625F;
  auto model = nn::resnet18(mc);
  auto net = map_model(*model, small_config());
  EXPECT_EQ(net.layers.size(), model->prunable_views().size());
  EXPECT_GT(net.total_arrays(), 0);
  // Dense model: everything active, no reduction.
  EXPECT_EQ(net.active_arrays(), net.total_arrays());
  EXPECT_DOUBLE_EQ(net.crossbar_reduction(), 0.0);

  // Structurally prune half the columns of one mid layer and re-map: the
  // reduction must match the dropped blocks exactly (P4).
  auto views = model->prunable_views();
  auto& v = views[4];
  core::MatrixRef ref{v.weight->value.data(), v.rows, v.cols};
  std::vector<std::int64_t> cols_to_zero;
  for (std::int64_t c = 0; c < 4; ++c) cols_to_zero.push_back(c);
  core::zero_columns(ref, cols_to_zero);
  auto net2 = map_model(*model, small_config());
  EXPECT_LT(net2.active_arrays(), net2.total_arrays());
  EXPECT_GT(net2.crossbar_reduction(), 0.0);
  // Dropped arrays = block_grid_rows of that layer × arrays_per_block
  // (one full block column disappears).
  const auto& l = net2.layers[4];
  EXPECT_EQ(net2.total_arrays() - net2.active_arrays(),
            l.block_grid_rows * l.arrays_per_block());
}

TEST(Mapping, WorstAdcBitsExcludesFirstLayer) {
  nn::ModelConfig mc;
  mc.num_classes = 4;
  mc.image_size = 8;
  mc.width_mult = 0.0625F;
  auto model = nn::resnet18(mc);
  // CP-prune everything except the first conv to 1 non-zero per column.
  auto views = model->prunable_views();
  for (std::size_t i = 1; i < views.size(); ++i) {
    core::MatrixRef ref{views[i].weight->value.data(), views[i].rows,
                        views[i].cols};
    core::project_column_proportional(ref, {4, 4}, 1);
  }
  auto net = map_model(*model, small_config());
  EXPECT_EQ(net.worst_adc_bits_after_first(), required_adc_bits(1, 2, 1));
  // The first (dense) layer itself still needs the dense resolution.
  EXPECT_EQ(net.layers[0].required_adc_bits(),
            required_adc_bits(1, 2, net.layers[0].max_active_rows()));
}

TEST(ReferenceMvm, MatchesDenseDotProduct) {
  Rng rng(6);
  Tensor m = Tensor::randn({6, 5}, rng);
  const auto layer = map_matrix(m, "l", small_config());
  std::vector<std::int32_t> x = {1, 0, 3, 2, 5, 7};
  const auto y = reference_mvm(layer, x);
  for (std::int64_t c = 0; c < 5; ++c) {
    std::int64_t expect = 0;
    for (std::int64_t r = 0; r < 6; ++r) {
      // Recover the quantized code from the blocks to compare.
      const auto& b = layer.blocks[static_cast<std::size_t>(
          (r / 4) * layer.block_grid_cols + (c / 4))];
      expect += static_cast<std::int64_t>(b.at(r % 4, c % 4)) *
                x[static_cast<std::size_t>(r)];
    }
    EXPECT_EQ(y[static_cast<std::size_t>(c)], expect);
  }
}

TEST(ReferenceMvm, ValidatesInputLength) {
  Rng rng(7);
  const auto layer = map_matrix(Tensor::randn({4, 4}, rng), "l",
                                small_config());
  std::vector<std::int32_t> x(3, 1);
  EXPECT_THROW(reference_mvm(layer, x), tinyadc::CheckError);
}

}  // namespace
}  // namespace tinyadc::xbar
