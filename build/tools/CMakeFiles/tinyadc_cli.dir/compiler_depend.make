# Empty compiler generated dependencies file for tinyadc_cli.
# This may be replaced when dependencies are built.
