file(REMOVE_RECURSE
  "CMakeFiles/prune_and_map.dir/prune_and_map.cpp.o"
  "CMakeFiles/prune_and_map.dir/prune_and_map.cpp.o.d"
  "prune_and_map"
  "prune_and_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prune_and_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
