file(REMOVE_RECURSE
  "libtinyadc_fault.a"
)
