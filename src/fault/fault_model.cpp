#include "fault/fault_model.hpp"

#include <cmath>

#include "tensor/check.hpp"

namespace tinyadc::fault {

namespace {

/// Applies stuck-at faults to one polarity plane's slice vector.
void fault_slices(std::vector<int>& slices, bool used, int max_level,
                  const FaultSpec& spec, Rng& rng, FaultStats& stats) {
  for (auto& level : slices) {
    ++stats.cells;
    if (!rng.bernoulli(spec.rate)) continue;
    const bool is_sa0 = rng.bernoulli(spec.sa0_fraction);
    if (is_sa0) {
      ++stats.sa0;
      level = 0;  // stuck at G_off — no-op if the cell was unused
    } else {
      ++stats.sa1;
      level = max_level;  // stuck at G_on regardless of use
    }
  }
  (void)used;
}

}  // namespace

FaultStats inject_faults(xbar::MappedLayer& layer, const FaultSpec& spec,
                         Rng& rng) {
  TINYADC_CHECK(spec.rate >= 0.0 && spec.rate <= 1.0, "rate must be in [0,1]");
  TINYADC_CHECK(spec.sa0_fraction >= 0.0 && spec.sa0_fraction <= 1.0,
                "sa0_fraction must be in [0,1]");
  FaultStats stats;
  const int slices = layer.config.slices();
  const int max_level = (1 << layer.config.cell_bits) - 1;
  for (auto& block : layer.blocks) {
    for (std::int64_t r = 0; r < block.rows; ++r) {
      for (std::int64_t c = 0; c < block.cols; ++c) {
        const std::int32_t q = block.at(r, c);
        auto pos = xbar::slice_magnitude(q > 0 ? q : 0,
                                         layer.config.cell_bits, slices);
        auto neg = xbar::slice_magnitude(q < 0 ? -q : 0,
                                         layer.config.cell_bits, slices);
        fault_slices(pos, q > 0, max_level, spec, rng, stats);
        fault_slices(neg, q < 0, max_level, spec, rng, stats);
        const std::int32_t new_q =
            xbar::unslice_magnitude(pos, layer.config.cell_bits) -
            xbar::unslice_magnitude(neg, layer.config.cell_bits);
        if (new_q != q) {
          block.q.mut()[static_cast<std::size_t>(r * block.cols + c)] = new_q;
          ++stats.weights_changed;
        }
      }
    }
    // Refresh the column census (faults can activate/deactivate rows).
    block.max_col_nonzeros = 0;
    for (std::int64_t c = 0; c < block.cols; ++c) {
      std::int64_t nz = 0;
      for (std::int64_t r = 0; r < block.rows; ++r)
        nz += (block.at(r, c) != 0);
      block.max_col_nonzeros = std::max(block.max_col_nonzeros, nz);
    }
  }
  return stats;
}

FaultStats inject_faults(xbar::MappedNetwork& net, const FaultSpec& spec) {
  Rng rng(spec.seed);
  FaultStats total;
  for (auto& layer : net.layers) {
    const FaultStats s = inject_faults(layer, spec, rng);
    total.cells += s.cells;
    total.sa0 += s.sa0;
    total.sa1 += s.sa1;
    total.weights_changed += s.weights_changed;
  }
  return total;
}

}  // namespace tinyadc::fault
