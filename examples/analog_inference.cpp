// Scenario: run a trained, CP-pruned model entirely on the simulated
// mixed-signal accelerator — every convolution and FC layer goes through
// activation quantization, DAC bit-streaming, analog column sums, Eq. 1-
// sized ADCs and shift-and-add — then compare chip accuracy against the
// float model and count the ADC work each layer performed.
//
// Run: ./build/examples/analog_inference
#include <cstdio>

#include "core/pruner.hpp"
#include "data/synthetic.hpp"
#include "msim/analog_network.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"

int main() {
  using namespace tinyadc;

  data::SyntheticSpec dspec = data::cifar10_like();
  dspec.image_size = 8;
  dspec.train_per_class = 24;
  dspec.test_per_class = 6;
  const auto data = data::make_synthetic(dspec);

  nn::ModelConfig mcfg;
  mcfg.num_classes = dspec.num_classes;
  mcfg.image_size = dspec.image_size;
  mcfg.width_mult = 0.0625F;
  auto model = nn::resnet18(mcfg);

  // Train + 4x CP-prune.
  core::PipelineConfig pcfg;
  pcfg.xbar = {16, 16};
  pcfg.pretrain.epochs = 10;
  pcfg.pretrain.batch_size = 32;
  pcfg.pretrain.sgd.lr = 0.05F;
  pcfg.pretrain.sgd.total_epochs = 10;
  pcfg.admm.epochs = 5;
  pcfg.admm.batch_size = 32;
  pcfg.admm.sgd.lr = 0.02F;
  pcfg.retrain.epochs = 5;
  pcfg.retrain.batch_size = 32;
  pcfg.retrain.sgd.lr = 0.01F;
  auto specs = core::uniform_cp_specs(*model, 4, pcfg.xbar);
  const auto result =
      core::run_pipeline(*model, data.train, data.test, specs, pcfg);

  // Map and boot the simulated chip — with the paper's 10 % conductance
  // process variation.
  xbar::MappingConfig map_cfg;
  map_cfg.dims = pcfg.xbar;
  const auto net = xbar::map_model(*model, map_cfg, specs);
  msim::MsimConfig sim_cfg;
  sim_cfg.variation_sigma = 0.10;
  msim::AnalogNetwork chip(*model, net, sim_cfg);
  chip.calibrate(data.train);
  const double chip_acc = chip.evaluate(data.test);

  std::printf("float model accuracy          : %.1f%%\n",
              100.0 * result.final_accuracy);
  std::printf("analog chip accuracy (10%% var): %.1f%%\n", 100.0 * chip_acc);

  std::printf("\nper-layer ADC work for the test set:\n");
  std::printf("%-22s %10s %16s %12s\n", "layer", "ADC bits", "conversions",
              "clips");
  const auto views = model->prunable_views();
  for (std::size_t i = 0; i < chip.sims().size(); ++i) {
    const auto& sim = *chip.sims()[i];
    std::printf("%-22s %10d %16lld %12lld\n", views[i].layer_name.c_str(),
                sim.adc_bits(),
                static_cast<long long>(sim.stats().adc_conversions),
                static_cast<long long>(sim.stats().adc_clip_events));
  }
  return 0;
}
