// The required-ADC-resolution law (Eq. 1 of the paper).
#pragma once

#include <cstdint>

namespace tinyadc::xbar {

/// Paper Eq. 1: bits required so the ADC can digitize any column sum without
/// information loss, given `v` input bits per cycle, `w` weight bits per
/// cell, and `r` activated rows:
///     ADC_bits = v + w + ⌈log2 r⌉          if v > 1 and w > 1
///     ADC_bits = v + w + ⌈log2 r⌉ − 1      otherwise.
/// `r == 0` (a fully-pruned column) needs 0 bits; `r == 1` contributes
/// ⌈log2 1⌉ = 0. This is the design rule TinyADC uses to size ADCs.
int required_adc_bits(int input_bits, int cell_bits, std::int64_t active_rows);

/// Information-theoretic exact requirement: ⌈log2(r·(2ᵛ−1)·(2ʷ−1) + 1)⌉ —
/// the smallest resolution that can represent every possible column sum.
/// Always ≤ required_adc_bits (the paper's formula is a safe upper bound);
/// tests assert this dominance property.
int exact_adc_bits(int input_bits, int cell_bits, std::int64_t active_rows);

/// ⌈log2 n⌉ for n ≥ 1.
int ceil_log2(std::int64_t n);

}  // namespace tinyadc::xbar
