// Training loop with hook points for the ADMM pruning pipeline.
#pragma once

#include <functional>

#include "data/augment.hpp"
#include "data/dataset.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"

namespace tinyadc::nn {

/// Optimizer backend selection.
enum class OptimizerKind {
  kSgd,   ///< SGD + momentum (the paper's setting; default)
  kAdam,  ///< Adam with decoupled weight decay
};

/// Training-run configuration.
struct TrainConfig {
  int epochs = 20;
  std::size_t batch_size = 32;
  OptimizerKind optimizer = OptimizerKind::kSgd;
  SgdConfig sgd{};
  AdamConfig adam{};  ///< used when optimizer == kAdam
  std::uint64_t seed = 123;
  bool verbose = false;  ///< print per-epoch stats to stdout
  /// Training-batch augmentation (inactive by default; evaluation batches
  /// are never augmented).
  data::AugmentConfig augment{/*max_shift=*/0, /*hflip=*/false,
                              /*noise=*/0.0F};
};

/// Aggregated statistics for one epoch.
struct EpochStats {
  double loss = 0.0;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
};

/// Minibatch SGD driver.
///
/// Hook points (all optional) let the pruning framework interleave with
/// training without subclassing:
///  * grad hook  — runs after backward, before the optimizer step; ADMM adds
///    its proximal term ρ(W − Z + U) to the weight gradients here.
///  * step hook  — runs after the optimizer step; masked retraining re-zeros
///    pruned weights here.
///  * epoch hook — runs at each epoch end; ADMM updates Z and U here.
class Trainer {
 public:
  using Hook = std::function<void()>;
  using EpochHook = std::function<void(int epoch)>;

  Trainer(Model& model, TrainConfig config);

  /// Installs the post-backward hook.
  void set_grad_hook(Hook hook) { grad_hook_ = std::move(hook); }
  /// Installs the post-optimizer-step hook.
  void set_step_hook(Hook hook) { step_hook_ = std::move(hook); }
  /// Installs the epoch-end hook.
  void set_epoch_hook(EpochHook hook) { epoch_hook_ = std::move(hook); }

  /// Runs exactly one optimizer step on `batch` (zero grads, forward, loss,
  /// backward, grad hook, optimizer step, step hook) and returns the batch
  /// loss result. train_epoch is a loop over this; exposed so the train-step
  /// benchmark and the determinism tests can drive single steps.
  LossResult train_step(const data::Batch& batch, int epoch);

  /// Runs one epoch over `train`; returns loss and train accuracy.
  EpochStats train_epoch(const data::Dataset& train, int epoch);

  /// Top-1 accuracy on `test` (inference mode).
  double evaluate(const data::Dataset& test);

  /// Top-k accuracy on `test` (the paper reports top-5 on ImageNet).
  double evaluate_topk(const data::Dataset& test, int k);

  /// Full fit: `config.epochs` epochs, evaluating after each; returns the
  /// per-epoch stats trace.
  std::vector<EpochStats> fit(const data::Dataset& train,
                              const data::Dataset& test);

  /// The optimizer (exposed so callers can reset state between phases).
  Optimizer& optimizer() { return *optimizer_; }
  /// The trained model.
  Model& model() { return model_; }
  const TrainConfig& config() const { return config_; }

 private:
  Model& model_;
  TrainConfig config_;
  std::unique_ptr<Optimizer> optimizer_;
  Rng rng_;
  Hook grad_hook_;
  Hook step_hook_;
  EpochHook epoch_hook_;
};

}  // namespace tinyadc::nn
