// NVCACTI-style area/power model for ReRAM tiles and whole accelerators.
//
// The paper's absolute numbers come from a proprietary in-house tool
// (NVCACTI, 32 nm); every reported result, however, is *normalized to the
// non-pruned design*, so what matters is an internally consistent component
// model with realistic proportions. The constants below are calibrated so
// that an ISAAC-style tile with 8-bit ADCs spends ≈51 % of its area and
// ≈31 % of its power in the ADCs — the exact proportions the paper quotes
// for ISAAC [5] — with the remainder spread over crossbar arrays (4F² cells
// + drivers/decoders), DACs, sample&hold, shift&add, in/out registers,
// eDRAM buffers and the on-chip interconnect. Tests pin these fractions
// (property P6 plus the 51 %/31 % calibration band).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/adc_cost.hpp"
#include "xbar/mapping.hpp"

namespace tinyadc::hw {

/// Per-component cost constants (32 nm, mm² / W). "Per array" components
/// replicate with the 128×128 crossbar count; "per tile" components are
/// shared by `arrays_per_tile` arrays.
struct CostConstants {
  AdcCostModel adc{};
  double adc_rate_hz = 1.28e9;  ///< ISAAC's ADC sample rate

  std::int64_t arrays_per_tile = 8;  ///< crossbar arrays sharing tile logic
  // --- per crossbar array ---
  double array_area_mm2 = 2.0e-4;  ///< 128×128 cells @4F² + driver/decoder
  double array_power_w = 1.2e-3;   ///< wordline/bitline read energy rate
  double dac_area_mm2 = 2.0e-4;    ///< 128 × 1-bit input DACs
  double dac_power_w = 1.0e-3;
  double sh_area_mm2 = 1.0e-4;     ///< 128 sample&hold capacitors
  double sh_power_w = 0.1e-3;
  double shiftadd_area_mm2 = 7.0e-4;  ///< shift&add accumulator
  double shiftadd_power_w = 0.4e-3;
  double reg_area_mm2 = 9.0e-4;    ///< input/output registers
  double reg_power_w = 0.5e-3;
  // --- per tile (shared) ---
  double buffer_area_mm2 = 1.5e-2;  ///< eDRAM activation buffer
  double buffer_power_w = 20.0e-3;
  double router_area_mm2 = 1.0e-2;  ///< HTree/router share
  double router_power_w = 25.0e-3;
};

/// Cost of one tile whose ADCs have `adc_bits` resolution.
///
/// Digital datapath components that carry ADC outputs (sample&hold,
/// shift&add, registers, buffers) shrink linearly with ADC resolution —
/// the paper's "smaller and faster buffers, sample&hold and shift-and-add"
/// effect — floored at 4 bits' worth of width.
struct TileCost {
  double area_mm2 = 0.0;
  double power_w = 0.0;
  double adc_area_mm2 = 0.0;  ///< ADC share of area
  double adc_power_w = 0.0;   ///< ADC share of power
};

/// Computes one tile's cost under `constants` with the given ADC bits.
TileCost tile_cost(const CostConstants& constants, int adc_bits);

/// Per-layer accelerator accounting.
struct LayerHwReport {
  std::string name;
  std::int64_t arrays = 0;  ///< active physical crossbar arrays
  std::int64_t tiles = 0;   ///< ⌈arrays / arrays_per_tile⌉
  int adc_bits = 0;         ///< Eq. 1 resolution for this layer
  double area_mm2 = 0.0;
  double power_w = 0.0;
};

/// Whole-accelerator cost report.
struct AcceleratorReport {
  std::vector<LayerHwReport> layers;
  double area_mm2 = 0.0;
  double power_w = 0.0;
  std::int64_t tiles = 0;
  std::int64_t arrays = 0;

  /// Ratio of this design's area to `baseline`'s.
  double area_vs(const AcceleratorReport& baseline) const;
  /// Ratio of this design's power to `baseline`'s.
  double power_vs(const AcceleratorReport& baseline) const;
};

/// Builds the per-design accelerator for a mapped network: each layer gets
/// enough tiles for its active arrays, with ADCs sized by that layer's
/// Eq. 1 requirement. `full_first_layer_adc` keeps the first layer at the
/// dense 8-bit resolution (the paper's protocol — its pruning rate excludes
/// the first conv).
AcceleratorReport build_accelerator(const xbar::MappedNetwork& net,
                                    const CostConstants& constants,
                                    bool full_first_layer_adc = true);

/// Renders the report as an aligned text table.
std::string to_table(const AcceleratorReport& report);

}  // namespace tinyadc::hw
