// Read-only memory-mapped file handle — the backing store of the
// zero-copy artifact load path (DESIGN.md §14).
//
// A MappedFile maps the whole artifact once (PROT_READ, MAP_PRIVATE) and
// is shared (shared_ptr) into every ArrayRef view handed out by the
// section readers, so the mapping outlives the Deployment's last borrowed
// span no matter how ownership is shuffled. Page residency is advisory:
// advise_willneed() issues madvise(MADV_WILLNEED) for a byte range so a
// background streamer can overlap page-in with plan validation and the
// first batches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace tinyadc::artifact {

class MappedFile {
 public:
  /// Maps `path` read-only; throws CheckError on open/stat/mmap failure
  /// (including empty files, which cannot be mapped).
  static std::shared_ptr<MappedFile> open(const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const char* data() const { return static_cast<const char*>(base_); }
  std::size_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// Advises the kernel to page in [offset, offset+length); best-effort,
  /// clamped to the mapping, never throws.
  void advise_willneed(std::uint64_t offset, std::uint64_t length) const;

 private:
  MappedFile() = default;

  void* base_ = nullptr;
  std::size_t size_ = 0;
  std::string path_;
};

}  // namespace tinyadc::artifact
