// Versioned, sectioned deployment-artifact container (the `.tadc` format).
//
// Layout (little-endian, every offset and every section start 8-byte
// aligned):
//
//   0x00  magic  "TADCDEP\0"                     (8 bytes)
//   0x08  u32 format version | u32 section count (8 bytes)
//   0x10  section table: count × { char tag[8] | u64 offset | u64 length }
//   ...   section payloads, each starting at an 8-byte-aligned offset,
//         zero-padded up to the next section
//
// The flat table with aligned payloads is mmap-friendly: a loader can map
// the file once and hand out zero-copy spans per section, and bulk fields
// (weight tensors, packed execution plans) are stored as raw little-endian
// arrays that deserialize with a single memcpy. The portable loader here
// reads the file into one buffer and bounds-checks every access through
// SectionReader, so truncated or malformed artifacts fail with an explicit
// CheckError instead of bad_alloc or silent garbage.
//
// Versioning/compat policy: the container version only changes when the
// header/table layout changes. Section payloads are versioned by their
// producer (each domain section starts with its own u32 version), so adding
// a new section or bumping one section's layout never invalidates the rest.
// Readers reject unknown container versions and unknown *required* section
// versions; unknown extra sections are ignored.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "tensor/tensor.hpp"

namespace tinyadc::artifact {

/// Container-level format version (header + section table layout).
constexpr std::uint32_t kFormatVersion = 1;

/// Magic at offset 0 of every artifact file.
constexpr char kMagic[8] = {'T', 'A', 'D', 'C', 'D', 'E', 'P', '\0'};

/// Upper bound on sections per artifact (sanity cap for the reader).
constexpr std::uint32_t kMaxSections = 256;

/// Accumulates one section's payload in memory with typed append helpers.
/// All multi-byte fields are written in the host's (little-endian) byte
/// order; bulk arrays are written raw so loads are a single memcpy.
class SectionWriter {
 public:
  /// Appends one trivially-copyable value.
  template <typename T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>, "pod() needs a POD type");
    const auto* p = reinterpret_cast<const char*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  /// Appends a string as u64 length + raw bytes.
  void str(const std::string& s);

  /// Appends a vector of trivially-copyable elements as u64 count + raw
  /// element bytes.
  template <typename T>
  void vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>, "vec() needs POD elements");
    pod(static_cast<std::uint64_t>(v.size()));
    const auto* p = reinterpret_cast<const char*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size() * sizeof(T));
  }

  /// Appends a vector<bool> as u64 count + one byte per element.
  void vec_bool(const std::vector<bool>& v);

  /// Appends a tensor as u32 ndim + i64 dims + raw f32 data.
  void tensor(const Tensor& t);

  /// The accumulated payload.
  const std::vector<char>& bytes() const { return buf_; }

 private:
  std::vector<char> buf_;
};

/// Bounds-checked cursor over one section's payload. Every accessor
/// validates the remaining byte budget *before* allocating, so absurd
/// counts from corrupt files raise CheckError instead of bad_alloc.
class SectionReader {
 public:
  /// Views `size` bytes at `data` (not owned); `name` labels errors.
  SectionReader(const char* data, std::size_t size, std::string name);

  /// Reads one trivially-copyable value.
  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>, "pod() needs a POD type");
    need(sizeof(T), "value");
    T v{};
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  /// Reads a string written by SectionWriter::str.
  std::string str();

  /// Reads a vector written by SectionWriter::vec. The element count is
  /// validated against the bytes actually present.
  template <typename T>
  std::vector<T> vec() {
    static_assert(std::is_trivially_copyable_v<T>, "vec() needs POD elements");
    const std::size_t count = checked_count(sizeof(T), "array");
    std::vector<T> v(count);
    std::memcpy(v.data(), data_ + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
    return v;
  }

  /// Reads a vector<bool> written by SectionWriter::vec_bool.
  std::vector<bool> vec_bool();

  /// Reads a tensor written by SectionWriter::tensor, rejecting absurd
  /// ranks/extents and dimension products before allocating.
  Tensor tensor();

  /// Bytes not yet consumed.
  std::size_t remaining() const { return size_ - pos_; }

  /// Section label (for error messages in domain deserializers).
  const std::string& name() const { return name_; }

 private:
  /// Validates that `n` more bytes exist (`what` labels the error).
  void need(std::size_t n, const char* what) const;
  /// Reads a u64 count and validates count·elem_size against the budget.
  std::size_t checked_count(std::size_t elem_size, const char* what);

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::string name_;
};

/// Assembles an artifact: sections are registered in order, then finish()
/// lays them out with 8-byte-aligned offsets and writes the file.
class ArtifactWriter {
 public:
  /// Opens a writer targeting `path` (written on finish()).
  explicit ArtifactWriter(std::string path);

  /// Starts (or resumes) the section tagged `tag` (1–8 bytes, unique) and
  /// returns its payload writer.
  SectionWriter& section(const std::string& tag);

  /// Writes header, table and payloads to the target path; throws
  /// CheckError on I/O failure. Must be called exactly once.
  void finish();

 private:
  std::string path_;
  std::vector<std::pair<std::string, SectionWriter>> sections_;
  bool finished_ = false;
};

/// A loaded artifact: the file bytes plus the validated section table.
class ArtifactFile {
 public:
  /// Reads and validates `path` (magic, version, table bounds/alignment).
  explicit ArtifactFile(const std::string& path);

  /// True if a section tagged `tag` exists.
  bool has(const std::string& tag) const;

  /// Bounds-checked reader over the section tagged `tag`; throws
  /// CheckError when the section is missing.
  SectionReader section(const std::string& tag) const;

  /// Container version of the loaded file.
  std::uint32_t version() const { return version_; }

  /// Section tags in file order.
  std::vector<std::string> tags() const;

 private:
  struct Entry {
    std::string tag;
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
  };

  std::vector<char> data_;
  std::vector<Entry> entries_;
  std::uint32_t version_ = 0;
  std::string path_;
};

}  // namespace tinyadc::artifact
