file(REMOVE_RECURSE
  "CMakeFiles/tinyadc_fault.dir/evaluate.cpp.o"
  "CMakeFiles/tinyadc_fault.dir/evaluate.cpp.o.d"
  "CMakeFiles/tinyadc_fault.dir/fault_model.cpp.o"
  "CMakeFiles/tinyadc_fault.dir/fault_model.cpp.o.d"
  "CMakeFiles/tinyadc_fault.dir/march.cpp.o"
  "CMakeFiles/tinyadc_fault.dir/march.cpp.o.d"
  "CMakeFiles/tinyadc_fault.dir/remap.cpp.o"
  "CMakeFiles/tinyadc_fault.dir/remap.cpp.o.d"
  "libtinyadc_fault.a"
  "libtinyadc_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinyadc_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
