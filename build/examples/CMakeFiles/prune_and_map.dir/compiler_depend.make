# Empty compiler generated dependencies file for prune_and_map.
# This may be replaced when dependencies are built.
