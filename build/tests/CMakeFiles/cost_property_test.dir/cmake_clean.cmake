file(REMOVE_RECURSE
  "CMakeFiles/cost_property_test.dir/cost_property_test.cpp.o"
  "CMakeFiles/cost_property_test.dir/cost_property_test.cpp.o.d"
  "cost_property_test"
  "cost_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
