#include "artifact/artifact.hpp"

#include <chrono>
#include <cmath>
#include <cstring>

#include <unistd.h>

#include "artifact/format.hpp"
#include "tensor/check.hpp"

namespace tinyadc::artifact {

namespace {

constexpr std::uint32_t kMetaSectionVersion = 1;
constexpr std::uint32_t kPruneSectionVersion = 1;
constexpr std::uint64_t kMaxLayers = 1ULL << 16;

const char kTagMeta[] = "META";
const char kTagWeights[] = "WEIGHTS";
const char kTagPrune[] = "PRUNE";
const char kTagMapping[] = "MAPPING";
const char kTagPlans[] = "PLANS";
const char kTagCalib[] = "CALIB";

void write_meta(const ArtifactMeta& meta, SectionWriter& w) {
  w.pod(kMetaSectionVersion);
  w.str(meta.arch);
  w.str(meta.model_name);
  w.pod(meta.model_config.num_classes);
  w.pod(meta.model_config.in_channels);
  w.pod(meta.model_config.image_size);
  w.pod(meta.model_config.width_mult);
  w.pod(static_cast<std::uint8_t>(meta.model_config.imagenet_stem ? 1 : 0));
  w.pod(meta.model_config.seed);
}

ArtifactMeta read_meta(SectionReader& r) {
  const auto version = r.pod<std::uint32_t>();
  TINYADC_CHECK(version == kMetaSectionVersion,
                "unsupported META section version " << version);
  ArtifactMeta meta;
  meta.arch = r.str();
  meta.model_name = r.str();
  meta.model_config.num_classes = r.pod<std::int64_t>();
  meta.model_config.in_channels = r.pod<std::int64_t>();
  meta.model_config.image_size = r.pod<std::int64_t>();
  meta.model_config.width_mult = r.pod<float>();
  meta.model_config.imagenet_stem = r.pod<std::uint8_t>() != 0;
  meta.model_config.seed = r.pod<std::uint64_t>();
  TINYADC_CHECK(!meta.arch.empty(), "META section has an empty architecture");
  TINYADC_CHECK(meta.model_config.num_classes > 0 &&
                    meta.model_config.num_classes <= (1 << 20),
                "META section has " << meta.model_config.num_classes
                                    << " classes");
  TINYADC_CHECK(meta.model_config.in_channels > 0 &&
                    meta.model_config.in_channels <= (1 << 16),
                "META section has " << meta.model_config.in_channels
                                    << " input channels");
  TINYADC_CHECK(meta.model_config.image_size > 0 &&
                    meta.model_config.image_size <= (1 << 16),
                "META section has image size "
                    << meta.model_config.image_size);
  TINYADC_CHECK(std::isfinite(meta.model_config.width_mult) &&
                    meta.model_config.width_mult > 0.0F,
                "META section has a non-positive width multiplier");
  TINYADC_CHECK(r.remaining() == 0, "trailing bytes after the META section");
  return meta;
}

void write_prune(const std::vector<core::LayerPruneSpec>& specs,
                 const std::vector<core::StructuralSelection>& selections,
                 SectionWriter& w) {
  w.pod(kPruneSectionVersion);
  w.pod(static_cast<std::uint64_t>(specs.size()));
  for (const auto& spec : specs) core::serialize(spec, w);
  w.pod(static_cast<std::uint64_t>(selections.size()));
  for (const auto& sel : selections) core::serialize(sel, w);
}

void read_prune(SectionReader& r, std::vector<core::LayerPruneSpec>& specs,
                std::vector<core::StructuralSelection>& selections) {
  const auto version = r.pod<std::uint32_t>();
  TINYADC_CHECK(version == kPruneSectionVersion,
                "unsupported PRUNE section version " << version);
  const auto nspecs = r.pod<std::uint64_t>();
  TINYADC_CHECK(nspecs <= kMaxLayers,
                "PRUNE section claims " << nspecs << " specs");
  specs.reserve(static_cast<std::size_t>(nspecs));
  for (std::uint64_t i = 0; i < nspecs; ++i)
    specs.push_back(core::deserialize_prune_spec(r));
  const auto nsel = r.pod<std::uint64_t>();
  TINYADC_CHECK(nsel <= kMaxLayers,
                "PRUNE section claims " << nsel << " selections");
  selections.reserve(static_cast<std::size_t>(nsel));
  for (std::uint64_t i = 0; i < nsel; ++i)
    selections.push_back(core::deserialize_selection(r));
  TINYADC_CHECK(r.remaining() == 0, "trailing bytes after the PRUNE section");
}

/// Shared body of both save overloads — one code path, so a freshly built
/// deployment and a reloaded one serialize to identical bytes.
void write_artifact(const std::string& path, const ArtifactMeta& meta,
                    const std::vector<core::LayerPruneSpec>& specs,
                    const std::vector<core::StructuralSelection>& selections,
                    nn::Model& model, const xbar::MappedNetwork& mapping,
                    const msim::AnalogNetwork& analog) {
  TINYADC_CHECK(analog.calibrated(),
                "save_artifact requires a calibrated analog network");
  ArtifactWriter writer(path);
  write_meta(meta, writer.section(kTagMeta));
  model.serialize(writer.section(kTagWeights));
  if (!specs.empty() || !selections.empty())
    write_prune(specs, selections, writer.section(kTagPrune));
  xbar::serialize(mapping, writer.section(kTagMapping));
  analog.serialize_plans(writer.section(kTagPlans));
  analog.serialize_calibration(writer.section(kTagCalib));
  writer.finish();
}

}  // namespace

void save_artifact(const std::string& path, const ArtifactInputs& inputs) {
  write_artifact(path, inputs.meta, inputs.specs, inputs.selections,
                 inputs.model, inputs.mapping, inputs.analog);
}

void save_artifact(const std::string& path, const Deployment& deployment) {
  TINYADC_CHECK(deployment.model && deployment.mapping && deployment.analog,
                "save_artifact on an incomplete deployment");
  write_artifact(path, deployment.meta, deployment.specs,
                 deployment.selections, *deployment.model, *deployment.mapping,
                 *deployment.analog);
}

namespace {

/// Section restoration shared by the copied and mapped load paths. On a
/// mapped ArtifactFile the MAPPING code grids and PLANS streams come back
/// as zero-copy spans (the SectionReaders carry the mapping's keeper); on a
/// copied file the identical code restores owned vectors.
Deployment load_from(const ArtifactFile& file, const std::string& path) {
  for (const char* tag : {kTagMeta, kTagWeights, kTagMapping, kTagPlans,
                          kTagCalib})
    TINYADC_CHECK(file.has(tag),
                  "artifact " << path << " is missing the required " << tag
                              << " section");

  Deployment dep;
  {
    auto r = file.section(kTagMeta);
    dep.meta = read_meta(r);
  }
  // Hot sections first: the mapped load's async streamer pages the cold
  // sections (WEIGHTS, PRUNE, CALIB) in behind this validation pass, so by
  // the time deserialize_state runs its pages are (mostly) resident. The
  // order is irrelevant to the copied path — sections are independent.
  {
    auto r = file.section(kTagMapping);
    dep.mapping = std::make_unique<xbar::MappedNetwork>(
        xbar::deserialize_mapped_network(r));
    TINYADC_CHECK(r.remaining() == 0,
                  "trailing bytes after the MAPPING section");
  }
  dep.model = nn::build_model(dep.meta.arch, dep.meta.model_config);
  TINYADC_CHECK(dep.model->name() == dep.meta.model_name,
                "META names model '" << dep.meta.model_name
                                     << "' but architecture '" << dep.meta.arch
                                     << "' builds '" << dep.model->name()
                                     << "'");
  {
    auto r = file.section(kTagWeights);
    dep.model->deserialize_state(r);
    TINYADC_CHECK(r.remaining() == 0,
                  "trailing bytes after the WEIGHTS section");
  }
  if (file.has(kTagPrune)) {
    auto r = file.section(kTagPrune);
    read_prune(r, dep.specs, dep.selections);
  }
  auto plans = file.section(kTagPlans);
  auto calib = file.section(kTagCalib);
  dep.analog = std::make_unique<msim::AnalogNetwork>(*dep.model, *dep.mapping,
                                                     plans, calib);
  return dep;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// FNV-1a over raw bytes, chained through `h`. Local copy (serve::fnv1a is
/// a layer above this library; the constants are the standard 64-bit ones,
/// so the digests agree with the serving stack's).
std::uint64_t fnv1a_bytes(const void* data, std::size_t n, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

/// Fills Deployment::info from the validated file. Digests the hot
/// sections only — see ArtifactInfo's doc for why the cold sections are
/// deliberately excluded.
ArtifactInfo make_info(const ArtifactFile& file, const std::string& path) {
  ArtifactInfo info;
  info.path = path;
  info.container_version = file.version();
  info.file_bytes = file.file_size();
  std::uint64_t h = 1469598103934665603ULL;
  for (const char* tag : {kTagMeta, kTagMapping, kTagPlans}) {
    const auto [data, size] = file.raw(tag);
    h = fnv1a_bytes(tag, std::strlen(tag), h);
    h = fnv1a_bytes(data, size, h);
  }
  info.content_digest = h;
  return info;
}

}  // namespace

SectionStreamer::SectionStreamer(
    std::shared_ptr<MappedFile> map,
    std::vector<std::pair<std::uint64_t, std::uint64_t>> extents)
    : map_(std::move(map)), extents_(std::move(extents)) {
  thread_ = std::thread([this] {
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& [off, len] : extents_)
      map_->advise_willneed(off, len);
    // MADV_WILLNEED is only a hint; touching one byte per page forces the
    // pages resident. Reads only — the mapping is PROT_READ anyway — and
    // the XOR sink keeps the loop from being optimized away.
    const auto page = static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
    const char* base = map_->data();
    const std::uint64_t file_size = map_->size();
    unsigned char sink = 0;
    for (const auto& [off, len] : extents_) {
      const std::uint64_t end = std::min(off + len, file_size);
      for (std::uint64_t p = off; p < end; p += page)
        sink ^= static_cast<unsigned char>(base[p]);
      if (end > off) sink ^= static_cast<unsigned char>(base[end - 1]);
    }
    volatile unsigned char guard = sink;
    (void)guard;
    elapsed_ms_ = ms_since(t0);
  });
}

SectionStreamer::~SectionStreamer() {
  if (thread_.joinable()) thread_.join();
}

double SectionStreamer::wait_ms() {
  if (thread_.joinable()) thread_.join();
  return elapsed_ms_;
}

void Deployment::finish_streaming() {
  if (streamer != nullptr) {
    load_phases.stream_ms = streamer->wait_ms();
    streamer.reset();
  }
}

namespace {
const char* const kColdTags[] = {kTagWeights, kTagPrune, kTagCalib};
}  // namespace

Deployment load_artifact(const std::string& path) {
  const auto t0 = std::chrono::steady_clock::now();
  ArtifactFile file(path);
  const double map_ms = ms_since(t0);
  const auto t1 = std::chrono::steady_clock::now();
  Deployment dep = load_from(file, path);
  dep.info = make_info(file, path);
  dep.load_phases.map_ms = map_ms;
  dep.load_phases.validate_ms = ms_since(t1);
  return dep;
}

Deployment load_artifact_mapped(const std::string& path, bool async_stream) {
  const auto t0 = std::chrono::steady_clock::now();
  auto map = MappedFile::open(path);
  ArtifactFile file(map);
  const double map_ms = ms_since(t0);
  const auto t1 = std::chrono::steady_clock::now();

  // Kick the cold sections' page-in off before the hot-section validation
  // pass, so the two overlap (the staged cold-start's io stage).
  std::shared_ptr<SectionStreamer> streamer;
  if (async_stream) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> extents;
    for (const char* tag : kColdTags)
      if (file.has(tag)) extents.push_back(file.extent(tag));
    streamer =
        std::make_shared<SectionStreamer>(map, std::move(extents));
  }

  Deployment dep = load_from(file, path);
  dep.info = make_info(file, path);
  dep.mapped = std::move(map);
  dep.streamer = std::move(streamer);
  dep.load_phases.map_ms = map_ms;
  dep.load_phases.validate_ms = ms_since(t1);
  return dep;
}

}  // namespace tinyadc::artifact
