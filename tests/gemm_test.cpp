// GEMM correctness: fixed cases, transpose variants, alpha/beta contract,
// and a parameterized property sweep against a naive triple loop.
#include <gtest/gtest.h>

#include <tuple>

#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace tinyadc {
namespace {

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk)
        acc += static_cast<double>(a.at(i, kk)) * b.at(kk, j);
      c.at(i, j) = static_cast<float>(acc);
    }
  return c;
}

Tensor transpose(const Tensor& a) {
  Tensor t({a.dim(1), a.dim(0)});
  for (std::int64_t i = 0; i < a.dim(0); ++i)
    for (std::int64_t j = 0; j < a.dim(1); ++j) t.at(j, i) = a.at(i, j);
  return t;
}

TEST(Gemm, Identity) {
  Tensor eye = Tensor::zeros({3, 3});
  for (int i = 0; i < 3; ++i) eye.at(i, i) = 1.0F;
  Rng rng(1);
  Tensor a = Tensor::randn({3, 3}, rng);
  EXPECT_TRUE(allclose(matmul(eye, a), a));
  EXPECT_TRUE(allclose(matmul(a, eye), a));
}

TEST(Gemm, KnownSmallProduct) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0F);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0F);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0F);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0F);
}

TEST(Gemm, BetaAccumulates) {
  Tensor a({2, 2}, {1, 0, 0, 1});
  Tensor b({2, 2}, {1, 2, 3, 4});
  Tensor c = Tensor::full({2, 2}, 10.0F);
  gemm(a, false, b, false, c, 1.0F, 1.0F);
  EXPECT_FLOAT_EQ(c.at(0, 0), 11.0F);
  EXPECT_FLOAT_EQ(c.at(1, 1), 14.0F);
}

TEST(Gemm, AlphaScales) {
  Tensor a({1, 1}, {3.0F});
  Tensor b({1, 1}, {4.0F});
  Tensor c({1, 1});
  gemm(a, false, b, false, c, 0.5F, 0.0F);
  EXPECT_FLOAT_EQ(c.at(0, 0), 6.0F);
}

TEST(Gemm, BetaWithTransposedOperands) {
  // beta != 0 combined with transposed A and B: C = 0.5·AᵀᵀBᵀᵀ… i.e. the
  // full C = alpha·op(A)·op(B) + beta·C contract through the materialized
  // operand path and the microkernel edge cases at once.
  Rng rng(7);
  Tensor a_plain = Tensor::randn({5, 7}, rng);
  Tensor b_plain = Tensor::randn({7, 6}, rng);
  Tensor c0 = Tensor::randn({5, 6}, rng);
  const float alpha = 0.5F, beta = 2.0F;
  Tensor expected = naive_matmul(a_plain, b_plain);
  for (std::int64_t i = 0; i < 5; ++i)
    for (std::int64_t j = 0; j < 6; ++j)
      expected.at(i, j) = alpha * expected.at(i, j) + beta * c0.at(i, j);
  for (const bool ta : {false, true}) {
    for (const bool tb : {false, true}) {
      const Tensor a = ta ? transpose(a_plain) : a_plain;
      const Tensor b = tb ? transpose(b_plain) : b_plain;
      Tensor c = c0.clone();
      gemm(a, ta, b, tb, c, alpha, beta);
      EXPECT_LT(max_abs_diff(c, expected), 1e-4F)
          << "ta=" << ta << " tb=" << tb;
    }
  }
}

TEST(Gemm, BetaOneAccumulatesAcrossTileEdges) {
  // Sizes straddling the 4×32 microkernel tile: rows 4+remainder, columns
  // 32+remainder. Two beta=1 accumulations must equal twice one product.
  Rng rng(8);
  Tensor a = Tensor::randn({6, 33}, rng);
  Tensor b = Tensor::randn({33, 37}, rng);
  const Tensor once = matmul(a, b);
  Tensor twice = Tensor::zeros({6, 37});
  gemm(a, false, b, false, twice, 1.0F, 1.0F);
  gemm(a, false, b, false, twice, 1.0F, 1.0F);
  for (std::int64_t i = 0; i < 6; ++i)
    for (std::int64_t j = 0; j < 37; ++j)
      EXPECT_NEAR(twice.at(i, j), 2.0F * once.at(i, j), 1e-4F);
}

TEST(Gemm, DimensionMismatchThrows) {
  Tensor a({2, 3});
  Tensor b({4, 2});
  Tensor c({2, 2});
  EXPECT_THROW(gemm(a, false, b, false, c), CheckError);
}

TEST(Gemm, OutputShapeMismatchThrows) {
  Tensor a({2, 3});
  Tensor b({3, 4});
  Tensor c({2, 3});
  EXPECT_THROW(gemm(a, false, b, false, c), CheckError);
}

TEST(Matvec, MatchesGemm) {
  Rng rng(3);
  Tensor a = Tensor::randn({5, 7}, rng);
  Tensor x = Tensor::randn({7}, rng);
  Tensor y = matvec(a, x);
  Tensor ym = matmul(a, x.reshape({7, 1}));
  // matvec routes through the blocked GEMM path, so the match is bit-exact.
  for (std::int64_t i = 0; i < 5; ++i)
    EXPECT_FLOAT_EQ(y.at(i), ym.at(i, 0));
}

TEST(Matvec, LargeShapesMatchNaive) {
  Rng rng(9);
  Tensor a = Tensor::randn({67, 129}, rng);
  Tensor x = Tensor::randn({129}, rng);
  const Tensor y = matvec(a, x);
  for (std::int64_t i = 0; i < 67; ++i) {
    double acc = 0.0;
    for (std::int64_t j = 0; j < 129; ++j)
      acc += static_cast<double>(a.at(i, j)) * x.at(j);
    EXPECT_NEAR(y.at(i), static_cast<float>(acc), 1e-3F) << "row " << i;
  }
}

TEST(Matvec, ValidatesShapes) {
  Tensor a({2, 3});
  Tensor x({2});
  EXPECT_THROW(matvec(a, x), CheckError);
}

/// Property sweep: all four transpose combinations over assorted sizes must
/// match the naive reference.
class GemmSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool, bool>> {
};

TEST_P(GemmSweep, MatchesNaiveReference) {
  const auto [m, k, n, ta, tb] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 73 + k * 37 + n * 11 + ta * 2 + tb));
  Tensor a_plain = Tensor::randn({m, k}, rng);
  Tensor b_plain = Tensor::randn({k, n}, rng);
  const Tensor expected = naive_matmul(a_plain, b_plain);
  const Tensor a = ta ? transpose(a_plain) : a_plain;
  const Tensor b = tb ? transpose(b_plain) : b_plain;
  const Tensor got = matmul(a, b, ta, tb);
  EXPECT_LT(max_abs_diff(got, expected), 1e-3F)
      << "m=" << m << " k=" << k << " n=" << n << " ta=" << ta << " tb=" << tb;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GemmSweep,
    ::testing::Combine(::testing::Values(1, 3, 17, 64),
                       ::testing::Values(1, 5, 33),
                       ::testing::Values(1, 4, 29),
                       ::testing::Bool(), ::testing::Bool()));

}  // namespace
}  // namespace tinyadc
