// Unit + property tests for the deterministic RNG.
#include <gtest/gtest.h>

#include <set>

#include "tensor/rng.hpp"

namespace tinyadc {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 16; ++i) seen.insert(r.next_u64());
  EXPECT_GT(seen.size(), 10U);  // state not stuck at zero
}

TEST(Rng, ReseedRestartsStream) {
  Rng r(5);
  const auto first = r.next_u64();
  r.next_u64();
  r.reseed(5);
  EXPECT_EQ(r.next_u64(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(8);
  for (int i = 0; i < 1000; ++i) {
    const float v = r.uniform(-2.0F, 3.0F);
    EXPECT_GE(v, -2.0F);
    EXPECT_LT(v, 3.0F);
  }
}

TEST(Rng, UniformIntCoversRangeWithoutBias) {
  Rng r(9);
  int counts[5] = {};
  for (int i = 0; i < 5000; ++i) ++counts[r.uniform_int(5)];
  for (int c : counts) EXPECT_NEAR(c, 1000, 200);
}

TEST(Rng, UniformIntRejectsZero) {
  Rng r(1);
  EXPECT_THROW(r.uniform_int(0), CheckError);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng r(10);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, NormalMeanStdParameters) {
  Rng r(11);
  double sum = 0.0;
  constexpr int n = 10000;
  for (int i = 0; i < n; ++i) sum += r.normal(5.0F, 0.5F);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng r(12);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng r(13);
  const auto p = r.permutation(100);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100U);
  EXPECT_EQ(*seen.begin(), 0U);
  EXPECT_EQ(*seen.rbegin(), 99U);
}

TEST(Rng, PermutationOfZeroAndOne) {
  Rng r(14);
  EXPECT_TRUE(r.permutation(0).empty());
  const auto p = r.permutation(1);
  ASSERT_EQ(p.size(), 1U);
  EXPECT_EQ(p[0], 0U);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(15);
  Rng child = parent.split();
  // The child stream should differ from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.next_u64() == child.next_u64());
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace tinyadc
