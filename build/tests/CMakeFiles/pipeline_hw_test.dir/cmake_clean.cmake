file(REMOVE_RECURSE
  "CMakeFiles/pipeline_hw_test.dir/pipeline_hw_test.cpp.o"
  "CMakeFiles/pipeline_hw_test.dir/pipeline_hw_test.cpp.o.d"
  "pipeline_hw_test"
  "pipeline_hw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_hw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
