#include "artifact/artifact.hpp"

#include <cmath>

#include "artifact/format.hpp"
#include "tensor/check.hpp"

namespace tinyadc::artifact {

namespace {

constexpr std::uint32_t kMetaSectionVersion = 1;
constexpr std::uint32_t kPruneSectionVersion = 1;
constexpr std::uint64_t kMaxLayers = 1ULL << 16;

const char kTagMeta[] = "META";
const char kTagWeights[] = "WEIGHTS";
const char kTagPrune[] = "PRUNE";
const char kTagMapping[] = "MAPPING";
const char kTagPlans[] = "PLANS";
const char kTagCalib[] = "CALIB";

void write_meta(const ArtifactMeta& meta, SectionWriter& w) {
  w.pod(kMetaSectionVersion);
  w.str(meta.arch);
  w.str(meta.model_name);
  w.pod(meta.model_config.num_classes);
  w.pod(meta.model_config.in_channels);
  w.pod(meta.model_config.image_size);
  w.pod(meta.model_config.width_mult);
  w.pod(static_cast<std::uint8_t>(meta.model_config.imagenet_stem ? 1 : 0));
  w.pod(meta.model_config.seed);
}

ArtifactMeta read_meta(SectionReader& r) {
  const auto version = r.pod<std::uint32_t>();
  TINYADC_CHECK(version == kMetaSectionVersion,
                "unsupported META section version " << version);
  ArtifactMeta meta;
  meta.arch = r.str();
  meta.model_name = r.str();
  meta.model_config.num_classes = r.pod<std::int64_t>();
  meta.model_config.in_channels = r.pod<std::int64_t>();
  meta.model_config.image_size = r.pod<std::int64_t>();
  meta.model_config.width_mult = r.pod<float>();
  meta.model_config.imagenet_stem = r.pod<std::uint8_t>() != 0;
  meta.model_config.seed = r.pod<std::uint64_t>();
  TINYADC_CHECK(!meta.arch.empty(), "META section has an empty architecture");
  TINYADC_CHECK(meta.model_config.num_classes > 0 &&
                    meta.model_config.num_classes <= (1 << 20),
                "META section has " << meta.model_config.num_classes
                                    << " classes");
  TINYADC_CHECK(meta.model_config.in_channels > 0 &&
                    meta.model_config.in_channels <= (1 << 16),
                "META section has " << meta.model_config.in_channels
                                    << " input channels");
  TINYADC_CHECK(meta.model_config.image_size > 0 &&
                    meta.model_config.image_size <= (1 << 16),
                "META section has image size "
                    << meta.model_config.image_size);
  TINYADC_CHECK(std::isfinite(meta.model_config.width_mult) &&
                    meta.model_config.width_mult > 0.0F,
                "META section has a non-positive width multiplier");
  TINYADC_CHECK(r.remaining() == 0, "trailing bytes after the META section");
  return meta;
}

void write_prune(const std::vector<core::LayerPruneSpec>& specs,
                 const std::vector<core::StructuralSelection>& selections,
                 SectionWriter& w) {
  w.pod(kPruneSectionVersion);
  w.pod(static_cast<std::uint64_t>(specs.size()));
  for (const auto& spec : specs) core::serialize(spec, w);
  w.pod(static_cast<std::uint64_t>(selections.size()));
  for (const auto& sel : selections) core::serialize(sel, w);
}

void read_prune(SectionReader& r, std::vector<core::LayerPruneSpec>& specs,
                std::vector<core::StructuralSelection>& selections) {
  const auto version = r.pod<std::uint32_t>();
  TINYADC_CHECK(version == kPruneSectionVersion,
                "unsupported PRUNE section version " << version);
  const auto nspecs = r.pod<std::uint64_t>();
  TINYADC_CHECK(nspecs <= kMaxLayers,
                "PRUNE section claims " << nspecs << " specs");
  specs.reserve(static_cast<std::size_t>(nspecs));
  for (std::uint64_t i = 0; i < nspecs; ++i)
    specs.push_back(core::deserialize_prune_spec(r));
  const auto nsel = r.pod<std::uint64_t>();
  TINYADC_CHECK(nsel <= kMaxLayers,
                "PRUNE section claims " << nsel << " selections");
  selections.reserve(static_cast<std::size_t>(nsel));
  for (std::uint64_t i = 0; i < nsel; ++i)
    selections.push_back(core::deserialize_selection(r));
  TINYADC_CHECK(r.remaining() == 0, "trailing bytes after the PRUNE section");
}

/// Shared body of both save overloads — one code path, so a freshly built
/// deployment and a reloaded one serialize to identical bytes.
void write_artifact(const std::string& path, const ArtifactMeta& meta,
                    const std::vector<core::LayerPruneSpec>& specs,
                    const std::vector<core::StructuralSelection>& selections,
                    nn::Model& model, const xbar::MappedNetwork& mapping,
                    const msim::AnalogNetwork& analog) {
  TINYADC_CHECK(analog.calibrated(),
                "save_artifact requires a calibrated analog network");
  ArtifactWriter writer(path);
  write_meta(meta, writer.section(kTagMeta));
  model.serialize(writer.section(kTagWeights));
  if (!specs.empty() || !selections.empty())
    write_prune(specs, selections, writer.section(kTagPrune));
  xbar::serialize(mapping, writer.section(kTagMapping));
  analog.serialize_plans(writer.section(kTagPlans));
  analog.serialize_calibration(writer.section(kTagCalib));
  writer.finish();
}

}  // namespace

void save_artifact(const std::string& path, const ArtifactInputs& inputs) {
  write_artifact(path, inputs.meta, inputs.specs, inputs.selections,
                 inputs.model, inputs.mapping, inputs.analog);
}

void save_artifact(const std::string& path, const Deployment& deployment) {
  TINYADC_CHECK(deployment.model && deployment.mapping && deployment.analog,
                "save_artifact on an incomplete deployment");
  write_artifact(path, deployment.meta, deployment.specs,
                 deployment.selections, *deployment.model, *deployment.mapping,
                 *deployment.analog);
}

Deployment load_artifact(const std::string& path) {
  ArtifactFile file(path);
  for (const char* tag : {kTagMeta, kTagWeights, kTagMapping, kTagPlans,
                          kTagCalib})
    TINYADC_CHECK(file.has(tag),
                  "artifact " << path << " is missing the required " << tag
                              << " section");

  Deployment dep;
  {
    auto r = file.section(kTagMeta);
    dep.meta = read_meta(r);
  }
  dep.model = nn::build_model(dep.meta.arch, dep.meta.model_config);
  TINYADC_CHECK(dep.model->name() == dep.meta.model_name,
                "META names model '" << dep.meta.model_name
                                     << "' but architecture '" << dep.meta.arch
                                     << "' builds '" << dep.model->name()
                                     << "'");
  {
    auto r = file.section(kTagWeights);
    dep.model->deserialize_state(r);
    TINYADC_CHECK(r.remaining() == 0,
                  "trailing bytes after the WEIGHTS section");
  }
  if (file.has(kTagPrune)) {
    auto r = file.section(kTagPrune);
    read_prune(r, dep.specs, dep.selections);
  }
  {
    auto r = file.section(kTagMapping);
    dep.mapping = std::make_unique<xbar::MappedNetwork>(
        xbar::deserialize_mapped_network(r));
    TINYADC_CHECK(r.remaining() == 0,
                  "trailing bytes after the MAPPING section");
  }
  auto plans = file.section(kTagPlans);
  auto calib = file.section(kTagCalib);
  dep.analog = std::make_unique<msim::AnalogNetwork>(*dep.model, *dep.mapping,
                                                     plans, calib);
  return dep;
}

}  // namespace tinyadc::artifact
