// ISAAC-style inter-layer pipeline scheduling.
//
// ISAAC overlaps layers: while layer i processes image t, layer i−1 already
// works on image t+1. Steady-state throughput is then set by the *slowest
// stage*, not the serial sum, and ISAAC balances the pipeline by
// replicating slow (usually early, high-MVM-count) layers across more
// crossbar copies. This module schedules a mapped network that way:
//  * per-stage time  T_i = mvms_i · dac_cycles · widest_block_cols / f_adc
//    (each physical array's ADC serializes its block's columns; arrays run
//    in parallel; replication divides T_i by the copy count);
//  * steady interval = max_i T_i / r_i, fps = 1 / interval;
//  * fill latency    = Σ_i T_i / r_i (first image);
//  * inter-stage buffers hold one image's activations at `input_bits` each.
// balance_pipeline() picks the minimal replication vector that reaches a
// target interval, reporting the extra arrays it costs — the knob the
// paper turns when it says smaller ADCs let designers "use more ADCs per
// crossbar" for throughput.
#pragma once

#include "hw/inference_model.hpp"

namespace tinyadc::hw {

/// One pipeline stage (= one mapped layer).
struct StageSchedule {
  std::string name;
  std::int64_t mvms = 0;         ///< MVMs per image
  double stage_time_s = 0.0;     ///< per-image time at replication 1
  std::int64_t replication = 1;  ///< crossbar copies allocated
  double effective_time_s = 0.0; ///< stage_time_s / replication
  std::int64_t buffer_bytes = 0; ///< output activation buffer to next stage
};

/// Whole-pipeline schedule.
struct PipelineSchedule {
  std::vector<StageSchedule> stages;
  double interval_s = 0.0;      ///< steady-state time between images
  double fill_latency_s = 0.0;  ///< first-image latency (pipeline fill)
  std::int64_t total_buffer_bytes = 0;
  std::int64_t extra_arrays = 0;  ///< arrays added by replication

  /// Steady-state images per second.
  double fps() const { return interval_s > 0.0 ? 1.0 / interval_s : 0.0; }
};

/// Schedules `net` with no replication (every stage gets one copy).
PipelineSchedule schedule_pipeline(const xbar::MappedNetwork& net,
                                   const std::vector<std::int64_t>&
                                       mvms_per_layer,
                                   const CostConstants& constants);

/// Minimal per-stage replication that achieves `target_interval_s`
/// (replication factors ⌈T_i / target⌉), with the array cost accounted.
PipelineSchedule balance_pipeline(const xbar::MappedNetwork& net,
                                  const std::vector<std::int64_t>&
                                      mvms_per_layer,
                                  const CostConstants& constants,
                                  double target_interval_s);

/// Renders the schedule as an aligned text table.
std::string to_table(const PipelineSchedule& schedule);

}  // namespace tinyadc::hw
