file(REMOVE_RECURSE
  "libtinyadc_tensor.a"
)
