// Model zoo: construction, forward shapes, parameter bookkeeping,
// prunable-view layout contract, and checkpoint round trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "nn/models.hpp"
#include "tensor/ops.hpp"

namespace tinyadc::nn {
namespace {

ModelConfig tiny_config() {
  ModelConfig cfg;
  cfg.num_classes = 10;
  cfg.image_size = 16;
  cfg.width_mult = 0.0625F;
  return cfg;
}

TEST(ScaledChannels, FloorsAndEvens) {
  EXPECT_EQ(scaled_channels(64, 1.0F), 64);
  EXPECT_EQ(scaled_channels(64, 0.0625F), 4);
  EXPECT_EQ(scaled_channels(64, 0.01F), 4);   // floor at 4
  EXPECT_EQ(scaled_channels(100, 0.05F), 6);  // 5 rounds up to even
}

TEST(ResNet18, ForwardShape) {
  auto model = resnet18(tiny_config());
  Rng rng(1);
  Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
  Tensor y = model->forward(x, false);
  EXPECT_EQ(y.shape(), Shape({2, 10}));
}

TEST(ResNet18, HasExpectedLayerCounts) {
  auto model = resnet18(tiny_config());
  // stem + 8 blocks × 2 convs + 3 downsample convs = 20 convs, 1 fc.
  EXPECT_EQ(model->conv_layers().size(), 20U);
  EXPECT_EQ(model->linear_layers().size(), 1U);
}

TEST(ResNet50, ForwardShapeAndDepth) {
  auto model = resnet50(tiny_config());
  Rng rng(2);
  Tensor x = Tensor::randn({1, 3, 16, 16}, rng);
  EXPECT_EQ(model->forward(x, false).shape(), Shape({1, 10}));
  // stem + 16 bottlenecks × 3 convs + 4 downsample convs = 53 convs.
  EXPECT_EQ(model->conv_layers().size(), 53U);
}

TEST(Vgg16, ForwardShapeAndConvCount) {
  auto model = vgg16(tiny_config());
  Rng rng(3);
  Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
  EXPECT_EQ(model->forward(x, false).shape(), Shape({2, 10}));
  EXPECT_EQ(model->conv_layers().size(), 13U);
  EXPECT_EQ(model->linear_layers().size(), 2U);
}

TEST(ModelZoo, BuildByNameAndUnknownRejected) {
  EXPECT_NE(build_model("resnet18", tiny_config()), nullptr);
  EXPECT_NE(build_model("resnet50", tiny_config()), nullptr);
  EXPECT_NE(build_model("vgg16", tiny_config()), nullptr);
  EXPECT_THROW(build_model("alexnet", tiny_config()), CheckError);
}

TEST(ModelZoo, ImagenetStemShrinksSpatial) {
  ModelConfig cfg = tiny_config();
  cfg.image_size = 32;
  cfg.imagenet_stem = true;
  auto model = resnet18(cfg);
  Rng rng(4);
  Tensor x = Tensor::randn({1, 3, 32, 32}, rng);
  EXPECT_EQ(model->forward(x, false).shape(), Shape({1, 10}));
}

TEST(ModelZoo, ParamNamesAreUnique) {
  auto model = resnet50(tiny_config());
  std::set<std::string> names;
  for (Param* p : model->params()) {
    EXPECT_TRUE(names.insert(p->name).second) << "duplicate " << p->name;
  }
}

TEST(ModelZoo, WidthMultScalesParamCount) {
  ModelConfig small = tiny_config();
  ModelConfig bigger = tiny_config();
  bigger.width_mult = 0.25F;
  auto a = resnet18(small);
  auto b = resnet18(bigger);
  EXPECT_GT(b->param_count(), 4 * a->param_count());
}

TEST(ModelZoo, SeedReproducesInitialization) {
  auto a = resnet18(tiny_config());
  auto b = resnet18(tiny_config());
  auto pa = a->params();
  auto pb = b->params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    EXPECT_TRUE(allclose(pa[i]->value, pb[i]->value, 0.0F));
}

TEST(WeightMatrixView, ConvLayoutMatchesFig3) {
  // Conv weight (F=2, C=1, K=1): 2-D matrix is rows=1 (taps) × cols=2
  // (filters); element (0, f) must read filter f's weight.
  Rng rng(5);
  Conv2d conv("c", 1, 2, 1, 1, 0, false, rng);
  conv.weight().value.at(0) = 3.0F;  // filter 0
  conv.weight().value.at(1) = 7.0F;  // filter 1
  auto view = matrix_view(conv);
  EXPECT_EQ(view.rows, 1);
  EXPECT_EQ(view.cols, 2);
  Tensor m = view.to_matrix();
  EXPECT_FLOAT_EQ(m.at(0, 0), 3.0F);
  EXPECT_FLOAT_EQ(m.at(0, 1), 7.0F);
}

TEST(WeightMatrixView, RoundTripPreservesWeights) {
  Rng rng(6);
  Conv2d conv("c", 3, 4, 3, 1, 1, false, rng);
  Tensor before = conv.weight().value.clone();
  auto view = matrix_view(conv);
  view.from_matrix(view.to_matrix());
  EXPECT_TRUE(allclose(conv.weight().value, before, 0.0F));
}

TEST(WeightMatrixView, MutationThroughMatrixReachesStorage) {
  Rng rng(7);
  Linear fc("fc", 3, 2, false, rng);
  auto view = matrix_view(fc);
  Tensor m = view.to_matrix();
  m.fill(1.25F);
  view.from_matrix(m);
  for (std::int64_t i = 0; i < fc.weight().value.numel(); ++i)
    EXPECT_FLOAT_EQ(fc.weight().value.at(i), 1.25F);
}

TEST(Model, PrunableViewsCoverConvAndLinear) {
  auto model = vgg16(tiny_config());
  const auto views = model->prunable_views();
  EXPECT_EQ(views.size(), 15U);  // 13 convs + 2 fcs
  EXPECT_TRUE(views.front().is_conv);
  EXPECT_FALSE(views.back().is_conv);
}

TEST(Model, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tinyadc_model_test.bin")
          .string();
  auto a = resnet18(tiny_config());
  a->save(path);
  ModelConfig cfg = tiny_config();
  cfg.seed = 777;  // different init
  auto b = resnet18(cfg);
  b->load(path);
  auto pa = a->params();
  auto pb = b->params();
  for (std::size_t i = 0; i < pa.size(); ++i)
    EXPECT_TRUE(allclose(pa[i]->value, pb[i]->value, 0.0F));
  // Loaded model must produce identical logits.
  Rng rng(8);
  Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
  EXPECT_TRUE(allclose(a->forward(x, false), b->forward(x, false), 1e-6F));
  std::remove(path.c_str());
}

TEST(Model, LoadRejectsWrongArchitecture) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tinyadc_model_test2.bin")
          .string();
  auto a = resnet18(tiny_config());
  a->save(path);
  auto b = vgg16(tiny_config());
  EXPECT_THROW(b->load(path), CheckError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tinyadc::nn
