# Empty dependencies file for combined_reform_test.
# This may be replaced when dependencies are built.
