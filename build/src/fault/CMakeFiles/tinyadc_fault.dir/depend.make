# Empty dependencies file for tinyadc_fault.
# This may be replaced when dependencies are built.
