file(REMOVE_RECURSE
  "CMakeFiles/tinyadc_tensor.dir/gemm.cpp.o"
  "CMakeFiles/tinyadc_tensor.dir/gemm.cpp.o.d"
  "CMakeFiles/tinyadc_tensor.dir/im2col.cpp.o"
  "CMakeFiles/tinyadc_tensor.dir/im2col.cpp.o.d"
  "CMakeFiles/tinyadc_tensor.dir/ops.cpp.o"
  "CMakeFiles/tinyadc_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/tinyadc_tensor.dir/serialize.cpp.o"
  "CMakeFiles/tinyadc_tensor.dir/serialize.cpp.o.d"
  "CMakeFiles/tinyadc_tensor.dir/tensor.cpp.o"
  "CMakeFiles/tinyadc_tensor.dir/tensor.cpp.o.d"
  "libtinyadc_tensor.a"
  "libtinyadc_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinyadc_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
