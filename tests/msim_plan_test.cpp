// Sparsity-packed execution plans: the packed O(l)-per-column mvm path must
// reproduce the legacy dense O(r) row scan bit for bit — outputs AND ADC
// statistics — for every non-ideality combination, CP rate and thread
// count. Plus the shift-and-add int64 overflow guard.
#include <gtest/gtest.h>

#include <tuple>

#include "core/projection.hpp"
#include "data/synthetic.hpp"
#include "msim/analog_mvm.hpp"
#include "msim/analog_network.hpp"
#include "nn/models.hpp"
#include "runtime/parallel.hpp"
#include "tensor/ops.hpp"

namespace tinyadc::msim {
namespace {

/// A 256×32 matrix CP-projected to `keep` active rows per 128-row crossbar
/// column (keep == 128 leaves the matrix dense). One column is zeroed
/// entirely so empty conversion pairs are always exercised.
Tensor cp_matrix(std::int64_t keep, std::uint64_t seed) {
  constexpr std::int64_t rows = 256, cols = 32;
  tinyadc::Rng rng(seed);
  // Generate in weight-storage (column-major) layout, CP-project there,
  // then transpose into the row-major matrix the mapper consumes.
  std::vector<float> store(static_cast<std::size_t>(rows * cols));
  for (auto& v : store) v = rng.normal(0.0F, 1.0F);
  core::project_column_proportional({store.data(), rows, cols}, {128, 128},
                                    keep);
  Tensor m({rows, cols});
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t c = 0; c < cols; ++c)
      m.at(r, c) = store[static_cast<std::size_t>(c * rows + r)];
  for (std::int64_t r = 0; r < rows; ++r) m.at(r, 5) = 0.0F;
  return m;
}

std::vector<std::int32_t> random_codes(std::int64_t n, int bits,
                                       std::uint64_t seed) {
  tinyadc::Rng rng(seed);
  std::vector<std::int32_t> x(static_cast<std::size_t>(n));
  for (auto& v : x)
    v = static_cast<std::int32_t>(rng.uniform_int(1ULL << bits));
  return x;
}

/// Golden bit-exactness sweep: CP sparsity l ∈ {4, 16, 128} × thread count
/// ∈ {1, 4}, each under four non-ideality settings (ideal, variation,
/// IR drop, both).
class PlanExactness
    : public ::testing::TestWithParam<std::tuple<std::int64_t, int>> {
 protected:
  void TearDown() override { runtime::set_thread_count(0); }
};

TEST_P(PlanExactness, PackedMatchesDenseBitForBit) {
  const auto [keep, threads] = GetParam();
  runtime::set_thread_count(threads);
  const Tensor m = cp_matrix(keep, static_cast<std::uint64_t>(keep));
  xbar::MappingConfig map_cfg;  // paper config: 128×128, 8/8-bit, 1-bit DAC
  const auto layer = xbar::map_matrix(m, "l", map_cfg);
  ASSERT_LE(layer.max_active_rows(), keep);

  MsimConfig variants[4];
  variants[1].variation_sigma = 0.1;
  variants[2].ir_drop_alpha = 0.3;
  variants[3].variation_sigma = 0.1;
  variants[3].ir_drop_alpha = 0.3;
  for (MsimConfig cfg : variants) {
    MsimConfig dense_cfg = cfg;
    dense_cfg.use_plan = false;
    AnalogLayerSim packed(layer, cfg);
    AnalogLayerSim dense(layer, dense_cfg);
    for (std::uint64_t seed : {7ULL, 8ULL}) {
      const auto x = random_codes(layer.rows, map_cfg.input_bits, seed);
      EXPECT_EQ(packed.mvm(x), dense.mvm(x))
          << "keep=" << keep << " threads=" << threads
          << " sigma=" << cfg.variation_sigma
          << " alpha=" << cfg.ir_drop_alpha;
    }
    EXPECT_EQ(packed.stats().adc_conversions, dense.stats().adc_conversions);
    EXPECT_EQ(packed.stats().adc_clip_events, dense.stats().adc_clip_events);
    EXPECT_EQ(packed.stats().dac_cycles, dense.stats().dac_cycles);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RatesAndThreads, PlanExactness,
    ::testing::Combine(::testing::Values<std::int64_t>(4, 16, 128),
                       ::testing::Values(1, 4)));

TEST(PlanExactness, MultiBitDacMatchesDense) {
  const Tensor m = cp_matrix(16, 99);
  xbar::MappingConfig map_cfg;
  map_cfg.dac_bits = 2;
  const auto layer = xbar::map_matrix(m, "l", map_cfg);
  MsimConfig dense_cfg;
  dense_cfg.use_plan = false;
  AnalogLayerSim packed(layer, {});
  AnalogLayerSim dense(layer, dense_cfg);
  const auto x = random_codes(layer.rows, map_cfg.input_bits, 11);
  EXPECT_EQ(packed.mvm(x), dense.mvm(x));
  EXPECT_EQ(packed.stats().adc_conversions, dense.stats().adc_conversions);
}

TEST(PlanExactness, UnderProvisionedAdcClipsIdentically) {
  // Clipping paths must agree too: force saturation with a 2-bit ADC.
  const Tensor m = cp_matrix(128, 42);
  const auto layer = xbar::map_matrix(m, "l", xbar::MappingConfig{});
  MsimConfig cfg;
  cfg.adc_bits_override = 2;
  MsimConfig dense_cfg = cfg;
  dense_cfg.use_plan = false;
  AnalogLayerSim packed(layer, cfg);
  AnalogLayerSim dense(layer, dense_cfg);
  std::vector<std::int32_t> x(static_cast<std::size_t>(layer.rows), 255);
  EXPECT_EQ(packed.mvm(x), dense.mvm(x));
  EXPECT_GT(packed.stats().adc_clip_events, 0);
  EXPECT_EQ(packed.stats().adc_clip_events, dense.stats().adc_clip_events);
}

TEST(OverflowGuard, RejectsAccumulatorOverflow) {
  // 15 one-bit slices × 32 one-bit DAC cycles × a 24-bit ADC cannot fit the
  // int64 shift-and-add accumulator — construction must refuse instead of
  // silently wrapping `acc += code << shift`.
  tinyadc::Rng rng(1);
  Tensor m = Tensor::randn({4, 4}, rng);
  xbar::MappingConfig map_cfg;
  map_cfg.dims = {8, 8};
  map_cfg.weight_bits = 16;
  map_cfg.cell_bits = 1;
  map_cfg.input_bits = 32;
  map_cfg.dac_bits = 1;
  const auto layer = xbar::map_matrix(m, "l", map_cfg);
  MsimConfig cfg;
  cfg.adc_bits_override = 24;
  EXPECT_THROW(AnalogLayerSim(layer, cfg), tinyadc::CheckError);
}

/// Whole-network evaluation must not depend on how the test set is
/// chunked: accuracy and the summed ADC counters of a calibrated
/// AnalogNetwork are identical at batch sizes 1, 7 and 16 — per-sample
/// analog MVMs and per-sample digital layers make each image's path
/// independent of its batch neighbours. Checked for both the packed-plan
/// and the legacy dense execution paths.
TEST(BatchInvariance, EvaluateIndependentOfBatchSize) {
  nn::ModelConfig mc;
  mc.num_classes = 4;
  mc.image_size = 8;
  mc.width_mult = 0.0625F;
  const auto model = nn::resnet18(mc);

  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.image_size = 8;
  spec.train_per_class = 8;
  spec.test_per_class = 6;
  spec.seed = 17;
  const auto data = data::make_synthetic(spec);

  xbar::MappingConfig map_cfg;
  map_cfg.dims = {16, 16};
  const auto net = xbar::map_model(*model, map_cfg);

  for (const bool use_plan : {true, false}) {
    double ref_acc = 0.0;
    MsimStats ref;
    bool first = true;
    for (const std::size_t batch : {std::size_t{1}, std::size_t{7},
                                    std::size_t{16}}) {
      // Fresh sims (zero counters) with identical calibration per run.
      MsimConfig cfg;
      cfg.use_plan = use_plan;
      AnalogNetwork analog(*model, net, cfg);
      analog.calibrate(data.train, 8);
      const double acc = analog.evaluate(data.test, batch);
      MsimStats total;
      for (const auto& sim : analog.sims()) {
        const MsimStats s = sim->stats_snapshot();
        total.adc_conversions += s.adc_conversions;
        total.adc_clip_events += s.adc_clip_events;
        total.dac_cycles += s.dac_cycles;
      }
      if (first) {
        ref_acc = acc;
        ref = total;
        first = false;
        EXPECT_GT(total.adc_conversions, 0);
        EXPECT_GT(total.dac_cycles, 0);
      } else {
        EXPECT_DOUBLE_EQ(acc, ref_acc)
            << "use_plan=" << use_plan << " batch=" << batch;
        EXPECT_EQ(total.adc_conversions, ref.adc_conversions)
            << "use_plan=" << use_plan << " batch=" << batch;
        EXPECT_EQ(total.adc_clip_events, ref.adc_clip_events)
            << "use_plan=" << use_plan << " batch=" << batch;
        EXPECT_EQ(total.dac_cycles, ref.dac_cycles)
            << "use_plan=" << use_plan << " batch=" << batch;
      }
    }
  }
}

/// Every plan kernel — retained AoS walk, un-fused SoA streams, bit-sliced
/// popcount path, and the kAuto dispatcher — must reproduce the dense
/// reference bit for bit (outputs AND ADC counters) for every CP rate,
/// thread count and non-ideality combination. Kernels that are ineligible
/// for a configuration (bitslice under variation, fused under clipping)
/// must degrade to an eligible path, not diverge.
class KernelEquivalence
    : public ::testing::TestWithParam<std::tuple<std::int64_t, int>> {
 protected:
  void TearDown() override { runtime::set_thread_count(0); }
};

TEST_P(KernelEquivalence, AllKernelsMatchDenseBitForBit) {
  const auto [keep, threads] = GetParam();
  runtime::set_thread_count(threads);
  const Tensor m = cp_matrix(keep, static_cast<std::uint64_t>(keep) + 1);
  xbar::MappingConfig map_cfg;
  const auto layer = xbar::map_matrix(m, "l", map_cfg);

  MsimConfig variants[4];
  variants[1].variation_sigma = 0.1;
  variants[2].ir_drop_alpha = 0.3;
  variants[3].variation_sigma = 0.1;
  variants[3].ir_drop_alpha = 0.3;
  for (const MsimConfig& base : variants) {
    MsimConfig dense_cfg = base;
    dense_cfg.use_plan = false;
    AnalogLayerSim dense(layer, dense_cfg);
    const auto x = random_codes(layer.rows, map_cfg.input_bits, 21);
    const auto y_ref = dense.mvm(x);
    for (const PlanKernel kernel :
         {PlanKernel::kAuto, PlanKernel::kAos, PlanKernel::kSoa,
          PlanKernel::kBitslice}) {
      MsimConfig cfg = base;
      cfg.plan_kernel = kernel;
      AnalogLayerSim sim(layer, cfg);
      EXPECT_EQ(sim.mvm(x), y_ref)
          << "kernel=" << static_cast<int>(kernel) << " keep=" << keep
          << " threads=" << threads << " sigma=" << base.variation_sigma
          << " alpha=" << base.ir_drop_alpha;
      EXPECT_EQ(sim.stats().adc_conversions, dense.stats().adc_conversions)
          << "kernel=" << static_cast<int>(kernel);
      EXPECT_EQ(sim.stats().adc_clip_events, dense.stats().adc_clip_events)
          << "kernel=" << static_cast<int>(kernel);
      EXPECT_EQ(sim.stats().dac_cycles, dense.stats().dac_cycles)
          << "kernel=" << static_cast<int>(kernel);
    }
    dense.reset_stats();
  }
}

INSTANTIATE_TEST_SUITE_P(
    RatesAndThreads, KernelEquivalence,
    ::testing::Combine(::testing::Values<std::int64_t>(4, 16, 128),
                       ::testing::Values(1, 4)));

TEST(KernelEquivalence, MultiBitDacFallsBackBitExactly) {
  // dac_bits == 2 disqualifies the bitslice packing; every kernel must
  // land on the vector path and still match dense.
  const Tensor m = cp_matrix(16, 99);
  xbar::MappingConfig map_cfg;
  map_cfg.dac_bits = 2;
  const auto layer = xbar::map_matrix(m, "l", map_cfg);
  MsimConfig dense_cfg;
  dense_cfg.use_plan = false;
  AnalogLayerSim dense(layer, dense_cfg);
  const auto x = random_codes(layer.rows, map_cfg.input_bits, 31);
  const auto y_ref = dense.mvm(x);
  for (const PlanKernel kernel : {PlanKernel::kAos, PlanKernel::kSoa,
                                  PlanKernel::kBitslice}) {
    MsimConfig cfg;
    cfg.plan_kernel = kernel;
    AnalogLayerSim sim(layer, cfg);
    EXPECT_EQ(sim.mvm(x), y_ref) << "kernel=" << static_cast<int>(kernel);
    EXPECT_EQ(sim.stats().adc_conversions, dense.stats().adc_conversions);
    EXPECT_EQ(sim.stats().adc_clip_events, dense.stats().adc_clip_events);
  }
}

TEST(KernelEquivalence, UnderProvisionedAdcClipsIdenticallyAcrossKernels) {
  // A 2-bit ADC saturates constantly: the fused path must disqualify
  // itself (its predicate requires clip-free conversion) and every kernel
  // must reproduce the dense clipping pattern exactly.
  const Tensor m = cp_matrix(128, 42);
  const auto layer = xbar::map_matrix(m, "l", xbar::MappingConfig{});
  MsimConfig base;
  base.adc_bits_override = 2;
  MsimConfig dense_cfg = base;
  dense_cfg.use_plan = false;
  AnalogLayerSim dense(layer, dense_cfg);
  std::vector<std::int32_t> x(static_cast<std::size_t>(layer.rows), 255);
  const auto y_ref = dense.mvm(x);
  EXPECT_GT(dense.stats().adc_clip_events, 0);
  for (const PlanKernel kernel : {PlanKernel::kAuto, PlanKernel::kAos,
                                  PlanKernel::kSoa, PlanKernel::kBitslice}) {
    MsimConfig cfg = base;
    cfg.plan_kernel = kernel;
    AnalogLayerSim sim(layer, cfg);
    EXPECT_EQ(sim.mvm(x), y_ref) << "kernel=" << static_cast<int>(kernel);
    EXPECT_EQ(sim.stats().adc_clip_events, dense.stats().adc_clip_events)
        << "kernel=" << static_cast<int>(kernel);
  }
}

TEST(KernelEquivalence, FullyPrunedLayerDegeneratesToZero) {
  // bits == 0 ADCs (a fully-pruned mapping) must output zeros on every
  // kernel without tripping the fused predicate (full_scale == 0).
  Tensor m({16, 4});
  const auto layer = xbar::map_matrix(m, "l", xbar::MappingConfig{});
  std::vector<std::int32_t> x(static_cast<std::size_t>(layer.rows), 200);
  for (const PlanKernel kernel : {PlanKernel::kAuto, PlanKernel::kAos,
                                  PlanKernel::kSoa, PlanKernel::kBitslice}) {
    MsimConfig cfg;
    cfg.plan_kernel = kernel;
    AnalogLayerSim sim(layer, cfg);
    const auto y = sim.mvm(x);
    for (const auto v : y) EXPECT_EQ(v, 0);
  }
}

/// The batched entry points must be indistinguishable from per-sample
/// calls: outputs, ADC counters and DAC cycle counts, on every kernel,
/// for the integer API and both real-domain input modes.
class BatchApiEquivalence : public ::testing::TestWithParam<int> {
 protected:
  void TearDown() override { runtime::set_thread_count(0); }
};

TEST_P(BatchApiEquivalence, BatchedMatchesPerSample) {
  runtime::set_thread_count(GetParam());
  const Tensor m = cp_matrix(16, 5);
  xbar::MappingConfig map_cfg;
  const auto layer = xbar::map_matrix(m, "l", map_cfg);
  constexpr std::int64_t kBatch = 5;

  MsimConfig variants[2];
  variants[1].variation_sigma = 0.1;  // forces the non-fused batch fallback
  for (const MsimConfig& base : variants) {
    for (const PlanKernel kernel :
         {PlanKernel::kAuto, PlanKernel::kAos, PlanKernel::kSoa,
          PlanKernel::kBitslice}) {
      MsimConfig cfg = base;
      cfg.plan_kernel = kernel;
      AnalogLayerSim batched(layer, cfg);
      AnalogLayerSim serial(layer, cfg);

      // Integer API.
      std::vector<std::int32_t> xs;
      for (std::int64_t s = 0; s < kBatch; ++s) {
        const auto x = random_codes(layer.rows, map_cfg.input_bits,
                                    100 + static_cast<std::uint64_t>(s));
        xs.insert(xs.end(), x.begin(), x.end());
      }
      const auto yb = batched.mvm_batch(xs, kBatch);
      ASSERT_EQ(yb.size(), static_cast<std::size_t>(kBatch * layer.cols));
      for (std::int64_t s = 0; s < kBatch; ++s) {
        const std::vector<std::int32_t> x(
            xs.begin() + s * layer.rows, xs.begin() + (s + 1) * layer.rows);
        const auto y = serial.mvm(x);
        const std::vector<std::int64_t> row(yb.begin() + s * layer.cols,
                                            yb.begin() + (s + 1) * layer.cols);
        EXPECT_EQ(row, y) << "sample " << s << " kernel="
                          << static_cast<int>(kernel);
      }
      EXPECT_EQ(batched.stats().adc_conversions,
                serial.stats().adc_conversions);
      EXPECT_EQ(batched.stats().adc_clip_events,
                serial.stats().adc_clip_events);
      EXPECT_EQ(batched.stats().dac_cycles, serial.stats().dac_cycles);

      // Real-domain API, unsigned and signed (two-phase split).
      xbar::QuantParams q;
      q.bits = map_cfg.input_bits;
      q.scale = 0.043F;
      tinyadc::Rng rng(7);
      std::vector<float> xr(static_cast<std::size_t>(kBatch * layer.rows));
      for (auto& v : xr) v = rng.normal(0.0F, 2.0F);
      for (const bool signed_input : {false, true}) {
        std::vector<float> xin = xr;
        if (!signed_input)
          for (auto& v : xin) v = v < 0.0F ? -v : v;  // post-ReLU domain
        const auto yb_real =
            batched.mvm_real_batch(xin, kBatch, q, signed_input);
        for (std::int64_t s = 0; s < kBatch; ++s) {
          const std::vector<float> x(xin.begin() + s * layer.rows,
                                     xin.begin() + (s + 1) * layer.rows);
          const auto y = signed_input ? serial.mvm_real_signed(x, q)
                                      : serial.mvm_real(x, q);
          const std::vector<float> row(
              yb_real.begin() + s * layer.cols,
              yb_real.begin() + (s + 1) * layer.cols);
          EXPECT_EQ(row, y) << "signed=" << signed_input << " sample " << s;
        }
      }
      EXPECT_EQ(batched.stats().adc_conversions,
                serial.stats().adc_conversions);
      EXPECT_EQ(batched.stats().dac_cycles, serial.stats().dac_cycles);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, BatchApiEquivalence, ::testing::Values(1,
                                                                         4));

TEST(OverflowGuard, AcceptsPaperConfiguration) {
  tinyadc::Rng rng(2);
  Tensor m = Tensor::randn({128, 16}, rng);
  const auto layer = xbar::map_matrix(m, "l", xbar::MappingConfig{});
  EXPECT_NO_THROW(AnalogLayerSim(layer, MsimConfig{}));
}

}  // namespace
}  // namespace tinyadc::msim
