// Training-pipeline tests for the batched ADMM train step:
//  * finite-difference gradient check of the batched conv backward;
//  * batched vs per-sample-reference path agreement (forward and grads);
//  * workspace lifecycle (eval-forward invalidation, release/regrow);
//  * bit-identity of the full ADMM train loop — parameters, optimizer
//    trajectory, Z/U duals and residuals — at 1 vs 4 worker threads (the
//    deterministic-runtime contract extended to the whole training step).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "core/admm.hpp"
#include "core/pruner.hpp"
#include "data/synthetic.hpp"
#include "nn/conv.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"
#include "runtime/parallel.hpp"
#include "tensor/check.hpp"
#include "tensor/ops.hpp"

namespace tinyadc {
namespace {

constexpr core::CrossbarDims kDims{128, 128};

/// Scalar loss L = <conv(x), G> used for gradient checking.
double loss_of(nn::Conv2d& conv, const Tensor& x, const Tensor& g) {
  Tensor y = conv.forward(x, /*training=*/true);
  return sum(mul(y, g));
}

TEST(BatchedConv, GradcheckAgainstFiniteDifferences) {
  Rng rng(7);
  nn::Conv2d conv("c", 2, 4, 3, 1, 1, /*bias=*/true, rng);
  ASSERT_TRUE(conv.batched());  // batched is the default path
  Tensor x = Tensor::randn({3, 2, 6, 6}, rng);

  Tensor y0 = conv.forward(x, true);
  Tensor g = Tensor::randn(y0.shape(), rng);
  for (nn::Param* p : conv.params()) p->zero_grad();
  conv.forward(x, true);
  Tensor gx = conv.backward(g);

  const float eps = 1e-2F;
  const double tol = 2e-2;
  for (std::int64_t i = 0; i < std::min<std::int64_t>(x.numel(), 24); ++i) {
    const float orig = x.at(i);
    x.at(i) = orig + eps;
    const double lp = loss_of(conv, x, g);
    x.at(i) = orig - eps;
    const double lm = loss_of(conv, x, g);
    x.at(i) = orig;
    const double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(gx.at(i), numeric, tol * (std::abs(numeric) + 1.0))
        << "input grad mismatch at " << i;
  }
  for (nn::Param* p : conv.params()) {
    for (std::int64_t i = 0; i < std::min<std::int64_t>(p->value.numel(), 16);
         ++i) {
      const float orig = p->value.at(i);
      p->value.at(i) = orig + eps;
      const double lp = loss_of(conv, x, g);
      p->value.at(i) = orig - eps;
      const double lm = loss_of(conv, x, g);
      p->value.at(i) = orig;
      const double numeric = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR(p->grad.at(i), numeric, tol * (std::abs(numeric) + 1.0))
          << "param " << p->name << " grad mismatch at " << i;
    }
  }
}

TEST(BatchedConv, MatchesReferencePath) {
  Rng rng(8);
  nn::Conv2d batched("c", 3, 6, 3, 2, 1, /*bias=*/true, rng);
  auto ref_ptr = batched.clone();
  auto& ref = static_cast<nn::Conv2d&>(*ref_ptr);
  ref.set_batched(false);
  ASSERT_TRUE(batched.batched());
  ASSERT_FALSE(ref.batched());

  Tensor x = Tensor::randn({4, 3, 9, 9}, rng);
  Tensor yb = batched.forward(x, true);
  Tensor yr = ref.forward(x, true);
  ASSERT_EQ(yb.shape(), yr.shape());
  for (std::int64_t i = 0; i < yb.numel(); ++i)
    EXPECT_NEAR(yb.at(i), yr.at(i), 1e-4) << "forward mismatch at " << i;

  Tensor g = Tensor::randn(yb.shape(), rng);
  Tensor gxb = batched.backward(g);
  Tensor gxr = ref.backward(g);
  for (std::int64_t i = 0; i < gxb.numel(); ++i)
    EXPECT_NEAR(gxb.at(i), gxr.at(i), 1e-4) << "dinput mismatch at " << i;
  const Tensor& gwb = batched.weight().grad;
  const Tensor& gwr = ref.weight().grad;
  for (std::int64_t i = 0; i < gwb.numel(); ++i)
    EXPECT_NEAR(gwb.at(i), gwr.at(i), 1e-4) << "dW mismatch at " << i;
  for (std::int64_t i = 0; i < batched.bias().grad.numel(); ++i)
    EXPECT_NEAR(batched.bias().grad.at(i), ref.bias().grad.at(i), 1e-4)
        << "dbias mismatch at " << i;
}

TEST(BatchedConv, EvalForwardInvalidatesTrainingCache) {
  Rng rng(9);
  nn::Conv2d conv("c", 2, 3, 3, 1, 1, true, rng);
  Tensor x = Tensor::randn({2, 2, 5, 5}, rng);
  Tensor y = conv.forward(x, /*training=*/true);
  conv.forward(x, /*training=*/false);  // eval pass clobbers the workspace
  Tensor g = Tensor::randn(y.shape(), rng);
  EXPECT_THROW(conv.backward(g), CheckError);
}

TEST(BatchedConv, ReleaseWorkspaceRegrows) {
  Rng rng(10);
  nn::Conv2d conv("c", 2, 3, 3, 1, 1, true, rng);
  Tensor x = Tensor::randn({2, 2, 5, 5}, rng);
  Tensor y1 = conv.forward(x, true);
  Tensor g = Tensor::randn(y1.shape(), rng);
  conv.backward(g);

  conv.release_workspace();
  // A released workspace also drops any cached forward...
  EXPECT_THROW(conv.backward(g), CheckError);
  // ...but the next forward regrows it and the path works end to end,
  // reproducing the pre-release output exactly (weights unchanged).
  Tensor y2 = conv.forward(x, true);
  ASSERT_EQ(y1.numel(), y2.numel());
  EXPECT_EQ(0, std::memcmp(y1.data(), y2.data(),
                           sizeof(float) * static_cast<std::size_t>(y1.numel())));
  conv.backward(g);
}

// ---------------------------------------------------------------------------
// Full-train-step determinism across thread counts.
// ---------------------------------------------------------------------------

struct TrainResult {
  std::vector<float> snapshot;  ///< params (value+grad) then Z/U per layer
  double primal = 0.0;
  double dual = 0.0;
};

/// Runs K=3 ADMM-attached train steps plus one extra plain step (the extra
/// step only matches across runs if the optimizer's momentum state matched
/// bit-for-bit after the first K), all at `threads` worker threads.
TrainResult run_admm_training(int threads, const data::Batch& batch) {
  runtime::set_thread_count(threads);
  nn::ModelConfig mc;
  mc.num_classes = 10;
  mc.image_size = 8;
  mc.width_mult = 0.125F;
  auto model = nn::build_model("resnet18", mc);

  nn::TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 16;
  tc.sgd.lr = 0.05F;
  tc.sgd.total_epochs = 4;
  nn::Trainer trainer(*model, tc);

  auto specs = core::uniform_cp_specs(*model, 8, kDims);
  core::AdmmPruner pruner(*model, specs, kDims, core::AdmmConfig{0.1F, 1});
  pruner.attach(trainer);

  TrainResult result;
  for (int step = 0; step < 3; ++step) {
    trainer.train_step(batch, 0);
    const core::AdmmResiduals res = pruner.update_duals();
    result.primal = res.primal;
    result.dual = res.dual;
  }
  trainer.train_step(batch, 0);  // momentum-state identity probe

  for (const nn::Param* p : model->params()) {
    const float* v = p->value.data();
    result.snapshot.insert(result.snapshot.end(), v, v + p->value.numel());
    const float* g = p->grad.data();
    result.snapshot.insert(result.snapshot.end(), g, g + p->grad.numel());
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& z = pruner.z(i);
    const auto& u = pruner.u(i);
    result.snapshot.insert(result.snapshot.end(), z.begin(), z.end());
    result.snapshot.insert(result.snapshot.end(), u.begin(), u.end());
  }
  runtime::set_thread_count(0);
  return result;
}

TEST(TrainStepDeterminism, BitIdenticalAtOneVsFourThreads) {
  data::SyntheticSpec spec = data::tier_by_name("cifar10");
  spec.image_size = 8;
  spec.train_per_class = 4;
  spec.test_per_class = 2;
  data::DatasetPair ds = data::make_synthetic(spec);
  data::BatchIterator it(ds.train, 16, nullptr);
  data::Batch batch;
  ASSERT_TRUE(it.next(batch));

  const TrainResult a = run_admm_training(1, batch);
  const TrainResult b = run_admm_training(4, batch);

  ASSERT_EQ(a.snapshot.size(), b.snapshot.size());
  ASSERT_FALSE(a.snapshot.empty());
  EXPECT_EQ(0, std::memcmp(a.snapshot.data(), b.snapshot.data(),
                           sizeof(float) * a.snapshot.size()))
      << "train-step state diverged across thread counts";
  // Residuals use per-chunk partial sums merged in fixed order — exact too.
  EXPECT_EQ(a.primal, b.primal);
  EXPECT_EQ(a.dual, b.dual);
  EXPECT_GT(a.primal, 0.0);
}

}  // namespace
}  // namespace tinyadc
