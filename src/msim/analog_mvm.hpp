// Functional simulation of bit-serial analog matrix-vector multiplication.
//
// Pipeline per MVM (mirroring ISAAC's datapath):
//   1. DAC: each unsigned activation code streams in v-bit chunks.
//   2. Crossbar: per cycle, every (block, logical column, slice plane,
//      polarity) produces an analog sum Σ_rows chunk[r] · cell_level[r]
//      in LSB units; zero weights contribute nothing (their cells sit at
//      G_off), which is how CP pruning deactivates rows.
//   3. Sample & hold + ADC: each analog sum is digitized by the block's ADC
//      (Eq. 1-sized by default, overridable to study clipping).
//   4. Shift & add: digital accumulation re-weights codes by input-cycle
//      (·2^{t·v}), slice plane (·2^{s·cell_bits}) and polarity (±).
//
// With variation_sigma == 0 the result equals the integer reference MVM
// exactly whenever the ADC satisfies Eq. 1 (property P2). With variation,
// each cell's level is perturbed once at construction (a programmed chip)
// and the ADC's nearest-code rounding either absorbs the error (< ½ LSB per
// column) or not — the basis of the robustness analyses.
//
// Execution cost: CP pruning guarantees at most l ≪ r active rows per
// column, and the cell programming is static, so the per-column
// decomposition (signs, slice levels, variation, IR-drop attenuation) is
// hoisted into a packed execution plan at construction. The plan is stored
// as column-blocked SoA streams — one contiguous segment of active rows per
// (block, column, polarity), with separate row-index / magnitude /
// per-slice level / variation / IR-divisor arrays — so the inner loops are
// flat array sweeps the compiler can vectorize, instead of the PR-3
// pointer-chasing array-of-structs gather. Four execution paths share the
// streams (see DESIGN.md §12):
//
//   fused     ideal datapath whose ADC provably never clips: the
//             shift-and-add over (slice, cycle) telescopes exactly into
//             one sparse integer dot product Σ |q_i|·x_i per polarity.
//   bitslice  ideal 1-bit-DAC datapath that may clip: cell levels are
//             decomposed into bit planes packed 64 cells/word, a cycle's
//             chunk bits pack the same way, and each plane sum becomes
//             popcount(level_plane & chunk_word) · 2^bit.
//   vector    ideal fallback (multi-bit DAC that may clip): per-cycle
//             chunk gather + per-slice int64 multiply-accumulate over the
//             rectangular level stream.
//   general   non-ideal (variation / IR drop): ordered sweep skipping
//             zero levels, bit-identical to the dense float accumulation.
//
// All paths are bit-identical — outputs AND ADC counters — to the dense
// reference and to the retained AoS executor, at every thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "artifact/array_ref.hpp"
#include "msim/adc.hpp"
#include "msim/dac.hpp"
#include "xbar/mapping.hpp"

namespace tinyadc::artifact {
class SectionWriter;
class SectionReader;
}  // namespace tinyadc::artifact

namespace tinyadc::msim {

/// Which executor walks the packed plan (MsimConfig::plan_kernel).
enum class PlanKernel : std::uint8_t {
  kAuto = 0,      ///< best eligible path: fused > bitslice > vector/general
  kAos = 1,       ///< retained PR-3 array-of-structs entry walk
  kSoa = 2,       ///< SoA streams without fusing (vector/general paths)
  kBitslice = 3,  ///< packed bit-plane popcount path when eligible
};

/// Simulation knobs.
struct MsimConfig {
  int adc_bits_override = -1;    ///< −1: per-layer Eq. 1 sizing; ≥0: forced
  double variation_sigma = 0.0;  ///< relative conductance spread (paper: 0.1)
  /// Wire-resistance (IR-drop) coefficient: a cell `r` rows down the
  /// bitline sees its contribution attenuated by 1 / (1 + α·(r+1)/rows·L),
  /// where L is the column's share of the total current (here: the number
  /// of active cells above it, normalized). α = 0 is the ideal wire. CP
  /// pruning reduces the current each bitline aggregates, so pruned
  /// columns suffer proportionally less IR drop — an analog-domain benefit
  /// on top of the ADC saving.
  double ir_drop_alpha = 0.0;
  std::uint64_t seed = 99;       ///< variation draw seed
  /// Execute through the sparsity-packed per-column plan built at
  /// construction (O(l) work per column, l = active rows). `false` keeps
  /// the legacy dense row scan (O(r) per column) — the golden reference the
  /// packed plan is verified against bit-for-bit (outputs *and* ADC
  /// counters) by tests/msim_plan_test.cpp.
  bool use_plan = true;
  /// Plan executor selection. Every kernel produces bit-identical outputs
  /// and counters; non-default values exist for benchmarking and for the
  /// equivalence tests. Kernels degrade gracefully: kBitslice falls back to
  /// the vector/general paths when the datapath is non-ideal or the DAC is
  /// multi-bit.
  PlanKernel plan_kernel = PlanKernel::kAuto;
};

/// Artifact (de)serialization of the simulation knobs. `version` is the
/// PLANS-section payload version: v1 predates plan_kernel (defaults kAuto).
void serialize(const MsimConfig& config, artifact::SectionWriter& w);
MsimConfig deserialize_msim_config(artifact::SectionReader& r,
                                   std::uint32_t version);

/// Aggregate statistics from a simulation run.
struct MsimStats {
  std::int64_t adc_conversions = 0;
  std::int64_t adc_clip_events = 0;
  std::int64_t dac_cycles = 0;
};

/// Simulates one mapped layer's analog MVM datapath.
///
/// Construction snapshots the layer into a sparsity-packed execution plan
/// (see MsimConfig::use_plan), so the mapped layer must not be mutated for
/// the lifetime of the sim. Construction also verifies that the largest
/// shifted ADC code the shift-and-add stage can produce fits the int64
/// accumulator (throws CheckError on overflow-prone configurations instead
/// of silently wrapping).
class AnalogLayerSim {
 public:
  AnalogLayerSim(const xbar::MappedLayer& layer, MsimConfig config);

  /// Writes the compiled execution state — ADC sizing, programmed variation
  /// draws, and the canonical SoA plan streams — into a deployment
  /// artifact, so a redeployment can *load* the plan instead of recompiling
  /// it.
  void serialize(artifact::SectionWriter& w) const;

  /// Reconstructs a simulator from state written by serialize(). Never
  /// invokes the plan compiler (build_plan) or redraws variation: the
  /// restored sim executes exactly the serialized operands, and every
  /// structural invariant of the plan is re-validated against `layer`.
  /// `version` selects the PLANS payload layout: v1 payloads carry the
  /// PR-3 AoS entry arrays and are converted to the SoA streams in place;
  /// v2 payloads carry the SoA streams directly.
  static std::unique_ptr<AnalogLayerSim> deserialize(
      const xbar::MappedLayer& layer, MsimConfig config,
      artifact::SectionReader& r, std::uint32_t version);

  /// Process-wide count of plan compilations (build_plan runs). Lets tests
  /// and benches prove that artifact loading touches no compilation path.
  static std::int64_t plan_compilations();

  /// Integer-domain MVM: unsigned activation codes in, signed column sums
  /// out (same contract as xbar::reference_mvm). Crossbar blocks convert in
  /// parallel ("all arrays in parallel", like the hardware) with a
  /// fixed-order merge, so results and statistics are bit-identical at any
  /// thread count; concurrent mvm() calls on one sim are also safe (the
  /// statistics merge is the only shared mutation and is locked).
  std::vector<std::int64_t> mvm(const std::vector<std::int32_t>& x);

  /// Batched integer MVM: `xs` holds `batch` row-major samples of
  /// layer-rows codes each; the result holds `batch` rows of layer-cols
  /// sums. Equivalent to `batch` mvm() calls (outputs and statistics
  /// bit-identical, dac_cycles advances once per sample), but walks the
  /// plan streams once per (pair, sample) tile with the samples in the
  /// inner loop — the serve path's multi-column fast lane.
  std::vector<std::int64_t> mvm_batch(const std::vector<std::int32_t>& xs,
                                      std::int64_t batch);

  /// Real-domain MVM: quantizes `x_real` with `x_quant`, runs the analog
  /// datapath, and rescales the digital result to real units. Inputs must
  /// be non-negative (post-ReLU activations).
  std::vector<float> mvm_real(const std::vector<float>& x_real,
                              const xbar::QuantParams& x_quant);

  /// Signed-input variant: splits the input into its positive and negative
  /// parts, streams each through the crossbar separately, and subtracts
  /// digitally — the standard two-phase scheme for pre-activation inputs
  /// (e.g. the first conv layer's raw pixels).
  std::vector<float> mvm_real_signed(const std::vector<float>& x_real,
                                     const xbar::QuantParams& x_quant);

  /// Batched real-domain MVM over `batch` row-major samples; handles the
  /// signed two-phase split internally. Bit-identical to per-sample
  /// mvm_real / mvm_real_signed calls.
  std::vector<float> mvm_real_batch(const std::vector<float>& xs,
                                    std::int64_t batch,
                                    const xbar::QuantParams& x_quant,
                                    bool signed_input);

  /// The ADC resolution in use.
  int adc_bits() const { return adc_.bits(); }
  /// Statistics accumulated over all mvm() calls. Unsynchronized view —
  /// only read while no mvm() is in flight.
  const MsimStats& stats() const { return stats_; }
  /// Locked copy of the statistics; safe to call while concurrent mvm()
  /// calls are running (used by the serving engine's live stats snapshot).
  MsimStats stats_snapshot() const;
  /// Issues software prefetches for the heads of this layer's plan streams
  /// (the arrays its execution path sweeps first). A pure read-side hint —
  /// no state changes — used by the pipeline executor to warm the next
  /// stage's plan while the current stage's MVMs are still in flight.
  void prefetch_plan() const;
  /// Zeroes statistics.
  void reset_stats();

 private:
  // One (block, logical column) conversion unit of the retained AoS plan.
  struct PairRef {
    std::int64_t out = 0;   ///< original output column index (y slot)
    std::size_t plane0 = 0; ///< first plane slot: planes are
                            ///< [pair][polarity][slice], contiguous
  };

  // Which inner loop executes the plan (resolved once per layer from the
  // configured kernel and the datapath's properties).
  enum class ExecPath : std::uint8_t { kFused, kBitslice, kVector, kGeneral };

  // Execution state restored from an artifact (see deserialize()): the
  // canonical SoA streams, exactly as finalize_plan() documents them. The
  // stream arrays are ArrayRefs: a v3 payload read from a mapped artifact
  // restores them as borrowed spans over the mapping (zero-copy — the
  // SectionReader's keeper holds the MappedFile alive), while copied loads
  // and pre-v3 payloads restore owned vectors. Either way the executors see
  // the same bytes.
  struct RestoredState {
    int adc_bits = 0;
    bool plan_ideal = false;
    std::vector<std::vector<float>> variation;
    artifact::ArrayRef<std::int64_t> out;
    artifact::ArrayRef<std::uint64_t> seg;
    artifact::ArrayRef<std::int32_t> row;
    artifact::ArrayRef<std::int32_t> mag;
    artifact::ArrayRef<std::int32_t> level;
    artifact::ArrayRef<float> var;
    artifact::ArrayRef<double> denom;
  };

  AnalogLayerSim(const xbar::MappedLayer& layer, MsimConfig config,
                 RestoredState&& restored);
  void check_accumulator_headroom() const;

  void build_plan();
  // Resolves the execution path, derives the retained AoS arrays (kAos) and
  // the packed bit planes (bitslice) from the SoA streams, and computes the
  // fused-path clipping predicate. Shared by build_plan and deserialize so
  // a loaded plan provably dispatches through the same inner loops.
  void finalize_plan();
  void derive_aos_from_soa();
  void build_bit_planes();

  // Per-sample executors: read layer_rows codes at `x`, add column sums
  // into the caller's per-pair slots. All executors convert pairs
  // [p0, p1) and accumulate that range's ADC counters.
  void exec_pairs_soa(const std::int32_t* x, const std::int32_t* chunks,
                      std::int64_t p0, std::int64_t p1,
                      std::int64_t* pair_acc, AdcCounters& counters) const;
  void exec_pairs_aos(const std::int32_t* chunks, std::int64_t p0,
                      std::int64_t p1, std::int64_t* pair_acc,
                      AdcCounters& counters) const;

  std::vector<std::int64_t> mvm_packed(const std::vector<std::int32_t>& x);
  std::vector<std::int64_t> mvm_dense(const std::vector<std::int32_t>& x);
  // Validates one sample's codes and splits them into the flat per-cycle
  // chunk buffer ([t*n + r] layout) when `chunks` is non-null.
  void dac_split(const std::int32_t* x, std::int32_t* chunks) const;
  void merge_stats(const AdcCounters& counters, std::int64_t dac_cycles);

  const xbar::MappedLayer& layer_;
  MsimConfig config_;
  Adc adc_;
  // Per-block per-cell multiplicative variation factors for the magnitude
  // slices, laid out [block][r * cols * slices + c * slices + s].
  std::vector<std::vector<float>> variation_;

  // --- Canonical SoA execution plan (built when config_.use_plan) ---------
  // For every (block, logical column) conversion pair pi and polarity pol,
  // segment k = 2·pi + pol holds that plane-group's active rows in
  // ascending order: soa_seg_ is the CSR offset table over the row slots,
  // soa_row_[i] the flat DAC-chunk (activation) index, soa_mag_[i] the
  // whole weight magnitude |q| (= Σ_s level·2^{s·cell_bits}), and
  // soa_denom_[i] the per-row IR-drop divisor. Slice-resolved streams are
  // rectangular (zeros included) and slice-major per segment:
  // soa_level_/soa_var_ at [soa_seg_[k]·slices + s·len_k + local_i]. The
  // rectangle is bit-safe for the integer paths (zero levels add nothing)
  // and lets every slice of a segment stream contiguously.
  // The streams are ArrayRefs (artifact/array_ref.hpp): plan compilation
  // produces owned vectors, while a mapped v3 artifact load restores them
  // as read-only spans over the file mapping (zero-copy; the ArrayRef's
  // keeper pins the MappedFile). Executors only read, so both storage
  // modes run the same inner loops on the same bytes.
  artifact::ArrayRef<std::int64_t> soa_out_;   // pair → original output col
  artifact::ArrayRef<std::uint64_t> soa_seg_;  // 2·pairs + 1 slot offsets
  artifact::ArrayRef<std::int32_t> soa_row_;   // slot → flat DAC-chunk index
  artifact::ArrayRef<std::int32_t> soa_mag_;   // slot → weight magnitude |q|
  artifact::ArrayRef<std::int32_t> soa_level_; // slot×slice → level (rect.)
  artifact::ArrayRef<float> soa_var_;          // slot×slice → variation
  artifact::ArrayRef<double> soa_denom_;       // slot → IR-drop divisor

  // --- Bit-sliced levels (built for the bitslice path) --------------------
  // Each segment's levels decompose into slices·cell_bits bit planes packed
  // 64 cells per word: word (plane p, word w) of segment k sits at
  // bs_words_[bs_base_[k] + p·W_k + w], W_k = ⌈len_k / 64⌉ words.
  std::vector<std::uint64_t> bs_words_;
  std::vector<std::size_t> bs_base_;    // 2·pairs + 1 word-range offsets

  // --- Retained AoS plan (PR-3 layout; derived when plan_kernel == kAos) --
  std::vector<PairRef> plan_pairs_;
  std::vector<std::size_t> plan_offsets_;  // planes*pairs + 1 offsets
  std::vector<std::int32_t> plan_x_;       // entry → flat DAC-chunk index
  std::vector<std::int32_t> plan_level_;   // entry → cell level (this slice)
  std::vector<float> plan_var_;            // entry → variation factor
  std::vector<double> plan_denom_;         // entry → IR-drop divisor

  bool plan_ideal_ = false;  // no variation and no IR drop: integer datapath
  // Fused-path predicate: the worst-case plane sum (all chunks at full
  // scale) over every (pair, polarity, slice) plane. When it fits the
  // ADC's full scale no conversion can ever clip, so the shift-and-add
  // telescopes exactly (DESIGN.md §12).
  std::int64_t worst_plane_sum_ = 0;
  // Largest worst-case fused per-polarity partial Σ |q|·x — when it fits
  // int32 the fused dot accumulates in 32-bit lanes (twice the SIMD width).
  std::int64_t worst_fused_sum_ = 0;
  ExecPath exec_path_ = ExecPath::kVector;
  // Approximate per-MVM inner-loop work (weighted row slots; see
  // finalize_plan). Plans below the parallel threshold execute their pair
  // sweep inline — the pool's dispatch overhead dominates tiny plans, and
  // the serial sweep is the reference path, so results stay bit-identical.
  std::int64_t plan_work_ = 0;

  MsimStats stats_;
  // Guards stats_/adc_ counter merges under concurrent mvm() calls (held in
  // a unique_ptr so the sim stays movable for make_network_sims).
  std::unique_ptr<std::mutex> stats_mu_;
};

/// Convenience: simulate every layer of a mapped network on one shared
/// config, returning per-layer simulators.
std::vector<AnalogLayerSim> make_network_sims(const xbar::MappedNetwork& net,
                                              const MsimConfig& config);

}  // namespace tinyadc::msim
