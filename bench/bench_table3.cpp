// Reproduces Table III: peak throughput of different architectures in
// GOPs/(s·mm²) and GOPs/W. The four reference rows are the published
// constants the paper quotes; the TinyADC(ISAAC) row is derived from our
// tile cost model with the worst-case (ImageNet/ResNet-18 combined pruning)
// ADC reduction of one bit, as in the paper's reconfigurable design.
//
// Expected shape (paper): TinyADC(ISAAC) 621.19 GOPs/(s·mm²) (+29 %) and
// 879.1 GOPs/W (+40 %) over ISAAC.
#include <cstdio>

#include "hw/throughput.hpp"

int main() {
  using namespace tinyadc::hw;
  const CostConstants constants;

  std::printf("=== Table III: peak throughput of different architectures "
              "===\n\n");
  auto rows = reference_rows();
  rows.push_back(tinyadc_row(constants, 8, 7, AdcReinvestment::kIsoRate));
  std::printf("%s", to_table(rows).c_str());

  const auto isaac = reference_rows().back();
  const auto iso_rate = tinyadc_row(constants, 8, 7, AdcReinvestment::kIsoRate);
  const auto iso_power =
      tinyadc_row(constants, 8, 7, AdcReinvestment::kIsoPower);
  std::printf("\nimprovement over ISAAC (iso-rate ADC):  +%.0f%% GOPs/(s*mm2), "
              "+%.0f%% GOPs/W\n",
              100.0 * (iso_rate.gops_per_s_mm2 / isaac.gops_per_s_mm2 - 1.0),
              100.0 * (iso_rate.gops_per_w / isaac.gops_per_w - 1.0));
  std::printf("improvement over ISAAC (iso-power ADC): +%.0f%% GOPs/(s*mm2), "
              "+%.0f%% GOPs/W\n",
              100.0 * (iso_power.gops_per_s_mm2 / isaac.gops_per_s_mm2 - 1.0),
              100.0 * (iso_power.gops_per_w / isaac.gops_per_w - 1.0));
  std::printf("(paper: +29%% and +40%% — the paper also banks the smaller "
              "intermediate-result datapath,\n which our iso-rate row models "
              "via the width-scaled S&H/shift-add/buffer terms)\n");
  return 0;
}
