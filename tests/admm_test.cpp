// ADMM regularizer: spec building, proximal gradients, dual updates,
// residual convergence (P5), hard pruning and mask enforcement.
#include <gtest/gtest.h>

#include "core/pruner.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "tensor/ops.hpp"

namespace tinyadc::core {
namespace {

std::unique_ptr<nn::Model> tiny_model() {
  nn::ModelConfig cfg;
  cfg.num_classes = 4;
  cfg.image_size = 8;
  cfg.width_mult = 0.0625F;
  return nn::resnet18(cfg);
}

data::DatasetPair tiny_data() {
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.image_size = 8;
  spec.train_per_class = 16;
  spec.test_per_class = 8;
  spec.seed = 55;
  return data::make_synthetic(spec);
}

TEST(Specs, UniformCpSkipsFirstConvByDefault) {
  auto model = tiny_model();
  const auto specs = uniform_cp_specs(*model, 4, {8, 8});
  ASSERT_EQ(specs.size(), model->prunable_views().size());
  EXPECT_FALSE(specs.front().enabled);  // stem conv
  EXPECT_TRUE(specs[1].enabled);
  EXPECT_EQ(specs[1].cp_keep, 2);  // 8 rows / 4x
  // Linear layers excluded by default.
  EXPECT_FALSE(specs.back().enabled);
}

TEST(Specs, KeepFloorsAtOne) {
  auto model = tiny_model();
  const auto specs = uniform_cp_specs(*model, 64, {8, 8});
  EXPECT_EQ(specs[1].cp_keep, 1);  // 8/64 < 1 floors to 1
}

TEST(Specs, RateOneMeansNoConstraint) {
  auto model = tiny_model();
  const auto specs = uniform_cp_specs(*model, 1, {8, 8});
  for (const auto& s : specs) EXPECT_EQ(s.cp_keep, 0);
}

TEST(Specs, OptionsIncludeLinearAndFirstConv) {
  auto model = tiny_model();
  SpecOptions opt;
  opt.skip_first_conv = false;
  opt.include_linear = true;
  const auto specs = uniform_cp_specs(*model, 4, {8, 8}, opt);
  EXPECT_TRUE(specs.front().enabled);
  EXPECT_TRUE(specs.back().enabled);
}

TEST(Specs, AddStructuredRoundsToCrossbarMultiples) {
  auto model = tiny_model();
  auto specs = uniform_cp_specs(*model, 2, {4, 4});
  add_structured(specs, *model, 0.5, 0.25, {4, 4});
  const auto views = model->prunable_views();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (!specs[i].enabled) continue;
    EXPECT_EQ(specs[i].remove_filters % 4, 0);
    EXPECT_EQ(specs[i].remove_shapes % 4, 0);
    EXPECT_LE(specs[i].remove_filters, views[i].cols);
    EXPECT_LE(specs[i].remove_shapes, views[i].rows);
  }
}

TEST(Specs, StructuredNeverRemovesEverything) {
  auto model = tiny_model();
  auto specs = uniform_cp_specs(*model, 2, {4, 4});
  add_structured(specs, *model, 0.99, 0.99, {4, 4});
  const auto views = model->prunable_views();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (!specs[i].enabled) continue;
    EXPECT_LT(specs[i].remove_filters, views[i].cols);
    EXPECT_LT(specs[i].remove_shapes, views[i].rows);
  }
}

TEST(CombinedProjection, SatisfiedAfterProjection) {
  Rng rng(9);
  std::vector<float> data(16 * 8);
  for (auto& v : data) v = rng.normal(0.0F, 1.0F);
  LayerPruneSpec spec;
  spec.enabled = true;
  spec.cp_keep = 2;
  spec.remove_filters = 4;
  spec.remove_shapes = 4;
  const CrossbarDims dims{4, 4};
  project_combined({data.data(), 16, 8}, spec, dims);
  EXPECT_TRUE(satisfies_combined({data.data(), 16, 8}, spec, dims));
}

TEST(CombinedProjection, InactiveSpecIsNoop) {
  std::vector<float> data = {1, 2, 3, 4};
  auto orig = data;
  LayerPruneSpec spec;  // nothing set
  project_combined({data.data(), 2, 2}, spec, {2, 2});
  EXPECT_EQ(data, orig);
  EXPECT_TRUE(satisfies_combined({data.data(), 2, 2}, spec, {2, 2}));
}

TEST(Admm, SpecCountMustMatchViews) {
  auto model = tiny_model();
  std::vector<LayerPruneSpec> too_few(3);
  EXPECT_THROW(AdmmPruner(*model, too_few, {8, 8}, {}), CheckError);
}

TEST(Admm, ProximalGradientPullsTowardZ) {
  auto model = tiny_model();
  auto specs = uniform_cp_specs(*model, 4, {8, 8});
  AdmmConfig cfg;
  cfg.rho = 0.5F;
  AdmmPruner pruner(*model, specs, {8, 8}, cfg);
  pruner.initialize();
  auto views = model->prunable_views();
  // Zero all grads, apply the proximal term, check W-Z direction on an
  // enabled layer: grad = rho (W - Z + 0), nonzero where W was pruned in Z.
  for (nn::Param* p : model->params()) p->zero_grad();
  pruner.add_proximal_gradient();
  double grad_norm = 0.0;
  for (std::size_t i = 0; i < views.size(); ++i) {
    if (!specs[i].active()) {
      EXPECT_NEAR(frobenius_norm(views[i].weight->grad), 0.0, 1e-12);
    } else {
      grad_norm += frobenius_norm(views[i].weight->grad);
    }
  }
  EXPECT_GT(grad_norm, 0.0);
}

/// Distance from the constraint set, relative to the weight norm: the
/// quantity ADMM must drive toward zero so hard pruning is loss-free.
double relative_violation(nn::Model& model,
                          const std::vector<LayerPruneSpec>& specs,
                          CrossbarDims dims) {
  auto views = model.prunable_views();
  double gap_sq = 0.0;
  double norm_sq = 0.0;
  for (std::size_t i = 0; i < views.size(); ++i) {
    if (!specs[i].active()) continue;
    const float* w = views[i].weight->value.data();
    const auto n = static_cast<std::size_t>(views[i].rows * views[i].cols);
    std::vector<float> proj(w, w + n);
    project_combined({proj.data(), views[i].rows, views[i].cols}, specs[i],
                     dims);
    for (std::size_t k = 0; k < n; ++k) {
      const double d = static_cast<double>(w[k]) - proj[k];
      gap_sq += d * d;
      norm_sq += static_cast<double>(w[k]) * w[k];
    }
  }
  return std::sqrt(gap_sq) / (std::sqrt(norm_sq) + 1e-12);
}

TEST(Admm, TrainingDrivesWeightsTowardConstraintSet) {
  auto model = tiny_model();
  const auto data = tiny_data();
  const CrossbarDims dims{8, 8};
  auto specs = uniform_cp_specs(*model, 4, dims);

  // Short pretrain so weights carry signal.
  {
    nn::TrainConfig tc;
    tc.epochs = 3;
    tc.batch_size = 16;
    tc.sgd.lr = 0.05F;
    tc.sgd.total_epochs = 3;
    nn::Trainer trainer(*model, tc);
    trainer.fit(data.train, data.test);
  }
  const double violation_before = relative_violation(*model, specs, dims);

  AdmmConfig acfg;
  acfg.rho = 0.2F;
  AdmmPruner pruner(*model, specs, dims, acfg);
  nn::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 16;
  tc.sgd.lr = 0.02F;
  tc.sgd.schedule = nn::LrSchedule::kConstant;
  nn::Trainer trainer(*model, tc);
  pruner.attach(trainer);
  trainer.fit(data.train, data.test);

  const double violation_after = relative_violation(*model, specs, dims);
  EXPECT_LT(violation_after, violation_before * 0.8);
  // Residual diagnostics were recorded by the epoch hook.
  EXPECT_GT(pruner.residuals().primal, 0.0);
}

TEST(Admm, HardPruneSatisfiesAllConstraints) {
  auto model = tiny_model();
  auto specs = uniform_cp_specs(*model, 8, {8, 8});
  AdmmPruner pruner(*model, specs, {8, 8}, {});
  pruner.initialize();
  EXPECT_FALSE(pruner.pruned());
  pruner.hard_prune();
  EXPECT_TRUE(pruner.pruned());
  auto views = model->prunable_views();
  for (std::size_t i = 0; i < views.size(); ++i) {
    ConstMatrixRef m{views[i].weight->value.data(), views[i].rows,
                     views[i].cols};
    EXPECT_TRUE(satisfies_combined(m, specs[i], {8, 8}))
        << views[i].layer_name;
  }
}

TEST(Admm, EnforceMasksRestoresSparsityAfterUpdate) {
  auto model = tiny_model();
  auto specs = uniform_cp_specs(*model, 8, {8, 8});
  AdmmPruner pruner(*model, specs, {8, 8}, {});
  pruner.initialize();
  pruner.hard_prune();
  // Corrupt weights as an optimizer step would.
  auto views = model->prunable_views();
  for (auto& v : views) {
    float* w = v.weight->value.data();
    for (std::int64_t k = 0; k < v.rows * v.cols; ++k) w[k] += 0.01F;
  }
  // Now the constraint is violated…
  bool any_violation = false;
  for (std::size_t i = 0; i < views.size(); ++i) {
    ConstMatrixRef m{views[i].weight->value.data(), views[i].rows,
                     views[i].cols};
    if (!satisfies_combined(m, specs[i], {8, 8})) any_violation = true;
  }
  EXPECT_TRUE(any_violation);
  // …and enforce_masks restores it.
  pruner.enforce_masks();
  for (std::size_t i = 0; i < views.size(); ++i) {
    ConstMatrixRef m{views[i].weight->value.data(), views[i].rows,
                     views[i].cols};
    EXPECT_TRUE(satisfies_combined(m, specs[i], {8, 8}));
  }
}

TEST(Admm, EnforceBeforeHardPruneThrows) {
  auto model = tiny_model();
  auto specs = uniform_cp_specs(*model, 4, {8, 8});
  AdmmPruner pruner(*model, specs, {8, 8}, {});
  pruner.initialize();
  EXPECT_THROW(pruner.enforce_masks(), CheckError);
}

TEST(Stats, ReportCountsAndRates) {
  auto model = tiny_model();
  auto specs = uniform_cp_specs(*model, 8, {8, 8});
  AdmmPruner pruner(*model, specs, {8, 8}, {});
  pruner.initialize();
  pruner.hard_prune();
  const auto report = build_report(*model, specs, {8, 8});
  EXPECT_EQ(report.layers.size(), model->prunable_views().size());
  EXPECT_GT(report.total, report.nonzero);
  EXPECT_GT(report.pruning_rate(), 1.0);
  // Worst enabled occupancy must equal the CP keep value (dense random
  // weights fill every allowed slot).
  EXPECT_EQ(report.max_col_nonzeros, 1);
  // Table renders without crashing and mentions a layer name.
  const std::string table = to_table(report);
  EXPECT_NE(table.find("layer1.0.conv1"), std::string::npos);
}

}  // namespace
}  // namespace tinyadc::core
