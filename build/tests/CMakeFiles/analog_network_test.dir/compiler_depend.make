# Empty compiler generated dependencies file for analog_network_test.
# This may be replaced when dependencies are built.
