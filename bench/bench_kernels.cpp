// google-benchmark microbenchmarks of the performance-critical kernels:
// GEMM, im2col, the CP projection, crossbar mapping and the analog MVM.
// These bound how large a model the training/simulation benches can afford.
#include <benchmark/benchmark.h>

#include "core/projection.hpp"
#include "msim/analog_mvm.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"

namespace {

using namespace tinyadc;

void BM_Gemm(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(a, false, b, false, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Im2col(benchmark::State& state) {
  const auto size = state.range(0);
  Rng rng(2);
  Tensor img = Tensor::randn({16, size, size}, rng);
  ConvGeometry g{16, size, size, 3, 3, 1, 1};
  for (auto _ : state) {
    Tensor cols = im2col(img, g);
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2col)->Arg(16)->Arg(32);

void BM_CpProjection(benchmark::State& state) {
  const auto rows = state.range(0);
  Rng rng(3);
  std::vector<float> data(static_cast<std::size_t>(rows * 512));
  for (auto _ : state) {
    state.PauseTiming();
    for (auto& v : data) v = rng.normal(0.0F, 1.0F);
    state.ResumeTiming();
    core::project_column_proportional({data.data(), rows, 512}, {128, 128},
                                      8);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_CpProjection)->Arg(128)->Arg(1152)->Arg(4608);

void BM_MapMatrix(benchmark::State& state) {
  const auto rows = state.range(0);
  Rng rng(4);
  Tensor m = Tensor::randn({rows, 512}, rng);
  xbar::MappingConfig cfg;
  for (auto _ : state) {
    auto layer = xbar::map_matrix(m, "bench", cfg);
    benchmark::DoNotOptimize(layer.blocks.data());
  }
}
BENCHMARK(BM_MapMatrix)->Arg(1152)->Arg(4608);

void BM_AnalogMvm(benchmark::State& state) {
  const auto rows = state.range(0);
  Rng rng(5);
  Tensor m = Tensor::randn({rows, 64}, rng);
  xbar::MappingConfig cfg;
  cfg.dims = {128, 128};
  const auto layer = xbar::map_matrix(m, "bench", cfg);
  msim::AnalogLayerSim sim(layer, {});
  std::vector<std::int32_t> x(static_cast<std::size_t>(rows));
  for (auto& v : x) v = static_cast<std::int32_t>(rng.uniform_int(256));
  for (auto _ : state) {
    auto y = sim.mvm(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_AnalogMvm)->Arg(128)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
