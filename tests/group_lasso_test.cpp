// SSL-style group-lasso regularization: gradient correctness, group-norm
// collapse under training, and the harvest-to-structural-removal flow.
#include <gtest/gtest.h>

#include "core/group_lasso.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "tensor/ops.hpp"
#include "xbar/mapping.hpp"

namespace tinyadc::core {
namespace {

std::unique_ptr<nn::Model> tiny_model() {
  nn::ModelConfig mc;
  mc.num_classes = 4;
  mc.image_size = 8;
  mc.width_mult = 0.0625F;
  return nn::resnet18(mc);
}

TEST(GroupLasso, GradientMatchesAnalyticForm) {
  auto model = tiny_model();
  GroupLassoConfig cfg;
  cfg.lambda_filters = 0.5F;
  GroupLassoRegularizer reg(*model, cfg, /*skip_first_conv=*/true);
  for (nn::Param* p : model->params()) p->zero_grad();
  reg.add_group_gradient();
  // Check one regularized layer: grad == λ·w/‖col‖ column-wise.
  auto views = model->prunable_views();
  const auto& v = views[1];  // first non-stem conv
  const float* w = v.weight->value.data();
  const float* g = v.weight->grad.data();
  for (std::int64_t c = 0; c < std::min<std::int64_t>(v.cols, 3); ++c) {
    double norm = 0.0;
    for (std::int64_t r = 0; r < v.rows; ++r) {
      const double val = w[c * v.rows + r];
      norm += val * val;
    }
    norm = std::sqrt(norm);
    for (std::int64_t r = 0; r < std::min<std::int64_t>(v.rows, 5); ++r)
      EXPECT_NEAR(g[c * v.rows + r],
                  0.5F * w[c * v.rows + r] / static_cast<float>(norm), 1e-5F);
  }
  // Skipped layers (stem, linears) untouched.
  EXPECT_NEAR(frobenius_norm(views[0].weight->grad), 0.0, 1e-12);
  EXPECT_NEAR(frobenius_norm(views.back().weight->grad), 0.0, 1e-12);
}

TEST(GroupLasso, FiniteDifferenceOnPenalty) {
  // The analytic gradient must match d(penalty)/dw numerically.
  auto model = tiny_model();
  GroupLassoConfig cfg;
  cfg.lambda_filters = 0.3F;
  cfg.lambda_shapes = 0.2F;
  GroupLassoRegularizer reg(*model, cfg, true);
  auto views = model->prunable_views();
  auto& v = views[2];
  for (nn::Param* p : model->params()) p->zero_grad();
  reg.add_group_gradient();
  const float eps = 1e-3F;
  for (std::int64_t k = 0; k < 5; ++k) {
    float* w = v.weight->value.data();
    const float orig = w[k];
    w[k] = orig + eps;
    const double up = reg.penalty();
    w[k] = orig - eps;
    const double down = reg.penalty();
    w[k] = orig;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(v.weight->grad.at(k), numeric, 5e-3);
  }
}

TEST(GroupLasso, TrainingCollapsesGroupNormsVsControl) {
  // Twin experiment: identical init/data/schedule, one run regularized.
  // The regularized twin must end with a smaller total group norm — the
  // shrinkage SSL relies on — while still learning the task.
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.image_size = 8;
  spec.train_per_class = 16;
  spec.test_per_class = 6;
  spec.seed = 37;
  const auto data = data::make_synthetic(spec);

  auto with_lasso = tiny_model();
  auto control = tiny_model();
  GroupLassoConfig cfg;
  cfg.lambda_filters = 0.02F;
  GroupLassoRegularizer reg(*with_lasso, cfg, true);
  GroupLassoRegularizer probe(*control, cfg, true);  // measurement only

  nn::TrainConfig tc;
  tc.epochs = 10;
  tc.batch_size = 16;
  tc.sgd.lr = 0.05F;
  tc.sgd.total_epochs = 10;
  {
    nn::Trainer trainer(*with_lasso, tc);
    reg.attach(trainer);
    trainer.fit(data.train, data.test);
    EXPECT_GT(trainer.evaluate(data.test), 0.45);
  }
  {
    nn::Trainer trainer(*control, tc);
    trainer.fit(data.train, data.test);
  }
  EXPECT_LT(reg.penalty(), probe.penalty());
}

TEST(GroupLasso, HarvestRoundsAndZeroesGroups) {
  auto model = tiny_model();
  // Manufacture collapsed groups: shrink half the columns of a layer wide
  // enough that crossbar rounding (and the keep-one-crossbar floor) still
  // leaves removable groups.
  auto views = model->prunable_views();
  std::size_t target = 0;
  for (std::size_t i = 1; i < views.size(); ++i)
    if (views[i].is_conv && views[i].cols >= 16) {
      target = i;
      break;
    }
  ASSERT_GT(target, 0U);
  auto& v = views[target];
  float* w = v.weight->value.data();
  for (std::int64_t c = 0; c < v.cols / 2; ++c)
    for (std::int64_t r = 0; r < v.rows; ++r) w[c * v.rows + r] *= 1e-5F;

  GroupLassoConfig cfg;
  GroupLassoRegularizer reg(*model, cfg, true);
  const auto specs = reg.harvest(/*relative_threshold=*/0.1, {4, 4});
  // The manufactured layer reports crossbar-rounded removals…
  EXPECT_GT(specs[target].remove_filters, 0);
  EXPECT_EQ(specs[target].remove_filters % 4, 0);
  // …and its columns are now exactly zero, so the mapper compacts them.
  xbar::MappingConfig map_cfg;
  map_cfg.dims = {4, 4};
  const auto net = xbar::map_model(*model, map_cfg, specs);
  EXPECT_GT(net.crossbar_reduction(), 0.0);
}

TEST(GroupLasso, ValidatesConfig) {
  auto model = tiny_model();
  GroupLassoConfig bad;
  bad.lambda_filters = -1.0F;
  EXPECT_THROW(GroupLassoRegularizer(*model, bad), CheckError);
}

}  // namespace
}  // namespace tinyadc::core
