// Whole-network analog inference: hook mechanics, calibration, end-to-end
// accuracy of the simulated chip vs the float model, variation effects.
#include <gtest/gtest.h>

#include "core/pruner.hpp"
#include "data/synthetic.hpp"
#include "msim/analog_network.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"
#include "tensor/ops.hpp"

namespace tinyadc::msim {
namespace {

struct Fixture {
  std::unique_ptr<nn::Model> model;
  data::DatasetPair data;
  double float_accuracy = 0.0;

  Fixture() {
    nn::ModelConfig mc;
    mc.num_classes = 4;
    mc.image_size = 8;
    mc.width_mult = 0.0625F;
    model = nn::resnet18(mc);

    data::SyntheticSpec spec;
    spec.num_classes = 4;
    spec.image_size = 8;
    spec.train_per_class = 20;
    spec.test_per_class = 6;
    spec.noise = 0.15F;
    spec.seed = 71;
    data = data::make_synthetic(spec);

    nn::TrainConfig tc;
    tc.epochs = 10;
    tc.batch_size = 16;
    tc.sgd.lr = 0.05F;
    tc.sgd.total_epochs = 10;
    nn::Trainer trainer(*model, tc);
    trainer.fit(data.train, data.test);
    float_accuracy = trainer.evaluate(data.test);
  }
};

xbar::MappingConfig small_map() {
  xbar::MappingConfig cfg;
  cfg.dims = {16, 16};
  return cfg;
}

TEST(MvmHook, NullOptFallsBackToFloatPath) {
  Rng rng(1);
  nn::Conv2d conv("c", 2, 3, 3, 1, 1, false, rng);
  Tensor x = Tensor::randn({1, 2, 4, 4}, rng);
  const Tensor expected = conv.forward(x, false);
  int calls = 0;
  conv.set_mvm_hook([&calls](const Tensor&) -> std::optional<Tensor> {
    ++calls;
    return std::nullopt;
  });
  const Tensor got = conv.forward(x, false);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(allclose(got, expected, 0.0F));
}

TEST(MvmHook, TrainingPathIgnoresHook) {
  Rng rng(2);
  nn::Linear fc("fc", 4, 2, false, rng);
  int calls = 0;
  fc.set_mvm_hook([&calls](const Tensor&) -> std::optional<Tensor> {
    ++calls;
    return std::nullopt;
  });
  Tensor x = Tensor::randn({2, 4}, rng);
  fc.forward(x, /*training=*/true);
  EXPECT_EQ(calls, 0);
}

TEST(MvmHook, HookResultReplacesGemm) {
  Rng rng(3);
  nn::Linear fc("fc", 3, 2, false, rng);
  fc.set_mvm_hook([](const Tensor& input) -> std::optional<Tensor> {
    return Tensor::full({input.dim(0), 2}, 42.0F);
  });
  Tensor x = Tensor::randn({2, 3}, rng);
  const Tensor y = fc.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 42.0F);
  EXPECT_FLOAT_EQ(y.at(1, 1), 42.0F);
}

TEST(AnalogNetwork, RequiresCalibration) {
  Fixture f;
  auto net = xbar::map_model(*f.model, small_map());
  AnalogNetwork chip(*f.model, net, {});
  EXPECT_FALSE(chip.calibrated());
  EXPECT_THROW(chip.forward(f.data.test.images), CheckError);
}

TEST(AnalogNetwork, MatchesFloatAccuracyWithIdealComponents) {
  Fixture f;
  auto net = xbar::map_model(*f.model, small_map());
  AnalogNetwork chip(*f.model, net, {});
  chip.calibrate(f.data.train);
  const double analog_acc = chip.evaluate(f.data.test);
  // With Eq. 1 ADCs and no variation, the only gap is 8-bit weight and
  // activation quantization — a few points at most.
  EXPECT_GT(analog_acc, f.float_accuracy - 0.15);
  // ADC conversions actually happened on every layer.
  for (const auto& sim : chip.sims())
    EXPECT_GT(sim->stats().adc_conversions, 0);
}

TEST(AnalogNetwork, DestructorRestoresFloatPath) {
  Fixture f;
  nn::TrainConfig tc;
  nn::Trainer trainer(*f.model, tc);
  const double before = trainer.evaluate(f.data.test);
  {
    auto net = xbar::map_model(*f.model, small_map());
    AnalogNetwork chip(*f.model, net, {});
    chip.calibrate(f.data.train);
  }
  EXPECT_DOUBLE_EQ(trainer.evaluate(f.data.test), before);
}

TEST(AnalogNetwork, FirstLayerDetectedAsSignedInput) {
  Fixture f;
  auto net = xbar::map_model(*f.model, small_map());
  AnalogNetwork chip(*f.model, net, {});
  chip.calibrate(f.data.train);
  // Raw pixels are signed; post-ReLU inner activations are not. The
  // calibration pass must have noticed for at least the first layer and
  // the analog pass must still classify sensibly.
  EXPECT_GT(chip.evaluate(f.data.test), 0.4);
}

TEST(AnalogNetwork, ModerateVariationDegradesGracefully) {
  Fixture f;
  auto net = xbar::map_model(*f.model, small_map());
  // The paper's 10% process variation.
  MsimConfig cfg;
  cfg.variation_sigma = 0.10;
  AnalogNetwork chip(*f.model, net, cfg);
  chip.calibrate(f.data.train);
  const double with_variation = chip.evaluate(f.data.test);
  EXPECT_GT(with_variation, 0.3);  // still far above chance (0.25)
}

TEST(AnalogNetwork, CpPrunedChipStillClassifies) {
  Fixture f;
  core::PipelineConfig pcfg;
  pcfg.xbar = {16, 16};
  pcfg.pretrain.epochs = 0;
  pcfg.admm.epochs = 4;
  pcfg.admm.batch_size = 16;
  pcfg.admm.sgd.lr = 0.02F;
  pcfg.retrain.epochs = 4;
  pcfg.retrain.batch_size = 16;
  pcfg.retrain.sgd.lr = 0.01F;
  auto specs = core::uniform_cp_specs(*f.model, 4, pcfg.xbar);
  core::run_pipeline(*f.model, f.data.train, f.data.test, specs, pcfg);

  auto net = xbar::map_model(*f.model, small_map(), specs);
  AnalogNetwork chip(*f.model, net, {});
  chip.calibrate(f.data.train);
  const double analog_acc = chip.evaluate(f.data.test);
  EXPECT_GT(analog_acc, 0.4);
  // The pruned chip's post-first-layer ADCs are smaller than dense.
  const int dense_bits =
      xbar::required_adc_bits(1, 2, small_map().dims.rows);
  bool any_smaller = false;
  for (std::size_t i = 1; i < chip.sims().size(); ++i)
    if (chip.sims()[i]->adc_bits() < dense_bits) any_smaller = true;
  EXPECT_TRUE(any_smaller);
}

TEST(AnalogNetwork, RejectsMismatchedMapping) {
  Fixture f;
  nn::ModelConfig other;
  other.num_classes = 4;
  other.image_size = 8;
  other.width_mult = 0.0625F;
  auto vgg = nn::vgg16(other);
  auto net = xbar::map_model(*vgg, small_map());
  EXPECT_THROW(AnalogNetwork(*f.model, net, {}), CheckError);
}

}  // namespace
}  // namespace tinyadc::msim
