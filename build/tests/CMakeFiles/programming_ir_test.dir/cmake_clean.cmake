file(REMOVE_RECURSE
  "CMakeFiles/programming_ir_test.dir/programming_ir_test.cpp.o"
  "CMakeFiles/programming_ir_test.dir/programming_ir_test.cpp.o.d"
  "programming_ir_test"
  "programming_ir_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/programming_ir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
