// Versioned, sectioned deployment-artifact container (the `.tadc` format).
//
// Layout (little-endian; the writer starts every section payload 64-byte
// aligned, the reader requires at least the original 8):
//
//   0x00  magic  "TADCDEP\0"                     (8 bytes)
//   0x08  u32 format version | u32 section count (8 bytes)
//   0x10  section table: count × { char tag[8] | u64 offset | u64 length }
//   ...   section payloads, each starting at an aligned offset,
//         zero-padded up to the next section
//
// The flat table with aligned payloads is mmap-friendly: MappedFile +
// the mapped ArtifactFile constructor map the file once and hand out
// zero-copy spans per section, and bulk fields (weight tensors, packed
// execution plans) are stored as raw little-endian arrays — vec_aligned
// arrays additionally pad their data to 64-byte file offsets so a mapped
// reader can return them as cache-line-aligned views (DESIGN.md §14).
// The portable loader reads the file into one buffer and bounds-checks
// every access through SectionReader, so truncated or malformed artifacts
// fail with an explicit CheckError instead of bad_alloc or silent garbage.
//
// Versioning/compat policy: the container version only changes when the
// header/table layout changes. Section payloads are versioned by their
// producer (each domain section starts with its own u32 version), so adding
// a new section or bumping one section's layout never invalidates the rest.
// Readers reject unknown container versions and unknown *required* section
// versions; unknown extra sections are ignored.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "artifact/array_ref.hpp"
#include "tensor/tensor.hpp"

namespace tinyadc::artifact {

class MappedFile;

/// Container-level format version (header + section table layout).
constexpr std::uint32_t kFormatVersion = 1;

/// Alignment of every section start and every vec_aligned payload, chosen
/// so mapped spans land on cache-line (and SIMD-register) boundaries. The
/// container keeps its original 8-byte *minimum* (old readers only check
/// %8), but the writer has laid sections out 64-aligned since payload v3.
constexpr std::size_t kPayloadAlign = 64;

/// Magic at offset 0 of every artifact file.
constexpr char kMagic[8] = {'T', 'A', 'D', 'C', 'D', 'E', 'P', '\0'};

/// Upper bound on sections per artifact (sanity cap for the reader).
constexpr std::uint32_t kMaxSections = 256;

/// Accumulates one section's payload in memory with typed append helpers.
/// All multi-byte fields are written in the host's (little-endian) byte
/// order; bulk arrays are written raw so loads are a single memcpy.
class SectionWriter {
 public:
  /// Appends one trivially-copyable value.
  template <typename T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>, "pod() needs a POD type");
    const auto* p = reinterpret_cast<const char*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  /// Appends a string as u64 length + raw bytes.
  void str(const std::string& s);

  /// Appends a vector of trivially-copyable elements as u64 count + raw
  /// element bytes.
  template <typename T>
  void vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>, "vec() needs POD elements");
    pod(static_cast<std::uint64_t>(v.size()));
    const auto* p = reinterpret_cast<const char*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size() * sizeof(T));
  }

  /// Appends an array as u64 count, zero padding up to the next 64-byte
  /// boundary, then raw element bytes — the v3 "aligned array" encoding.
  /// Because every section payload starts 64-aligned in the file, padding
  /// relative to the payload start equals padding relative to the file, so
  /// a mapped reader can hand the data out as an aligned zero-copy span.
  template <typename T>
  void vec_aligned(const T* p, std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "vec_aligned() needs POD elements");
    pod(static_cast<std::uint64_t>(n));
    buf_.resize((buf_.size() + kPayloadAlign - 1) / kPayloadAlign *
                    kPayloadAlign,
                '\0');
    const auto* raw = reinterpret_cast<const char*>(p);
    buf_.insert(buf_.end(), raw, raw + n * sizeof(T));
  }
  template <typename T>
  void vec_aligned(const ArrayRef<T>& v) {
    vec_aligned(v.data(), v.size());
  }
  template <typename T>
  void vec_aligned(const std::vector<T>& v) {
    vec_aligned(v.data(), v.size());
  }

  /// Appends a vector<bool> as u64 count + one byte per element.
  void vec_bool(const std::vector<bool>& v);

  /// Appends a tensor as u32 ndim + i64 dims + raw f32 data.
  void tensor(const Tensor& t);

  /// The accumulated payload.
  const std::vector<char>& bytes() const { return buf_; }

 private:
  std::vector<char> buf_;
};

/// Bounds-checked cursor over one section's payload. Every accessor
/// validates the remaining byte budget *before* allocating, so absurd
/// counts from corrupt files raise CheckError instead of bad_alloc.
class SectionReader {
 public:
  /// Views `size` bytes at `data` (not owned); `name` labels errors.
  /// `abs_offset` is the payload's byte offset within the artifact file
  /// (0 for standalone buffers) — vec_aligned padding is defined relative
  /// to the file, so the reader needs it to find the payload boundaries.
  /// A non-null `keeper` marks the buffer as memory-mapped: arr_aligned()
  /// then returns borrowed spans pinned by the keeper instead of copies.
  SectionReader(const char* data, std::size_t size, std::string name,
                std::uint64_t abs_offset = 0,
                std::shared_ptr<const void> keeper = nullptr);

  /// Reads one trivially-copyable value.
  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>, "pod() needs a POD type");
    need(sizeof(T), "value");
    T v{};
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  /// Reads a string written by SectionWriter::str.
  std::string str();

  /// Reads a vector written by SectionWriter::vec. The element count is
  /// validated against the bytes actually present.
  template <typename T>
  std::vector<T> vec() {
    static_assert(std::is_trivially_copyable_v<T>, "vec() needs POD elements");
    const std::size_t count = checked_count(sizeof(T), "array");
    std::vector<T> v(count);
    std::memcpy(v.data(), data_ + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
    return v;
  }

  /// Reads an array written by SectionWriter::vec_aligned. On a mapped
  /// buffer (keeper set) this returns a borrowed zero-copy span over the
  /// mapping — after validating that the payload really is 64-byte aligned
  /// (a tampered section offset or pad must raise CheckError, never hand
  /// out a misaligned span). On a plain buffer it returns an owned copy.
  template <typename T>
  ArrayRef<T> arr_aligned(const char* what = "aligned array") {
    static_assert(std::is_trivially_copyable_v<T>,
                  "arr_aligned() needs POD elements");
    const std::size_t count = aligned_count(sizeof(T), alignof(T), what);
    ArrayRef<T> out;
    if (keeper_ != nullptr) {
      out = ArrayRef<T>(reinterpret_cast<const T*>(data_ + pos_), count,
                        keeper_);
    } else {
      std::vector<T> v(count);
      std::memcpy(v.data(), data_ + pos_, count * sizeof(T));
      out = ArrayRef<T>(std::move(v));
    }
    pos_ += count * sizeof(T);
    return out;
  }

  /// Reads an array written by SectionWriter::vec_aligned as an owned
  /// vector (the copy/mutation path), regardless of mapping.
  template <typename T>
  std::vector<T> vec_aligned(const char* what = "aligned array") {
    static_assert(std::is_trivially_copyable_v<T>,
                  "vec_aligned() needs POD elements");
    const std::size_t count = aligned_count(sizeof(T), alignof(T), what);
    std::vector<T> v(count);
    std::memcpy(v.data(), data_ + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
    return v;
  }

  /// True when the underlying buffer is a pinned mapping (arr_aligned
  /// returns zero-copy spans).
  bool mapped() const { return keeper_ != nullptr; }

  /// Reads a vector<bool> written by SectionWriter::vec_bool.
  std::vector<bool> vec_bool();

  /// Reads a tensor written by SectionWriter::tensor, rejecting absurd
  /// ranks/extents and dimension products before allocating.
  Tensor tensor();

  /// Bytes not yet consumed.
  std::size_t remaining() const { return size_ - pos_; }

  /// Section label (for error messages in domain deserializers).
  const std::string& name() const { return name_; }

 private:
  /// Validates that `n` more bytes exist (`what` labels the error).
  void need(std::size_t n, const char* what) const;
  /// Reads a u64 count and validates count·elem_size against the budget.
  std::size_t checked_count(std::size_t elem_size, const char* what);
  /// Reads a u64 count, skips (and verifies) the zero padding up to the
  /// next 64-byte file boundary, validates the element budget and — for
  /// mapped buffers — that the resulting span pointer is truly aligned.
  std::size_t aligned_count(std::size_t elem_size, std::size_t elem_align,
                            const char* what);

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::string name_;
  std::uint64_t abs_offset_ = 0;
  std::shared_ptr<const void> keeper_;
};

/// Assembles an artifact: sections are registered in order, then finish()
/// lays them out with 8-byte-aligned offsets and writes the file.
class ArtifactWriter {
 public:
  /// Opens a writer targeting `path` (written on finish()).
  explicit ArtifactWriter(std::string path);

  /// Starts (or resumes) the section tagged `tag` (1–8 bytes, unique) and
  /// returns its payload writer.
  SectionWriter& section(const std::string& tag);

  /// Writes header, table and payloads to the target path; throws
  /// CheckError on I/O failure. Must be called exactly once.
  void finish();

 private:
  std::string path_;
  std::vector<std::pair<std::string, SectionWriter>> sections_;
  bool finished_ = false;
};

/// A loaded artifact: the file bytes plus the validated section table.
/// Two modes share all validation: the portable constructor slurps the
/// file into an owned buffer (section readers copy); the mapped
/// constructor wraps a MappedFile, and section readers then hand out
/// zero-copy spans pinned by the shared mapping.
class ArtifactFile {
 public:
  /// Reads and validates `path` (magic, version, table bounds/alignment).
  explicit ArtifactFile(const std::string& path);

  /// Validates an already-mapped artifact; readers borrow from `map`.
  explicit ArtifactFile(std::shared_ptr<MappedFile> map);

  /// True if a section tagged `tag` exists.
  bool has(const std::string& tag) const;

  /// Bounds-checked reader over the section tagged `tag`; throws
  /// CheckError when the section is missing.
  SectionReader section(const std::string& tag) const;

  /// [offset, length) of a section within the file (for streaming
  /// advice); throws CheckError when the section is missing.
  std::pair<std::uint64_t, std::uint64_t> extent(const std::string& tag) const;

  /// Raw payload bytes of a section (a view into the file buffer or the
  /// mapping; valid while this ArtifactFile lives). Throws CheckError when
  /// the section is missing. Reading a mapped section faults its pages in.
  std::pair<const char*, std::size_t> raw(const std::string& tag) const;

  /// Total size of the artifact file in bytes.
  std::uint64_t file_size() const { return size_; }

  /// Container version of the loaded file.
  std::uint32_t version() const { return version_; }

  /// Section tags in file order.
  std::vector<std::string> tags() const;

  /// The mapping backing this file (null in portable mode).
  const std::shared_ptr<MappedFile>& mapping() const { return map_; }

 private:
  struct Entry {
    std::string tag;
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
  };

  /// Shared header/table validation over [base, base+size).
  void parse(const char* base, std::size_t size);
  const Entry& find(const std::string& tag) const;

  std::vector<char> data_;                // portable mode: owned bytes
  std::shared_ptr<MappedFile> map_;       // mapped mode: pinned mapping
  const char* base_ = nullptr;            // either data_.data() or map base
  std::size_t size_ = 0;
  std::vector<Entry> entries_;
  std::uint32_t version_ = 0;
  std::string path_;
};

}  // namespace tinyadc::artifact
