// VTEAM-style ReRAM device model (Kvatinsky et al., TCAS-II 2015).
//
// The VTEAM model describes a voltage-controlled memristor whose internal
// state variable s ∈ [0, 1] moves only when the applied voltage exceeds
// threshold (v_off for RESET, v_on for SET), with polynomial rate:
//     ds/dt = k_off · (v/v_off − 1)^α_off · f(s)   for v > v_off > 0
//     ds/dt = k_on  · (v/v_on − 1)^α_on  · f(s)    for v < v_on < 0
//     ds/dt = 0 otherwise,
// and linear ion-drift I–V: G(s) = G_off + s · (G_on − G_off).
// We use it for (a) deriving the MLC conductance levels the functional
// simulator reads, (b) programming-time estimates, and (c) the 10 % process
// variation the paper applies during evaluation.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/rng.hpp"

namespace tinyadc::xbar {

/// VTEAM device parameters (defaults: TaOx-class device at 32 nm, values in
/// SI units, consistent with the ranges published in the VTEAM paper).
struct VteamParams {
  double r_on = 10e3;     ///< low-resistance state, Ω
  double r_off = 1e6;     ///< high-resistance state, Ω
  double v_on = -0.7;     ///< SET threshold (negative polarity), V
  double v_off = 0.5;     ///< RESET threshold, V
  double k_on = -1e4;     ///< SET rate coefficient, 1/s (negative: s grows)
  double k_off = 5e3;     ///< RESET rate coefficient, 1/s
  double alpha_on = 3.0;  ///< SET nonlinearity exponent
  double alpha_off = 3.0; ///< RESET nonlinearity exponent

  /// G_on = 1/r_on.
  double g_on() const { return 1.0 / r_on; }
  /// G_off = 1/r_off.
  double g_off() const { return 1.0 / r_off; }
};

/// A single VTEAM cell with internal state s ∈ [0, 1].
class VteamCell {
 public:
  explicit VteamCell(VteamParams params = {}, double initial_state = 0.0);

  /// Conductance at the current state (linear ion drift).
  double conductance() const;
  /// Current for an applied read voltage (I = G·V).
  double current(double voltage) const { return conductance() * voltage; }

  /// Integrates the state equation for `dt` seconds at `voltage` (explicit
  /// Euler with Joglekar-style window f(s) = 1 − (2s − 1)²).
  void step(double voltage, double dt);

  /// Internal state variable.
  double state() const { return state_; }
  /// Forces the state (used when programming to a target MLC level).
  void set_state(double s);

  const VteamParams& params() const { return params_; }

 private:
  VteamParams params_;
  double state_;
};

/// Evenly-spaced MLC conductance levels for a `cell_bits`-bit cell:
/// level 0 → G_off (cell fully off, a pruned/zero weight) through
/// level 2^bits−1 → G_on. Returned in siemens.
std::vector<double> mlc_conductance_levels(const VteamParams& params,
                                           int cell_bits);

/// Internal state s that realizes a given MLC level.
double state_for_level(const VteamParams& params, int level, int cell_bits);

/// Applies multiplicative lognormal process variation (σ = `sigma`, paper
/// uses 10 %) to a nominal conductance.
double perturbed_conductance(double nominal, double sigma, Rng& rng);

/// Time (s) to program a cell from s = 0 to the state of `level`, by
/// integrating the VTEAM SET dynamics at `program_voltage` (< v_on).
double programming_time(const VteamParams& params, int level, int cell_bits,
                        double program_voltage, double dt = 1e-7);

}  // namespace tinyadc::xbar
