# Empty dependencies file for bench_adc_bits.
# This may be replaced when dependencies are built.
