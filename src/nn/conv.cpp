#include "nn/conv.hpp"

#include "nn/init.hpp"
#include "runtime/parallel.hpp"
#include "tensor/gemm.hpp"

namespace tinyadc::nn {

namespace {

/// Reallocates `t` only when the element count changes (grow-only in the
/// steady state: training steps with a fixed batch size reuse the buffer).
void ensure_workspace(Tensor& t, Shape shape) {
  if (t.numel() != numel_of(shape)) {
    t = Tensor(std::move(shape));
  } else if (t.shape() != shape) {
    t = t.reshape(std::move(shape));
  }
}

}  // namespace

Conv2d::Conv2d(std::string name, std::int64_t in_channels,
               std::int64_t out_channels, std::int64_t kernel,
               std::int64_t stride, std::int64_t padding, bool bias, Rng& rng)
    : Conv2d(Uninit{}, std::move(name), in_channels, out_channels, kernel,
             stride, padding, bias) {
  kaiming_normal_(weight_.value, in_channels_ * kernel_ * kernel_, rng);
}

Conv2d::Conv2d(Uninit, std::string name, std::int64_t in_channels,
               std::int64_t out_channels, std::int64_t kernel,
               std::int64_t stride, std::int64_t padding, bool bias)
    : Layer(std::move(name)),
      in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias) {
  TINYADC_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0,
                "invalid Conv2d dims");
  Tensor w({out_channels_, in_channels_, kernel_, kernel_});
  weight_ = Param(Layer::name() + ".weight", std::move(w));
  if (has_bias_) {
    bias_ = Param(Layer::name() + ".bias", Tensor::zeros({out_channels_}),
                  /*apply_decay=*/false);
  }
}

Param& Conv2d::bias() {
  TINYADC_CHECK(has_bias_, "Conv2d " << name() << " has no bias");
  return bias_;
}

std::vector<Param*> Conv2d::params() {
  std::vector<Param*> ps{&weight_};
  if (has_bias_) ps.push_back(&bias_);
  return ps;
}

void Conv2d::set_batched(bool batched) {
  if (use_batched_ != batched) invalidate_cache();
  use_batched_ = batched;
}

void Conv2d::invalidate_cache() {
  cache_valid_ = false;
  cols_.clear();
}

void Conv2d::release_workspace() {
  invalidate_cache();
  ws_cols_ = Tensor();
  ws_out2d_ = Tensor();
  ws_gemm_.a.clear();
  ws_gemm_.a.shrink_to_fit();
  ws_gemm_.b.clear();
  ws_gemm_.b.shrink_to_fit();
  cols_.shrink_to_fit();
}

Tensor Conv2d::forward(const Tensor& input, bool training) {
  TINYADC_CHECK(input.ndim() == 4 && input.dim(1) == in_channels_,
                "Conv2d " << name() << ": bad input "
                          << shape_to_string(input.shape()));
  geom_ = ConvGeometry{in_channels_, input.dim(2), input.dim(3),
                       kernel_,      kernel_,      stride_,
                       padding_};
  input_shape_ = input.shape();
  const bool use_hook = !training && mvm_hook_ != nullptr;
  // The MVM hook consumes one per-sample patch matrix at a time (the analog
  // backend's contract), so hooked inference always takes the per-sample
  // path; everything else runs batched unless the reference path was
  // requested explicitly.
  if (!use_hook && use_batched_) return forward_batched(input, training);
  return forward_reference(input, training, use_hook);
}

Tensor Conv2d::forward_batched(const Tensor& input, bool training) {
  const std::int64_t batch = input.dim(0);
  const std::int64_t oh = geom_.out_h();
  const std::int64_t ow = geom_.out_w();
  const std::int64_t p = oh * ow;
  const std::int64_t bp = batch * p;
  const std::int64_t rows = geom_.patch_rows();

  ensure_workspace(ws_cols_, {rows, bp});
  im2col_batch(input.data(), batch, geom_, ws_cols_.data());

  const Tensor w2d = weight_.value.reshape({out_channels_, rows});
  ensure_workspace(ws_out2d_, {out_channels_, bp});
  gemm(w2d, false, ws_cols_, false, ws_out2d_);

  // Scatter [F, N·p] → (N, F, oh, ow), folding the bias in. Samples write
  // disjoint output blocks.
  Tensor output({batch, out_channels_, oh, ow});
  float* dst_base = output.data();
  const float* src_base = ws_out2d_.data();
  const float* b = has_bias_ ? bias_.value.data() : nullptr;
  runtime::parallel_for(0, batch, 1, [&](std::int64_t n0, std::int64_t n1) {
    for (std::int64_t n = n0; n < n1; ++n) {
      float* dst = dst_base + n * out_channels_ * p;
      for (std::int64_t f = 0; f < out_channels_; ++f) {
        const float* src = src_base + f * bp + n * p;
        const float bias_f = b != nullptr ? b[f] : 0.0F;
        for (std::int64_t i = 0; i < p; ++i) dst[f * p + i] = src[i] + bias_f;
      }
    }
  });

  cols_.clear();
  // Inference must not leave a stale training cache behind: a backward
  // without a fresh training forward asserts instead of reusing old cols.
  cache_valid_ = training;
  return output;
}

Tensor Conv2d::forward_reference(const Tensor& input, bool training,
                                 bool use_hook) {
  const std::int64_t batch = input.dim(0);
  const std::int64_t oh = geom_.out_h();
  const std::int64_t ow = geom_.out_w();
  const std::int64_t p = oh * ow;

  const Tensor w2d = weight_.value.reshape({out_channels_, geom_.patch_rows()});
  Tensor output({batch, out_channels_, oh, ow});
  const std::int64_t per_image = in_channels_ * geom_.in_h * geom_.in_w;
  if (training) {
    cols_.assign(static_cast<std::size_t>(batch), Tensor());
  } else {
    cols_.clear();
  }
  cache_valid_ = false;

  const auto run_sample = [&](std::int64_t n) {
    // View one sample as a 3-D image (copy: slices are not views here).
    Tensor image({in_channels_, geom_.in_h, geom_.in_w});
    std::copy(input.data() + n * per_image, input.data() + (n + 1) * per_image,
              image.data());
    Tensor cols = im2col(image, geom_);
    Tensor out2d({out_channels_, p});
    std::optional<Tensor> hooked;
    if (use_hook) hooked = mvm_hook_(cols);
    if (hooked.has_value()) {
      TINYADC_CHECK(hooked->numel() == out2d.numel(),
                    "Conv2d " << name() << ": MVM hook returned "
                              << shape_to_string(hooked->shape())
                              << ", expected "
                              << shape_to_string(out2d.shape()));
      out2d.copy_from(*hooked);
    } else {
      gemm(w2d, false, cols, false, out2d);
    }
    float* dst = output.data() + n * out_channels_ * p;
    const float* src = out2d.data();
    if (has_bias_) {
      const float* b = bias_.value.data();
      for (std::int64_t f = 0; f < out_channels_; ++f)
        for (std::int64_t i = 0; i < p; ++i)
          dst[f * p + i] = src[f * p + i] + b[f];
    } else {
      std::copy(src, src + out_channels_ * p, dst);
    }
    if (training) cols_[static_cast<std::size_t>(n)] = std::move(cols);
  };

  if (use_hook) {
    // Hooked inference stays serial here; the analog backend parallelizes
    // inside the hook (per pixel / per sample — see msim::AnalogNetwork).
    for (std::int64_t n = 0; n < batch; ++n) run_sample(n);
  } else {
    // Samples are independent (disjoint output and cache slots), so the
    // batch fans out; the per-sample gemm then runs inline on its worker.
    runtime::parallel_for(0, batch, 1,
                          [&](std::int64_t n0, std::int64_t n1) {
                            for (std::int64_t n = n0; n < n1; ++n)
                              run_sample(n);
                          });
  }
  return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  if (use_batched_) return backward_batched(grad_output);
  return backward_reference(grad_output);
}

Tensor Conv2d::backward_batched(const Tensor& grad_output) {
  TINYADC_CHECK(cache_valid_ && !input_shape_.empty(),
                "Conv2d " << name()
                          << ": backward without cached training forward "
                             "(did an eval forward intervene?)");
  const std::int64_t batch = input_shape_[0];
  const std::int64_t oh = geom_.out_h();
  const std::int64_t ow = geom_.out_w();
  const std::int64_t p = oh * ow;
  const std::int64_t bp = batch * p;
  const std::int64_t rows = geom_.patch_rows();
  TINYADC_CHECK(grad_output.ndim() == 4 && grad_output.dim(0) == batch &&
                    grad_output.dim(1) == out_channels_ &&
                    grad_output.dim(2) == oh && grad_output.dim(3) == ow,
                "Conv2d " << name() << ": bad grad_output "
                          << shape_to_string(grad_output.shape()));
  TINYADC_CHECK(ws_cols_.numel() == rows * bp,
                "Conv2d " << name() << ": workspace does not match geometry");

  // Gather (N, F, oh, ow) → [F, N·p]: samples own disjoint column blocks.
  ensure_workspace(ws_out2d_, {out_channels_, bp});
  {
    float* dst_base = ws_out2d_.data();
    const float* src_base = grad_output.data();
    runtime::parallel_for(0, batch, 1, [&](std::int64_t n0, std::int64_t n1) {
      for (std::int64_t n = n0; n < n1; ++n) {
        const float* src = src_base + n * out_channels_ * p;
        for (std::int64_t f = 0; f < out_channels_; ++f)
          std::copy(src + f * p, src + (f + 1) * p,
                    dst_base + f * bp + n * p);
      }
    });
  }

  // dL/dW += gout · colsᵀ — one GEMM over the whole batch. The k loop runs
  // the full N·p extent in a fixed order inside each output row, so dW is
  // bit-identical at any thread count (gemm's globally-aligned row tiles).
  const Tensor w2d = weight_.value.reshape({out_channels_, rows});
  Tensor gw2d = weight_.grad.reshape({out_channels_, rows});  // shares storage
  gemm(ws_out2d_, false, ws_cols_, true, gw2d, 1.0F, 1.0F, &ws_gemm_);

  if (has_bias_) {
    // Filters own disjoint bias slots; each sums its row in a fixed order.
    float* gb = bias_.grad.data();
    const float* g = ws_out2d_.data();
    runtime::parallel_for(
        0, out_channels_, 1, [&](std::int64_t f0, std::int64_t f1) {
          for (std::int64_t f = f0; f < f1; ++f) {
            double acc = 0.0;
            const float* row = g + f * bp;
            for (std::int64_t i = 0; i < bp; ++i) acc += row[i];
            gb[f] += static_cast<float>(acc);
          }
        });
  }

  // dL/dcols = Wᵀ · gout, written over the im2col workspace (its contents
  // are no longer needed once dW is accumulated), then scattered back to
  // images per sample.
  gemm(w2d, true, ws_out2d_, false, ws_cols_, 1.0F, 0.0F, &ws_gemm_);
  Tensor grad_input(input_shape_);
  col2im_batch(ws_cols_.data(), batch, geom_, grad_input.data());
  cache_valid_ = false;
  return grad_input;
}

Tensor Conv2d::backward_reference(const Tensor& grad_output) {
  TINYADC_CHECK(!input_shape_.empty() && !cols_.empty(),
                "Conv2d " << name()
                          << ": backward without cached training forward");
  const std::int64_t batch = input_shape_[0];
  TINYADC_CHECK(static_cast<std::int64_t>(cols_.size()) == batch,
                "Conv2d " << name()
                          << ": backward without cached training forward");
  const std::int64_t oh = geom_.out_h();
  const std::int64_t ow = geom_.out_w();
  const std::int64_t p = oh * ow;
  TINYADC_CHECK(grad_output.ndim() == 4 && grad_output.dim(0) == batch &&
                    grad_output.dim(1) == out_channels_ &&
                    grad_output.dim(2) == oh && grad_output.dim(3) == ow,
                "Conv2d " << name() << ": bad grad_output "
                          << shape_to_string(grad_output.shape()));

  const std::int64_t rows = geom_.patch_rows();
  const Tensor w2d = weight_.value.reshape({out_channels_, rows});
  Tensor gw2d = weight_.grad.reshape({out_channels_, rows});  // shares storage
  Tensor grad_input(input_shape_);
  const std::int64_t per_image = in_channels_ * geom_.in_h * geom_.in_w;

  for (std::int64_t n = 0; n < batch; ++n) {
    Tensor gout2d({out_channels_, p});
    std::copy(grad_output.data() + n * out_channels_ * p,
              grad_output.data() + (n + 1) * out_channels_ * p,
              gout2d.data());
    // dL/dW += gout · colsᵀ
    gemm(gout2d, false, cols_[n], true, gw2d, 1.0F, 1.0F);
    if (has_bias_) {
      float* gb = bias_.grad.data();
      const float* g = gout2d.data();
      for (std::int64_t f = 0; f < out_channels_; ++f) {
        double acc = 0.0;
        for (std::int64_t i = 0; i < p; ++i) acc += g[f * p + i];
        gb[f] += static_cast<float>(acc);
      }
    }
    // dL/dcols = Wᵀ · gout, then scatter back to the image.
    Tensor gcols({rows, p});
    gemm(w2d, true, gout2d, false, gcols);
    Tensor gimage = col2im(gcols, geom_);
    std::copy(gimage.data(), gimage.data() + per_image,
              grad_input.data() + n * per_image);
  }
  cols_.clear();
  return grad_input;
}

LayerPtr Conv2d::clone() const {
  auto copy = std::unique_ptr<Conv2d>(
      new Conv2d(Uninit{}, name(), in_channels_, out_channels_, kernel_,
                 stride_, padding_, has_bias_));
  copy->use_batched_ = use_batched_;
  copy->weight_.value.copy_from(weight_.value);
  if (has_bias_) copy->bias_.value.copy_from(bias_.value);
  return copy;
}

}  // namespace tinyadc::nn
