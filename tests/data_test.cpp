// Synthetic dataset generation and batch iteration.
#include <gtest/gtest.h>

#include <set>

#include "data/synthetic.hpp"
#include "tensor/ops.hpp"

namespace tinyadc::data {
namespace {

SyntheticSpec small_spec() {
  SyntheticSpec spec;
  spec.num_classes = 4;
  spec.channels = 3;
  spec.image_size = 8;
  spec.train_per_class = 10;
  spec.test_per_class = 5;
  spec.seed = 42;
  return spec;
}

TEST(Synthetic, SizesMatchSpec) {
  const auto pair = make_synthetic(small_spec());
  EXPECT_EQ(pair.train.size(), 40);
  EXPECT_EQ(pair.test.size(), 20);
  EXPECT_EQ(pair.train.images.shape(), Shape({40, 3, 8, 8}));
  EXPECT_EQ(pair.train.num_classes, 4);
}

TEST(Synthetic, LabelsCoverAllClasses) {
  const auto pair = make_synthetic(small_spec());
  std::set<std::int64_t> seen(pair.train.labels.begin(),
                              pair.train.labels.end());
  EXPECT_EQ(seen.size(), 4U);
  for (auto l : pair.train.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 4);
  }
}

TEST(Synthetic, DeterministicInSeed) {
  const auto a = make_synthetic(small_spec());
  const auto b = make_synthetic(small_spec());
  EXPECT_TRUE(allclose(a.train.images, b.train.images, 0.0F));
  EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST(Synthetic, DifferentSeedsDiffer) {
  auto spec2 = small_spec();
  spec2.seed = 43;
  const auto a = make_synthetic(small_spec());
  const auto b = make_synthetic(spec2);
  EXPECT_GT(max_abs_diff(a.train.images, b.train.images), 0.1F);
}

TEST(Synthetic, SameClassSamplesCorrelateMoreThanCrossClass) {
  // Prototype structure must dominate noise: the mean intra-class pixel
  // distance should undercut the inter-class distance.
  auto spec = small_spec();
  spec.noise = 0.1F;
  const auto pair = make_synthetic(spec);
  const std::int64_t per = 3 * 8 * 8;
  auto dist = [&](std::int64_t i, std::int64_t j) {
    double d = 0.0;
    const float* a = pair.train.images.data() + i * per;
    const float* b = pair.train.images.data() + j * per;
    for (std::int64_t k = 0; k < per; ++k) {
      const double diff = a[k] - b[k];
      d += diff * diff;
    }
    return d;
  };
  // samples 0..9 are class 0, 10..19 class 1 (generation is class-ordered).
  double intra = 0.0, inter = 0.0;
  int n_intra = 0, n_inter = 0;
  for (int i = 0; i < 10; ++i)
    for (int j = i + 1; j < 10; ++j) {
      intra += dist(i, j);
      ++n_intra;
    }
  for (int i = 0; i < 10; ++i)
    for (int j = 10; j < 20; ++j) {
      inter += dist(i, j);
      ++n_inter;
    }
  EXPECT_LT(intra / n_intra, inter / n_inter);
}

TEST(Synthetic, TiersEscalateDifficulty) {
  const auto c10 = cifar10_like();
  const auto c100 = cifar100_like();
  const auto inet = imagenet_like();
  EXPECT_LT(c10.num_classes, c100.num_classes);
  EXPECT_LT(c100.num_classes, inet.num_classes);
  EXPECT_LT(c10.noise, inet.noise);
  EXPECT_LT(c10.shift_frac, inet.shift_frac);
}

TEST(Synthetic, TierLookupByName) {
  EXPECT_EQ(tier_by_name("cifar10").name, "cifar10");
  EXPECT_EQ(tier_by_name("imagenet").name, "imagenet");
  EXPECT_THROW(tier_by_name("mnist"), CheckError);
}

TEST(Dataset, SubsetExtractsRows) {
  const auto pair = make_synthetic(small_spec());
  const auto sub = pair.train.subset({0, 39});
  EXPECT_EQ(sub.size(), 2);
  EXPECT_EQ(sub.labels[0], pair.train.labels[0]);
  EXPECT_EQ(sub.labels[1], pair.train.labels[39]);
}

TEST(Dataset, SubsetRejectsOutOfRange) {
  const auto pair = make_synthetic(small_spec());
  EXPECT_THROW(pair.train.subset({40}), CheckError);
}

TEST(BatchIterator, CoversEveryExampleOnce) {
  const auto pair = make_synthetic(small_spec());
  Rng rng(3);
  BatchIterator it(pair.train, 7, &rng);
  EXPECT_EQ(it.batches_per_epoch(), 6U);  // ceil(40/7)
  Batch b;
  std::int64_t seen = 0;
  std::vector<int> label_counts(4, 0);
  while (it.next(b)) {
    seen += static_cast<std::int64_t>(b.labels.size());
    for (auto l : b.labels) ++label_counts[static_cast<std::size_t>(l)];
  }
  EXPECT_EQ(seen, 40);
  for (int c : label_counts) EXPECT_EQ(c, 10);
}

TEST(BatchIterator, SequentialWithoutRng) {
  const auto pair = make_synthetic(small_spec());
  BatchIterator it(pair.train, 40, nullptr);
  Batch b;
  ASSERT_TRUE(it.next(b));
  EXPECT_EQ(b.labels, pair.train.labels);
  EXPECT_FALSE(it.next(b));
}

TEST(BatchIterator, ResetRestartsEpoch) {
  const auto pair = make_synthetic(small_spec());
  BatchIterator it(pair.train, 40, nullptr);
  Batch b;
  EXPECT_TRUE(it.next(b));
  EXPECT_FALSE(it.next(b));
  it.reset();
  EXPECT_TRUE(it.next(b));
}

TEST(BatchIterator, ShuffleChangesOrderButNotContent) {
  const auto pair = make_synthetic(small_spec());
  Rng rng(4);
  BatchIterator it(pair.train, 40, &rng);
  Batch b;
  ASSERT_TRUE(it.next(b));
  EXPECT_NE(b.labels, pair.train.labels);  // shuffled (40! >> collisions)
  std::multiset<std::int64_t> a(b.labels.begin(), b.labels.end());
  std::multiset<std::int64_t> c(pair.train.labels.begin(),
                                pair.train.labels.end());
  EXPECT_EQ(a, c);
}

}  // namespace
}  // namespace tinyadc::data
