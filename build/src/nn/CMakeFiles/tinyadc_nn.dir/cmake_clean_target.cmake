file(REMOVE_RECURSE
  "libtinyadc_nn.a"
)
