// Serving-side observability: a log-linear latency histogram (bounded
// memory, ~±2 % relative resolution) and the ServeStats snapshot the
// InferenceEngine exposes.
//
// The histogram follows the HDR-histogram idea scaled down: bucket i
// covers latencies in [2^(i/kSub), 2^((i+1)/kSub)) microseconds, so
// every octave is split into kSub geometric sub-buckets. Percentiles are
// reported as the geometric midpoint of the bucket holding the requested
// rank — an approximation bounded by the bucket width, which is what a
// production serving stack records (exact per-request latencies are not
// retained).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace tinyadc::serve {

/// Log-linear latency histogram over microseconds.
class LatencyHistogram {
 public:
  static constexpr int kSub = 16;          ///< sub-buckets per octave
  static constexpr std::size_t kBuckets = 512;  ///< covers up to ~2^32 us

  /// Records one latency observation (clamped to [1us, top bucket]).
  void record(double us);

  /// Number of recorded observations.
  std::uint64_t count() const { return count_; }
  /// Arithmetic mean of the raw (unbucketed) observations.
  double mean_us() const { return count_ ? sum_us_ / count_ : 0.0; }
  /// Largest raw observation.
  double max_us() const { return max_us_; }
  /// Approximate percentile `p` in [0, 100]; 0 when empty.
  double percentile(double p) const;
  /// Adds every observation of `other` into this histogram.
  void merge(const LatencyHistogram& other);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_us_ = 0.0;
  double max_us_ = 0.0;
};

/// Per-stage execution counters of the pipeline executor (microseconds;
/// timing-dependent, outside the determinism contract). Defined here so
/// the serve and loadgen JSON reports share one stats schema.
struct PipelineStageStats {
  std::size_t begin = 0;          ///< stage's unit range, for reporting
  std::size_t end = 0;
  std::uint64_t batches = 0;      ///< batches this stage processed
  std::int64_t busy_us = 0;       ///< time inside forward_range
  std::int64_t stall_in_us = 0;   ///< blocked popping the input queue
  std::int64_t stall_out_us = 0;  ///< blocked pushing the output queue
};

/// Point-in-time snapshot of an InferenceEngine's counters.
struct ServeStats {
  std::uint64_t requests = 0;   ///< completed requests
  std::uint64_t batches = 0;    ///< executed batches
  std::uint64_t rejected = 0;   ///< submits refused by the queue bound
  double wall_s = 0.0;          ///< seconds since the engine started
  double qps = 0.0;             ///< requests / wall_s
  double p50_us = 0.0;          ///< request latency percentiles
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  double max_us = 0.0;
  double mean_batch = 0.0;      ///< requests / batches
  /// batch_hist[b] = number of executed batches of size b (index 0 unused).
  std::vector<std::uint64_t> batch_hist;
  std::size_t max_queue_depth = 0;  ///< deepest queue seen at submit time
  // Aggregate ADC/DAC activity absorbed from the shared layer sims since
  // the engine started (deltas, so engines over one compiled network
  // report only their own traffic).
  std::int64_t adc_conversions = 0;
  std::int64_t adc_clip_events = 0;
  std::int64_t dac_cycles = 0;
  /// Pipeline mode only: configured stage count (0 = sequential/replicated)
  /// and the per-stage occupancy/stall counters.
  int pipeline_stages = 0;
  std::vector<PipelineStageStats> stages;
  /// Process peak resident set (ru_maxrss), snapshotted with the stats.
  std::int64_t peak_rss_kb = 0;
  /// Artifact load-phase breakdown (artifact::LoadPhases), injected by the
  /// serving entry points when the engine was cold-started from an
  /// artifact; all zero for in-process construction.
  double load_map_ms = 0.0;
  double load_validate_ms = 0.0;
  double load_stream_ms = 0.0;

  /// Human-readable stats table (the `serve`/`loadgen` CLI output).
  std::string to_table() const;
  /// Flat JSON object (no trailing newline) with every counter above.
  std::string to_json() const;
};

/// Escapes `s` for embedding inside a double-quoted JSON string: backslash,
/// double quote, and control characters (\b \f \n \r \t, \u00XX otherwise).
std::string json_escape(const std::string& s);

/// FNV-1a digest of raw bytes; `h` chains calls (pass the previous digest).
std::uint64_t fnv1a(const void* data, std::size_t n,
                    std::uint64_t h = 1469598103934665603ULL);

/// Peak resident-set size of this process in KiB (getrusage ru_maxrss);
/// 0 if the platform cannot report it.
std::int64_t peak_rss_kb();

}  // namespace tinyadc::serve
