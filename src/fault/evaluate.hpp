// Accuracy-under-fault evaluation harness (§IV-E).
#pragma once

#include "data/dataset.hpp"
#include "fault/fault_model.hpp"
#include "nn/trainer.hpp"

namespace tinyadc::fault {

/// Result of a multi-trial fault sweep at one fault rate.
struct FaultTrialResult {
  double clean_accuracy = 0.0;  ///< accuracy with no faults
  double mean_accuracy = 0.0;   ///< mean over trials with faults injected
  double min_accuracy = 1.0;    ///< worst trial
  double accuracy_drop() const { return clean_accuracy - mean_accuracy; }
};

/// Evaluates `model` on `test` with stuck-at faults injected into its
/// crossbar mapping, averaged over `trials` independent fault patterns.
/// The model's weights are restored afterwards; the evaluation path is:
/// weights → quantize/map → inject → demap → write back → measure accuracy.
/// (Quantization itself already costs a little accuracy; that cost is
/// inside `clean_accuracy` too, so the drop isolates the fault effect.)
FaultTrialResult evaluate_under_faults(nn::Model& model,
                                       const data::Dataset& test,
                                       const xbar::MappingConfig& map_config,
                                       const FaultSpec& spec, int trials);

/// Same experiment with fault-aware greedy row remapping applied after each
/// trial's defect pattern is revealed (see remap.hpp) — the extension
/// study: how much of the stuck-at damage can wordline reordering recover?
FaultTrialResult evaluate_under_faults_remapped(
    nn::Model& model, const data::Dataset& test,
    const xbar::MappingConfig& map_config, const FaultSpec& spec, int trials);

}  // namespace tinyadc::fault
