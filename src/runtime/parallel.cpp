#include "runtime/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace tinyadc::runtime {

namespace {

/// Set while a thread (worker or caller) executes parallel_for lanes; makes
/// nested parallel_for calls run inline instead of deadlocking on the pool.
thread_local bool tl_in_lane = false;

/// One outstanding parallel_for invocation.
struct Job {
  const ChunkFn* body = nullptr;
  std::int64_t begin = 0;
  std::int64_t grain = 1;
  std::int64_t end = 0;
  std::int64_t num_chunks = 0;
  int width = 0;      ///< lanes in this job, caller included
  int remaining = 0;  ///< pool lanes still running (guarded by Pool::mu_)
  std::exception_ptr error;  ///< first failure (guarded by Pool::mu_)
};

class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  ~Pool() { shutdown(); }

  int configured_threads() {
    const int o = override_.load(std::memory_order_relaxed);
    if (o > 0) return o;
    static const int env_threads = [] {
      if (const char* v = std::getenv("TINYADC_THREADS")) {
        const long n = std::strtol(v, nullptr, 10);
        if (n >= 1) return static_cast<int>(n);
      }
      const unsigned hc = std::thread::hardware_concurrency();
      return hc == 0 ? 1 : static_cast<int>(hc);
    }();
    return env_threads;
  }

  void set_override(int n) {
    override_.store(n > 0 ? n : 0, std::memory_order_relaxed);
  }

  int spawned() {
    std::lock_guard<std::mutex> lk(mu_);
    return static_cast<int>(workers_.size());
  }

  void run(std::int64_t begin, std::int64_t end, std::int64_t grain,
           const ChunkFn& body) {
    if (end <= begin) return;
    if (grain < 1) grain = 1;
    const std::int64_t num_chunks = (end - begin + grain - 1) / grain;
    int width = configured_threads();
    width = static_cast<int>(
        std::min<std::int64_t>(width, num_chunks));
    if (width <= 1 || tl_in_lane) {
      body(begin, end);
      return;
    }

    // One fan-out at a time: nested calls were peeled off above, and
    // concurrent top-level callers simply take turns.
    std::lock_guard<std::mutex> run_lock(run_mu_);
    Job job;
    job.body = &body;
    job.begin = begin;
    job.grain = grain;
    job.end = end;
    job.num_chunks = num_chunks;
    job.width = width;
    job.remaining = width - 1;
    {
      std::lock_guard<std::mutex> lk(mu_);
      ensure_workers_locked(width - 1);
      job_ = &job;
      ++generation_;
    }
    cv_.notify_all();
    run_lane(job, /*lane=*/0);  // the caller is lane 0
    {
      std::unique_lock<std::mutex> lk(mu_);
      done_cv_.wait(lk, [&job] { return job.remaining == 0; });
      job_ = nullptr;
    }
    if (job.error) std::rethrow_exception(job.error);
  }

  void shutdown() {
    std::vector<std::thread> doomed;
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
      doomed.swap(workers_);
    }
    cv_.notify_all();
    for (std::thread& t : doomed) t.join();
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = false;  // allow a later parallel_for to restart the pool
  }

 private:
  void ensure_workers_locked(int needed) {
    while (static_cast<int>(workers_.size()) < needed) {
      const int slot = static_cast<int>(workers_.size());
      workers_.emplace_back([this, slot] { worker_main(slot); });
    }
  }

  /// Executes every chunk assigned to `lane`: chunks lane, lane + width, …
  /// The assignment depends only on (range, grain, width), and each chunk's
  /// computation is independent of which lane runs it — the static
  /// deterministic partitioning contract.
  void run_lane(Job& job, int lane) {
    const bool was_in_lane = tl_in_lane;
    tl_in_lane = true;
    try {
      for (std::int64_t c = lane; c < job.num_chunks; c += job.width) {
        const std::int64_t b = job.begin + c * job.grain;
        const std::int64_t e = std::min(job.end, b + job.grain);
        (*job.body)(b, e);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!job.error) job.error = std::current_exception();
    }
    tl_in_lane = was_in_lane;
  }

  void worker_main(int slot) {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      cv_.wait(lk, [this, seen] {
        return stop_ || (generation_ != seen && job_ != nullptr);
      });
      if (stop_) return;
      seen = generation_;
      Job* job = job_;
      if (slot + 1 >= job->width) continue;  // no lane for this worker
      lk.unlock();
      run_lane(*job, slot + 1);
      lk.lock();
      if (--job->remaining == 0) done_cv_.notify_all();
    }
  }

  std::mutex run_mu_;  ///< serializes top-level parallel_for fan-outs
  std::mutex mu_;      ///< guards everything below
  std::condition_variable cv_;       ///< job posted / stop requested
  std::condition_variable done_cv_;  ///< job finished
  std::vector<std::thread> workers_;
  Job* job_ = nullptr;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::atomic<int> override_{0};
};

}  // namespace

int thread_count() { return Pool::instance().configured_threads(); }

void set_thread_count(int n) { Pool::instance().set_override(n); }

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const ChunkFn& body) {
  Pool::instance().run(begin, end, grain, body);
}

bool in_parallel_region() { return tl_in_lane; }

int spawned_workers() { return Pool::instance().spawned(); }

void shutdown() { Pool::instance().shutdown(); }

}  // namespace tinyadc::runtime
