// ReRAM crossbar mapping of 2-D weight matrices (the paper's §III-C, Fig. 3).
//
// A layer's 2-D weight matrix (rows = input taps, cols = filters) is split
// into crossbar-sized blocks; remainder rows/columns get extra (partially
// filled) arrays. Signed weights are handled differentially: each logical
// column owns a positive and a negative physical column set, and each
// (weight_bits−1)-bit magnitude is spread over ⌈(weight_bits−1)/cell_bits⌉
// MLC cells. A pruned (zero) weight programs every one of its cells to
// G_off, which is what deactivates its row for ADC purposes.
#pragma once

#include <string>
#include <vector>

#include "artifact/array_ref.hpp"
#include "core/layout.hpp"
#include "core/prune_spec.hpp"
#include "nn/model.hpp"
#include "xbar/adc_bits.hpp"
#include "xbar/quant.hpp"

namespace tinyadc::artifact {
class SectionWriter;
class SectionReader;
}  // namespace tinyadc::artifact

namespace tinyadc::xbar {

/// Static configuration of the crossbar substrate.
struct MappingConfig {
  core::CrossbarDims dims{128, 128};  ///< block size in *weights*
  int weight_bits = 8;  ///< signed weight precision (incl. sign)
  int cell_bits = 2;    ///< MLC bits per ReRAM cell (paper: 2-bit MLC)
  int input_bits = 8;   ///< activation precision (unsigned, post-ReLU)
  int dac_bits = 1;     ///< v: input bits applied per cycle (paper: 1-bit DAC)
  /// ISAAC's weight-flip encoding halves the worst-case column sum and
  /// saves exactly one ADC bit (how the 128-row baseline runs on an 8-bit
  /// ADC although Eq. 1 alone asks for 9). It applies to the *designed*
  /// ADC resolution used for hardware costing; the functional simulator
  /// does not model the flip datapath and therefore sizes with pure Eq. 1.
  bool isaac_encoding = true;

  /// Cells jointly representing one weight magnitude.
  int slices() const { return cells_per_weight(weight_bits, cell_bits); }
};

/// One crossbar-sized block of quantized weights.
struct CrossbarBlock {
  std::int64_t row0 = 0, col0 = 0;  ///< block origin in the 2-D matrix
  std::int64_t rows = 0, cols = 0;  ///< actual extent (≤ dims at edges)
  /// Signed codes, row-major (rows × cols). An ArrayRef so a mapped
  /// artifact load can view the codes in place (zero-copy); mutators
  /// (fault injection, remap) go through q.mut(), which copies on write.
  artifact::ArrayRef<std::int32_t> q;
  /// Per-column occupancy census from map time: col_nonzeros[c] is the
  /// number of rows with a non-zero code in block-local column c (the `l`
  /// of the paper's CP constraint). Consumers that mutate `q` afterwards
  /// (fault injection) must treat it as stale.
  std::vector<std::int64_t> col_nonzeros;
  std::int64_t max_col_nonzeros = 0;  ///< census: worst column occupancy

  /// Signed code at (r, c), block-local coordinates.
  std::int32_t at(std::int64_t r, std::int64_t c) const {
    return q[static_cast<std::size_t>(r * cols + c)];
  }
  /// Active rows in block-local column c (map-time census).
  std::int64_t column_nonzeros(std::int64_t c) const {
    return col_nonzeros[static_cast<std::size_t>(c)];
  }
  /// True if every weight in the block is zero (block can be dropped).
  bool all_zero() const;
};

/// A whole layer mapped onto crossbars.
///
/// Mapping applies the paper's reform rule first: completely-zero rows
/// (pruned filter shapes) and columns (pruned filters) are removed and the
/// remaining weights re-tile densely — "the structural pruned weights can
/// be fully converted to the crossbar array reductions". `kept_rows` /
/// `kept_cols` record the compacted→original index maps so demap() and
/// reference_mvm() still speak original coordinates.
struct MappedLayer {
  std::string name;
  std::int64_t rows = 0, cols = 0;  ///< original (logical) 2-D matrix extent
  QuantParams quant;                ///< weight quantizer
  MappingConfig config;
  std::vector<std::int64_t> kept_rows;  ///< compacted row → original row
  std::vector<std::int64_t> kept_cols;  ///< compacted col → original col
  std::int64_t block_grid_rows = 0, block_grid_cols = 0;
  std::vector<CrossbarBlock> blocks;  ///< row-major over the block grid,
                                      ///< tiling the compacted matrix

  /// Crossbar arrays the *dense* (no-reform) mapping of this layer's
  /// logical shape would need.
  std::int64_t dense_blocks() const;
  /// Blocks of the compacted mapping (= blocks.size()).
  std::int64_t total_blocks() const {
    return static_cast<std::int64_t>(blocks.size());
  }
  /// Blocks that still hold at least one non-zero weight.
  std::int64_t active_blocks() const;
  /// Physical arrays per logical block: slice planes × differential pair.
  std::int64_t arrays_per_block() const { return 2 * config.slices(); }
  /// Physical arrays for the active blocks.
  std::int64_t active_arrays() const {
    return active_blocks() * arrays_per_block();
  }
  /// Worst per-block-column occupancy over active blocks (the `r` of Eq. 1).
  std::int64_t max_active_rows() const;
  /// Total active weights over every (block, column) — the census sum. Every
  /// active weight owns exactly one row slot in one polarity segment of the
  /// packed execution plan, so this is the plan's exact stream length.
  std::int64_t census_nonzeros() const;
  /// ADC resolution Eq. 1 requires for bit-exact readout (census occupancy;
  /// what the functional simulator uses).
  int required_adc_bits() const;
  /// ADC resolution the *design* provisions: Eq. 1 minus the one bit saved
  /// by ISAAC's weight-flip encoding (when enabled). This reproduces the
  /// paper's Table I accounting: 128 dense rows → 8-bit ADC, CP rate R →
  /// log2(R) bits of reduction.
  int design_adc_bits() const;
  /// Reconstructs the (rows × cols) float matrix (quantized values).
  Tensor demap() const;
};

/// Designed ADC resolution for `active_rows` rows under `config` (Eq. 1,
/// minus the ISAAC-encoding bit when enabled).
int design_adc_bits(const MappingConfig& config, std::int64_t active_rows);

/// Structurally-pruned rows/columns a mapping should compact away. Only
/// rows/columns that are completely zero may be listed — the reform must
/// never drop live weights.
struct StructuralRemoval {
  std::vector<std::int64_t> rows;  ///< pruned filter shapes, ascending
  std::vector<std::int64_t> cols;  ///< pruned filters, ascending
};

/// Recovers a structural removal from a hard-pruned matrix: the first
/// `remove_rows` completely-zero rows and `remove_cols` completely-zero
/// columns (the deterministic rule shared with core's constraint checks).
StructuralRemoval infer_removal(const Tensor& matrix, std::int64_t remove_rows,
                                std::int64_t remove_cols);

/// Maps a (rows × cols) row-major float matrix onto crossbars, compacting
/// exactly the rows/columns in `removal` (paper §III-D: structurally-pruned
/// weights reform into a dense matrix and convert fully into crossbar
/// reductions). CP zeros stay in place and never shift block boundaries.
MappedLayer map_matrix(const Tensor& matrix, const std::string& name,
                       const MappingConfig& config,
                       const StructuralRemoval& removal = {});

/// A full network mapping.
struct MappedNetwork {
  std::vector<MappedLayer> layers;
  MappingConfig config;

  /// Crossbar arrays a dense (no-reform, no-pruning) mapping of the same
  /// layer shapes would need — the paper's normalization baseline.
  std::int64_t total_arrays() const;
  /// Crossbar arrays actually holding non-zero weights after the reform.
  std::int64_t active_arrays() const;
  /// 1 − active/total (the paper's "crossbar reduction").
  double crossbar_reduction() const;
  /// Worst required ADC bits over all layers *except the first* (the paper
  /// keeps the first layer's ADC at full resolution).
  int worst_adc_bits_after_first() const;
  /// Same, with the design (ISAAC-encoded) resolution.
  int worst_design_adc_bits_after_first() const;
};

/// Maps every prunable layer of `model` (convs and linears, network order),
/// with no structural reform (suitable for dense or CP-only models).
MappedNetwork map_model(nn::Model& model, const MappingConfig& config);

/// Maps `model` with per-layer structural reform inferred from `specs`
/// (aligned with Model::prunable_views()): each layer compacts away the
/// first `remove_shapes` zero rows and `remove_filters` zero columns.
/// Exact for CP-only and filter-only specs; when shape pruning combines
/// with CP, prefer the selections overload below (the inference can pick
/// CP-created zero rows and shift block boundaries).
MappedNetwork map_model(nn::Model& model, const MappingConfig& config,
                        const std::vector<core::LayerPruneSpec>& specs);

/// Maps `model` compacting exactly the rows/columns the pruning pipeline
/// selected (core::PipelineResult::selections / AdmmPruner::selections()).
MappedNetwork map_model(
    nn::Model& model, const MappingConfig& config,
    const std::vector<core::StructuralSelection>& selections);

/// Artifact (de)serialization of a whole network mapping (config, per-layer
/// quantizers, reform index maps, block grids and quantized codes with
/// their occupancy census). Deserialization re-validates every structural
/// invariant (grid extents, block sizes, kept-index ranges, census bounds),
/// so a loaded mapping is as trustworthy as a freshly computed one.
void serialize(const MappedNetwork& net, artifact::SectionWriter& w);
MappedNetwork deserialize_mapped_network(artifact::SectionReader& r);

/// Exact integer reference MVM for one mapped layer: y[c] = Σ_r q[r,c]·x[r]
/// with unsigned input codes `x` (length = layer rows). The gold standard
/// the analog simulator must reproduce bit-exactly (property P2).
std::vector<std::int64_t> reference_mvm(const MappedLayer& layer,
                                        const std::vector<std::int32_t>& x);

}  // namespace tinyadc::xbar
