// ReRAM stuck-at fault model (Chen et al., IEEE TC 2015 — §IV-E).
//
// Manufacturing and endurance defects pin individual ReRAM cells at their
// extreme conductances: Stuck-At-0 (G_off — the cell reads as level 0) or
// Stuck-At-1 (G_on — the cell reads as the maximum MLC level). Faults act
// on *cells*, i.e. on the 2·slices physical devices behind each logical
// weight (positive and negative polarity planes):
//   * SA0 on a used cell zeroes that magnitude slice;
//   * SA0 on an unused cell changes nothing (it already sits at G_off) —
//     this is why a CP-pruned model, which deliberately keeps most cells at
//     G_off, tolerates SA0 far better than a dense one;
//   * SA1 on any cell forces that slice to full level, possibly creating a
//     spurious contribution of either polarity.
#pragma once

#include "tensor/rng.hpp"
#include "xbar/mapping.hpp"

namespace tinyadc::fault {

/// Fault-injection parameters.
struct FaultSpec {
  double rate = 0.05;        ///< fraction of cells affected
  double sa0_fraction = 1.0; ///< of affected cells, share stuck at 0 (§IV-E
                             ///< studies the SA0 model; the rest are SA1)
  std::uint64_t seed = 7;
};

/// Injection accounting.
struct FaultStats {
  std::int64_t cells = 0;          ///< cells considered
  std::int64_t sa0 = 0;            ///< SA0 faults injected
  std::int64_t sa1 = 0;            ///< SA1 faults injected
  std::int64_t weights_changed = 0;  ///< logical weights whose value moved
};

/// Injects faults into one mapped layer in place (quantized codes and
/// censuses are updated). `rng` supplies the randomness so callers can run
/// multiple trials from one spec.
FaultStats inject_faults(xbar::MappedLayer& layer, const FaultSpec& spec,
                         Rng& rng);

/// Injects faults into every layer of a mapped network (fresh Rng from
/// `spec.seed`).
FaultStats inject_faults(xbar::MappedNetwork& net, const FaultSpec& spec);

}  // namespace tinyadc::fault
