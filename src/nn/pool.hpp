// Pooling layers.
#pragma once

#include "nn/layer.hpp"

namespace tinyadc::nn {

/// Max pooling with square kernel/stride (no padding).
class MaxPool2d final : public Layer {
 public:
  MaxPool2d(std::string name, std::int64_t kernel, std::int64_t stride);
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  LayerPtr clone() const override;

 private:
  std::int64_t kernel_, stride_;
  Shape input_shape_;
  std::vector<std::int64_t> argmax_;  // flat input index per output element
};

/// Average pooling with square kernel/stride (no padding).
class AvgPool2d final : public Layer {
 public:
  AvgPool2d(std::string name, std::int64_t kernel, std::int64_t stride);
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  LayerPtr clone() const override;

 private:
  std::int64_t kernel_, stride_;
  Shape input_shape_;
};

/// Global average pooling: (N, C, H, W) → (N, C).
class GlobalAvgPool final : public Layer {
 public:
  explicit GlobalAvgPool(std::string name) : Layer(std::move(name)) {}
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  LayerPtr clone() const override;

 private:
  Shape input_shape_;
};

}  // namespace tinyadc::nn
