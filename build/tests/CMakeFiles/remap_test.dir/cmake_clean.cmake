file(REMOVE_RECURSE
  "CMakeFiles/remap_test.dir/remap_test.cpp.o"
  "CMakeFiles/remap_test.dir/remap_test.cpp.o.d"
  "remap_test"
  "remap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
