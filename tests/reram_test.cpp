// VTEAM ReRAM device model: I–V behaviour, threshold dynamics, MLC levels,
// process variation, programming time.
#include <gtest/gtest.h>

#include "xbar/reram_cell.hpp"

namespace tinyadc::xbar {
namespace {

TEST(Vteam, ConductanceBounds) {
  VteamCell off(VteamParams{}, 0.0);
  VteamCell on(VteamParams{}, 1.0);
  EXPECT_DOUBLE_EQ(off.conductance(), off.params().g_off());
  EXPECT_DOUBLE_EQ(on.conductance(), on.params().g_on());
  EXPECT_GT(on.conductance(), off.conductance());
}

TEST(Vteam, OhmicRead) {
  VteamCell cell(VteamParams{}, 0.5);
  const double g = cell.conductance();
  EXPECT_DOUBLE_EQ(cell.current(0.2), g * 0.2);
  EXPECT_DOUBLE_EQ(cell.current(-0.2), -g * 0.2);
}

TEST(Vteam, NoDriftBelowThreshold) {
  VteamCell cell(VteamParams{}, 0.5);
  const double before = cell.state();
  // Read voltages inside (v_on, v_off) must not disturb the state.
  for (int i = 0; i < 1000; ++i) cell.step(0.3, 1e-6);
  for (int i = 0; i < 1000; ++i) cell.step(-0.3, 1e-6);
  EXPECT_DOUBLE_EQ(cell.state(), before);
}

TEST(Vteam, SetMovesTowardOn) {
  VteamCell cell(VteamParams{}, 0.5);
  for (int i = 0; i < 100; ++i) cell.step(-1.2, 1e-6);
  EXPECT_GT(cell.state(), 0.5);
}

TEST(Vteam, ResetMovesTowardOff) {
  VteamCell cell(VteamParams{}, 0.5);
  for (int i = 0; i < 100; ++i) cell.step(1.2, 1e-6);
  EXPECT_LT(cell.state(), 0.5);
}

TEST(Vteam, StateStaysInUnitInterval) {
  VteamCell cell(VteamParams{}, 0.9);
  for (int i = 0; i < 100000; ++i) cell.step(-2.0, 1e-5);
  EXPECT_LE(cell.state(), 1.0);
  VteamCell cell2(VteamParams{}, 0.1);
  for (int i = 0; i < 100000; ++i) cell2.step(2.0, 1e-5);
  EXPECT_GE(cell2.state(), 0.0);
}

TEST(Vteam, ParameterValidation) {
  VteamParams bad;
  bad.r_off = bad.r_on;  // must be strictly larger
  EXPECT_THROW(VteamCell cell(bad), tinyadc::CheckError);
  VteamParams bad2;
  bad2.v_on = 0.5;  // must be negative
  EXPECT_THROW(VteamCell cell(bad2), tinyadc::CheckError);
}

TEST(MlcLevels, CountSpacingAndEndpoints) {
  VteamParams params;
  const auto levels = mlc_conductance_levels(params, 2);
  ASSERT_EQ(levels.size(), 4U);
  EXPECT_DOUBLE_EQ(levels.front(), params.g_off());
  EXPECT_DOUBLE_EQ(levels.back(), params.g_on());
  // Strictly increasing, evenly spaced.
  const double step = levels[1] - levels[0];
  for (std::size_t i = 1; i < levels.size(); ++i) {
    EXPECT_GT(levels[i], levels[i - 1]);
    EXPECT_NEAR(levels[i] - levels[i - 1], step, 1e-12);
  }
}

TEST(MlcLevels, RejectsImpracticalBitCounts) {
  // The paper: "using more than 2-3 ReRAM bit cells is not practical".
  EXPECT_THROW(mlc_conductance_levels(VteamParams{}, 5), tinyadc::CheckError);
  EXPECT_THROW(mlc_conductance_levels(VteamParams{}, 0), tinyadc::CheckError);
}

TEST(MlcLevels, StateForLevelRealizesConductance) {
  VteamParams params;
  for (int level = 0; level < 4; ++level) {
    VteamCell cell(params, state_for_level(params, level, 2));
    const auto levels = mlc_conductance_levels(params, 2);
    EXPECT_NEAR(cell.conductance(), levels[static_cast<std::size_t>(level)],
                1e-12);
  }
}

TEST(Variation, ZeroSigmaIsExact) {
  tinyadc::Rng rng(1);
  EXPECT_DOUBLE_EQ(perturbed_conductance(1e-4, 0.0, rng), 1e-4);
}

TEST(Variation, TenPercentSigmaSpread) {
  tinyadc::Rng rng(2);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = perturbed_conductance(1.0, 0.1, rng);
    EXPECT_GT(g, 0.0);  // lognormal never flips sign
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double stdev = std::sqrt(sum_sq / n - mean * mean);
  EXPECT_NEAR(stdev / mean, 0.1, 0.02);  // ~10 % relative spread
}

TEST(ProgrammingTime, MonotonicInTargetLevel) {
  VteamParams params;
  double prev = 0.0;
  for (int level = 1; level < 4; ++level) {
    const double t = programming_time(params, level, 2, -1.5);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(ProgrammingTime, FasterAtHigherVoltage) {
  VteamParams params;
  const double slow = programming_time(params, 3, 2, -1.0);
  const double fast = programming_time(params, 3, 2, -2.0);
  EXPECT_LT(fast, slow);
}

TEST(ProgrammingTime, RequiresSuperThresholdVoltage) {
  EXPECT_THROW(programming_time(VteamParams{}, 1, 2, -0.1),
               tinyadc::CheckError);
}

}  // namespace
}  // namespace tinyadc::xbar
