// 2-D batch normalization.
#pragma once

#include "nn/layer.hpp"

namespace tinyadc::nn {

/// BatchNorm over the channel dimension of (N, C, H, W) inputs with affine
/// scale/shift and running statistics for inference.
class BatchNorm2d final : public Layer {
 public:
  BatchNorm2d(std::string name, std::int64_t channels, float eps = 1e-5F,
              float momentum = 0.1F);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  LayerPtr clone() const override;

  /// Per-channel scale γ.
  Param& gamma() { return gamma_; }
  /// Per-channel shift β.
  Param& beta() { return beta_; }
  /// Running mean (inference statistic).
  Tensor& running_mean() { return running_mean_; }
  /// Running variance (inference statistic).
  Tensor& running_var() { return running_var_; }

 private:
  std::int64_t channels_;
  float eps_, momentum_;
  Param gamma_, beta_;
  Tensor running_mean_, running_var_;

  // training-forward cache
  Tensor xhat_;     // normalized activations
  Tensor inv_std_;  // per-channel 1/σ
  Shape input_shape_;
};

}  // namespace tinyadc::nn
