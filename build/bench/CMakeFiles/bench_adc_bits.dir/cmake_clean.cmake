file(REMOVE_RECURSE
  "CMakeFiles/bench_adc_bits.dir/bench_adc_bits.cpp.o"
  "CMakeFiles/bench_adc_bits.dir/bench_adc_bits.cpp.o.d"
  "bench_adc_bits"
  "bench_adc_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adc_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
