#include "hw/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "msim/dac.hpp"
#include "tensor/check.hpp"

namespace tinyadc::hw {

namespace {

/// Stage time at replication 1: the ADC of every active array serializes
/// its block's columns each DAC cycle; arrays work in parallel.
double stage_time(const xbar::MappedLayer& layer, std::int64_t mvms,
                  const CostConstants& constants) {
  const int cycles = msim::dac_cycles(layer.config.input_bits,
                                      layer.config.dac_bits);
  std::int64_t widest_cols = 0;
  for (const auto& b : layer.blocks)
    if (!b.all_zero()) widest_cols = std::max(widest_cols, b.cols);
  return static_cast<double>(mvms) * cycles *
         static_cast<double>(widest_cols) / constants.adc_rate_hz;
}

PipelineSchedule build(const xbar::MappedNetwork& net,
                       const std::vector<std::int64_t>& mvms_per_layer,
                       const CostConstants& constants,
                       const std::vector<std::int64_t>& replication) {
  PipelineSchedule schedule;
  for (std::size_t i = 0; i < net.layers.size(); ++i) {
    const auto& layer = net.layers[i];
    StageSchedule stage;
    stage.name = layer.name;
    stage.mvms = mvms_per_layer[i];
    stage.stage_time_s = stage_time(layer, stage.mvms, constants);
    stage.replication = replication[i];
    stage.effective_time_s =
        stage.stage_time_s / static_cast<double>(stage.replication);
    // One image's output activations buffered for the next stage: mvms
    // output vectors of `cols` activations at input_bits each.
    stage.buffer_bytes =
        (stage.mvms * layer.cols * layer.config.input_bits + 7) / 8;
    schedule.interval_s =
        std::max(schedule.interval_s, stage.effective_time_s);
    schedule.fill_latency_s += stage.effective_time_s;
    schedule.total_buffer_bytes += stage.buffer_bytes;
    schedule.extra_arrays +=
        (stage.replication - 1) * layer.active_arrays();
    schedule.stages.push_back(std::move(stage));
  }
  return schedule;
}

}  // namespace

PipelineSchedule schedule_pipeline(const xbar::MappedNetwork& net,
                                   const std::vector<std::int64_t>&
                                       mvms_per_layer,
                                   const CostConstants& constants) {
  TINYADC_CHECK(mvms_per_layer.size() == net.layers.size(),
                "mvm count " << mvms_per_layer.size() << " != layer count "
                             << net.layers.size());
  return build(net, mvms_per_layer, constants,
               std::vector<std::int64_t>(net.layers.size(), 1));
}

PipelineSchedule balance_pipeline(const xbar::MappedNetwork& net,
                                  const std::vector<std::int64_t>&
                                      mvms_per_layer,
                                  const CostConstants& constants,
                                  double target_interval_s) {
  TINYADC_CHECK(mvms_per_layer.size() == net.layers.size(),
                "mvm count " << mvms_per_layer.size() << " != layer count "
                             << net.layers.size());
  TINYADC_CHECK(target_interval_s > 0.0, "target interval must be positive");
  std::vector<std::int64_t> replication(net.layers.size(), 1);
  for (std::size_t i = 0; i < net.layers.size(); ++i) {
    const double t = stage_time(net.layers[i], mvms_per_layer[i], constants);
    replication[i] = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::ceil(t / target_interval_s)));
  }
  return build(net, mvms_per_layer, constants, replication);
}

std::string to_table(const PipelineSchedule& schedule) {
  std::ostringstream os;
  os << std::left << std::setw(24) << "stage" << std::right << std::setw(8)
     << "MVMs" << std::setw(12) << "T (us)" << std::setw(7) << "repl"
     << std::setw(13) << "T_eff (us)" << std::setw(12) << "buf (B)" << "\n";
  for (const auto& s : schedule.stages) {
    os << std::left << std::setw(24) << s.name << std::right << std::setw(8)
       << s.mvms << std::setw(12) << std::fixed << std::setprecision(2)
       << 1e6 * s.stage_time_s << std::setw(7) << s.replication
       << std::setw(13) << std::setprecision(2) << 1e6 * s.effective_time_s
       << std::setw(12) << s.buffer_bytes << "\n";
  }
  os << "interval " << std::setprecision(2) << 1e6 * schedule.interval_s
     << " us (" << std::setprecision(0) << schedule.fps()
     << " fps), fill " << std::setprecision(2)
     << 1e6 * schedule.fill_latency_s << " us, buffers "
     << schedule.total_buffer_bytes << " B, extra arrays "
     << schedule.extra_arrays << "\n";
  return os.str();
}

}  // namespace tinyadc::hw
