#include "core/prune_spec.hpp"

#include "artifact/format.hpp"
#include "tensor/check.hpp"

namespace tinyadc::core {

namespace {
constexpr std::uint32_t kPruneSpecVersion = 1;
}  // namespace

void serialize(const LayerPruneSpec& spec, artifact::SectionWriter& w) {
  w.pod(kPruneSpecVersion);
  w.str(spec.layer_name);
  w.pod(static_cast<std::uint8_t>(spec.enabled ? 1 : 0));
  w.pod(spec.cp_keep);
  w.pod(spec.remove_filters);
  w.pod(spec.remove_shapes);
}

LayerPruneSpec deserialize_prune_spec(artifact::SectionReader& r) {
  const auto version = r.pod<std::uint32_t>();
  TINYADC_CHECK(version == kPruneSpecVersion,
                "unsupported prune-spec version " << version);
  LayerPruneSpec spec;
  spec.layer_name = r.str();
  spec.enabled = r.pod<std::uint8_t>() != 0;
  spec.cp_keep = r.pod<std::int64_t>();
  spec.remove_filters = r.pod<std::int64_t>();
  spec.remove_shapes = r.pod<std::int64_t>();
  TINYADC_CHECK(spec.cp_keep >= 0 && spec.remove_filters >= 0 &&
                    spec.remove_shapes >= 0,
                "negative prune-spec counts for layer " << spec.layer_name);
  return spec;
}

void serialize(const StructuralSelection& selection,
               artifact::SectionWriter& w) {
  w.vec(selection.rows);
  w.vec(selection.cols);
}

StructuralSelection deserialize_selection(artifact::SectionReader& r) {
  StructuralSelection selection;
  selection.rows = r.vec<std::int64_t>();
  selection.cols = r.vec<std::int64_t>();
  for (const auto& list : {selection.rows, selection.cols})
    for (std::size_t i = 0; i < list.size(); ++i)
      TINYADC_CHECK(list[i] >= 0 && (i == 0 || list[i - 1] < list[i]),
                    "structural selection is not strictly ascending");
  return selection;
}

StructuralSelection project_combined_tracked(MatrixRef m,
                                             const LayerPruneSpec& spec,
                                             CrossbarDims dims) {
  StructuralSelection selection;
  if (!spec.active()) return selection;
  // §III-D ordering: filter-shape pruning first — its removals shift the
  // crossbar block boundaries the CP constraint is defined over.
  if (spec.remove_shapes > 0) {
    selection.rows =
        lowest_norm_rows({m.data, m.rows, m.cols}, spec.remove_shapes);
    zero_rows(m, selection.rows);
  }
  if (spec.remove_filters > 0) {
    selection.cols =
        lowest_norm_columns({m.data, m.rows, m.cols}, spec.remove_filters);
    zero_columns(m, selection.cols);
  }
  if (spec.cp_keep > 0)
    project_column_proportional_reformed(m, dims, spec.cp_keep,
                                         selection.rows);
  return selection;
}

void project_combined(MatrixRef m, const LayerPruneSpec& spec,
                      CrossbarDims dims) {
  (void)project_combined_tracked(m, spec, dims);
}

bool satisfies_combined(ConstMatrixRef m, const LayerPruneSpec& spec,
                        CrossbarDims dims) {
  StructuralSelection selection;
  selection.rows = zero_row_indices(m, spec.remove_shapes);
  selection.cols = zero_column_indices(m, spec.remove_filters);
  return satisfies_combined(m, spec, dims, selection);
}

bool satisfies_combined(ConstMatrixRef m, const LayerPruneSpec& spec,
                        CrossbarDims dims,
                        const StructuralSelection& selection) {
  if (!spec.active()) return true;
  if (spec.remove_shapes > 0) {
    std::int64_t zero_rows_count = 0;
    for (std::int64_t r = 0; r < m.rows; ++r) {
      bool all_zero = true;
      for (std::int64_t c = 0; c < m.cols && all_zero; ++c)
        all_zero = (m.at(r, c) == 0.0F);
      zero_rows_count += all_zero;
    }
    if (zero_rows_count < spec.remove_shapes) return false;
  }
  if (spec.remove_filters > 0) {
    std::int64_t zero_cols_count = 0;
    for (std::int64_t c = 0; c < m.cols; ++c) {
      bool all_zero = true;
      for (std::int64_t r = 0; r < m.rows && all_zero; ++r)
        all_zero = (m.at(r, c) == 0.0F);
      zero_cols_count += all_zero;
    }
    if (zero_cols_count < spec.remove_filters) return false;
  }
  if (spec.cp_keep > 0 &&
      max_column_nonzeros_reformed(m, dims, selection.rows) > spec.cp_keep)
    return false;
  return true;
}

}  // namespace tinyadc::core
