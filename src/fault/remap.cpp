#include "fault/remap.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/check.hpp"

namespace tinyadc::fault {

namespace {

/// Applies every fault in [begin, end) (all belonging to one weight's cell
/// group) to code `q`; returns the post-fault code.
std::int32_t faulted_code(std::int32_t q,
                          const std::vector<const CellFault*>& faults,
                          int cell_bits, int slices, int max_level) {
  auto pos = xbar::slice_magnitude(q > 0 ? q : 0, cell_bits, slices);
  auto neg = xbar::slice_magnitude(q < 0 ? -q : 0, cell_bits, slices);
  for (const CellFault* f : faults) {
    auto& plane = f->polarity == 0 ? pos : neg;
    plane[static_cast<std::size_t>(f->slice)] =
        f->stuck_at_zero ? 0 : max_level;
  }
  return xbar::unslice_magnitude(pos, cell_bits) -
         xbar::unslice_magnitude(neg, cell_bits);
}

/// Per-block index: faults grouped by (physical row, column).
struct BlockFaultIndex {
  // key = row * cols + col → pointers into the FaultMap's storage.
  std::vector<std::vector<const CellFault*>> by_cell;
  explicit BlockFaultIndex(const xbar::CrossbarBlock& block,
                           const std::vector<CellFault>& faults) {
    by_cell.resize(static_cast<std::size_t>(block.rows * block.cols));
    for (const auto& f : faults)
      by_cell[static_cast<std::size_t>(f.row * block.cols + f.col)]
          .push_back(&f);
  }
  const std::vector<const CellFault*>& at(std::int64_t row,
                                          std::int64_t col,
                                          std::int64_t cols) const {
    return by_cell[static_cast<std::size_t>(row * cols + col)];
  }
};

void check_alignment(const xbar::MappedLayer& layer, const FaultMap& map,
                     const RowPermutations& perms) {
  TINYADC_CHECK(map.blocks.size() == layer.blocks.size(),
                "fault map block count mismatch");
  TINYADC_CHECK(perms.size() == layer.blocks.size(),
                "permutation block count mismatch");
  for (std::size_t b = 0; b < perms.size(); ++b)
    TINYADC_CHECK(static_cast<std::int64_t>(perms[b].size()) ==
                      layer.blocks[b].rows,
                  "permutation length mismatch on block " << b);
}

}  // namespace

std::int64_t FaultMap::total_faults() const {
  std::int64_t n = 0;
  for (const auto& b : blocks) n += static_cast<std::int64_t>(b.size());
  return n;
}

FaultMap sample_fault_map(const xbar::MappedLayer& layer,
                          const FaultSpec& spec, Rng& rng) {
  TINYADC_CHECK(spec.rate >= 0.0 && spec.rate <= 1.0, "rate must be in [0,1]");
  FaultMap map;
  const int slices = layer.config.slices();
  map.blocks.resize(layer.blocks.size());
  for (std::size_t b = 0; b < layer.blocks.size(); ++b) {
    const auto& block = layer.blocks[b];
    // Cell visit order matches inject_faults (positive plane's slices,
    // then the negative plane's) so the two APIs consume identical random
    // streams — pinned by remap_test's equivalence check.
    for (std::int64_t r = 0; r < block.rows; ++r)
      for (std::int64_t c = 0; c < block.cols; ++c)
        for (int pol = 0; pol < 2; ++pol)
          for (int s = 0; s < slices; ++s) {
            if (!rng.bernoulli(spec.rate)) continue;
            CellFault f;
            f.row = static_cast<std::int32_t>(r);
            f.col = static_cast<std::int32_t>(c);
            f.slice = static_cast<std::int16_t>(s);
            f.polarity = static_cast<std::int16_t>(pol);
            f.stuck_at_zero = rng.bernoulli(spec.sa0_fraction);
            map.blocks[b].push_back(f);
          }
  }
  return map;
}

RowPermutations identity_permutations(const xbar::MappedLayer& layer) {
  RowPermutations perms(layer.blocks.size());
  for (std::size_t b = 0; b < layer.blocks.size(); ++b) {
    perms[b].resize(static_cast<std::size_t>(layer.blocks[b].rows));
    std::iota(perms[b].begin(), perms[b].end(), 0);
  }
  return perms;
}

FaultStats apply_fault_map(xbar::MappedLayer& layer, const FaultMap& map,
                           const RowPermutations& perms) {
  check_alignment(layer, map, perms);
  FaultStats stats;
  const int slices = layer.config.slices();
  const int max_level = (1 << layer.config.cell_bits) - 1;
  for (std::size_t b = 0; b < layer.blocks.size(); ++b) {
    auto& block = layer.blocks[b];
    const BlockFaultIndex index(block, map.blocks[b]);
    stats.cells += block.rows * block.cols * slices * 2;
    for (const auto& f : map.blocks[b]) (f.stuck_at_zero ? stats.sa0
                                                         : stats.sa1)++;
    for (std::int64_t r = 0; r < block.rows; ++r) {
      const std::int64_t p = perms[b][static_cast<std::size_t>(r)];
      for (std::int64_t c = 0; c < block.cols; ++c) {
        const auto& faults = index.at(p, c, block.cols);
        if (faults.empty()) continue;
        const std::int32_t q = block.at(r, c);
        const std::int32_t new_q =
            faulted_code(q, faults, layer.config.cell_bits, slices,
                         max_level);
        if (new_q != q) {
          block.q.mut()[static_cast<std::size_t>(r * block.cols + c)] = new_q;
          ++stats.weights_changed;
        }
      }
    }
    block.max_col_nonzeros = 0;
    for (std::int64_t c = 0; c < block.cols; ++c) {
      std::int64_t nz = 0;
      for (std::int64_t r = 0; r < block.rows; ++r)
        nz += (block.at(r, c) != 0);
      block.max_col_nonzeros = std::max(block.max_col_nonzeros, nz);
    }
  }
  return stats;
}

std::int64_t fault_damage(const xbar::MappedLayer& layer, const FaultMap& map,
                          const RowPermutations& perms) {
  check_alignment(layer, map, perms);
  std::int64_t damage = 0;
  const int slices = layer.config.slices();
  const int max_level = (1 << layer.config.cell_bits) - 1;
  for (std::size_t b = 0; b < layer.blocks.size(); ++b) {
    const auto& block = layer.blocks[b];
    const BlockFaultIndex index(block, map.blocks[b]);
    for (std::int64_t r = 0; r < block.rows; ++r) {
      const std::int64_t p = perms[b][static_cast<std::size_t>(r)];
      for (std::int64_t c = 0; c < block.cols; ++c) {
        const auto& faults = index.at(p, c, block.cols);
        if (faults.empty()) continue;
        const std::int32_t q = block.at(r, c);
        damage += std::abs(
            faulted_code(q, faults, layer.config.cell_bits, slices,
                         max_level) -
            q);
      }
    }
  }
  return damage;
}

RowPermutations remap_rows_greedy(const xbar::MappedLayer& layer,
                                  const FaultMap& map) {
  TINYADC_CHECK(map.blocks.size() == layer.blocks.size(),
                "fault map block count mismatch");
  RowPermutations perms(layer.blocks.size());
  const int slices = layer.config.slices();
  const int max_level = (1 << layer.config.cell_bits) - 1;
  for (std::size_t b = 0; b < layer.blocks.size(); ++b) {
    const auto& block = layer.blocks[b];
    const BlockFaultIndex index(block, map.blocks[b]);
    // Logical rows by descending total |code| — protect the important ones
    // first.
    std::vector<std::int64_t> order(static_cast<std::size_t>(block.rows));
    std::iota(order.begin(), order.end(), 0);
    std::vector<std::int64_t> importance(order.size(), 0);
    for (std::int64_t r = 0; r < block.rows; ++r)
      for (std::int64_t c = 0; c < block.cols; ++c)
        importance[static_cast<std::size_t>(r)] += std::abs(block.at(r, c));
    std::sort(order.begin(), order.end(),
              [&importance](std::int64_t a, std::int64_t c) {
                if (importance[static_cast<std::size_t>(a)] !=
                    importance[static_cast<std::size_t>(c)])
                  return importance[static_cast<std::size_t>(a)] >
                         importance[static_cast<std::size_t>(c)];
                return a < c;
              });

    std::vector<bool> taken(static_cast<std::size_t>(block.rows), false);
    perms[b].assign(static_cast<std::size_t>(block.rows), -1);
    for (std::int64_t r : order) {
      std::int64_t best_p = -1;
      std::int64_t best_damage = 0;
      for (std::int64_t p = 0; p < block.rows; ++p) {
        if (taken[static_cast<std::size_t>(p)]) continue;
        std::int64_t damage = 0;
        for (std::int64_t c = 0; c < block.cols; ++c) {
          const auto& faults = index.at(p, c, block.cols);
          if (faults.empty()) continue;
          const std::int32_t q = block.at(r, c);
          damage += std::abs(
              faulted_code(q, faults, layer.config.cell_bits, slices,
                           max_level) -
              q);
        }
        if (best_p < 0 || damage < best_damage) {
          best_p = p;
          best_damage = damage;
          if (damage == 0) break;  // cannot do better
        }
      }
      perms[b][static_cast<std::size_t>(r)] = best_p;
      taken[static_cast<std::size_t>(best_p)] = true;
    }
  }
  return perms;
}

}  // namespace tinyadc::fault
