// Cross-module property tests for COMBINED pruning: the structured reform
// (compaction) interacts with the CP constraint and the analog datapath.
// This is the §III-D machinery end-to-end: shape-prune → filter-prune →
// CP on the reformed geometry → map with removal → Eq. 1 ADC → exact MVM.
#include <gtest/gtest.h>

#include <tuple>

#include "core/prune_spec.hpp"
#include "msim/analog_mvm.hpp"
#include "tensor/ops.hpp"

namespace tinyadc {
namespace {

/// Random column-major matrix, combined-projected, returned with its spec.
struct PrunedCase {
  std::vector<float> store;  // column-major (weight-storage layout)
  Tensor matrix;             // row-major for the mapper
  core::LayerPruneSpec spec;
  core::StructuralSelection selection;  // what the projection removed

  xbar::StructuralRemoval removal() const {
    return {selection.rows, selection.cols};
  }
};

PrunedCase make_case(std::int64_t rows, std::int64_t cols,
                     core::CrossbarDims dims, std::int64_t keep,
                     std::int64_t remove_shapes, std::int64_t remove_filters,
                     std::uint64_t seed) {
  PrunedCase pc;
  Rng rng(seed);
  pc.store.resize(static_cast<std::size_t>(rows * cols));
  for (auto& v : pc.store) v = rng.normal(0.0F, 1.0F);
  pc.spec.enabled = true;
  pc.spec.cp_keep = keep;
  pc.spec.remove_shapes = remove_shapes;
  pc.spec.remove_filters = remove_filters;
  pc.selection = core::project_combined_tracked({pc.store.data(), rows, cols},
                                                pc.spec, dims);
  pc.matrix = Tensor({rows, cols});
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t c = 0; c < cols; ++c)
      pc.matrix.at(r, c) = pc.store[static_cast<std::size_t>(c * rows + r)];
  return pc;
}

TEST(CombinedReform, ProjectionSatisfiesReformedConstraint) {
  const core::CrossbarDims dims{8, 8};
  auto pc = make_case(24, 16, dims, 2, 8, 8, 1);
  EXPECT_TRUE(core::satisfies_combined({pc.store.data(), 24, 16}, pc.spec,
                                       dims, pc.selection));
}

TEST(CombinedReform, ReformedOccupancyHonorsKeepAfterCompaction) {
  // 24 rows with 8 removed → 16 kept rows re-tile into two 8-row blocks;
  // in-place (non-reformed) blocks would straddle differently.
  const core::CrossbarDims dims{8, 8};
  auto pc = make_case(24, 16, dims, 2, 8, 0, 2);
  const auto removal = pc.removal();
  ASSERT_EQ(removal.rows.size(), 8U);
  xbar::MappingConfig cfg;
  cfg.dims = {dims.rows, dims.cols};
  const auto layer = xbar::map_matrix(pc.matrix, "l", cfg, removal);
  EXPECT_LE(layer.max_active_rows(), 2);
}

TEST(CombinedReform, WithoutReformedProjectionOccupancyCanOverflow) {
  // Demonstrates WHY §III-D forbids shape pruning after CP pruning: apply
  // plain (non-reformed) CP first, then remove shapes, then compact — the
  // merged blocks can exceed the keep bound.
  const core::CrossbarDims dims{8, 8};
  Rng rng(3);
  constexpr std::int64_t rows = 16, cols = 4;
  std::vector<float> store(rows * cols);
  for (auto& v : store) v = rng.normal(0.0F, 1.0F);
  // CP first (wrong order).
  core::project_column_proportional({store.data(), rows, cols}, dims, 2);
  // Now remove 4 shapes — rows that carry surviving weights in NEITHER
  // block would be ideal, but lowest-norm picks zero-norm rows arbitrarily;
  // force the bad case by removing 4 rows that are zero, merging blocks.
  // Construct: block 0 rows {0,1} and block 1 rows {8,9} hold the keepers
  // for column 0; removing rows 2..5 (if zero) merges them into one block.
  std::vector<std::int64_t> removable;
  for (std::int64_t r = 0; r < rows && removable.size() < 4; ++r) {
    bool all_zero = true;
    for (std::int64_t c = 0; c < cols && all_zero; ++c)
      all_zero = (store[static_cast<std::size_t>(c * rows + r)] == 0.0F);
    if (all_zero) removable.push_back(r);
  }
  if (removable.size() < 4) GTEST_SKIP() << "no mergeable rows drawn";
  Tensor m({rows, cols});
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t c = 0; c < cols; ++c)
      m.at(r, c) = store[static_cast<std::size_t>(c * rows + r)];
  xbar::StructuralRemoval removal;
  removal.rows = removable;
  xbar::MappingConfig cfg;
  cfg.dims = {dims.rows, dims.cols};
  const auto layer = xbar::map_matrix(m, "l", cfg, removal);
  // Occupancy may exceed 2 — and whenever it does, the Eq. 1 sizing grows
  // with it, so exactness is still guaranteed (measured census drives it).
  msim::AnalogLayerSim sim(layer, {});
  std::vector<std::int32_t> x(static_cast<std::size_t>(rows));
  for (auto& v : x)
    v = static_cast<std::int32_t>(Rng(9).uniform_int(1U << cfg.input_bits));
  EXPECT_EQ(sim.mvm(x), xbar::reference_mvm(layer, x));
}

/// The full combined exactness sweep (P2 extended to §III-D): reformed
/// mapping with the census-sized ADC is bit-exact for every configuration.
class CombinedExactness
    : public ::testing::TestWithParam<
          std::tuple<std::int64_t, std::int64_t, std::int64_t>> {};

TEST_P(CombinedExactness, ReformedAnalogMvmIsExact) {
  const auto [keep, remove_shapes, remove_filters] = GetParam();
  const core::CrossbarDims dims{8, 8};
  auto pc = make_case(24, 16, dims, keep, remove_shapes, remove_filters,
                      static_cast<std::uint64_t>(keep * 100 + remove_shapes *
                                                 10 + remove_filters));
  const auto removal = pc.removal();
  xbar::MappingConfig cfg;
  cfg.dims = {dims.rows, dims.cols};
  cfg.input_bits = 6;
  const auto layer = xbar::map_matrix(pc.matrix, "l", cfg, removal);
  EXPECT_LE(layer.max_active_rows(), keep);

  msim::AnalogLayerSim sim(layer, {});
  Rng rng(1234);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<std::int32_t> x(24);
    for (auto& v : x) v = static_cast<std::int32_t>(rng.uniform_int(64));
    EXPECT_EQ(sim.mvm(x), xbar::reference_mvm(layer, x));
  }
  EXPECT_EQ(sim.stats().adc_clip_events, 0);
  // Structured reform converted into block reduction.
  if (remove_filters >= dims.cols || remove_shapes >= dims.rows)
    EXPECT_LT(layer.total_blocks(), layer.dense_blocks());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CombinedExactness,
    ::testing::Combine(::testing::Values<std::int64_t>(1, 2, 4),
                       ::testing::Values<std::int64_t>(0, 8),
                       ::testing::Values<std::int64_t>(0, 8)));

TEST(CombinedReform, DemapPlacesWeightsAtOriginalCoordinates) {
  const core::CrossbarDims dims{8, 8};
  auto pc = make_case(24, 16, dims, 2, 8, 8, 7);
  const auto removal = pc.removal();
  xbar::MappingConfig cfg;
  cfg.dims = {dims.rows, dims.cols};
  const auto layer = xbar::map_matrix(pc.matrix, "l", cfg, removal);
  const Tensor back = layer.demap();
  EXPECT_LT(max_abs_diff(back, pc.matrix), layer.quant.scale * 0.5F + 1e-6F);
  // Removed rows/cols demap to exact zeros.
  for (std::int64_t r : removal.rows)
    for (std::int64_t c = 0; c < 16; ++c) EXPECT_EQ(back.at(r, c), 0.0F);
  for (std::int64_t c : removal.cols)
    for (std::int64_t r = 0; r < 24; ++r) EXPECT_EQ(back.at(r, c), 0.0F);
}

}  // namespace
}  // namespace tinyadc
