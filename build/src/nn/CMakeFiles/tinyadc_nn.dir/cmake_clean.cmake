file(REMOVE_RECURSE
  "CMakeFiles/tinyadc_nn.dir/activations.cpp.o"
  "CMakeFiles/tinyadc_nn.dir/activations.cpp.o.d"
  "CMakeFiles/tinyadc_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/tinyadc_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/tinyadc_nn.dir/conv.cpp.o"
  "CMakeFiles/tinyadc_nn.dir/conv.cpp.o.d"
  "CMakeFiles/tinyadc_nn.dir/init.cpp.o"
  "CMakeFiles/tinyadc_nn.dir/init.cpp.o.d"
  "CMakeFiles/tinyadc_nn.dir/linear.cpp.o"
  "CMakeFiles/tinyadc_nn.dir/linear.cpp.o.d"
  "CMakeFiles/tinyadc_nn.dir/loss.cpp.o"
  "CMakeFiles/tinyadc_nn.dir/loss.cpp.o.d"
  "CMakeFiles/tinyadc_nn.dir/model.cpp.o"
  "CMakeFiles/tinyadc_nn.dir/model.cpp.o.d"
  "CMakeFiles/tinyadc_nn.dir/models.cpp.o"
  "CMakeFiles/tinyadc_nn.dir/models.cpp.o.d"
  "CMakeFiles/tinyadc_nn.dir/optimizer.cpp.o"
  "CMakeFiles/tinyadc_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/tinyadc_nn.dir/pool.cpp.o"
  "CMakeFiles/tinyadc_nn.dir/pool.cpp.o.d"
  "CMakeFiles/tinyadc_nn.dir/sequential.cpp.o"
  "CMakeFiles/tinyadc_nn.dir/sequential.cpp.o.d"
  "CMakeFiles/tinyadc_nn.dir/trainer.cpp.o"
  "CMakeFiles/tinyadc_nn.dir/trainer.cpp.o.d"
  "libtinyadc_nn.a"
  "libtinyadc_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinyadc_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
