#include "serve/loadgen.hpp"

#include <chrono>
#include <cstring>
#include <deque>
#include <sstream>
#include <thread>

namespace tinyadc::serve {

namespace {

/// Copies example `index` of `ds` into a standalone (C, H, W) tensor.
Tensor extract_image(const data::Dataset& ds, std::int64_t index) {
  const std::int64_t chw = ds.images.numel() / ds.images.dim(0);
  Tensor image({ds.images.dim(1), ds.images.dim(2), ds.images.dim(3)});
  std::memcpy(image.data(), ds.images.data() + index * chw,
              static_cast<std::size_t>(chw) * sizeof(float));
  return image;
}

}  // namespace

LoadgenReport run_loadgen(InferenceEngine& engine, const data::Dataset& ds,
                          const LoadgenConfig& config) {
  TINYADC_CHECK(ds.size() > 0, "loadgen needs a non-empty dataset");
  TINYADC_CHECK(config.requests > 0, "loadgen needs requests > 0");
  using Clock = std::chrono::steady_clock;

  struct Outstanding {
    std::int64_t index = 0;  ///< dataset row (for the label check)
    std::future<InferenceResult> future;
  };

  LoadgenReport report;
  std::int64_t correct = 0;
  std::int64_t completed = 0;
  std::uint64_t digest = fnv1a(nullptr, 0);
  std::deque<Outstanding> window;

  auto drain_one = [&] {
    Outstanding o = std::move(window.front());
    window.pop_front();
    const InferenceResult r = o.future.get();
    digest = fnv1a(r.logits.data(), r.logits.size() * sizeof(float), digest);
    digest = fnv1a(&r.label, sizeof(r.label), digest);
    if (r.label == ds.labels[static_cast<std::size_t>(o.index)]) ++correct;
    ++completed;
  };

  const auto t0 = Clock::now();
  for (std::int64_t i = 0; i < config.requests; ++i) {
    if (config.target_qps > 0.0) {
      const auto due =
          t0 + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(
                       static_cast<double>(i) / config.target_qps));
      std::this_thread::sleep_until(due);
    }
    const std::int64_t index = i % ds.size();
    Outstanding o;
    o.index = index;
    o.future = engine.submit(extract_image(ds, index));
    window.push_back(std::move(o));
    while (window.size() > config.max_outstanding) drain_one();
  }
  engine.wait_idle();  // releases deterministic partial batches
  while (!window.empty()) drain_one();
  const double wall =
      std::chrono::duration<double>(Clock::now() - t0).count();

  report.achieved_qps =
      wall > 0.0 ? static_cast<double>(completed) / wall : 0.0;
  report.accuracy = completed
                        ? static_cast<double>(correct) /
                              static_cast<double>(completed)
                        : 0.0;
  report.output_digest = digest;
  report.stats = engine.stats();
  return report;
}

std::string LoadgenReport::to_json() const {
  std::ostringstream out;
  std::string inner = stats.to_json();
  inner.pop_back();  // strip the closing brace; extend the same object
  out << inner << ", \"achieved_qps\": " << achieved_qps
      << ", \"accuracy\": " << accuracy << ", \"output_digest\": \""
      << std::hex << output_digest << "\"}";
  return out.str();
}

}  // namespace tinyadc::serve
