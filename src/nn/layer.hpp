// Layer interface for the explicit-backprop NN stack.
//
// There is no tape/autograd: every layer caches what its backward pass needs
// during forward and implements the adjoint computation directly. A model is
// a tree of Layers (composites chain their children), which is all that the
// CNN topologies in this project (ResNet/VGG) require.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nn/param.hpp"
#include "tensor/tensor.hpp"

namespace tinyadc::nn {

/// Injectable inference-time MVM backend for Conv2d/Linear.
///
/// When installed, the layer's *inference* forward pass offers its input
/// matrix to the hook instead of running the float GEMM:
///  * Conv2d passes the per-sample im2col patch matrix (patch_rows ×
///    patch_cols) and expects (out_channels × patch_cols) back (pre-bias);
///  * Linear passes the (batch × in_features) input and expects
///    (batch × out_features) back (pre-bias).
/// Returning std::nullopt falls back to the normal float path (used e.g.
/// during activation-range calibration). Training passes never consult the
/// hook. This is how msim::AnalogNetwork routes a whole model's inference
/// through the mixed-signal crossbar simulator.
using MvmHook = std::function<std::optional<Tensor>(const Tensor& input)>;

class Layer;
using LayerPtr = std::unique_ptr<Layer>;

/// Abstract base for all layers.
class Layer {
 public:
  virtual ~Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Deep copy of this layer (and descendants): configuration, parameter
  /// values and inference buffers (BN running stats) are copied; gradient
  /// accumulators, forward caches and MVM hooks are not. Replicas share no
  /// storage with the original, so they can run on other threads — the
  /// basis of the concurrent fault Monte-Carlo (fault::evaluate).
  virtual LayerPtr clone() const = 0;

  /// Computes the layer output for a batch input. When `training` is true
  /// the layer caches activations needed by backward() and batch-dependent
  /// statistics (BatchNorm) are computed from the batch.
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Propagates `grad_output` (gradient of the loss w.r.t. this layer's
  /// output) backwards: accumulates parameter gradients and returns the
  /// gradient w.r.t. the layer's input. Must be called after a
  /// forward(…, /*training=*/true) on the same batch.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// This layer's own parameters (not descendants').
  virtual std::vector<Param*> params() { return {}; }

  /// Invokes `fn` on this layer and every descendant, pre-order.
  virtual void visit(const std::function<void(Layer&)>& fn) { fn(*this); }

  /// Layer instance name (unique within its parent; used for param paths).
  const std::string& name() const { return name_; }

 protected:
  explicit Layer(std::string name) : name_(std::move(name)) {}

 private:
  std::string name_;
};

}  // namespace tinyadc::nn
