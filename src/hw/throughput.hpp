// Peak-throughput model (Table III of the paper).
//
// The published reference rows (DaDianNao, TPU, PUMA, ISAAC) are constants
// from the cited papers; the TinyADC(ISAAC) row is *derived*: starting from
// the ISAAC preset, shrinking every non-first-layer ADC from 8 bits to the
// TinyADC worst-case resolution changes tile area and power through the
// cost model, and peak GOPs stay fixed per tile (same crossbar count and
// cycle time), so
//     GOPs/s/mm² scales by tile_area(8b) / tile_area(b)
//     GOPs/W     scales by tile_power(8b) / tile_power(b)
// — unless the freed ADC power budget is reinvested in faster ADCs
// ("designers are able to select smaller ADCs with higher frequency or use
// more ADCs per crossbar"), modeled by the iso-power mode.
#pragma once

#include <string>
#include <vector>

#include "hw/cost_model.hpp"

namespace tinyadc::hw {

/// One Table III row.
struct ThroughputRow {
  std::string architecture;
  double gops_per_s_mm2 = 0.0;
  double gops_per_w = 0.0;
  bool derived = false;  ///< false: published constant; true: our model
};

/// Published reference rows (DaDianNao MICRO'14, TPU, PUMA ASPLOS'19,
/// ISAAC ISCA'16 as quoted in the paper's Table III).
std::vector<ThroughputRow> reference_rows();

/// How the freed ADC budget is spent.
enum class AdcReinvestment {
  kIsoRate,   ///< same sample rate: smaller & cooler ADC
  kIsoPower,  ///< raise ADC rate until the 8-bit power is spent again
};

/// Derives the TinyADC(ISAAC) row from the ISAAC reference row: all tiles'
/// ADCs drop from `baseline_bits` to `tinyadc_bits` (the worst-case layer
/// requirement of the reconfigurable design), with cost ratios from
/// `constants`.
ThroughputRow tinyadc_row(const CostConstants& constants, int baseline_bits,
                          int tinyadc_bits,
                          AdcReinvestment mode = AdcReinvestment::kIsoRate);

/// Renders Table III (reference rows + the derived row).
std::string to_table(const std::vector<ThroughputRow>& rows);

}  // namespace tinyadc::hw
