// Programming-cost model and the IR-drop analog non-ideality.
#include <gtest/gtest.h>

#include "core/projection.hpp"
#include "msim/analog_mvm.hpp"
#include "tensor/ops.hpp"
#include "xbar/programming.hpp"

namespace tinyadc {
namespace {

xbar::MappedLayer mapped(const Tensor& m, std::int64_t xbar_dim = 8) {
  xbar::MappingConfig cfg;
  cfg.dims = {xbar_dim, xbar_dim};
  return xbar::map_matrix(m, "l", cfg);
}

TEST(Programming, ZeroLayerCostsNothing) {
  const auto report = xbar::programming_cost(mapped(Tensor::zeros({8, 8})));
  EXPECT_EQ(report.cells_programmed, 0);
  EXPECT_DOUBLE_EQ(report.time_s, 0.0);
  EXPECT_DOUBLE_EQ(report.energy_j, 0.0);
  EXPECT_GT(report.cells_total, 0);
}

TEST(Programming, DenseLayerProgramsMostCells) {
  Rng rng(1);
  const auto report = xbar::programming_cost(mapped(Tensor::randn({8, 8}, rng)));
  EXPECT_GT(report.cells_programmed, 0);
  EXPECT_GT(report.time_s, 0.0);
  EXPECT_GT(report.energy_j, 0.0);
}

TEST(Programming, CpPruningCutsProgrammingCost) {
  Rng rng(2);
  Tensor dense = Tensor::randn({16, 16}, rng);
  Tensor pruned = dense.clone();
  // Prune columns of the row-major matrix directly (top-1 per 8-row block).
  for (std::int64_t c = 0; c < 16; ++c)
    for (std::int64_t r0 = 0; r0 < 16; r0 += 8) {
      std::int64_t best = r0;
      for (std::int64_t r = r0; r < r0 + 8; ++r)
        if (std::fabs(pruned.at(r, c)) > std::fabs(pruned.at(best, c)))
          best = r;
      for (std::int64_t r = r0; r < r0 + 8; ++r)
        if (r != best) pruned.at(r, c) = 0.0F;
    }
  const auto dense_report = xbar::programming_cost(mapped(dense));
  const auto pruned_report = xbar::programming_cost(mapped(pruned));
  EXPECT_LT(pruned_report.cells_programmed, dense_report.cells_programmed);
  EXPECT_LT(pruned_report.energy_j, dense_report.energy_j);
  EXPECT_LE(pruned_report.time_s, dense_report.time_s);
}

TEST(Programming, HigherLevelsTakeLonger) {
  // A layer whose codes are all small programs faster than one maxed out.
  Tensor small = Tensor::full({8, 8}, 0.1F);
  Tensor big = Tensor::full({8, 8}, 0.1F);
  big.at(0, 0) = 1.0F;  // rescales quantization so most codes are small…
  // Compare instead two uniform layers with different magnitudes relative
  // to their own scale: all-max vs all-min nonzero codes.
  Tensor all_max = Tensor::ones({8, 8});
  const auto t_max = xbar::programming_cost(mapped(all_max)).time_s;
  Tensor tiny_codes = Tensor::ones({8, 8});
  tiny_codes.at(0, 0) = 127.0F;  // one huge weight → others quantize to 1
  const auto t_small = xbar::programming_cost(mapped(tiny_codes)).time_s;
  EXPECT_LT(t_small, t_max);
}

TEST(Programming, NetworkAggregates) {
  Rng rng(3);
  xbar::MappedNetwork net;
  net.config = xbar::MappingConfig{};
  net.layers.push_back(mapped(Tensor::randn({8, 8}, rng)));
  net.layers.push_back(mapped(Tensor::randn({8, 4}, rng)));
  const auto total = xbar::programming_cost(net);
  const auto a = xbar::programming_cost(net.layers[0]);
  const auto b = xbar::programming_cost(net.layers[1]);
  EXPECT_DOUBLE_EQ(total.energy_j, a.energy_j + b.energy_j);
  EXPECT_EQ(total.cells_programmed, a.cells_programmed + b.cells_programmed);
}

TEST(Programming, ValidatesVoltage) {
  Rng rng(4);
  xbar::ProgrammingConfig cfg;
  cfg.program_voltage = -0.1;  // above SET threshold
  EXPECT_THROW(xbar::programming_cost(mapped(Tensor::randn({4, 4}, rng)), cfg),
               CheckError);
}

TEST(IrDrop, ZeroAlphaIsExact) {
  Rng rng(5);
  const auto layer = mapped(Tensor::randn({8, 8}, rng));
  msim::MsimConfig cfg;
  cfg.ir_drop_alpha = 0.0;
  msim::AnalogLayerSim sim(layer, cfg);
  std::vector<std::int32_t> x(8, 200);
  EXPECT_EQ(sim.mvm(x), xbar::reference_mvm(layer, x));
}

TEST(IrDrop, ErrorGrowsWithAlpha) {
  Rng rng(6);
  const auto layer = mapped(Tensor::randn({8, 8}, rng));
  std::vector<std::int32_t> x(8, 200);
  const auto ref = xbar::reference_mvm(layer, x);
  double prev_err = -1.0;
  for (double alpha : {0.05, 0.2, 0.8}) {
    msim::MsimConfig cfg;
    cfg.ir_drop_alpha = alpha;
    msim::AnalogLayerSim sim(layer, cfg);
    const auto y = sim.mvm(x);
    double err = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i)
      err += std::abs(static_cast<double>(y[i]) - ref[i]);
    EXPECT_GE(err, prev_err);
    prev_err = err;
  }
  EXPECT_GT(prev_err, 0.0);
}

TEST(IrDrop, CpPrunedColumnsSufferLess) {
  // Same alpha, same weights where kept: the CP-pruned layer's lighter
  // bitline load must yield a smaller relative error than the dense one.
  Rng rng(7);
  Tensor dense = Tensor::randn({16, 8}, rng);
  apply_(dense, [](float v) { return v > 0 ? v + 0.5F : v - 0.5F; });
  Tensor pruned = dense.clone();
  for (std::int64_t c = 0; c < 8; ++c) {
    std::int64_t kept = 0;
    for (std::int64_t r = 0; r < 16; ++r) {
      if (kept < 2 && std::fabs(pruned.at(r, c)) > 1.2F) {
        ++kept;
        continue;
      }
      pruned.at(r, c) = 0.0F;
    }
  }
  auto rel_error = [](const Tensor& m) {
    xbar::MappingConfig mc;
    mc.dims = {16, 16};
    const auto layer = xbar::map_matrix(m, "l", mc);
    msim::MsimConfig cfg;
    cfg.ir_drop_alpha = 0.5;
    msim::AnalogLayerSim sim(layer, cfg);
    std::vector<std::int32_t> x(16, 255);
    const auto y = sim.mvm(x);
    const auto ref = xbar::reference_mvm(layer, x);
    double err = 0.0, norm = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
      err += std::abs(static_cast<double>(y[i]) - ref[i]);
      norm += std::abs(static_cast<double>(ref[i])) + 1.0;
    }
    return err / norm;
  };
  EXPECT_LT(rel_error(pruned), rel_error(dense));
}

}  // namespace
}  // namespace tinyadc
