file(REMOVE_RECURSE
  "CMakeFiles/combined_reform_test.dir/combined_reform_test.cpp.o"
  "CMakeFiles/combined_reform_test.dir/combined_reform_test.cpp.o.d"
  "combined_reform_test"
  "combined_reform_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combined_reform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
