# Empty dependencies file for msim_test.
# This may be replaced when dependencies are built.
