// High-level TinyADC pruning pipeline: spec builders + the full
// pretrain → ADMM → hard-prune → masked-retrain flow.
#pragma once

#include "core/admm.hpp"
#include "core/stats.hpp"
#include "data/dataset.hpp"
#include "nn/trainer.hpp"

namespace tinyadc::core {

/// Options controlling which layers the spec builders touch.
struct SpecOptions {
  bool skip_first_conv = true;  ///< paper: the first conv layer stays dense
  bool include_linear = false;  ///< also constrain FC layers
};

/// Uniform column-proportional specs at rate `cp_rate` (keep = max(1,
/// dims.rows / cp_rate)) for every eligible layer, per Table I's protocol.
std::vector<LayerPruneSpec> uniform_cp_specs(nn::Model& model,
                                             std::int64_t cp_rate,
                                             CrossbarDims dims,
                                             SpecOptions options = {});

/// EXTENSION beyond the paper (which applies one uniform CP rate to every
/// layer): per-layer sensitivity-scanned CP rates. For each eligible layer
/// independently, the largest candidate rate whose *immediate* accuracy
/// drop (projection only, no retraining) stays within `max_drop` is
/// selected. Layers that tolerate aggressive pruning get small ADCs; only
/// the sensitive ones hold the worst-case resolution back. The model is
/// left unmodified.
std::vector<LayerPruneSpec> sensitivity_cp_specs(
    nn::Model& model, const data::Dataset& eval_set, CrossbarDims dims,
    const std::vector<std::int64_t>& candidate_rates, double max_drop,
    SpecOptions options = {});

/// Adds crossbar-size-aware structured pruning on top of existing specs:
/// per eligible layer, remove ⌊cols·filter_frac⌋ filters and
/// ⌊rows·shape_frac⌋ filter shapes, both rounded down to crossbar
/// multiples (or left unrounded when `crossbar_aware` is false — the E8
/// ablation). At least one full crossbar of columns/rows is always kept.
void add_structured(std::vector<LayerPruneSpec>& specs, nn::Model& model,
                    double filter_frac, double shape_frac, CrossbarDims dims,
                    bool crossbar_aware = true, SpecOptions options = {});

/// Phase schedule for the pipeline.
struct PipelineConfig {
  nn::TrainConfig pretrain;  ///< epochs == 0 skips pretraining
  nn::TrainConfig admm;      ///< ADMM regularized phase
  nn::TrainConfig retrain;   ///< masked retraining phase
  AdmmConfig admm_params;
  CrossbarDims xbar;
  bool verbose = false;
};

/// Everything the evaluation section needs from one pruning run.
struct PipelineResult {
  double baseline_accuracy = 0.0;  ///< after pretraining, before constraints
  double admm_accuracy = 0.0;      ///< after ADMM phase (still dense-ish)
  double hard_prune_accuracy = 0.0;  ///< right after projection, no retrain
  double final_accuracy = 0.0;     ///< after masked retraining
  NetworkSparsityReport report;    ///< final sparsity structure
  /// Per-layer structural selections (reform geometry) from hard pruning —
  /// pass to xbar::map_model so the mapper compacts exactly these.
  std::vector<StructuralSelection> selections;
  AdmmResiduals final_residuals;   ///< last ADMM residuals
  std::vector<nn::EpochStats> pretrain_trace;
  std::vector<nn::EpochStats> admm_trace;
  std::vector<nn::EpochStats> retrain_trace;
};

/// Runs the full TinyADC flow on `model`. `specs` must align with
/// Model::prunable_views(). The model is modified in place (final weights
/// satisfy all constraints exactly).
PipelineResult run_pipeline(nn::Model& model, const data::Dataset& train,
                            const data::Dataset& test,
                            std::vector<LayerPruneSpec> specs,
                            const PipelineConfig& config);

}  // namespace tinyadc::core
