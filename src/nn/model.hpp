// Model: owns a layer tree and provides whole-network services
// (parameter enumeration, prunable-layer views, checkpointing).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "tensor/serialize.hpp"

namespace tinyadc::artifact {
class SectionWriter;
class SectionReader;
}  // namespace tinyadc::artifact

namespace tinyadc::nn {

/// A 2-D "crossbar-layout" view of one prunable weight tensor.
///
/// Following Fig. 3 of the paper, the 2-D weight matrix has
///  * one **column per output unit** (filter / output neuron) and
///  * one **row per input tap** (c, kh, kw) for conv, input feature for FC.
/// Element (row, col) lives at flat storage index `col * rows + row` in the
/// underlying (F, C, Kh, Kw) or (out, in) parameter tensor.
struct WeightMatrixView {
  std::string layer_name;  ///< owning layer's name
  Param* weight = nullptr; ///< underlying parameter (not owned)
  std::int64_t rows = 0;   ///< input taps (crossbar row direction)
  std::int64_t cols = 0;   ///< output units (crossbar column direction)
  bool is_conv = false;    ///< true for Conv2d, false for Linear

  /// Materializes the (rows × cols) matrix (transpose copy of storage).
  Tensor to_matrix() const;
  /// Writes a (rows × cols) matrix back into the parameter storage.
  void from_matrix(const Tensor& m) const;
  /// Same transforms for the gradient tensor.
  Tensor grad_to_matrix() const;
};

/// Builds the crossbar-layout view for a conv layer.
WeightMatrixView matrix_view(Conv2d& conv);
/// Builds the crossbar-layout view for a linear layer.
WeightMatrixView matrix_view(Linear& linear);

/// One pipeline-stage unit of a model: a direct child of the root
/// Sequential (a stem conv, a whole residual block, a pool, the
/// classifier head, ...) plus the prunable-layer indices it contains.
///
/// Units are the atomic grain of the stage partitioner: the root chain's
/// forward is exactly the composition of its children's forwards, so any
/// contiguous grouping of units computes the same function as the whole
/// model (see Sequential::forward_range). `prunable` holds indices into
/// prunable_views() order — the same order xbar::MappedNetwork::layers and
/// msim::AnalogNetwork::sims() use — so a unit's analog cost can be read
/// straight off the mapping's occupancy census.
struct StageUnit {
  std::size_t index = 0;               ///< root child index
  std::string name;                    ///< root child's layer name
  std::vector<std::size_t> prunable;   ///< prunable-view indices inside
};

/// A trained network plus introspection services.
class Model {
 public:
  /// Takes ownership of the root layer tree.
  Model(std::string name, std::unique_ptr<Sequential> root);

  /// Forward pass; `training` enables caches and batch statistics.
  Tensor forward(const Tensor& input, bool training) {
    return root_->forward(input, training);
  }
  /// Backward pass through the whole tree.
  Tensor backward(const Tensor& grad_output) {
    return root_->backward(grad_output);
  }

  /// All trainable parameters, pre-order.
  std::vector<Param*> params();
  /// All convolution layers, pre-order.
  std::vector<Conv2d*> conv_layers();
  /// All fully-connected layers, pre-order.
  std::vector<Linear*> linear_layers();
  /// Crossbar-layout views of every prunable weight (convs then linears, in
  /// network order).
  std::vector<WeightMatrixView> prunable_views();

  /// Stage-split view: one StageUnit per direct child of the root chain,
  /// in execution order, with each unit's prunable-view indices. The
  /// concatenation of all units' `prunable` lists is exactly
  /// [0, prunable_views().size()) in order.
  std::vector<StageUnit> stage_units();

  /// Total parameter count.
  std::int64_t param_count();

  /// Deep copy of the whole network (see Layer::clone): same topology and
  /// parameter/BN-statistic values, no shared storage, no hooks. Reads only,
  /// so concurrent clones of one model are safe — used by the fault
  /// Monte-Carlo to give every trial its own replica.
  Model clone() const;

  /// Model name (e.g. "resnet18").
  const std::string& name() const { return name_; }
  /// Root layer (for custom traversal).
  Sequential& root() { return *root_; }

  /// Serializes all parameters (and BN running stats) to `path`.
  void save(const std::string& path);
  /// Restores parameters saved by `save`; shapes must match exactly.
  void load(const std::string& path);

  /// Writes the model name and every state record (parameters + BN running
  /// statistics, pre-order) into a deployment-artifact section.
  void serialize(artifact::SectionWriter& w);
  /// Restores state written by serialize() into this (already constructed)
  /// architecture; record names and shapes must match exactly.
  void deserialize_state(artifact::SectionReader& r);

 private:
  std::vector<TensorRecord> state_records();
  std::string name_;
  std::unique_ptr<Sequential> root_;
};

}  // namespace tinyadc::nn
