#include "gemm.hpp"

#include "runtime/parallel.hpp"

namespace tinyadc {

namespace {

// Copies op(A)'s (M×K) contents into `buf` row-major so the inner kernel
// always streams contiguously. Rows of the result are disjoint, so the
// transpose copy fans out over the runtime (bit-identical: pure data moves).
void materialize_op(const Tensor& a, bool transpose, std::int64_t rows,
                    std::int64_t cols, std::vector<float>& buf) {
  if (buf.size() < static_cast<std::size_t>(rows * cols))
    buf.resize(static_cast<std::size_t>(rows * cols));
  const float* p = a.data();
  if (!transpose) {
    std::copy(p, p + rows * cols, buf.begin());
  } else {
    // a is (cols × rows) stored row-major; we want its transpose.
    float* out = buf.data();
    const std::int64_t grain =
        std::max<std::int64_t>(1, 16384 / std::max<std::int64_t>(1, cols));
    runtime::parallel_for(
        0, rows, grain, [&](std::int64_t i0, std::int64_t i1) {
          for (std::int64_t i = i0; i < i1; ++i)
            for (std::int64_t j = 0; j < cols; ++j)
              out[i * cols + j] = p[j * rows + i];
        });
  }
}

// Block shape of the microkernel: a 4×32 accumulator tile held across the
// k loop. 32-wide is deliberately wider than the baseline x86-64 register
// file: narrow tiles (4×8, 4×16) tempt the register allocator into keeping
// the tile in xmm registers and spilling on every iteration, which measured
// ~3-5 GFLOPs here, while the wide tile makes the compiler vectorize the
// accumulator through L1-resident stack slots (~25 GFLOPs, ~2× the plain
// i-k-j loop at n=256). With -DTINYADC_NATIVE=ON on an AVX-512 machine the
// same 4×32 tile is exactly 8 zmm accumulators and compiles to the
// classical FMA register kernel (~68 GFLOPs measured).
constexpr std::int64_t kMR = 4;
constexpr std::int64_t kNR = 32;
constexpr std::int64_t kKBlock = 64;

// Rows per parallel chunk: ~64k flops each so small GEMMs stay on the
// caller and large ones split into enough chunks to balance the lanes.
std::int64_t row_grain(std::int64_t k, std::int64_t n) {
  const std::int64_t flops_per_row = std::max<std::int64_t>(1, 2 * k * n);
  return std::max<std::int64_t>(1, 65536 / flops_per_row);
}

// C[kMR×kNR] += alpha · A[kMR×kk] · B[kk×kNR]. The accumulators stay in
// registers across the k loop; alpha folds in once at the store. Each C row
// depends only on its own A row, so results are independent of which tile
// (or thread) computed the row.
void micro_kernel(const float* a, std::int64_t lda, const float* b,
                  std::int64_t ldb, float* c, std::int64_t ldc,
                  std::int64_t kk, float alpha) {
  float acc[kMR][kNR] = {};
  for (std::int64_t p = 0; p < kk; ++p) {
    const float* brow = b + p * ldb;
    for (std::int64_t i = 0; i < kMR; ++i) {
      const float av = a[i * lda + p];
      for (std::int64_t j = 0; j < kNR; ++j) acc[i][j] += av * brow[j];
    }
  }
  for (std::int64_t i = 0; i < kMR; ++i) {
    float* crow = c + i * ldc;
    for (std::int64_t j = 0; j < kNR; ++j) crow[j] += alpha * acc[i][j];
  }
}

// Scalar edge path for rows/columns that don't fill a register tile:
// C[i, j0:j1) += alpha · A[i, k0:k1) · B[k0:k1, j0:j1).
void edge_rows(const float* a, std::int64_t lda, const float* b,
               std::int64_t ldb, float* c, std::int64_t ldc, std::int64_t i0,
               std::int64_t i1, std::int64_t j0, std::int64_t j1,
               std::int64_t k0, std::int64_t k1, float alpha) {
  for (std::int64_t i = i0; i < i1; ++i) {
    float* crow = c + i * ldc;
    for (std::int64_t kk = k0; kk < k1; ++kk) {
      const float av = alpha * a[i * lda + kk];
      if (av == 0.0F) continue;
      const float* brow = b + kk * ldb;
      for (std::int64_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace

void gemm(const Tensor& a, bool transpose_a, const Tensor& b, bool transpose_b,
          Tensor& c, float alpha, float beta, GemmScratch* scratch) {
  TINYADC_CHECK(a.ndim() == 2 && b.ndim() == 2 && c.ndim() == 2,
                "gemm requires 2-D tensors, got " << a.ndim() << "/" << b.ndim()
                                                  << "/" << c.ndim());
  const std::int64_t m = transpose_a ? a.dim(1) : a.dim(0);
  const std::int64_t k = transpose_a ? a.dim(0) : a.dim(1);
  const std::int64_t kb = transpose_b ? b.dim(1) : b.dim(0);
  const std::int64_t n = transpose_b ? b.dim(0) : b.dim(1);
  TINYADC_CHECK(k == kb, "gemm inner-dimension mismatch: " << k << " vs " << kb);
  TINYADC_CHECK(c.dim(0) == m && c.dim(1) == n,
                "gemm output shape " << shape_to_string(c.shape())
                                     << " != [" << m << ", " << n << "]");

  // Materializing transposed operands keeps one hot inner loop. The scratch
  // is per-call by default (the former `static thread_local` buffers aliased
  // whenever gemm re-entered on the same thread — nested calls, pooled
  // workers); hot call sites pass a persistent GemmScratch instead so the
  // copy is allocation-free after warmup.
  std::vector<float> abuf;
  std::vector<float> bbuf;
  std::vector<float>& amat = scratch != nullptr ? scratch->a : abuf;
  std::vector<float>& bmat = scratch != nullptr ? scratch->b : bbuf;
  const float* pa = a.data();
  const float* pb = b.data();
  if (transpose_a) {
    materialize_op(a, true, m, k, amat);
    pa = amat.data();
  }
  if (transpose_b) {
    materialize_op(b, true, k, n, bmat);
    pb = bmat.data();
  }

  // Parallelize over kMR-row register tiles, aligned to row 0 globally:
  // every row is always computed by the same code path (microkernel for
  // full tiles, scalar edge path for the remainder) with the same operand
  // order no matter how many threads split the tile range — so results are
  // bit-identical at any thread count. Columns split into kNR-wide
  // register tiles plus a scalar edge; k is blocked so a B panel stays in
  // cache across the i tiles of one chunk.
  float* pc = c.data();
  const std::int64_t tiles = (m + kMR - 1) / kMR;
  const std::int64_t n_main = n - n % kNR;
  const std::int64_t tile_grain =
      std::max<std::int64_t>(1, row_grain(k, n) / kMR);
  runtime::parallel_for(
      0, tiles, tile_grain, [&](std::int64_t t0, std::int64_t t1) {
        const std::int64_t i0 = t0 * kMR;
        const std::int64_t i1 = std::min(m, t1 * kMR);
        if (beta == 0.0F) {
          std::fill(pc + i0 * n, pc + i1 * n, 0.0F);
        } else if (beta != 1.0F) {
          for (std::int64_t i = i0 * n; i < i1 * n; ++i) pc[i] *= beta;
        }
        for (std::int64_t k0 = 0; k0 < k; k0 += kKBlock) {
          const std::int64_t k1 = std::min(k, k0 + kKBlock);
          std::int64_t i = i0;
          for (; i + kMR <= i1; i += kMR) {
            for (std::int64_t j = 0; j < n_main; j += kNR)
              micro_kernel(pa + i * k + k0, k, pb + k0 * n + j, n,
                           pc + i * n + j, n, k1 - k0, alpha);
            if (n_main < n)
              edge_rows(pa, k, pb, n, pc, n, i, i + kMR, n_main, n, k0, k1,
                        alpha);
          }
          if (i < i1) edge_rows(pa, k, pb, n, pc, n, i, i1, 0, n, k0, k1,
                                alpha);
        }
      });
}

Tensor matmul(const Tensor& a, const Tensor& b, bool transpose_a,
              bool transpose_b) {
  const std::int64_t m = transpose_a ? a.dim(1) : a.dim(0);
  const std::int64_t n = transpose_b ? b.dim(0) : b.dim(1);
  Tensor c({m, n});
  gemm(a, transpose_a, b, transpose_b, c);
  return c;
}

Tensor matvec(const Tensor& a, const Tensor& x) {
  TINYADC_CHECK(a.ndim() == 2 && x.ndim() == 1,
                "matvec requires (2-D, 1-D), got " << a.ndim() << "-D and "
                                                   << x.ndim() << "-D");
  TINYADC_CHECK(a.dim(1) == x.dim(0),
                "matvec dimension mismatch: " << a.dim(1) << " vs "
                                              << x.dim(0));
  // One code path for all dense products: y (m×1) = A · x (k×1) through the
  // blocked GEMM (reshape shares storage, so gemm writes straight into y).
  Tensor y({a.dim(0)});
  Tensor y_mat = y.reshape({a.dim(0), 1});
  gemm(a, false, x.reshape({x.dim(0), 1}), false, y_mat);
  return y;
}

}  // namespace tinyadc
