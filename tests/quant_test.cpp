// Quantization and MLC slicing round trips.
#include <gtest/gtest.h>

#include "xbar/quant.hpp"

namespace tinyadc::xbar {
namespace {

TEST(Quant, SignedFitMapsExtremes) {
  const auto p = fit_signed(2.0F, 8);
  EXPECT_EQ(quantize_signed(2.0F, p), 127);
  EXPECT_EQ(quantize_signed(-2.0F, p), -127);
  EXPECT_EQ(quantize_signed(0.0F, p), 0);
}

TEST(Quant, SignedSaturates) {
  const auto p = fit_signed(1.0F, 8);
  EXPECT_EQ(quantize_signed(5.0F, p), 127);
  EXPECT_EQ(quantize_signed(-5.0F, p), -127);
}

TEST(Quant, UnsignedFitMapsRange) {
  const auto p = fit_unsigned(1.0F, 8);
  EXPECT_EQ(quantize_unsigned(1.0F, p), 255);
  EXPECT_EQ(quantize_unsigned(0.0F, p), 0);
  EXPECT_EQ(quantize_unsigned(-0.5F, p), 0);  // negatives clamp
}

TEST(Quant, ZeroRangeUsesUnitScale) {
  const auto p = fit_signed(0.0F, 8);
  EXPECT_FLOAT_EQ(p.scale, 1.0F);
}

TEST(Quant, DequantizeInvertsWithinHalfStep) {
  const auto p = fit_signed(3.0F, 8);
  for (float v : {-3.0F, -1.7F, 0.0F, 0.4F, 2.99F}) {
    const float back = dequantize(quantize_signed(v, p), p);
    EXPECT_NEAR(back, v, p.scale * 0.5F + 1e-6F);
  }
}

TEST(Quant, BitBoundsValidated) {
  EXPECT_THROW(fit_signed(1.0F, 1), tinyadc::CheckError);
  EXPECT_THROW(fit_signed(1.0F, 17), tinyadc::CheckError);
  EXPECT_THROW(fit_unsigned(1.0F, 0), tinyadc::CheckError);
}

TEST(CellsPerWeight, PaperConfiguration) {
  // 8-bit weights (7-bit magnitude + differential sign) on 2-bit MLCs → 4.
  EXPECT_EQ(cells_per_weight(8, 2), 4);
  EXPECT_EQ(cells_per_weight(8, 3), 3);
  EXPECT_EQ(cells_per_weight(4, 2), 2);
  EXPECT_EQ(cells_per_weight(2, 1), 1);
}

TEST(Slice, RoundTripsAllMagnitudes) {
  for (std::int32_t mag = 0; mag <= 127; ++mag) {
    const auto slices = slice_magnitude(mag, 2, 4);
    EXPECT_EQ(unslice_magnitude(slices, 2), mag);
  }
}

TEST(Slice, LittleEndianOrder) {
  const auto slices = slice_magnitude(0b01'10'11, 2, 3);
  EXPECT_EQ(slices[0], 0b11);
  EXPECT_EQ(slices[1], 0b10);
  EXPECT_EQ(slices[2], 0b01);
}

TEST(Slice, OverflowDetected) {
  EXPECT_THROW(slice_magnitude(128, 2, 3), tinyadc::CheckError);  // needs 4
  EXPECT_THROW(slice_magnitude(-1, 2, 4), tinyadc::CheckError);
}

/// Sweep: slicing round trip for every (cell_bits, magnitude) combination.
class SliceSweep : public ::testing::TestWithParam<int> {};

TEST_P(SliceSweep, RoundTrip) {
  const int cell_bits = GetParam();
  const int slices = cells_per_weight(8, cell_bits);
  for (std::int32_t mag = 0; mag <= 127; mag += 3) {
    EXPECT_EQ(unslice_magnitude(slice_magnitude(mag, cell_bits, slices),
                                cell_bits),
              mag);
  }
}

INSTANTIATE_TEST_SUITE_P(CellBits, SliceSweep, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace tinyadc::xbar
