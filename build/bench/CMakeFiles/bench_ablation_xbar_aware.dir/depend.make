# Empty dependencies file for bench_ablation_xbar_aware.
# This may be replaced when dependencies are built.
