// Elementwise and reduction operations on Tensor.
//
// Kept free-function style (I.4): each op states its contract; in-place
// variants carry the `_` suffix convention and mutate their first argument.
#pragma once

#include <cstdint>
#include <functional>

#include "tensor.hpp"

namespace tinyadc {

/// --- elementwise (returning new tensors) --------------------------------

/// c = a + b (shapes must match elementwise).
Tensor add(const Tensor& a, const Tensor& b);
/// c = a - b.
Tensor sub(const Tensor& a, const Tensor& b);
/// c = a ⊙ b (Hadamard product).
Tensor mul(const Tensor& a, const Tensor& b);
/// c = a * s.
Tensor scale(const Tensor& a, float s);
/// c_i = max(a_i, 0).
Tensor relu(const Tensor& a);
/// c_i = |a_i|.
Tensor abs(const Tensor& a);

/// --- elementwise (in place) ----------------------------------------------

/// a += b.
void add_(Tensor& a, const Tensor& b);
/// a -= b.
void sub_(Tensor& a, const Tensor& b);
/// a ⊙= b.
void mul_(Tensor& a, const Tensor& b);
/// a *= s.
void scale_(Tensor& a, float s);
/// a += s * b  (BLAS axpy).
void axpy_(Tensor& a, float s, const Tensor& b);
/// a_i = clamp(a_i, lo, hi).
void clamp_(Tensor& a, float lo, float hi);
/// Applies `f` to every element in place.
void apply_(Tensor& a, const std::function<float(float)>& f);

/// --- reductions -----------------------------------------------------------

/// Σ a_i.
double sum(const Tensor& a);
/// Mean of all elements (0 for empty tensors).
double mean(const Tensor& a);
/// max_i a_i (requires non-empty).
float max_value(const Tensor& a);
/// min_i a_i (requires non-empty).
float min_value(const Tensor& a);
/// max_i |a_i| (0 for empty tensors).
float max_abs(const Tensor& a);
/// sqrt(Σ a_i²) — Frobenius norm.
double frobenius_norm(const Tensor& a);
/// Σ_i [a_i ≠ 0] — support size.
std::int64_t count_nonzero(const Tensor& a);
/// Index of the maximum element in a 1-D slice [begin, end) of flat storage.
std::int64_t argmax_range(const Tensor& a, std::int64_t begin,
                          std::int64_t end);

/// --- comparisons -----------------------------------------------------------

/// True if max_i |a_i − b_i| ≤ tol (shapes must have equal element counts).
bool allclose(const Tensor& a, const Tensor& b, float tol = 1e-5F);
/// max_i |a_i − b_i|.
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace tinyadc
