// Procedural class-conditional image datasets.
//
// Stand-ins for CIFAR-10 / CIFAR-100 / ImageNet (see DESIGN.md §2). Each
// class is defined by a random prototype (a superposition of Gaussian blobs
// and an oriented sinusoidal texture); samples are prototype + random
// translation + amplitude jitter + pixel noise. Task difficulty is
// controlled by class count, jitter magnitudes and noise level — the same
// mechanism that makes ImageNet prune-harder than CIFAR in the paper
// (Table I: achievable CP rate shrinks as difficulty grows).
#pragma once

#include <string>

#include "data/dataset.hpp"

namespace tinyadc::data {

/// Generation parameters for one synthetic dataset.
struct SyntheticSpec {
  std::string name = "synthetic";
  std::int64_t num_classes = 10;
  std::int64_t channels = 3;
  std::int64_t image_size = 16;
  std::int64_t train_per_class = 64;
  std::int64_t test_per_class = 16;
  float shift_frac = 0.1F;   ///< max translation as a fraction of image size
  float amp_jitter = 0.15F;  ///< multiplicative prototype jitter
  float noise = 0.25F;       ///< additive pixel noise stddev
  std::uint64_t seed = 7;
};

/// Train + test split drawn from the same generator.
struct DatasetPair {
  Dataset train;
  Dataset test;
  SyntheticSpec spec;
};

/// Generates the dataset described by `spec` (deterministic in `spec.seed`).
DatasetPair make_synthetic(const SyntheticSpec& spec);

/// CIFAR-10 stand-in: 10 classes, easy (wide margins).
SyntheticSpec cifar10_like();
/// CIFAR-100 stand-in: more classes, moderate difficulty.
SyntheticSpec cifar100_like();
/// ImageNet stand-in: most classes, largest intra-class variation.
SyntheticSpec imagenet_like();

/// Looks up a tier spec by name ("cifar10" | "cifar100" | "imagenet").
SyntheticSpec tier_by_name(const std::string& name);

}  // namespace tinyadc::data
