// Functional simulation of bit-serial analog matrix-vector multiplication.
//
// Pipeline per MVM (mirroring ISAAC's datapath):
//   1. DAC: each unsigned activation code streams in v-bit chunks.
//   2. Crossbar: per cycle, every (block, logical column, slice plane,
//      polarity) produces an analog sum Σ_rows chunk[r] · cell_level[r]
//      in LSB units; zero weights contribute nothing (their cells sit at
//      G_off), which is how CP pruning deactivates rows.
//   3. Sample & hold + ADC: each analog sum is digitized by the block's ADC
//      (Eq. 1-sized by default, overridable to study clipping).
//   4. Shift & add: digital accumulation re-weights codes by input-cycle
//      (·2^{t·v}), slice plane (·2^{s·cell_bits}) and polarity (±).
//
// With variation_sigma == 0 the result equals the integer reference MVM
// exactly whenever the ADC satisfies Eq. 1 (property P2). With variation,
// each cell's level is perturbed once at construction (a programmed chip)
// and the ADC's nearest-code rounding either absorbs the error (< ½ LSB per
// column) or not — the basis of the robustness analyses.
//
// Execution cost: CP pruning guarantees at most l ≪ r active rows per
// column, and the cell programming is static, so the per-column
// decomposition (signs, slice levels, variation, IR-drop attenuation) is
// hoisted into a packed execution plan at construction. The mvm() inner
// loop then touches exactly the active entries — O(l) per (polarity,
// slice, cycle) instead of the O(r) row scan — while staying bit-identical
// to the dense datapath (same operands, same accumulation order, same ADC
// conversion count).
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "msim/adc.hpp"
#include "msim/dac.hpp"
#include "xbar/mapping.hpp"

namespace tinyadc::artifact {
class SectionWriter;
class SectionReader;
}  // namespace tinyadc::artifact

namespace tinyadc::msim {

/// Simulation knobs.
struct MsimConfig {
  int adc_bits_override = -1;    ///< −1: per-layer Eq. 1 sizing; ≥0: forced
  double variation_sigma = 0.0;  ///< relative conductance spread (paper: 0.1)
  /// Wire-resistance (IR-drop) coefficient: a cell `r` rows down the
  /// bitline sees its contribution attenuated by 1 / (1 + α·(r+1)/rows·L),
  /// where L is the column's share of the total current (here: the number
  /// of active cells above it, normalized). α = 0 is the ideal wire. CP
  /// pruning reduces the current each bitline aggregates, so pruned
  /// columns suffer proportionally less IR drop — an analog-domain benefit
  /// on top of the ADC saving.
  double ir_drop_alpha = 0.0;
  std::uint64_t seed = 99;       ///< variation draw seed
  /// Execute through the sparsity-packed per-column plan built at
  /// construction (O(l) work per column, l = active rows). `false` keeps
  /// the legacy dense row scan (O(r) per column) — the golden reference the
  /// packed plan is verified against bit-for-bit (outputs *and* ADC
  /// counters) by tests/msim_plan_test.cpp.
  bool use_plan = true;
};

/// Artifact (de)serialization of the simulation knobs.
void serialize(const MsimConfig& config, artifact::SectionWriter& w);
MsimConfig deserialize_msim_config(artifact::SectionReader& r);

/// Aggregate statistics from a simulation run.
struct MsimStats {
  std::int64_t adc_conversions = 0;
  std::int64_t adc_clip_events = 0;
  std::int64_t dac_cycles = 0;
};

/// Simulates one mapped layer's analog MVM datapath.
///
/// Construction snapshots the layer into a sparsity-packed execution plan
/// (see MsimConfig::use_plan), so the mapped layer must not be mutated for
/// the lifetime of the sim. Construction also verifies that the largest
/// shifted ADC code the shift-and-add stage can produce fits the int64
/// accumulator (throws CheckError on overflow-prone configurations instead
/// of silently wrapping).
class AnalogLayerSim {
 public:
  AnalogLayerSim(const xbar::MappedLayer& layer, MsimConfig config);

  /// Writes the compiled execution state — ADC sizing, programmed variation
  /// draws, and the packed plan arrays — into a deployment artifact, so a
  /// redeployment can *load* the plan instead of recompiling it.
  void serialize(artifact::SectionWriter& w) const;

  /// Reconstructs a simulator from state written by serialize(). Never
  /// invokes the plan compiler (build_plan) or redraws variation: the
  /// restored sim executes exactly the serialized operands, and every
  /// structural invariant of the plan is re-validated against `layer`.
  static std::unique_ptr<AnalogLayerSim> deserialize(
      const xbar::MappedLayer& layer, MsimConfig config,
      artifact::SectionReader& r);

  /// Process-wide count of plan compilations (build_plan runs). Lets tests
  /// and benches prove that artifact loading touches no compilation path.
  static std::int64_t plan_compilations();

  /// Integer-domain MVM: unsigned activation codes in, signed column sums
  /// out (same contract as xbar::reference_mvm). Crossbar blocks convert in
  /// parallel ("all arrays in parallel", like the hardware) with a
  /// fixed-order merge, so results and statistics are bit-identical at any
  /// thread count; concurrent mvm() calls on one sim are also safe (the
  /// statistics merge is the only shared mutation and is locked).
  std::vector<std::int64_t> mvm(const std::vector<std::int32_t>& x);

  /// Real-domain MVM: quantizes `x_real` with `x_quant`, runs the analog
  /// datapath, and rescales the digital result to real units. Inputs must
  /// be non-negative (post-ReLU activations).
  std::vector<float> mvm_real(const std::vector<float>& x_real,
                              const xbar::QuantParams& x_quant);

  /// Signed-input variant: splits the input into its positive and negative
  /// parts, streams each through the crossbar separately, and subtracts
  /// digitally — the standard two-phase scheme for pre-activation inputs
  /// (e.g. the first conv layer's raw pixels).
  std::vector<float> mvm_real_signed(const std::vector<float>& x_real,
                                     const xbar::QuantParams& x_quant);

  /// The ADC resolution in use.
  int adc_bits() const { return adc_.bits(); }
  /// Statistics accumulated over all mvm() calls. Unsynchronized view —
  /// only read while no mvm() is in flight.
  const MsimStats& stats() const { return stats_; }
  /// Locked copy of the statistics; safe to call while concurrent mvm()
  /// calls are running (used by the serving engine's live stats snapshot).
  MsimStats stats_snapshot() const;
  /// Zeroes statistics.
  void reset_stats();

 private:
  // One (block, logical column) conversion unit of the packed plan.
  struct PairRef {
    std::int64_t out = 0;   ///< original output column index (y slot)
    std::size_t plane0 = 0; ///< first plane slot: planes are
                            ///< [pair][polarity][slice], contiguous
  };

  // Execution state restored from an artifact (see deserialize()).
  struct RestoredState {
    int adc_bits = 0;
    bool plan_ideal = false;
    std::vector<std::vector<float>> variation;
    std::vector<PairRef> pairs;
    std::vector<std::size_t> offsets;
    std::vector<std::int32_t> x;
    std::vector<std::int32_t> level;
    std::vector<float> var;
    std::vector<double> denom;
  };

  AnalogLayerSim(const xbar::MappedLayer& layer, MsimConfig config,
                 RestoredState&& restored);
  void check_accumulator_headroom() const;

  void build_plan();
  std::vector<std::int64_t> mvm_packed(const std::vector<std::int32_t>& x);
  std::vector<std::int64_t> mvm_dense(const std::vector<std::int32_t>& x);
  void merge_stats(const AdcCounters& counters, int cycles);

  const xbar::MappedLayer& layer_;
  MsimConfig config_;
  Adc adc_;
  // Per-block per-cell multiplicative variation factors for the magnitude
  // slices, laid out [block][r * cols * slices + c * slices + s].
  std::vector<std::vector<float>> variation_;
  // --- Sparsity-packed execution plan (built when config_.use_plan) -------
  // CSC-like snapshot of the mapped layer taken at construction: for every
  // (block, column, polarity, slice) "plane", a contiguous run of active
  // entries. plan_offsets_ is a CSR-style offset table over the entry
  // arrays; entries within a plane are in ascending block-row order, so the
  // packed accumulation visits exactly the operands of the dense scan in
  // the same order (bit-identity). The per-entry variation factor and
  // IR-drop divisor are pre-folded from the construction-time census;
  // both default to 1.0, which multiplies/divides exactly (IEEE-754), so
  // one general loop covers every non-ideality combination.
  std::vector<PairRef> plan_pairs_;
  std::vector<std::size_t> plan_offsets_;  // planes*pairs + 1 offsets
  std::vector<std::int32_t> plan_x_;       // entry → flat DAC-chunk index
  std::vector<std::int32_t> plan_level_;   // entry → cell level (this slice)
  std::vector<float> plan_var_;            // entry → variation factor
  std::vector<double> plan_denom_;         // entry → IR-drop divisor
  bool plan_ideal_ = false;  // no variation and no IR drop: integer datapath
  MsimStats stats_;
  // Guards stats_/adc_ counter merges under concurrent mvm() calls (held in
  // a unique_ptr so the sim stays movable for make_network_sims).
  std::unique_ptr<std::mutex> stats_mu_;
};

/// Convenience: simulate every layer of a mapped network on one shared
/// config, returning per-layer simulators.
std::vector<AnalogLayerSim> make_network_sims(const xbar::MappedNetwork& net,
                                              const MsimConfig& config);

}  // namespace tinyadc::msim
