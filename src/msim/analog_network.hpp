// Whole-network mixed-signal inference.
//
// Routes every Conv2d/Linear of a trained model through the analog crossbar
// simulator (via the layers' MvmHook), so a full forward pass exercises the
// complete chip datapath: activation quantization → DAC bit-streaming →
// per-column analog sums → Eq. 1-sized ADCs → shift-and-add → dequantize.
// BatchNorm, pooling and ReLU run digitally (as they do on the real
// accelerator's peripheral logic).
//
// Activation quantizer ranges are calibrated by running a float pass over
// sample data and recording each layer's input magnitude — the standard
// post-training calibration flow. With zero conductance variation and
// Eq. 1 ADCs the only accuracy gap vs the float model is the weight /
// activation quantization itself; variation and ADC underprovisioning can
// then be dialed in to study the real chip's behaviour.
#pragma once

#include <memory>

#include "data/dataset.hpp"
#include "msim/analog_mvm.hpp"
#include "nn/model.hpp"

namespace tinyadc::artifact {
class SectionWriter;
class SectionReader;
}  // namespace tinyadc::artifact

namespace tinyadc::msim {

/// Runs a model's inference on the simulated mixed-signal accelerator.
///
/// The AnalogNetwork installs MVM hooks on the model's conv/linear layers
/// for its lifetime; destroying it restores the float path. The mapped
/// network must outlive this object and match the model layer-for-layer.
class AnalogNetwork {
 public:
  AnalogNetwork(nn::Model& model, const xbar::MappedNetwork& net,
                MsimConfig config);

  /// Restores a deployed network from artifact sections written by
  /// serialize_plans() / serialize_calibration(). The restored network is
  /// immediately calibrated and in analog mode: no calibrate() call, no
  /// plan compilation — per-layer sims come from AnalogLayerSim's
  /// deserialize path (MsimConfig included in `plans`), and quantizer
  /// ranges are read back verbatim from `calib`.
  AnalogNetwork(nn::Model& model, const xbar::MappedNetwork& net,
                artifact::SectionReader& plans, artifact::SectionReader& calib);
  ~AnalogNetwork();
  AnalogNetwork(const AnalogNetwork&) = delete;
  AnalogNetwork& operator=(const AnalogNetwork&) = delete;

  /// Calibrates per-layer activation quantizers from up to `max_images`
  /// examples (float forward passes; hooks pass through).
  void calibrate(const data::Dataset& sample, std::int64_t max_images = 32);

  /// Analog forward pass (inference mode). Requires calibrate() first.
  Tensor forward(const Tensor& images);

  /// Top-1 accuracy of the analog chip on `test`.
  double evaluate(const data::Dataset& test, std::size_t batch_size = 16);

  /// Per-layer simulators (for stats such as ADC conversion counts).
  const std::vector<std::unique_ptr<AnalogLayerSim>>& sims() const {
    return sims_;
  }
  /// Per-layer calibrated activation quantizers.
  const std::vector<xbar::QuantParams>& activation_quant() const {
    return act_quant_;
  }
  /// Per-layer signed-input flags (first conv sees raw signed pixels).
  const std::vector<bool>& signed_input() const { return signed_input_; }
  /// True once calibrate() has run.
  bool calibrated() const { return calibrated_; }

  /// Writes the per-layer compiled execution state (shared MsimConfig plus
  /// each sim's ADC sizing, variation draws and packed plan) into a
  /// deployment artifact section.
  void serialize_plans(artifact::SectionWriter& w) const;
  /// Writes the activation-calibration state (per-layer quantizer ranges
  /// and signed-input flags). Requires calibrate() to have run.
  void serialize_calibration(artifact::SectionWriter& w) const;

  /// Process-wide count of calibrate() runs. Lets tests and benches prove
  /// that artifact loading touches no calibration path.
  static std::int64_t calibration_runs();
  /// The hooked model (for cloning into serving sessions).
  const nn::Model& model() const { return model_; }
  /// The mapped network this sim executes.
  const xbar::MappedNetwork& net() const { return net_; }

 private:
  enum class Mode { kCalibrate, kAnalog };

  void install_hooks();
  void remove_hooks();

  nn::Model& model_;
  const xbar::MappedNetwork& net_;
  MsimConfig config_;
  std::vector<std::unique_ptr<AnalogLayerSim>> sims_;  // by prunable index
  std::vector<float> observed_max_;                    // calibration state
  std::vector<xbar::QuantParams> act_quant_;
  std::vector<bool> signed_input_;  // first conv sees raw (signed) pixels
  Mode mode_ = Mode::kCalibrate;
  bool calibrated_ = false;
};

/// One inference session over a calibrated AnalogNetwork.
///
/// The session owns a private Model::clone() replica whose conv/linear
/// layers are hooked to the *shared* per-layer simulators (and their
/// sparsity-packed execution plans) of the compiled network, so plan
/// compilation and activation calibration happen once per deployment
/// rather than once per session. Sessions only read the compiled state;
/// concurrent forward() calls on different sessions over one compiled
/// network are safe (the sims' statistics merges are locked and
/// commutative, so aggregate ADC counters stay exact under concurrency).
/// The compiled network must be calibrated and must outlive the session.
class AnalogSession {
 public:
  explicit AnalogSession(const AnalogNetwork& compiled);

  /// Analog forward pass of a (N, C, H, W) image batch (inference mode).
  Tensor forward(const Tensor& images);

  /// The session's private model replica.
  nn::Model& model() { return model_; }

 private:
  const AnalogNetwork& compiled_;
  nn::Model model_;
};

}  // namespace tinyadc::msim
