// Group-lasso (SSL-style) structured-sparsity regularizer.
//
// The paper's SSL baseline (Wen et al., NeurIPS 2016) learns structured
// sparsity by adding λ·Σ_g ‖W_g‖₂ over filter (column) and/or shape (row)
// groups to the training loss; groups whose norms are driven to ~0 are then
// removed. We implement it as a Trainer grad hook — the faithful mechanism
// behind the "SSL 2.6×" row of Table II — and a thresholding step that
// converts near-zero groups into exact structural removals (optionally
// crossbar-rounded, so the result feeds the same mapper path as TinyADC's
// own structured pruning).
//
// Gradient of the group term: ∂/∂w λ‖W_g‖₂ = λ·w/‖W_g‖₂ (0 at the origin).
#pragma once

#include "core/prune_spec.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"

namespace tinyadc::core {

/// Group-lasso hyperparameters.
struct GroupLassoConfig {
  float lambda_filters = 1e-3F;  ///< λ on column (filter) groups
  float lambda_shapes = 0.0F;    ///< λ on row (filter-shape) groups
  float eps = 1e-8F;             ///< norm floor for the gradient
};

/// Applies SSL regularization to a model's prunable layers during training.
class GroupLassoRegularizer {
 public:
  /// `skip_first_conv` mirrors the pruning protocol (stem stays dense).
  GroupLassoRegularizer(nn::Model& model, GroupLassoConfig config,
                        bool skip_first_conv = true);

  /// Installs the grad hook on `trainer`.
  void attach(nn::Trainer& trainer);

  /// Adds λ·w/‖W_g‖₂ to every regularized weight gradient.
  void add_group_gradient();

  /// Sum of group norms (the regularization term's current value).
  double penalty() const;

  /// Converts learned near-zero groups into hard structural removals:
  /// zeroes every filter group whose L2 norm falls below `threshold`
  /// (relative to the layer's RMS group norm), rounded down to crossbar
  /// multiples when `dims` has positive extents. Returns per-layer specs
  /// describing what was removed (feedable to xbar::map_model).
  std::vector<LayerPruneSpec> harvest(double relative_threshold,
                                      CrossbarDims dims,
                                      bool crossbar_aware = true);

 private:
  struct LayerState {
    nn::WeightMatrixView view;
    bool regularized = false;
  };
  nn::Model& model_;
  GroupLassoConfig config_;
  std::vector<LayerState> layers_;
};

}  // namespace tinyadc::core
