#include "nn/pool.hpp"

#include <limits>

namespace tinyadc::nn {

MaxPool2d::MaxPool2d(std::string name, std::int64_t kernel, std::int64_t stride)
    : Layer(std::move(name)), kernel_(kernel), stride_(stride) {
  TINYADC_CHECK(kernel > 0 && stride > 0, "invalid MaxPool2d params");
}

Tensor MaxPool2d::forward(const Tensor& input, bool training) {
  TINYADC_CHECK(input.ndim() == 4,
                "MaxPool2d: bad input " << shape_to_string(input.shape()));
  const std::int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                     w = input.dim(3);
  const std::int64_t oh = (h - kernel_) / stride_ + 1;
  const std::int64_t ow = (w - kernel_) / stride_ + 1;
  TINYADC_CHECK(oh > 0 && ow > 0, "MaxPool2d kernel larger than input");
  input_shape_ = input.shape();
  Tensor out({n, c, oh, ow});
  if (training) argmax_.assign(static_cast<std::size_t>(n * c * oh * ow), 0);

  const float* in = input.data();
  float* o = out.data();
  std::int64_t oidx = 0;
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = in + (b * c + ch) * h * w;
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t x = 0; x < ow; ++x, ++oidx) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_at = 0;
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            for (std::int64_t kx = 0; kx < kernel_; ++kx) {
              const std::int64_t iy = y * stride_ + ky;
              const std::int64_t ix = x * stride_ + kx;
              const std::int64_t flat = iy * w + ix;
              if (plane[flat] > best) {
                best = plane[flat];
                best_at = (b * c + ch) * h * w + flat;
              }
            }
          }
          o[oidx] = best;
          if (training) argmax_[static_cast<std::size_t>(oidx)] = best_at;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  TINYADC_CHECK(!argmax_.empty(),
                "MaxPool2d: backward without cached training forward");
  TINYADC_CHECK(grad_output.numel() ==
                    static_cast<std::int64_t>(argmax_.size()),
                "MaxPool2d: grad_output size mismatch");
  Tensor grad_input(input_shape_);
  float* gi = grad_input.data();
  const float* g = grad_output.data();
  for (std::int64_t i = 0; i < grad_output.numel(); ++i)
    gi[argmax_[static_cast<std::size_t>(i)]] += g[i];
  argmax_.clear();
  return grad_input;
}

AvgPool2d::AvgPool2d(std::string name, std::int64_t kernel, std::int64_t stride)
    : Layer(std::move(name)), kernel_(kernel), stride_(stride) {
  TINYADC_CHECK(kernel > 0 && stride > 0, "invalid AvgPool2d params");
}

Tensor AvgPool2d::forward(const Tensor& input, bool training) {
  (void)training;
  TINYADC_CHECK(input.ndim() == 4,
                "AvgPool2d: bad input " << shape_to_string(input.shape()));
  const std::int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                     w = input.dim(3);
  const std::int64_t oh = (h - kernel_) / stride_ + 1;
  const std::int64_t ow = (w - kernel_) / stride_ + 1;
  TINYADC_CHECK(oh > 0 && ow > 0, "AvgPool2d kernel larger than input");
  input_shape_ = input.shape();
  Tensor out({n, c, oh, ow});
  const float inv = 1.0F / static_cast<float>(kernel_ * kernel_);
  const float* in = input.data();
  float* o = out.data();
  std::int64_t oidx = 0;
  for (std::int64_t b = 0; b < n; ++b)
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = in + (b * c + ch) * h * w;
      for (std::int64_t y = 0; y < oh; ++y)
        for (std::int64_t x = 0; x < ow; ++x, ++oidx) {
          float acc = 0.0F;
          for (std::int64_t ky = 0; ky < kernel_; ++ky)
            for (std::int64_t kx = 0; kx < kernel_; ++kx)
              acc += plane[(y * stride_ + ky) * w + (x * stride_ + kx)];
          o[oidx] = acc * inv;
        }
    }
  return out;
}

Tensor AvgPool2d::backward(const Tensor& grad_output) {
  TINYADC_CHECK(!input_shape_.empty(), "AvgPool2d backward before forward");
  const std::int64_t n = input_shape_[0], c = input_shape_[1],
                     h = input_shape_[2], w = input_shape_[3];
  const std::int64_t oh = (h - kernel_) / stride_ + 1;
  const std::int64_t ow = (w - kernel_) / stride_ + 1;
  Tensor grad_input(input_shape_);
  const float inv = 1.0F / static_cast<float>(kernel_ * kernel_);
  const float* g = grad_output.data();
  float* gi = grad_input.data();
  std::int64_t oidx = 0;
  for (std::int64_t b = 0; b < n; ++b)
    for (std::int64_t ch = 0; ch < c; ++ch) {
      float* plane = gi + (b * c + ch) * h * w;
      for (std::int64_t y = 0; y < oh; ++y)
        for (std::int64_t x = 0; x < ow; ++x, ++oidx) {
          const float gv = g[oidx] * inv;
          for (std::int64_t ky = 0; ky < kernel_; ++ky)
            for (std::int64_t kx = 0; kx < kernel_; ++kx)
              plane[(y * stride_ + ky) * w + (x * stride_ + kx)] += gv;
        }
    }
  return grad_input;
}

Tensor GlobalAvgPool::forward(const Tensor& input, bool training) {
  (void)training;
  TINYADC_CHECK(input.ndim() == 4,
                "GlobalAvgPool: bad input " << shape_to_string(input.shape()));
  input_shape_ = input.shape();
  const std::int64_t n = input.dim(0), c = input.dim(1);
  const std::int64_t hw = input.dim(2) * input.dim(3);
  Tensor out({n, c});
  const float inv = 1.0F / static_cast<float>(hw);
  const float* in = input.data();
  float* o = out.data();
  for (std::int64_t b = 0; b < n; ++b)
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = in + (b * c + ch) * hw;
      double acc = 0.0;
      for (std::int64_t i = 0; i < hw; ++i) acc += plane[i];
      o[b * c + ch] = static_cast<float>(acc) * inv;
    }
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  TINYADC_CHECK(!input_shape_.empty(), "GlobalAvgPool backward before forward");
  const std::int64_t n = input_shape_[0], c = input_shape_[1];
  const std::int64_t hw = input_shape_[2] * input_shape_[3];
  Tensor grad_input(input_shape_);
  const float inv = 1.0F / static_cast<float>(hw);
  const float* g = grad_output.data();
  float* gi = grad_input.data();
  for (std::int64_t b = 0; b < n; ++b)
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float gv = g[b * c + ch] * inv;
      float* plane = gi + (b * c + ch) * hw;
      for (std::int64_t i = 0; i < hw; ++i) plane[i] = gv;
    }
  return grad_input;
}


LayerPtr MaxPool2d::clone() const {
  return std::make_unique<MaxPool2d>(name(), kernel_, stride_);
}

LayerPtr AvgPool2d::clone() const {
  return std::make_unique<AvgPool2d>(name(), kernel_, stride_);
}

LayerPtr GlobalAvgPool::clone() const {
  return std::make_unique<GlobalAvgPool>(name());
}

}  // namespace tinyadc::nn
