file(REMOVE_RECURSE
  "CMakeFiles/tinyadc_cli.dir/tinyadc_cli.cpp.o"
  "CMakeFiles/tinyadc_cli.dir/tinyadc_cli.cpp.o.d"
  "tinyadc"
  "tinyadc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinyadc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
