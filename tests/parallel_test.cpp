// Parallel runtime (src/runtime): pool lifecycle, exception propagation,
// range coverage, and the determinism contract — every kernel wired to
// parallel_for must produce bit-identical results at any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/projection.hpp"
#include "data/synthetic.hpp"
#include "fault/evaluate.hpp"
#include "nn/models.hpp"
#include "runtime/parallel.hpp"
#include "tensor/gemm.hpp"

namespace tinyadc {
namespace {

/// Restores the default thread-count resolution when a test exits.
struct ThreadCountGuard {
  explicit ThreadCountGuard(int n) { runtime::set_thread_count(n); }
  ~ThreadCountGuard() { runtime::set_thread_count(0); }
};

TEST(ParallelRuntime, ThreadCountResolution) {
  ThreadCountGuard guard(3);
  EXPECT_EQ(runtime::thread_count(), 3);
  runtime::set_thread_count(0);
  EXPECT_GE(runtime::thread_count(), 1);
}

TEST(ParallelRuntime, CoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard(4);
  // 1000 indices at grain 7 → 143 chunks, the last one short: the awkward
  // case for the chunk arithmetic.
  std::vector<std::atomic<int>> hits(1000);
  runtime::parallel_for(0, 1000, 7, [&](std::int64_t b, std::int64_t e) {
    ASSERT_LT(b, e);
    ASSERT_LE(e - b, 7);
    for (std::int64_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelRuntime, CoversOffsetRange) {
  ThreadCountGuard guard(4);
  std::vector<std::atomic<int>> hits(250);
  runtime::parallel_for(100, 350, 3, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i)
      hits[static_cast<std::size_t>(i - 100)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelRuntime, EmptyRangeNeverInvokesBody) {
  ThreadCountGuard guard(4);
  std::atomic<int> calls{0};
  runtime::parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) { calls++; });
  runtime::parallel_for(5, 3, 1, [&](std::int64_t, std::int64_t) { calls++; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelRuntime, SingleChunkRunsInlineOnCaller) {
  ThreadCountGuard guard(4);
  // grain ≥ range → one chunk → width clamps to 1 → the exact serial path.
  std::atomic<int> calls{0};
  runtime::parallel_for(0, 10, 100, [&](std::int64_t b, std::int64_t e) {
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 10);
    EXPECT_FALSE(runtime::in_parallel_region());
    calls++;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelRuntime, SerialFallbackAtOneThread) {
  ThreadCountGuard guard(1);
  const int before = runtime::spawned_workers();
  std::vector<int> order;  // no synchronization: must stay single-threaded
  runtime::parallel_for(0, 64, 4, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) order.push_back(static_cast<int>(i));
  });
  ASSERT_EQ(order.size(), 64U);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(runtime::spawned_workers(), before);  // pool never engaged
}

TEST(ParallelRuntime, NestedCallsRunInline) {
  ThreadCountGuard guard(4);
  std::vector<std::atomic<int>> hits(32 * 8);
  runtime::parallel_for(0, 32, 1, [&](std::int64_t b, std::int64_t e) {
    EXPECT_TRUE(runtime::in_parallel_region());
    for (std::int64_t i = b; i < e; ++i) {
      runtime::parallel_for(0, 8, 1, [&](std::int64_t ib, std::int64_t ie) {
        for (std::int64_t j = ib; j < ie; ++j)
          hits[static_cast<std::size_t>(i * 8 + j)]++;
      });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelRuntime, PropagatesFirstException) {
  ThreadCountGuard guard(4);
  EXPECT_THROW(
      runtime::parallel_for(0, 100, 1,
                            [&](std::int64_t b, std::int64_t) {
                              if (b == 37) throw std::runtime_error("lane 37");
                            }),
      std::runtime_error);
  // The pool must still be usable after a failed job.
  std::atomic<int> count{0};
  runtime::parallel_for(0, 16, 1,
                        [&](std::int64_t b, std::int64_t e) {
                          count += static_cast<int>(e - b);
                        });
  EXPECT_EQ(count.load(), 16);
}

TEST(ParallelRuntime, ShutdownAndRestart) {
  ThreadCountGuard guard(4);
  std::atomic<int> count{0};
  runtime::parallel_for(0, 64, 1, [&](std::int64_t b, std::int64_t e) {
    count += static_cast<int>(e - b);
  });
  EXPECT_GE(runtime::spawned_workers(), 1);
  runtime::shutdown();
  EXPECT_EQ(runtime::spawned_workers(), 0);
  runtime::parallel_for(0, 64, 1, [&](std::int64_t b, std::int64_t e) {
    count += static_cast<int>(e - b);
  });
  EXPECT_EQ(count.load(), 128);
  EXPECT_GE(runtime::spawned_workers(), 1);
}

// ---------------------------------------------------------------------------
// Determinism contract: the wired kernels are bit-identical at 1 vs 4 threads.
// ---------------------------------------------------------------------------

bool bytes_equal(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<std::size_t>(a.numel())) == 0;
}

TEST(ParallelDeterminism, GemmBitIdentical) {
  Rng rng(11);
  const Tensor a = Tensor::randn({37, 53}, rng);
  const Tensor b = Tensor::randn({53, 29}, rng);
  Tensor c1({37, 29});
  Tensor c4({37, 29});
  {
    ThreadCountGuard guard(1);
    gemm(a, false, b, false, c1);
  }
  {
    ThreadCountGuard guard(4);
    gemm(a, false, b, false, c4);
  }
  EXPECT_TRUE(bytes_equal(c1, c4));
}

TEST(ParallelDeterminism, ProjectionBitIdentical) {
  Rng rng(12);
  std::vector<float> base(64 * 48);
  for (auto& v : base) v = rng.normal(0.0F, 1.0F);
  auto d1 = base;
  auto d4 = base;
  {
    ThreadCountGuard guard(1);
    core::project_column_proportional({d1.data(), 64, 48}, {16, 16}, 3);
  }
  {
    ThreadCountGuard guard(4);
    core::project_column_proportional({d4.data(), 64, 48}, {16, 16}, 3);
  }
  EXPECT_EQ(d1, d4);  // exact float equality, not approximate
}

TEST(ParallelDeterminism, FaultTrialsBitIdentical) {
  data::SyntheticSpec dspec;
  dspec.num_classes = 4;
  dspec.image_size = 8;
  dspec.train_per_class = 2;
  dspec.test_per_class = 4;
  const auto data = data::make_synthetic(dspec);
  nn::ModelConfig mc;
  mc.num_classes = 4;
  mc.image_size = 8;
  mc.width_mult = 0.0625F;
  auto model = nn::resnet18(mc);
  xbar::MappingConfig map_config;
  map_config.dims = {4, 4};
  fault::FaultSpec fspec;
  fspec.rate = 0.15;

  fault::FaultTrialResult r1;
  fault::FaultTrialResult r4;
  {
    ThreadCountGuard guard(1);
    r1 = fault::evaluate_under_faults(*model, data.test, map_config, fspec, 3);
  }
  {
    ThreadCountGuard guard(4);
    r4 = fault::evaluate_under_faults(*model, data.test, map_config, fspec, 3);
  }
  EXPECT_EQ(r1.clean_accuracy, r4.clean_accuracy);
  EXPECT_EQ(r1.mean_accuracy, r4.mean_accuracy);
  EXPECT_EQ(r1.min_accuracy, r4.min_accuracy);
}

TEST(ParallelDeterminism, ModelCloneIsDeepAndIndependent) {
  nn::ModelConfig mc;
  mc.num_classes = 4;
  mc.image_size = 8;
  mc.width_mult = 0.0625F;
  auto model = nn::resnet18(mc);
  Rng rng(13);
  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  const Tensor before = model->forward(x, /*training=*/false);

  nn::Model copy = model->clone();
  // Corrupt the original; the clone must be unaffected (no shared storage).
  model->prunable_views()[0].weight->value.data()[0] += 100.0F;
  const Tensor from_copy = copy.forward(x, /*training=*/false);
  EXPECT_TRUE(bytes_equal(before, from_copy));
  const Tensor from_original = model->forward(x, /*training=*/false);
  EXPECT_FALSE(bytes_equal(before, from_original));
}

}  // namespace
}  // namespace tinyadc
