# End-to-end CLI smoke: train → prune → map → report → fault → serve on a
# tiny budget, including a deployment-artifact save and a serve cold-start
# from it; any non-zero exit fails the test.
function(run)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    string(REPLACE ";" " " pretty "${ARGN}")
    message(FATAL_ERROR "command failed (${rc}): ${pretty}")
  endif()
endfunction()

# Expects a non-zero exit (the CLI must reject the invocation).
function(expect_fail)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc
                  ERROR_VARIABLE _stderr OUTPUT_VARIABLE _stdout)
  if(rc EQUAL 0)
    string(REPLACE ";" " " pretty "${ARGN}")
    message(FATAL_ERROR "command unexpectedly succeeded: ${pretty}")
  endif()
endfunction()

set(common --net resnet18 --dataset cifar10 --width-mult 0.0625
    --image-size 8 --train-per-class 8 --test-per-class 4)
run(${CLI} train ${common} --epochs 2 --out ${WORK}/smoke.bin)
run(${CLI} prune ${common} --in ${WORK}/smoke.bin --cp-rate 4
    --admm-epochs 1 --retrain-epochs 1 --out ${WORK}/smoke_pruned.bin
    --save-artifact ${WORK}/smoke_deploy.tadc)
run(${CLI} map --net resnet18 --width-mult 0.0625 --image-size 8
    --classes 10 --in ${WORK}/smoke_pruned.bin)
run(${CLI} report --net resnet18 --width-mult 0.0625 --image-size 8
    --classes 10 --in ${WORK}/smoke_pruned.bin)
run(${CLI} fault ${common} --in ${WORK}/smoke_pruned.bin --rate 0.05
    --trials 1 --remap)
run(${CLI} serve ${common} --in ${WORK}/smoke_pruned.bin --requests 24
    --workers 2 --max-batch 4)
run(${CLI} loadgen ${common} --in ${WORK}/smoke_pruned.bin --requests 24
    --workers 2 --max-batch 4 --qps 200 --deterministic
    --json ${WORK}/smoke_loadgen.json)
# Millisecond cold-start: serve and loadgen straight from the artifact,
# without --in (no checkpoint, no mapping, no calibration).
run(${CLI} serve --artifact ${WORK}/smoke_deploy.tadc --dataset cifar10
    --image-size 8 --train-per-class 8 --test-per-class 4 --requests 24
    --workers 2 --max-batch 4)
run(${CLI} loadgen --artifact ${WORK}/smoke_deploy.tadc --dataset cifar10
    --image-size 8 --train-per-class 8 --test-per-class 4 --requests 24
    --workers 2 --max-batch 4 --qps 200 --deterministic
    --json ${WORK}/smoke_loadgen_artifact.json)
# Multi-tenant fleet: a second artifact version (fresh init, same shape)
# via map --save-artifact, then two tenants served from two artifacts with
# one live hot-swap, reported as JSON.
run(${CLI} map ${common} --classes 10
    --save-artifact ${WORK}/smoke_deploy_v2.tadc)
run(${CLI} fleet --dataset cifar10 --image-size 8 --train-per-class 8
    --test-per-class 4 --workers 2 --deterministic
    --tenant "alpha=${WORK}/smoke_deploy.tadc,weight=2,requests=24"
    --tenant "beta=${WORK}/smoke_deploy_v2.tadc,priority=1,requests=16,mmap"
    --swap "alpha=${WORK}/smoke_deploy_v2.tadc@0.5"
    --json ${WORK}/smoke_fleet.json)
file(READ ${WORK}/smoke_fleet.json fleet_json)
foreach(key tenants aggregate loadgen output_digest artifact_digest
        adc_conversions)
  if(NOT fleet_json MATCHES "\"${key}\"")
    message(FATAL_ERROR "fleet JSON missing key \"${key}\"")
  endif()
endforeach()
# Unknown flags must be an error, not a silent default.
expect_fail(${CLI} map --net resnet18 --width-mult 0.0625 --image-size 8
    --classes 10 --in ${WORK}/smoke_pruned.bin --cp-rat 4)
