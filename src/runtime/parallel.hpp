// Dependency-free parallel runtime shared by every TinyADC substrate.
//
// A lazily-started persistent worker pool executes `parallel_for` with
// *static deterministic partitioning*: the index range is cut into
// fixed-size chunks (`grain` indices each) and chunk c is always executed
// by lane `c % width`. Partitioning therefore only decides *which thread*
// runs a chunk, never what the chunk computes — so any loop whose
// iterations are independent produces bit-identical results at every
// thread count, including the serial fallback. All kernels wired to this
// runtime (GEMM, CP projection, analog MVM, fault Monte-Carlo) preserve
// that contract by keeping per-index work partition-independent and by
// merging any reductions serially in a fixed order afterwards.
//
// Thread count resolution (first match wins):
//   1. set_thread_count(n) with n >= 1 (programmatic override, e.g. bench
//      sweeps and the determinism tests);
//   2. the TINYADC_THREADS environment variable;
//   3. std::thread::hardware_concurrency().
// A count of 1 bypasses the pool entirely and runs the loop inline on the
// caller — the exact serial execution path, not a one-worker simulation.
//
// Nested parallel_for calls (e.g. gemm invoked from a parallelized batch
// loop) run inline on the worker that issued them; only the outermost loop
// fans out. This keeps the pool deadlock-free without oversubscription.
#pragma once

#include <cstdint>
#include <functional>

namespace tinyadc::runtime {

/// Loop body operating on the half-open index chunk [begin, end).
using ChunkFn = std::function<void(std::int64_t begin, std::int64_t end)>;

/// The thread count parallel_for will use (override > env > hardware).
int thread_count();

/// Overrides the thread count for subsequent parallel_for calls; `n <= 0`
/// restores the default (TINYADC_THREADS / hardware_concurrency). Must not
/// be called while a parallel_for is in flight.
void set_thread_count(int n);

/// Runs `body` over [begin, end) in chunks of at most `grain` indices
/// (grain < 1 is treated as 1). Blocks until every chunk has finished.
/// The first exception thrown by any chunk is rethrown on the caller after
/// all lanes have stopped. Safe to call from inside a worker (runs inline).
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const ChunkFn& body);

/// True while the calling thread is executing inside a parallel_for lane
/// (nested parallel_for calls will run inline).
bool in_parallel_region();

/// Number of worker threads the pool has actually spawned (0 until the
/// first pooled parallel_for). The caller also acts as a lane, so a
/// thread_count of N spawns at most N - 1 workers.
int spawned_workers();

/// Joins and discards all pool workers. The next pooled parallel_for
/// restarts the pool; intended for tests and orderly teardown, not for the
/// hot path. Must not be called while a parallel_for is in flight.
void shutdown();

}  // namespace tinyadc::runtime
