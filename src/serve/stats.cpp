#include "serve/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include <sys/resource.h>

namespace tinyadc::serve {

namespace {

/// Bucket index for a latency in microseconds.
std::size_t bucket_index(double us) {
  if (us <= 1.0) return 0;
  const double idx = LatencyHistogram::kSub * std::log2(us);
  const auto i = static_cast<std::size_t>(idx);
  return i >= LatencyHistogram::kBuckets ? LatencyHistogram::kBuckets - 1 : i;
}

/// Geometric midpoint of bucket `i` in microseconds.
double bucket_mid(std::size_t i) {
  return std::exp2((static_cast<double>(i) + 0.5) / LatencyHistogram::kSub);
}

}  // namespace

void LatencyHistogram::record(double us) {
  ++buckets_[bucket_index(us)];
  ++count_;
  sum_us_ += us;
  if (us > max_us_) max_us_ = us;
}

double LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cum += buckets_[i];
    if (static_cast<double>(cum) >= rank && buckets_[i] > 0)
      return std::min(bucket_mid(i), max_us_);
  }
  return max_us_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_us_ += other.sum_us_;
  if (other.max_us_ > max_us_) max_us_ = other.max_us_;
}

std::string ServeStats::to_table() const {
  char line[160];
  std::string out;
  std::snprintf(line, sizeof(line),
                "%-22s %12llu\n", "requests",
                static_cast<unsigned long long>(requests));
  out += line;
  std::snprintf(line, sizeof(line), "%-22s %12llu  (mean size %.2f)\n",
                "batches", static_cast<unsigned long long>(batches),
                mean_batch);
  out += line;
  if (rejected > 0) {
    std::snprintf(line, sizeof(line), "%-22s %12llu\n", "rejected",
                  static_cast<unsigned long long>(rejected));
    out += line;
  }
  std::snprintf(line, sizeof(line), "%-22s %12.1f\n", "qps", qps);
  out += line;
  std::snprintf(line, sizeof(line),
                "%-22s p50 %.0f  p95 %.0f  p99 %.0f  mean %.0f  max %.0f\n",
                "latency (us)", p50_us, p95_us, p99_us, mean_us, max_us);
  out += line;
  std::snprintf(line, sizeof(line), "%-22s %12zu\n", "max queue depth",
                max_queue_depth);
  out += line;
  std::string hist;
  for (std::size_t b = 1; b < batch_hist.size(); ++b)
    if (batch_hist[b] > 0) {
      char cell[48];
      std::snprintf(cell, sizeof(cell), " %zu:%llu", b,
                    static_cast<unsigned long long>(batch_hist[b]));
      hist += cell;
    }
  out += "batch size histogram  ";
  out += hist.empty() ? " (none)" : hist;
  out += "\n";
  std::snprintf(line, sizeof(line),
                "%-22s conv %lld  clip %lld  dac-cycles %lld\n", "adc",
                static_cast<long long>(adc_conversions),
                static_cast<long long>(adc_clip_events),
                static_cast<long long>(dac_cycles));
  out += line;
  if (peak_rss_kb > 0) {
    std::snprintf(line, sizeof(line), "%-22s %12lld\n", "peak rss (kb)",
                  static_cast<long long>(peak_rss_kb));
    out += line;
  }
  if (load_map_ms > 0.0 || load_validate_ms > 0.0 || load_stream_ms > 0.0) {
    std::snprintf(line, sizeof(line),
                  "%-22s map %.2f  validate %.2f  stream %.2f\n",
                  "artifact load (ms)", load_map_ms, load_validate_ms,
                  load_stream_ms);
    out += line;
  }
  if (pipeline_stages > 0) {
    std::snprintf(line, sizeof(line), "%-22s %12d\n", "pipeline stages",
                  pipeline_stages);
    out += line;
    for (std::size_t s = 0; s < stages.size(); ++s) {
      const PipelineStageStats& st = stages[s];
      std::snprintf(line, sizeof(line),
                    "  stage %zu units [%zu,%zu)  batches %llu  busy %lld us"
                    "  stall-in %lld us  stall-out %lld us\n",
                    s, st.begin, st.end,
                    static_cast<unsigned long long>(st.batches),
                    static_cast<long long>(st.busy_us),
                    static_cast<long long>(st.stall_in_us),
                    static_cast<long long>(st.stall_out_us));
      out += line;
    }
  }
  return out;
}

std::string ServeStats::to_json() const {
  std::ostringstream out;
  out << "{\"requests\": " << requests << ", \"batches\": " << batches
      << ", \"rejected\": " << rejected << ", \"wall_s\": " << wall_s
      << ", \"qps\": " << qps << ", \"p50_us\": " << p50_us
      << ", \"p95_us\": " << p95_us << ", \"p99_us\": " << p99_us
      << ", \"mean_us\": " << mean_us << ", \"max_us\": " << max_us
      << ", \"mean_batch\": " << mean_batch
      << ", \"max_queue_depth\": " << max_queue_depth
      << ", \"adc_conversions\": " << adc_conversions
      << ", \"adc_clip_events\": " << adc_clip_events
      << ", \"dac_cycles\": " << dac_cycles
      << ", \"peak_rss_kb\": " << peak_rss_kb
      << ", \"load_map_ms\": " << load_map_ms
      << ", \"load_validate_ms\": " << load_validate_ms
      << ", \"load_stream_ms\": " << load_stream_ms << ", \"batch_hist\": [";
  for (std::size_t b = 0; b < batch_hist.size(); ++b)
    out << (b ? ", " : "") << batch_hist[b];
  out << "], \"pipeline_stages\": " << pipeline_stages << ", \"stages\": [";
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const PipelineStageStats& st = stages[s];
    out << (s ? ", " : "") << "{\"begin\": " << st.begin
        << ", \"end\": " << st.end << ", \"batches\": " << st.batches
        << ", \"busy_us\": " << st.busy_us
        << ", \"stall_in_us\": " << st.stall_in_us
        << ", \"stall_out_us\": " << st.stall_out_us << "}";
  }
  out << "]}";
  return out.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::uint64_t fnv1a(const void* data, std::size_t n, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) h = (h ^ p[i]) * 1099511628211ULL;
  return h;
}

std::int64_t peak_rss_kb() {
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::int64_t>(ru.ru_maxrss);  // Linux reports KiB
}

}  // namespace tinyadc::serve
