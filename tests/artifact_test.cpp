// Deployment artifacts: container round trips, bit-identical forward
// outputs and ADC counters between the in-process pipeline and a loaded
// artifact (packed-plan and dense datapaths, 1 and 4 workers), proof that
// loading never recompiles plans or recalibrates, byte-identical re-save,
// and a corruption matrix (truncations, bad magic/version, table abuse)
// that must fail with CheckError instead of bad_alloc or garbage.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "artifact/artifact.hpp"
#include "artifact/format.hpp"
#include "core/pruner.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "serve/engine.hpp"

namespace tinyadc::artifact {
namespace {

/// Tiny CP-pruned resnet18 + synthetic data: real sparsity so the packed
/// plans are non-trivial, but no training (bit-identity does not depend on
/// trained weights).
struct Fixture {
  std::unique_ptr<nn::Model> model;
  data::DatasetPair data;
  xbar::MappedNetwork net;
  std::unique_ptr<msim::AnalogNetwork> analog;
  std::vector<core::LayerPruneSpec> specs;
  ArtifactMeta meta;

  explicit Fixture(msim::MsimConfig mcfg = {}) {
    nn::ModelConfig mc;
    mc.num_classes = 4;
    mc.image_size = 8;
    mc.width_mult = 0.0625F;
    model = nn::build_model("resnet18", mc);
    meta.arch = "resnet18";
    meta.model_name = model->name();
    meta.model_config = mc;

    data::SyntheticSpec spec;
    spec.num_classes = 4;
    spec.image_size = 8;
    spec.train_per_class = 8;
    spec.test_per_class = 6;
    spec.seed = 17;
    data = data::make_synthetic(spec);

    // CP-prune in place (projection only — the constraint, not the
    // training) so most crossbar columns carry ≤ 4 active rows.
    core::CrossbarDims dims{16, 16};
    specs = core::uniform_cp_specs(*model, 4, dims, {});
    auto views = model->prunable_views();
    for (std::size_t i = 0; i < views.size(); ++i) {
      Tensor m = views[i].to_matrix();
      core::project_combined({m.data(), views[i].rows, views[i].cols},
                             specs[i], dims);
      views[i].from_matrix(m);
    }

    xbar::MappingConfig cfg;
    cfg.dims = {16, 16};
    net = xbar::map_model(*model, cfg);
    analog = std::make_unique<msim::AnalogNetwork>(*model, net, mcfg);
    analog->calibrate(data.train, 8);
  }

  ArtifactInputs inputs() const {
    return ArtifactInputs{meta, *model, net, *analog, specs, {}};
  }

  /// First `n` test images as one (n, C, H, W) batch.
  Tensor batch(std::int64_t n) const {
    const Tensor& all = data.test.images;
    Tensor b({n, all.dim(1), all.dim(2), all.dim(3)});
    std::memcpy(b.data(), all.data(),
                static_cast<std::size_t>(b.numel()) * sizeof(float));
    return b;
  }

  /// Test example `i` as a standalone (C, H, W) tensor.
  Tensor image(std::int64_t i) const {
    const Tensor& all = data.test.images;
    const std::int64_t chw = all.numel() / all.dim(0);
    Tensor img({all.dim(1), all.dim(2), all.dim(3)});
    std::memcpy(img.data(), all.data() + i * chw,
                static_cast<std::size_t>(chw) * sizeof(float));
    return img;
  }
};

std::vector<char> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.is_open()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(is),
                           std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Sums the analog network's per-layer ADC/DAC counters.
msim::MsimStats total_stats(const msim::AnalogNetwork& analog) {
  msim::MsimStats total;
  for (const auto& sim : analog.sims()) {
    const auto s = sim->stats_snapshot();
    total.adc_conversions += s.adc_conversions;
    total.adc_clip_events += s.adc_clip_events;
    total.dac_cycles += s.dac_cycles;
  }
  return total;
}

/// Serves the first 20 test images (cycled) through a fresh deterministic
/// engine and digests logits+labels; also returns the sims' counter delta.
std::uint64_t serve_digest(const Fixture& f, msim::AnalogNetwork& analog,
                           int workers, msim::MsimStats* delta) {
  const msim::MsimStats before = total_stats(analog);
  serve::ServeConfig cfg;
  cfg.workers = workers;
  cfg.max_batch = 8;
  cfg.deterministic = true;
  serve::InferenceEngine engine(analog, cfg);
  std::vector<std::future<serve::InferenceResult>> futures;
  for (std::int64_t i = 0; i < 20; ++i)
    futures.push_back(engine.submit(f.image(i % f.data.test.size())));
  engine.wait_idle();
  std::uint64_t h = serve::fnv1a(nullptr, 0);
  for (auto& fut : futures) {
    const auto r = fut.get();
    h = serve::fnv1a(r.logits.data(), r.logits.size() * sizeof(float), h);
    h = serve::fnv1a(&r.label, sizeof(r.label), h);
  }
  const msim::MsimStats after = total_stats(analog);
  delta->adc_conversions = after.adc_conversions - before.adc_conversions;
  delta->adc_clip_events = after.adc_clip_events - before.adc_clip_events;
  delta->dac_cycles = after.dac_cycles - before.dac_cycles;
  return h;
}

TEST(Format, SectionRoundTripAndMissingTag) {
  const std::string path = "artifact_format_tmp.tadc";
  {
    ArtifactWriter w(path);
    auto& a = w.section("ALPHA");
    a.pod(std::int64_t{-7});
    a.str("hello");
    a.vec(std::vector<float>{1.0F, 2.5F});
    w.section("BETA").pod(std::uint32_t{99});
    w.finish();
  }
  ArtifactFile file(path);
  EXPECT_EQ(file.version(), kFormatVersion);
  EXPECT_TRUE(file.has("ALPHA"));
  EXPECT_TRUE(file.has("BETA"));
  EXPECT_FALSE(file.has("GAMMA"));
  EXPECT_THROW((void)file.section("GAMMA"), CheckError);
  auto r = file.section("ALPHA");
  EXPECT_EQ(r.pod<std::int64_t>(), -7);
  EXPECT_EQ(r.str(), "hello");
  const auto v = r.vec<float>();
  ASSERT_EQ(v.size(), 2U);
  EXPECT_EQ(v[1], 2.5F);
  EXPECT_EQ(r.remaining(), 0U);
  // Reading past the end must throw, not read a neighbour section.
  EXPECT_THROW((void)r.pod<std::uint8_t>(), CheckError);
  std::remove(path.c_str());
}

TEST(Artifact, LoadedForwardAndCountersBitIdenticalNoRecompile) {
  Fixture f;
  const std::string path = "artifact_roundtrip_tmp.tadc";
  save_artifact(path, f.inputs());

  const auto plans_before = msim::AnalogLayerSim::plan_compilations();
  const auto calib_before = msim::AnalogNetwork::calibration_runs();
  Deployment dep = load_artifact(path);
  EXPECT_EQ(msim::AnalogLayerSim::plan_compilations(), plans_before)
      << "loading must not invoke the plan compiler";
  EXPECT_EQ(msim::AnalogNetwork::calibration_runs(), calib_before)
      << "loading must not invoke calibration";
  EXPECT_TRUE(dep.analog->calibrated());
  EXPECT_EQ(dep.meta.arch, "resnet18");
  ASSERT_EQ(dep.specs.size(), f.specs.size());
  for (std::size_t i = 0; i < f.specs.size(); ++i) {
    EXPECT_EQ(dep.specs[i].layer_name, f.specs[i].layer_name);
    EXPECT_EQ(dep.specs[i].cp_keep, f.specs[i].cp_keep);
  }

  // Bit-identical forward outputs and per-layer ADC/DAC counter deltas.
  const Tensor batch = f.batch(8);
  ASSERT_EQ(f.analog->sims().size(), dep.analog->sims().size());
  const msim::MsimStats ob = total_stats(*f.analog);
  const msim::MsimStats lb = total_stats(*dep.analog);
  const Tensor y0 = f.analog->forward(batch);
  const Tensor y1 = dep.analog->forward(batch);
  ASSERT_EQ(y0.numel(), y1.numel());
  EXPECT_EQ(std::memcmp(y0.data(), y1.data(),
                        static_cast<std::size_t>(y0.numel()) * sizeof(float)),
            0);
  for (std::size_t i = 0; i < f.analog->sims().size(); ++i) {
    const auto s0 = f.analog->sims()[i]->stats_snapshot();
    const auto s1 = dep.analog->sims()[i]->stats_snapshot();
    EXPECT_EQ(s0.adc_conversions, s1.adc_conversions) << "layer " << i;
    EXPECT_EQ(s0.adc_clip_events, s1.adc_clip_events) << "layer " << i;
    EXPECT_EQ(s0.dac_cycles, s1.dac_cycles) << "layer " << i;
  }
  const msim::MsimStats oa = total_stats(*f.analog);
  const msim::MsimStats la = total_stats(*dep.analog);
  EXPECT_EQ(oa.adc_conversions - ob.adc_conversions,
            la.adc_conversions - lb.adc_conversions);
  std::remove(path.c_str());
}

TEST(Artifact, ServeDigestIdenticalAcrossWorkerCountsAndLoadPath) {
  Fixture f;
  const std::string path = "artifact_serve_tmp.tadc";
  save_artifact(path, f.inputs());
  const auto plans_before = msim::AnalogLayerSim::plan_compilations();
  const auto calib_before = msim::AnalogNetwork::calibration_runs();
  Deployment dep = load_artifact(path);

  std::uint64_t digests[4];
  msim::MsimStats deltas[4];
  int slot = 0;
  for (const int workers : {1, 4}) {
    digests[slot] = serve_digest(f, *f.analog, workers, &deltas[slot]);
    ++slot;
    digests[slot] = serve_digest(f, *dep.analog, workers, &deltas[slot]);
    ++slot;
  }
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(digests[i], digests[0]) << "run " << i;
    EXPECT_EQ(deltas[i].adc_conversions, deltas[0].adc_conversions);
    EXPECT_EQ(deltas[i].adc_clip_events, deltas[0].adc_clip_events);
    EXPECT_EQ(deltas[i].dac_cycles, deltas[0].dac_cycles);
  }
  // The whole serve-from-artifact path compiled nothing and calibrated
  // nothing.
  EXPECT_EQ(msim::AnalogLayerSim::plan_compilations(), plans_before);
  EXPECT_EQ(msim::AnalogNetwork::calibration_runs(), calib_before);
  std::remove(path.c_str());
}

TEST(Artifact, DenseDatapathWithVariationRoundTrips) {
  msim::MsimConfig mcfg;
  mcfg.use_plan = false;
  mcfg.variation_sigma = 0.1;
  Fixture f(mcfg);
  const std::string path = "artifact_dense_tmp.tadc";
  save_artifact(path, f.inputs());
  Deployment dep = load_artifact(path);
  const Tensor batch = f.batch(6);
  const Tensor y0 = f.analog->forward(batch);
  const Tensor y1 = dep.analog->forward(batch);
  ASSERT_EQ(y0.numel(), y1.numel());
  EXPECT_EQ(std::memcmp(y0.data(), y1.data(),
                        static_cast<std::size_t>(y0.numel()) * sizeof(float)),
            0)
      << "restored variation draws must reproduce the programmed chip";
  std::remove(path.c_str());
}

TEST(Artifact, ResaveIsByteIdentical) {
  Fixture f;
  const std::string path0 = "artifact_resave0_tmp.tadc";
  const std::string path1 = "artifact_resave1_tmp.tadc";
  save_artifact(path0, f.inputs());
  Deployment dep = load_artifact(path0);
  save_artifact(path1, dep);
  const auto b0 = slurp(path0);
  const auto b1 = slurp(path1);
  ASSERT_FALSE(b0.empty());
  EXPECT_EQ(b0.size(), b1.size());
  EXPECT_TRUE(b0 == b1) << "save → load → save must reproduce the file";
  std::remove(path0.c_str());
  std::remove(path1.c_str());
}

TEST(Artifact, CorruptionMatrixFailsWithCheckError) {
  Fixture f;
  const std::string path = "artifact_corrupt_src_tmp.tadc";
  const std::string bad = "artifact_corrupt_tmp.tadc";
  save_artifact(path, f.inputs());
  const auto bytes = slurp(path);
  ASSERT_GT(bytes.size(), 64U);

  // Missing file.
  EXPECT_THROW((void)load_artifact("artifact_does_not_exist.tadc"),
               CheckError);

  // Bad magic and unsupported container version.
  {
    auto b = bytes;
    b[0] ^= 0x5A;
    spit(bad, b);
    EXPECT_THROW((void)load_artifact(bad), CheckError);
  }
  {
    auto b = bytes;
    b[8] = 99;  // u32 version at offset 8
    spit(bad, b);
    EXPECT_THROW((void)load_artifact(bad), CheckError);
  }

  // Truncation at every section boundary (and inside every payload): walk
  // the section table for the offsets.
  std::uint32_t nsections = 0;
  std::memcpy(&nsections, bytes.data() + 12, sizeof(nsections));
  ASSERT_GE(nsections, 5U);
  std::vector<std::size_t> cuts = {0, 7, 8, 12, 15};
  for (std::uint32_t i = 0; i < nsections; ++i) {
    const std::size_t entry = 16 + static_cast<std::size_t>(i) * 24;
    std::uint64_t offset = 0, length = 0;
    std::memcpy(&offset, bytes.data() + entry + 8, sizeof(offset));
    std::memcpy(&length, bytes.data() + entry + 16, sizeof(length));
    cuts.push_back(static_cast<std::size_t>(offset));
    cuts.push_back(static_cast<std::size_t>(offset + length / 2));
    cuts.push_back(static_cast<std::size_t>(offset + length) - 1);
  }
  for (const std::size_t cut : cuts) {
    ASSERT_LT(cut, bytes.size());
    spit(bad, std::vector<char>(bytes.begin(),
                                bytes.begin() + static_cast<std::ptrdiff_t>(
                                                    cut)));
    EXPECT_THROW((void)load_artifact(bad), CheckError)
        << "truncation at byte " << cut << " must raise CheckError";
  }

  // A section length pointing past the end of the file.
  {
    auto b = bytes;
    const std::uint64_t absurd = bytes.size() * 16;
    std::memcpy(b.data() + 16 + 16, &absurd, sizeof(absurd));
    spit(bad, b);
    EXPECT_THROW((void)load_artifact(bad), CheckError);
  }
  std::remove(path.c_str());
  std::remove(bad.c_str());
}

// ---------------------------------------------------------------------------
// PLANS-section versioning: committed v1 (PR-6 AoS payload) golden artifacts
// must keep loading under the v2 reader — executing bit-identically to a
// freshly compiled pipeline — and upgrade cleanly (re-save writes v2, and
// the upgraded file round-trips byte-identically).

void golden_v1_upgrade_case(const std::string& golden,
                            const msim::MsimConfig& mcfg) {
  ASSERT_FALSE(slurp(golden).empty()) << golden;
  Fixture f(mcfg);

  const auto plans_before = msim::AnalogLayerSim::plan_compilations();
  const auto calib_before = msim::AnalogNetwork::calibration_runs();
  Deployment dep = load_artifact(golden);
  EXPECT_EQ(msim::AnalogLayerSim::plan_compilations(), plans_before)
      << "loading a v1 payload must convert, not recompile";
  EXPECT_EQ(msim::AnalogNetwork::calibration_runs(), calib_before);

  const Tensor batch = f.batch(6);
  const Tensor y1 = dep.analog->forward(batch);
#ifndef TINYADC_NATIVE
  // The converted v1 plan executes bit-identically — outputs and per-layer
  // ADC/DAC counters — to the freshly compiled v2 pipeline. Only checkable
  // on the portable reference build that wrote the goldens: under
  // -march=native, FMA contraction shifts the fixture's *training* floats,
  // so the freshly trained weights legitimately drift from the stored ones.
  const Tensor y0 = f.analog->forward(batch);
  ASSERT_EQ(y0.numel(), y1.numel());
  EXPECT_EQ(std::memcmp(y0.data(), y1.data(),
                        static_cast<std::size_t>(y0.numel()) * sizeof(float)),
            0)
      << golden;
  ASSERT_EQ(f.analog->sims().size(), dep.analog->sims().size());
  for (std::size_t i = 0; i < f.analog->sims().size(); ++i) {
    const auto s0 = f.analog->sims()[i]->stats_snapshot();
    const auto s1 = dep.analog->sims()[i]->stats_snapshot();
    EXPECT_EQ(s0.adc_conversions, s1.adc_conversions) << "layer " << i;
    EXPECT_EQ(s0.adc_clip_events, s1.adc_clip_events) << "layer " << i;
    EXPECT_EQ(s0.dac_cycles, s1.dac_cycles) << "layer " << i;
  }
#endif

  // Upgrade: re-save (always writes v2), reload, and prove the upgraded
  // artifact is stable (byte-identical second save) and still executes
  // bit-identically — outputs and counters — to the v1-converted plans.
  // (These claims hold on any build: both deployments live in this
  // process, so there is no cross-build float drift to absorb.)
  const std::string up0 = "artifact_v1_upgrade0_tmp.tadc";
  const std::string up1 = "artifact_v1_upgrade1_tmp.tadc";
  save_artifact(up0, dep);
  Deployment dep2 = load_artifact(up0);
  save_artifact(up1, dep2);
  EXPECT_TRUE(slurp(up0) == slurp(up1))
      << "upgraded artifact must round-trip byte-identically";
  const Tensor y2 = dep2.analog->forward(batch);
  ASSERT_EQ(y1.numel(), y2.numel());
  EXPECT_EQ(std::memcmp(y1.data(), y2.data(),
                        static_cast<std::size_t>(y1.numel()) * sizeof(float)),
            0);
  ASSERT_EQ(dep.analog->sims().size(), dep2.analog->sims().size());
  for (std::size_t i = 0; i < dep.analog->sims().size(); ++i) {
    const auto s1 = dep.analog->sims()[i]->stats_snapshot();
    const auto s2 = dep2.analog->sims()[i]->stats_snapshot();
    EXPECT_EQ(s1.adc_conversions, s2.adc_conversions) << "layer " << i;
    EXPECT_EQ(s1.adc_clip_events, s2.adc_clip_events) << "layer " << i;
    EXPECT_EQ(s1.dac_cycles, s2.dac_cycles) << "layer " << i;
  }
  std::remove(up0.c_str());
  std::remove(up1.c_str());
}

TEST(ArtifactVersioning, GoldenV1IdealLoadsExecutesAndUpgrades) {
  golden_v1_upgrade_case(
      std::string(TINYADC_TEST_DATA_DIR) + "/golden_plans_v1_ideal.tadc", {});
}

TEST(ArtifactVersioning, GoldenV1NonIdealLoadsExecutesAndUpgrades) {
  msim::MsimConfig mcfg;
  mcfg.variation_sigma = 0.1;
  mcfg.ir_drop_alpha = 0.3;
  golden_v1_upgrade_case(
      std::string(TINYADC_TEST_DATA_DIR) + "/golden_plans_v1_nonideal.tadc",
      mcfg);
}

// ---------------------------------------------------------------------------
// Corruption matrix over the v3 aligned SoA plan streams: tamper one field
// at a time in a single layer's serialized payload and require CheckError
// from the stream validators (never garbage execution or bad_alloc). Also
// covers the alignment-specific failure modes: non-zero padding bytes and
// a mapped payload whose pointer is 8- but not 64-byte aligned.

TEST(ArtifactVersioning, CorruptV3PlanStreamsRaiseCheckError) {
  Fixture f;
  const auto& layer = f.net.layers.front();
  msim::MsimConfig mcfg;  // defaults: use_plan, kAuto, ideal datapath
  msim::AnalogLayerSim sim(layer, mcfg);
  SectionWriter w;
  sim.serialize(w);
  const std::vector<char> base = w.bytes();

  // v3 layer payload (ideal fixture: no variation blocks): i32 adc_bits,
  // u8 plan_ideal, u64 nvar, u8 use_plan, u64 npairs, then seven aligned
  // arrays — u64 count, zero pad to the next 64-byte boundary, raw data —
  // out i64, seg u64, row/mag i32, level i32, var f32, denom f64. A
  // standalone payload starts at file offset 0, so payload-relative
  // padding equals the file-relative padding the writer laid down.
  auto read_u64 = [&](std::size_t off) {
    std::uint64_t v = 0;
    std::memcpy(&v, base.data() + off, sizeof(v));
    return v;
  };
  std::size_t pos = 4 + 1 + 8 + 1;
  const std::size_t off_npairs = pos;
  const std::uint64_t npairs = read_u64(off_npairs);
  ASSERT_GE(npairs, 1U);
  pos += 8;
  // Walks one aligned array with the writer's own arithmetic: verify the
  // count field, skip the pad, return the data offset, advance past the
  // elements.
  auto aligned_array = [&](std::uint64_t count, std::size_t elem) {
    EXPECT_EQ(read_u64(pos), count);
    pos = (pos + 8 + kPayloadAlign - 1) / kPayloadAlign * kPayloadAlign;
    const std::size_t off = pos;
    pos += static_cast<std::size_t>(count) * elem;
    return off;
  };
  const std::size_t off_out = aligned_array(npairs, 8);
  const std::size_t off_seg = aligned_array(2 * npairs + 1, 8);
  const std::uint64_t slots = read_u64(pos);
  ASSERT_GE(slots, 2U);
  const auto slices = static_cast<std::uint64_t>(layer.config.slices());
  const std::size_t off_row = aligned_array(slots, 4);
  const std::size_t off_mag = aligned_array(slots, 4);
  const std::size_t off_level = aligned_array(slots * slices, 4);
  const std::size_t off_var = aligned_array(slots * slices, 4);
  const std::size_t off_denom = aligned_array(slots, 8);
  ASSERT_EQ(pos, base.size()) << "layout walk must land on the payload end";

  auto expect_throws = [&](const std::vector<char>& bytes, const char* what) {
    SectionReader r(bytes.data(), bytes.size(), "PLANS");
    EXPECT_THROW(
        (void)msim::AnalogLayerSim::deserialize(layer, mcfg, r,
                                                /*version=*/3),
        CheckError)
        << what;
  };
  auto tampered = [&](std::size_t off, const auto& v) {
    auto b = base;
    std::memcpy(b.data() + off, &v, sizeof(v));
    return b;
  };

  // Sanity: the untampered payload deserializes and executes.
  {
    SectionReader r(base.data(), base.size(), "PLANS");
    auto restored = msim::AnalogLayerSim::deserialize(layer, mcfg, r, 3);
    EXPECT_EQ(r.remaining(), 0U);
    std::vector<std::int32_t> x(static_cast<std::size_t>(layer.rows), 3);
    EXPECT_EQ(restored->mvm(x), sim.mvm(x));
  }

  expect_throws(tampered(off_out, std::int64_t{-2}),
                "negative output column");
  expect_throws(tampered(off_out, layer.cols + 7),
                "output column past the layer");
  expect_throws(tampered(off_seg + 8, std::uint64_t{0xFFFFFFFFU}),
                "non-monotone segment table");
  expect_throws(tampered(off_row, std::int32_t{-1}),
                "negative activation row");
  expect_throws(
      tampered(off_row, static_cast<std::int32_t>(layer.rows + 13)),
      "activation row past the layer");
  expect_throws(tampered(off_mag, std::int32_t{0}), "zero magnitude");
  expect_throws(tampered(off_level, std::int32_t{1 << layer.config.cell_bits}),
                "cell level past the MLC range");
  {
    // An in-range level that no longer recomposes to the stored magnitude.
    std::int32_t lv = 0;
    std::memcpy(&lv, base.data() + off_level, sizeof(lv));
    expect_throws(tampered(off_level,
                           lv == 0 ? std::int32_t{1} : std::int32_t{0}),
                  "slice/magnitude cross-check");
  }
  expect_throws(tampered(off_var, -1.0F), "negative variation factor");
  expect_throws(tampered(off_denom, 0.0), "zero IR divisor");
  // Truncation inside each stream: the element-budget guard must fire.
  for (const std::size_t cut : {off_row + 3, off_level + 5, off_denom + 1})
    expect_throws(std::vector<char>(base.begin(),
                                    base.begin() +
                                        static_cast<std::ptrdiff_t>(cut)),
                  "truncated stream");

  // A non-zero byte inside the out array's alignment padding — the v3
  // reader verifies every pad byte, so silent payload shifts cannot hide.
  ASSERT_GT(off_out, off_npairs + 16) << "out array must have a pad region";
  expect_throws(tampered(off_out - 1, std::uint8_t{1}),
                "non-zero alignment padding");

  // Mapped mode with a payload that lands 8- but not 64-byte aligned (a
  // tampered section offset): the reader must refuse to hand out the
  // misaligned span. The keeper marks the buffer as mapped; the pad walk
  // still matches the writer's (abs_offset 0), so the pointer check is
  // exactly what fires.
  {
    std::vector<char> arena(base.size() + 2 * kPayloadAlign);
    const auto addr = reinterpret_cast<std::uintptr_t>(arena.data());
    const std::size_t skew =
        (kPayloadAlign - addr % kPayloadAlign) % kPayloadAlign + 8;
    std::memcpy(arena.data() + skew, base.data(), base.size());
    const auto keeper = std::make_shared<int>(0);
    SectionReader r(arena.data() + skew, base.size(), "PLANS",
                    /*abs_offset=*/0, keeper);
    EXPECT_THROW(
        (void)msim::AnalogLayerSim::deserialize(layer, mcfg, r, 3),
        CheckError)
        << "misaligned mapped payload must be rejected";
  }
}

// ---------------------------------------------------------------------------
// Zero-copy mapped loading: load_artifact_mapped must be observably
// zero-copy (spans point into the mapping) yet bit-identical — outputs,
// per-layer counters, serve digests — to the copied load path, with and
// without async section streaming, and must never compile or calibrate.

TEST(Artifact, MappedLoadBitIdenticalToCopiedLoad) {
  Fixture f;
  const std::string path = "artifact_mapped_tmp.tadc";
  save_artifact(path, f.inputs());

  const auto plans_before = msim::AnalogLayerSim::plan_compilations();
  const auto calib_before = msim::AnalogNetwork::calibration_runs();
  Deployment copied = load_artifact(path);
  Deployment mapped = load_artifact_mapped(path);
  Deployment streamed = load_artifact_mapped(path, /*async_stream=*/true);
  streamed.finish_streaming();
  EXPECT_EQ(msim::AnalogLayerSim::plan_compilations(), plans_before)
      << "no load path may invoke the plan compiler";
  EXPECT_EQ(msim::AnalogNetwork::calibration_runs(), calib_before);
  ASSERT_NE(mapped.mapped, nullptr);
  EXPECT_EQ(copied.mapped, nullptr);
  EXPECT_GT(streamed.load_phases.stream_ms, 0.0)
      << "finish_streaming must record the streamer's elapsed time";
  EXPECT_GT(mapped.load_phases.map_ms + mapped.load_phases.validate_ms, 0.0);

  // Observable zero-copy: the mapped deployment's crossbar code grids are
  // borrowed views into the mapping, not owned copies.
  const char* lo = mapped.mapped->data();
  const char* hi = lo + mapped.mapped->size();
  const auto& q = mapped.mapping->layers.front().blocks.front().q;
  ASSERT_FALSE(q.empty());
  EXPECT_FALSE(q.owned()) << "mapped MAPPING grids must be borrowed spans";
  const char* qp = reinterpret_cast<const char*>(q.data());
  EXPECT_TRUE(qp >= lo && qp < hi) << "span must point into the mapping";
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(qp) % kPayloadAlign, 0U);
  EXPECT_TRUE(copied.mapping->layers.front().blocks.front().q.owned());

  // Bit-identical forward outputs and per-layer counter deltas across all
  // three load paths.
  const Tensor batch = f.batch(8);
  const Tensor y0 = copied.analog->forward(batch);
  const Tensor y1 = mapped.analog->forward(batch);
  const Tensor y2 = streamed.analog->forward(batch);
  ASSERT_EQ(y0.numel(), y1.numel());
  ASSERT_EQ(y0.numel(), y2.numel());
  const auto nbytes = static_cast<std::size_t>(y0.numel()) * sizeof(float);
  EXPECT_EQ(std::memcmp(y0.data(), y1.data(), nbytes), 0)
      << "mapped forward must be byte-identical to copied";
  EXPECT_EQ(std::memcmp(y0.data(), y2.data(), nbytes), 0)
      << "streamed forward must be byte-identical to copied";
  ASSERT_EQ(copied.analog->sims().size(), mapped.analog->sims().size());
  for (std::size_t i = 0; i < copied.analog->sims().size(); ++i) {
    const auto s0 = copied.analog->sims()[i]->stats_snapshot();
    const auto s1 = mapped.analog->sims()[i]->stats_snapshot();
    const auto s2 = streamed.analog->sims()[i]->stats_snapshot();
    EXPECT_EQ(s0.adc_conversions, s1.adc_conversions) << "layer " << i;
    EXPECT_EQ(s0.adc_clip_events, s1.adc_clip_events) << "layer " << i;
    EXPECT_EQ(s0.dac_cycles, s1.dac_cycles) << "layer " << i;
    EXPECT_EQ(s0.adc_conversions, s2.adc_conversions) << "layer " << i;
    EXPECT_EQ(s0.dac_cycles, s2.dac_cycles) << "layer " << i;
  }
  std::remove(path.c_str());
}

TEST(Artifact, MappedServeDigestIdenticalAcrossWorkerCounts) {
  Fixture f;
  const std::string path = "artifact_mapped_serve_tmp.tadc";
  save_artifact(path, f.inputs());
  const auto plans_before = msim::AnalogLayerSim::plan_compilations();
  const auto calib_before = msim::AnalogNetwork::calibration_runs();
  Deployment copied = load_artifact(path);
  Deployment mapped = load_artifact_mapped(path);
  Deployment streamed = load_artifact_mapped(path, /*async_stream=*/true);
  streamed.finish_streaming();

  std::uint64_t digests[6];
  msim::MsimStats deltas[6];
  int slot = 0;
  for (const int workers : {1, 4})
    for (msim::AnalogNetwork* analog :
         {copied.analog.get(), mapped.analog.get(), streamed.analog.get()}) {
      digests[slot] = serve_digest(f, *analog, workers, &deltas[slot]);
      ++slot;
    }
  for (int i = 1; i < 6; ++i) {
    EXPECT_EQ(digests[i], digests[0]) << "run " << i;
    EXPECT_EQ(deltas[i].adc_conversions, deltas[0].adc_conversions) << i;
    EXPECT_EQ(deltas[i].adc_clip_events, deltas[0].adc_clip_events) << i;
    EXPECT_EQ(deltas[i].dac_cycles, deltas[0].dac_cycles) << i;
  }
  EXPECT_EQ(msim::AnalogLayerSim::plan_compilations(), plans_before);
  EXPECT_EQ(msim::AnalogNetwork::calibration_runs(), calib_before);
  std::remove(path.c_str());
}

TEST(Artifact, MappedLoadResaveIsByteIdentical) {
  Fixture f;
  const std::string path0 = "artifact_mapped_resave0_tmp.tadc";
  const std::string path1 = "artifact_mapped_resave1_tmp.tadc";
  save_artifact(path0, f.inputs());
  Deployment dep = load_artifact_mapped(path0, /*async_stream=*/true);
  dep.finish_streaming();
  save_artifact(path1, dep);
  const auto b0 = slurp(path0);
  const auto b1 = slurp(path1);
  ASSERT_FALSE(b0.empty());
  EXPECT_EQ(b0.size(), b1.size());
  EXPECT_TRUE(b0 == b1)
      << "save → mapped load → save must reproduce the file byte-for-byte";
  std::remove(path0.c_str());
  std::remove(path1.c_str());
}

TEST(Artifact, MappedLoadRejectsMisalignedSectionOffset) {
  Fixture f;
  const std::string path = "artifact_misaligned_src_tmp.tadc";
  const std::string bad = "artifact_misaligned_tmp.tadc";
  save_artifact(path, f.inputs());
  auto bytes = slurp(path);
  // Shift the PLANS table entry's offset by 8: still 8-byte aligned (the
  // container minimum, so the table parses) but no longer 64 — both load
  // paths must fail with CheckError, never misread or hand out a
  // misaligned span.
  std::uint32_t nsections = 0;
  std::memcpy(&nsections, bytes.data() + 12, sizeof(nsections));
  bool patched = false;
  for (std::uint32_t i = 0; i < nsections; ++i) {
    char* entry = bytes.data() + 16 + static_cast<std::size_t>(i) * 24;
    if (std::memcmp(entry, "PLANS\0\0\0", 8) != 0) continue;
    std::uint64_t offset = 0;
    std::memcpy(&offset, entry + 8, sizeof(offset));
    ASSERT_EQ(offset % kPayloadAlign, 0U);
    offset += 8;
    std::memcpy(entry + 8, &offset, sizeof(offset));
    patched = true;
  }
  ASSERT_TRUE(patched);
  spit(bad, bytes);
  EXPECT_THROW((void)load_artifact_mapped(bad), CheckError);
  EXPECT_THROW((void)load_artifact(bad), CheckError);
  std::remove(path.c_str());
  std::remove(bad.c_str());
}

// ---------------------------------------------------------------------------
// v2 (PR-8 unaligned SoA) golden artifacts: the copy-fallback path must
// keep loading them — through both load_artifact and load_artifact_mapped,
// bit-identically to each other — and re-saving upgrades them to a
// byte-stable v3 file. (Written before the v3 alignment change; the
// fixture recipe matches struct Fixture above.)

Tensor golden_batch(std::int64_t n) {
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.image_size = 8;
  spec.train_per_class = 8;
  spec.test_per_class = 6;
  spec.seed = 17;
  const data::DatasetPair data = data::make_synthetic(spec);
  const Tensor& all = data.test.images;
  Tensor b({n, all.dim(1), all.dim(2), all.dim(3)});
  std::memcpy(b.data(), all.data(),
              static_cast<std::size_t>(b.numel()) * sizeof(float));
  return b;
}

void golden_v2_fallback_case(const std::string& golden) {
  ASSERT_FALSE(slurp(golden).empty()) << golden;
  const auto plans_before = msim::AnalogLayerSim::plan_compilations();
  const auto calib_before = msim::AnalogNetwork::calibration_runs();
  Deployment copied = load_artifact(golden);
  Deployment mapped = load_artifact_mapped(golden, /*async_stream=*/true);
  mapped.finish_streaming();
  EXPECT_EQ(msim::AnalogLayerSim::plan_compilations(), plans_before)
      << "loading a v2 payload must copy-convert, not recompile";
  EXPECT_EQ(msim::AnalogNetwork::calibration_runs(), calib_before);

  // v2 arrays are unaligned in the file, so even the mapped load falls
  // back to owned copies — and the two paths stay bit-identical.
  const Tensor batch = golden_batch(6);
  const Tensor y0 = copied.analog->forward(batch);
  const Tensor y1 = mapped.analog->forward(batch);
  ASSERT_EQ(y0.numel(), y1.numel());
  EXPECT_EQ(std::memcmp(y0.data(), y1.data(),
                        static_cast<std::size_t>(y0.numel()) * sizeof(float)),
            0)
      << golden;
  ASSERT_EQ(copied.analog->sims().size(), mapped.analog->sims().size());
  for (std::size_t i = 0; i < copied.analog->sims().size(); ++i) {
    const auto s0 = copied.analog->sims()[i]->stats_snapshot();
    const auto s1 = mapped.analog->sims()[i]->stats_snapshot();
    EXPECT_EQ(s0.adc_conversions, s1.adc_conversions) << "layer " << i;
    EXPECT_EQ(s0.adc_clip_events, s1.adc_clip_events) << "layer " << i;
    EXPECT_EQ(s0.dac_cycles, s1.dac_cycles) << "layer " << i;
  }

  // Upgrade: re-save (always writes v3 aligned), mapped-reload, re-save —
  // byte-stable, and still executing bit-identically to the v2 copies.
  const std::string up0 = "artifact_v2_upgrade0_tmp.tadc";
  const std::string up1 = "artifact_v2_upgrade1_tmp.tadc";
  save_artifact(up0, copied);
  Deployment dep2 = load_artifact_mapped(up0);
  save_artifact(up1, dep2);
  EXPECT_TRUE(slurp(up0) == slurp(up1))
      << "upgraded artifact must round-trip byte-identically";
  const Tensor y2 = dep2.analog->forward(batch);
  ASSERT_EQ(y1.numel(), y2.numel());
  EXPECT_EQ(std::memcmp(y1.data(), y2.data(),
                        static_cast<std::size_t>(y1.numel()) * sizeof(float)),
            0);
  std::remove(up0.c_str());
  std::remove(up1.c_str());
}

TEST(ArtifactVersioning, GoldenV2IdealLoadsCopiedAndMapped) {
  golden_v2_fallback_case(std::string(TINYADC_TEST_DATA_DIR) +
                          "/golden_plans_v2_ideal.tadc");
}

TEST(ArtifactVersioning, GoldenV2NonIdealLoadsCopiedAndMapped) {
  golden_v2_fallback_case(std::string(TINYADC_TEST_DATA_DIR) +
                          "/golden_plans_v2_nonideal.tadc");
}

}  // namespace
}  // namespace tinyadc::artifact
