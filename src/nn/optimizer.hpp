// SGD optimizer with momentum, weight decay and LR schedules.
#pragma once

#include <unordered_map>
#include <vector>

#include "nn/param.hpp"

namespace tinyadc::nn {

/// Learning-rate schedules supported by Sgd::lr_at.
enum class LrSchedule {
  kConstant,  ///< lr stays at base
  kStep,      ///< lr *= gamma every `step_every` epochs
  kCosine,    ///< half-cosine decay from base to ~0 over `total_epochs`
};

/// SGD hyperparameters.
struct SgdConfig {
  float lr = 0.1F;            ///< base learning rate
  float momentum = 0.9F;      ///< classical momentum coefficient
  float weight_decay = 5e-4F; ///< L2 decay applied to params with decay=true
  LrSchedule schedule = LrSchedule::kCosine;
  int total_epochs = 30;  ///< horizon for cosine decay
  int step_every = 10;    ///< period for step decay
  float step_gamma = 0.1F;
};

/// Abstract optimizer interface: consumes accumulated gradients, updates
/// parameter values. Implementations do not own parameters; they keep state
/// buffers keyed by Param address, so one instance may be reused across the
/// pruning pipeline's retraining phases.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Applies one update step (epoch index drives LR schedules).
  virtual void step(const std::vector<Param*>& params, int epoch) = 0;
  /// Drops internal state (momentum/moment buffers).
  virtual void reset_state() = 0;
};

/// Stochastic gradient descent with momentum.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(SgdConfig config) : config_(config) {}

  /// Effective learning rate at `epoch` under the configured schedule.
  float lr_at(int epoch) const;

  /// Applies one update to every parameter: v ← μv + (g + λw); w ← w − lr·v.
  void step(const std::vector<Param*>& params, int epoch) override;

  /// Zeroes gradient accumulators.
  static void zero_grad(const std::vector<Param*>& params);

  /// Drops momentum state (used when hard-pruning resets the trajectory).
  void reset_state() override { velocity_.clear(); }

  const SgdConfig& config() const { return config_; }
  /// Mutable config access (e.g. to lower lr for a retraining phase).
  SgdConfig& config() { return config_; }

 private:
  SgdConfig config_;
  std::unordered_map<const Param*, Tensor> velocity_;
};

/// Adam hyperparameters (Kingma & Ba, 2015).
struct AdamConfig {
  float lr = 1e-3F;
  float beta1 = 0.9F;
  float beta2 = 0.999F;
  float eps = 1e-8F;
  float weight_decay = 0.0F;  ///< decoupled (AdamW-style), decay-flag aware
};

/// Adam with decoupled weight decay. Offered as an alternative trainer
/// backend; the paper's runs use SGD (our default).
class Adam final : public Optimizer {
 public:
  explicit Adam(AdamConfig config) : config_(config) {}

  void step(const std::vector<Param*>& params, int epoch) override;
  void reset_state() override {
    m_.clear();
    v_.clear();
    t_ = 0;
  }

  const AdamConfig& config() const { return config_; }

 private:
  AdamConfig config_;
  std::unordered_map<const Param*, Tensor> m_;
  std::unordered_map<const Param*, Tensor> v_;
  std::int64_t t_ = 0;
};

}  // namespace tinyadc::nn
