#include "nn/sequential.hpp"

#include "tensor/ops.hpp"

namespace tinyadc::nn {

Tensor Sequential::forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& child : children_) x = child->forward(x, training);
  return x;
}

Tensor Sequential::forward_range(const Tensor& input, std::size_t begin,
                                 std::size_t end, bool training) {
  TINYADC_CHECK(begin <= end && end <= children_.size(),
                "forward_range [" << begin << ", " << end << ") out of "
                                  << children_.size() << " children");
  Tensor x = input;
  for (std::size_t i = begin; i < end; ++i)
    x = children_[i]->forward(x, training);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = children_.rbegin(); it != children_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

void Sequential::visit(const std::function<void(Layer&)>& fn) {
  fn(*this);
  for (auto& child : children_) child->visit(fn);
}

Residual::Residual(std::string name, LayerPtr main_branch, LayerPtr shortcut)
    : Layer(std::move(name)),
      main_(std::move(main_branch)),
      shortcut_(std::move(shortcut)) {
  TINYADC_CHECK(main_ != nullptr, "Residual requires a main branch");
}

Tensor Residual::forward(const Tensor& input, bool training) {
  Tensor main_out = main_->forward(input, training);
  Tensor short_out =
      shortcut_ ? shortcut_->forward(input, training) : input;
  TINYADC_CHECK(main_out.numel() == short_out.numel(),
                "Residual " << name() << ": branch shape mismatch "
                            << shape_to_string(main_out.shape()) << " vs "
                            << shape_to_string(short_out.shape()));
  Tensor out = add(main_out, short_out);
  // Final ReLU of the block.
  Tensor mask = training ? Tensor(out.shape()) : Tensor();
  float* o = out.data();
  float* m = training ? mask.data() : nullptr;
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    const bool on = o[i] > 0.0F;
    if (!on) o[i] = 0.0F;
    if (m) m[i] = on ? 1.0F : 0.0F;
  }
  if (training) relu_mask_ = std::move(mask);
  return out;
}

Tensor Residual::backward(const Tensor& grad_output) {
  TINYADC_CHECK(relu_mask_.numel() == grad_output.numel(),
                "Residual " << name() << ": backward without forward");
  Tensor g = grad_output.clone();
  mul_(g, relu_mask_);
  relu_mask_ = Tensor();
  Tensor grad_main = main_->backward(g);
  if (shortcut_) {
    Tensor grad_short = shortcut_->backward(g);
    add_(grad_main, grad_short);
  } else {
    add_(grad_main, g);
  }
  return grad_main;
}

void Residual::visit(const std::function<void(Layer&)>& fn) {
  fn(*this);
  main_->visit(fn);
  if (shortcut_) shortcut_->visit(fn);
}


LayerPtr Sequential::clone() const {
  auto copy = std::make_unique<Sequential>(name());
  for (const auto& child : children_) copy->add(child->clone());
  return copy;
}

LayerPtr Residual::clone() const {
  return std::make_unique<Residual>(name(), main_->clone(),
                                    shortcut_ ? shortcut_->clone() : nullptr);
}

}  // namespace tinyadc::nn
