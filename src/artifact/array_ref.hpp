// ArrayRef<T>: a read-mostly array that either owns its elements (a plain
// std::vector<T>) or borrows them as a read-only view into a mapped
// artifact, with the mapping's lifetime pinned by a shared keeper handle.
//
// This is the storage type behind the zero-copy load path (DESIGN.md §14):
// hot payloads — the SoA plan streams and the crossbar mapping grids — are
// ArrayRefs so a deployment restored via load_artifact_mapped() can point
// straight into the page cache, while the training/mutation paths promote
// to owned storage on first write (`mut()` is copy-on-write).
//
// The read API is deliberately vector-shaped (data/size/operator[]/
// begin/end/back/==) so kernel code and tests are storage-agnostic; only
// writers must go through mut(), which makes every mutation of a mapped
// view an explicit private copy instead of a SIGSEGV on read-only pages.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace tinyadc::artifact {

template <typename T>
class ArrayRef {
 public:
  ArrayRef() = default;

  /// Owning constructor: adopts the vector.
  ArrayRef(std::vector<T> v)  // NOLINT(google-explicit-constructor)
      : storage_(std::move(v)) {}

  /// Borrowing constructor: views `n` elements at `p`; `keeper` pins the
  /// backing storage (e.g. a MappedFile) for the view's lifetime.
  ArrayRef(const T* p, std::size_t n, std::shared_ptr<const void> keeper)
      : keeper_(std::move(keeper)), view_(p), view_size_(n) {}

  const T* data() const { return owned() ? storage_.data() : view_; }
  std::size_t size() const { return owned() ? storage_.size() : view_size_; }
  bool empty() const { return size() == 0; }
  const T& operator[](std::size_t i) const { return data()[i]; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }
  const T& front() const { return data()[0]; }
  const T& back() const { return data()[size() - 1]; }

  /// True when the elements live in owned storage (mutable in place).
  bool owned() const { return keeper_ == nullptr; }

  /// Mutable access; a borrowed view is first promoted to an owned copy
  /// (copy-on-write), so mapped pages are never written through.
  std::vector<T>& mut() {
    if (!owned()) {
      storage_.assign(view_, view_ + view_size_);
      keeper_.reset();
      view_ = nullptr;
      view_size_ = 0;
    }
    return storage_;
  }

  /// A detached owned copy of the contents.
  std::vector<T> to_vector() const { return std::vector<T>(begin(), end()); }

  friend bool operator==(const ArrayRef& a, const ArrayRef& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i)
      if (!(a[i] == b[i])) return false;
    return true;
  }
  friend bool operator!=(const ArrayRef& a, const ArrayRef& b) {
    return !(a == b);
  }

 private:
  std::vector<T> storage_;
  std::shared_ptr<const void> keeper_;
  const T* view_ = nullptr;
  std::size_t view_size_ = 0;
};

}  // namespace tinyadc::artifact
