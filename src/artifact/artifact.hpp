// Deployment-artifact assembly: one `.tadc` file carrying everything a
// serving process needs to cold-start in milliseconds.
//
// Sections (see format.hpp for the container layout):
//
//   META     architecture name + ModelConfig — enough to rebuild the
//            layer graph with nn::build_model (weights come separately)
//   WEIGHTS  trained parameters + buffers (Model::serialize)
//   PRUNE    prune specs and structural selections (optional: absent for
//            dense deployments)
//   MAPPING  the full crossbar mapping — config, quantizers, reform index
//            maps, block grids, quantized codes, occupancy census
//   PLANS    MsimConfig + per-layer compiled execution state (ADC sizing,
//            variation draws, sparsity-packed plans)
//   CALIB    activation-calibration state (quantizer ranges, signed flags)
//
// load_artifact() reconstructs the whole deployment *without* invoking the
// pruning pipeline, the plan compiler or the calibration pass — verified
// by AnalogLayerSim::plan_compilations() / AnalogNetwork::calibration_runs()
// staying flat across a load. A loaded deployment produces bit-identical
// forward outputs and ADC counters to the in-process pipeline it was saved
// from, and re-saving it reproduces the input file byte for byte.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/prune_spec.hpp"
#include "msim/analog_network.hpp"
#include "nn/model.hpp"
#include "nn/models.hpp"
#include "xbar/mapping.hpp"

namespace tinyadc::artifact {

/// Model-identity metadata (the META section).
struct ArtifactMeta {
  std::string arch;        ///< zoo name for nn::build_model
  std::string model_name;  ///< Model::name() of the deployed instance
  nn::ModelConfig model_config;
};

/// Everything save_artifact() snapshots. All references must outlive the
/// call; `analog` must be calibrated.
struct ArtifactInputs {
  ArtifactMeta meta;
  nn::Model& model;  ///< non-const: serialization walks live named views
  const xbar::MappedNetwork& mapping;
  const msim::AnalogNetwork& analog;
  /// Optional pruning provenance (empty for dense deployments).
  std::vector<core::LayerPruneSpec> specs;
  std::vector<core::StructuralSelection> selections;
};

/// Writes a deployment artifact to `path`.
void save_artifact(const std::string& path, const ArtifactInputs& inputs);

/// A deployment reconstructed from an artifact. The members reference each
/// other (the analog network hooks the model and reads the mapping), so
/// they live behind stable unique_ptrs and the struct is move-only.
struct Deployment {
  ArtifactMeta meta;
  std::vector<core::LayerPruneSpec> specs;
  std::vector<core::StructuralSelection> selections;
  std::unique_ptr<nn::Model> model;
  std::unique_ptr<xbar::MappedNetwork> mapping;
  std::unique_ptr<msim::AnalogNetwork> analog;
};

/// Loads a deployment artifact: rebuilds the model from META, restores the
/// weights, mapping, compiled plans and calibration state. Never touches
/// training, pruning, plan-compilation or calibration code paths.
Deployment load_artifact(const std::string& path);

/// Re-serializes a loaded deployment. save → load → save is byte-identical,
/// which is the round-trip guarantee tests/artifact_test.cpp enforces.
void save_artifact(const std::string& path, const Deployment& deployment);

}  // namespace tinyadc::artifact
