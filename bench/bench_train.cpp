// Train-step throughput benchmark for the batched ADMM training pipeline.
//
// Plain invocation prints per-phase wall times of one optimizer step on the
// width-scaled bench ResNet-18 — forward, backward (batched vs the
// per-sample reference conv path), optimizer step, the fused ADMM Z/U
// update, and the full AdmmPruner-attached train step.
//
// Invoked with `--json <path>` (or TINYADC_BENCH_JSON=<path>) it instead
// runs the self-timed thread sweep used by BENCH_kernels.json: each kernel
// at 1/2/N threads with an FNV-1a digest of every output byte; digests must
// match the 1-thread run exactly (the runtime's determinism contract covers
// the whole training step, not just individual kernels).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/admm.hpp"
#include "nn/conv.hpp"
#include "nn/trainer.hpp"
#include "runtime/parallel.hpp"

namespace {

using namespace tinyadc;
using bench::fnv1a;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

constexpr core::CrossbarDims kDims{128, 128};

/// The first (deterministic-order) training batch of the bench dataset.
data::Batch first_batch(const data::Dataset& ds, std::size_t batch_size) {
  data::BatchIterator it(ds, batch_size, nullptr);
  data::Batch batch;
  it.next(batch);
  return batch;
}

nn::TrainConfig bench_train_config() {
  nn::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 32;
  cfg.sgd.lr = 0.05F;
  cfg.sgd.total_epochs = 1;
  return cfg;
}

std::uint64_t digest_params(nn::Model& model) {
  std::uint64_t h = 0;
  for (const nn::Param* p : model.params()) {
    h ^= fnv1a(p->value.data(),
               sizeof(float) * static_cast<std::size_t>(p->value.numel()));
    h ^= fnv1a(p->grad.data(),
               sizeof(float) * static_cast<std::size_t>(p->grad.numel()));
  }
  return h;
}

// ---------------------------------------------------------------------------
// Plain mode: per-phase wall times of one train step.
// ---------------------------------------------------------------------------

struct PhaseTimes {
  double forward = 0.0;
  double backward = 0.0;
  double optimizer = 0.0;
};

/// Times the forward / backward / optimizer phases of `reps` SGD steps on a
/// fresh bench model with the conv layers on the given execution path.
PhaseTimes time_phases(const data::Batch& batch, bool batched, int reps) {
  auto model = bench::bench_model("resnet18", 10);
  for (nn::Conv2d* conv : model->conv_layers()) conv->set_batched(batched);
  nn::Trainer trainer(*model, bench_train_config());
  auto params = model->params();
  PhaseTimes t;
  for (int rep = 0; rep < reps; ++rep) {
    nn::Sgd::zero_grad(params);
    auto t0 = Clock::now();
    Tensor logits = model->forward(batch.images, /*training=*/true);
    t.forward += ms_since(t0);
    nn::LossResult loss = nn::softmax_cross_entropy(logits, batch.labels);
    t0 = Clock::now();
    model->backward(loss.grad_logits);
    t.backward += ms_since(t0);
    t0 = Clock::now();
    trainer.optimizer().step(params, 0);
    t.optimizer += ms_since(t0);
  }
  t.forward /= reps;
  t.backward /= reps;
  t.optimizer /= reps;
  return t;
}

int run_phase_table() {
  const int reps = bench::quick_mode() ? 3 : 10;
  data::DatasetPair ds = bench::bench_dataset("cifar10");
  const data::Batch batch = first_batch(ds.train, 32);

  const PhaseTimes ref = time_phases(batch, /*batched=*/false, reps);
  const PhaseTimes bat = time_phases(batch, /*batched=*/true, reps);

  // Fused ADMM Z/U update and the full pruner-attached step.
  auto model = bench::bench_model("resnet18", 10);
  nn::Trainer trainer(*model, bench_train_config());
  auto specs = core::uniform_cp_specs(*model, 8, kDims);
  core::AdmmPruner pruner(*model, specs, kDims, core::AdmmConfig{0.1F, 1});
  pruner.attach(trainer);
  double admm_ms = 0.0;
  double full_ms = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    auto t0 = Clock::now();
    trainer.train_step(batch, 0);
    full_ms += ms_since(t0);
    t0 = Clock::now();
    pruner.update_duals();
    admm_ms += ms_since(t0);
  }
  admm_ms /= reps;
  full_ms /= reps;

  std::printf("Train-step phase timing (bench resnet18, batch %lld, %d reps)\n",
              static_cast<long long>(batch.labels.size()), reps);
  bench::hr(60);
  std::printf("%-28s %14s %14s\n", "phase", "reference ms", "batched ms");
  bench::hr(60);
  std::printf("%-28s %14.3f %14.3f\n", "forward", ref.forward, bat.forward);
  std::printf("%-28s %14.3f %14.3f\n", "backward", ref.backward, bat.backward);
  std::printf("%-28s %14.3f %14.3f\n", "optimizer step", ref.optimizer,
              bat.optimizer);
  bench::hr(60);
  std::printf("%-28s %14s %14.3f\n", "ADMM update_duals", "-", admm_ms);
  std::printf("%-28s %14s %14.3f\n", "full ADMM train step", "-", full_ms);
  bench::hr(60);
  return 0;
}

// ---------------------------------------------------------------------------
// Thread sweep with bit-identity verification (--json / TINYADC_BENCH_JSON).
// ---------------------------------------------------------------------------

struct SweepKernel {
  std::string name;
  std::function<std::uint64_t()> run;
};

std::vector<SweepKernel> make_sweep_kernels(const data::Batch& batch) {
  std::vector<SweepKernel> kernels;

  // Conv forward+backward, per-sample reference path vs the batched
  // single-GEMM workspace path — the tentpole before/after pair. Each run
  // rebuilds the layer from the same seeds, so state is identical across
  // thread counts; gradients accumulate over reps and feed the digest.
  for (const bool batched : {false, true}) {
    kernels.push_back(
        {batched ? "train_conv_fwdbwd_batched" : "train_conv_fwdbwd_ref",
         [batched] {
           Rng rng(11);
           nn::Conv2d conv("bench_conv", 8, 16, 3, 1, 1, /*bias=*/true, rng);
           conv.set_batched(batched);
           Rng drng(12);
           const Tensor input = Tensor::randn({16, 8, 12, 12}, drng);
           const Tensor gout = Tensor::randn({16, 16, 12, 12}, drng);
           std::uint64_t h = 0;
           for (int rep = 0; rep < 6; ++rep) {
             const Tensor out = conv.forward(input, /*training=*/true);
             const Tensor gin = conv.backward(gout);
             h ^= fnv1a(out.data(),
                        sizeof(float) * static_cast<std::size_t>(out.numel()));
             h ^= fnv1a(gin.data(),
                        sizeof(float) * static_cast<std::size_t>(gin.numel()));
           }
           const Tensor& gw = conv.weight().grad;
           h ^= fnv1a(gw.data(),
                      sizeof(float) * static_cast<std::size_t>(gw.numel()));
           return h;
         }});
  }

  // Full SGD train steps on the bench model (forward, backward, optimizer).
  kernels.push_back({"train_step_sgd", [&batch] {
    auto model = bench::bench_model("resnet18", 10);
    nn::Trainer trainer(*model, bench_train_config());
    for (int rep = 0; rep < 4; ++rep) trainer.train_step(batch, 0);
    return digest_params(*model);
  }});

  // AdmmPruner-attached steps: proximal gradient in the loop plus the fused
  // Z-projection / dual update after every step. The digest covers the
  // parameters and every layer's Z and U buffers.
  kernels.push_back({"train_step_admm", [&batch] {
    auto model = bench::bench_model("resnet18", 10);
    nn::Trainer trainer(*model, bench_train_config());
    auto specs = core::uniform_cp_specs(*model, 8, kDims);
    core::AdmmPruner pruner(*model, specs, kDims, core::AdmmConfig{0.1F, 1});
    pruner.attach(trainer);
    for (int rep = 0; rep < 4; ++rep) {
      trainer.train_step(batch, 0);
      pruner.update_duals();
    }
    std::uint64_t h = digest_params(*model);
    for (std::size_t i = 0; i < pruner.specs().size(); ++i) {
      const auto& z = pruner.z(i);
      const auto& u = pruner.u(i);
      h ^= fnv1a(z.data(), sizeof(float) * z.size());
      h ^= fnv1a(u.data(), sizeof(float) * u.size());
    }
    return h;
  }});

  return kernels;
}

int run_thread_sweep(const std::string& json_path) {
  data::DatasetPair ds = bench::bench_dataset("cifar10");
  const data::Batch batch = first_batch(ds.train, 32);
  const auto kernels = make_sweep_kernels(batch);

  const unsigned hw = std::thread::hardware_concurrency();
  const std::vector<int> thread_counts{1, 2,
                                       static_cast<int>(hw > 4 ? hw : 4U)};

  std::vector<bench::KernelTiming> rows;
  bool all_identical = true;
  for (const auto& kernel : kernels) {
    std::uint64_t baseline = 0;
    for (const int threads : thread_counts) {
      runtime::set_thread_count(threads);
      const auto t0 = Clock::now();
      const std::uint64_t digest = kernel.run();
      bench::KernelTiming row;
      row.kernel = kernel.name;
      row.threads = threads;
      row.ms = ms_since(t0);
      if (threads == 1) baseline = digest;
      row.identical = digest == baseline;
      all_identical = all_identical && row.identical;
      std::printf("%-28s threads=%-2d %10.3f ms  %s\n", row.kernel.c_str(),
                  row.threads, row.ms,
                  row.identical ? "bit-identical" : "MISMATCH");
      rows.push_back(row);
    }
  }
  runtime::set_thread_count(0);  // restore default resolution

  if (!bench::write_bench_json(json_path, "bench_train", rows)) return 1;
  std::printf("wrote %s\n", json_path.c_str());
  return all_identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = tinyadc::bench::bench_json_path(argc, argv);
  if (!json_path.empty()) return run_thread_sweep(json_path);
  return run_phase_table();
}
