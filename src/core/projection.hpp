// Euclidean projections onto the paper's pruning constraint sets.
//
// All three projections share one key fact: for a constraint set of the
// form "zero out all but a selected support", the Euclidean-closest point
// keeps the largest-magnitude entries (largest-norm groups) and zeroes the
// rest. This is what makes the ADMM Z-update (Eq. 6) a simple top-k select.
#pragma once

#include <cstdint>
#include <vector>

#include "core/layout.hpp"
#include "tensor/tensor.hpp"

namespace tinyadc::core {

/// --- Column proportional pruning (the paper's §III-A) --------------------

/// Projects `m` onto the CP constraint set: within every crossbar block
/// (tiles of `dims.rows × dims.cols` over the matrix, remainder tiles
/// included), each block-column keeps its `keep` largest-|w| entries and
/// zeroes the rest. Exactly the projection Π of Eq. 6.
void project_column_proportional(MatrixRef m, CrossbarDims dims,
                                 std::int64_t keep);

/// True iff every crossbar block column of `m` has ≤ `keep` non-zeros.
bool satisfies_column_proportional(ConstMatrixRef m, CrossbarDims dims,
                                   std::int64_t keep);

/// Largest per-block-column non-zero count over the whole matrix (the `r`
/// that enters the ADC-bits law for this layer). Zero for an all-zero matrix.
std::int64_t max_column_nonzeros(ConstMatrixRef m, CrossbarDims dims);

/// --- Reformed-geometry CP (structured + CP combined, §III-D) -------------

/// CP projection over the *reformed* matrix: rows listed in `removed_rows`
/// are skipped when forming crossbar row-blocks, exactly as the mapper will
/// tile the compacted matrix after structured shape pruning. (This is why
/// the paper requires shape pruning *before* CP pruning: the reform shifts
/// block boundaries.) `removed_rows` must be sorted ascending.
void project_column_proportional_reformed(
    MatrixRef m, CrossbarDims dims, std::int64_t keep,
    const std::vector<std::int64_t>& removed_rows);

/// Census over the reformed geometry: the (sorted) `removed_rows` are
/// dropped before tiling, matching how xbar::map_matrix compacts exactly
/// the structurally-pruned rows. Incidental zero rows stay in place — CP
/// zeros must not shift block boundaries.
std::int64_t max_column_nonzeros_reformed(
    ConstMatrixRef m, CrossbarDims dims,
    const std::vector<std::int64_t>& removed_rows);

/// Up to `max_count` indices of completely-zero rows, ascending — the
/// deterministic rule for recovering a structural shape-pruning selection
/// from a hard-pruned matrix.
std::vector<std::int64_t> zero_row_indices(ConstMatrixRef m,
                                           std::int64_t max_count);

/// Same for completely-zero columns.
std::vector<std::int64_t> zero_column_indices(ConstMatrixRef m,
                                              std::int64_t max_count);

/// --- Structured pruning (crossbar-size-aware, §III-D) --------------------

/// Indices of the `count` lowest-L2-norm columns (filters) of `m`.
std::vector<std::int64_t> lowest_norm_columns(ConstMatrixRef m,
                                              std::int64_t count);

/// Indices of the `count` lowest-L2-norm rows (filter shapes) of `m`.
std::vector<std::int64_t> lowest_norm_rows(ConstMatrixRef m,
                                           std::int64_t count);

/// Zeroes the given columns of `m` (filter pruning).
void zero_columns(MatrixRef m, const std::vector<std::int64_t>& columns);

/// Zeroes the given rows of `m` (filter-shape pruning).
void zero_rows(MatrixRef m, const std::vector<std::int64_t>& rows);

/// Rounds a desired removal count down to a multiple of `unit` (the
/// crossbar column/row size), the paper's crossbar-size-aware rule. With
/// `crossbar_aware == false` returns `desired` unchanged (used by the
/// E8 ablation).
std::int64_t round_removal(std::int64_t desired, std::int64_t unit,
                           bool crossbar_aware);

/// --- Masks ----------------------------------------------------------------

/// 0/1 mask of the current support of `m` (same storage layout).
std::vector<float> support_mask(ConstMatrixRef m);

/// Applies a 0/1 mask (same layout/size) to `m` in place.
void apply_mask(MatrixRef m, const std::vector<float>& mask);

}  // namespace tinyadc::core
