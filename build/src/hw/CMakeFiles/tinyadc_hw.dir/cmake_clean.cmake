file(REMOVE_RECURSE
  "CMakeFiles/tinyadc_hw.dir/adc_cost.cpp.o"
  "CMakeFiles/tinyadc_hw.dir/adc_cost.cpp.o.d"
  "CMakeFiles/tinyadc_hw.dir/cost_model.cpp.o"
  "CMakeFiles/tinyadc_hw.dir/cost_model.cpp.o.d"
  "CMakeFiles/tinyadc_hw.dir/inference_model.cpp.o"
  "CMakeFiles/tinyadc_hw.dir/inference_model.cpp.o.d"
  "CMakeFiles/tinyadc_hw.dir/pipeline.cpp.o"
  "CMakeFiles/tinyadc_hw.dir/pipeline.cpp.o.d"
  "CMakeFiles/tinyadc_hw.dir/throughput.cpp.o"
  "CMakeFiles/tinyadc_hw.dir/throughput.cpp.o.d"
  "libtinyadc_hw.a"
  "libtinyadc_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinyadc_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
