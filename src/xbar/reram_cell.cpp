#include "xbar/reram_cell.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/check.hpp"

namespace tinyadc::xbar {

VteamCell::VteamCell(VteamParams params, double initial_state)
    : params_(params), state_(initial_state) {
  TINYADC_CHECK(params_.r_on > 0 && params_.r_off > params_.r_on,
                "require 0 < r_on < r_off");
  TINYADC_CHECK(params_.v_on < 0 && params_.v_off > 0,
                "VTEAM thresholds must have v_on < 0 < v_off");
  TINYADC_CHECK(initial_state >= 0.0 && initial_state <= 1.0,
                "state must be in [0, 1]");
}

double VteamCell::conductance() const {
  return params_.g_off() + state_ * (params_.g_on() - params_.g_off());
}

void VteamCell::step(double voltage, double dt) {
  TINYADC_CHECK(dt > 0.0, "dt must be positive");
  double rate = 0.0;
  if (voltage > params_.v_off) {
    rate = params_.k_off *
           std::pow(voltage / params_.v_off - 1.0, params_.alpha_off);
  } else if (voltage < params_.v_on) {
    rate = params_.k_on *
           std::pow(voltage / params_.v_on - 1.0, params_.alpha_on);
  }
  if (rate == 0.0) return;
  // Joglekar window suppresses drift at the state boundaries. VTEAM's k_on
  // is negative by convention; SET (voltage < v_on) must *increase* s, so
  // the negative rate times the negative k_on sign convention works out to
  // ds = -rate·window·dt for SET and +rate·window·dt for RESET... To keep
  // the conventional outcome (SET grows s, RESET shrinks s) we fold the
  // sign explicitly.
  const double window = 1.0 - std::pow(2.0 * state_ - 1.0, 2.0);
  double ds;
  if (voltage < params_.v_on) {
    ds = std::fabs(rate) * window * dt;   // SET: toward s = 1 (G_on)
  } else {
    ds = -std::fabs(rate) * window * dt;  // RESET: toward s = 0 (G_off)
  }
  state_ = std::clamp(state_ + ds, 0.0, 1.0);
}

void VteamCell::set_state(double s) {
  TINYADC_CHECK(s >= 0.0 && s <= 1.0, "state must be in [0, 1]");
  state_ = s;
}

std::vector<double> mlc_conductance_levels(const VteamParams& params,
                                           int cell_bits) {
  TINYADC_CHECK(cell_bits >= 1 && cell_bits <= 4,
                "cell_bits must be in [1, 4] (paper: >2-3 bits impractical)");
  const int levels = 1 << cell_bits;
  std::vector<double> out(static_cast<std::size_t>(levels));
  const double g_off = params.g_off();
  const double g_on = params.g_on();
  for (int l = 0; l < levels; ++l)
    out[static_cast<std::size_t>(l)] =
        g_off + (g_on - g_off) * static_cast<double>(l) /
                    static_cast<double>(levels - 1);
  return out;
}

double state_for_level(const VteamParams& params, int level, int cell_bits) {
  const auto levels = mlc_conductance_levels(params, cell_bits);
  TINYADC_CHECK(level >= 0 &&
                    level < static_cast<int>(levels.size()),
                "level " << level << " out of range");
  const double g = levels[static_cast<std::size_t>(level)];
  return (g - params.g_off()) / (params.g_on() - params.g_off());
}

double perturbed_conductance(double nominal, double sigma, Rng& rng) {
  TINYADC_CHECK(sigma >= 0.0, "sigma must be non-negative");
  if (sigma == 0.0) return nominal;
  // Lognormal multiplier with unit median; σ is the log-domain std-dev,
  // which for small σ matches the relative spread (10 % in the paper).
  return nominal * std::exp(rng.normal(0.0F, static_cast<float>(sigma)));
}

double programming_time(const VteamParams& params, int level, int cell_bits,
                        double program_voltage, double dt) {
  TINYADC_CHECK(program_voltage < params.v_on,
                "programming voltage must exceed the SET threshold (v < v_on)");
  // The Joglekar window pins the boundaries exactly (f(0) = f(1) = 0), so
  // target the level's state clipped into the reachable open interval, and
  // nudge the start off s = 0 the way real devices escape it (thermal
  // fluctuation / boundary-layer models).
  const double target =
      std::min(state_for_level(params, level, cell_bits), 0.995);
  VteamCell cell(params, 0.0);
  cell.set_state(1e-3);
  double t = 0.0;
  const double t_limit = 0.05;  // give up after 50 ms of simulated time
  while (cell.state() < target && t < t_limit) {
    cell.step(program_voltage, dt);
    t += dt;
  }
  return t;
}

}  // namespace tinyadc::xbar
