# Empty compiler generated dependencies file for tinyadc_xbar.
# This may be replaced when dependencies are built.
