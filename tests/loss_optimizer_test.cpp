// Loss function and optimizer behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "tensor/ops.hpp"

namespace tinyadc::nn {
namespace {

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogK) {
  Tensor logits = Tensor::zeros({2, 4});
  const auto res = softmax_cross_entropy(logits, {0, 3});
  EXPECT_NEAR(res.loss, std::log(4.0), 1e-6);
}

TEST(SoftmaxCrossEntropy, ConfidentCorrectHasLowLoss) {
  Tensor logits({1, 3}, {10.0F, 0.0F, 0.0F});
  const auto res = softmax_cross_entropy(logits, {0});
  EXPECT_LT(res.loss, 1e-3);
  EXPECT_EQ(res.correct, 1);
}

TEST(SoftmaxCrossEntropy, GradientSumsToZeroPerRow) {
  Tensor logits({2, 5}, {1, 2, 3, 4, 5, -1, 0, 1, 0, -1});
  const auto res = softmax_cross_entropy(logits, {2, 4});
  for (int r = 0; r < 2; ++r) {
    double s = 0.0;
    for (int c = 0; c < 5; ++c) s += res.grad_logits.at(r, c);
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(SoftmaxCrossEntropy, GradientMatchesFiniteDifference) {
  Tensor logits({1, 3}, {0.5F, -0.2F, 0.1F});
  const auto res = softmax_cross_entropy(logits, {1});
  const float eps = 1e-3F;
  for (int j = 0; j < 3; ++j) {
    Tensor lp = logits.clone();
    lp.at(0, j) += eps;
    Tensor lm = logits.clone();
    lm.at(0, j) -= eps;
    const double numeric = (softmax_cross_entropy(lp, {1}).loss -
                            softmax_cross_entropy(lm, {1}).loss) /
                           (2.0 * eps);
    EXPECT_NEAR(res.grad_logits.at(0, j), numeric, 1e-4);
  }
}

TEST(SoftmaxCrossEntropy, NumericallyStableWithHugeLogits) {
  Tensor logits({1, 2}, {1000.0F, -1000.0F});
  const auto res = softmax_cross_entropy(logits, {0});
  EXPECT_TRUE(std::isfinite(res.loss));
  EXPECT_NEAR(res.loss, 0.0, 1e-6);
}

TEST(SoftmaxCrossEntropy, RejectsBadLabels) {
  Tensor logits({1, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {3}), CheckError);
  EXPECT_THROW(softmax_cross_entropy(logits, {-1}), CheckError);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 1}), CheckError);
}

TEST(TopkAccuracy, KnownCases) {
  Tensor logits({2, 4}, {1, 2, 3, 4, 4, 3, 2, 1});
  EXPECT_DOUBLE_EQ(topk_accuracy(logits, {3, 0}, 1), 1.0);
  EXPECT_DOUBLE_EQ(topk_accuracy(logits, {2, 2}, 1), 0.0);
  EXPECT_DOUBLE_EQ(topk_accuracy(logits, {2, 2}, 2), 0.5);
  EXPECT_DOUBLE_EQ(topk_accuracy(logits, {0, 0}, 4), 1.0);
}

TEST(Sgd, StepMovesAgainstGradient) {
  Param p("w", Tensor::from({1.0F, 1.0F}));
  p.grad = Tensor::from({1.0F, -1.0F});
  SgdConfig cfg;
  cfg.lr = 0.1F;
  cfg.momentum = 0.0F;
  cfg.weight_decay = 0.0F;
  cfg.schedule = LrSchedule::kConstant;
  Sgd sgd(cfg);
  sgd.step({&p}, 0);
  EXPECT_FLOAT_EQ(p.value.at(0), 0.9F);
  EXPECT_FLOAT_EQ(p.value.at(1), 1.1F);
}

TEST(Sgd, MomentumAccumulatesVelocity) {
  Param p("w", Tensor::from({0.0F}));
  SgdConfig cfg;
  cfg.lr = 1.0F;
  cfg.momentum = 0.5F;
  cfg.weight_decay = 0.0F;
  cfg.schedule = LrSchedule::kConstant;
  Sgd sgd(cfg);
  p.grad = Tensor::from({1.0F});
  sgd.step({&p}, 0);  // v=1, w=-1
  p.grad = Tensor::from({1.0F});
  sgd.step({&p}, 0);  // v=1.5, w=-2.5
  EXPECT_FLOAT_EQ(p.value.at(0), -2.5F);
}

TEST(Sgd, WeightDecayRespectsParamFlag) {
  Param decayed("w", Tensor::from({1.0F}), /*apply_decay=*/true);
  Param exempt("b", Tensor::from({1.0F}), /*apply_decay=*/false);
  decayed.grad.fill(0.0F);
  exempt.grad.fill(0.0F);
  SgdConfig cfg;
  cfg.lr = 1.0F;
  cfg.momentum = 0.0F;
  cfg.weight_decay = 0.1F;
  cfg.schedule = LrSchedule::kConstant;
  Sgd sgd(cfg);
  sgd.step({&decayed, &exempt}, 0);
  EXPECT_FLOAT_EQ(decayed.value.at(0), 0.9F);
  EXPECT_FLOAT_EQ(exempt.value.at(0), 1.0F);
}

TEST(Sgd, CosineScheduleDecaysToZero) {
  SgdConfig cfg;
  cfg.lr = 1.0F;
  cfg.schedule = LrSchedule::kCosine;
  cfg.total_epochs = 10;
  Sgd sgd(cfg);
  EXPECT_FLOAT_EQ(sgd.lr_at(0), 1.0F);
  EXPECT_NEAR(sgd.lr_at(5), 0.5F, 1e-6F);
  EXPECT_NEAR(sgd.lr_at(10), 0.0F, 1e-6F);
  EXPECT_NEAR(sgd.lr_at(20), 0.0F, 1e-6F);  // past horizon stays clamped
}

TEST(Sgd, StepScheduleDropsByGamma) {
  SgdConfig cfg;
  cfg.lr = 1.0F;
  cfg.schedule = LrSchedule::kStep;
  cfg.step_every = 10;
  cfg.step_gamma = 0.1F;
  Sgd sgd(cfg);
  EXPECT_FLOAT_EQ(sgd.lr_at(9), 1.0F);
  EXPECT_FLOAT_EQ(sgd.lr_at(10), 0.1F);
  EXPECT_NEAR(sgd.lr_at(25), 0.01F, 1e-8F);
}

TEST(Sgd, ZeroGradClearsAccumulators) {
  Param p("w", Tensor::from({1.0F}));
  p.grad.fill(5.0F);
  Sgd::zero_grad({&p});
  EXPECT_FLOAT_EQ(p.grad.at(0), 0.0F);
}

TEST(Sgd, ResetStateDropsMomentum) {
  Param p("w", Tensor::from({0.0F}));
  SgdConfig cfg;
  cfg.lr = 1.0F;
  cfg.momentum = 0.9F;
  cfg.weight_decay = 0.0F;
  cfg.schedule = LrSchedule::kConstant;
  Sgd sgd(cfg);
  p.grad = Tensor::from({1.0F});
  sgd.step({&p}, 0);
  sgd.reset_state();
  p.grad = Tensor::from({0.0F});
  sgd.step({&p}, 0);  // with cleared velocity, nothing moves
  EXPECT_FLOAT_EQ(p.value.at(0), -1.0F);
}


TEST(Adam, MovesAgainstGradient) {
  Param p("w", Tensor::from({1.0F, 1.0F}));
  p.grad = Tensor::from({1.0F, -1.0F});
  AdamConfig cfg;
  cfg.lr = 0.1F;
  Adam adam(cfg);
  adam.step({&p}, 0);
  EXPECT_LT(p.value.at(0), 1.0F);
  EXPECT_GT(p.value.at(1), 1.0F);
}

TEST(Adam, FirstStepSizeIsApproximatelyLr) {
  // Bias correction makes the first update ≈ lr·sign(g).
  Param p("w", Tensor::from({0.0F}));
  p.grad = Tensor::from({0.5F});
  AdamConfig cfg;
  cfg.lr = 0.01F;
  Adam adam(cfg);
  adam.step({&p}, 0);
  EXPECT_NEAR(p.value.at(0), -0.01F, 1e-4F);
}

TEST(Adam, AdaptsToGradientScale) {
  // Two params with wildly different gradient magnitudes move comparably.
  Param a("a", Tensor::from({0.0F}));
  Param b("b", Tensor::from({0.0F}));
  AdamConfig cfg;
  cfg.lr = 0.01F;
  Adam adam(cfg);
  for (int i = 0; i < 10; ++i) {
    a.grad = Tensor::from({100.0F});
    b.grad = Tensor::from({0.01F});
    adam.step({&a, &b}, 0);
  }
  EXPECT_NEAR(a.value.at(0) / b.value.at(0), 1.0F, 0.2F);
}

TEST(Adam, DecoupledWeightDecayRespectsFlag) {
  Param decayed("w", Tensor::from({1.0F}), /*apply_decay=*/true);
  Param exempt("b", Tensor::from({1.0F}), /*apply_decay=*/false);
  decayed.grad.fill(0.0F);
  exempt.grad.fill(0.0F);
  AdamConfig cfg;
  cfg.lr = 1.0F;
  cfg.weight_decay = 0.1F;
  Adam adam(cfg);
  adam.step({&decayed, &exempt}, 0);
  EXPECT_LT(decayed.value.at(0), 1.0F);
  EXPECT_FLOAT_EQ(exempt.value.at(0), 1.0F);
}

TEST(Adam, ResetStateClearsMoments) {
  Param p("w", Tensor::from({0.0F}));
  AdamConfig cfg;
  cfg.lr = 0.1F;
  Adam adam(cfg);
  p.grad = Tensor::from({1.0F});
  adam.step({&p}, 0);
  adam.reset_state();
  p.grad = Tensor::from({0.0F});
  const float before = p.value.at(0);
  adam.step({&p}, 0);  // no gradient, no momentum → no motion
  EXPECT_FLOAT_EQ(p.value.at(0), before);
}

}  // namespace
}  // namespace tinyadc::nn
