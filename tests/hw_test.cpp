// Hardware cost models: ADC scaling law, tile calibration (the paper's
// 51 %-area / 31 %-power ADC share at 8 bits), accelerator monotonicity
// (P6), and the Table III throughput derivation.
#include <gtest/gtest.h>

#include "core/projection.hpp"
#include "hw/throughput.hpp"
#include "nn/models.hpp"
#include "tensor/ops.hpp"

namespace tinyadc::hw {
namespace {

TEST(AdcCost, AnchorPointReproduced) {
  AdcCostModel adc;
  EXPECT_NEAR(adc.power_w(7), 5e-3, 1e-9);
  EXPECT_NEAR(adc.area_mm2(7), 4e-3, 1e-9);
}

TEST(AdcCost, StrictlyIncreasingInBits) {
  AdcCostModel adc;
  for (int b = 2; b <= 12; ++b) {
    EXPECT_GT(adc.power_w(b), adc.power_w(b - 1));
    EXPECT_GT(adc.area_mm2(b), adc.area_mm2(b - 1));
  }
}

TEST(AdcCost, ExponentialDominanceAtHighResolution) {
  // Adding a bit at high resolution costs more than adding one at low
  // resolution — the "almost exponential" growth the paper cites.
  AdcCostModel adc;
  const double low_step = adc.power_w(4) - adc.power_w(3);
  const double high_step = adc.power_w(12) - adc.power_w(11);
  EXPECT_GT(high_step, 10.0 * low_step);
}

TEST(AdcCost, PowerScalesLinearlyWithRate) {
  AdcCostModel adc;
  EXPECT_NEAR(adc.power_w(8, 1.2e9), adc.power_w(8, 2.4e9) / 2.0, 1e-12);
}

TEST(AdcCost, ZeroBitsCostsNothing) {
  AdcCostModel adc;
  EXPECT_DOUBLE_EQ(adc.power_w(0), 0.0);
  EXPECT_DOUBLE_EQ(adc.area_mm2(0), 0.0);
}

TEST(AdcCost, EightBitCheaperAtLowerRateThanAnchor) {
  AdcCostModel adc;
  // ISAAC runs its ADC at 1.28 GS/s, about half the anchor rate.
  EXPECT_LT(adc.power_w(8, 1.28e9), adc.power_w(8, 2.4e9));
}

TEST(TileCost, CalibrationMatchesIsaacProportions) {
  // The paper quotes >51 % of tile area and 31 % of power in ADCs for
  // ISAAC-style tiles with 8-bit ADCs; our constants must land near that.
  const CostConstants k;
  const TileCost t = tile_cost(k, 8);
  const double area_frac = t.adc_area_mm2 / t.area_mm2;
  const double power_frac = t.adc_power_w / t.power_w;
  EXPECT_NEAR(area_frac, 0.51, 0.08);
  EXPECT_NEAR(power_frac, 0.31, 0.06);
}

TEST(TileCost, MonotonicInAdcBits) {
  const CostConstants k;
  for (int b = 2; b <= 10; ++b) {
    EXPECT_GT(tile_cost(k, b).area_mm2, tile_cost(k, b - 1).area_mm2);
    EXPECT_GT(tile_cost(k, b).power_w, tile_cost(k, b - 1).power_w);
  }
}

TEST(TileCost, DatapathFloorBelowFourBits) {
  // Non-ADC datapath stops shrinking below the 4-bit floor.
  const CostConstants k;
  const TileCost t3 = tile_cost(k, 3);
  const TileCost t4 = tile_cost(k, 4);
  EXPECT_DOUBLE_EQ(t3.area_mm2 - t3.adc_area_mm2,
                   t4.area_mm2 - t4.adc_area_mm2);
}

xbar::MappedNetwork tiny_mapped_network(std::int64_t cp_keep) {
  nn::ModelConfig mc;
  mc.num_classes = 4;
  mc.image_size = 8;
  mc.width_mult = 0.0625F;
  auto model = nn::resnet18(mc);  // MappedNetwork owns its data; safe to drop
  if (cp_keep > 0) {
    auto views = model->prunable_views();
    for (std::size_t i = 1; i < views.size(); ++i) {
      core::MatrixRef ref{views[i].weight->value.data(), views[i].rows,
                          views[i].cols};
      core::project_column_proportional(ref, {4, 4}, cp_keep);
    }
  }
  xbar::MappingConfig cfg;
  cfg.dims = {4, 4};
  return xbar::map_model(*model, cfg);
}

TEST(Accelerator, PrunedDesignIsSmallerAndCooler) {
  const CostConstants k;
  const auto dense = build_accelerator(tiny_mapped_network(0), k);
  const auto pruned = build_accelerator(tiny_mapped_network(1), k);
  EXPECT_LT(pruned.area_mm2, dense.area_mm2);
  EXPECT_LT(pruned.power_w, dense.power_w);
  EXPECT_LT(pruned.area_vs(dense), 1.0);
  EXPECT_LT(pruned.power_vs(dense), 1.0);
}

TEST(Accelerator, MoreAggressiveCpSavesMore) {
  const CostConstants k;
  const auto dense = build_accelerator(tiny_mapped_network(0), k);
  const auto mild = build_accelerator(tiny_mapped_network(2), k);
  const auto aggressive = build_accelerator(tiny_mapped_network(1), k);
  EXPECT_LT(aggressive.power_vs(dense), mild.power_vs(dense));
  EXPECT_LT(aggressive.area_vs(dense), mild.area_vs(dense));
}

TEST(Accelerator, FirstLayerKeepsDenseAdc) {
  const CostConstants k;
  const auto report = build_accelerator(tiny_mapped_network(1), k);
  xbar::MappingConfig cfg;
  cfg.dims = {4, 4};
  const int dense_bits = xbar::design_adc_bits(cfg, 4);
  EXPECT_EQ(report.layers.front().adc_bits, dense_bits);
  // Later layers run reduced ADCs.
  EXPECT_LT(report.layers[2].adc_bits, dense_bits);
}

TEST(Accelerator, TableRendersLayerRows) {
  const CostConstants k;
  const auto report = build_accelerator(tiny_mapped_network(1), k);
  const std::string table = to_table(report);
  EXPECT_NE(table.find("stem.conv"), std::string::npos);
  EXPECT_NE(table.find("total:"), std::string::npos);
}

TEST(Throughput, ReferenceRowsMatchTable3) {
  const auto rows = reference_rows();
  ASSERT_EQ(rows.size(), 4U);
  EXPECT_EQ(rows[0].architecture, "DaDianNao");
  EXPECT_DOUBLE_EQ(rows[0].gops_per_s_mm2, 63.46);
  EXPECT_DOUBLE_EQ(rows[3].gops_per_w, 627.5);
}

TEST(Throughput, TinyAdcImprovesBothMetrics) {
  const CostConstants k;
  const auto row = tinyadc_row(k, 8, 7);
  const auto isaac = reference_rows().back();
  EXPECT_GT(row.gops_per_s_mm2, isaac.gops_per_s_mm2);
  EXPECT_GT(row.gops_per_w, isaac.gops_per_w);
}

TEST(Throughput, FewerBitsMeanMoreThroughputDensity) {
  const CostConstants k;
  const auto r7 = tinyadc_row(k, 8, 7);
  const auto r6 = tinyadc_row(k, 8, 6);
  EXPECT_GT(r6.gops_per_s_mm2, r7.gops_per_s_mm2);
  EXPECT_GT(r6.gops_per_w, r7.gops_per_w);
}

TEST(Throughput, IsoPowerModeBoostsDensityFurther) {
  const CostConstants k;
  const auto iso_rate = tinyadc_row(k, 8, 6, AdcReinvestment::kIsoRate);
  const auto iso_power = tinyadc_row(k, 8, 6, AdcReinvestment::kIsoPower);
  EXPECT_GT(iso_power.gops_per_s_mm2, iso_rate.gops_per_s_mm2);
}

TEST(Throughput, TableIncludesDerivedRow) {
  const CostConstants k;
  auto rows = reference_rows();
  rows.push_back(tinyadc_row(k, 8, 7));
  const std::string table = to_table(rows);
  EXPECT_NE(table.find("TinyADC(ISAAC)"), std::string::npos);
  EXPECT_NE(table.find("(derived)"), std::string::npos);
}

TEST(Throughput, InvalidBitRangeRejected) {
  const CostConstants k;
  EXPECT_THROW(tinyadc_row(k, 8, 0), tinyadc::CheckError);
  EXPECT_THROW(tinyadc_row(k, 8, 9), tinyadc::CheckError);
}

}  // namespace
}  // namespace tinyadc::hw
