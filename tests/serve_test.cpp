// Concurrent serving engine: correctness vs the sequential evaluate path,
// deterministic-mode byte-identity across worker counts, deadline-flush
// behaviour, shutdown with in-flight requests, queue bounds, and a small
// concurrent soak (run under TSan in CI at TINYADC_THREADS=4).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "serve/loadgen.hpp"
#include "xbar/mapping.hpp"

namespace tinyadc::serve {
namespace {

/// Tiny untrained network + synthetic data: serving correctness and
/// determinism do not depend on trained weights, so no training is run.
struct Fixture {
  std::unique_ptr<nn::Model> model;
  data::DatasetPair data;
  xbar::MappedNetwork net;
  std::unique_ptr<msim::AnalogNetwork> analog;

  Fixture() {
    nn::ModelConfig mc;
    mc.num_classes = 4;
    mc.image_size = 8;
    mc.width_mult = 0.0625F;
    model = nn::resnet18(mc);

    data::SyntheticSpec spec;
    spec.num_classes = 4;
    spec.image_size = 8;
    spec.train_per_class = 8;
    spec.test_per_class = 6;
    spec.seed = 91;
    data = data::make_synthetic(spec);

    xbar::MappingConfig cfg;
    cfg.dims = {16, 16};
    net = xbar::map_model(*model, cfg);
    analog = std::make_unique<msim::AnalogNetwork>(*model, net,
                                                   msim::MsimConfig{});
    analog->calibrate(data.train, 8);
  }

  /// Copies test example `i` into a standalone (C, H, W) tensor.
  Tensor image(std::int64_t i) const {
    const Tensor& all = data.test.images;
    const std::int64_t chw = all.numel() / all.dim(0);
    Tensor img({all.dim(1), all.dim(2), all.dim(3)});
    std::memcpy(img.data(), all.data() + i * chw,
                static_cast<std::size_t>(chw) * sizeof(float));
    return img;
  }
};

/// The fixture is expensive enough to share across tests (read-only after
/// construction; sims only accumulate commutative counters).
Fixture& fixture() {
  static Fixture f;
  return f;
}

/// Serves the first `n` test images through a fresh engine and returns
/// the per-request results ordered by seq.
std::vector<InferenceResult> serve_stream(InferenceEngine& engine,
                                          std::int64_t n) {
  const Fixture& f = fixture();
  std::vector<std::future<InferenceResult>> futures;
  futures.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i)
    futures.push_back(engine.submit(f.image(i % f.data.test.size())));
  engine.wait_idle();
  std::vector<InferenceResult> results;
  results.reserve(futures.size());
  for (auto& fut : futures) results.push_back(fut.get());
  return results;
}

std::uint64_t digest_results(const std::vector<InferenceResult>& results) {
  std::uint64_t h = fnv1a(nullptr, 0);
  for (const auto& r : results) {
    h = fnv1a(r.logits.data(), r.logits.size() * sizeof(float), h);
    h = fnv1a(&r.label, sizeof(r.label), h);
  }
  return h;
}

TEST(Histogram, PercentilesAreOrderedAndBounded) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000U);
  EXPECT_NEAR(h.mean_us(), 500.5, 1e-9);
  EXPECT_DOUBLE_EQ(h.max_us(), 1000.0);
  const double p50 = h.percentile(50.0);
  const double p95 = h.percentile(95.0);
  const double p99 = h.percentile(99.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max_us());
  // Log-linear buckets: ~±2 % relative resolution around the true rank.
  EXPECT_NEAR(p50, 500.0, 500.0 * 0.06);
  EXPECT_NEAR(p99, 990.0, 990.0 * 0.06);
  LatencyHistogram other;
  other.record(2000.0);
  h.merge(other);
  EXPECT_EQ(h.count(), 1001U);
  EXPECT_DOUBLE_EQ(h.max_us(), 2000.0);
}

TEST(Serve, MatchesSequentialForwardAndEvaluate) {
  Fixture& f = fixture();
  const std::int64_t n = f.data.test.size();
  ServeConfig cfg;
  cfg.workers = 2;
  cfg.max_batch = 4;
  std::vector<InferenceResult> results;
  {
    InferenceEngine engine(*f.analog, cfg);
    results = serve_stream(engine, n);
    const ServeStats stats = engine.stats();
    EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(n));
    EXPECT_GT(stats.batches, 0U);
    EXPECT_GT(stats.adc_conversions, 0);
    EXPECT_GT(stats.dac_cycles, 0);
    EXPECT_GT(stats.qps, 0.0);
  }
  // Every served request must equal the sequential forward of the same
  // image through the compiled network (same shared sims, same plans).
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const Tensor img = f.image(i);
    Tensor batch({1, img.dim(0), img.dim(1), img.dim(2)});
    std::memcpy(batch.data(), img.data(),
                static_cast<std::size_t>(img.numel()) * sizeof(float));
    const Tensor logits = f.analog->forward(batch);
    const auto& r = results[static_cast<std::size_t>(i)];
    ASSERT_EQ(r.logits.size(), static_cast<std::size_t>(logits.numel()));
    EXPECT_EQ(std::memcmp(r.logits.data(), logits.data(),
                          r.logits.size() * sizeof(float)),
              0)
        << "image " << i;
    if (r.label == f.data.test.labels[static_cast<std::size_t>(i)]) ++correct;
  }
  const double engine_accuracy =
      static_cast<double>(correct) / static_cast<double>(n);
  EXPECT_DOUBLE_EQ(engine_accuracy, f.analog->evaluate(f.data.test, 16));
}

TEST(Serve, DeterministicModeByteIdenticalAcrossWorkerCounts) {
  Fixture& f = fixture();
  constexpr std::int64_t kRequests = 20;
  std::uint64_t digests[2] = {0, 0};
  ServeStats stats[2];
  const int worker_counts[2] = {1, 4};
  for (int run = 0; run < 2; ++run) {
    ServeConfig cfg;
    cfg.workers = worker_counts[run];
    cfg.max_batch = 8;
    cfg.deterministic = true;
    InferenceEngine engine(*f.analog, cfg);
    const auto results = serve_stream(engine, kRequests);
    digests[run] = digest_results(results);
    stats[run] = engine.stats();
    // Batch composition is pinned: two full batches of 8 plus the drained
    // partial of 4, regardless of worker count.
    ASSERT_LT(8U, stats[run].batch_hist.size());
    EXPECT_EQ(stats[run].batch_hist[8], 2U);
    EXPECT_EQ(stats[run].batch_hist[4], 1U);
    for (std::size_t i = 0; i < results.size(); ++i)
      EXPECT_EQ(results[i].seq, i);
  }
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(stats[0].adc_conversions, stats[1].adc_conversions);
  EXPECT_EQ(stats[0].adc_clip_events, stats[1].adc_clip_events);
  EXPECT_EQ(stats[0].dac_cycles, stats[1].dac_cycles);
  EXPECT_EQ(stats[0].requests, stats[1].requests);
}

TEST(Serve, DeadlineFlushesPartialBatch) {
  Fixture& f = fixture();
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 64;  // never fills from 3 requests
  cfg.max_wait_us = 50000;  // generous: single-core CI boxes jitter
  InferenceEngine engine(*f.analog, cfg);
  std::vector<std::future<InferenceResult>> futures;
  for (std::int64_t i = 0; i < 3; ++i)
    futures.push_back(engine.submit(f.image(i)));
  // No drain, no shutdown: the deadline alone must flush the partial
  // batch of 3.
  for (auto& fut : futures) {
    const InferenceResult r = fut.get();
    EXPECT_EQ(r.batch_size, 3U);
  }
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.requests, 3U);
  EXPECT_EQ(stats.batches, 1U);
  ASSERT_LT(3U, stats.batch_hist.size());
  EXPECT_EQ(stats.batch_hist[3], 1U);
}

TEST(Serve, ShutdownServesInflightRequests) {
  Fixture& f = fixture();
  ServeConfig cfg;
  cfg.workers = 2;
  cfg.max_batch = 4;
  cfg.deterministic = true;  // nothing flushes until shutdown drains
  InferenceEngine engine(*f.analog, cfg);
  std::vector<std::future<InferenceResult>> futures;
  for (std::int64_t i = 0; i < 18; ++i)
    futures.push_back(engine.submit(f.image(i % f.data.test.size())));
  engine.shutdown();  // in-flight requests are never dropped
  for (auto& fut : futures) EXPECT_NO_THROW((void)fut.get());
  EXPECT_EQ(engine.stats().requests, 18U);
  EXPECT_THROW((void)engine.submit(f.image(0)), CheckError);
}

TEST(Serve, QueueBoundRejectsExcessSubmits) {
  Fixture& f = fixture();
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 8;
  cfg.deterministic = true;  // worker holds until a full batch: queue fills
  cfg.max_queue = 4;
  InferenceEngine engine(*f.analog, cfg);
  std::vector<std::future<InferenceResult>> futures;
  for (std::int64_t i = 0; i < 6; ++i)
    futures.push_back(engine.submit(f.image(0)));
  // The 5th and 6th submits overflowed the bound of 4.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(futures[i].valid());
  EXPECT_THROW((void)futures[4].get(), std::runtime_error);
  EXPECT_THROW((void)futures[5].get(), std::runtime_error);
  engine.wait_idle();
  for (int i = 0; i < 4; ++i) EXPECT_NO_THROW((void)futures[i].get());
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.rejected, 2U);
  EXPECT_EQ(stats.requests, 4U);
}

TEST(Serve, LoadgenReportsPercentilesAndAccuracy) {
  Fixture& f = fixture();
  ServeConfig cfg;
  cfg.workers = 2;
  cfg.max_batch = 4;
  InferenceEngine engine(*f.analog, cfg);
  LoadgenConfig lc;
  lc.requests = 30;
  lc.target_qps = 0.0;
  const LoadgenReport report = run_loadgen(engine, f.data.test, lc);
  EXPECT_EQ(report.stats.requests, 30U);
  EXPECT_GT(report.achieved_qps, 0.0);
  EXPECT_LE(report.stats.p50_us, report.stats.p99_us);
  EXPECT_GT(report.stats.p99_us, 0.0);
  EXPECT_GE(report.accuracy, 0.0);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"p50_us\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_us\""), std::string::npos);
  EXPECT_NE(json.find("\"qps\""), std::string::npos);
  EXPECT_NE(json.find("\"accuracy\""), std::string::npos);
}

/// Small soak: concurrent submitters + a stats poller against 4 workers.
/// Run under TSan in CI (TINYADC_THREADS=4) to shake out data races
/// between the queue, the batcher, the shared sims and the stats path.
TEST(Serve, SoakConcurrentSubmittersAndStats) {
  Fixture& f = fixture();
  ServeConfig cfg;
  cfg.workers = 4;
  cfg.max_batch = 4;
  cfg.max_wait_us = 100;
  InferenceEngine engine(*f.analog, cfg);
  constexpr int kSubmitters = 3;
  constexpr int kPerSubmitter = 24;
  std::atomic<int> completed{0};
  std::atomic<bool> polling{true};
  std::thread poller([&] {
    while (polling.load()) {
      const ServeStats s = engine.stats();
      ASSERT_LE(s.requests,
                static_cast<std::uint64_t>(kSubmitters * kPerSubmitter));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t)
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        auto fut = engine.submit(
            f.image((t * kPerSubmitter + i) % f.data.test.size()));
        const InferenceResult r = fut.get();  // closed loop per submitter
        ASSERT_EQ(r.logits.size(), 4U);
        completed.fetch_add(1);
      }
    });
  for (auto& t : submitters) t.join();
  polling.store(false);
  poller.join();
  engine.wait_idle();
  EXPECT_EQ(completed.load(), kSubmitters * kPerSubmitter);
  EXPECT_EQ(engine.stats().requests,
            static_cast<std::uint64_t>(kSubmitters * kPerSubmitter));
}

}  // namespace
}  // namespace tinyadc::serve
