#include "xbar/mapping.hpp"

#include <algorithm>

#include "artifact/format.hpp"
#include "tensor/ops.hpp"

namespace tinyadc::xbar {

namespace {

// v1: block codes as plain vec(); v2 (this writer): block codes as
// vec_aligned() so a mapped load views them in place. Both load.
constexpr std::uint32_t kMappingSectionVersion = 2;
constexpr std::uint32_t kMinMappingSectionVersion = 1;

void serialize_config(const MappingConfig& cfg, artifact::SectionWriter& w) {
  w.pod(cfg.dims.rows);
  w.pod(cfg.dims.cols);
  w.pod(static_cast<std::int32_t>(cfg.weight_bits));
  w.pod(static_cast<std::int32_t>(cfg.cell_bits));
  w.pod(static_cast<std::int32_t>(cfg.input_bits));
  w.pod(static_cast<std::int32_t>(cfg.dac_bits));
  w.pod(static_cast<std::uint8_t>(cfg.isaac_encoding ? 1 : 0));
}

MappingConfig deserialize_config(artifact::SectionReader& r) {
  MappingConfig cfg;
  cfg.dims.rows = r.pod<std::int64_t>();
  cfg.dims.cols = r.pod<std::int64_t>();
  cfg.weight_bits = r.pod<std::int32_t>();
  cfg.cell_bits = r.pod<std::int32_t>();
  cfg.input_bits = r.pod<std::int32_t>();
  cfg.dac_bits = r.pod<std::int32_t>();
  cfg.isaac_encoding = r.pod<std::uint8_t>() != 0;
  TINYADC_CHECK(cfg.dims.rows > 0 && cfg.dims.cols > 0 &&
                    cfg.dims.rows <= (1 << 20) && cfg.dims.cols <= (1 << 20),
                "implausible crossbar dims " << cfg.dims.rows << "x"
                                             << cfg.dims.cols);
  TINYADC_CHECK(cfg.weight_bits >= 2 && cfg.weight_bits <= 16 &&
                    cfg.cell_bits >= 1 && cfg.cell_bits <= 8 &&
                    cfg.input_bits >= 1 && cfg.input_bits <= 16 &&
                    cfg.dac_bits >= 1 && cfg.dac_bits <= cfg.input_bits,
                "implausible mapping precision configuration");
  return cfg;
}

/// Strictly-ascending kept-index map confined to [0, extent).
void check_kept(const std::vector<std::int64_t>& kept, std::int64_t extent,
                const std::string& layer, const char* what) {
  for (std::size_t i = 0; i < kept.size(); ++i)
    TINYADC_CHECK(kept[i] >= 0 && kept[i] < extent &&
                      (i == 0 || kept[i - 1] < kept[i]),
                  "layer " << layer << ": corrupt kept_" << what
                           << " index map");
}

void serialize_layer(const MappedLayer& layer, artifact::SectionWriter& w) {
  w.str(layer.name);
  w.pod(layer.rows);
  w.pod(layer.cols);
  w.pod(static_cast<std::int32_t>(layer.quant.bits));
  w.pod(layer.quant.scale);
  w.vec(layer.kept_rows);
  w.vec(layer.kept_cols);
  w.pod(layer.block_grid_rows);
  w.pod(layer.block_grid_cols);
  w.pod(static_cast<std::uint64_t>(layer.blocks.size()));
  for (const auto& b : layer.blocks) {
    w.pod(b.row0);
    w.pod(b.col0);
    w.pod(b.rows);
    w.pod(b.cols);
    w.vec_aligned(b.q);
    w.vec(b.col_nonzeros);
    w.pod(b.max_col_nonzeros);
  }
}

MappedLayer deserialize_layer(artifact::SectionReader& r,
                              const MappingConfig& config,
                              std::uint32_t version) {
  MappedLayer layer;
  layer.config = config;
  layer.name = r.str();
  layer.rows = r.pod<std::int64_t>();
  layer.cols = r.pod<std::int64_t>();
  TINYADC_CHECK(layer.rows >= 0 && layer.cols >= 0,
                "layer " << layer.name << ": negative matrix extent");
  layer.quant.bits = r.pod<std::int32_t>();
  layer.quant.scale = r.pod<float>();
  TINYADC_CHECK(layer.quant.bits == config.weight_bits,
                "layer " << layer.name << ": quantizer bits "
                         << layer.quant.bits << " != mapping weight bits "
                         << config.weight_bits);
  layer.kept_rows = r.vec<std::int64_t>();
  layer.kept_cols = r.vec<std::int64_t>();
  check_kept(layer.kept_rows, layer.rows, layer.name, "rows");
  check_kept(layer.kept_cols, layer.cols, layer.name, "cols");
  const auto compact_rows = static_cast<std::int64_t>(layer.kept_rows.size());
  const auto compact_cols = static_cast<std::int64_t>(layer.kept_cols.size());
  layer.block_grid_rows = r.pod<std::int64_t>();
  layer.block_grid_cols = r.pod<std::int64_t>();
  TINYADC_CHECK(layer.block_grid_rows ==
                        (compact_rows + config.dims.rows - 1) /
                            config.dims.rows &&
                    layer.block_grid_cols ==
                        (compact_cols + config.dims.cols - 1) /
                            config.dims.cols,
                "layer " << layer.name
                         << ": block grid disagrees with the reform geometry");
  const auto nblocks = r.pod<std::uint64_t>();
  TINYADC_CHECK(nblocks == static_cast<std::uint64_t>(layer.block_grid_rows *
                                                      layer.block_grid_cols),
                "layer " << layer.name << ": block count " << nblocks
                         << " != grid "
                         << layer.block_grid_rows * layer.block_grid_cols);
  const std::int32_t max_code = (1 << (config.weight_bits - 1)) - 1;
  layer.blocks.reserve(static_cast<std::size_t>(nblocks));
  for (std::uint64_t i = 0; i < nblocks; ++i) {
    const std::int64_t br = static_cast<std::int64_t>(i) /
                            layer.block_grid_cols;
    const std::int64_t bc = static_cast<std::int64_t>(i) %
                            layer.block_grid_cols;
    CrossbarBlock b;
    b.row0 = r.pod<std::int64_t>();
    b.col0 = r.pod<std::int64_t>();
    b.rows = r.pod<std::int64_t>();
    b.cols = r.pod<std::int64_t>();
    TINYADC_CHECK(b.row0 == br * config.dims.rows &&
                      b.col0 == bc * config.dims.cols &&
                      b.rows == std::min(config.dims.rows,
                                         compact_rows - b.row0) &&
                      b.cols == std::min(config.dims.cols,
                                         compact_cols - b.col0),
                  "layer " << layer.name << ": block " << i
                           << " geometry disagrees with the grid");
    b.q = version >= 2 ? r.arr_aligned<std::int32_t>("block codes")
                       : artifact::ArrayRef<std::int32_t>(
                             r.vec<std::int32_t>());
    TINYADC_CHECK(b.q.size() == static_cast<std::size_t>(b.rows * b.cols),
                  "layer " << layer.name << ": block " << i << " holds "
                           << b.q.size() << " codes, expected "
                           << b.rows * b.cols);
    for (const auto q : b.q)
      TINYADC_CHECK(q >= -max_code && q <= max_code,
                    "layer " << layer.name << ": code " << q << " exceeds "
                             << config.weight_bits << "-bit signed range");
    b.col_nonzeros = r.vec<std::int64_t>();
    b.max_col_nonzeros = r.pod<std::int64_t>();
    // Re-derive the census rather than trusting stored values: the plan
    // compiler and Eq. 1 ADC sizing both consume it.
    TINYADC_CHECK(b.col_nonzeros.size() == static_cast<std::size_t>(b.cols),
                  "layer " << layer.name << ": block " << i
                           << " census length mismatch");
    std::int64_t worst = 0;
    for (std::int64_t c = 0; c < b.cols; ++c) {
      std::int64_t nz = 0;
      for (std::int64_t row = 0; row < b.rows; ++row)
        nz += (b.at(row, c) != 0);
      TINYADC_CHECK(b.col_nonzeros[static_cast<std::size_t>(c)] == nz,
                    "layer " << layer.name << ": block " << i
                             << " stored census disagrees with the codes");
      worst = std::max(worst, nz);
    }
    TINYADC_CHECK(b.max_col_nonzeros == worst,
                  "layer " << layer.name << ": block " << i
                           << " stored worst occupancy disagrees");
    layer.blocks.push_back(std::move(b));
  }
  return layer;
}

}  // namespace

void serialize(const MappedNetwork& net, artifact::SectionWriter& w) {
  w.pod(kMappingSectionVersion);
  serialize_config(net.config, w);
  w.pod(static_cast<std::uint64_t>(net.layers.size()));
  for (const auto& layer : net.layers) serialize_layer(layer, w);
}

MappedNetwork deserialize_mapped_network(artifact::SectionReader& r) {
  const auto version = r.pod<std::uint32_t>();
  TINYADC_CHECK(version >= kMinMappingSectionVersion &&
                    version <= kMappingSectionVersion,
                "unsupported mapping section version " << version);
  MappedNetwork net;
  net.config = deserialize_config(r);
  const auto count = r.pod<std::uint64_t>();
  TINYADC_CHECK(count <= (1ULL << 16),
                "implausible mapped-layer count " << count);
  net.layers.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i)
    net.layers.push_back(deserialize_layer(r, net.config, version));
  return net;
}

bool CrossbarBlock::all_zero() const {
  return std::all_of(q.begin(), q.end(),
                     [](std::int32_t v) { return v == 0; });
}

std::int64_t MappedLayer::active_blocks() const {
  std::int64_t n = 0;
  for (const auto& b : blocks) n += !b.all_zero();
  return n;
}

std::int64_t MappedLayer::max_active_rows() const {
  std::int64_t worst = 0;
  for (const auto& b : blocks)
    worst = std::max(worst, b.max_col_nonzeros);
  return worst;
}

std::int64_t MappedLayer::census_nonzeros() const {
  std::int64_t total = 0;
  for (const auto& b : blocks)
    for (const auto n : b.col_nonzeros) total += n;
  return total;
}

int MappedLayer::required_adc_bits() const {
  return xbar::required_adc_bits(config.dac_bits, config.cell_bits,
                                 max_active_rows());
}

int MappedLayer::design_adc_bits() const {
  return xbar::design_adc_bits(config, max_active_rows());
}

int design_adc_bits(const MappingConfig& config, std::int64_t active_rows) {
  const int bits =
      required_adc_bits(config.dac_bits, config.cell_bits, active_rows);
  if (config.isaac_encoding && bits > 1) return bits - 1;
  return bits;
}

std::int64_t MappedLayer::dense_blocks() const {
  const std::int64_t grid_rows =
      (rows + config.dims.rows - 1) / config.dims.rows;
  const std::int64_t grid_cols =
      (cols + config.dims.cols - 1) / config.dims.cols;
  return grid_rows * grid_cols;
}

Tensor MappedLayer::demap() const {
  Tensor m({rows, cols});
  float* p = m.data();
  for (const auto& b : blocks) {
    for (std::int64_t r = 0; r < b.rows; ++r)
      for (std::int64_t c = 0; c < b.cols; ++c) {
        const std::int64_t orig_r =
            kept_rows[static_cast<std::size_t>(b.row0 + r)];
        const std::int64_t orig_c =
            kept_cols[static_cast<std::size_t>(b.col0 + c)];
        p[orig_r * cols + orig_c] = dequantize(b.at(r, c), quant);
      }
  }
  return m;
}

StructuralRemoval infer_removal(const Tensor& matrix, std::int64_t remove_rows,
                                std::int64_t remove_cols) {
  TINYADC_CHECK(matrix.ndim() == 2, "infer_removal expects a 2-D matrix");
  const std::int64_t rows = matrix.dim(0);
  const std::int64_t cols = matrix.dim(1);
  const float* m = matrix.data();
  StructuralRemoval removal;
  for (std::int64_t r = 0;
       r < rows && static_cast<std::int64_t>(removal.rows.size()) <
                       remove_rows;
       ++r) {
    bool all_zero = true;
    for (std::int64_t c = 0; c < cols && all_zero; ++c)
      all_zero = (m[r * cols + c] == 0.0F);
    if (all_zero) removal.rows.push_back(r);
  }
  for (std::int64_t c = 0;
       c < cols && static_cast<std::int64_t>(removal.cols.size()) <
                       remove_cols;
       ++c) {
    bool all_zero = true;
    for (std::int64_t r = 0; r < rows && all_zero; ++r)
      all_zero = (m[r * cols + c] == 0.0F);
    if (all_zero) removal.cols.push_back(c);
  }
  return removal;
}

MappedLayer map_matrix(const Tensor& matrix, const std::string& name,
                       const MappingConfig& config,
                       const StructuralRemoval& removal) {
  TINYADC_CHECK(matrix.ndim() == 2, "map_matrix expects a 2-D matrix");
  TINYADC_CHECK(config.dims.rows > 0 && config.dims.cols > 0,
                "invalid crossbar dims");
  MappedLayer layer;
  layer.name = name;
  layer.rows = matrix.dim(0);
  layer.cols = matrix.dim(1);
  layer.config = config;
  layer.quant = fit_signed(max_abs(matrix), config.weight_bits);

  // Reform: compact away exactly the structurally-pruned rows/columns.
  const float* m = matrix.data();
  {
    TINYADC_CHECK(std::is_sorted(removal.rows.begin(), removal.rows.end()) &&
                      std::is_sorted(removal.cols.begin(), removal.cols.end()),
                  "removal lists must be sorted");
    std::size_t cursor = 0;
    for (std::int64_t r = 0; r < layer.rows; ++r) {
      if (cursor < removal.rows.size() && removal.rows[cursor] == r) {
        for (std::int64_t c = 0; c < layer.cols; ++c)
          TINYADC_CHECK(m[r * layer.cols + c] == 0.0F,
                        "removed row " << r << " still holds live weights");
        ++cursor;
        continue;
      }
      layer.kept_rows.push_back(r);
    }
    cursor = 0;
    for (std::int64_t c = 0; c < layer.cols; ++c) {
      if (cursor < removal.cols.size() && removal.cols[cursor] == c) {
        for (std::int64_t r = 0; r < layer.rows; ++r)
          TINYADC_CHECK(m[r * layer.cols + c] == 0.0F,
                        "removed column " << c << " still holds live weights");
        ++cursor;
        continue;
      }
      layer.kept_cols.push_back(c);
    }
  }
  const auto compact_rows = static_cast<std::int64_t>(layer.kept_rows.size());
  const auto compact_cols = static_cast<std::int64_t>(layer.kept_cols.size());
  layer.block_grid_rows =
      (compact_rows + config.dims.rows - 1) / config.dims.rows;
  layer.block_grid_cols =
      (compact_cols + config.dims.cols - 1) / config.dims.cols;

  for (std::int64_t br = 0; br < layer.block_grid_rows; ++br) {
    for (std::int64_t bc = 0; bc < layer.block_grid_cols; ++bc) {
      CrossbarBlock block;
      block.row0 = br * config.dims.rows;
      block.col0 = bc * config.dims.cols;
      block.rows = std::min(config.dims.rows, compact_rows - block.row0);
      block.cols = std::min(config.dims.cols, compact_cols - block.col0);
      std::vector<std::int32_t> codes(
          static_cast<std::size_t>(block.rows * block.cols));
      for (std::int64_t r = 0; r < block.rows; ++r) {
        const std::int64_t orig_r =
            layer.kept_rows[static_cast<std::size_t>(block.row0 + r)];
        for (std::int64_t c = 0; c < block.cols; ++c) {
          const std::int64_t orig_c =
              layer.kept_cols[static_cast<std::size_t>(block.col0 + c)];
          codes[static_cast<std::size_t>(r * block.cols + c)] =
              quantize_signed(m[orig_r * layer.cols + orig_c], layer.quant);
        }
      }
      block.q = std::move(codes);
      block.col_nonzeros.assign(static_cast<std::size_t>(block.cols), 0);
      for (std::int64_t c = 0; c < block.cols; ++c) {
        std::int64_t nz = 0;
        for (std::int64_t r = 0; r < block.rows; ++r)
          nz += (block.at(r, c) != 0);
        block.col_nonzeros[static_cast<std::size_t>(c)] = nz;
        block.max_col_nonzeros = std::max(block.max_col_nonzeros, nz);
      }
      layer.blocks.push_back(std::move(block));
    }
  }
  return layer;
}

std::int64_t MappedNetwork::total_arrays() const {
  std::int64_t n = 0;
  for (const auto& l : layers) n += l.dense_blocks() * l.arrays_per_block();
  return n;
}

std::int64_t MappedNetwork::active_arrays() const {
  std::int64_t n = 0;
  for (const auto& l : layers) n += l.active_arrays();
  return n;
}

double MappedNetwork::crossbar_reduction() const {
  const std::int64_t total = total_arrays();
  if (total == 0) return 0.0;
  return 1.0 - static_cast<double>(active_arrays()) /
                   static_cast<double>(total);
}

int MappedNetwork::worst_adc_bits_after_first() const {
  int worst = 0;
  for (std::size_t i = 1; i < layers.size(); ++i)
    worst = std::max(worst, layers[i].required_adc_bits());
  return worst;
}

int MappedNetwork::worst_design_adc_bits_after_first() const {
  int worst = 0;
  for (std::size_t i = 1; i < layers.size(); ++i)
    worst = std::max(worst, layers[i].design_adc_bits());
  return worst;
}

MappedNetwork map_model(nn::Model& model, const MappingConfig& config) {
  MappedNetwork net;
  net.config = config;
  for (const auto& view : model.prunable_views())
    net.layers.push_back(
        map_matrix(view.to_matrix(), view.layer_name, config));
  return net;
}

MappedNetwork map_model(
    nn::Model& model, const MappingConfig& config,
    const std::vector<core::StructuralSelection>& selections) {
  const auto views = model.prunable_views();
  TINYADC_CHECK(selections.size() == views.size(),
                "selection count " << selections.size()
                                   << " != prunable layer count "
                                   << views.size());
  MappedNetwork net;
  net.config = config;
  for (std::size_t i = 0; i < views.size(); ++i) {
    StructuralRemoval removal;
    removal.rows = selections[i].rows;
    removal.cols = selections[i].cols;
    net.layers.push_back(map_matrix(views[i].to_matrix(),
                                    views[i].layer_name, config, removal));
  }
  return net;
}

MappedNetwork map_model(nn::Model& model, const MappingConfig& config,
                        const std::vector<core::LayerPruneSpec>& specs) {
  const auto views = model.prunable_views();
  TINYADC_CHECK(specs.size() == views.size(),
                "spec count " << specs.size() << " != prunable layer count "
                              << views.size());
  MappedNetwork net;
  net.config = config;
  for (std::size_t i = 0; i < views.size(); ++i) {
    const Tensor m = views[i].to_matrix();
    const auto removal =
        infer_removal(m, specs[i].remove_shapes, specs[i].remove_filters);
    net.layers.push_back(
        map_matrix(m, views[i].layer_name, config, removal));
  }
  return net;
}

std::vector<std::int64_t> reference_mvm(const MappedLayer& layer,
                                        const std::vector<std::int32_t>& x) {
  TINYADC_CHECK(static_cast<std::int64_t>(x.size()) == layer.rows,
                "input length " << x.size() << " != layer rows "
                                << layer.rows);
  std::vector<std::int64_t> y(static_cast<std::size_t>(layer.cols), 0);
  for (const auto& b : layer.blocks)
    for (std::int64_t r = 0; r < b.rows; ++r) {
      const std::int64_t orig_r =
          layer.kept_rows[static_cast<std::size_t>(b.row0 + r)];
      const std::int32_t xv = x[static_cast<std::size_t>(orig_r)];
      if (xv == 0) continue;
      for (std::int64_t c = 0; c < b.cols; ++c) {
        const std::int64_t orig_c =
            layer.kept_cols[static_cast<std::size_t>(b.col0 + c)];
        y[static_cast<std::size_t>(orig_c)] +=
            static_cast<std::int64_t>(b.at(r, c)) * xv;
      }
    }
  return y;
}

}  // namespace tinyadc::xbar
