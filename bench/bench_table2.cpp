// Reproduces Table II: column proportional pruning alone ("TinyADC w/o SP")
// and combined with crossbar-aware structured pruning ("TinyADC"), against
// pruning baselines, on every network/dataset pair.
//
// Two kinds of rows:
//  * published reference rows — the numbers the paper quotes for
//    Ultra-Efficient / TinyButAcc / N2N / SSL / Decorrelation / DCP
//    (printed as context; those systems are not rerun);
//  * measured rows — our pipeline runs: magnitude (non-structured)
//    baseline, structured-only baseline, TinyADC w/o SP, and TinyADC
//    combined. Training uses 16×16 crossbars so crossbar-aware structured
//    rounding is meaningful at bench model widths.
//
// Expected shape (paper): combined pruning reaches the highest overall
// rates at comparable accuracy; non-structured pruning yields no crossbar
// or ADC reduction; structured-only yields crossbar but no ADC-bit
// reduction.
#include <cmath>

#include "bench_util.hpp"

namespace {

using namespace tinyadc;

struct MeasuredRow {
  std::string method;
  double structured_rate = 0.0;  // 0 = none
  std::int64_t cp_rate = 0;      // 0 = none
  double overall_rate = 1.0;
  double final_acc = 0.0;
  double crossbar_reduction = 0.0;
  int adc_bits_delta = 0;
};

void print_row(const char* config, const MeasuredRow& row,
               double original_acc) {
  char structured[16] = "-";
  if (row.structured_rate > 0)
    std::snprintf(structured, sizeof structured, "%.2fx", row.structured_rate);
  char cp[16] = "-";
  if (row.cp_rate > 0)
    std::snprintf(cp, sizeof cp, "%lldx", static_cast<long long>(row.cp_rate));
  char xbar_red[16] = "-";
  if (row.crossbar_reduction != 0.0)
    std::snprintf(xbar_red, sizeof xbar_red, "%.1f%%",
                  -100.0 * row.crossbar_reduction);
  char adc[16] = "-";
  if (row.adc_bits_delta != 0)
    std::snprintf(adc, sizeof adc, "%d bits", row.adc_bits_delta);
  std::printf("%-18s %-16s %8.2f %7s %6s %9.1fx %8.2f %10s %10s\n", config,
              row.method.c_str(), 100.0 * original_acc, structured, cp,
              row.overall_rate, 100.0 * row.final_acc, xbar_red, adc);
  std::fflush(stdout);
}

/// Magnitude (non-structured) pruning baseline: keep the top 1/rate of each
/// enabled layer's weights anywhere, masked-retrain. No crossbar or ADC
/// savings possible — zeros land at arbitrary locations.
MeasuredRow magnitude_baseline(const std::string& net,
                               const data::DatasetPair& data,
                               const std::string& ckpt, double rate) {
  auto model = bench::bench_model(net, data.train.num_classes);
  model->load(ckpt);
  auto views = model->prunable_views();
  // Global top-k per layer (first conv kept dense, like the other methods).
  std::vector<std::vector<float>> masks(views.size());
  for (std::size_t i = 1; i < views.size(); ++i) {
    if (!views[i].is_conv) continue;
    float* w = views[i].weight->value.data();
    const auto n = static_cast<std::size_t>(views[i].rows * views[i].cols);
    const auto keep = static_cast<std::size_t>(
        std::max<double>(1.0, static_cast<double>(n) / rate));
    std::vector<std::pair<float, std::size_t>> mags(n);
    for (std::size_t k = 0; k < n; ++k) mags[k] = {std::fabs(w[k]), k};
    std::nth_element(mags.begin(), mags.begin() + static_cast<std::ptrdiff_t>(keep),
                     mags.end(), [](auto& a, auto& b) { return a.first > b.first; });
    masks[i].assign(n, 0.0F);
    for (std::size_t k = 0; k < keep; ++k) masks[i][mags[k].second] = 1.0F;
    for (std::size_t k = 0; k < n; ++k) w[k] *= masks[i][k];
  }
  // Masked retraining.
  auto cfg = bench::bench_pipeline({16, 16});
  nn::Trainer trainer(*model, cfg.retrain);
  trainer.set_step_hook([&] {
    for (std::size_t i = 0; i < views.size(); ++i) {
      if (masks[i].empty()) continue;
      float* w = views[i].weight->value.data();
      for (std::size_t k = 0; k < masks[i].size(); ++k) w[k] *= masks[i][k];
    }
  });
  trainer.fit(data.train, data.test);

  MeasuredRow row;
  row.method = "magnitude (ours)";
  row.overall_rate = rate;
  row.final_acc = trainer.evaluate(data.test);
  row.crossbar_reduction = 0.0;  // scattered zeros: nothing to drop
  row.adc_bits_delta = 0;        // worst-case column stays dense
  return row;
}

/// One pipeline run with the given structured fraction and CP rate.
MeasuredRow tinyadc_run(const std::string& net, const data::DatasetPair& data,
                        const std::string& ckpt, double structured_rate,
                        std::int64_t cp_rate, const char* label) {
  const core::CrossbarDims dims{16, 16};
  auto model = bench::bench_model(net, data.train.num_classes);
  model->load(ckpt);
  auto cfg = bench::bench_pipeline(dims);
  cfg.pretrain.epochs = 0;
  if (structured_rate > 1.0 && cp_rate > 1) {
    // Combined pruning removes more structure at once; give the masked
    // retraining phase more budget, as the paper's schedule does.
    cfg.retrain.epochs *= 2;
    cfg.retrain.sgd.total_epochs = cfg.retrain.epochs;
  }
  auto specs = core::uniform_cp_specs(
      *model, std::max<std::int64_t>(cp_rate, 1), dims);
  if (structured_rate > 1.0) {
    const double frac = 1.0 - 1.0 / structured_rate;
    core::add_structured(specs, *model, frac, 0.0, dims);
  }
  const auto result =
      core::run_pipeline(*model, data.train, data.test, specs, cfg);
  xbar::MappingConfig map_cfg;
  map_cfg.dims = dims;
  const auto mapped = xbar::map_model(*model, map_cfg, specs);

  MeasuredRow row;
  row.method = label;
  row.structured_rate = structured_rate > 1.0 ? structured_rate : 0.0;
  row.cp_rate = cp_rate > 1 ? cp_rate : 0;
  row.overall_rate = result.report.pruning_rate();
  row.final_acc = result.final_accuracy;
  row.crossbar_reduction = mapped.crossbar_reduction();
  const int dense_bits = xbar::design_adc_bits(map_cfg, dims.rows);
  int worst = 0;
  for (std::size_t i = 1; i < mapped.layers.size(); ++i) {
    if (!specs[i].active()) continue;
    worst = std::max(worst, mapped.layers[i].design_adc_bits());
  }
  row.adc_bits_delta = cp_rate > 1 ? worst - dense_bits : 0;
  return row;
}

void run_config(const char* config, const char* tier, const char* net,
                std::int64_t cp_only_rate, double combined_sp,
                std::int64_t combined_cp, bool with_baselines) {
  const auto data = bench::bench_dataset(tier);
  auto base = bench::bench_model(net, data.train.num_classes);
  double original_acc;
  {
    auto cfg = bench::bench_pipeline({16, 16});
    nn::Trainer trainer(*base, cfg.pretrain);
    trainer.fit(data.train, data.test);
    original_acc = trainer.evaluate(data.test);
  }
  const std::string ckpt =
      std::string("/tmp/tinyadc_t2_") + tier + net + ".bin";
  base->save(ckpt);

  if (with_baselines) {
    print_row(config,
              magnitude_baseline(net, data, ckpt,
                                 static_cast<double>(cp_only_rate)),
              original_acc);
    print_row(config,
              tinyadc_run(net, data, ckpt, combined_sp * 2.0, 1,
                          "structured-only"),
              original_acc);
  }
  print_row(config,
            tinyadc_run(net, data, ckpt, 0.0, cp_only_rate, "TinyADC w/o SP"),
            original_acc);
  print_row(config,
            tinyadc_run(net, data, ckpt, combined_sp, combined_cp, "TinyADC"),
            original_acc);
}

}  // namespace

int main() {
  std::printf("=== Table II: combined pruning vs baselines ===\n\n");
  std::printf("published reference rows (from the paper, for context):\n");
  std::printf("  CIFAR10/ResNet18 : Ultra-Efficient 20.88x @93.20%%  "
              "TinyButAcc 59.84x @93.20%%\n");
  std::printf("  CIFAR10/VGG16    : Ultra-Efficient 29.81x @93.36%%  "
              "TinyButAcc 44.67x @93.36%%\n");
  std::printf("  CIFAR100/ResNet18: N2N 4.64x @68.01%% (non-structured)\n");
  std::printf("  CIFAR100/VGG16   : SSL 2.6x @73.18%%  Decorrelation 3.9x "
              "@73.21%%\n");
  std::printf("  ImageNet/ResNet18: DCP 2x @87.60%%, 3.3x @85.68%% (top-5)\n\n");

  std::printf("measured rows (16x16 crossbars, synthetic tiers):\n");
  std::printf("%-18s %-16s %8s %7s %6s %10s %8s %10s %10s\n", "config",
              "method", "orig.acc", "SP", "CP", "overall", "final", "xbar red",
              "ADC bits");
  tinyadc::bench::hr(100);
  if (tinyadc::bench::quick_mode()) {
    run_config("cifar10-resnet18", "cifar10", "resnet18", 16, 4.0, 8, true);
  } else {
    run_config("cifar10-resnet18", "cifar10", "resnet18", 16, 4.0, 8, true);
    run_config("cifar10-vgg16", "cifar10", "vgg16", 16, 2.0, 4, false);
    run_config("cifar100-resnet18", "cifar100", "resnet18", 8, 1.6, 4, true);
    run_config("cifar100-resnet50", "cifar100", "resnet50", 8, 1.6, 4, false);
    run_config("cifar100-vgg16", "cifar100", "vgg16", 8, 1.78, 4, false);
    run_config("imagenet-resnet18", "imagenet", "resnet18", 4, 2.3, 2, false);
  }
  std::printf("\n(paper shape: combined rows reach the largest overall rates "
              "at minor accuracy cost;\n magnitude rows show no crossbar/ADC "
              "savings; structured-only rows save crossbars but no ADC "
              "bits)\n");
  return 0;
}
