// Closed-loop load generator over an InferenceEngine.
//
// Submits single-image requests drawn round-robin from a dataset, paced
// to a target QPS (0 = as fast as the engine accepts them), with a bound
// on outstanding requests (closed loop: the generator blocks on the
// oldest future once the window is full, so it never outruns the engine
// unboundedly). Collects per-request results, verifies labels against
// the dataset, and digests every result (logits bytes + predicted label,
// in arrival order) so deterministic-mode runs can be compared
// byte-for-byte across worker counts.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "serve/engine.hpp"

namespace tinyadc::serve {

struct LoadgenConfig {
  std::int64_t requests = 256;   ///< total requests to issue
  double target_qps = 0.0;       ///< pacing rate; 0 = max speed
  std::size_t max_outstanding = 64;  ///< closed-loop window
};

struct LoadgenReport {
  ServeStats stats;             ///< engine snapshot after the run drained
  double achieved_qps = 0.0;    ///< completed requests / loadgen wall time
  double accuracy = 0.0;        ///< predicted label vs dataset label
  std::uint64_t output_digest = 0;  ///< FNV over (logits, label) by seq

  /// Stats JSON extended with the loadgen-level fields.
  std::string to_json() const;
};

/// Runs the load and drains the engine (wait_idle) before snapshotting.
LoadgenReport run_loadgen(InferenceEngine& engine, const data::Dataset& ds,
                          const LoadgenConfig& config);

}  // namespace tinyadc::serve
