#include "msim/analog_mvm.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>

#include "artifact/format.hpp"
#include "runtime/parallel.hpp"
#include "tensor/check.hpp"

// Software prefetch of upcoming plan streams (DESIGN.md §12). Read-only,
// low temporal locality hint; compiles away off GCC/Clang.
#if defined(__GNUC__) || defined(__clang__)
#define TINYADC_PREFETCH(addr) __builtin_prefetch((addr), 0, 1)
#else
#define TINYADC_PREFETCH(addr) ((void)0)
#endif

// Vectorized popcount for the bitslice path: TINYADC_NATIVE=ON builds on
// AVX-512 VPOPCNTDQ hardware (Ice Lake+) get the intrinsic lane below.
#if defined(__AVX512VPOPCNTDQ__) && defined(__AVX512F__)
#include <immintrin.h>
#define TINYADC_HAS_VPOPCNTQ 1
#else
#define TINYADC_HAS_VPOPCNTQ 0
#endif

namespace tinyadc::msim {

namespace {

std::atomic<std::int64_t> g_plan_compilations{0};

// Minimum per-call plan work (weighted row slots, see finalize_plan) before
// the pair sweep is worth handing to the thread pool. Below this the pool's
// wake + chunk dispatch costs more than the sweep itself — the packed-plan
// bench showed a small CP-16 plan at 0.16 ms serial but 0.39 ms on two
// threads — so tiny plans run the sweep inline. The inline sweep is the
// runtime's serial reference path, so outputs and counters stay
// bit-identical either way.
constexpr std::int64_t kMinParallelPlanWork = 1 << 15;

/// The ideal-datapath predicate of build_plan, shared with deserialize so
/// a loaded plan provably dispatches through the same inner loop.
bool plan_ideal_for(const xbar::MappedLayer& layer, const MsimConfig& config,
                    bool has_variation) {
  std::int64_t max_rows = 0;
  for (const auto& b : layer.blocks) max_rows = std::max(max_rows, b.rows);
  const auto& cfg = layer.config;
  const double worst_plane_sum =
      static_cast<double>((1 << cfg.cell_bits) - 1) *
      static_cast<double>((1 << cfg.dac_bits) - 1) *
      static_cast<double>(max_rows);
  return !has_variation && config.ir_drop_alpha <= 0.0 &&
         worst_plane_sum < 9007199254740992.0;  // 2^53
}

/// Integer-domain ADC conversion, inlined for the plan fast paths. The
/// ideal datapath's analog sum is an exact non-negative integer, so
/// Adc::convert's llround is the identity and only the saturation remains.
/// Counters are bulk-added by the caller (conversions) / here (clips).
inline std::int64_t adc_code_int(std::int64_t isum, int bits,
                                 std::int64_t full_scale,
                                 std::int64_t& clip_events) {
  if (bits == 0) return 0;
  if (isum > full_scale) {
    ++clip_events;
    return full_scale;
  }
  return isum;
}

/// Population count of `a[i] & b[i]` over `n` words — the bitslice path's
/// plane reduction. Dispatch is compile-time: eligibility is a property of
/// the target ISA, not the input. On AVX-512 VPOPCNTDQ targets the AND and
/// popcount of eight words fuse into two instructions per 512-bit lane;
/// elsewhere std::popcount lowers to hardware POPCNT (-march=native) or the
/// portable SWAR sequence. Bit-exact either way: both sides count the same
/// set bits, and the int64 accumulator cannot overflow (≤ 64 per word).
inline std::int64_t popcount_and_words(const std::uint64_t* a,
                                       const std::uint64_t* b,
                                       std::size_t n) {
#if TINYADC_HAS_VPOPCNTQ
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_and_si512(va, vb)));
  }
  std::int64_t pc = _mm512_reduce_add_epi64(acc);
  for (; i < n; ++i) pc += std::popcount(a[i] & b[i]);
  return pc;
#else
  std::int64_t pc = 0;
  for (std::size_t i = 0; i < n; ++i) pc += std::popcount(a[i] & b[i]);
  return pc;
#endif
}

}  // namespace

void serialize(const MsimConfig& config, artifact::SectionWriter& w) {
  w.pod(static_cast<std::int32_t>(config.adc_bits_override));
  w.pod(config.variation_sigma);
  w.pod(config.ir_drop_alpha);
  w.pod(config.seed);
  w.pod(static_cast<std::uint8_t>(config.use_plan ? 1 : 0));
  w.pod(static_cast<std::uint8_t>(config.plan_kernel));
}

MsimConfig deserialize_msim_config(artifact::SectionReader& r,
                                   std::uint32_t version) {
  MsimConfig config;
  config.adc_bits_override = r.pod<std::int32_t>();
  config.variation_sigma = r.pod<double>();
  config.ir_drop_alpha = r.pod<double>();
  config.seed = r.pod<std::uint64_t>();
  config.use_plan = r.pod<std::uint8_t>() != 0;
  if (version >= 2) {
    const auto kernel = r.pod<std::uint8_t>();
    TINYADC_CHECK(kernel <= static_cast<std::uint8_t>(PlanKernel::kBitslice),
                  "implausible plan kernel " << static_cast<int>(kernel));
    config.plan_kernel = static_cast<PlanKernel>(kernel);
  }
  TINYADC_CHECK(config.adc_bits_override >= -1 &&
                    config.adc_bits_override <= 32,
                "implausible ADC override " << config.adc_bits_override);
  TINYADC_CHECK(std::isfinite(config.variation_sigma) &&
                    config.variation_sigma >= 0.0 &&
                    std::isfinite(config.ir_drop_alpha) &&
                    config.ir_drop_alpha >= 0.0,
                "implausible msim non-ideality configuration");
  return config;
}

std::int64_t AnalogLayerSim::plan_compilations() {
  return g_plan_compilations.load(std::memory_order_relaxed);
}

void AnalogLayerSim::check_accumulator_headroom() const {
  const auto& cfg = layer_.config;
  const int slices = cfg.slices();
  const int cycles = dac_cycles(cfg.input_bits, cfg.dac_bits);

  // Overflow guard: the shift-and-add stage accumulates
  //   Σ ± code · 2^(s·cell_bits + t·dac_bits)
  // over 2·slices·cycles conversions per (block, column), and per-column
  // block partials then add across the block-grid rows. The worst shifted
  // code therefore needs adc_bits + max_shift bits, plus headroom for the
  // number of summed terms; anything past 62 bits can silently wrap the
  // int64 accumulator, so refuse the configuration up front.
  const int max_shift =
      (slices - 1) * cfg.cell_bits + (cycles - 1) * cfg.dac_bits;
  const auto terms = static_cast<std::uint64_t>(2 * slices * cycles) *
                     static_cast<std::uint64_t>(
                         std::max<std::int64_t>(1, layer_.block_grid_rows));
  const int headroom = std::bit_width(terms);
  TINYADC_CHECK(
      adc_.bits() + max_shift + headroom <= 62,
      "shift-and-add accumulator overflow: " << adc_.bits() << " ADC bits + "
          << max_shift << " max shift + " << headroom
          << " headroom bits exceed int64 (layer " << layer_.name << ")");
}

AnalogLayerSim::AnalogLayerSim(const xbar::MappedLayer& layer,
                               MsimConfig config)
    : layer_(layer),
      config_(config),
      adc_(config.adc_bits_override >= 0 ? config.adc_bits_override
                                         : layer.required_adc_bits()),
      stats_mu_(std::make_unique<std::mutex>()) {
  const auto& cfg = layer_.config;
  const int slices = cfg.slices();
  check_accumulator_headroom();

  if (config_.variation_sigma > 0.0) {
    Rng rng(config_.seed);
    variation_.reserve(layer_.blocks.size());
    for (const auto& b : layer_.blocks) {
      std::vector<float> v(
          static_cast<std::size_t>(b.rows * b.cols * slices));
      for (auto& f : v)
        f = std::exp(rng.normal(0.0F,
                                static_cast<float>(config_.variation_sigma)));
      variation_.push_back(std::move(v));
    }
  }
  if (config_.use_plan) build_plan();
}

void AnalogLayerSim::build_plan() {
  g_plan_compilations.fetch_add(1, std::memory_order_relaxed);
  const auto& cfg = layer_.config;
  const int slices = cfg.slices();
  TINYADC_CHECK(layer_.rows <= INT32_MAX,
                "layer too tall for packed plan row indices");

  // The ideal (no variation, no IR drop) datapath sums exact integers, so
  // the plan may accumulate in int64 and cast once — bit-identical to the
  // dense path's double accumulation as long as every partial plane sum is
  // exactly representable in a double (< 2^53; true for any physical
  // configuration, checked anyway).
  plan_ideal_ = plan_ideal_for(layer_, config_, !variation_.empty());

  // Stream sizing straight from the mapping's per-column occupancy census:
  // every active weight owns exactly one row slot in one polarity segment,
  // so the census sum is the exact stream length (not an upper bound).
  // Compilation accumulates into local vectors and assigns the ArrayRef
  // members once at the end (compiled plans always own their storage).
  const auto slots = static_cast<std::size_t>(layer_.census_nonzeros());
  std::vector<std::int32_t> soa_row;
  std::vector<std::int32_t> soa_mag;
  std::vector<std::int32_t> soa_level;
  std::vector<float> soa_var;
  std::vector<double> soa_denom;
  soa_row.reserve(slots);
  soa_mag.reserve(slots);
  soa_denom.reserve(slots);
  soa_level.reserve(slots * static_cast<std::size_t>(slices));
  soa_var.reserve(slots * static_cast<std::size_t>(slices));

  std::size_t npairs = 0;
  for (const auto& b : layer_.blocks)
    npairs += static_cast<std::size_t>(b.cols);
  std::vector<std::int64_t> soa_out;
  std::vector<std::uint64_t> soa_seg;
  soa_out.reserve(npairs);
  soa_seg.reserve(2 * npairs + 1);
  soa_seg.push_back(0);

  std::vector<std::int64_t> seg_rows;  // block-local rows of one segment
  for (std::size_t bi = 0; bi < layer_.blocks.size(); ++bi) {
    const auto& b = layer_.blocks[bi];
    const float* var = variation_.empty() ? nullptr : variation_[bi].data();
    for (std::int64_t c = 0; c < b.cols; ++c) {
      soa_out.push_back(
          layer_.kept_cols[static_cast<std::size_t>(b.col0 + c)]);

      // Column load for the IR-drop model, from the live codes (matches the
      // dense path's per-call count; the census is equal at map time but
      // kept separate so a stale census can never skew the analog model).
      double column_load = 0.0;
      if (config_.ir_drop_alpha > 0.0) {
        std::int64_t active = 0;
        for (std::int64_t r = 0; r < b.rows; ++r) active += (b.at(r, c) != 0);
        column_load =
            static_cast<double>(active) / static_cast<double>(b.rows);
      }

      // Two polarity segments per pair (+ then −), each the column's active
      // rows of that sign in ascending block-row order — exactly the
      // operands (and order) of the dense inner loop.
      for (int polarity : {+1, -1}) {
        seg_rows.clear();
        for (std::int64_t r = 0; r < b.rows; ++r) {
          const std::int32_t q = b.at(r, c);
          if (q == 0 || (q > 0 ? 1 : -1) != polarity) continue;
          seg_rows.push_back(r);
          soa_row.push_back(static_cast<std::int32_t>(layer_.kept_rows[
              static_cast<std::size_t>(b.row0 + r)]));
          soa_mag.push_back(std::abs(q));
          double denom = 1.0;
          if (config_.ir_drop_alpha > 0.0) {
            const double depth = static_cast<double>(r + 1) /
                                 static_cast<double>(b.rows);
            denom = 1.0 + config_.ir_drop_alpha * depth * column_load;
          }
          soa_denom.push_back(denom);
        }
        // Slice-resolved rectangle, slice-major within the segment. Zero
        // levels are kept (they add nothing to the integer paths; the
        // general path skips them like the dense scan does) so every slice
        // streams contiguously. Variation slots at zero levels store the
        // exact multiplicative identity.
        for (int s = 0; s < slices; ++s) {
          for (const std::int64_t r : seg_rows) {
            const auto sl = xbar::slice_magnitude(std::abs(b.at(r, c)),
                                                  cfg.cell_bits, slices);
            const std::int32_t level = sl[static_cast<std::size_t>(s)];
            soa_level.push_back(level);
            soa_var.push_back(
                var == nullptr || level == 0
                    ? 1.0F
                    : var[static_cast<std::size_t>((r * b.cols + c) * slices +
                                                   s)]);
          }
        }
        soa_seg.push_back(soa_row.size());
      }
    }
  }
  soa_out_ = std::move(soa_out);
  soa_seg_ = std::move(soa_seg);
  soa_row_ = std::move(soa_row);
  soa_mag_ = std::move(soa_mag);
  soa_level_ = std::move(soa_level);
  soa_var_ = std::move(soa_var);
  soa_denom_ = std::move(soa_denom);
  finalize_plan();
}

void AnalogLayerSim::finalize_plan() {
  const auto& cfg = layer_.config;
  const int slices = cfg.slices();
  const std::int64_t chunk_max = (1 << cfg.dac_bits) - 1;
  const std::int64_t code_max = (std::int64_t{1} << cfg.input_bits) - 1;

  // Worst-case sums for the fast-path predicates, exact from the streams:
  // worst_plane_sum_ bounds any single (pair, polarity, slice, cycle)
  // conversion; worst_fused_sum_ bounds a fused per-polarity partial.
  worst_plane_sum_ = 0;
  worst_fused_sum_ = 0;
  const std::size_t nseg = soa_seg_.empty() ? 0 : soa_seg_.size() - 1;
  for (std::size_t k = 0; k < nseg; ++k) {
    const std::size_t i0 = soa_seg_[k], i1 = soa_seg_[k + 1];
    const std::size_t len = i1 - i0;
    const std::size_t lbase = i0 * static_cast<std::size_t>(slices);
    std::int64_t fused = 0;
    for (std::size_t i = i0; i < i1; ++i) fused += soa_mag_[i];
    worst_fused_sum_ = std::max(worst_fused_sum_, fused * code_max);
    for (int s = 0; s < slices; ++s) {
      std::int64_t plane = 0;
      const std::int32_t* lv =
          soa_level_.data() + lbase + static_cast<std::size_t>(s) * len;
      for (std::size_t i = 0; i < len; ++i) plane += lv[i];
      worst_plane_sum_ = std::max(worst_plane_sum_, plane * chunk_max);
    }
  }

  // Execution-path resolution (DESIGN.md §12). The fused collapse requires
  // the clip-free guarantee; the bitslice packing requires an ideal 1-bit
  // DAC datapath. Everything else runs the vector (ideal) or general
  // (non-ideal) sweep. kAos sidesteps the SoA executor entirely.
  const bool clip_free = plan_ideal_ && worst_plane_sum_ <= adc_.full_scale();
  const bool bits_ok = plan_ideal_ && cfg.dac_bits == 1;
  switch (config_.plan_kernel) {
    case PlanKernel::kAuto:
      exec_path_ = clip_free ? ExecPath::kFused
                   : bits_ok ? ExecPath::kBitslice
                   : plan_ideal_ ? ExecPath::kVector
                                 : ExecPath::kGeneral;
      break;
    case PlanKernel::kAos:
      exec_path_ = plan_ideal_ ? ExecPath::kVector : ExecPath::kGeneral;
      derive_aos_from_soa();
      break;
    case PlanKernel::kSoa:
      exec_path_ = plan_ideal_ ? ExecPath::kVector : ExecPath::kGeneral;
      break;
    case PlanKernel::kBitslice:
      exec_path_ = bits_ok ? ExecPath::kBitslice
                   : plan_ideal_ ? ExecPath::kVector
                                 : ExecPath::kGeneral;
      break;
  }
  if (exec_path_ == ExecPath::kBitslice) build_bit_planes();

  // Per-MVM work estimate for the parallel dispatch threshold: row slots,
  // weighted by the per-slot inner-loop cost of the resolved path. The
  // fused path touches each slot about once per polarity sweep; the other
  // paths revisit each slot per (slice, cycle) plane.
  const auto total_slots =
      soa_seg_.empty() ? std::uint64_t{0} : soa_seg_.back();
  const int cycles = dac_cycles(cfg.input_bits, cfg.dac_bits);
  const std::int64_t per_slot =
      exec_path_ == ExecPath::kFused
          ? 1
          : static_cast<std::int64_t>(slices) * cycles;
  plan_work_ = static_cast<std::int64_t>(total_slots) * per_slot;
}

void AnalogLayerSim::derive_aos_from_soa() {
  // Reconstructs the PR-3 array-of-structs plan from the SoA streams: per
  // (pair, polarity, slice) plane, the non-zero-level slots in ascending
  // row order. Used both after build_plan and after an artifact load, so a
  // restored kAos sim executes byte-identical entry arrays.
  const int slices = layer_.config.slices();
  const std::size_t npairs = soa_out_.size();
  plan_pairs_.clear();
  plan_offsets_.clear();
  plan_x_.clear();
  plan_level_.clear();
  plan_var_.clear();
  plan_denom_.clear();
  plan_pairs_.reserve(npairs);
  plan_offsets_.reserve(npairs * 2 * static_cast<std::size_t>(slices) + 1);
  plan_offsets_.push_back(0);
  for (std::size_t pi = 0; pi < npairs; ++pi) {
    PairRef pair;
    pair.out = soa_out_[pi];
    pair.plane0 = plan_offsets_.size() - 1;
    plan_pairs_.push_back(pair);
    for (int pol = 0; pol < 2; ++pol) {
      const std::size_t k = 2 * pi + static_cast<std::size_t>(pol);
      const std::size_t i0 = soa_seg_[k], len = soa_seg_[k + 1] - i0;
      const std::size_t lbase = i0 * static_cast<std::size_t>(slices);
      for (int s = 0; s < slices; ++s) {
        const std::size_t sbase = lbase + static_cast<std::size_t>(s) * len;
        for (std::size_t i = 0; i < len; ++i) {
          const std::int32_t level = soa_level_[sbase + i];
          if (level == 0) continue;
          plan_x_.push_back(soa_row_[i0 + i]);
          plan_level_.push_back(level);
          plan_var_.push_back(soa_var_[sbase + i]);
          plan_denom_.push_back(soa_denom_[i0 + i]);
        }
        plan_offsets_.push_back(plan_x_.size());
      }
    }
  }
}

void AnalogLayerSim::build_bit_planes() {
  // Packs each segment's slice levels into bit planes, 64 cells per word:
  // bit b of slice s lands in plane p = s·cell_bits + b, and local row i
  // sets bit i%64 of word i/64. A plane sum then becomes
  // Σ_b popcount(plane_word & chunk_word) · 2^b.
  const auto& cfg = layer_.config;
  const int slices = cfg.slices();
  const int planes = slices * cfg.cell_bits;
  const std::size_t nseg = soa_seg_.empty() ? 0 : soa_seg_.size() - 1;
  bs_base_.assign(nseg + 1, 0);
  for (std::size_t k = 0; k < nseg; ++k) {
    const std::size_t words = (soa_seg_[k + 1] - soa_seg_[k] + 63) / 64;
    bs_base_[k + 1] = bs_base_[k] + words * static_cast<std::size_t>(planes);
  }
  bs_words_.assign(bs_base_[nseg], 0);
  for (std::size_t k = 0; k < nseg; ++k) {
    const std::size_t i0 = soa_seg_[k], len = soa_seg_[k + 1] - i0;
    const std::size_t words = (len + 63) / 64;
    const std::size_t lbase = i0 * static_cast<std::size_t>(slices);
    for (int s = 0; s < slices; ++s) {
      const std::size_t sbase = lbase + static_cast<std::size_t>(s) * len;
      for (std::size_t i = 0; i < len; ++i) {
        const auto level = static_cast<std::uint32_t>(soa_level_[sbase + i]);
        for (int b = 0; b < cfg.cell_bits; ++b) {
          if (((level >> b) & 1U) == 0) continue;
          const std::size_t p = static_cast<std::size_t>(s * cfg.cell_bits + b);
          bs_words_[bs_base_[k] + p * words + i / 64] |=
              std::uint64_t{1} << (i % 64);
        }
      }
    }
  }
}

void AnalogLayerSim::dac_split(const std::int32_t* x,
                               std::int32_t* chunks) const {
  const auto& cfg = layer_.config;
  const int cycles = dac_cycles(cfg.input_bits, cfg.dac_bits);
  const std::int32_t mask = (1 << cfg.dac_bits) - 1;
  const auto n = static_cast<std::size_t>(layer_.rows);
  for (std::size_t r = 0; r < n; ++r) {
    std::int32_t rest = x[r];
    TINYADC_CHECK(rest >= 0 && rest < (std::int64_t{1} << cfg.input_bits),
                  "activation code " << x[r] << " exceeds " << cfg.input_bits
                                     << " bits");
    if (chunks == nullptr) continue;
    for (int t = 0; t < cycles; ++t) {
      chunks[static_cast<std::size_t>(t) * n + r] = rest & mask;
      rest >>= cfg.dac_bits;
    }
  }
}

std::vector<std::int64_t> AnalogLayerSim::mvm(
    const std::vector<std::int32_t>& x) {
  return config_.use_plan ? mvm_packed(x) : mvm_dense(x);
}

void AnalogLayerSim::exec_pairs_soa(const std::int32_t* x,
                                    const std::int32_t* chunks,
                                    std::int64_t p0, std::int64_t p1,
                                    std::int64_t* pair_acc,
                                    AdcCounters& counters) const {
  const auto& cfg = layer_.config;
  const int slices = cfg.slices();
  const int cycles = dac_cycles(cfg.input_bits, cfg.dac_bits);
  const auto n = static_cast<std::size_t>(layer_.rows);
  const int bits = adc_.bits();
  const std::int64_t full_scale = adc_.full_scale();
  const std::int64_t conv_per_pair = std::int64_t{2} * slices * cycles;

  switch (exec_path_) {
    case ExecPath::kFused: {
      // Clip-free ideal datapath: every conversion returns its plane sum
      // exactly, so the shift-and-add telescopes into Σ ± |q_i|·x_i per
      // polarity (DESIGN.md §12). No DAC chunks, no per-plane loop.
      const bool narrow = worst_fused_sum_ <= INT32_MAX;
      for (std::int64_t pi = p0; pi < p1; ++pi) {
        const std::size_t k0 = 2 * static_cast<std::size_t>(pi);
        if (pi + 1 < p1) {
          // One pair ahead (~2–4 cache lines of stream data) hides the
          // stream-load latency behind the current pair's arithmetic.
          const std::size_t nx = soa_seg_[k0 + 2];
          TINYADC_PREFETCH(soa_mag_.data() + nx);
          TINYADC_PREFETCH(soa_row_.data() + nx);
        }
        std::int64_t acc = 0;
        for (int pol = 0; pol < 2; ++pol) {
          const std::size_t i0 = soa_seg_[k0 + static_cast<std::size_t>(pol)];
          const std::size_t i1 =
              soa_seg_[k0 + static_cast<std::size_t>(pol) + 1];
          std::int64_t part;
          if (narrow) {
            std::int32_t p32 = 0;
            for (std::size_t i = i0; i < i1; ++i)
              p32 += soa_mag_[i] * x[soa_row_[i]];
            part = p32;
          } else {
            std::int64_t p64 = 0;
            for (std::size_t i = i0; i < i1; ++i)
              p64 += static_cast<std::int64_t>(soa_mag_[i]) * x[soa_row_[i]];
            part = p64;
          }
          acc += pol == 0 ? part : -part;
        }
        pair_acc[pi] = acc;
        counters.conversions += conv_per_pair;
      }
      return;
    }
    case ExecPath::kBitslice: {
      // Ideal 1-bit DAC: cycle t's chunk of code x is just bit t, so the
      // chunk words pack straight from x and every plane sum is a handful
      // of popcounts over the packed level bit planes.
      std::size_t max_words = 0;
      for (std::size_t k = 0; k + 1 < soa_seg_.size(); ++k)
        max_words = std::max(max_words,
                             (soa_seg_[k + 1] - soa_seg_[k] + 63) / 64);
      std::vector<std::uint64_t> cw(static_cast<std::size_t>(cycles) *
                                    std::max<std::size_t>(max_words, 1));
      for (std::int64_t pi = p0; pi < p1; ++pi) {
        std::int64_t acc = 0;
        std::int64_t convs = 0;
        for (int pol = 0; pol < 2; ++pol) {
          const std::size_t k =
              2 * static_cast<std::size_t>(pi) + static_cast<std::size_t>(pol);
          const std::size_t i0 = soa_seg_[k], len = soa_seg_[k + 1] - i0;
          const std::size_t words = (len + 63) / 64;
          if (pi + 1 < p1)
            TINYADC_PREFETCH(bs_words_.data() + bs_base_[k + 2]);
          std::fill(cw.begin(),
                    cw.begin() + static_cast<std::ptrdiff_t>(
                                     static_cast<std::size_t>(cycles) * words),
                    0);
          for (std::size_t i = 0; i < len; ++i) {
            const auto xv = static_cast<std::uint32_t>(x[soa_row_[i0 + i]]);
            const std::size_t w = i / 64;
            const std::uint64_t bit = std::uint64_t{1} << (i % 64);
            for (int t = 0; t < cycles; ++t)
              if ((xv >> t) & 1U) cw[static_cast<std::size_t>(t) * words + w] |=
                  bit;
          }
          const std::uint64_t* plane0 = bs_words_.data() + bs_base_[k];
          for (int s = 0; s < slices; ++s) {
            const int sshift = s * cfg.cell_bits;
            for (int t = 0; t < cycles; ++t) {
              const std::uint64_t* ct =
                  cw.data() + static_cast<std::size_t>(t) * words;
              std::int64_t isum = 0;
              for (int b = 0; b < cfg.cell_bits; ++b) {
                const std::uint64_t* pw =
                    plane0 +
                    static_cast<std::size_t>(sshift + b) * words;
                isum += popcount_and_words(pw, ct, words) << b;
              }
              const std::int64_t code =
                  adc_code_int(isum, bits, full_scale, counters.clip_events);
              acc += (pol == 0 ? 1 : -1) *
                     (code << (sshift + t * cfg.dac_bits));
              ++convs;
            }
          }
        }
        pair_acc[pi] = acc;
        counters.conversions += convs;
      }
      return;
    }
    case ExecPath::kVector: {
      // Ideal multi-bit-DAC fallback: gather one cycle's chunks per
      // segment, then a contiguous multiply-accumulate per slice over the
      // rectangular level stream (zeros contribute nothing, so the
      // rectangle is exact).
      std::size_t max_len = 0;
      for (std::size_t k = 0; k + 1 < soa_seg_.size(); ++k)
        max_len = std::max(max_len, soa_seg_[k + 1] - soa_seg_[k]);
      std::vector<std::int32_t> g(std::max<std::size_t>(max_len, 1));
      const bool narrow = worst_plane_sum_ <= INT32_MAX;
      for (std::int64_t pi = p0; pi < p1; ++pi) {
        std::int64_t acc = 0;
        for (int pol = 0; pol < 2; ++pol) {
          const std::size_t k =
              2 * static_cast<std::size_t>(pi) + static_cast<std::size_t>(pol);
          const std::size_t i0 = soa_seg_[k], len = soa_seg_[k + 1] - i0;
          const std::size_t lbase = i0 * static_cast<std::size_t>(slices);
          for (int t = 0; t < cycles; ++t) {
            const std::int32_t* ch = chunks + static_cast<std::size_t>(t) * n;
            for (std::size_t i = 0; i < len; ++i) g[i] = ch[soa_row_[i0 + i]];
            for (int s = 0; s < slices; ++s) {
              const std::int32_t* lv =
                  soa_level_.data() + lbase +
                  static_cast<std::size_t>(s) * len;
              std::int64_t isum;
              if (narrow) {
                std::int32_t s32 = 0;
                for (std::size_t i = 0; i < len; ++i) s32 += lv[i] * g[i];
                isum = s32;
              } else {
                std::int64_t s64 = 0;
                for (std::size_t i = 0; i < len; ++i)
                  s64 += static_cast<std::int64_t>(lv[i]) * g[i];
                isum = s64;
              }
              const std::int64_t code =
                  adc_code_int(isum, bits, full_scale, counters.clip_events);
              acc += (pol == 0 ? 1 : -1) *
                     (code << (s * cfg.cell_bits + t * cfg.dac_bits));
            }
          }
        }
        pair_acc[pi] = acc;
        counters.conversions += conv_per_pair;
      }
      return;
    }
    case ExecPath::kGeneral: {
      // Non-ideal datapath: float accumulation in exactly the dense scan's
      // operand order — ascending active rows, skipping zero levels, one
      // variation multiply and one IR-drop divide per operand (both exact
      // identities when the corresponding non-ideality is off).
      for (std::int64_t pi = p0; pi < p1; ++pi) {
        std::int64_t acc = 0;
        for (int pol = 0; pol < 2; ++pol) {
          const std::size_t k =
              2 * static_cast<std::size_t>(pi) + static_cast<std::size_t>(pol);
          const std::size_t i0 = soa_seg_[k], len = soa_seg_[k + 1] - i0;
          const std::size_t lbase = i0 * static_cast<std::size_t>(slices);
          for (int s = 0; s < slices; ++s) {
            const std::size_t sbase =
                lbase + static_cast<std::size_t>(s) * len;
            const std::int32_t* lv = soa_level_.data() + sbase;
            const float* vv = soa_var_.data() + sbase;
            for (int t = 0; t < cycles; ++t) {
              const std::int32_t* ch =
                  chunks + static_cast<std::size_t>(t) * n;
              double analog = 0.0;
              for (std::size_t i = 0; i < len; ++i) {
                const std::int32_t level = lv[i];
                if (level == 0) continue;
                double contrib = static_cast<double>(level) *
                                 ch[soa_row_[i0 + i]];
                contrib *= vv[i];
                contrib /= soa_denom_[i0 + i];
                analog += contrib;
              }
              const std::int64_t code = adc_.convert(analog, counters);
              acc += (pol == 0 ? 1 : -1) *
                     (code << (s * cfg.cell_bits + t * cfg.dac_bits));
            }
          }
        }
        pair_acc[pi] = acc;
      }
      return;
    }
  }
}

void AnalogLayerSim::exec_pairs_aos(const std::int32_t* chunks,
                                    std::int64_t p0, std::int64_t p1,
                                    std::int64_t* pair_acc,
                                    AdcCounters& counters) const {
  const auto& cfg = layer_.config;
  const int slices = cfg.slices();
  const int cycles = dac_cycles(cfg.input_bits, cfg.dac_bits);
  const auto n = static_cast<std::size_t>(layer_.rows);
  for (std::int64_t pi = p0; pi < p1; ++pi) {
    const PairRef& pair = plan_pairs_[static_cast<std::size_t>(pi)];
    const std::size_t* off = plan_offsets_.data() + pair.plane0;
    std::int64_t acc = 0;
    for (int polarity : {+1, -1}) {
      for (int s = 0; s < slices; ++s, ++off) {
        const std::size_t e0 = off[0], e1 = off[1];
        for (int t = 0; t < cycles; ++t) {
          const std::int32_t* ch = chunks + static_cast<std::size_t>(t) * n;
          double analog;
          if (plan_ideal_) {
            // Ideal wires and cells: every operand is a small integer, so
            // the sum is computed in int64 and is exactly the double the
            // dense path accumulates (each partial fits a double).
            std::int64_t isum = 0;
            for (std::size_t e = e0; e < e1; ++e)
              isum += static_cast<std::int64_t>(plan_level_[e]) *
                      ch[plan_x_[e]];
            analog = static_cast<double>(isum);
          } else {
            analog = 0.0;
            for (std::size_t e = e0; e < e1; ++e) {
              double contrib = static_cast<double>(plan_level_[e]) *
                               ch[plan_x_[e]];
              contrib *= plan_var_[e];
              contrib /= plan_denom_[e];
              analog += contrib;
            }
          }
          const std::int64_t code = adc_.convert(analog, counters);
          acc += polarity *
                 (code << (s * cfg.cell_bits + t * cfg.dac_bits));
        }
      }
    }
    pair_acc[pi] = acc;
  }
}

std::vector<std::int64_t> AnalogLayerSim::mvm_packed(
    const std::vector<std::int32_t>& x) {
  TINYADC_CHECK(static_cast<std::int64_t>(x.size()) == layer_.rows,
                "input length " << x.size() << " != layer rows "
                                << layer_.rows);
  const auto& cfg = layer_.config;
  const int cycles = dac_cycles(cfg.input_bits, cfg.dac_bits);
  const std::size_t n = x.size();
  const bool aos = config_.plan_kernel == PlanKernel::kAos;
  const bool needs_chunks = aos || (exec_path_ == ExecPath::kVector ||
                                    exec_path_ == ExecPath::kGeneral);

  // DAC chunks flattened into one contiguous buffer: chunk t of row r sits
  // at [t*n + r], so plan entries index a cycle's chunks directly by their
  // packed row index. The fused and bitslice paths read the codes
  // directly and skip the split (validation still runs).
  std::vector<std::int32_t> chunks;
  if (needs_chunks) chunks.resize(static_cast<std::size_t>(cycles) * n);
  dac_split(x.data(), needs_chunks ? chunks.data() : nullptr);

  const auto npairs = static_cast<std::int64_t>(soa_out_.size());
  std::vector<std::int64_t> pair_acc(soa_out_.size(), 0);

  // Each (block, logical column) pair converts independently — in hardware
  // all crossbar arrays fire in parallel. Per-pair sums land in fixed
  // slots; counters accumulate per worker chunk and merge under a local
  // mutex (integer sums, so the grand total is partition-independent).
  AdcCounters call_counters;
  const auto run_range = [&](std::int64_t p0, std::int64_t p1,
                             AdcCounters& counters) {
    if (aos)
      exec_pairs_aos(chunks.data(), p0, p1, pair_acc.data(), counters);
    else
      exec_pairs_soa(x.data(), chunks.data(), p0, p1, pair_acc.data(),
                     counters);
  };
  if (plan_work_ < kMinParallelPlanWork) {
    // Tiny plan: the sweep costs less than waking the pool. Run it inline
    // (the exact serial path, so bit-identical to any partitioning).
    run_range(0, npairs, call_counters);
  } else {
    std::mutex counters_mu;
    runtime::parallel_for(0, npairs, 1,
                          [&](std::int64_t p0, std::int64_t p1) {
                            AdcCounters local;
                            run_range(p0, p1, local);
                            std::lock_guard<std::mutex> lk(counters_mu);
                            call_counters.conversions += local.conversions;
                            call_counters.clip_events += local.clip_events;
                          });
  }

  std::vector<std::int64_t> y(static_cast<std::size_t>(layer_.cols), 0);
  for (std::size_t pi = 0; pi < soa_out_.size(); ++pi)
    y[static_cast<std::size_t>(soa_out_[pi])] += pair_acc[pi];
  merge_stats(call_counters, cycles);
  return y;
}

std::vector<std::int64_t> AnalogLayerSim::mvm_dense(
    const std::vector<std::int32_t>& x) {
  TINYADC_CHECK(static_cast<std::int64_t>(x.size()) == layer_.rows,
                "input length " << x.size() << " != layer rows "
                                << layer_.rows);
  const auto& cfg = layer_.config;
  const int slices = cfg.slices();
  const int cycles = dac_cycles(cfg.input_bits, cfg.dac_bits);

  // Pre-split every activation into DAC chunks: chunk[t][row].
  std::vector<std::vector<std::int32_t>> chunk(
      static_cast<std::size_t>(cycles),
      std::vector<std::int32_t>(x.size()));
  for (std::size_t r = 0; r < x.size(); ++r) {
    const auto ch = dac_chunks(x[r], cfg.input_bits, cfg.dac_bits);
    for (int t = 0; t < cycles; ++t)
      chunk[static_cast<std::size_t>(t)][r] =
          ch[static_cast<std::size_t>(t)];
  }

  // Each (block, logical column) pair converts independently — in hardware
  // all crossbar arrays fire in parallel. Accumulate every pair's digital
  // sum and ADC counters separately, then merge serially in a fixed order
  // so y and the statistics are bit-identical at any thread count.
  std::vector<std::pair<std::size_t, std::int64_t>> pairs;  // (block, col)
  for (std::size_t bi = 0; bi < layer_.blocks.size(); ++bi)
    for (std::int64_t c = 0; c < layer_.blocks[bi].cols; ++c)
      pairs.emplace_back(bi, c);
  std::vector<std::int64_t> pair_acc(pairs.size(), 0);
  std::vector<AdcCounters> pair_counters(pairs.size());

  runtime::parallel_for(
      0, static_cast<std::int64_t>(pairs.size()), 1,
      [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t pi = p0; pi < p1; ++pi) {
          const auto [bi, c] = pairs[static_cast<std::size_t>(pi)];
          const auto& b = layer_.blocks[bi];
          const float* var =
              variation_.empty() ? nullptr : variation_[bi].data();
          AdcCounters& counters = pair_counters[static_cast<std::size_t>(pi)];
          // Decompose the column once: per-row slice values by polarity.
          // sliced[r*slices + s] holds the s-th slice of |q(r,c)|; sign[r]
          // its polarity.
          std::vector<std::int32_t> sliced(
              static_cast<std::size_t>(b.rows * slices), 0);
          std::vector<int> sign(static_cast<std::size_t>(b.rows), 0);
          for (std::int64_t r = 0; r < b.rows; ++r) {
            const std::int32_t q = b.at(r, c);
            if (q == 0) continue;
            sign[static_cast<std::size_t>(r)] = q > 0 ? 1 : -1;
            const auto sl = xbar::slice_magnitude(std::abs(q), cfg.cell_bits,
                                                  slices);
            for (int s = 0; s < slices; ++s)
              sliced[static_cast<std::size_t>(r * slices + s)] =
                  sl[static_cast<std::size_t>(s)];
          }
          // Column load for the IR-drop model: the fraction of this
          // column's wordlines that actually inject current.
          double column_load = 0.0;
          if (config_.ir_drop_alpha > 0.0) {
            std::int64_t active = 0;
            for (std::int64_t r = 0; r < b.rows; ++r)
              active += (sign[static_cast<std::size_t>(r)] != 0);
            column_load = static_cast<double>(active) /
                          static_cast<double>(b.rows);
          }
          std::int64_t acc = 0;
          for (int polarity : {+1, -1}) {
            for (int s = 0; s < slices; ++s) {
              for (int t = 0; t < cycles; ++t) {
                double analog = 0.0;
                const auto& ch = chunk[static_cast<std::size_t>(t)];
                for (std::int64_t r = 0; r < b.rows; ++r) {
                  if (sign[static_cast<std::size_t>(r)] != polarity) continue;
                  const std::int32_t level =
                      sliced[static_cast<std::size_t>(r * slices + s)];
                  if (level == 0) continue;
                  const std::int64_t orig_r = layer_.kept_rows[
                      static_cast<std::size_t>(b.row0 + r)];
                  double contrib = static_cast<double>(level) *
                                   ch[static_cast<std::size_t>(orig_r)];
                  if (var != nullptr)
                    contrib *= var[static_cast<std::size_t>(
                        (r * b.cols + c) * slices + s)];
                  if (config_.ir_drop_alpha > 0.0) {
                    const double depth = static_cast<double>(r + 1) /
                                         static_cast<double>(b.rows);
                    contrib /=
                        1.0 + config_.ir_drop_alpha * depth * column_load;
                  }
                  analog += contrib;
                }
                const std::int64_t code = adc_.convert(analog, counters);
                acc += polarity *
                       (code << (s * cfg.cell_bits + t * cfg.dac_bits));
              }
            }
          }
          pair_acc[static_cast<std::size_t>(pi)] = acc;
        }
      });

  std::vector<std::int64_t> y(static_cast<std::size_t>(layer_.cols), 0);
  AdcCounters call_counters;
  for (std::size_t pi = 0; pi < pairs.size(); ++pi) {
    const auto [bi, c] = pairs[pi];
    const auto& b = layer_.blocks[bi];
    y[static_cast<std::size_t>(
        layer_.kept_cols[static_cast<std::size_t>(b.col0 + c)])] +=
        pair_acc[pi];
    call_counters.conversions += pair_counters[pi].conversions;
    call_counters.clip_events += pair_counters[pi].clip_events;
  }
  merge_stats(call_counters, cycles);
  return y;
}

std::vector<std::int64_t> AnalogLayerSim::mvm_batch(
    const std::vector<std::int32_t>& xs, std::int64_t batch) {
  TINYADC_CHECK(batch >= 0, "negative batch");
  TINYADC_CHECK(static_cast<std::int64_t>(xs.size()) == batch * layer_.rows,
                "batched input holds " << xs.size() << " codes, expected "
                                       << batch * layer_.rows);
  const auto n = static_cast<std::size_t>(layer_.rows);
  const auto cols = static_cast<std::size_t>(layer_.cols);
  std::vector<std::int64_t> y(static_cast<std::size_t>(batch) * cols, 0);
  if (batch == 0) return y;

  const bool fused_batch = config_.use_plan &&
                           config_.plan_kernel != PlanKernel::kAos &&
                           exec_path_ == ExecPath::kFused;
  // Sample-parallel dispatch threshold: a batch of tiny plans is still
  // tiny work overall, and each per-sample mvm() already bypasses its own
  // inner parallel_for, so fan the samples out only when the whole batch
  // clears the plan-work threshold. Dense (use_plan == false) batches have
  // no plan estimate and always fan out — the dense scan is O(rows·cols)
  // per sample and dwarfs the dispatch cost.
  const bool batch_serial =
      config_.use_plan && batch * plan_work_ < kMinParallelPlanWork;

  if (!fused_batch) {
    // Generic fallback: per-sample executors run inline under a
    // sample-parallel loop (nested parallel_for serializes). Each sample
    // merges its own statistics — integer counter sums, so the totals are
    // identical to `batch` sequential mvm() calls at any thread count.
    const auto run_samples = [&](std::int64_t b0, std::int64_t b1) {
      std::vector<std::int32_t> x(n);
      for (std::int64_t si = b0; si < b1; ++si) {
        const std::int32_t* src = xs.data() + static_cast<std::size_t>(si) * n;
        x.assign(src, src + n);
        const auto yi = mvm(x);
        std::copy(yi.begin(), yi.end(),
                  y.begin() + static_cast<std::ptrdiff_t>(
                                  static_cast<std::size_t>(si) * cols));
      }
    };
    if (batch_serial)
      run_samples(0, batch);
    else
      runtime::parallel_for(0, batch, 1, run_samples);
    return y;
  }

  // Fused batch: one serial pair walk per sample with the plan streams
  // shared read-only across samples (the serve path's hot lane). Counters
  // are exact multiples of the single-sample fused counts: 2·slices·cycles
  // conversions per pair per sample, zero clips by the fused predicate.
  const auto& cfg = layer_.config;
  const int cycles = dac_cycles(cfg.input_bits, cfg.dac_bits);
  const auto npairs = soa_out_.size();
  const bool narrow = worst_fused_sum_ <= INT32_MAX;
  const auto run_samples = [&](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t si = b0; si < b1; ++si) {
      const std::int32_t* x = xs.data() + static_cast<std::size_t>(si) * n;
      std::int64_t* yrow = y.data() + static_cast<std::size_t>(si) * cols;
      dac_split(x, nullptr);  // validation only
      for (std::size_t pi = 0; pi < npairs; ++pi) {
        const std::size_t k0 = 2 * pi;
        if (pi + 1 < npairs) {
          const std::size_t nx = soa_seg_[k0 + 2];
          TINYADC_PREFETCH(soa_mag_.data() + nx);
          TINYADC_PREFETCH(soa_row_.data() + nx);
        }
        std::int64_t acc = 0;
        for (int pol = 0; pol < 2; ++pol) {
          const std::size_t i0 = soa_seg_[k0 + static_cast<std::size_t>(pol)];
          const std::size_t i1 =
              soa_seg_[k0 + static_cast<std::size_t>(pol) + 1];
          std::int64_t part;
          if (narrow) {
            std::int32_t p32 = 0;
            for (std::size_t i = i0; i < i1; ++i)
              p32 += soa_mag_[i] * x[soa_row_[i]];
            part = p32;
          } else {
            std::int64_t p64 = 0;
            for (std::size_t i = i0; i < i1; ++i)
              p64 += static_cast<std::int64_t>(soa_mag_[i]) * x[soa_row_[i]];
            part = p64;
          }
          acc += pol == 0 ? part : -part;
        }
        yrow[static_cast<std::size_t>(soa_out_[pi])] += acc;
      }
    }
  };
  if (batch_serial)
    run_samples(0, batch);
  else
    runtime::parallel_for(0, batch, 1, run_samples);
  AdcCounters call_counters;
  call_counters.conversions = batch * static_cast<std::int64_t>(npairs) * 2 *
                              cfg.slices() * cycles;
  merge_stats(call_counters, static_cast<std::int64_t>(cycles) * batch);
  return y;
}

void AnalogLayerSim::merge_stats(const AdcCounters& counters,
                                 std::int64_t dac_cycles) {
  std::lock_guard<std::mutex> lk(*stats_mu_);
  adc_.absorb(counters);
  stats_.dac_cycles += dac_cycles;
  stats_.adc_conversions = adc_.conversions();
  stats_.adc_clip_events = adc_.clip_events();
}

std::vector<float> AnalogLayerSim::mvm_real(
    const std::vector<float>& x_real, const xbar::QuantParams& x_quant) {
  std::vector<std::int32_t> codes(x_real.size());
  for (std::size_t i = 0; i < x_real.size(); ++i)
    codes[i] = xbar::quantize_unsigned(x_real[i], x_quant);
  const auto y = mvm(codes);
  const float scale = x_quant.scale * layer_.quant.scale;
  std::vector<float> out(y.size());
  for (std::size_t i = 0; i < y.size(); ++i)
    out[i] = static_cast<float>(y[i]) * scale;
  return out;
}

std::vector<float> AnalogLayerSim::mvm_real_signed(
    const std::vector<float>& x_real, const xbar::QuantParams& x_quant) {
  std::vector<float> pos(x_real.size()), neg(x_real.size());
  for (std::size_t i = 0; i < x_real.size(); ++i) {
    pos[i] = x_real[i] > 0.0F ? x_real[i] : 0.0F;
    neg[i] = x_real[i] < 0.0F ? -x_real[i] : 0.0F;
  }
  auto yp = mvm_real(pos, x_quant);
  const auto yn = mvm_real(neg, x_quant);
  for (std::size_t i = 0; i < yp.size(); ++i) yp[i] -= yn[i];
  return yp;
}

std::vector<float> AnalogLayerSim::mvm_real_batch(
    const std::vector<float>& xs, std::int64_t batch,
    const xbar::QuantParams& x_quant, bool signed_input) {
  TINYADC_CHECK(static_cast<std::int64_t>(xs.size()) == batch * layer_.rows,
                "batched input holds " << xs.size() << " values, expected "
                                       << batch * layer_.rows);
  const float scale = x_quant.scale * layer_.quant.scale;
  if (!signed_input) {
    std::vector<std::int32_t> codes(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i)
      codes[i] = xbar::quantize_unsigned(xs[i], x_quant);
    const auto y = mvm_batch(codes, batch);
    std::vector<float> out(y.size());
    for (std::size_t i = 0; i < y.size(); ++i)
      out[i] = static_cast<float>(y[i]) * scale;
    return out;
  }
  // Two-phase signed scheme, element-for-element the mvm_real_signed split:
  // quantize the positive and negative parts separately, stream each, and
  // subtract the *scaled* results (same float rounding as the per-sample
  // path).
  std::vector<std::int32_t> pos(xs.size()), neg(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const float v = xs[i];
    pos[i] = xbar::quantize_unsigned(v > 0.0F ? v : 0.0F, x_quant);
    neg[i] = xbar::quantize_unsigned(v < 0.0F ? -v : 0.0F, x_quant);
  }
  const auto yp = mvm_batch(pos, batch);
  const auto yn = mvm_batch(neg, batch);
  // Round each product through its vector store before subtracting — the
  // per-sample path scales inside mvm_real and subtracts afterwards, so
  // writing `p*scale - n*scale` as one expression here would let
  // -ffp-contract=fast fuse the first product into the subtract on FMA
  // targets and skip a rounding, breaking batched-vs-per-sample identity.
  std::vector<float> out(yp.size()), yns(yn.size());
  for (std::size_t i = 0; i < yp.size(); ++i)
    out[i] = static_cast<float>(yp[i]) * scale;
  for (std::size_t i = 0; i < yn.size(); ++i)
    yns[i] = static_cast<float>(yn[i]) * scale;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] -= yns[i];
  return out;
}

void AnalogLayerSim::reset_stats() {
  stats_ = MsimStats{};
  adc_.reset_stats();
}

MsimStats AnalogLayerSim::stats_snapshot() const {
  std::lock_guard<std::mutex> lk(*stats_mu_);
  return stats_;
}

void AnalogLayerSim::prefetch_plan() const {
  // Touch the first cache lines of the streams the layer's execution path
  // sweeps first; the hardware prefetcher picks up the sequential walk from
  // there. Stride by one cache line (8 words / 16 int32) over a small head
  // window so the hint stays cheap even for large layers.
  constexpr std::size_t kHeadSlots = 512;   // ~2-4 KiB per stream
  const std::size_t slots = std::min(kHeadSlots, soa_row_.size());
  for (std::size_t i = 0; i < slots; i += 16) {
    TINYADC_PREFETCH(soa_row_.data() + i);
    TINYADC_PREFETCH(soa_mag_.data() + i);
  }
  if (exec_path_ == ExecPath::kBitslice) {
    const std::size_t words = std::min(kHeadSlots, bs_words_.size());
    for (std::size_t w = 0; w < words; w += 8)
      TINYADC_PREFETCH(bs_words_.data() + w);
  } else if (exec_path_ == ExecPath::kVector ||
             exec_path_ == ExecPath::kGeneral) {
    const std::size_t lv = std::min(kHeadSlots, soa_level_.size());
    for (std::size_t i = 0; i < lv; i += 16)
      TINYADC_PREFETCH(soa_level_.data() + i);
  }
  if (!soa_seg_.empty()) TINYADC_PREFETCH(soa_seg_.data());
}

AnalogLayerSim::AnalogLayerSim(const xbar::MappedLayer& layer,
                               MsimConfig config, RestoredState&& restored)
    : layer_(layer),
      config_(config),
      adc_(restored.adc_bits),
      variation_(std::move(restored.variation)),
      soa_out_(std::move(restored.out)),
      soa_seg_(std::move(restored.seg)),
      soa_row_(std::move(restored.row)),
      soa_mag_(std::move(restored.mag)),
      soa_level_(std::move(restored.level)),
      soa_var_(std::move(restored.var)),
      soa_denom_(std::move(restored.denom)),
      plan_ideal_(restored.plan_ideal),
      stats_mu_(std::make_unique<std::mutex>()) {
  check_accumulator_headroom();
  // Path resolution and the derived views (AoS arrays, bit planes) are
  // recomputed from the loaded streams — never a plan compilation.
  if (config_.use_plan) finalize_plan();
}

void AnalogLayerSim::serialize(artifact::SectionWriter& w) const {
  w.pod(static_cast<std::int32_t>(adc_.bits()));
  w.pod(static_cast<std::uint8_t>(plan_ideal_ ? 1 : 0));
  w.pod(static_cast<std::uint64_t>(variation_.size()));
  for (const auto& v : variation_) w.vec(v);
  w.pod(static_cast<std::uint8_t>(config_.use_plan ? 1 : 0));
  if (!config_.use_plan) return;
  // v3 payload: the canonical SoA streams as 64-byte-aligned arrays
  // (vec_aligned), so a mapped load can hand the executors read-only spans
  // over the file instead of copies. The AoS arrays and bit planes are
  // derived views and are rebuilt (cheap, deterministic) at load.
  w.pod(static_cast<std::uint64_t>(soa_out_.size()));
  w.vec_aligned(soa_out_);
  w.vec_aligned(soa_seg_);
  w.vec_aligned(soa_row_);
  w.vec_aligned(soa_mag_);
  w.vec_aligned(soa_level_);
  w.vec_aligned(soa_var_);
  w.vec_aligned(soa_denom_);
}

std::unique_ptr<AnalogLayerSim> AnalogLayerSim::deserialize(
    const xbar::MappedLayer& layer, MsimConfig config,
    artifact::SectionReader& r, std::uint32_t version) {
  const auto& cfg = layer.config;
  const int slices = cfg.slices();
  RestoredState s;

  s.adc_bits = r.pod<std::int32_t>();
  const int expected_bits = config.adc_bits_override >= 0
                                ? config.adc_bits_override
                                : layer.required_adc_bits();
  TINYADC_CHECK(s.adc_bits == expected_bits,
                "layer " << layer.name << ": artifact ADC has " << s.adc_bits
                         << " bits, configuration requires " << expected_bits);
  s.plan_ideal = r.pod<std::uint8_t>() != 0;

  const auto nvar = r.pod<std::uint64_t>();
  TINYADC_CHECK((nvar > 0) == (config.variation_sigma > 0.0),
                "layer " << layer.name
                         << ": variation state disagrees with "
                            "variation_sigma");
  TINYADC_CHECK(nvar == 0 || nvar == layer.blocks.size(),
                "layer " << layer.name << ": " << nvar
                         << " variation blocks, mapping has "
                         << layer.blocks.size());
  s.variation.reserve(static_cast<std::size_t>(nvar));
  for (std::uint64_t i = 0; i < nvar; ++i) {
    auto v = r.vec<float>();
    const auto& b = layer.blocks[static_cast<std::size_t>(i)];
    TINYADC_CHECK(v.size() == static_cast<std::size_t>(b.rows * b.cols *
                                                       slices),
                  "layer " << layer.name << ": variation block " << i
                           << " holds " << v.size() << " draws, expected "
                           << b.rows * b.cols * slices);
    for (const float f : v)
      TINYADC_CHECK(std::isfinite(f) && f > 0.0F,
                    "layer " << layer.name
                             << ": non-finite variation factor");
    s.variation.push_back(std::move(v));
  }

  const bool has_plan = r.pod<std::uint8_t>() != 0;
  TINYADC_CHECK(has_plan == config.use_plan,
                "layer " << layer.name
                         << ": artifact plan presence disagrees with "
                            "MsimConfig::use_plan");
  if (has_plan) {
    TINYADC_CHECK(s.plan_ideal ==
                      plan_ideal_for(layer, config, nvar > 0),
                  "layer " << layer.name
                           << ": stored ideal-path flag disagrees with the "
                              "configuration");
    std::size_t npairs_expected = 0;
    for (const auto& b : layer.blocks)
      npairs_expected += static_cast<std::size_t>(b.cols);
    const auto npairs = r.pod<std::uint64_t>();
    TINYADC_CHECK(npairs == npairs_expected,
                  "layer " << layer.name << ": plan has " << npairs
                           << " conversion pairs, mapping needs "
                           << npairs_expected);
    if (version >= 3) {
      // --- v3: 64-byte-aligned SoA streams. On a mapped artifact these
      // come back as borrowed spans over the file (zero-copy); on a copied
      // load arr_aligned degrades to an owned copy. Either way the shared
      // validation below re-checks every structural invariant — and, on a
      // mapped load, doubles as the page-touch warm-up of the hot streams.
      s.out = r.arr_aligned<std::int64_t>("plan outs");
      s.seg = r.arr_aligned<std::uint64_t>("plan segment table");
      s.row = r.arr_aligned<std::int32_t>("plan row stream");
      s.mag = r.arr_aligned<std::int32_t>("plan magnitude stream");
      s.level = r.arr_aligned<std::int32_t>("plan level stream");
      s.var = r.arr_aligned<float>("plan variation stream");
      s.denom = r.arr_aligned<double>("plan IR-divisor stream");
    } else if (version == 2) {
      // --- v2: the SoA streams as plain (unaligned) arrays; always copied.
      std::vector<std::int64_t> out;
      out.reserve(static_cast<std::size_t>(npairs));
      for (std::uint64_t pi = 0; pi < npairs; ++pi)
        out.push_back(r.pod<std::int64_t>());
      s.out = std::move(out);
      const auto nseg = r.pod<std::uint64_t>();
      TINYADC_CHECK(nseg == 2 * npairs + 1,
                    "layer " << layer.name << ": plan segment table holds "
                             << nseg << " offsets, expected "
                             << 2 * npairs + 1);
      std::vector<std::uint64_t> seg;
      seg.reserve(static_cast<std::size_t>(nseg));
      for (std::uint64_t i = 0; i < nseg; ++i)
        seg.push_back(r.pod<std::uint64_t>());
      s.seg = std::move(seg);
      s.row = r.vec<std::int32_t>();
      s.mag = r.vec<std::int32_t>();
      s.level = r.vec<std::int32_t>();
      s.var = r.vec<float>();
      s.denom = r.vec<double>();
    } else {
      // --- v1: the PR-3 AoS entry arrays; validate exactly as the v1
      // reader did, then merge each (pair, polarity)'s slice planes into
      // one SoA segment. Rows within a plane ascend, so the union of a
      // polarity's planes (every |q| ≥ 1 weight appears in ≥ 1 plane)
      // sorts back into the dense scan order. -----------------------------
      const std::size_t planes_per_pair =
          2 * static_cast<std::size_t>(slices);
      std::vector<PairRef> pairs;
      pairs.reserve(static_cast<std::size_t>(npairs));
      for (std::uint64_t pi = 0; pi < npairs; ++pi) {
        PairRef pair;
        pair.out = r.pod<std::int64_t>();
        pair.plane0 = static_cast<std::size_t>(r.pod<std::uint64_t>());
        TINYADC_CHECK(pair.out >= 0 && pair.out < layer.cols,
                      "layer " << layer.name << ": plan pair " << pi
                               << " targets output column " << pair.out);
        TINYADC_CHECK(pair.plane0 == static_cast<std::size_t>(pi) *
                                         planes_per_pair,
                      "layer " << layer.name << ": plan pair " << pi
                               << " has corrupt plane offset");
        pairs.push_back(pair);
      }
      const auto noffsets = r.pod<std::uint64_t>();
      TINYADC_CHECK(noffsets == npairs * planes_per_pair + 1,
                    "layer " << layer.name << ": plan offset table holds "
                             << noffsets << " entries, expected "
                             << npairs * planes_per_pair + 1);
      std::vector<std::size_t> offsets;
      offsets.reserve(static_cast<std::size_t>(noffsets));
      for (std::uint64_t i = 0; i < noffsets; ++i) {
        const auto off = r.pod<std::uint64_t>();
        TINYADC_CHECK((i == 0 && off == 0) ||
                          (i > 0 && off >= offsets.back()),
                      "layer " << layer.name
                               << ": plan offsets are not monotone");
        offsets.push_back(static_cast<std::size_t>(off));
      }
      const auto x = r.vec<std::int32_t>();
      const auto level = r.vec<std::int32_t>();
      const auto var = r.vec<float>();
      const auto denom = r.vec<double>();
      const std::size_t entries = offsets.back();
      TINYADC_CHECK(x.size() == entries && level.size() == entries &&
                        var.size() == entries && denom.size() == entries,
                    "layer " << layer.name
                             << ": plan entry arrays disagree with the "
                                "offset table (" << entries << " entries)");
      const std::int32_t max_level = (1 << cfg.cell_bits) - 1;
      for (std::size_t e = 0; e < entries; ++e) {
        TINYADC_CHECK(x[e] >= 0 &&
                          static_cast<std::int64_t>(x[e]) < layer.rows,
                      "layer " << layer.name << ": plan entry " << e
                               << " reads activation row " << x[e]);
        TINYADC_CHECK(level[e] > 0 && level[e] <= max_level,
                      "layer " << layer.name << ": plan entry " << e
                               << " holds cell level " << level[e]);
        TINYADC_CHECK(std::isfinite(var[e]) && var[e] > 0.0F &&
                          std::isfinite(denom[e]) && denom[e] > 0.0,
                      "layer " << layer.name << ": plan entry " << e
                               << " holds non-finite analog factors");
      }

      // AoS → SoA conversion (into owned vectors; the ArrayRef members
      // adopt them below).
      std::vector<std::int64_t> c_out;
      std::vector<std::uint64_t> c_seg;
      std::vector<std::int32_t> c_row, c_mag, c_level;
      std::vector<float> c_var;
      std::vector<double> c_denom;
      c_seg.push_back(0);
      std::vector<std::int32_t> seg_rows;
      for (std::uint64_t pi = 0; pi < npairs; ++pi) {
        c_out.push_back(pairs[static_cast<std::size_t>(pi)].out);
        const std::size_t plane0 =
            pairs[static_cast<std::size_t>(pi)].plane0;
        for (int pol = 0; pol < 2; ++pol) {
          const std::size_t sp0 =
              plane0 + static_cast<std::size_t>(pol) *
                           static_cast<std::size_t>(slices);
          seg_rows.clear();
          for (int sl = 0; sl < slices; ++sl)
            for (std::size_t e = offsets[sp0 + static_cast<std::size_t>(sl)];
                 e < offsets[sp0 + static_cast<std::size_t>(sl) + 1]; ++e)
              seg_rows.push_back(x[e]);
          std::sort(seg_rows.begin(), seg_rows.end());
          seg_rows.erase(std::unique(seg_rows.begin(), seg_rows.end()),
                         seg_rows.end());
          const std::size_t len = seg_rows.size();
          const std::size_t slot0 = c_row.size();
          for (const std::int32_t row : seg_rows) {
            c_row.push_back(row);
            c_mag.push_back(0);
            c_denom.push_back(1.0);
          }
          c_level.resize(c_level.size() +
                             len * static_cast<std::size_t>(slices),
                         0);
          c_var.resize(c_var.size() + len * static_cast<std::size_t>(slices),
                       1.0F);
          const std::size_t lbase = slot0 * static_cast<std::size_t>(slices);
          for (int sl = 0; sl < slices; ++sl) {
            for (std::size_t e = offsets[sp0 + static_cast<std::size_t>(sl)];
                 e < offsets[sp0 + static_cast<std::size_t>(sl) + 1]; ++e) {
              const auto it = std::lower_bound(seg_rows.begin(),
                                               seg_rows.end(), x[e]);
              const auto li = static_cast<std::size_t>(
                  it - seg_rows.begin());
              c_level[lbase + static_cast<std::size_t>(sl) * len + li] =
                  level[e];
              c_var[lbase + static_cast<std::size_t>(sl) * len + li] = var[e];
              c_mag[slot0 + li] += level[e] << (sl * cfg.cell_bits);
              c_denom[slot0 + li] = denom[e];
            }
          }
          c_seg.push_back(c_row.size());
        }
      }
      s.out = std::move(c_out);
      s.seg = std::move(c_seg);
      s.row = std::move(c_row);
      s.mag = std::move(c_mag);
      s.level = std::move(c_level);
      s.var = std::move(c_var);
      s.denom = std::move(c_denom);
    }

    // --- Shared structural validation over the restored streams, for
    // every payload version (v3 spans, v2 copies, v1 conversions alike).
    // Anything inconsistent with the mapping is a CheckError, never UB.
    TINYADC_CHECK(s.out.size() == npairs,
                  "layer " << layer.name << ": plan out table holds "
                           << s.out.size() << " pairs, expected " << npairs);
    for (std::size_t pi = 0; pi < s.out.size(); ++pi)
      TINYADC_CHECK(s.out[pi] >= 0 && s.out[pi] < layer.cols,
                    "layer " << layer.name << ": plan pair " << pi
                             << " targets output column " << s.out[pi]);
    TINYADC_CHECK(s.seg.size() == 2 * npairs + 1,
                  "layer " << layer.name << ": plan segment table holds "
                           << s.seg.size() << " offsets, expected "
                           << 2 * npairs + 1);
    TINYADC_CHECK(s.seg[0] == 0,
                  "layer " << layer.name
                           << ": plan segment table does not start at 0");
    for (std::size_t i = 1; i < s.seg.size(); ++i)
      TINYADC_CHECK(s.seg[i] >= s.seg[i - 1],
                    "layer " << layer.name
                             << ": plan segments are not monotone");
    const auto slots = static_cast<std::size_t>(s.seg[s.seg.size() - 1]);
    TINYADC_CHECK(
        s.row.size() == slots && s.mag.size() == slots &&
            s.denom.size() == slots &&
            s.level.size() == slots * static_cast<std::size_t>(slices) &&
            s.var.size() == slots * static_cast<std::size_t>(slices),
        "layer " << layer.name
                 << ": plan stream lengths disagree with the segment "
                    "table (" << slots << " row slots)");
    const std::int32_t max_level = (1 << cfg.cell_bits) - 1;
    const std::int32_t max_mag =
        static_cast<std::int32_t>(
            (std::int64_t{1} << (slices * cfg.cell_bits)) - 1);
    for (std::size_t k = 0; k + 1 < s.seg.size(); ++k) {
      const auto i0 = static_cast<std::size_t>(s.seg[k]);
      const auto i1 = static_cast<std::size_t>(s.seg[k + 1]);
      const std::size_t len = i1 - i0;
      const std::size_t lbase = i0 * static_cast<std::size_t>(slices);
      for (std::size_t i = 0; i < len; ++i) {
        const std::int32_t row = s.row[i0 + i];
        TINYADC_CHECK(row >= 0 && static_cast<std::int64_t>(row) <
                                      layer.rows,
                      "layer " << layer.name << ": plan slot reads "
                               << "activation row " << row);
        TINYADC_CHECK(i == 0 || s.row[i0 + i - 1] < row,
                      "layer " << layer.name
                               << ": plan segment rows are not ascending");
        const std::int32_t mag = s.mag[i0 + i];
        TINYADC_CHECK(mag > 0 && mag <= max_mag,
                      "layer " << layer.name
                               << ": plan slot holds magnitude " << mag);
        std::int32_t recomposed = 0;
        for (int sl = 0; sl < slices; ++sl) {
          const std::int32_t level =
              s.level[lbase + static_cast<std::size_t>(sl) * len + i];
          TINYADC_CHECK(level >= 0 && level <= max_level,
                        "layer " << layer.name
                                 << ": plan slot holds cell level "
                                 << level);
          const float vf =
              s.var[lbase + static_cast<std::size_t>(sl) * len + i];
          TINYADC_CHECK(std::isfinite(vf) && vf > 0.0F,
                        "layer " << layer.name
                                 << ": non-finite plan variation factor");
          recomposed += level << (sl * cfg.cell_bits);
        }
        TINYADC_CHECK(recomposed == mag,
                      "layer " << layer.name
                               << ": plan slot slices recompose to "
                               << recomposed << ", magnitude says " << mag);
        TINYADC_CHECK(std::isfinite(s.denom[i0 + i]) &&
                          s.denom[i0 + i] > 0.0,
                      "layer " << layer.name
                               << ": non-finite plan IR divisor");
      }
    }
  }
  return std::unique_ptr<AnalogLayerSim>(
      new AnalogLayerSim(layer, config, std::move(s)));
}

std::vector<AnalogLayerSim> make_network_sims(const xbar::MappedNetwork& net,
                                              const MsimConfig& config) {
  std::vector<AnalogLayerSim> sims;
  sims.reserve(net.layers.size());
  for (const auto& layer : net.layers) sims.emplace_back(layer, config);
  return sims;
}

}  // namespace tinyadc::msim
