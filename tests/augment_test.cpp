// Data augmentation: geometric correctness and trainer integration.
#include <gtest/gtest.h>

#include "data/augment.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"
#include "tensor/ops.hpp"

namespace tinyadc::data {
namespace {

Batch one_image_batch() {
  Batch b;
  b.images = Tensor({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  b.labels = {0};
  return b;
}

TEST(Augment, InactiveConfigIsNoop) {
  Batch b = one_image_batch();
  const Tensor before = b.images.clone();
  AugmentConfig cfg{/*max_shift=*/0, /*hflip=*/false, /*noise=*/0.0F};
  Rng rng(1);
  augment_batch(b, cfg, rng);
  EXPECT_TRUE(allclose(b.images, before, 0.0F));
}

TEST(Augment, FlipReversesRows) {
  Batch b = one_image_batch();
  AugmentConfig cfg{0, true, 0.0F};
  // Find a seed whose first bernoulli(0.5) fires.
  Rng rng(3);
  while (true) {
    Rng probe = rng;
    if (probe.bernoulli(0.5)) break;
    rng.next_u64();
  }
  augment_batch(b, cfg, rng);
  EXPECT_FLOAT_EQ(b.images.at4(0, 0, 0, 0), 3.0F);
  EXPECT_FLOAT_EQ(b.images.at4(0, 0, 0, 2), 1.0F);
  EXPECT_FLOAT_EQ(b.images.at4(0, 0, 1, 1), 5.0F);  // center fixed
}

TEST(Augment, ShiftZeroPadsEdges) {
  // Force a deterministic shift by scanning seeds until (dy, dx) = (1, 0).
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng probe(seed);
    const auto dy = static_cast<std::int64_t>(probe.uniform_int(3)) - 1;
    const auto dx = static_cast<std::int64_t>(probe.uniform_int(3)) - 1;
    if (dy == 1 && dx == 0) {
      Batch b = one_image_batch();
      AugmentConfig cfg{1, false, 0.0F};
      Rng rng(seed);
      augment_batch(b, cfg, rng);
      // Shift down by one: top row zero-padded, old top row now row 1.
      EXPECT_FLOAT_EQ(b.images.at4(0, 0, 0, 1), 0.0F);
      EXPECT_FLOAT_EQ(b.images.at4(0, 0, 1, 0), 1.0F);
      EXPECT_FLOAT_EQ(b.images.at4(0, 0, 2, 2), 6.0F);
      return;
    }
  }
  FAIL() << "no seed produced the probed shift";
}

TEST(Augment, NoisePerturbsEveryPixel) {
  Batch b = one_image_batch();
  const Tensor before = b.images.clone();
  AugmentConfig cfg{0, false, 0.5F};
  Rng rng(9);
  augment_batch(b, cfg, rng);
  EXPECT_GT(max_abs_diff(b.images, before), 0.0F);
}

TEST(Augment, PreservesLabelAndShape) {
  const auto pair = make_synthetic([] {
    SyntheticSpec s;
    s.num_classes = 3;
    s.image_size = 8;
    s.train_per_class = 4;
    s.test_per_class = 2;
    return s;
  }());
  BatchIterator it(pair.train, 6, nullptr);
  Batch b;
  ASSERT_TRUE(it.next(b));
  const auto labels = b.labels;
  const auto shape = b.images.shape();
  AugmentConfig cfg{1, true, 0.1F};
  Rng rng(4);
  augment_batch(b, cfg, rng);
  EXPECT_EQ(b.labels, labels);
  EXPECT_EQ(b.images.shape(), shape);
}

TEST(Augment, TrainerIntegrationStillLearns) {
  SyntheticSpec spec;
  spec.num_classes = 4;
  spec.image_size = 8;
  spec.train_per_class = 24;
  spec.test_per_class = 8;
  spec.seed = 81;
  const auto data = make_synthetic(spec);
  nn::ModelConfig mc;
  mc.num_classes = 4;
  mc.image_size = 8;
  mc.width_mult = 0.0625F;
  auto model = nn::resnet18(mc);
  nn::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 16;
  tc.sgd.lr = 0.05F;
  tc.sgd.total_epochs = 8;
  tc.augment = AugmentConfig{1, true, 0.05F};
  nn::Trainer trainer(*model, tc);
  trainer.fit(data.train, data.test);
  EXPECT_GT(trainer.evaluate(data.test), 0.55);
}

}  // namespace
}  // namespace tinyadc::data
