#include "xbar/mapping.hpp"

#include <algorithm>

#include "tensor/ops.hpp"

namespace tinyadc::xbar {

bool CrossbarBlock::all_zero() const {
  return std::all_of(q.begin(), q.end(),
                     [](std::int32_t v) { return v == 0; });
}

std::int64_t MappedLayer::active_blocks() const {
  std::int64_t n = 0;
  for (const auto& b : blocks) n += !b.all_zero();
  return n;
}

std::int64_t MappedLayer::max_active_rows() const {
  std::int64_t worst = 0;
  for (const auto& b : blocks)
    worst = std::max(worst, b.max_col_nonzeros);
  return worst;
}

int MappedLayer::required_adc_bits() const {
  return xbar::required_adc_bits(config.dac_bits, config.cell_bits,
                                 max_active_rows());
}

int MappedLayer::design_adc_bits() const {
  return xbar::design_adc_bits(config, max_active_rows());
}

int design_adc_bits(const MappingConfig& config, std::int64_t active_rows) {
  const int bits =
      required_adc_bits(config.dac_bits, config.cell_bits, active_rows);
  if (config.isaac_encoding && bits > 1) return bits - 1;
  return bits;
}

std::int64_t MappedLayer::dense_blocks() const {
  const std::int64_t grid_rows =
      (rows + config.dims.rows - 1) / config.dims.rows;
  const std::int64_t grid_cols =
      (cols + config.dims.cols - 1) / config.dims.cols;
  return grid_rows * grid_cols;
}

Tensor MappedLayer::demap() const {
  Tensor m({rows, cols});
  float* p = m.data();
  for (const auto& b : blocks) {
    for (std::int64_t r = 0; r < b.rows; ++r)
      for (std::int64_t c = 0; c < b.cols; ++c) {
        const std::int64_t orig_r =
            kept_rows[static_cast<std::size_t>(b.row0 + r)];
        const std::int64_t orig_c =
            kept_cols[static_cast<std::size_t>(b.col0 + c)];
        p[orig_r * cols + orig_c] = dequantize(b.at(r, c), quant);
      }
  }
  return m;
}

StructuralRemoval infer_removal(const Tensor& matrix, std::int64_t remove_rows,
                                std::int64_t remove_cols) {
  TINYADC_CHECK(matrix.ndim() == 2, "infer_removal expects a 2-D matrix");
  const std::int64_t rows = matrix.dim(0);
  const std::int64_t cols = matrix.dim(1);
  const float* m = matrix.data();
  StructuralRemoval removal;
  for (std::int64_t r = 0;
       r < rows && static_cast<std::int64_t>(removal.rows.size()) <
                       remove_rows;
       ++r) {
    bool all_zero = true;
    for (std::int64_t c = 0; c < cols && all_zero; ++c)
      all_zero = (m[r * cols + c] == 0.0F);
    if (all_zero) removal.rows.push_back(r);
  }
  for (std::int64_t c = 0;
       c < cols && static_cast<std::int64_t>(removal.cols.size()) <
                       remove_cols;
       ++c) {
    bool all_zero = true;
    for (std::int64_t r = 0; r < rows && all_zero; ++r)
      all_zero = (m[r * cols + c] == 0.0F);
    if (all_zero) removal.cols.push_back(c);
  }
  return removal;
}

MappedLayer map_matrix(const Tensor& matrix, const std::string& name,
                       const MappingConfig& config,
                       const StructuralRemoval& removal) {
  TINYADC_CHECK(matrix.ndim() == 2, "map_matrix expects a 2-D matrix");
  TINYADC_CHECK(config.dims.rows > 0 && config.dims.cols > 0,
                "invalid crossbar dims");
  MappedLayer layer;
  layer.name = name;
  layer.rows = matrix.dim(0);
  layer.cols = matrix.dim(1);
  layer.config = config;
  layer.quant = fit_signed(max_abs(matrix), config.weight_bits);

  // Reform: compact away exactly the structurally-pruned rows/columns.
  const float* m = matrix.data();
  {
    TINYADC_CHECK(std::is_sorted(removal.rows.begin(), removal.rows.end()) &&
                      std::is_sorted(removal.cols.begin(), removal.cols.end()),
                  "removal lists must be sorted");
    std::size_t cursor = 0;
    for (std::int64_t r = 0; r < layer.rows; ++r) {
      if (cursor < removal.rows.size() && removal.rows[cursor] == r) {
        for (std::int64_t c = 0; c < layer.cols; ++c)
          TINYADC_CHECK(m[r * layer.cols + c] == 0.0F,
                        "removed row " << r << " still holds live weights");
        ++cursor;
        continue;
      }
      layer.kept_rows.push_back(r);
    }
    cursor = 0;
    for (std::int64_t c = 0; c < layer.cols; ++c) {
      if (cursor < removal.cols.size() && removal.cols[cursor] == c) {
        for (std::int64_t r = 0; r < layer.rows; ++r)
          TINYADC_CHECK(m[r * layer.cols + c] == 0.0F,
                        "removed column " << c << " still holds live weights");
        ++cursor;
        continue;
      }
      layer.kept_cols.push_back(c);
    }
  }
  const auto compact_rows = static_cast<std::int64_t>(layer.kept_rows.size());
  const auto compact_cols = static_cast<std::int64_t>(layer.kept_cols.size());
  layer.block_grid_rows =
      (compact_rows + config.dims.rows - 1) / config.dims.rows;
  layer.block_grid_cols =
      (compact_cols + config.dims.cols - 1) / config.dims.cols;

  for (std::int64_t br = 0; br < layer.block_grid_rows; ++br) {
    for (std::int64_t bc = 0; bc < layer.block_grid_cols; ++bc) {
      CrossbarBlock block;
      block.row0 = br * config.dims.rows;
      block.col0 = bc * config.dims.cols;
      block.rows = std::min(config.dims.rows, compact_rows - block.row0);
      block.cols = std::min(config.dims.cols, compact_cols - block.col0);
      block.q.resize(static_cast<std::size_t>(block.rows * block.cols));
      for (std::int64_t r = 0; r < block.rows; ++r) {
        const std::int64_t orig_r =
            layer.kept_rows[static_cast<std::size_t>(block.row0 + r)];
        for (std::int64_t c = 0; c < block.cols; ++c) {
          const std::int64_t orig_c =
              layer.kept_cols[static_cast<std::size_t>(block.col0 + c)];
          block.q[static_cast<std::size_t>(r * block.cols + c)] =
              quantize_signed(m[orig_r * layer.cols + orig_c], layer.quant);
        }
      }
      block.col_nonzeros.assign(static_cast<std::size_t>(block.cols), 0);
      for (std::int64_t c = 0; c < block.cols; ++c) {
        std::int64_t nz = 0;
        for (std::int64_t r = 0; r < block.rows; ++r)
          nz += (block.at(r, c) != 0);
        block.col_nonzeros[static_cast<std::size_t>(c)] = nz;
        block.max_col_nonzeros = std::max(block.max_col_nonzeros, nz);
      }
      layer.blocks.push_back(std::move(block));
    }
  }
  return layer;
}

std::int64_t MappedNetwork::total_arrays() const {
  std::int64_t n = 0;
  for (const auto& l : layers) n += l.dense_blocks() * l.arrays_per_block();
  return n;
}

std::int64_t MappedNetwork::active_arrays() const {
  std::int64_t n = 0;
  for (const auto& l : layers) n += l.active_arrays();
  return n;
}

double MappedNetwork::crossbar_reduction() const {
  const std::int64_t total = total_arrays();
  if (total == 0) return 0.0;
  return 1.0 - static_cast<double>(active_arrays()) /
                   static_cast<double>(total);
}

int MappedNetwork::worst_adc_bits_after_first() const {
  int worst = 0;
  for (std::size_t i = 1; i < layers.size(); ++i)
    worst = std::max(worst, layers[i].required_adc_bits());
  return worst;
}

int MappedNetwork::worst_design_adc_bits_after_first() const {
  int worst = 0;
  for (std::size_t i = 1; i < layers.size(); ++i)
    worst = std::max(worst, layers[i].design_adc_bits());
  return worst;
}

MappedNetwork map_model(nn::Model& model, const MappingConfig& config) {
  MappedNetwork net;
  net.config = config;
  for (const auto& view : model.prunable_views())
    net.layers.push_back(
        map_matrix(view.to_matrix(), view.layer_name, config));
  return net;
}

MappedNetwork map_model(
    nn::Model& model, const MappingConfig& config,
    const std::vector<core::StructuralSelection>& selections) {
  const auto views = model.prunable_views();
  TINYADC_CHECK(selections.size() == views.size(),
                "selection count " << selections.size()
                                   << " != prunable layer count "
                                   << views.size());
  MappedNetwork net;
  net.config = config;
  for (std::size_t i = 0; i < views.size(); ++i) {
    StructuralRemoval removal;
    removal.rows = selections[i].rows;
    removal.cols = selections[i].cols;
    net.layers.push_back(map_matrix(views[i].to_matrix(),
                                    views[i].layer_name, config, removal));
  }
  return net;
}

MappedNetwork map_model(nn::Model& model, const MappingConfig& config,
                        const std::vector<core::LayerPruneSpec>& specs) {
  const auto views = model.prunable_views();
  TINYADC_CHECK(specs.size() == views.size(),
                "spec count " << specs.size() << " != prunable layer count "
                              << views.size());
  MappedNetwork net;
  net.config = config;
  for (std::size_t i = 0; i < views.size(); ++i) {
    const Tensor m = views[i].to_matrix();
    const auto removal =
        infer_removal(m, specs[i].remove_shapes, specs[i].remove_filters);
    net.layers.push_back(
        map_matrix(m, views[i].layer_name, config, removal));
  }
  return net;
}

std::vector<std::int64_t> reference_mvm(const MappedLayer& layer,
                                        const std::vector<std::int32_t>& x) {
  TINYADC_CHECK(static_cast<std::int64_t>(x.size()) == layer.rows,
                "input length " << x.size() << " != layer rows "
                                << layer.rows);
  std::vector<std::int64_t> y(static_cast<std::size_t>(layer.cols), 0);
  for (const auto& b : layer.blocks)
    for (std::int64_t r = 0; r < b.rows; ++r) {
      const std::int64_t orig_r =
          layer.kept_rows[static_cast<std::size_t>(b.row0 + r)];
      const std::int32_t xv = x[static_cast<std::size_t>(orig_r)];
      if (xv == 0) continue;
      for (std::int64_t c = 0; c < b.cols; ++c) {
        const std::int64_t orig_c =
            layer.kept_cols[static_cast<std::size_t>(b.col0 + c)];
        y[static_cast<std::size_t>(orig_c)] +=
            static_cast<std::int64_t>(b.at(r, c)) * xv;
      }
    }
  return y;
}

}  // namespace tinyadc::xbar
