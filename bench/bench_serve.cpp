// Serving-engine throughput bench: sequential per-image evaluation vs the
// dynamically batched InferenceEngine at 1/2/4 worker sessions.
//
// Inner operator parallelism is pinned to 1 thread, so the engine rows
// measure pure request-level parallelism: each worker session runs its
// forwards inline and N workers scale with the machine's cores (on a
// single-core box the engine matches the sequential baseline within
// noise — the analog MVM work is strictly per-image, so batching buys
// concurrency, not FLOP amortization).
//
// All engine runs use deterministic mode, so every row's output digest
// (logits bytes + predicted label, in arrival order) must match the
// sequential baseline byte for byte — the bench exits nonzero on any
// mismatch, making it a determinism check as well as a timing table.
// Rows are emitted in the kernel-sweep JSON schema (threads = workers)
// for tools/bench_compare.
#include <chrono>
#include <cstdio>
#include <cstring>

#include "artifact/artifact.hpp"
#include "bench_util.hpp"
#include "msim/analog_network.hpp"
#include "runtime/parallel.hpp"
#include "serve/loadgen.hpp"
#include "tensor/ops.hpp"

namespace tinyadc::bench {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

/// Copies test example `i` into a standalone (C, H, W) tensor.
Tensor extract_image(const data::Dataset& ds, std::int64_t i) {
  const Tensor& all = ds.images;
  const std::int64_t chw = all.numel() / all.dim(0);
  Tensor img({all.dim(1), all.dim(2), all.dim(3)});
  std::memcpy(img.data(), all.data() + i * chw,
              static_cast<std::size_t>(chw) * sizeof(float));
  return img;
}

int run(int argc, char** argv) {
  const std::int64_t requests = quick_mode() ? 24 : 96;

  data::SyntheticSpec spec = data::tier_by_name("cifar10");
  spec.image_size = 8;
  spec.num_classes = 4;
  spec.train_per_class = 8;
  spec.test_per_class = 8;
  const auto data = data::make_synthetic(spec);

  nn::ModelConfig mc;
  mc.num_classes = spec.num_classes;
  mc.image_size = 8;
  mc.width_mult = 0.125F;
  const auto model = nn::resnet18(mc);
  project_cp_inplace(*model, 8, {32, 32});

  xbar::MappingConfig map_cfg;
  map_cfg.dims = {32, 32};
  const auto net = xbar::map_model(*model, map_cfg);
  msim::AnalogNetwork analog(*model, net, msim::MsimConfig{});
  analog.calibrate(data.train, 8);

  // Request-level parallelism only: forwards run inline per worker.
  runtime::set_thread_count(1);

  // Warm-up pass: fault in the session workspaces and the allocator's
  // arena before any timed row (the first forwards are otherwise ~50%
  // slower and would bias whichever row runs first).
  {
    msim::AnalogSession warm(analog);
    for (std::int64_t i = 0; i < 4; ++i) {
      const Tensor img = extract_image(data.test, i % data.test.size());
      Tensor batch({1, img.dim(0), img.dim(1), img.dim(2)});
      std::memcpy(batch.data(), img.data(),
                  static_cast<std::size_t>(img.numel()) * sizeof(float));
      warm.forward(batch);
    }
  }

  std::printf("serving bench: %lld requests, resnet18 w=0.125, 32x32 xbars\n",
              static_cast<long long>(requests));
  hr(64);
  std::printf("%-24s %10s %10s %9s\n", "path", "ms", "qps", "speedup");
  hr(64);

  std::vector<KernelTiming> rows;

  // Sequential baseline: one image per forward pass, no queue, no batching.
  std::uint64_t seq_digest = serve::fnv1a(nullptr, 0);
  double seq_ms = 0.0;
  {
    msim::AnalogSession session(analog);
    const auto t0 = Clock::now();
    for (std::int64_t i = 0; i < requests; ++i) {
      const Tensor img = extract_image(data.test, i % data.test.size());
      Tensor batch({1, img.dim(0), img.dim(1), img.dim(2)});
      std::memcpy(batch.data(), img.data(),
                  static_cast<std::size_t>(img.numel()) * sizeof(float));
      const Tensor logits = session.forward(batch);
      const std::int64_t label = argmax_range(logits, 0, logits.numel());
      seq_digest = serve::fnv1a(logits.data(),
                                static_cast<std::size_t>(logits.numel()) *
                                    sizeof(float),
                                seq_digest);
      seq_digest = serve::fnv1a(&label, sizeof(label), seq_digest);
    }
    seq_ms = ms_since(t0);
  }
  const double seq_qps = 1000.0 * static_cast<double>(requests) / seq_ms;
  std::printf("%-24s %10.1f %10.1f %8.2fx\n", "sequential (batch 1)", seq_ms,
              seq_qps, 1.0);
  rows.push_back({"serve_seq", 1, seq_ms, true});

  bool all_identical = true;
  for (const int workers : {1, 2, 4}) {
    serve::ServeConfig cfg;
    cfg.workers = workers;
    cfg.max_batch = 8;
    cfg.deterministic = true;
    serve::InferenceEngine engine(analog, cfg);
    serve::LoadgenConfig lc;
    lc.requests = requests;
    lc.max_outstanding = 32;
    const auto t0 = Clock::now();
    const serve::LoadgenReport report =
        serve::run_loadgen(engine, data.test, lc);
    const double ms = ms_since(t0);
    engine.shutdown();
    const bool identical = report.output_digest == seq_digest;
    all_identical = all_identical && identical;
    char name[48];
    std::snprintf(name, sizeof(name), "engine (%d worker%s)", workers,
                  workers == 1 ? "" : "s");
    std::printf("%-24s %10.1f %10.1f %8.2fx%s\n", name, ms,
                1000.0 * static_cast<double>(requests) / ms, seq_ms / ms,
                identical ? "" : "  DIGEST MISMATCH");
    rows.push_back({"serve_engine", workers, ms, identical});
  }
  // Pipeline phase: batch-1 latency on the deep full-width constructors
  // (resnet50 / vgg16, width-scaled to the bench CPU budget like every
  // other bench), sequential vs the stage-parallel pipeline at 1/2/4
  // stages. With cores available, batch-1 latency improves monotonically
  // with the stage count (up to the partition's bottleneck stage); on a
  // single-core box the stage threads time-share and the pipeline matches
  // sequential within noise. Either way the digests are hard-gated: every
  // stage count must reproduce the sequential bytes exactly.
  const std::int64_t pipe_requests = quick_mode() ? 8 : 32;
  for (const std::string arch : {"resnet50", "vgg16"}) {
    nn::ModelConfig pmc;
    pmc.num_classes = spec.num_classes;
    pmc.image_size = 8;
    pmc.width_mult = 0.125F;
    const auto pmodel = nn::build_model(arch, pmc);
    project_cp_inplace(*pmodel, 8, {32, 32});
    const auto pnet = xbar::map_model(*pmodel, map_cfg);
    msim::AnalogNetwork panalog(*pmodel, pnet, msim::MsimConfig{});
    panalog.calibrate(data.train, 8);

    // Sequential batch-1 baseline for this model (also the digest oracle).
    std::uint64_t pseq_digest = serve::fnv1a(nullptr, 0);
    double pseq_ms = 0.0;
    {
      msim::AnalogSession session(panalog);
      // Untimed warm-up forward (workspace + arena faults).
      {
        const Tensor img = extract_image(data.test, 0);
        Tensor batch({1, img.dim(0), img.dim(1), img.dim(2)});
        std::memcpy(batch.data(), img.data(),
                    static_cast<std::size_t>(img.numel()) * sizeof(float));
        session.forward(batch);
      }
      const auto t0 = Clock::now();
      for (std::int64_t i = 0; i < pipe_requests; ++i) {
        const Tensor img = extract_image(data.test, i % data.test.size());
        Tensor batch({1, img.dim(0), img.dim(1), img.dim(2)});
        std::memcpy(batch.data(), img.data(),
                    static_cast<std::size_t>(img.numel()) * sizeof(float));
        const Tensor logits = session.forward(batch);
        const std::int64_t label = argmax_range(logits, 0, logits.numel());
        pseq_digest = serve::fnv1a(
            logits.data(),
            static_cast<std::size_t>(logits.numel()) * sizeof(float),
            pseq_digest);
        pseq_digest = serve::fnv1a(&label, sizeof(label), pseq_digest);
      }
      pseq_ms = ms_since(t0);
    }
    char seq_name[48];
    std::snprintf(seq_name, sizeof(seq_name), "%s seq (batch 1)",
                  arch.c_str());
    std::printf("%-24s %10.1f %10.1f %8.2fx\n", seq_name, pseq_ms,
                1000.0 * static_cast<double>(pipe_requests) / pseq_ms, 1.0);
    char row_name[64];
    std::snprintf(row_name, sizeof(row_name), "serve_pipeline_%s_seq",
                  arch.c_str());
    rows.push_back({row_name, 1, pseq_ms, true});

    for (const int stages : {1, 2, 4}) {
      serve::ServeConfig cfg;
      cfg.pipeline_stages = stages;
      cfg.max_batch = 1;  // batch-1 latency: pipelining is the only lever
      cfg.deterministic = true;
      serve::InferenceEngine engine(panalog, cfg);
      serve::LoadgenConfig lc;
      lc.requests = pipe_requests;
      lc.max_outstanding = 8;
      const auto t0 = Clock::now();
      const serve::LoadgenReport report =
          serve::run_loadgen(engine, data.test, lc);
      const double ms = ms_since(t0);
      engine.shutdown();
      const bool identical = report.output_digest == pseq_digest;
      all_identical = all_identical && identical;
      char name[48];
      std::snprintf(name, sizeof(name), "%s pipeline x%d", arch.c_str(),
                    stages);
      std::printf("%-24s %10.1f %10.1f %8.2fx%s\n", name, ms,
                  1000.0 * static_cast<double>(pipe_requests) / ms,
                  pseq_ms / ms, identical ? "" : "  DIGEST MISMATCH");
      std::snprintf(row_name, sizeof(row_name), "serve_pipeline_%s",
                    arch.c_str());
      rows.push_back({row_name, stages, ms, identical});
    }
  }

  // Cold-start phase: time-to-first-response for a fresh serving process.
  // "inprocess" pays the full pipeline (build + prune-project + map +
  // plan-compile + calibrate); "artifact" deserializes the deployment file
  // and must produce a bit-identical first response without touching the
  // plan compiler or the calibration pass.
  const std::string artifact_path = "bench_serve_coldstart.tadc";
  {
    artifact::ArtifactMeta meta;
    meta.arch = "resnet18";
    meta.model_name = model->name();
    meta.model_config = mc;
    artifact::ArtifactInputs inputs{meta, *model, net, analog, {}, {}};
    artifact::save_artifact(artifact_path, inputs);
  }
  const Tensor first_img = extract_image(data.test, 0);
  const auto first_response_digest = [&](msim::AnalogNetwork& an) {
    serve::ServeConfig cfg;
    cfg.workers = 1;
    serve::InferenceEngine engine(an, cfg);
    auto fut = engine.submit(first_img);
    const serve::InferenceResult r = fut.get();
    engine.shutdown();
    return serve::fnv1a(r.logits.data(), r.logits.size() * sizeof(float));
  };

  double scratch_ms = 0.0, artifact_ms = 0.0, mapped_ms = 0.0;
  std::uint64_t scratch_digest = 0, artifact_digest = 0, mapped_digest = 0;
  std::int64_t scratch_rss = 0, artifact_rss = 0, mapped_rss = 0;
  artifact::LoadPhases mapped_phases;
  {
    const auto t0 = Clock::now();
    const auto cold_model = nn::resnet18(mc);
    project_cp_inplace(*cold_model, 8, {32, 32});
    const auto cold_net = xbar::map_model(*cold_model, map_cfg);
    msim::AnalogNetwork cold(*cold_model, cold_net, msim::MsimConfig{});
    cold.calibrate(data.train, 8);
    scratch_digest = first_response_digest(cold);
    scratch_ms = ms_since(t0);
    scratch_rss = serve::peak_rss_kb();
  }
  {
    const auto plans_before = msim::AnalogLayerSim::plan_compilations();
    const auto calib_before = msim::AnalogNetwork::calibration_runs();
    const auto t0 = Clock::now();
    artifact::Deployment dep = artifact::load_artifact(artifact_path);
    artifact_digest = first_response_digest(*dep.analog);
    artifact_ms = ms_since(t0);
    artifact_rss = serve::peak_rss_kb();
    if (msim::AnalogLayerSim::plan_compilations() != plans_before ||
        msim::AnalogNetwork::calibration_runs() != calib_before) {
      std::fprintf(stderr,
                   "FAIL: artifact cold-start invoked the plan compiler or "
                   "the calibration pass\n");
      return 1;
    }
  }
  {
    // Zero-copy path: mmap the artifact, serve the first response off the
    // mapped spans while the async streamer pages the cold sections in.
    // Same hard gates: bit-identical first response, no compiler, no
    // calibration.
    const auto plans_before = msim::AnalogLayerSim::plan_compilations();
    const auto calib_before = msim::AnalogNetwork::calibration_runs();
    const auto t0 = Clock::now();
    artifact::Deployment dep =
        artifact::load_artifact_mapped(artifact_path, /*async_stream=*/true);
    mapped_digest = first_response_digest(*dep.analog);
    mapped_ms = ms_since(t0);
    mapped_rss = serve::peak_rss_kb();
    dep.finish_streaming();
    mapped_phases = dep.load_phases;
    if (msim::AnalogLayerSim::plan_compilations() != plans_before ||
        msim::AnalogNetwork::calibration_runs() != calib_before) {
      std::fprintf(stderr,
                   "FAIL: mapped cold-start invoked the plan compiler or "
                   "the calibration pass\n");
      return 1;
    }
  }
  const bool cold_identical = scratch_digest == artifact_digest;
  const bool mapped_identical = scratch_digest == mapped_digest;
  all_identical = all_identical && cold_identical && mapped_identical;
  // Peak RSS is table-only (process-wide high-water mark at each phase);
  // the JSON rows keep the fixed kernel-sweep schema for bench_compare.
  std::printf("%-24s %10.1f %10s %9s  peak-rss %lld kb\n",
              "coldstart (scratch)", scratch_ms, "-", "-",
              static_cast<long long>(scratch_rss));
  std::printf("%-24s %10.1f %10s %8.2fx  peak-rss %lld kb%s\n",
              "coldstart (artifact)", artifact_ms, "-",
              scratch_ms / artifact_ms, static_cast<long long>(artifact_rss),
              cold_identical ? "" : "  DIGEST MISMATCH");
  std::printf("%-24s %10.1f %10s %8.2fx  peak-rss %lld kb%s\n",
              "coldstart (mapped)", mapped_ms, "-", scratch_ms / mapped_ms,
              static_cast<long long>(mapped_rss),
              mapped_identical ? "" : "  DIGEST MISMATCH");
  std::printf("%-24s map %.2f  validate %.2f  stream %.2f\n",
              "  mapped load (ms)", mapped_phases.map_ms,
              mapped_phases.validate_ms, mapped_phases.stream_ms);
  rows.push_back({"serve_coldstart_inprocess", 1, scratch_ms, true});
  rows.push_back(
      {"serve_coldstart_artifact", 1, artifact_ms, cold_identical});
  rows.push_back({"serve_coldstart_mapped", 1, mapped_ms, mapped_identical});

  // Fleet phase: two deterministic tenants (weights 2:1) served from the
  // cold-start artifact by one shared 2-worker pool, timed through the
  // open-loop fleet loadgen. Each tenant replays the sequential baseline's
  // request stream, so both per-tenant digests are hard-gated against
  // seq_digest; then tenant "a" hot-swaps to a fresh (mmap) load of the
  // same artifact — the swap must not invoke the plan compiler or the
  // calibration pass, and the post-swap replay must still reproduce the
  // sequential bytes on version 2.
  {
    serve::FleetConfig fc;
    fc.workers = 2;
    serve::FleetServer fleet(fc);
    serve::TenantConfig ta;
    ta.name = "a";
    ta.max_batch = 8;
    ta.deterministic = true;
    ta.weight = 2.0;
    fleet.add_tenant(ta, artifact_path);
    serve::TenantConfig tb = ta;
    tb.name = "b";
    tb.weight = 1.0;
    fleet.add_tenant(tb, artifact_path);

    std::vector<serve::TenantLoadSpec> specs(2);
    specs[0].name = "a";
    specs[0].dataset = &data.test;
    specs[0].requests = requests;
    specs[1] = specs[0];
    specs[1].name = "b";

    auto t0 = Clock::now();
    serve::FleetLoadgenReport report = serve::run_fleet_loadgen(fleet, specs);
    const double fleet_ms = ms_since(t0);
    bool fleet_identical = true;
    for (const auto& t : report.tenants)
      fleet_identical = fleet_identical && t.output_digest == seq_digest;
    std::printf("%-24s %10.1f %10.1f %8.2fx%s\n", "fleet (2 tenants)",
                fleet_ms,
                1000.0 * static_cast<double>(2 * requests) / fleet_ms,
                2.0 * seq_ms / fleet_ms,
                fleet_identical ? "" : "  DIGEST MISMATCH");
    rows.push_back({"serve_fleet", 2, fleet_ms, fleet_identical});

    const auto plans_before = msim::AnalogLayerSim::plan_compilations();
    const auto calib_before = msim::AnalogNetwork::calibration_runs();
    fleet.swap_tenant("a", artifact_path, /*mmap=*/true);
    if (msim::AnalogLayerSim::plan_compilations() != plans_before ||
        msim::AnalogNetwork::calibration_runs() != calib_before) {
      std::fprintf(stderr,
                   "FAIL: fleet hot-swap invoked the plan compiler or the "
                   "calibration pass\n");
      return 1;
    }
    t0 = Clock::now();
    report = serve::run_fleet_loadgen(fleet, specs);
    const double post_ms = ms_since(t0);
    bool post_identical = true;
    for (const auto& t : report.tenants)
      post_identical = post_identical && t.output_digest == seq_digest;
    std::printf("%-24s %10.1f %10.1f %8.2fx%s\n", "fleet (post-swap)",
                post_ms, 1000.0 * static_cast<double>(2 * requests) / post_ms,
                2.0 * seq_ms / post_ms,
                post_identical ? "" : "  DIGEST MISMATCH");
    rows.push_back({"serve_fleet_postswap", 2, post_ms, post_identical});
    all_identical = all_identical && fleet_identical && post_identical;
  }
  std::remove(artifact_path.c_str());

  hr(64);
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: deterministic serving digest differs from the "
                 "sequential baseline\n");
    return 1;
  }
  std::printf("all digests match the sequential baseline\n");

  const std::string json = bench_json_path(argc, argv);
  if (!json.empty() && !write_bench_json(json, "serve", rows)) return 1;
  return 0;
}

}  // namespace
}  // namespace tinyadc::bench

int main(int argc, char** argv) { return tinyadc::bench::run(argc, argv); }
