
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xbar/adc_bits.cpp" "src/xbar/CMakeFiles/tinyadc_xbar.dir/adc_bits.cpp.o" "gcc" "src/xbar/CMakeFiles/tinyadc_xbar.dir/adc_bits.cpp.o.d"
  "/root/repo/src/xbar/mapping.cpp" "src/xbar/CMakeFiles/tinyadc_xbar.dir/mapping.cpp.o" "gcc" "src/xbar/CMakeFiles/tinyadc_xbar.dir/mapping.cpp.o.d"
  "/root/repo/src/xbar/programming.cpp" "src/xbar/CMakeFiles/tinyadc_xbar.dir/programming.cpp.o" "gcc" "src/xbar/CMakeFiles/tinyadc_xbar.dir/programming.cpp.o.d"
  "/root/repo/src/xbar/quant.cpp" "src/xbar/CMakeFiles/tinyadc_xbar.dir/quant.cpp.o" "gcc" "src/xbar/CMakeFiles/tinyadc_xbar.dir/quant.cpp.o.d"
  "/root/repo/src/xbar/reram_cell.cpp" "src/xbar/CMakeFiles/tinyadc_xbar.dir/reram_cell.cpp.o" "gcc" "src/xbar/CMakeFiles/tinyadc_xbar.dir/reram_cell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/tinyadc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tinyadc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/tinyadc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tinyadc_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
