// Loss functions.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace tinyadc::nn {

/// Result of a loss evaluation: scalar loss plus gradient w.r.t. logits.
struct LossResult {
  double loss = 0.0;   ///< mean loss over the batch
  Tensor grad_logits;  ///< ∂loss/∂logits, same shape as the logits
  std::int64_t correct = 0;  ///< top-1 correct predictions in the batch
};

/// Softmax + cross-entropy over (N, K) logits with integer class labels.
/// Numerically stabilized with the per-row max trick; gradient is
/// (softmax − onehot)/N.
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::int64_t>& labels);

/// Top-k accuracy helper: fraction of rows whose label is among the k
/// largest logits.
double topk_accuracy(const Tensor& logits,
                     const std::vector<std::int64_t>& labels, int k);

}  // namespace tinyadc::nn
