#include "msim/analog_mvm.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>

#include "artifact/format.hpp"
#include "runtime/parallel.hpp"
#include "tensor/check.hpp"

namespace tinyadc::msim {

namespace {

std::atomic<std::int64_t> g_plan_compilations{0};

/// The ideal-datapath predicate of build_plan, shared with deserialize so
/// a loaded plan provably dispatches through the same inner loop.
bool plan_ideal_for(const xbar::MappedLayer& layer, const MsimConfig& config,
                    bool has_variation) {
  std::int64_t max_rows = 0;
  for (const auto& b : layer.blocks) max_rows = std::max(max_rows, b.rows);
  const auto& cfg = layer.config;
  const double worst_plane_sum =
      static_cast<double>((1 << cfg.cell_bits) - 1) *
      static_cast<double>((1 << cfg.dac_bits) - 1) *
      static_cast<double>(max_rows);
  return !has_variation && config.ir_drop_alpha <= 0.0 &&
         worst_plane_sum < 9007199254740992.0;  // 2^53
}

}  // namespace

void serialize(const MsimConfig& config, artifact::SectionWriter& w) {
  w.pod(static_cast<std::int32_t>(config.adc_bits_override));
  w.pod(config.variation_sigma);
  w.pod(config.ir_drop_alpha);
  w.pod(config.seed);
  w.pod(static_cast<std::uint8_t>(config.use_plan ? 1 : 0));
}

MsimConfig deserialize_msim_config(artifact::SectionReader& r) {
  MsimConfig config;
  config.adc_bits_override = r.pod<std::int32_t>();
  config.variation_sigma = r.pod<double>();
  config.ir_drop_alpha = r.pod<double>();
  config.seed = r.pod<std::uint64_t>();
  config.use_plan = r.pod<std::uint8_t>() != 0;
  TINYADC_CHECK(config.adc_bits_override >= -1 &&
                    config.adc_bits_override <= 32,
                "implausible ADC override " << config.adc_bits_override);
  TINYADC_CHECK(std::isfinite(config.variation_sigma) &&
                    config.variation_sigma >= 0.0 &&
                    std::isfinite(config.ir_drop_alpha) &&
                    config.ir_drop_alpha >= 0.0,
                "implausible msim non-ideality configuration");
  return config;
}

std::int64_t AnalogLayerSim::plan_compilations() {
  return g_plan_compilations.load(std::memory_order_relaxed);
}

void AnalogLayerSim::check_accumulator_headroom() const {
  const auto& cfg = layer_.config;
  const int slices = cfg.slices();
  const int cycles = dac_cycles(cfg.input_bits, cfg.dac_bits);

  // Overflow guard: the shift-and-add stage accumulates
  //   Σ ± code · 2^(s·cell_bits + t·dac_bits)
  // over 2·slices·cycles conversions per (block, column), and per-column
  // block partials then add across the block-grid rows. The worst shifted
  // code therefore needs adc_bits + max_shift bits, plus headroom for the
  // number of summed terms; anything past 62 bits can silently wrap the
  // int64 accumulator, so refuse the configuration up front.
  const int max_shift =
      (slices - 1) * cfg.cell_bits + (cycles - 1) * cfg.dac_bits;
  const auto terms = static_cast<std::uint64_t>(2 * slices * cycles) *
                     static_cast<std::uint64_t>(
                         std::max<std::int64_t>(1, layer_.block_grid_rows));
  const int headroom = std::bit_width(terms);
  TINYADC_CHECK(
      adc_.bits() + max_shift + headroom <= 62,
      "shift-and-add accumulator overflow: " << adc_.bits() << " ADC bits + "
          << max_shift << " max shift + " << headroom
          << " headroom bits exceed int64 (layer " << layer_.name << ")");
}

AnalogLayerSim::AnalogLayerSim(const xbar::MappedLayer& layer,
                               MsimConfig config)
    : layer_(layer),
      config_(config),
      adc_(config.adc_bits_override >= 0 ? config.adc_bits_override
                                         : layer.required_adc_bits()),
      stats_mu_(std::make_unique<std::mutex>()) {
  const auto& cfg = layer_.config;
  const int slices = cfg.slices();
  check_accumulator_headroom();

  if (config_.variation_sigma > 0.0) {
    Rng rng(config_.seed);
    variation_.reserve(layer_.blocks.size());
    for (const auto& b : layer_.blocks) {
      std::vector<float> v(
          static_cast<std::size_t>(b.rows * b.cols * slices));
      for (auto& f : v)
        f = std::exp(rng.normal(0.0F,
                                static_cast<float>(config_.variation_sigma)));
      variation_.push_back(std::move(v));
    }
  }
  if (config_.use_plan) build_plan();
}

void AnalogLayerSim::build_plan() {
  g_plan_compilations.fetch_add(1, std::memory_order_relaxed);
  const auto& cfg = layer_.config;
  const int slices = cfg.slices();
  TINYADC_CHECK(layer_.rows <= INT32_MAX,
                "layer too tall for packed plan row indices");

  // The ideal (no variation, no IR drop) datapath sums exact integers, so
  // the plan may accumulate in int64 and cast once — bit-identical to the
  // dense path's double accumulation as long as every partial plane sum is
  // exactly representable in a double (< 2^53; true for any physical
  // configuration, checked anyway).
  plan_ideal_ = plan_ideal_for(layer_, config_, !variation_.empty());

  // Entry-count upper bound from the mapping's per-column occupancy census:
  // every active weight owns one differential polarity and at most `slices`
  // non-zero cell levels.
  std::size_t max_entries = 0;
  for (const auto& b : layer_.blocks)
    for (std::int64_t c = 0; c < b.cols; ++c)
      max_entries += static_cast<std::size_t>(b.column_nonzeros(c)) *
                     static_cast<std::size_t>(slices);
  plan_x_.reserve(max_entries);
  plan_level_.reserve(max_entries);
  plan_var_.reserve(max_entries);
  plan_denom_.reserve(max_entries);

  std::size_t npairs = 0;
  for (const auto& b : layer_.blocks)
    npairs += static_cast<std::size_t>(b.cols);
  plan_pairs_.reserve(npairs);
  plan_offsets_.reserve(npairs * 2 * static_cast<std::size_t>(slices) + 1);
  plan_offsets_.push_back(0);

  for (std::size_t bi = 0; bi < layer_.blocks.size(); ++bi) {
    const auto& b = layer_.blocks[bi];
    const float* var = variation_.empty() ? nullptr : variation_[bi].data();
    for (std::int64_t c = 0; c < b.cols; ++c) {
      PairRef pair;
      pair.out = layer_.kept_cols[static_cast<std::size_t>(b.col0 + c)];
      pair.plane0 = plan_offsets_.size() - 1;
      plan_pairs_.push_back(pair);

      // Column load for the IR-drop model, from the live codes (matches the
      // dense path's per-call count; the census is equal at map time but
      // kept separate so a stale census can never skew the analog model).
      double column_load = 0.0;
      if (config_.ir_drop_alpha > 0.0) {
        std::int64_t active = 0;
        for (std::int64_t r = 0; r < b.rows; ++r) active += (b.at(r, c) != 0);
        column_load =
            static_cast<double>(active) / static_cast<double>(b.rows);
      }

      // Planes in dense-scan order: polarity (+ then −), then slice; the
      // entries of one plane are the active rows ascending — exactly the
      // operands (and order) of the dense inner loop.
      for (int polarity : {+1, -1}) {
        for (int s = 0; s < slices; ++s) {
          for (std::int64_t r = 0; r < b.rows; ++r) {
            const std::int32_t q = b.at(r, c);
            if (q == 0 || (q > 0 ? 1 : -1) != polarity) continue;
            const auto sl = xbar::slice_magnitude(std::abs(q), cfg.cell_bits,
                                                  slices);
            const std::int32_t level = sl[static_cast<std::size_t>(s)];
            if (level == 0) continue;
            plan_x_.push_back(static_cast<std::int32_t>(layer_.kept_rows[
                static_cast<std::size_t>(b.row0 + r)]));
            plan_level_.push_back(level);
            plan_var_.push_back(
                var == nullptr
                    ? 1.0F
                    : var[static_cast<std::size_t>((r * b.cols + c) * slices +
                                                   s)]);
            double denom = 1.0;
            if (config_.ir_drop_alpha > 0.0) {
              const double depth = static_cast<double>(r + 1) /
                                   static_cast<double>(b.rows);
              denom = 1.0 + config_.ir_drop_alpha * depth * column_load;
            }
            plan_denom_.push_back(denom);
          }
          plan_offsets_.push_back(plan_x_.size());
        }
      }
    }
  }
}

std::vector<std::int64_t> AnalogLayerSim::mvm(
    const std::vector<std::int32_t>& x) {
  return config_.use_plan ? mvm_packed(x) : mvm_dense(x);
}

std::vector<std::int64_t> AnalogLayerSim::mvm_packed(
    const std::vector<std::int32_t>& x) {
  TINYADC_CHECK(static_cast<std::int64_t>(x.size()) == layer_.rows,
                "input length " << x.size() << " != layer rows "
                                << layer_.rows);
  const auto& cfg = layer_.config;
  const int slices = cfg.slices();
  const int cycles = dac_cycles(cfg.input_bits, cfg.dac_bits);
  const std::size_t n = x.size();

  // DAC chunks flattened into one contiguous buffer: chunk t of row r sits
  // at [t*n + r], so plan entries index a cycle's chunks directly by their
  // packed row index.
  const std::int32_t mask = (1 << cfg.dac_bits) - 1;
  std::vector<std::int32_t> chunks(static_cast<std::size_t>(cycles) * n);
  for (std::size_t r = 0; r < n; ++r) {
    std::int32_t rest = x[r];
    TINYADC_CHECK(rest >= 0 && rest < (std::int64_t{1} << cfg.input_bits),
                  "activation code " << x[r] << " exceeds " << cfg.input_bits
                                     << " bits");
    for (int t = 0; t < cycles; ++t) {
      chunks[static_cast<std::size_t>(t) * n + r] = rest & mask;
      rest >>= cfg.dac_bits;
    }
  }

  const auto npairs = static_cast<std::int64_t>(plan_pairs_.size());
  std::vector<std::int64_t> pair_acc(plan_pairs_.size(), 0);
  std::vector<AdcCounters> pair_counters(plan_pairs_.size());

  runtime::parallel_for(0, npairs, 1, [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t pi = p0; pi < p1; ++pi) {
      const PairRef& pair = plan_pairs_[static_cast<std::size_t>(pi)];
      AdcCounters& counters = pair_counters[static_cast<std::size_t>(pi)];
      const std::size_t* off = plan_offsets_.data() + pair.plane0;
      std::int64_t acc = 0;
      for (int polarity : {+1, -1}) {
        for (int s = 0; s < slices; ++s, ++off) {
          const std::size_t e0 = off[0], e1 = off[1];
          for (int t = 0; t < cycles; ++t) {
            const std::int32_t* ch =
                chunks.data() + static_cast<std::size_t>(t) * n;
            double analog;
            if (plan_ideal_) {
              // Ideal wires and cells: every operand is a small integer, so
              // the sum is computed in int64 and is exactly the double the
              // dense path accumulates (each partial fits a double).
              std::int64_t isum = 0;
              for (std::size_t e = e0; e < e1; ++e)
                isum += static_cast<std::int64_t>(plan_level_[e]) *
                        ch[plan_x_[e]];
              analog = static_cast<double>(isum);
            } else {
              analog = 0.0;
              for (std::size_t e = e0; e < e1; ++e) {
                double contrib = static_cast<double>(plan_level_[e]) *
                                 ch[plan_x_[e]];
                contrib *= plan_var_[e];
                contrib /= plan_denom_[e];
                analog += contrib;
              }
            }
            const std::int64_t code = adc_.convert(analog, counters);
            acc += polarity *
                   (code << (s * cfg.cell_bits + t * cfg.dac_bits));
          }
        }
      }
      pair_acc[static_cast<std::size_t>(pi)] = acc;
    }
  });

  std::vector<std::int64_t> y(static_cast<std::size_t>(layer_.cols), 0);
  AdcCounters call_counters;
  for (std::size_t pi = 0; pi < plan_pairs_.size(); ++pi) {
    y[static_cast<std::size_t>(plan_pairs_[pi].out)] += pair_acc[pi];
    call_counters.conversions += pair_counters[pi].conversions;
    call_counters.clip_events += pair_counters[pi].clip_events;
  }
  merge_stats(call_counters, cycles);
  return y;
}

std::vector<std::int64_t> AnalogLayerSim::mvm_dense(
    const std::vector<std::int32_t>& x) {
  TINYADC_CHECK(static_cast<std::int64_t>(x.size()) == layer_.rows,
                "input length " << x.size() << " != layer rows "
                                << layer_.rows);
  const auto& cfg = layer_.config;
  const int slices = cfg.slices();
  const int cycles = dac_cycles(cfg.input_bits, cfg.dac_bits);

  // Pre-split every activation into DAC chunks: chunk[t][row].
  std::vector<std::vector<std::int32_t>> chunk(
      static_cast<std::size_t>(cycles),
      std::vector<std::int32_t>(x.size()));
  for (std::size_t r = 0; r < x.size(); ++r) {
    const auto ch = dac_chunks(x[r], cfg.input_bits, cfg.dac_bits);
    for (int t = 0; t < cycles; ++t)
      chunk[static_cast<std::size_t>(t)][r] =
          ch[static_cast<std::size_t>(t)];
  }

  // Each (block, logical column) pair converts independently — in hardware
  // all crossbar arrays fire in parallel. Accumulate every pair's digital
  // sum and ADC counters separately, then merge serially in a fixed order
  // so y and the statistics are bit-identical at any thread count.
  std::vector<std::pair<std::size_t, std::int64_t>> pairs;  // (block, col)
  for (std::size_t bi = 0; bi < layer_.blocks.size(); ++bi)
    for (std::int64_t c = 0; c < layer_.blocks[bi].cols; ++c)
      pairs.emplace_back(bi, c);
  std::vector<std::int64_t> pair_acc(pairs.size(), 0);
  std::vector<AdcCounters> pair_counters(pairs.size());

  runtime::parallel_for(
      0, static_cast<std::int64_t>(pairs.size()), 1,
      [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t pi = p0; pi < p1; ++pi) {
          const auto [bi, c] = pairs[static_cast<std::size_t>(pi)];
          const auto& b = layer_.blocks[bi];
          const float* var =
              variation_.empty() ? nullptr : variation_[bi].data();
          AdcCounters& counters = pair_counters[static_cast<std::size_t>(pi)];
          // Decompose the column once: per-row slice values by polarity.
          // sliced[r*slices + s] holds the s-th slice of |q(r,c)|; sign[r]
          // its polarity.
          std::vector<std::int32_t> sliced(
              static_cast<std::size_t>(b.rows * slices), 0);
          std::vector<int> sign(static_cast<std::size_t>(b.rows), 0);
          for (std::int64_t r = 0; r < b.rows; ++r) {
            const std::int32_t q = b.at(r, c);
            if (q == 0) continue;
            sign[static_cast<std::size_t>(r)] = q > 0 ? 1 : -1;
            const auto sl = xbar::slice_magnitude(std::abs(q), cfg.cell_bits,
                                                  slices);
            for (int s = 0; s < slices; ++s)
              sliced[static_cast<std::size_t>(r * slices + s)] =
                  sl[static_cast<std::size_t>(s)];
          }
          // Column load for the IR-drop model: the fraction of this
          // column's wordlines that actually inject current.
          double column_load = 0.0;
          if (config_.ir_drop_alpha > 0.0) {
            std::int64_t active = 0;
            for (std::int64_t r = 0; r < b.rows; ++r)
              active += (sign[static_cast<std::size_t>(r)] != 0);
            column_load = static_cast<double>(active) /
                          static_cast<double>(b.rows);
          }
          std::int64_t acc = 0;
          for (int polarity : {+1, -1}) {
            for (int s = 0; s < slices; ++s) {
              for (int t = 0; t < cycles; ++t) {
                double analog = 0.0;
                const auto& ch = chunk[static_cast<std::size_t>(t)];
                for (std::int64_t r = 0; r < b.rows; ++r) {
                  if (sign[static_cast<std::size_t>(r)] != polarity) continue;
                  const std::int32_t level =
                      sliced[static_cast<std::size_t>(r * slices + s)];
                  if (level == 0) continue;
                  const std::int64_t orig_r = layer_.kept_rows[
                      static_cast<std::size_t>(b.row0 + r)];
                  double contrib = static_cast<double>(level) *
                                   ch[static_cast<std::size_t>(orig_r)];
                  if (var != nullptr)
                    contrib *= var[static_cast<std::size_t>(
                        (r * b.cols + c) * slices + s)];
                  if (config_.ir_drop_alpha > 0.0) {
                    const double depth = static_cast<double>(r + 1) /
                                         static_cast<double>(b.rows);
                    contrib /=
                        1.0 + config_.ir_drop_alpha * depth * column_load;
                  }
                  analog += contrib;
                }
                const std::int64_t code = adc_.convert(analog, counters);
                acc += polarity *
                       (code << (s * cfg.cell_bits + t * cfg.dac_bits));
              }
            }
          }
          pair_acc[static_cast<std::size_t>(pi)] = acc;
        }
      });

  std::vector<std::int64_t> y(static_cast<std::size_t>(layer_.cols), 0);
  AdcCounters call_counters;
  for (std::size_t pi = 0; pi < pairs.size(); ++pi) {
    const auto [bi, c] = pairs[pi];
    const auto& b = layer_.blocks[bi];
    y[static_cast<std::size_t>(
        layer_.kept_cols[static_cast<std::size_t>(b.col0 + c)])] +=
        pair_acc[pi];
    call_counters.conversions += pair_counters[pi].conversions;
    call_counters.clip_events += pair_counters[pi].clip_events;
  }
  merge_stats(call_counters, cycles);
  return y;
}

void AnalogLayerSim::merge_stats(const AdcCounters& counters, int cycles) {
  std::lock_guard<std::mutex> lk(*stats_mu_);
  adc_.absorb(counters);
  stats_.dac_cycles += cycles;
  stats_.adc_conversions = adc_.conversions();
  stats_.adc_clip_events = adc_.clip_events();
}

std::vector<float> AnalogLayerSim::mvm_real(
    const std::vector<float>& x_real, const xbar::QuantParams& x_quant) {
  std::vector<std::int32_t> codes(x_real.size());
  for (std::size_t i = 0; i < x_real.size(); ++i)
    codes[i] = xbar::quantize_unsigned(x_real[i], x_quant);
  const auto y = mvm(codes);
  const float scale = x_quant.scale * layer_.quant.scale;
  std::vector<float> out(y.size());
  for (std::size_t i = 0; i < y.size(); ++i)
    out[i] = static_cast<float>(y[i]) * scale;
  return out;
}

std::vector<float> AnalogLayerSim::mvm_real_signed(
    const std::vector<float>& x_real, const xbar::QuantParams& x_quant) {
  std::vector<float> pos(x_real.size()), neg(x_real.size());
  for (std::size_t i = 0; i < x_real.size(); ++i) {
    pos[i] = x_real[i] > 0.0F ? x_real[i] : 0.0F;
    neg[i] = x_real[i] < 0.0F ? -x_real[i] : 0.0F;
  }
  auto yp = mvm_real(pos, x_quant);
  const auto yn = mvm_real(neg, x_quant);
  for (std::size_t i = 0; i < yp.size(); ++i) yp[i] -= yn[i];
  return yp;
}

void AnalogLayerSim::reset_stats() {
  stats_ = MsimStats{};
  adc_.reset_stats();
}

MsimStats AnalogLayerSim::stats_snapshot() const {
  std::lock_guard<std::mutex> lk(*stats_mu_);
  return stats_;
}

AnalogLayerSim::AnalogLayerSim(const xbar::MappedLayer& layer,
                               MsimConfig config, RestoredState&& restored)
    : layer_(layer),
      config_(config),
      adc_(restored.adc_bits),
      variation_(std::move(restored.variation)),
      plan_pairs_(std::move(restored.pairs)),
      plan_offsets_(std::move(restored.offsets)),
      plan_x_(std::move(restored.x)),
      plan_level_(std::move(restored.level)),
      plan_var_(std::move(restored.var)),
      plan_denom_(std::move(restored.denom)),
      plan_ideal_(restored.plan_ideal),
      stats_mu_(std::make_unique<std::mutex>()) {
  check_accumulator_headroom();
}

void AnalogLayerSim::serialize(artifact::SectionWriter& w) const {
  w.pod(static_cast<std::int32_t>(adc_.bits()));
  w.pod(static_cast<std::uint8_t>(plan_ideal_ ? 1 : 0));
  w.pod(static_cast<std::uint64_t>(variation_.size()));
  for (const auto& v : variation_) w.vec(v);
  w.pod(static_cast<std::uint8_t>(config_.use_plan ? 1 : 0));
  if (!config_.use_plan) return;
  w.pod(static_cast<std::uint64_t>(plan_pairs_.size()));
  for (const auto& pair : plan_pairs_) {
    w.pod(pair.out);
    w.pod(static_cast<std::uint64_t>(pair.plane0));
  }
  w.pod(static_cast<std::uint64_t>(plan_offsets_.size()));
  for (const auto off : plan_offsets_) w.pod(static_cast<std::uint64_t>(off));
  w.vec(plan_x_);
  w.vec(plan_level_);
  w.vec(plan_var_);
  w.vec(plan_denom_);
}

std::unique_ptr<AnalogLayerSim> AnalogLayerSim::deserialize(
    const xbar::MappedLayer& layer, MsimConfig config,
    artifact::SectionReader& r) {
  const auto& cfg = layer.config;
  const int slices = cfg.slices();
  RestoredState s;

  s.adc_bits = r.pod<std::int32_t>();
  const int expected_bits = config.adc_bits_override >= 0
                                ? config.adc_bits_override
                                : layer.required_adc_bits();
  TINYADC_CHECK(s.adc_bits == expected_bits,
                "layer " << layer.name << ": artifact ADC has " << s.adc_bits
                         << " bits, configuration requires " << expected_bits);
  s.plan_ideal = r.pod<std::uint8_t>() != 0;

  const auto nvar = r.pod<std::uint64_t>();
  TINYADC_CHECK((nvar > 0) == (config.variation_sigma > 0.0),
                "layer " << layer.name
                         << ": variation state disagrees with "
                            "variation_sigma");
  TINYADC_CHECK(nvar == 0 || nvar == layer.blocks.size(),
                "layer " << layer.name << ": " << nvar
                         << " variation blocks, mapping has "
                         << layer.blocks.size());
  s.variation.reserve(static_cast<std::size_t>(nvar));
  for (std::uint64_t i = 0; i < nvar; ++i) {
    auto v = r.vec<float>();
    const auto& b = layer.blocks[static_cast<std::size_t>(i)];
    TINYADC_CHECK(v.size() == static_cast<std::size_t>(b.rows * b.cols *
                                                       slices),
                  "layer " << layer.name << ": variation block " << i
                           << " holds " << v.size() << " draws, expected "
                           << b.rows * b.cols * slices);
    for (const float f : v)
      TINYADC_CHECK(std::isfinite(f) && f > 0.0F,
                    "layer " << layer.name
                             << ": non-finite variation factor");
    s.variation.push_back(std::move(v));
  }

  const bool has_plan = r.pod<std::uint8_t>() != 0;
  TINYADC_CHECK(has_plan == config.use_plan,
                "layer " << layer.name
                         << ": artifact plan presence disagrees with "
                            "MsimConfig::use_plan");
  if (has_plan) {
    TINYADC_CHECK(s.plan_ideal ==
                      plan_ideal_for(layer, config, nvar > 0),
                  "layer " << layer.name
                           << ": stored ideal-path flag disagrees with the "
                              "configuration");
    std::size_t npairs_expected = 0;
    for (const auto& b : layer.blocks)
      npairs_expected += static_cast<std::size_t>(b.cols);
    const auto npairs = r.pod<std::uint64_t>();
    TINYADC_CHECK(npairs == npairs_expected,
                  "layer " << layer.name << ": plan has " << npairs
                           << " conversion pairs, mapping needs "
                           << npairs_expected);
    const std::size_t planes_per_pair = 2 * static_cast<std::size_t>(slices);
    s.pairs.reserve(static_cast<std::size_t>(npairs));
    for (std::uint64_t pi = 0; pi < npairs; ++pi) {
      PairRef pair;
      pair.out = r.pod<std::int64_t>();
      pair.plane0 = static_cast<std::size_t>(r.pod<std::uint64_t>());
      TINYADC_CHECK(pair.out >= 0 && pair.out < layer.cols,
                    "layer " << layer.name << ": plan pair " << pi
                             << " targets output column " << pair.out);
      TINYADC_CHECK(pair.plane0 == static_cast<std::size_t>(pi) *
                                       planes_per_pair,
                    "layer " << layer.name << ": plan pair " << pi
                             << " has corrupt plane offset");
      s.pairs.push_back(pair);
    }
    const auto noffsets = r.pod<std::uint64_t>();
    TINYADC_CHECK(noffsets == npairs * planes_per_pair + 1,
                  "layer " << layer.name << ": plan offset table holds "
                           << noffsets << " entries, expected "
                           << npairs * planes_per_pair + 1);
    s.offsets.reserve(static_cast<std::size_t>(noffsets));
    for (std::uint64_t i = 0; i < noffsets; ++i) {
      const auto off = r.pod<std::uint64_t>();
      TINYADC_CHECK((i == 0 && off == 0) ||
                        (i > 0 && off >= s.offsets.back()),
                    "layer " << layer.name
                             << ": plan offsets are not monotone");
      s.offsets.push_back(static_cast<std::size_t>(off));
    }
    s.x = r.vec<std::int32_t>();
    s.level = r.vec<std::int32_t>();
    s.var = r.vec<float>();
    s.denom = r.vec<double>();
    const std::size_t entries = s.offsets.back();
    TINYADC_CHECK(s.x.size() == entries && s.level.size() == entries &&
                      s.var.size() == entries && s.denom.size() == entries,
                  "layer " << layer.name
                           << ": plan entry arrays disagree with the offset "
                              "table ("
                           << entries << " entries)");
    const std::int32_t max_level = (1 << cfg.cell_bits) - 1;
    for (std::size_t e = 0; e < entries; ++e) {
      TINYADC_CHECK(s.x[e] >= 0 &&
                        static_cast<std::int64_t>(s.x[e]) < layer.rows,
                    "layer " << layer.name << ": plan entry " << e
                             << " reads activation row " << s.x[e]);
      TINYADC_CHECK(s.level[e] > 0 && s.level[e] <= max_level,
                    "layer " << layer.name << ": plan entry " << e
                             << " holds cell level " << s.level[e]);
      TINYADC_CHECK(std::isfinite(s.var[e]) && s.var[e] > 0.0F &&
                        std::isfinite(s.denom[e]) && s.denom[e] > 0.0,
                    "layer " << layer.name << ": plan entry " << e
                             << " holds non-finite analog factors");
    }
  }
  return std::unique_ptr<AnalogLayerSim>(
      new AnalogLayerSim(layer, config, std::move(s)));
}

std::vector<AnalogLayerSim> make_network_sims(const xbar::MappedNetwork& net,
                                              const MsimConfig& config) {
  std::vector<AnalogLayerSim> sims;
  sims.reserve(net.layers.size());
  for (const auto& layer : net.layers) sims.emplace_back(layer, config);
  return sims;
}

}  // namespace tinyadc::msim
