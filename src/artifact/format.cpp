#include "artifact/format.hpp"

#include <algorithm>
#include <fstream>

#include "artifact/mmap_file.hpp"
#include "tensor/check.hpp"

namespace tinyadc::artifact {

namespace {

// Minimum alignment the *reader* enforces on section offsets — kept at the
// original 8 so pre-v3 files (written with 8-byte section alignment) still
// validate. The writer now lays sections out at kPayloadAlign (64).
constexpr std::size_t kAlign = 8;
constexpr std::uint64_t kMaxStringBytes = 1ULL << 20;
constexpr std::uint64_t kMaxTensorRank = 8;
constexpr std::uint64_t kMaxTensorExtent = 1ULL << 32;

std::size_t align_up(std::size_t n) {
  return (n + kPayloadAlign - 1) / kPayloadAlign * kPayloadAlign;
}

}  // namespace

// --- SectionWriter ---------------------------------------------------------

void SectionWriter::str(const std::string& s) {
  TINYADC_CHECK(s.size() < kMaxStringBytes,
                "refusing to serialize a " << s.size() << "-byte string");
  pod(static_cast<std::uint64_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void SectionWriter::vec_bool(const std::vector<bool>& v) {
  pod(static_cast<std::uint64_t>(v.size()));
  for (const bool b : v) pod(static_cast<std::uint8_t>(b ? 1 : 0));
}

void SectionWriter::tensor(const Tensor& t) {
  pod(static_cast<std::uint32_t>(t.ndim()));
  for (const auto d : t.shape()) pod(d);
  const auto* p = reinterpret_cast<const char*>(t.data());
  buf_.insert(buf_.end(), p,
              p + static_cast<std::size_t>(t.numel()) * sizeof(float));
}

// --- SectionReader ---------------------------------------------------------

SectionReader::SectionReader(const char* data, std::size_t size,
                             std::string name, std::uint64_t abs_offset,
                             std::shared_ptr<const void> keeper)
    : data_(data),
      size_(size),
      name_(std::move(name)),
      abs_offset_(abs_offset),
      keeper_(std::move(keeper)) {}

void SectionReader::need(std::size_t n, const char* what) const {
  TINYADC_CHECK(n <= size_ - pos_, "section '" << name_ << "' truncated: "
                                               << what << " needs " << n
                                               << " bytes, " << (size_ - pos_)
                                               << " remain");
}

std::size_t SectionReader::checked_count(std::size_t elem_size,
                                         const char* what) {
  const auto count = pod<std::uint64_t>();
  TINYADC_CHECK(elem_size == 0 || count <= (size_ - pos_) / elem_size,
                "section '" << name_ << "': implausible " << what
                            << " count " << count << " (only "
                            << (size_ - pos_) << " bytes remain)");
  return static_cast<std::size_t>(count);
}

std::size_t SectionReader::aligned_count(std::size_t elem_size,
                                         std::size_t elem_align,
                                         const char* what) {
  const std::size_t count = checked_count(elem_size, what);
  // Skip the writer's zero pad up to the next 64-byte *file* boundary.
  const std::uint64_t file_pos = abs_offset_ + pos_;
  const auto pad = static_cast<std::size_t>(
      (kPayloadAlign - file_pos % kPayloadAlign) % kPayloadAlign);
  need(pad, "alignment padding");
  for (std::size_t i = 0; i < pad; ++i)
    TINYADC_CHECK(data_[pos_ + i] == '\0',
                  "section '" << name_ << "': non-zero byte in the " << what
                              << " alignment padding (corrupt or misaligned "
                                 "payload)");
  pos_ += pad;
  // Re-validate the element budget against what the pad consumed.
  TINYADC_CHECK(elem_size == 0 || count <= (size_ - pos_) / elem_size,
                "section '" << name_ << "': " << what << " count " << count
                            << " overruns the payload after alignment");
  if (keeper_ != nullptr) {
    // Mapped mode: the span pointer must genuinely be aligned — a tampered
    // section offset (8- but not 64-aligned) must fail here, cleanly,
    // rather than ever handing out a misaligned view.
    const auto addr = reinterpret_cast<std::uintptr_t>(data_ + pos_);
    TINYADC_CHECK(addr % kPayloadAlign == 0 && addr % elem_align == 0,
                  "section '" << name_ << "': " << what
                              << " payload is not 64-byte aligned in the "
                                 "mapping (corrupt section offset?)");
  }
  return count;
}

std::string SectionReader::str() {
  const auto n = pod<std::uint64_t>();
  TINYADC_CHECK(n < kMaxStringBytes,
                "section '" << name_ << "': implausible string length " << n);
  need(static_cast<std::size_t>(n), "string");
  std::string s(data_ + pos_, static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

std::vector<bool> SectionReader::vec_bool() {
  const std::size_t count = checked_count(1, "bool array");
  std::vector<bool> v(count);
  for (std::size_t i = 0; i < count; ++i) v[i] = pod<std::uint8_t>() != 0;
  return v;
}

Tensor SectionReader::tensor() {
  const auto ndim = pod<std::uint32_t>();
  TINYADC_CHECK(ndim <= kMaxTensorRank,
                "section '" << name_ << "': implausible tensor rank " << ndim);
  Shape shape(ndim);
  std::uint64_t elems = 1;
  for (auto& d : shape) {
    d = pod<std::int64_t>();
    TINYADC_CHECK(d >= 0 && static_cast<std::uint64_t>(d) < kMaxTensorExtent,
                  "section '" << name_ << "': implausible tensor extent "
                              << d);
    // Overflow-safe product: reject before it can wrap or exhaust memory.
    TINYADC_CHECK(d == 0 || elems <= (size_ / sizeof(float)) /
                                         static_cast<std::uint64_t>(d),
                  "section '" << name_
                              << "': tensor dimension product overflows the "
                                 "section payload");
    elems *= static_cast<std::uint64_t>(d);
  }
  need(static_cast<std::size_t>(elems) * sizeof(float), "tensor payload");
  Tensor t(shape);
  std::memcpy(t.data(), data_ + pos_,
              static_cast<std::size_t>(elems) * sizeof(float));
  pos_ += static_cast<std::size_t>(elems) * sizeof(float);
  return t;
}

// --- ArtifactWriter --------------------------------------------------------

ArtifactWriter::ArtifactWriter(std::string path) : path_(std::move(path)) {}

SectionWriter& ArtifactWriter::section(const std::string& tag) {
  TINYADC_CHECK(!tag.empty() && tag.size() <= 8,
                "section tag '" << tag << "' must be 1-8 bytes");
  for (auto& [name, writer] : sections_)
    if (name == tag) return writer;
  TINYADC_CHECK(sections_.size() < kMaxSections, "too many artifact sections");
  sections_.emplace_back(tag, SectionWriter{});
  return sections_.back().second;
}

void ArtifactWriter::finish() {
  TINYADC_CHECK(!finished_, "ArtifactWriter::finish called twice");
  finished_ = true;

  const std::size_t header = 16 + sections_.size() * 24;  // 24 B per entry
  std::ofstream os(path_, std::ios::binary);
  TINYADC_CHECK(os.is_open(), "cannot open " << path_ << " for writing");
  os.write(kMagic, sizeof(kMagic));
  const std::uint32_t version = kFormatVersion;
  const auto count = static_cast<std::uint32_t>(sections_.size());
  os.write(reinterpret_cast<const char*>(&version), sizeof(version));
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));

  // Table: offsets assigned in order, each aligned up to kPayloadAlign so
  // mapped section payloads (and the vec_aligned arrays inside them, whose
  // padding is defined relative to the file) start on 64-byte boundaries.
  std::size_t cursor = align_up(header);
  for (const auto& [tag, writer] : sections_) {
    char tag8[8] = {};
    std::memcpy(tag8, tag.data(), tag.size());
    os.write(tag8, sizeof(tag8));
    const auto offset = static_cast<std::uint64_t>(cursor);
    const auto length = static_cast<std::uint64_t>(writer.bytes().size());
    os.write(reinterpret_cast<const char*>(&offset), sizeof(offset));
    os.write(reinterpret_cast<const char*>(&length), sizeof(length));
    cursor = align_up(cursor + writer.bytes().size());
  }

  std::size_t written = header;
  const char pad[kPayloadAlign] = {};
  for (const auto& [tag, writer] : sections_) {
    const std::size_t aligned = align_up(written);
    os.write(pad, static_cast<std::streamsize>(aligned - written));
    os.write(writer.bytes().data(),
             static_cast<std::streamsize>(writer.bytes().size()));
    written = aligned + writer.bytes().size();
  }
  os.flush();
  TINYADC_CHECK(static_cast<bool>(os), "write failure on " << path_);
}

// --- ArtifactFile ----------------------------------------------------------

ArtifactFile::ArtifactFile(const std::string& path) : path_(path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  TINYADC_CHECK(is.is_open(), "cannot open " << path << " for reading");
  const std::streamoff end = is.tellg();
  TINYADC_CHECK(end >= 16, "artifact " << path << " too small ("
                                       << end << " bytes) for a header");
  data_.resize(static_cast<std::size_t>(end));
  is.seekg(0);
  is.read(data_.data(), end);
  TINYADC_CHECK(static_cast<bool>(is), "read failure on " << path);
  parse(data_.data(), data_.size());
}

ArtifactFile::ArtifactFile(std::shared_ptr<MappedFile> map)
    : map_(std::move(map)), path_(map_->path()) {
  TINYADC_CHECK(map_->size() >= 16, "artifact " << path_ << " too small ("
                                                << map_->size()
                                                << " bytes) for a header");
  parse(map_->data(), map_->size());
}

void ArtifactFile::parse(const char* base, std::size_t size) {
  base_ = base;
  size_ = size;
  TINYADC_CHECK(std::memcmp(base, kMagic, sizeof(kMagic)) == 0,
                "bad artifact magic in " << path_);
  std::memcpy(&version_, base + 8, sizeof(version_));
  TINYADC_CHECK(version_ == kFormatVersion,
                "unsupported artifact version " << version_ << " in " << path_
                                                << " (reader supports "
                                                << kFormatVersion << ")");
  std::uint32_t count = 0;
  std::memcpy(&count, base + 12, sizeof(count));
  TINYADC_CHECK(count <= kMaxSections,
                "implausible section count " << count << " in " << path_);
  const std::uint64_t header = 16 + std::uint64_t{count} * 24;
  TINYADC_CHECK(header <= size,
                "artifact " << path_ << " truncated inside the section table");

  entries_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const char* e = base + 16 + std::size_t{i} * 24;
    Entry entry;
    const char* tag_end = std::find(e, e + 8, '\0');
    entry.tag.assign(e, tag_end);
    std::memcpy(&entry.offset, e + 8, sizeof(entry.offset));
    std::memcpy(&entry.length, e + 16, sizeof(entry.length));
    TINYADC_CHECK(!entry.tag.empty(),
                  "empty section tag at table index " << i << " in " << path_);
    TINYADC_CHECK(entry.offset % kAlign == 0,
                  "section '" << entry.tag << "' offset " << entry.offset
                              << " is not 8-byte aligned in " << path_);
    TINYADC_CHECK(entry.offset >= header && entry.offset <= size &&
                      entry.length <= size - entry.offset,
                  "section '" << entry.tag << "' ["
                              << entry.offset << ", +" << entry.length
                              << ") overruns " << path_ << " ("
                              << size << " bytes)");
    for (const auto& prev : entries_)
      TINYADC_CHECK(prev.tag != entry.tag,
                    "duplicate section tag '" << entry.tag << "' in "
                                              << path_);
    entries_.push_back(std::move(entry));
  }
}

const ArtifactFile::Entry& ArtifactFile::find(const std::string& tag) const {
  for (const auto& e : entries_)
    if (e.tag == tag) return e;
  TINYADC_CHECK(false, "artifact " << path_ << " has no '" << tag
                                   << "' section");
  std::abort();  // unreachable (TINYADC_CHECK throws)
}

bool ArtifactFile::has(const std::string& tag) const {
  for (const auto& e : entries_)
    if (e.tag == tag) return true;
  return false;
}

SectionReader ArtifactFile::section(const std::string& tag) const {
  const Entry& e = find(tag);
  return SectionReader(base_ + e.offset, static_cast<std::size_t>(e.length),
                       tag, e.offset,
                       map_ ? std::shared_ptr<const void>(map_) : nullptr);
}

std::pair<std::uint64_t, std::uint64_t> ArtifactFile::extent(
    const std::string& tag) const {
  const Entry& e = find(tag);
  return {e.offset, e.length};
}

std::pair<const char*, std::size_t> ArtifactFile::raw(
    const std::string& tag) const {
  const Entry& e = find(tag);
  return {base_ + e.offset, static_cast<std::size_t>(e.length)};
}

std::vector<std::string> ArtifactFile::tags() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.tag);
  return out;
}

}  // namespace tinyadc::artifact
