// Reproduces Fig. 4: power (a) and area (b) of per-design accelerators
// running each network/dataset pair at its best CP rate from Table I,
// normalized to the non-pruned design.
//
// Hardware cost depends only on the sparsity *structure*, so this bench
// applies the CP magnitude projection directly to full-width models (the
// paper's layer shapes) and prices the resulting accelerators — no training
// required. Expected shape (paper): larger CP rates (easier tiers) save
// more; up to 62 % power / 45 % area on CIFAR-10, down to 37 % / 22 % on
// ImageNet.
#include "hw/cost_model.hpp"

#include "bench_util.hpp"

namespace {

using namespace tinyadc;

struct Config {
  const char* label;
  const char* net;
  std::int64_t classes;
  std::int64_t cp_rate;  // the paper's bold (best) Table I rate
};

}  // namespace

int main() {
  const Config configs[] = {
      {"cifar10-resnet18", "resnet18", 10, 64},
      {"cifar10-vgg16", "vgg16", 10, 32},
      {"cifar100-resnet18", "resnet18", 100, 32},
      {"cifar100-resnet50", "resnet50", 100, 32},
      {"cifar100-vgg16", "vgg16", 100, 16},
      {"imagenet-resnet18", "resnet18", 1000, 4},
  };
  const xbar::MappingConfig map_cfg = bench::paper_mapping();
  const hw::CostConstants constants;

  std::printf("=== Fig. 4: power & area of CP-only designs (normalized to "
              "non-pruned) ===\n\n");
  std::printf("%-20s %8s %9s %13s %12s\n", "design", "CP rate", "ADC bits",
              "power (norm)", "area (norm)");
  bench::hr(66);
  for (const auto& cfg : configs) {
    auto dense_model = bench::full_width_model(cfg.net, cfg.classes);
    const auto dense_net = xbar::map_model(*dense_model, map_cfg);
    const auto dense = hw::build_accelerator(dense_net, constants);

    auto pruned_model = bench::full_width_model(cfg.net, cfg.classes);
    bench::project_cp_inplace(*pruned_model, cfg.cp_rate, map_cfg.dims,
                              /*include_linear=*/true);
    const auto pruned_net = xbar::map_model(*pruned_model, map_cfg);
    const auto pruned = hw::build_accelerator(pruned_net, constants);

    std::printf("%-20s %7lldx %9d %13.3f %12.3f\n", cfg.label,
                static_cast<long long>(cfg.cp_rate),
                pruned_net.worst_design_adc_bits_after_first(),
                pruned.power_vs(dense), pruned.area_vs(dense));
    std::fflush(stdout);
  }
  std::printf("\n(paper: 0.38–0.63 power, 0.55–0.78 area across the same "
              "configs — larger CP rate => larger saving)\n");
  return 0;
}
