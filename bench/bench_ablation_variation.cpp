// Ablation E11: conductance process variation (the paper "conservatively
// considers a 10 % process variation during evaluations"). Sweeps the
// lognormal variation sigma and measures the end-to-end accuracy of the
// simulated mixed-signal chip, dense vs CP-pruned.
//
// Expected shape: at the paper's 10 % both chips hold close to their
// ideal-component accuracy (nearest-code ADC rounding absorbs sub-LSB
// perturbations); accuracy collapses only at several times that. The
// CP-pruned chip is no more variation-sensitive than the dense one (fewer
// active cells per column sum).
#include "fault/evaluate.hpp"
#include "msim/analog_network.hpp"

#include "bench_util.hpp"

namespace {

using namespace tinyadc;

}  // namespace

int main() {
  std::printf("=== Ablation E11: conductance variation vs chip accuracy "
              "===\n(cifar10-like tier, ResNet-18, 16x16 crossbars)\n\n");
  auto data = bench::bench_dataset("cifar10");
  const core::CrossbarDims dims{16, 16};
  xbar::MappingConfig map_cfg;
  map_cfg.dims = dims;

  // Dense twin.
  auto dense = bench::bench_model("resnet18", data.train.num_classes);
  {
    auto cfg = bench::bench_pipeline(dims);
    nn::Trainer trainer(*dense, cfg.pretrain);
    trainer.fit(data.train, data.test);
  }
  // 4x CP-pruned twin.
  auto tiny = bench::bench_model("resnet18", data.train.num_classes);
  {
    auto cfg = bench::bench_pipeline(dims);
    auto specs = core::uniform_cp_specs(*tiny, 4, dims);
    core::run_pipeline(*tiny, data.train, data.test, specs, cfg);
  }

  auto dense_net = xbar::map_model(*dense, map_cfg);
  auto tiny_net = xbar::map_model(*tiny, map_cfg);

  // Trim the test set: analog inference is ~1000x slower than float.
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < 40; i += 1) idx.push_back(i);
  const auto test = data.test.subset(idx);

  std::printf("%-12s %14s %16s\n", "sigma", "dense chip", "TinyADC chip");
  bench::hr(46);
  for (double sigma : {0.0, 0.05, 0.10, 0.30}) {
    msim::MsimConfig mcfg;
    mcfg.variation_sigma = sigma;
    msim::AnalogNetwork dense_chip(*dense, dense_net, mcfg);
    dense_chip.calibrate(data.train);
    const double dense_acc = dense_chip.evaluate(test);
    msim::AnalogNetwork tiny_chip(*tiny, tiny_net, mcfg);
    tiny_chip.calibrate(data.train);
    const double tiny_acc = tiny_chip.evaluate(test);
    std::printf("%-12.2f %13.1f%% %15.1f%%\n", sigma, 100.0 * dense_acc,
                100.0 * tiny_acc);
    std::fflush(stdout);
  }
  std::printf("\n(expected: both chips stable through the paper's 10%% "
              "condition, degradation only at several times it)\n");

  // Second sweep: bitline IR drop. CP pruning lightens every bitline's
  // current load, so the pruned chip should tolerate more wire resistance.
  std::printf("\n%-12s %14s %16s\n", "IR alpha", "dense chip",
              "TinyADC chip");
  bench::hr(46);
  for (double alpha : {0.0, 0.2, 0.5, 1.0}) {
    msim::MsimConfig mcfg;
    mcfg.ir_drop_alpha = alpha;
    msim::AnalogNetwork dense_chip(*dense, dense_net, mcfg);
    dense_chip.calibrate(data.train);
    const double dense_acc = dense_chip.evaluate(test);
    msim::AnalogNetwork tiny_chip(*tiny, tiny_net, mcfg);
    tiny_chip.calibrate(data.train);
    const double tiny_acc = tiny_chip.evaluate(test);
    std::printf("%-12.2f %13.1f%% %15.1f%%\n", alpha, 100.0 * dense_acc,
                100.0 * tiny_acc);
    std::fflush(stdout);
  }
  std::printf("\n(expected: the CP-pruned chip holds accuracy to larger "
              "alpha — lighter bitline loads)\n");
  return 0;
}
