#include "hw/throughput.hpp"

#include <iomanip>
#include <sstream>

#include "tensor/check.hpp"

namespace tinyadc::hw {

std::vector<ThroughputRow> reference_rows() {
  return {
      {"DaDianNao", 63.46, 286.4, false},
      {"TPU", 40.88, 301.91, false},
      {"PUMA", 338.76, 497.25, false},
      {"ISAAC", 478.95, 627.5, false},
  };
}

ThroughputRow tinyadc_row(const CostConstants& constants, int baseline_bits,
                          int tinyadc_bits, AdcReinvestment mode) {
  TINYADC_CHECK(tinyadc_bits >= 1 && tinyadc_bits <= baseline_bits,
                "tinyadc_bits must be in [1, baseline_bits]");
  const TileCost base = tile_cost(constants, baseline_bits);
  TileCost tiny = tile_cost(constants, tinyadc_bits);

  double throughput_boost = 1.0;
  if (mode == AdcReinvestment::kIsoPower) {
    // Raise the small ADC's sample rate until it burns the 8-bit ADC's
    // power (power ∝ rate). Peak GOPs scale with ADC conversion rate.
    throughput_boost = base.adc_power_w / tiny.adc_power_w;
    tiny.power_w += base.adc_power_w - tiny.adc_power_w;
    tiny.adc_power_w = base.adc_power_w;
  }

  const auto& isaac = reference_rows().back();
  TINYADC_CHECK(isaac.architecture == "ISAAC", "reference row order changed");
  ThroughputRow row;
  row.architecture = "TinyADC(ISAAC)";
  row.derived = true;
  row.gops_per_s_mm2 =
      isaac.gops_per_s_mm2 * throughput_boost * (base.area_mm2 / tiny.area_mm2);
  row.gops_per_w =
      isaac.gops_per_w * throughput_boost * (base.power_w / tiny.power_w);
  return row;
}

std::string to_table(const std::vector<ThroughputRow>& rows) {
  std::ostringstream os;
  os << std::left << std::setw(18) << "Architecture" << std::right
     << std::setw(16) << "GOPs/(s*mm2)" << std::setw(12) << "GOPs/W" << "\n";
  for (const auto& r : rows) {
    os << std::left << std::setw(18) << r.architecture << std::right
       << std::setw(16) << std::fixed << std::setprecision(2)
       << r.gops_per_s_mm2 << std::setw(12) << std::setprecision(2)
       << r.gops_per_w << (r.derived ? "   (derived)" : "") << "\n";
  }
  return os.str();
}

}  // namespace tinyadc::hw
