// ADC behavioural model.
//
// In an ISAAC-style design the bitline current of one crossbar column is an
// integer multiple of the unit LSB current (cell level × input chunk), so an
// ideal b-bit ADC reproduces the column sum exactly iff the sum fits in
// 2^b − 1 codes — precisely the Eq. 1 sizing rule. This model rounds an
// analog (possibly variation-perturbed) sum to the nearest code and
// saturates at full scale, counting clip events so under-provisioned ADCs
// (the E9 ablation) are observable.
#pragma once

#include <cstdint>

namespace tinyadc::msim {

/// Plain conversion counters for lock-free accumulation: parallel simulation
/// code converts against worker-local counters and merges them into the
/// owning Adc afterwards (see AnalogLayerSim::mvm), so the shared counters
/// are only touched serially.
struct AdcCounters {
  std::int64_t conversions = 0;
  std::int64_t clip_events = 0;
};

/// Behavioural ADC: rounds to the nearest integer code in [0, 2^bits − 1].
class Adc {
 public:
  /// `bits == 0` constructs a degenerate ADC that always outputs 0 (used
  /// for fully-pruned columns).
  explicit Adc(int bits);

  /// Converts an analog column sum expressed in LSB units.
  std::int64_t convert(double analog_sum) const;

  /// Conversion against caller-owned counters: touches no Adc state, so
  /// concurrent calls are safe. Merge the counters back with absorb().
  std::int64_t convert(double analog_sum, AdcCounters& counters) const;

  /// Adds externally accumulated counters into this ADC's statistics.
  void absorb(const AdcCounters& counters);

  /// Resolution in bits.
  int bits() const { return bits_; }
  /// Largest representable code.
  std::int64_t full_scale() const { return full_scale_; }
  /// Conversions performed since construction/reset.
  std::int64_t conversions() const { return conversions_; }
  /// Conversions that saturated (information was lost).
  std::int64_t clip_events() const { return clip_events_; }
  /// Zeroes the statistics counters.
  void reset_stats();

 private:
  int bits_;
  std::int64_t full_scale_;
  mutable std::int64_t conversions_ = 0;
  mutable std::int64_t clip_events_ = 0;
};

}  // namespace tinyadc::msim
