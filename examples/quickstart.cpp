// Quickstart: the TinyADC flow in ~60 lines.
//
// Trains a scaled-down ResNet-18 on a synthetic CIFAR-10-like task, applies
// 8× column proportional pruning with ADMM, and reports what the paper's
// abstract promises: the same accuracy with a much smaller ADC.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/pruner.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "xbar/mapping.hpp"

int main() {
  using namespace tinyadc;

  // 1. A synthetic stand-in for CIFAR-10 (see DESIGN.md §2) and a
  //    width-scaled ResNet-18 that trains on a laptop in seconds.
  data::SyntheticSpec dspec = data::cifar10_like();
  dspec.image_size = 8;
  dspec.train_per_class = 32;
  dspec.test_per_class = 10;
  const auto data = data::make_synthetic(dspec);

  nn::ModelConfig mcfg;
  mcfg.num_classes = dspec.num_classes;
  mcfg.image_size = dspec.image_size;
  mcfg.width_mult = 0.125F;
  auto model = nn::resnet18(mcfg);
  std::printf("model: %s with %lld parameters\n", model->name().c_str(),
              static_cast<long long>(model->param_count()));

  // 2. The TinyADC pipeline: pretrain → ADMM with the column proportional
  //    constraint → hard prune → masked retrain. 8× CP pruning on 16-row
  //    crossbars leaves 2 non-zero weights per crossbar column.
  core::PipelineConfig pcfg;
  pcfg.xbar = {16, 16};
  pcfg.pretrain.epochs = 10;
  pcfg.pretrain.batch_size = 32;
  pcfg.pretrain.sgd.lr = 0.05F;
  pcfg.pretrain.sgd.total_epochs = 10;
  pcfg.admm.epochs = 6;
  pcfg.admm.batch_size = 32;
  pcfg.admm.sgd.lr = 0.02F;
  pcfg.retrain.epochs = 6;
  pcfg.retrain.batch_size = 32;
  pcfg.retrain.sgd.lr = 0.01F;
  pcfg.verbose = true;

  const std::int64_t cp_rate = 8;
  core::SpecOptions opts;
  opts.include_linear = true;  // shrink the classifier's ADCs too
  auto specs = core::uniform_cp_specs(*model, cp_rate, pcfg.xbar, opts);
  const auto result =
      core::run_pipeline(*model, data.train, data.test, specs, pcfg);

  // 3. Map onto ReRAM crossbars and read off the ADC requirement.
  xbar::MappingConfig map_cfg;
  map_cfg.dims = pcfg.xbar;
  const auto net = xbar::map_model(*model, map_cfg);

  std::printf("\n=== TinyADC quickstart summary ===\n");
  std::printf("baseline accuracy        : %.1f%%\n",
              100.0 * result.baseline_accuracy);
  std::printf("pruned accuracy (%lldx CP): %.1f%%\n",
              static_cast<long long>(cp_rate), 100.0 * result.final_accuracy);
  std::printf("overall pruning rate     : %.1fx\n",
              result.report.pruning_rate());
  const int dense_bits = xbar::design_adc_bits(map_cfg, map_cfg.dims.rows);
  const int tiny_bits = net.worst_design_adc_bits_after_first();
  std::printf("ADC resolution           : %d bits -> %d bits (-%d bits)\n",
              dense_bits, tiny_bits, dense_bits - tiny_bits);
  std::printf("\nper-layer sparsity:\n%s",
              core::to_table(result.report).c_str());
  return 0;
}
