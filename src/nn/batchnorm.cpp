#include "nn/batchnorm.hpp"

#include <cmath>

namespace tinyadc::nn {

BatchNorm2d::BatchNorm2d(std::string name, std::int64_t channels, float eps,
                         float momentum)
    : Layer(std::move(name)),
      channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_(Layer::name() + ".gamma", Tensor::ones({channels}),
             /*apply_decay=*/false),
      beta_(Layer::name() + ".beta", Tensor::zeros({channels}),
            /*apply_decay=*/false),
      running_mean_(Tensor::zeros({channels})),
      running_var_(Tensor::ones({channels})) {
  TINYADC_CHECK(channels > 0, "invalid BatchNorm2d channel count");
}

std::vector<Param*> BatchNorm2d::params() { return {&gamma_, &beta_}; }

Tensor BatchNorm2d::forward(const Tensor& input, bool training) {
  TINYADC_CHECK(input.ndim() == 4 && input.dim(1) == channels_,
                "BatchNorm2d " << name() << ": bad input "
                               << shape_to_string(input.shape()));
  const std::int64_t n = input.dim(0);
  const std::int64_t hw = input.dim(2) * input.dim(3);
  const std::int64_t count = n * hw;
  input_shape_ = input.shape();

  Tensor mean({channels_});
  Tensor var({channels_});
  if (training) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      double s = 0.0;
      for (std::int64_t b = 0; b < n; ++b) {
        const float* p = input.data() + (b * channels_ + c) * hw;
        for (std::int64_t i = 0; i < hw; ++i) s += p[i];
      }
      const double m = s / static_cast<double>(count);
      double v = 0.0;
      for (std::int64_t b = 0; b < n; ++b) {
        const float* p = input.data() + (b * channels_ + c) * hw;
        for (std::int64_t i = 0; i < hw; ++i) {
          const double d = p[i] - m;
          v += d * d;
        }
      }
      mean.at(c) = static_cast<float>(m);
      var.at(c) = static_cast<float>(v / static_cast<double>(count));
      running_mean_.at(c) =
          (1.0F - momentum_) * running_mean_.at(c) + momentum_ * mean.at(c);
      running_var_.at(c) =
          (1.0F - momentum_) * running_var_.at(c) + momentum_ * var.at(c);
    }
  } else {
    mean.copy_from(running_mean_);
    var.copy_from(running_var_);
  }

  Tensor output(input_shape_);
  Tensor inv_std({channels_});
  for (std::int64_t c = 0; c < channels_; ++c)
    inv_std.at(c) = 1.0F / std::sqrt(var.at(c) + eps_);

  Tensor xhat = training ? Tensor(input_shape_) : Tensor();
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float m = mean.at(c);
      const float is = inv_std.at(c);
      const float g = gamma_.value.at(c);
      const float bt = beta_.value.at(c);
      const float* in = input.data() + (b * channels_ + c) * hw;
      float* out = output.data() + (b * channels_ + c) * hw;
      float* xh = training ? xhat.data() + (b * channels_ + c) * hw : nullptr;
      for (std::int64_t i = 0; i < hw; ++i) {
        const float normalized = (in[i] - m) * is;
        if (xh) xh[i] = normalized;
        out[i] = g * normalized + bt;
      }
    }
  }
  if (training) {
    xhat_ = std::move(xhat);
    inv_std_ = std::move(inv_std);
  }
  return output;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  TINYADC_CHECK(xhat_.numel() > 0,
                "BatchNorm2d " << name()
                               << ": backward without cached training forward");
  const std::int64_t n = input_shape_[0];
  const std::int64_t hw = input_shape_[2] * input_shape_[3];
  const std::int64_t count = n * hw;
  Tensor grad_input(input_shape_);

  for (std::int64_t c = 0; c < channels_; ++c) {
    // Reductions Σg and Σ(g·x̂) over the channel.
    double sum_g = 0.0;
    double sum_gx = 0.0;
    for (std::int64_t b = 0; b < n; ++b) {
      const float* g = grad_output.data() + (b * channels_ + c) * hw;
      const float* xh = xhat_.data() + (b * channels_ + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        sum_g += g[i];
        sum_gx += static_cast<double>(g[i]) * xh[i];
      }
    }
    gamma_.grad.at(c) += static_cast<float>(sum_gx);
    beta_.grad.at(c) += static_cast<float>(sum_g);

    const float gam = gamma_.value.at(c);
    const float is = inv_std_.at(c);
    const float mean_g = static_cast<float>(sum_g / count);
    const float mean_gx = static_cast<float>(sum_gx / count);
    for (std::int64_t b = 0; b < n; ++b) {
      const float* g = grad_output.data() + (b * channels_ + c) * hw;
      const float* xh = xhat_.data() + (b * channels_ + c) * hw;
      float* gi = grad_input.data() + (b * channels_ + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i)
        gi[i] = gam * is * (g[i] - mean_g - xh[i] * mean_gx);
    }
  }
  xhat_ = Tensor();
  return grad_input;
}


LayerPtr BatchNorm2d::clone() const {
  auto copy = std::make_unique<BatchNorm2d>(name(), channels_, eps_, momentum_);
  copy->gamma_.value.copy_from(gamma_.value);
  copy->beta_.value.copy_from(beta_.value);
  copy->running_mean_.copy_from(running_mean_);
  copy->running_var_.copy_from(running_var_);
  return copy;
}

}  // namespace tinyadc::nn
