file(REMOVE_RECURSE
  "CMakeFiles/tinyadc_core.dir/admm.cpp.o"
  "CMakeFiles/tinyadc_core.dir/admm.cpp.o.d"
  "CMakeFiles/tinyadc_core.dir/group_lasso.cpp.o"
  "CMakeFiles/tinyadc_core.dir/group_lasso.cpp.o.d"
  "CMakeFiles/tinyadc_core.dir/projection.cpp.o"
  "CMakeFiles/tinyadc_core.dir/projection.cpp.o.d"
  "CMakeFiles/tinyadc_core.dir/prune_spec.cpp.o"
  "CMakeFiles/tinyadc_core.dir/prune_spec.cpp.o.d"
  "CMakeFiles/tinyadc_core.dir/pruner.cpp.o"
  "CMakeFiles/tinyadc_core.dir/pruner.cpp.o.d"
  "CMakeFiles/tinyadc_core.dir/stats.cpp.o"
  "CMakeFiles/tinyadc_core.dir/stats.cpp.o.d"
  "libtinyadc_core.a"
  "libtinyadc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinyadc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
