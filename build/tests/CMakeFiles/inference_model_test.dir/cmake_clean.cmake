file(REMOVE_RECURSE
  "CMakeFiles/inference_model_test.dir/inference_model_test.cpp.o"
  "CMakeFiles/inference_model_test.dir/inference_model_test.cpp.o.d"
  "inference_model_test"
  "inference_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inference_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
