#include "im2col.hpp"

#include "runtime/parallel.hpp"

namespace tinyadc {

namespace {

void check_geometry(const ConvGeometry& g) {
  TINYADC_CHECK(g.in_channels > 0 && g.in_h > 0 && g.in_w > 0,
                "invalid input dims");
  TINYADC_CHECK(g.kernel_h > 0 && g.kernel_w > 0, "invalid kernel dims");
  TINYADC_CHECK(g.stride > 0, "stride must be positive");
  TINYADC_CHECK(g.padding >= 0, "padding must be non-negative");
  TINYADC_CHECK(g.out_h() > 0 && g.out_w() > 0,
                "kernel larger than padded input");
}

}  // namespace

Tensor im2col(const Tensor& input, const ConvGeometry& g) {
  check_geometry(g);
  TINYADC_CHECK(input.ndim() == 3 && input.dim(0) == g.in_channels &&
                    input.dim(1) == g.in_h && input.dim(2) == g.in_w,
                "im2col input " << shape_to_string(input.shape())
                                << " does not match geometry");
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  Tensor cols({g.patch_rows(), g.patch_cols()});
  const float* in = input.data();
  float* out = cols.data();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_channels; ++c) {
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        float* orow = out + row * oh * ow;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride - g.padding + kh;
          if (iy < 0 || iy >= g.in_h) {
            for (std::int64_t x = 0; x < ow; ++x) orow[y * ow + x] = 0.0F;
            continue;
          }
          const float* irow = in + (c * g.in_h + iy) * g.in_w;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t ix = x * g.stride - g.padding + kw;
            orow[y * ow + x] =
                (ix >= 0 && ix < g.in_w) ? irow[ix] : 0.0F;
          }
        }
      }
    }
  }
  return cols;
}

Tensor col2im(const Tensor& cols, const ConvGeometry& g) {
  check_geometry(g);
  TINYADC_CHECK(cols.ndim() == 2 && cols.dim(0) == g.patch_rows() &&
                    cols.dim(1) == g.patch_cols(),
                "col2im input " << shape_to_string(cols.shape())
                                << " does not match geometry");
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  Tensor image({g.in_channels, g.in_h, g.in_w});
  const float* in = cols.data();
  float* out = image.data();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_channels; ++c) {
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* irow = in + row * oh * ow;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride - g.padding + kh;
          if (iy < 0 || iy >= g.in_h) continue;
          float* orow = out + (c * g.in_h + iy) * g.in_w;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t ix = x * g.stride - g.padding + kw;
            if (ix >= 0 && ix < g.in_w) orow[ix] += irow[y * ow + x];
          }
        }
      }
    }
  }
  return image;
}

void im2col_batch(const float* input, std::int64_t batch,
                  const ConvGeometry& g, float* out) {
  check_geometry(g);
  TINYADC_CHECK(input != nullptr && out != nullptr, "im2col_batch null data");
  TINYADC_CHECK(batch > 0, "im2col_batch batch must be positive");
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t p = oh * ow;
  const std::int64_t bp = batch * p;
  const std::int64_t per_image = g.in_channels * g.in_h * g.in_w;
  // Each patch row (c, kh, kw) owns one disjoint output row across all
  // samples; the fill order within a row never depends on the partition.
  const std::int64_t grain =
      std::max<std::int64_t>(1, 16384 / std::max<std::int64_t>(1, bp));
  runtime::parallel_for(
      0, g.patch_rows(), grain, [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t row = r0; row < r1; ++row) {
          const std::int64_t kw = row % g.kernel_w;
          const std::int64_t kh = (row / g.kernel_w) % g.kernel_h;
          const std::int64_t c = row / (g.kernel_w * g.kernel_h);
          float* orow = out + row * bp;
          for (std::int64_t n = 0; n < batch; ++n) {
            const float* in = input + n * per_image;
            float* odst = orow + n * p;
            for (std::int64_t y = 0; y < oh; ++y) {
              const std::int64_t iy = y * g.stride - g.padding + kh;
              if (iy < 0 || iy >= g.in_h) {
                for (std::int64_t x = 0; x < ow; ++x) odst[y * ow + x] = 0.0F;
                continue;
              }
              const float* irow = in + (c * g.in_h + iy) * g.in_w;
              for (std::int64_t x = 0; x < ow; ++x) {
                const std::int64_t ix = x * g.stride - g.padding + kw;
                odst[y * ow + x] = (ix >= 0 && ix < g.in_w) ? irow[ix] : 0.0F;
              }
            }
          }
        }
      });
}

void col2im_batch(const float* cols, std::int64_t batch, const ConvGeometry& g,
                  float* images) {
  check_geometry(g);
  TINYADC_CHECK(cols != nullptr && images != nullptr, "col2im_batch null data");
  TINYADC_CHECK(batch > 0, "col2im_batch batch must be positive");
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t p = oh * ow;
  const std::int64_t bp = batch * p;
  const std::int64_t per_image = g.in_channels * g.in_h * g.in_w;
  // Samples write disjoint images; the scatter within a sample is serial.
  runtime::parallel_for(0, batch, 1, [&](std::int64_t n0, std::int64_t n1) {
    for (std::int64_t n = n0; n < n1; ++n) {
      float* out = images + n * per_image;
      std::fill(out, out + per_image, 0.0F);
      std::int64_t row = 0;
      for (std::int64_t c = 0; c < g.in_channels; ++c) {
        for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
          for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
            const float* irow = cols + row * bp + n * p;
            for (std::int64_t y = 0; y < oh; ++y) {
              const std::int64_t iy = y * g.stride - g.padding + kh;
              if (iy < 0 || iy >= g.in_h) continue;
              float* orow = out + (c * g.in_h + iy) * g.in_w;
              for (std::int64_t x = 0; x < ow; ++x) {
                const std::int64_t ix = x * g.stride - g.padding + kw;
                if (ix >= 0 && ix < g.in_w) orow[ix] += irow[y * ow + x];
              }
            }
          }
        }
      }
    }
  });
}

}  // namespace tinyadc
