# Empty dependencies file for adc_bits_test.
# This may be replaced when dependencies are built.
