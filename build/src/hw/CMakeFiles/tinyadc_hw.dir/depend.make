# Empty dependencies file for tinyadc_hw.
# This may be replaced when dependencies are built.
