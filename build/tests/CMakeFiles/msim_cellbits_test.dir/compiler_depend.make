# Empty compiler generated dependencies file for msim_cellbits_test.
# This may be replaced when dependencies are built.
