// One-time weight-programming cost of a mapped layer/network.
//
// Loading a model into ReRAM means SET-programming every non-zero cell to
// its MLC level (cells rest at G_off after a bulk RESET, so level-0 cells —
// i.e. every pruned weight's cells — cost nothing). Programming runs
// row-parallel per array (one wordline's cells program together, bounded by
// the slowest cell in the row), which is how the paper-scale chips are
// actually written. CP pruning therefore shrinks programming time and
// energy along with everything else: most wordlines hold only G_off cells.
#pragma once

#include "xbar/mapping.hpp"
#include "xbar/reram_cell.hpp"

namespace tinyadc::xbar {

/// Programming-cost knobs.
struct ProgrammingConfig {
  VteamParams device{};
  double program_voltage = -1.5;  ///< SET pulse amplitude (< v_on)
  double compliance_current = 1e-5;  ///< per-cell programming current, A
  double dt = 1e-7;               ///< integration step for the VTEAM model
};

/// Cost of writing one mapped layer.
struct ProgrammingReport {
  double time_s = 0.0;        ///< Σ per-wordline max programming times
  double energy_j = 0.0;      ///< Σ cell programming energies (V·I·t)
  std::int64_t cells_programmed = 0;  ///< non-zero-level cells written
  std::int64_t cells_total = 0;       ///< all cells in the mapping
};

/// Estimates programming cost for `layer` (row-parallel per array).
ProgrammingReport programming_cost(const MappedLayer& layer,
                                   const ProgrammingConfig& config = {});

/// Aggregates over a network.
ProgrammingReport programming_cost(const MappedNetwork& net,
                                   const ProgrammingConfig& config = {});

}  // namespace tinyadc::xbar
