# Empty compiler generated dependencies file for bench_ablation_adc_clip.
# This may be replaced when dependencies are built.
