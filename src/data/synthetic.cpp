#include "data/synthetic.hpp"

#include <cmath>
#include <numbers>

#include "tensor/check.hpp"

namespace tinyadc::data {

namespace {

/// One class prototype: Gaussian blobs + an oriented sinusoid, per channel.
struct Prototype {
  struct Blob {
    float cx, cy, sigma;
    float amp[4];  // per-channel amplitude (max 4 channels supported)
  };
  std::vector<Blob> blobs;
  float freq_x, freq_y, phase;
  float tex_amp[4];
};

Prototype random_prototype(const SyntheticSpec& spec, Rng& rng) {
  TINYADC_CHECK(spec.channels <= 4, "at most 4 channels supported");
  Prototype proto;
  const int blob_count = 3 + static_cast<int>(rng.uniform_int(3));
  for (int b = 0; b < blob_count; ++b) {
    Prototype::Blob blob{};
    blob.cx = rng.uniform(0.15F, 0.85F);
    blob.cy = rng.uniform(0.15F, 0.85F);
    blob.sigma = rng.uniform(0.08F, 0.25F);
    for (std::int64_t c = 0; c < spec.channels; ++c)
      blob.amp[c] = rng.uniform(-1.0F, 1.0F);
    proto.blobs.push_back(blob);
  }
  proto.freq_x = rng.uniform(1.0F, 4.0F);
  proto.freq_y = rng.uniform(1.0F, 4.0F);
  proto.phase = rng.uniform(0.0F, 2.0F * std::numbers::pi_v<float>);
  for (std::int64_t c = 0; c < spec.channels; ++c)
    proto.tex_amp[c] = rng.uniform(-0.5F, 0.5F);
  return proto;
}

/// Renders one sample of `proto` with translation (dx, dy) and jitter.
void render(const Prototype& proto, const SyntheticSpec& spec, float dx,
            float dy, float jitter, Rng& rng, float* out) {
  const auto s = static_cast<float>(spec.image_size);
  const float two_pi = 2.0F * std::numbers::pi_v<float>;
  for (std::int64_t c = 0; c < spec.channels; ++c) {
    for (std::int64_t y = 0; y < spec.image_size; ++y) {
      for (std::int64_t x = 0; x < spec.image_size; ++x) {
        const float fx = (static_cast<float>(x) + 0.5F) / s - dx;
        const float fy = (static_cast<float>(y) + 0.5F) / s - dy;
        float v = proto.tex_amp[c] *
                  std::sin(two_pi * (proto.freq_x * fx + proto.freq_y * fy) +
                           proto.phase);
        for (const auto& blob : proto.blobs) {
          const float rx = fx - blob.cx;
          const float ry = fy - blob.cy;
          const float r2 = rx * rx + ry * ry;
          v += blob.amp[c] *
               std::exp(-r2 / (2.0F * blob.sigma * blob.sigma));
        }
        v *= jitter;
        v += rng.normal(0.0F, spec.noise);
        out[(c * spec.image_size + y) * spec.image_size + x] = v;
      }
    }
  }
}

Dataset generate(const SyntheticSpec& spec,
                 const std::vector<Prototype>& protos,
                 std::int64_t per_class, Rng& rng) {
  Dataset ds;
  ds.num_classes = spec.num_classes;
  const std::int64_t n = spec.num_classes * per_class;
  ds.images = Tensor({n, spec.channels, spec.image_size, spec.image_size});
  ds.labels.resize(static_cast<std::size_t>(n));
  const std::int64_t per =
      spec.channels * spec.image_size * spec.image_size;
  std::int64_t row = 0;
  for (std::int64_t k = 0; k < spec.num_classes; ++k) {
    for (std::int64_t i = 0; i < per_class; ++i, ++row) {
      const float dx = rng.uniform(-spec.shift_frac, spec.shift_frac);
      const float dy = rng.uniform(-spec.shift_frac, spec.shift_frac);
      const float jitter =
          1.0F + rng.uniform(-spec.amp_jitter, spec.amp_jitter);
      render(protos[static_cast<std::size_t>(k)], spec, dx, dy, jitter, rng,
             ds.images.data() + row * per);
      ds.labels[static_cast<std::size_t>(row)] = k;
    }
  }
  return ds;
}

}  // namespace

DatasetPair make_synthetic(const SyntheticSpec& spec) {
  TINYADC_CHECK(spec.num_classes > 1, "need at least two classes");
  TINYADC_CHECK(spec.image_size >= 4, "image size too small");
  Rng rng(spec.seed);
  std::vector<Prototype> protos;
  protos.reserve(static_cast<std::size_t>(spec.num_classes));
  for (std::int64_t k = 0; k < spec.num_classes; ++k)
    protos.push_back(random_prototype(spec, rng));
  DatasetPair pair;
  pair.spec = spec;
  Rng train_rng = rng.split();
  Rng test_rng = rng.split();
  pair.train = generate(spec, protos, spec.train_per_class, train_rng);
  pair.test = generate(spec, protos, spec.test_per_class, test_rng);
  return pair;
}

SyntheticSpec cifar10_like() {
  SyntheticSpec spec;
  spec.name = "cifar10";
  spec.num_classes = 10;
  spec.image_size = 16;
  spec.train_per_class = 64;
  spec.test_per_class = 20;
  spec.shift_frac = 0.08F;
  spec.amp_jitter = 0.15F;
  spec.noise = 0.20F;
  spec.seed = 1001;
  return spec;
}

SyntheticSpec cifar100_like() {
  SyntheticSpec spec;
  spec.name = "cifar100";
  spec.num_classes = 20;
  spec.image_size = 16;
  spec.train_per_class = 40;
  spec.test_per_class = 12;
  spec.shift_frac = 0.12F;
  spec.amp_jitter = 0.25F;
  spec.noise = 0.35F;
  spec.seed = 2002;
  return spec;
}

SyntheticSpec imagenet_like() {
  SyntheticSpec spec;
  spec.name = "imagenet";
  spec.num_classes = 30;
  spec.image_size = 16;
  spec.train_per_class = 32;
  spec.test_per_class = 10;
  spec.shift_frac = 0.18F;
  spec.amp_jitter = 0.40F;
  spec.noise = 0.50F;
  spec.seed = 3003;
  return spec;
}

SyntheticSpec tier_by_name(const std::string& name) {
  if (name == "cifar10") return cifar10_like();
  if (name == "cifar100") return cifar100_like();
  if (name == "imagenet") return imagenet_like();
  TINYADC_CHECK(false, "unknown dataset tier '" << name << "'");
}

}  // namespace tinyadc::data
