// Multi-tenant fleet serving: weighted-fair/strict-priority admission
// properties, per-tenant determinism across worker counts and co-tenant
// load, shape-bucketed batching, hot-swap under traffic (zero drops, no
// torn batches, ADC baselines re-captured), per-tenant queue bounds, and
// a concurrent submit/swap/stats soak (run under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <random>
#include <thread>

#include "artifact/artifact.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "serve/loadgen.hpp"
#include "xbar/mapping.hpp"

namespace tinyadc::serve {
namespace {

/// One deployable model version: the in-process network doubles as the
/// bit-identity oracle for the artifact the fleet tenants load.
struct Bundle {
  std::unique_ptr<nn::Model> model;
  xbar::MappedNetwork net;
  std::unique_ptr<msim::AnalogNetwork> analog;
  artifact::ArtifactMeta meta;
};

/// Two tiny untrained resnet18 versions (distinct init seeds, so their
/// outputs differ) saved as artifacts, plus 8×8 and 10×10 synthetic data
/// (GlobalAvgPool makes mixed spatial sizes forward correctly).
struct Fixture {
  data::DatasetPair data;    ///< 8×8 images (the tenants' main traffic)
  data::DatasetPair data10;  ///< 10×10 images (shape-bucket tests)
  Bundle v1, v2;
  std::string v1_path = "fleet_test_v1.tadc";
  std::string v2_path = "fleet_test_v2.tadc";

  Fixture() {
    data::SyntheticSpec spec;
    spec.num_classes = 4;
    spec.image_size = 8;
    spec.train_per_class = 8;
    spec.test_per_class = 6;
    spec.seed = 91;
    data = data::make_synthetic(spec);

    data::SyntheticSpec spec10;
    spec10.num_classes = 4;
    spec10.image_size = 10;
    spec10.train_per_class = 2;
    spec10.test_per_class = 2;
    spec10.seed = 23;
    data10 = data::make_synthetic(spec10);

    init_bundle(v1, 42);
    init_bundle(v2, 7);
    artifact::save_artifact(
        v1_path, artifact::ArtifactInputs{v1.meta, *v1.model, v1.net,
                                          *v1.analog, {}, {}});
    artifact::save_artifact(
        v2_path, artifact::ArtifactInputs{v2.meta, *v2.model, v2.net,
                                          *v2.analog, {}, {}});
  }

  ~Fixture() {
    std::remove(v1_path.c_str());
    std::remove(v2_path.c_str());
  }

  /// Builds a bundle in place (the analog network references the mapped
  /// network by address, so Bundle must never move after this).
  void init_bundle(Bundle& b, std::uint64_t seed) {
    nn::ModelConfig mc;
    mc.num_classes = 4;
    mc.image_size = 8;
    mc.width_mult = 0.0625F;
    mc.seed = seed;
    b.model = nn::build_model("resnet18", mc);
    b.meta.arch = "resnet18";
    b.meta.model_name = b.model->name();
    b.meta.model_config = mc;
    xbar::MappingConfig cfg;
    cfg.dims = {16, 16};
    b.net = xbar::map_model(*b.model, cfg);
    b.analog = std::make_unique<msim::AnalogNetwork>(*b.model, b.net,
                                                     msim::MsimConfig{});
    b.analog->calibrate(data.train, 8);
  }
};

/// The fixture is expensive (two model builds + two artifact saves), so it
/// is shared; bundles are read-only apart from commutative sim counters.
Fixture& fixture() {
  static Fixture f;
  return f;
}

/// Copies test example `i` of `ds` into a standalone (C, H, W) tensor.
Tensor extract_image(const data::Dataset& ds, std::int64_t i) {
  const std::int64_t chw = ds.images.numel() / ds.images.dim(0);
  Tensor img({ds.images.dim(1), ds.images.dim(2), ds.images.dim(3)});
  std::memcpy(img.data(), ds.images.data() + i * chw,
              static_cast<std::size_t>(chw) * sizeof(float));
  return img;
}

/// Examples [start, start + n) of `ds` as one (n, C, H, W) batch.
Tensor make_batch(const data::Dataset& ds, std::int64_t start,
                  std::int64_t n) {
  const std::int64_t chw = ds.images.numel() / ds.images.dim(0);
  Tensor b({n, ds.images.dim(1), ds.images.dim(2), ds.images.dim(3)});
  std::memcpy(b.data(), ds.images.data() + start * chw,
              static_cast<std::size_t>(n * chw) * sizeof(float));
  return b;
}

/// Sequential single-image oracle through a bundle's in-process network
/// (bit-identical to the artifact the fleet serves the same version from).
std::vector<float> oracle(Bundle& b, const data::Dataset& ds,
                          std::int64_t i) {
  const Tensor logits = b.analog->forward(make_batch(ds, i, 1));
  return std::vector<float>(logits.data(), logits.data() + logits.numel());
}

std::uint64_t digest_results(const std::vector<InferenceResult>& results) {
  std::uint64_t h = fnv1a(nullptr, 0);
  for (const auto& r : results) {
    h = fnv1a(r.logits.data(), r.logits.size() * sizeof(float), h);
    h = fnv1a(&r.label, sizeof(r.label), h);
  }
  return h;
}

std::vector<InferenceResult> collect(
    std::vector<std::future<InferenceResult>>& futures) {
  std::vector<InferenceResult> results;
  results.reserve(futures.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

/// Snapshot slice for tenant `name` (copied: outlives the FleetStats).
TenantStats tenant_stats(const FleetStats& fs, const std::string& name) {
  for (const TenantStats& t : fs.tenants)
    if (t.name == name) return t;
  ADD_FAILURE() << "no tenant '" << name << "' in snapshot";
  return {};
}

/// Sum of the per-layer counter snapshots of a compiled network.
msim::MsimStats sims_total(const msim::AnalogNetwork& compiled) {
  msim::MsimStats total;
  for (const auto& sim : compiled.sims()) {
    const msim::MsimStats s = sim->stats_snapshot();
    total.adc_conversions += s.adc_conversions;
    total.adc_clip_events += s.adc_clip_events;
    total.dac_cycles += s.dac_cycles;
  }
  return total;
}

// ---------------------------------------------------------------------------
// WeightedFairPicker properties (driven directly, no serving involved)

TEST(FleetPicker, FullBacklogServiceIsProportionalToWeights) {
  WeightedFairPicker p;
  p.add(0, 3.0);
  p.add(0, 1.0);
  p.add(0, 2.0);
  const std::vector<char> ready = {1, 1, 1};
  int served[3] = {0, 0, 0};
  for (int round = 0; round < 600; ++round) {
    const int idx = p.pick(ready);
    ASSERT_GE(idx, 0);
    p.account(idx, 1.0);
    ++served[idx];
  }
  // Start-time fair queueing with unit costs: 3:1:2 shares, near-exact.
  EXPECT_NEAR(served[0], 300, 6);
  EXPECT_NEAR(served[1], 100, 6);
  EXPECT_NEAR(served[2], 200, 6);
}

TEST(FleetPicker, WeightedShareHoldsUnderRandomizedCosts) {
  WeightedFairPicker p;
  p.add(0, 2.0);
  p.add(0, 1.0);
  const std::vector<char> ready = {1, 1};
  std::mt19937 rng(1234);
  std::uniform_int_distribution<int> cost(1, 4);
  double service[2] = {0.0, 0.0};
  for (int round = 0; round < 2000; ++round) {
    const int idx = p.pick(ready);
    ASSERT_GE(idx, 0);
    const double c = static_cast<double>(cost(rng));
    p.account(idx, c);
    service[idx] += c;
  }
  // Long-run service (in cost units) proportional to weights, 10 %
  // tolerance: randomized batch costs shift individual rounds but not
  // the virtual-time shares.
  const double ratio = service[0] / service[1];
  EXPECT_NEAR(ratio, 2.0, 0.2);
}

TEST(FleetPicker, RandomizedArrivalsNeverStarveAReadyFlow) {
  WeightedFairPicker p;
  p.add(0, 1.0);
  p.add(0, 2.0);
  p.add(0, 4.0);
  std::mt19937 rng(99);
  std::uniform_int_distribution<int> coin(0, 9);
  std::uniform_int_distribution<int> cost(1, 3);
  int unserved_streak[3] = {0, 0, 0};
  for (int round = 0; round < 1000; ++round) {
    std::vector<char> ready(3, 0);
    bool any = false;
    for (std::size_t i = 0; i < 3; ++i) {
      ready[i] = coin(rng) < 6 ? 1 : 0;
      any = any || ready[i] != 0;
    }
    const int idx = p.pick(ready);
    if (!any) {
      EXPECT_EQ(idx, -1);
      continue;
    }
    ASSERT_GE(idx, 0);
    ASSERT_NE(ready[static_cast<std::size_t>(idx)], 0)
        << "picked a flow that was not ready";
    p.account(idx, static_cast<double>(cost(rng)));
    for (int i = 0; i < 3; ++i) {
      if (ready[static_cast<std::size_t>(i)] == 0 || i == idx)
        unserved_streak[i] = 0;
      else
        ++unserved_streak[i];
      // SFQ delay bound: a backlogged flow is served within roughly
      // total_weight / own_weight rounds; 25 is a generous ceiling for
      // weights 1:2:4 with costs up to 3×.
      EXPECT_LT(unserved_streak[i], 25) << "flow " << i << " starved";
    }
  }
}

TEST(FleetPicker, StrictPriorityBetweenClasses) {
  WeightedFairPicker p;
  p.add(1, 100.0);  // low-priority, huge weight: weight must not matter
  p.add(0, 0.5);
  p.add(0, 1.0);
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> coin(0, 1);
  int low_served = 0;
  for (int round = 0; round < 500; ++round) {
    std::vector<char> ready = {1, static_cast<char>(coin(rng)),
                               static_cast<char>(coin(rng))};
    const int idx = p.pick(ready);
    ASSERT_GE(idx, 0);
    if (ready[1] != 0 || ready[2] != 0)
      EXPECT_NE(idx, 0) << "priority-1 flow beat a ready priority-0 flow";
    else
      EXPECT_EQ(idx, 0);  // high-priority idle: low priority is not starved
    if (idx == 0) ++low_served;
    p.account(idx, 1.0);
  }
  EXPECT_GT(low_served, 0);
  EXPECT_EQ(p.pick({0, 0, 0}), -1);
}

// ---------------------------------------------------------------------------
// Determinism matrix

TEST(Fleet, DeterministicAcrossWorkerCountsAndCoTenantLoad) {
  Fixture& f = fixture();
  const std::int64_t n = f.data.test.size();
  struct TenantOut {
    std::uint64_t digest = 0;
    TenantStats stats;
  };
  std::map<std::string, TenantOut> outs[2];
  const int worker_counts[2] = {1, 4};

  for (int run = 0; run < 2; ++run) {
    FleetConfig fc;
    fc.workers = worker_counts[run];
    FleetServer fleet(fc);

    TenantConfig a;
    a.name = "a";
    a.max_batch = 4;
    a.deterministic = true;
    const int ida = fleet.add_tenant(a, f.v1_path);

    TenantConfig b;
    b.name = "b";
    b.max_batch = 8;
    b.deterministic = true;
    const int idb = fleet.add_tenant(b, f.v2_path, /*mmap=*/true);

    TenantConfig pl;
    pl.name = "p";
    pl.max_batch = 4;
    pl.deterministic = true;
    pl.pipeline_stages = 2;
    const int idp = fleet.add_tenant(pl, f.v1_path);

    // "a" and "p" get the *same* 12-image stream: shared-pool and
    // pipeline execution of one version must report identical counter
    // deltas (the pipeline's timing probe is baseline-compensated).
    std::vector<std::future<InferenceResult>> fa, fb, fp;
    for (std::int64_t i = 0; i < 20; ++i) {
      if (i < 12) fa.push_back(fleet.submit(ida, extract_image(f.data.test, i)));
      fb.push_back(fleet.submit(idb, extract_image(f.data.test, (i * 5 + 3) % n)));
      if (i < 12) fp.push_back(fleet.submit(idp, extract_image(f.data.test, i)));
    }
    fleet.wait_idle();

    const FleetStats fs = fleet.stats();
    const auto ra = collect(fa);
    const auto rb = collect(fb);
    const auto rp = collect(fp);
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].seq, i);
      EXPECT_EQ(ra[i].version, 1U);
    }
    outs[run]["a"] = {digest_results(ra), tenant_stats(fs, "a")};
    outs[run]["b"] = {digest_results(rb), tenant_stats(fs, "b")};
    outs[run]["p"] = {digest_results(rp), tenant_stats(fs, "p")};

    // Pinned batch composition: 3×4 for "a"/"p", 2×8 + drained 4 for "b".
    EXPECT_EQ(outs[run]["a"].stats.stats.batch_hist[4], 3U);
    EXPECT_EQ(outs[run]["b"].stats.stats.batch_hist[8], 2U);
    EXPECT_EQ(outs[run]["b"].stats.stats.batch_hist[4], 1U);
    EXPECT_EQ(outs[run]["p"].stats.stats.batch_hist[4], 3U);

    // Same stream, same version ⇒ same ADC work, pipeline or not.
    EXPECT_EQ(outs[run]["a"].stats.stats.adc_conversions,
              outs[run]["p"].stats.stats.adc_conversions);
    EXPECT_EQ(outs[run]["a"].stats.stats.dac_cycles,
              outs[run]["p"].stats.stats.dac_cycles);
    EXPECT_EQ(outs[run]["a"].digest, outs[run]["p"].digest);
  }

  for (const char* name : {"a", "b", "p"}) {
    SCOPED_TRACE(name);
    const TenantOut& w1 = outs[0][name];
    const TenantOut& w4 = outs[1][name];
    EXPECT_EQ(w1.digest, w4.digest);
    EXPECT_EQ(w1.stats.stats.requests, w4.stats.stats.requests);
    EXPECT_EQ(w1.stats.stats.adc_conversions, w4.stats.stats.adc_conversions);
    EXPECT_EQ(w1.stats.stats.adc_clip_events, w4.stats.stats.adc_clip_events);
    EXPECT_EQ(w1.stats.stats.dac_cycles, w4.stats.stats.dac_cycles);
    EXPECT_EQ(w1.stats.stats.batch_hist, w4.stats.stats.batch_hist);
  }

  // Tenant isolation: "a" served alone produces the same digest and the
  // same counter delta as "a" under full co-tenant load.
  FleetConfig fc;
  fc.workers = 2;
  FleetServer solo(fc);
  TenantConfig a;
  a.name = "a";
  a.max_batch = 4;
  a.deterministic = true;
  const int ida = solo.add_tenant(a, f.v1_path);
  std::vector<std::future<InferenceResult>> fa;
  for (std::int64_t i = 0; i < 12; ++i)
    fa.push_back(solo.submit(ida, extract_image(f.data.test, i)));
  solo.wait_idle();
  const auto ra = collect(fa);
  const TenantStats ts = tenant_stats(solo.stats(), "a");
  EXPECT_EQ(digest_results(ra), outs[0]["a"].digest);
  EXPECT_EQ(ts.stats.adc_conversions, outs[0]["a"].stats.stats.adc_conversions);
  EXPECT_EQ(ts.stats.dac_cycles, outs[0]["a"].stats.stats.dac_cycles);
}

// ---------------------------------------------------------------------------
// Shape-bucketed batching

TEST(Fleet, ShapeBucketedBatchingServesMixedSizes) {
  Fixture& f = fixture();
  FleetConfig fc;
  fc.workers = 2;
  FleetServer fleet(fc);
  TenantConfig tc;
  tc.name = "mix";
  tc.max_batch = 4;
  tc.deterministic = true;
  const int id = fleet.add_tenant(tc, f.v1_path);

  struct Tagged {
    const data::Dataset* ds = nullptr;
    std::int64_t index = 0;
    std::future<InferenceResult> fut;
  };
  std::vector<Tagged> tagged;
  for (std::int64_t i = 0; i < 8; ++i) {  // interleave 8×8 and 10×10
    tagged.push_back({&f.data.test, i,
                      fleet.submit(id, extract_image(f.data.test, i))});
    tagged.push_back({&f.data10.test, i,
                      fleet.submit(id, extract_image(f.data10.test, i))});
  }
  fleet.wait_idle();

  // Each shape formed two full batches of 4 — mixed-size traffic batches
  // per bucket instead of degenerating to singletons, and a mixed batch
  // would corrupt the assembled tensor (caught by the oracle check).
  for (Tagged& t : tagged) {
    const InferenceResult r = t.fut.get();
    EXPECT_EQ(r.batch_size, 4U);
    const std::vector<float> want = oracle(f.v1, *t.ds, t.index);
    ASSERT_EQ(r.logits.size(), want.size());
    EXPECT_EQ(std::memcmp(r.logits.data(), want.data(),
                          want.size() * sizeof(float)),
              0)
        << "index " << t.index;
  }
  const TenantStats ts = tenant_stats(fleet.stats(), "mix");
  EXPECT_EQ(ts.stats.requests, 16U);
  EXPECT_EQ(ts.stats.batches, 4U);
  ASSERT_LT(4U, ts.stats.batch_hist.size());
  EXPECT_EQ(ts.stats.batch_hist[4], 4U);
}

// ---------------------------------------------------------------------------
// Hot-swap

TEST(Fleet, HotSwapUnderTrafficNoDropsNoTornBatches) {
  Fixture& f = fixture();
  const std::int64_t n = f.data.test.size();
  std::vector<std::vector<float>> want_v1, want_v2;
  for (std::int64_t i = 0; i < n; ++i) {
    want_v1.push_back(oracle(f.v1, f.data.test, i));
    want_v2.push_back(oracle(f.v2, f.data.test, i));
  }

  FleetConfig fc;
  fc.workers = 2;
  FleetServer fleet(fc);
  TenantConfig tc;
  tc.name = "hot";
  tc.max_batch = 4;
  tc.max_wait_us = 200;
  const int id = fleet.add_tenant(tc, f.v1_path);
  const std::int64_t comp0 = msim::AnalogLayerSim::plan_compilations();
  const std::int64_t cal0 = msim::AnalogNetwork::calibration_runs();

  struct Tagged {
    std::int64_t index = 0;
    std::future<InferenceResult> fut;
  };
  std::vector<Tagged> tagged;
  // Phase 1: drained before the swap — guaranteed version-1 results.
  for (std::int64_t i = 0; i < 16; ++i)
    tagged.push_back({i % n, fleet.submit(id, extract_image(f.data.test, i % n))});
  fleet.wait_idle();

  // Phase 2: swap while a submitter keeps traffic flowing.
  std::mutex mid_mu;
  std::vector<Tagged> mid;
  std::atomic<bool> swapping{true};
  std::thread submitter([&] {
    std::int64_t i = 0;
    while (swapping.load() && i < 400) {
      Tagged t{i % n, fleet.submit(id, extract_image(f.data.test, i % n))};
      {
        std::lock_guard<std::mutex> lk(mid_mu);
        mid.push_back(std::move(t));
      }
      ++i;
      if (i % 8 == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(fleet.swap_tenant("hot", f.v2_path), 2U);
  swapping.store(false);
  submitter.join();

  // Phase 3: submitted after the swap returned — guaranteed version 2.
  for (std::int64_t i = 0; i < 16; ++i)
    tagged.push_back({i % n, fleet.submit(id, extract_image(f.data.test, i % n))});
  fleet.wait_idle();
  for (Tagged& t : mid) tagged.push_back(std::move(t));

  // The swap loads an artifact: no plan compilation, no calibration.
  EXPECT_EQ(msim::AnalogLayerSim::plan_compilations(), comp0);
  EXPECT_EQ(msim::AnalogNetwork::calibration_runs(), cal0);

  // Zero drops; every response is attributable to exactly one version,
  // batches are never torn across the flip, and each response is
  // byte-identical to the sequential oracle of the version that served it.
  std::map<std::uint64_t, std::uint64_t> batch_version;
  bool saw_v1 = false;
  bool saw_v2 = false;
  for (Tagged& t : tagged) {
    InferenceResult r;
    ASSERT_NO_THROW(r = t.fut.get());
    ASSERT_TRUE(r.version == 1 || r.version == 2) << r.version;
    (r.version == 1 ? saw_v1 : saw_v2) = true;
    const auto it = batch_version.emplace(r.batch_seq, r.version);
    if (!it.second) {
      EXPECT_EQ(it.first->second, r.version)
          << "batch " << r.batch_seq << " torn across versions";
    }
    const auto& want =
        r.version == 1 ? want_v1[static_cast<std::size_t>(t.index)]
                       : want_v2[static_cast<std::size_t>(t.index)];
    ASSERT_EQ(r.logits.size(), want.size());
    EXPECT_EQ(std::memcmp(r.logits.data(), want.data(),
                          want.size() * sizeof(float)),
              0)
        << "index " << t.index << " version " << r.version;
  }
  EXPECT_TRUE(saw_v1);
  EXPECT_TRUE(saw_v2);
  // The version a batch ran on never goes backwards in dispatch order.
  std::uint64_t prev = 1;
  for (const auto& bv : batch_version) {
    EXPECT_GE(bv.second, prev);
    prev = bv.second;
  }
  const TenantStats ts = tenant_stats(fleet.stats(), "hot");
  EXPECT_EQ(ts.stats.requests, tagged.size());
  EXPECT_EQ(ts.stats.rejected, 0U);
  EXPECT_EQ(ts.version, 2U);
  EXPECT_EQ(fleet.tenant_version("hot"), 2U);
}

TEST(Fleet, HotSwapRecapturesAdcBaseline) {
  Fixture& f = fixture();
  for (const int stages : {0, 2}) {
    SCOPED_TRACE(stages == 0 ? "shared pool" : "pipeline");
    FleetConfig fc;
    fc.workers = 1;
    FleetServer fleet(fc);
    TenantConfig tc;
    tc.name = "t";
    tc.max_batch = 4;
    tc.deterministic = true;
    tc.pipeline_stages = stages;
    const int id = fleet.add_tenant(tc, f.v1_path);

    std::vector<std::future<InferenceResult>> futs;
    for (std::int64_t i = 0; i < 8; ++i)
      futs.push_back(fleet.submit(id, extract_image(f.data.test, i)));
    fleet.wait_idle();
    for (auto& fu : futs) (void)fu.get();
    const ServeStats d1 = tenant_stats(fleet.stats(), "t").stats;
    EXPECT_GT(d1.adc_conversions, 0);
    EXPECT_GT(d1.dac_cycles, 0);

    // An idle swap must not move the delta: the old version's counters
    // retire exactly, the new baseline absorbs the fresh load (and, for
    // pipeline tenants, later the executor's timing probe).
    EXPECT_EQ(fleet.swap_tenant("t", f.v2_path), 2U);
    const ServeStats d1b = tenant_stats(fleet.stats(), "t").stats;
    EXPECT_EQ(d1b.adc_conversions, d1.adc_conversions);
    EXPECT_EQ(d1b.adc_clip_events, d1.adc_clip_events);
    EXPECT_EQ(d1b.dac_cycles, d1.dac_cycles);

    futs.clear();
    for (std::int64_t i = 0; i < 8; ++i)
      futs.push_back(fleet.submit(id, extract_image(f.data.test, i)));
    fleet.wait_idle();
    for (auto& fu : futs) EXPECT_EQ(fu.get().version, 2U);
    const ServeStats d2 = tenant_stats(fleet.stats(), "t").stats;

    // Post-swap growth must equal a reference run of the same traffic on
    // a fresh load of v2 — i.e. the delta is v1-served + v2-served with
    // nothing double-counted and the probe compensated out.
    artifact::Deployment dep = artifact::load_artifact(f.v2_path);
    const msim::MsimStats before = sims_total(*dep.analog);
    msim::AnalogSession session(*dep.analog);
    (void)session.forward(make_batch(f.data.test, 0, 4));
    (void)session.forward(make_batch(f.data.test, 4, 4));
    const msim::MsimStats after = sims_total(*dep.analog);
    EXPECT_EQ(d2.adc_conversions - d1.adc_conversions,
              after.adc_conversions - before.adc_conversions);
    EXPECT_EQ(d2.adc_clip_events - d1.adc_clip_events,
              after.adc_clip_events - before.adc_clip_events);
    EXPECT_EQ(d2.dac_cycles - d1.dac_cycles,
              after.dac_cycles - before.dac_cycles);
  }
}

// ---------------------------------------------------------------------------
// Admission control

TEST(Fleet, MaxQueueRejectionIsPerTenant) {
  Fixture& f = fixture();
  FleetConfig fc;
  fc.workers = 1;
  FleetServer fleet(fc);
  // Deterministic with max_batch > max_queue: nothing dequeues until the
  // drain, so the queue bound is hit by construction.
  TenantConfig full;
  full.name = "full";
  full.max_batch = 8;
  full.max_queue = 3;
  full.deterministic = true;
  const int id_full = fleet.add_tenant(full, f.v1_path);
  TenantConfig co;
  co.name = "co";
  co.max_batch = 4;
  co.deterministic = true;
  const int id_co = fleet.add_tenant(co, f.v2_path);

  std::vector<std::future<InferenceResult>> f_full, f_co;
  for (std::int64_t i = 0; i < 6; ++i)
    f_full.push_back(fleet.submit(id_full, extract_image(f.data.test, i)));
  for (std::int64_t i = 0; i < 8; ++i)
    f_co.push_back(fleet.submit(id_co, extract_image(f.data.test, i)));
  // Rejections are immediate and carry an exception naming the tenant.
  for (int i = 3; i < 6; ++i) {
    try {
      (void)f_full[static_cast<std::size_t>(i)].get();
      FAIL() << "submit " << i << " was not rejected";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("full"), std::string::npos);
    }
  }
  fleet.wait_idle();  // flushes the accepted partial batch of 3
  for (int i = 0; i < 3; ++i)
    EXPECT_NO_THROW((void)f_full[static_cast<std::size_t>(i)].get());
  for (auto& fu : f_co) EXPECT_NO_THROW((void)fu.get());

  // One tenant's flood never consumes the co-tenant's budget.
  const FleetStats fs = fleet.stats();
  const TenantStats ts_full = tenant_stats(fs, "full");
  const TenantStats ts_co = tenant_stats(fs, "co");
  EXPECT_EQ(ts_full.stats.rejected, 3U);
  EXPECT_EQ(ts_full.stats.requests, 3U);
  EXPECT_EQ(ts_full.stats.batch_hist[3], 1U);
  EXPECT_EQ(ts_co.stats.rejected, 0U);
  EXPECT_EQ(ts_co.stats.requests, 8U);
  EXPECT_EQ(fs.aggregate.rejected, 3U);
}

TEST(Fleet, SaturatedLowPriorityCannotStarveHighPriority) {
  Fixture& f = fixture();
  FleetConfig fc;
  fc.workers = 1;
  FleetServer fleet(fc);
  TenantConfig bulk;
  bulk.name = "bulk";
  bulk.priority = 1;
  bulk.max_batch = 4;
  bulk.max_wait_us = 0;
  const int id_bulk = fleet.add_tenant(bulk, f.v1_path);
  TenantConfig lat;
  lat.name = "latency";
  lat.priority = 0;
  lat.max_batch = 1;
  lat.max_wait_us = 0;
  const int id_lat = fleet.add_tenant(lat, f.v2_path);

  // Saturate the low-priority tenant, then run a closed loop of
  // high-priority requests. Strict priority means each of them is served
  // at the very next dequeue — long before the bulk backlog drains.
  constexpr std::int64_t kBulk = 400;
  std::vector<std::future<InferenceResult>> f_bulk;
  for (std::int64_t i = 0; i < kBulk; ++i)
    f_bulk.push_back(
        fleet.submit(id_bulk, extract_image(f.data.test, i % f.data.test.size())));
  for (std::int64_t i = 0; i < 10; ++i) {
    auto fut = fleet.submit(id_lat, extract_image(f.data.test, i));
    EXPECT_NO_THROW((void)fut.get());
  }
  // The whole high-priority loop finished while low-priority work was
  // still backlogged — a FIFO (or starving) scheduler would have made it
  // wait for all 400.
  const TenantStats ts_bulk = tenant_stats(fleet.stats(), "bulk");
  EXPECT_GT(ts_bulk.queued, 0U);
  EXPECT_LT(ts_bulk.stats.requests, static_cast<std::uint64_t>(kBulk));
  fleet.wait_idle();
  for (auto& fu : f_bulk) EXPECT_NO_THROW((void)fu.get());
  EXPECT_EQ(tenant_stats(fleet.stats(), "bulk").stats.requests,
            static_cast<std::uint64_t>(kBulk));
}

// ---------------------------------------------------------------------------
// Loadgen + reporting schema

TEST(Fleet, FleetLoadgenAndJsonSchema) {
  Fixture& f = fixture();
  FleetConfig fc;
  fc.workers = 2;
  FleetServer fleet(fc);
  TenantConfig a;
  a.name = "a";
  a.max_batch = 4;
  a.deterministic = true;
  fleet.add_tenant(a, f.v1_path);
  TenantConfig b;
  b.name = "b";
  b.max_batch = 4;
  b.deterministic = true;
  fleet.add_tenant(b, f.v2_path, /*mmap=*/true);
  TenantConfig c;
  c.name = "c";
  c.max_batch = 4;
  fleet.add_tenant(c, f.v1_path, /*mmap=*/true);
  EXPECT_EQ(fleet.tenant_count(), 3U);
  EXPECT_EQ(fleet.tenant_version("a"), 1U);

  // Artifact identity: nonzero digests, equal across load paths for the
  // same file, distinct across files.
  {
    const FleetStats fs = fleet.stats();
    const TenantStats ta = tenant_stats(fs, "a");
    const TenantStats tb = tenant_stats(fs, "b");
    const TenantStats tc = tenant_stats(fs, "c");
    EXPECT_EQ(ta.artifact_path, f.v1_path);
    EXPECT_NE(ta.artifact_digest, 0U);
    EXPECT_EQ(ta.artifact_digest, tc.artifact_digest);
    EXPECT_NE(ta.artifact_digest, tb.artifact_digest);
  }

  std::vector<TenantLoadSpec> specs(2);
  specs[0].name = "a";
  specs[0].dataset = &f.data.test;
  specs[0].requests = 24;
  specs[1].name = "b";
  specs[1].dataset = &f.data.test;
  specs[1].requests = 16;
  specs[1].qps = 2000.0;
  specs[1].burst_factor = 2.0;
  specs[1].burst_period_s = 0.004;
  const FleetLoadgenReport report = run_fleet_loadgen(fleet, specs);

  ASSERT_EQ(report.tenants.size(), 2U);
  for (const TenantLoadReport& t : report.tenants) {
    EXPECT_EQ(t.completed, t.submitted);
    EXPECT_EQ(t.rejected, 0);
    EXPECT_GT(t.achieved_qps, 0.0);
    EXPECT_GE(t.accuracy, 0.0);
    EXPECT_LE(t.accuracy, 1.0);
    EXPECT_NE(t.output_digest, 0U);
  }
  EXPECT_EQ(report.tenants[0].submitted, 24);
  EXPECT_EQ(report.tenants[1].submitted, 16);
  EXPECT_EQ(report.fleet.aggregate.requests, 40U);

  const std::string json = report.to_json();
  for (const char* key :
       {"\"aggregate\"", "\"tenants\"", "\"loadgen\"", "\"artifact_digest\"",
        "\"output_digest\"", "\"adc_conversions\"", "\"name\": \"a\"",
        "\"batch_hist\""})
    EXPECT_NE(json.find(key), std::string::npos) << key;
  const std::string table = report.fleet.to_table();
  EXPECT_NE(table.find("tenant"), std::string::npos);
  EXPECT_NE(table.find("aggregate"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Soak: concurrent submits + hot-swaps + stats polling (TSan in CI)

TEST(Fleet, SoakConcurrentSubmitsSwapsAndStats) {
  Fixture& f = fixture();
  FleetConfig fc;
  fc.workers = 4;
  FleetServer fleet(fc);
  TenantConfig x;
  x.name = "x";
  x.max_batch = 4;
  x.max_wait_us = 100;
  const int idx = fleet.add_tenant(x, f.v1_path);
  TenantConfig y;
  y.name = "y";
  y.max_batch = 4;
  y.max_wait_us = 100;
  y.pipeline_stages = 2;
  const int idy = fleet.add_tenant(y, f.v1_path);
  const std::int64_t comp0 = msim::AnalogLayerSim::plan_compilations();
  const std::int64_t cal0 = msim::AnalogNetwork::calibration_runs();

  std::atomic<bool> polling{true};
  std::thread poller([&] {
    while (polling.load()) {
      const FleetStats fs = fleet.stats();
      ASSERT_EQ(fs.tenants.size(), 2U);
      ASSERT_LE(fs.aggregate.requests, 70U);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::atomic<int> completed{0};
  auto submit_loop = [&](int tenant, int count, int offset) {
    for (int i = 0; i < count; ++i) {
      auto fut = fleet.submit(
          tenant, extract_image(f.data.test,
                                (offset + i) % f.data.test.size()));
      const InferenceResult r = fut.get();  // closed loop per submitter
      ASSERT_EQ(r.logits.size(), 4U);
      ASSERT_GE(r.version, 1U);
      completed.fetch_add(1);
    }
  };
  std::vector<std::thread> submitters;
  submitters.emplace_back(submit_loop, idx, 25, 0);
  submitters.emplace_back(submit_loop, idx, 25, 7);
  submitters.emplace_back(submit_loop, idy, 20, 3);
  std::thread swapper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(fleet.swap_tenant("x", f.v2_path), 2U);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(fleet.swap_tenant("y", f.v2_path, /*mmap=*/true), 2U);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(fleet.swap_tenant("x", f.v1_path), 3U);
  });
  for (auto& t : submitters) t.join();
  swapper.join();
  polling.store(false);
  poller.join();
  fleet.wait_idle();

  EXPECT_EQ(completed.load(), 70);
  EXPECT_EQ(fleet.tenant_version("x"), 3U);
  EXPECT_EQ(fleet.tenant_version("y"), 2U);
  EXPECT_EQ(msim::AnalogLayerSim::plan_compilations(), comp0);
  EXPECT_EQ(msim::AnalogNetwork::calibration_runs(), cal0);
  const FleetStats fs = fleet.stats();
  EXPECT_EQ(tenant_stats(fs, "x").stats.requests, 50U);
  EXPECT_EQ(tenant_stats(fs, "y").stats.requests, 20U);
  EXPECT_EQ(fs.aggregate.rejected, 0U);
}

}  // namespace
}  // namespace tinyadc::serve
