#include "nn/linear.hpp"

#include "nn/init.hpp"
#include "runtime/parallel.hpp"
#include "tensor/gemm.hpp"

namespace tinyadc::nn {

Linear::Linear(std::string name, std::int64_t in_features,
               std::int64_t out_features, bool bias, Rng& rng)
    : Linear(Uninit{}, std::move(name), in_features, out_features, bias) {
  kaiming_normal_(weight_.value, in_features_, rng);
}

Linear::Linear(Uninit, std::string name, std::int64_t in_features,
               std::int64_t out_features, bool bias)
    : Layer(std::move(name)),
      in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias) {
  TINYADC_CHECK(in_features > 0 && out_features > 0, "invalid Linear dims");
  Tensor w({out_features_, in_features_});
  weight_ = Param(Layer::name() + ".weight", std::move(w));
  if (has_bias_) {
    bias_ = Param(Layer::name() + ".bias", Tensor::zeros({out_features_}),
                  /*apply_decay=*/false);
  }
}

Param& Linear::bias() {
  TINYADC_CHECK(has_bias_, "Linear " << name() << " has no bias");
  return bias_;
}

std::vector<Param*> Linear::params() {
  std::vector<Param*> ps{&weight_};
  if (has_bias_) ps.push_back(&bias_);
  return ps;
}

void Linear::release_workspace() {
  cached_input_ = Tensor();
  ws_gemm_.a.clear();
  ws_gemm_.a.shrink_to_fit();
  ws_gemm_.b.clear();
  ws_gemm_.b.shrink_to_fit();
}

Tensor Linear::forward(const Tensor& input, bool training) {
  TINYADC_CHECK(input.ndim() == 2 && input.dim(1) == in_features_,
                "Linear " << name() << ": bad input "
                          << shape_to_string(input.shape()));
  const std::int64_t batch = input.dim(0);
  Tensor output({batch, out_features_});
  std::optional<Tensor> hooked;
  if (!training && mvm_hook_) hooked = mvm_hook_(input);
  if (hooked.has_value()) {
    TINYADC_CHECK(hooked->numel() == output.numel(),
                  "Linear " << name() << ": MVM hook returned "
                            << shape_to_string(hooked->shape())
                            << ", expected "
                            << shape_to_string(output.shape()));
    output.copy_from(*hooked);
  } else {
    gemm(input, false, weight_.value, true, output, 1.0F, 0.0F, &ws_gemm_);
  }
  if (has_bias_) {
    float* o = output.data();
    const float* b = bias_.value.data();
    for (std::int64_t n = 0; n < batch; ++n)
      for (std::int64_t f = 0; f < out_features_; ++f)
        o[n * out_features_ + f] += b[f];
  }
  if (training) cached_input_ = input;  // shallow share is fine: inputs are not mutated
  return output;
}

Tensor Linear::backward(const Tensor& grad_output) {
  TINYADC_CHECK(cached_input_.numel() > 0,
                "Linear " << name()
                          << ": backward without cached training forward");
  const std::int64_t batch = cached_input_.dim(0);
  TINYADC_CHECK(grad_output.ndim() == 2 && grad_output.dim(0) == batch &&
                    grad_output.dim(1) == out_features_,
                "Linear " << name() << ": bad grad_output "
                          << shape_to_string(grad_output.shape()));
  // dL/dW += goutᵀ · x
  gemm(grad_output, true, cached_input_, false, weight_.grad, 1.0F, 1.0F,
       &ws_gemm_);
  if (has_bias_) {
    // Output features own disjoint bias slots; each sums the batch in a
    // fixed order, so the result is bit-identical at any thread count.
    float* gb = bias_.grad.data();
    const float* g = grad_output.data();
    runtime::parallel_for(
        0, out_features_, 64, [&](std::int64_t f0, std::int64_t f1) {
          for (std::int64_t f = f0; f < f1; ++f) {
            double acc = 0.0;
            for (std::int64_t n = 0; n < batch; ++n)
              acc += g[n * out_features_ + f];
            gb[f] += static_cast<float>(acc);
          }
        });
  }
  // dL/dx = gout · W
  Tensor grad_input({batch, in_features_});
  gemm(grad_output, false, weight_.value, false, grad_input);
  cached_input_ = Tensor();
  return grad_input;
}

LayerPtr Linear::clone() const {
  auto copy = std::unique_ptr<Linear>(
      new Linear(Uninit{}, name(), in_features_, out_features_, has_bias_));
  copy->weight_.value.copy_from(weight_.value);
  if (has_bias_) copy->bias_.value.copy_from(bias_.value);
  return copy;
}

}  // namespace tinyadc::nn
