#include "fault/march.hpp"

#include "tensor/check.hpp"

namespace tinyadc::fault {

CellArrayUnderTest::CellArrayUnderTest(std::int64_t rows, std::int64_t cols,
                                       int slices,
                                       const std::vector<CellFault>& faults)
    : rows_(rows), cols_(cols), slices_(slices) {
  TINYADC_CHECK(rows > 0 && cols > 0 && slices > 0, "invalid array dims");
  state_.assign(static_cast<std::size_t>(rows * cols * slices * 2), 0);
  stuck_.assign(state_.size(), -1);
  for (const auto& f : faults) {
    const std::int64_t addr = address_of(f.row, f.col, f.slice, f.polarity);
    stuck_[static_cast<std::size_t>(addr)] = f.stuck_at_zero ? 0 : 1;
    state_[static_cast<std::size_t>(addr)] = f.stuck_at_zero ? 0 : 1;
  }
}

std::int64_t CellArrayUnderTest::address_of(std::int64_t row,
                                            std::int64_t col, int slice,
                                            int polarity) const {
  TINYADC_CHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_ &&
                    slice >= 0 && slice < slices_ &&
                    (polarity == 0 || polarity == 1),
                "cell coordinate out of range");
  return ((row * cols_ + col) * slices_ + slice) * 2 + polarity;
}

CellFault CellArrayUnderTest::coordinate_of(std::int64_t address) const {
  TINYADC_CHECK(address >= 0 && address < size(), "address out of range");
  CellFault f;
  f.polarity = static_cast<std::int16_t>(address % 2);
  address /= 2;
  f.slice = static_cast<std::int16_t>(address % slices_);
  address /= slices_;
  f.col = static_cast<std::int32_t>(address % cols_);
  f.row = static_cast<std::int32_t>(address / cols_);
  return f;
}

void CellArrayUnderTest::write(std::int64_t address, bool bit) {
  TINYADC_CHECK(address >= 0 && address < size(), "address out of range");
  if (stuck_[static_cast<std::size_t>(address)] >= 0) return;  // stuck
  state_[static_cast<std::size_t>(address)] = bit ? 1 : 0;
}

bool CellArrayUnderTest::read(std::int64_t address) const {
  TINYADC_CHECK(address >= 0 && address < size(), "address out of range");
  return state_[static_cast<std::size_t>(address)] != 0;
}

std::vector<CellFault> march_c_minus(const CellArrayUnderTest& array_template) {
  CellArrayUnderTest array = array_template;  // the test owns its state
  const std::int64_t n = array.size();
  // -1 undetected, 0 detected-SA0, 1 detected-SA1 per address.
  std::vector<std::int8_t> detected(static_cast<std::size_t>(n), -1);

  auto note = [&detected](std::int64_t addr, bool stuck_at_one) {
    if (detected[static_cast<std::size_t>(addr)] < 0)
      detected[static_cast<std::size_t>(addr)] = stuck_at_one ? 1 : 0;
  };

  // ⇕ (w0)
  for (std::int64_t a = 0; a < n; ++a) array.write(a, false);
  // ⇑ (r0, w1)
  for (std::int64_t a = 0; a < n; ++a) {
    if (array.read(a)) note(a, /*stuck_at_one=*/true);
    array.write(a, true);
  }
  // ⇑ (r1, w0)
  for (std::int64_t a = 0; a < n; ++a) {
    if (!array.read(a)) note(a, /*stuck_at_one=*/false);
    array.write(a, false);
  }
  // ⇓ (r0, w1)
  for (std::int64_t a = n - 1; a >= 0; --a) {
    if (array.read(a)) note(a, true);
    array.write(a, true);
  }
  // ⇓ (r1, w0)
  for (std::int64_t a = n - 1; a >= 0; --a) {
    if (!array.read(a)) note(a, false);
    array.write(a, false);
  }
  // ⇕ (r0)
  for (std::int64_t a = 0; a < n; ++a)
    if (array.read(a)) note(a, true);

  std::vector<CellFault> result;
  for (std::int64_t a = 0; a < n; ++a) {
    if (detected[static_cast<std::size_t>(a)] < 0) continue;
    CellFault f = array.coordinate_of(a);
    f.stuck_at_zero = detected[static_cast<std::size_t>(a)] == 0;
    result.push_back(f);
  }
  return result;
}

FaultMap detect_faults(const xbar::MappedLayer& layer,
                       const FaultMap& actual) {
  TINYADC_CHECK(actual.blocks.size() == layer.blocks.size(),
                "fault map block count mismatch");
  FaultMap detected;
  detected.blocks.resize(layer.blocks.size());
  const int slices = layer.config.slices();
  for (std::size_t b = 0; b < layer.blocks.size(); ++b) {
    const auto& block = layer.blocks[b];
    CellArrayUnderTest array(block.rows, block.cols, slices,
                             actual.blocks[b]);
    detected.blocks[b] = march_c_minus(array);
  }
  return detected;
}

}  // namespace tinyadc::fault
