#include "nn/optimizer.hpp"

#include <cmath>
#include <numbers>

#include "runtime/parallel.hpp"
#include "tensor/check.hpp"

namespace tinyadc::nn {

namespace {

// Elements per parallel chunk for the elementwise update sweeps: big enough
// that small params stay on the caller, small enough that conv weights
// split across lanes. Every element's update reads/writes only its own
// slots, so the fan-out is bit-identical at any thread count.
constexpr std::int64_t kStepGrain = 8192;

}  // namespace

float Sgd::lr_at(int epoch) const {
  switch (config_.schedule) {
    case LrSchedule::kConstant:
      return config_.lr;
    case LrSchedule::kStep: {
      const int drops = config_.step_every > 0 ? epoch / config_.step_every : 0;
      return config_.lr * std::pow(config_.step_gamma, drops);
    }
    case LrSchedule::kCosine: {
      const int total = std::max(config_.total_epochs, 1);
      const double t =
          std::min(1.0, static_cast<double>(epoch) / static_cast<double>(total));
      return static_cast<float>(
          0.5 * config_.lr * (1.0 + std::cos(std::numbers::pi * t)));
    }
  }
  return config_.lr;
}

void Sgd::step(const std::vector<Param*>& params, int epoch) {
  const float lr = lr_at(epoch);
  for (Param* p : params) {
    TINYADC_CHECK(p != nullptr, "null param in Sgd::step");
    auto [it, inserted] = velocity_.try_emplace(p, Tensor());
    if (inserted || it->second.numel() != p->value.numel())
      it->second = Tensor::zeros(p->value.shape());
    Tensor& v = it->second;
    float* pv = v.data();
    float* pw = p->value.data();
    const float* pg = p->grad.data();
    const float mu = config_.momentum;
    const float wd = p->decay ? config_.weight_decay : 0.0F;
    runtime::parallel_for(
        0, v.numel(), kStepGrain, [&](std::int64_t i0, std::int64_t i1) {
          for (std::int64_t i = i0; i < i1; ++i) {
            pv[i] = mu * pv[i] + pg[i] + wd * pw[i];
            pw[i] -= lr * pv[i];
          }
        });
  }
}

void Sgd::zero_grad(const std::vector<Param*>& params) {
  for (Param* p : params)
    if (p) p->zero_grad();
}

void Adam::step(const std::vector<Param*>& params, int epoch) {
  (void)epoch;  // Adam self-schedules via bias correction
  ++t_;
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (Param* p : params) {
    TINYADC_CHECK(p != nullptr, "null param in Adam::step");
    auto [mi, m_new] = m_.try_emplace(p, Tensor());
    if (m_new || mi->second.numel() != p->value.numel())
      mi->second = Tensor::zeros(p->value.shape());
    auto [vi, v_new] = v_.try_emplace(p, Tensor());
    if (v_new || vi->second.numel() != p->value.numel())
      vi->second = Tensor::zeros(p->value.shape());
    float* m = mi->second.data();
    float* v = vi->second.data();
    float* w = p->value.data();
    const float* g = p->grad.data();
    const float wd = p->decay ? config_.weight_decay : 0.0F;
    runtime::parallel_for(
        0, p->value.numel(), kStepGrain,
        [&](std::int64_t i0, std::int64_t i1) {
          for (std::int64_t i = i0; i < i1; ++i) {
            m[i] = config_.beta1 * m[i] + (1.0F - config_.beta1) * g[i];
            v[i] = config_.beta2 * v[i] + (1.0F - config_.beta2) * g[i] * g[i];
            const double m_hat = m[i] / bc1;
            const double v_hat = v[i] / bc2;
            w[i] -=
                config_.lr *
                (static_cast<float>(m_hat / (std::sqrt(v_hat) + config_.eps)) +
                 wd * w[i]);
          }
        });
  }
}

}  // namespace tinyadc::nn
