#include "core/stats.hpp"

#include <iomanip>
#include <sstream>

#include "tensor/check.hpp"

namespace tinyadc::core {

double LayerSparsityReport::pruning_rate() const {
  if (nonzero == 0) return static_cast<double>(total);
  return static_cast<double>(total) / static_cast<double>(nonzero);
}

double NetworkSparsityReport::pruning_rate() const {
  if (nonzero == 0) return static_cast<double>(total);
  return static_cast<double>(total) / static_cast<double>(nonzero);
}

NetworkSparsityReport build_report(nn::Model& model,
                                   const std::vector<LayerPruneSpec>& specs,
                                   CrossbarDims dims) {
  auto views = model.prunable_views();
  TINYADC_CHECK(specs.size() == views.size(),
                "spec/view count mismatch: " << specs.size() << " vs "
                                             << views.size());
  NetworkSparsityReport net;
  for (std::size_t i = 0; i < views.size(); ++i) {
    const auto& v = views[i];
    ConstMatrixRef m{v.weight->value.data(), v.rows, v.cols};
    LayerSparsityReport layer;
    layer.name = v.layer_name;
    layer.enabled = specs[i].active();
    layer.rows = v.rows;
    layer.cols = v.cols;
    layer.total = v.rows * v.cols;
    for (std::int64_t k = 0; k < layer.total; ++k)
      layer.nonzero += (m.data[k] != 0.0F);
    // Reformed census: matches how the mapper will tile this layer (only
    // structurally-pruned rows are compacted away).
    layer.max_col_nonzeros = max_column_nonzeros_reformed(
        m, dims, zero_row_indices(m, specs[i].remove_shapes));
    for (std::int64_t r = 0; r < m.rows; ++r) {
      bool all_zero = true;
      for (std::int64_t c = 0; c < m.cols && all_zero; ++c)
        all_zero = (m.at(r, c) == 0.0F);
      layer.zero_rows += all_zero;
    }
    for (std::int64_t c = 0; c < m.cols; ++c) {
      bool all_zero = true;
      for (std::int64_t r = 0; r < m.rows && all_zero; ++r)
        all_zero = (m.at(r, c) == 0.0F);
      layer.zero_cols += all_zero;
    }
    net.total += layer.total;
    net.nonzero += layer.nonzero;
    if (layer.enabled)
      net.max_col_nonzeros =
          std::max(net.max_col_nonzeros, layer.max_col_nonzeros);
    net.layers.push_back(std::move(layer));
  }
  return net;
}

std::string to_table(const NetworkSparsityReport& report) {
  std::ostringstream os;
  os << std::left << std::setw(28) << "layer" << std::right << std::setw(8)
     << "rows" << std::setw(8) << "cols" << std::setw(10) << "nonzero"
     << std::setw(9) << "rate" << std::setw(10) << "maxcolnz" << std::setw(9)
     << "0-rows" << std::setw(9) << "0-cols" << "\n";
  for (const auto& l : report.layers) {
    os << std::left << std::setw(28) << l.name << std::right << std::setw(8)
       << l.rows << std::setw(8) << l.cols << std::setw(10) << l.nonzero
       << std::setw(8) << std::fixed << std::setprecision(1)
       << l.pruning_rate() << "x" << std::setw(10) << l.max_col_nonzeros
       << std::setw(9) << l.zero_rows << std::setw(9) << l.zero_cols
       << (l.enabled ? "" : "   (dense)") << "\n";
  }
  os << "overall rate " << std::fixed << std::setprecision(2)
     << report.pruning_rate() << "x, worst enabled block-column occupancy "
     << report.max_col_nonzeros << "\n";
  return os.str();
}

}  // namespace tinyadc::core
