// ISAAC-style pipeline scheduling: stage timing, bottleneck/interval math,
// replication balancing, buffer accounting.
#include <gtest/gtest.h>

#include "hw/pipeline.hpp"
#include "nn/models.hpp"

namespace tinyadc::hw {
namespace {

struct Harness {
  std::unique_ptr<nn::Model> model;
  xbar::MappedNetwork net;
  std::vector<std::int64_t> mvms;
  CostConstants constants;

  Harness() {
    nn::ModelConfig mc;
    mc.num_classes = 4;
    mc.image_size = 8;
    mc.width_mult = 0.0625F;
    model = nn::resnet18(mc);
    xbar::MappingConfig cfg;
    cfg.dims = {16, 16};
    net = xbar::map_model(*model, cfg);
    mvms = mvms_per_inference(*model, {3, 8, 8});
  }
};

TEST(Pipeline, IntervalIsSlowestStage) {
  Harness s;
  const auto schedule = schedule_pipeline(s.net, s.mvms, s.constants);
  ASSERT_EQ(schedule.stages.size(), s.net.layers.size());
  double worst = 0.0;
  for (const auto& st : schedule.stages)
    worst = std::max(worst, st.effective_time_s);
  EXPECT_DOUBLE_EQ(schedule.interval_s, worst);
  EXPECT_GT(schedule.fps(), 0.0);
}

TEST(Pipeline, FillLatencyIsSumOfStages) {
  Harness s;
  const auto schedule = schedule_pipeline(s.net, s.mvms, s.constants);
  double sum = 0.0;
  for (const auto& st : schedule.stages) sum += st.effective_time_s;
  EXPECT_NEAR(schedule.fill_latency_s, sum, 1e-15);
  // Pipelining wins over serial execution whenever there are ≥2 stages.
  EXPECT_LT(schedule.interval_s, schedule.fill_latency_s);
}

TEST(Pipeline, EarlyLayersDominateUnbalanced) {
  // The stem conv runs 64 MVMs while layer4 runs 1 — the early stage must
  // be the bottleneck, exactly ISAAC's motivation for replication.
  Harness s;
  const auto schedule = schedule_pipeline(s.net, s.mvms, s.constants);
  const auto& stem = schedule.stages.front();
  EXPECT_DOUBLE_EQ(schedule.interval_s, stem.effective_time_s);
}

TEST(Pipeline, BalancingHitsTargetInterval) {
  Harness s;
  const auto base = schedule_pipeline(s.net, s.mvms, s.constants);
  const double target = base.interval_s / 4.0;
  const auto balanced = balance_pipeline(s.net, s.mvms, s.constants, target);
  EXPECT_LE(balanced.interval_s, target * (1.0 + 1e-9));
  EXPECT_GT(balanced.extra_arrays, 0);
  // Replication is minimal: no stage is replicated beyond what its own
  // stage time requires.
  for (const auto& st : balanced.stages) {
    if (st.replication > 1)
      EXPECT_GT(st.stage_time_s / (st.replication - 1), target);
  }
}

TEST(Pipeline, BalancingToOwnIntervalIsFree) {
  Harness s;
  const auto base = schedule_pipeline(s.net, s.mvms, s.constants);
  const auto same =
      balance_pipeline(s.net, s.mvms, s.constants, base.interval_s * 1.001);
  EXPECT_EQ(same.extra_arrays, 0);
}

TEST(Pipeline, BufferBytesMatchActivationVolume) {
  Harness s;
  const auto schedule = schedule_pipeline(s.net, s.mvms, s.constants);
  // Stem conv: 64 MVMs × cols output activations × 8 bits.
  const auto& stem_layer = s.net.layers.front();
  EXPECT_EQ(schedule.stages.front().buffer_bytes,
            (64 * stem_layer.cols * 8 + 7) / 8);
}

TEST(Pipeline, TableRenders) {
  Harness s;
  const auto schedule = schedule_pipeline(s.net, s.mvms, s.constants);
  const std::string table = to_table(schedule);
  EXPECT_NE(table.find("stem.conv"), std::string::npos);
  EXPECT_NE(table.find("interval"), std::string::npos);
}

TEST(Pipeline, ValidatesInputs) {
  Harness s;
  std::vector<std::int64_t> wrong(2, 1);
  EXPECT_THROW(schedule_pipeline(s.net, wrong, s.constants), CheckError);
  EXPECT_THROW(balance_pipeline(s.net, s.mvms, s.constants, 0.0), CheckError);
}

}  // namespace
}  // namespace tinyadc::hw
