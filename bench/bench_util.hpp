// Shared helpers for the table/figure reproduction harnesses.
//
// Every bench prints the same rows/series the paper reports, computed from
// this repository's substrates. Absolute numbers differ from the paper
// (synthetic data, scaled models, analytic cost model — see DESIGN.md §2);
// the *shape* of each result is the reproduction target and is recorded
// against the paper in EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/pruner.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "xbar/mapping.hpp"

namespace tinyadc::bench {

/// True when TINYADC_BENCH_QUICK=1 — trims sweeps for smoke runs.
inline bool quick_mode() {
  const char* v = std::getenv("TINYADC_BENCH_QUICK");
  return v != nullptr && v[0] == '1';
}

/// Training-scale dataset for a tier: shrunk to CPU-seconds size.
inline data::DatasetPair bench_dataset(const std::string& tier) {
  data::SyntheticSpec spec = data::tier_by_name(tier);
  spec.image_size = 8;
  spec.train_per_class = quick_mode() ? 12 : 24;
  spec.test_per_class = 8;
  if (tier == "cifar100") spec.num_classes = 10;  // keep CPU budget sane
  if (tier == "imagenet") spec.num_classes = 12;
  return data::make_synthetic(spec);
}

/// Width-scaled model for training benches.
inline std::unique_ptr<nn::Model> bench_model(const std::string& net,
                                              std::int64_t num_classes) {
  nn::ModelConfig cfg;
  cfg.num_classes = num_classes;
  cfg.image_size = 8;
  cfg.width_mult = 0.125F;
  return nn::build_model(net, cfg);
}

/// Full-width model (paper layer shapes) for hardware-cost benches that
/// need no training.
inline std::unique_ptr<nn::Model> full_width_model(const std::string& net,
                                                   std::int64_t num_classes) {
  nn::ModelConfig cfg;
  cfg.num_classes = num_classes;
  cfg.image_size = 32;
  cfg.width_mult = 1.0F;
  return nn::build_model(net, cfg);
}

/// The standard pipeline schedule used by all training benches.
inline core::PipelineConfig bench_pipeline(core::CrossbarDims xbar) {
  core::PipelineConfig cfg;
  cfg.xbar = xbar;
  const int scale = quick_mode() ? 1 : 2;
  cfg.pretrain.epochs = 5 * scale;
  cfg.pretrain.batch_size = 32;
  cfg.pretrain.sgd.lr = 0.05F;
  cfg.pretrain.sgd.total_epochs = cfg.pretrain.epochs;
  cfg.admm.epochs = 3 * scale;
  cfg.admm.batch_size = 32;
  cfg.admm.sgd.lr = 0.02F;
  cfg.admm.sgd.total_epochs = cfg.admm.epochs;
  cfg.admm_params.rho = 0.1F;
  cfg.retrain.epochs = 3 * scale;
  cfg.retrain.batch_size = 32;
  cfg.retrain.sgd.lr = 0.01F;
  cfg.retrain.sgd.total_epochs = cfg.retrain.epochs;
  return cfg;
}

/// Paper-standard mapping: 128×128 crossbars, 2-bit MLC, 1-bit DAC, 8-bit
/// weights/activations, ISAAC encoding.
inline xbar::MappingConfig paper_mapping() { return xbar::MappingConfig{}; }

/// Applies CP magnitude projection (no training) to every layer after the
/// first — used by cost-only benches where only the sparsity *structure*
/// matters.
inline void project_cp_inplace(nn::Model& model, std::int64_t cp_rate,
                               core::CrossbarDims dims,
                               bool include_linear = false) {
  auto views = model.prunable_views();
  const std::int64_t keep =
      std::max<std::int64_t>(1, dims.rows / cp_rate);
  for (std::size_t i = 1; i < views.size(); ++i) {
    if (!views[i].is_conv && !include_linear) continue;
    core::MatrixRef ref{views[i].weight->value.data(), views[i].rows,
                        views[i].cols};
    core::project_column_proportional(ref, dims, keep);
  }
}

/// Horizontal rule for table output.
inline void hr(int width = 86) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// FNV-1a digest of raw output bytes — the bit-identity check of the thread
/// sweeps (same kernel, different thread counts, digests must match).
inline std::uint64_t fnv1a(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; ++i) h = (h ^ p[i]) * 1099511628211ULL;
  return h;
}

/// One row of a kernel thread-sweep: wall time of a fixed amount of work at
/// one thread count, plus whether the output was bit-identical to the
/// 1-thread run of the same kernel (the runtime's determinism contract).
struct KernelTiming {
  std::string kernel;     ///< kernel name, e.g. "gemm_256"
  int threads = 1;        ///< TINYADC_THREADS value used
  double ms = 0.0;        ///< wall time in milliseconds
  bool identical = true;  ///< output bytes match the 1-thread run
};

/// Resolves the bench JSON output path: `--json <path>` on the command line
/// wins, else the TINYADC_BENCH_JSON environment variable, else "".
inline std::string bench_json_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  const char* env = std::getenv("TINYADC_BENCH_JSON");
  return env != nullptr ? env : "";
}

/// Writes sweep rows as a JSON document:
///   {"bench": <name>, "results": [{"kernel": ..., "threads": ...,
///    "ms": ..., "identical_to_1thread": ...}, ...]}
/// Returns false (after printing to stderr) if the file cannot be written.
inline bool write_bench_json(const std::string& path, const std::string& name,
                             const std::vector<KernelTiming>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write bench JSON to %s\n", path.c_str());
    return false;
  }
  out << "{\n  \"bench\": \"" << name << "\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const KernelTiming& r = rows[i];
    out << "    {\"kernel\": \"" << r.kernel << "\", \"threads\": " << r.threads
        << ", \"ms\": " << r.ms << ", \"identical_to_1thread\": "
        << (r.identical ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.good();
}

}  // namespace tinyadc::bench
