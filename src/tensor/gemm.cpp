#include "gemm.hpp"

#include "runtime/parallel.hpp"

namespace tinyadc {

namespace {

// Copies op(A)'s (M×K) contents into `buf` row-major so the inner kernel
// always streams contiguously.
void materialize_op(const Tensor& a, bool transpose, std::int64_t rows,
                    std::int64_t cols, std::vector<float>& buf) {
  buf.resize(static_cast<std::size_t>(rows * cols));
  const float* p = a.data();
  if (!transpose) {
    std::copy(p, p + rows * cols, buf.begin());
  } else {
    // a is (cols × rows) stored row-major; we want its transpose.
    for (std::int64_t i = 0; i < rows; ++i)
      for (std::int64_t j = 0; j < cols; ++j)
        buf[static_cast<std::size_t>(i * cols + j)] = p[j * rows + i];
  }
}

// Rows per parallel chunk: ~64k flops each so small GEMMs stay on the
// caller and large ones split into enough chunks to balance the lanes.
std::int64_t row_grain(std::int64_t k, std::int64_t n) {
  const std::int64_t flops_per_row = std::max<std::int64_t>(1, 2 * k * n);
  return std::max<std::int64_t>(1, 65536 / flops_per_row);
}

}  // namespace

void gemm(const Tensor& a, bool transpose_a, const Tensor& b, bool transpose_b,
          Tensor& c, float alpha, float beta) {
  TINYADC_CHECK(a.ndim() == 2 && b.ndim() == 2 && c.ndim() == 2,
                "gemm requires 2-D tensors, got " << a.ndim() << "/" << b.ndim()
                                                  << "/" << c.ndim());
  const std::int64_t m = transpose_a ? a.dim(1) : a.dim(0);
  const std::int64_t k = transpose_a ? a.dim(0) : a.dim(1);
  const std::int64_t kb = transpose_b ? b.dim(1) : b.dim(0);
  const std::int64_t n = transpose_b ? b.dim(0) : b.dim(1);
  TINYADC_CHECK(k == kb, "gemm inner-dimension mismatch: " << k << " vs " << kb);
  TINYADC_CHECK(c.dim(0) == m && c.dim(1) == n,
                "gemm output shape " << shape_to_string(c.shape())
                                     << " != [" << m << ", " << n << "]");

  // Materializing transposed operands keeps one hot inner loop. The scratch
  // is per-call: the former `static thread_local` buffers aliased whenever
  // gemm re-entered on the same thread (nested calls, pooled workers).
  std::vector<float> abuf;
  std::vector<float> bbuf;
  const float* pa = a.data();
  const float* pb = b.data();
  if (transpose_a) {
    materialize_op(a, true, m, k, abuf);
    pa = abuf.data();
  }
  if (transpose_b) {
    materialize_op(b, true, k, n, bbuf);
    pb = bbuf.data();
  }

  // Row blocks are independent (each writes its own C rows) and every row's
  // update sequence is the same at any partitioning, so the parallel result
  // is bit-identical to the serial one.
  float* pc = c.data();
  constexpr std::int64_t kBlock = 64;
  runtime::parallel_for(
      0, m, row_grain(k, n), [&](std::int64_t i0, std::int64_t i1) {
        if (beta == 0.0F) {
          std::fill(pc + i0 * n, pc + i1 * n, 0.0F);
        } else if (beta != 1.0F) {
          for (std::int64_t i = i0 * n; i < i1 * n; ++i) pc[i] *= beta;
        }
        // i-k-j ordering: the innermost loop runs over contiguous rows of B
        // and C.
        for (std::int64_t k0 = 0; k0 < k; k0 += kBlock) {
          const std::int64_t k1 = std::min(k, k0 + kBlock);
          for (std::int64_t i = i0; i < i1; ++i) {
            float* crow = pc + i * n;
            for (std::int64_t kk = k0; kk < k1; ++kk) {
              const float av = alpha * pa[i * k + kk];
              if (av == 0.0F) continue;
              const float* brow = pb + kk * n;
              for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
            }
          }
        }
      });
}

Tensor matmul(const Tensor& a, const Tensor& b, bool transpose_a,
              bool transpose_b) {
  const std::int64_t m = transpose_a ? a.dim(1) : a.dim(0);
  const std::int64_t n = transpose_b ? b.dim(0) : b.dim(1);
  Tensor c({m, n});
  gemm(a, transpose_a, b, transpose_b, c);
  return c;
}

Tensor matvec(const Tensor& a, const Tensor& x) {
  TINYADC_CHECK(a.ndim() == 2 && x.ndim() == 1,
                "matvec requires (2-D, 1-D), got " << a.ndim() << "-D and "
                                                   << x.ndim() << "-D");
  TINYADC_CHECK(a.dim(1) == x.dim(0),
                "matvec dimension mismatch: " << a.dim(1) << " vs "
                                              << x.dim(0));
  const std::int64_t m = a.dim(0);
  const std::int64_t n = a.dim(1);
  Tensor y({m});
  const float* pa = a.data();
  const float* px = x.data();
  float* py = y.data();
  runtime::parallel_for(
      0, m, row_grain(n, 1), [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          double acc = 0.0;
          const float* row = pa + i * n;
          for (std::int64_t j = 0; j < n; ++j)
            acc += static_cast<double>(row[j]) * px[j];
          py[i] = static_cast<float>(acc);
        }
      });
  return y;
}

}  // namespace tinyadc
