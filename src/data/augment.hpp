// Training-time data augmentation (random shift / horizontal flip / noise —
// the standard CIFAR recipe the paper's training uses).
#pragma once

#include "data/dataset.hpp"

namespace tinyadc::data {

/// Augmentation knobs. Defaults mirror the common CIFAR recipe scaled to
/// our image sizes.
struct AugmentConfig {
  std::int64_t max_shift = 1;  ///< random translation in pixels (zero-pad)
  bool hflip = true;           ///< random horizontal flip (p = 0.5)
  float noise = 0.0F;          ///< additive Gaussian pixel noise stddev

  /// True if any transform is enabled.
  bool active() const {
    return max_shift > 0 || hflip || noise > 0.0F;
  }
};

/// Augments a batch in place (independent draw per image).
void augment_batch(Batch& batch, const AugmentConfig& config, Rng& rng);

}  // namespace tinyadc::data
