// Exactness (P2) across the MLC design space: every (cell_bits,
// weight_bits, dac_bits) combination the mapper accepts must keep the
// analog MVM bit-exact under Eq. 1 sizing — the paper's claim is not
// specific to the 2-bit-MLC/8-bit-weight default.
#include <gtest/gtest.h>

#include <tuple>

#include "msim/analog_mvm.hpp"
#include "tensor/ops.hpp"

namespace tinyadc::msim {
namespace {

class CellDesignSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CellDesignSweep, AnalogMvmBitExact) {
  const auto [cell_bits, weight_bits, dac_bits] = GetParam();
  xbar::MappingConfig cfg;
  cfg.dims = {8, 8};
  cfg.cell_bits = cell_bits;
  cfg.weight_bits = weight_bits;
  cfg.dac_bits = dac_bits;
  cfg.input_bits = 6;

  Rng rng(static_cast<std::uint64_t>(cell_bits * 100 + weight_bits * 10 +
                                     dac_bits));
  Tensor m = Tensor::randn({12, 7}, rng);
  const auto layer = xbar::map_matrix(m, "l", cfg);
  EXPECT_EQ(layer.arrays_per_block(),
            2 * xbar::cells_per_weight(weight_bits, cell_bits));

  AnalogLayerSim sim(layer, {});
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<std::int32_t> x(12);
    for (auto& v : x) v = static_cast<std::int32_t>(rng.uniform_int(64));
    EXPECT_EQ(sim.mvm(x), xbar::reference_mvm(layer, x))
        << "cell=" << cell_bits << " weight=" << weight_bits
        << " dac=" << dac_bits;
  }
  // Adversarial all-max input.
  std::vector<std::int32_t> worst(12, 63);
  EXPECT_EQ(sim.mvm(worst), xbar::reference_mvm(layer, worst));
  EXPECT_EQ(sim.stats().adc_clip_events, 0);
}

INSTANTIATE_TEST_SUITE_P(Designs, CellDesignSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(4, 6, 8),
                                            ::testing::Values(1, 2)));

TEST(CellDesign, DemapAccuracyScalesWithWeightBits) {
  // More weight bits → finer quantization → smaller demap error.
  Rng rng(5);
  Tensor m = Tensor::randn({16, 8}, rng);
  double prev_err = 1e9;
  for (int bits : {4, 6, 8, 10}) {
    xbar::MappingConfig cfg;
    cfg.dims = {8, 8};
    cfg.weight_bits = bits;
    const auto layer = xbar::map_matrix(m, "l", cfg);
    const double err = max_abs_diff(layer.demap(), m);
    EXPECT_LT(err, prev_err);
    prev_err = err;
  }
}

}  // namespace
}  // namespace tinyadc::msim
