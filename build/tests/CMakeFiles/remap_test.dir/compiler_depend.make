# Empty compiler generated dependencies file for remap_test.
# This may be replaced when dependencies are built.
