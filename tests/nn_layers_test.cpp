// Layer-level tests: output shapes, known values, and — most importantly —
// numerical gradient checks of every backward pass against central finite
// differences (the strongest correctness evidence an explicit-backprop
// stack can have).
#include <gtest/gtest.h>

#include <memory>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "nn/sequential.hpp"
#include "tensor/ops.hpp"

namespace tinyadc::nn {
namespace {

/// Scalar loss L = <layer(x), G> used for gradient checking.
double loss_of(Layer& layer, const Tensor& x, const Tensor& g) {
  Tensor y = layer.forward(x, /*training=*/true);
  return sum(mul(y, g));
}

/// Checks dL/dx and dL/dθ against central differences.
void gradient_check(Layer& layer, Tensor x, double tol = 2e-2) {
  Rng rng(99);
  Tensor y0 = layer.forward(x, true);
  Tensor g = Tensor::randn(y0.shape(), rng);

  // Analytic gradients.
  for (Param* p : layer.params()) p->zero_grad();
  layer.forward(x, true);
  Tensor gx = layer.backward(g);

  const float eps = 1e-2F;
  // Input gradient.
  for (std::int64_t i = 0; i < std::min<std::int64_t>(x.numel(), 24); ++i) {
    const float orig = x.at(i);
    x.at(i) = orig + eps;
    const double lp = loss_of(layer, x, g);
    x.at(i) = orig - eps;
    const double lm = loss_of(layer, x, g);
    x.at(i) = orig;
    const double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(gx.at(i), numeric, tol * (std::abs(numeric) + 1.0))
        << "input grad mismatch at " << i;
  }
  // Parameter gradients.
  for (Param* p : layer.params()) {
    for (std::int64_t i = 0; i < std::min<std::int64_t>(p->value.numel(), 16);
         ++i) {
      const float orig = p->value.at(i);
      p->value.at(i) = orig + eps;
      const double lp = loss_of(layer, x, g);
      p->value.at(i) = orig - eps;
      const double lm = loss_of(layer, x, g);
      p->value.at(i) = orig;
      const double numeric = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR(p->grad.at(i), numeric, tol * (std::abs(numeric) + 1.0))
          << "param " << p->name << " grad mismatch at " << i;
    }
  }
}

TEST(Conv2d, OutputShape) {
  Rng rng(1);
  Conv2d conv("c", 3, 8, 3, 1, 1, true, rng);
  Tensor x = Tensor::randn({2, 3, 6, 6}, rng);
  Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), Shape({2, 8, 6, 6}));
}

TEST(Conv2d, StrideAndPaddingShape) {
  Rng rng(1);
  Conv2d conv("c", 2, 4, 3, 2, 1, false, rng);
  Tensor x = Tensor::randn({1, 2, 8, 8}, rng);
  EXPECT_EQ(conv.forward(x, false).shape(), Shape({1, 4, 4, 4}));
}

TEST(Conv2d, KnownValueIdentityKernel) {
  Rng rng(1);
  Conv2d conv("c", 1, 1, 1, 1, 0, false, rng);
  conv.weight().value.fill(2.0F);
  Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor y = conv.forward(x, false);
  EXPECT_TRUE(allclose(y.reshape({4}), Tensor::from({2, 4, 6, 8})));
}

TEST(Conv2d, BiasIsAddedPerFilter) {
  Rng rng(1);
  Conv2d conv("c", 1, 2, 1, 1, 0, true, rng);
  conv.weight().value.fill(0.0F);
  conv.bias().value.at(0) = 1.5F;
  conv.bias().value.at(1) = -2.0F;
  Tensor x = Tensor::zeros({1, 1, 2, 2});
  Tensor y = conv.forward(x, false);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 1.5F);
  EXPECT_FLOAT_EQ(y.at4(0, 1, 1, 1), -2.0F);
}

TEST(Conv2d, GradientCheck) {
  Rng rng(7);
  Conv2d conv("c", 2, 3, 3, 1, 1, true, rng);
  gradient_check(conv, Tensor::randn({2, 2, 4, 4}, rng));
}

TEST(Conv2d, GradientCheckStride2NoBias) {
  Rng rng(8);
  Conv2d conv("c", 2, 2, 3, 2, 1, false, rng);
  gradient_check(conv, Tensor::randn({1, 2, 5, 5}, rng));
}

TEST(Conv2d, BackwardWithoutForwardThrows) {
  Rng rng(1);
  Conv2d conv("c", 1, 1, 3, 1, 1, false, rng);
  Tensor g({1, 1, 4, 4});
  EXPECT_THROW(conv.backward(g), CheckError);
}

TEST(Linear, OutputAndKnownValue) {
  Rng rng(2);
  Linear fc("fc", 3, 2, true, rng);
  fc.weight().value = Tensor({2, 3}, {1, 0, 0, 0, 1, 0});
  fc.bias().value = Tensor::from({0.5F, -0.5F});
  Tensor x({1, 3}, {10, 20, 30});
  Tensor y = fc.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 10.5F);
  EXPECT_FLOAT_EQ(y.at(0, 1), 19.5F);
}

TEST(Linear, GradientCheck) {
  Rng rng(9);
  Linear fc("fc", 5, 4, true, rng);
  gradient_check(fc, Tensor::randn({3, 5}, rng));
}

TEST(Linear, RejectsWrongInputWidth) {
  Rng rng(1);
  Linear fc("fc", 3, 2, false, rng);
  Tensor x({1, 4});
  EXPECT_THROW(fc.forward(x, false), CheckError);
}

TEST(BatchNorm2d, NormalizesBatchStatistics) {
  Rng rng(3);
  BatchNorm2d bn("bn", 2);
  Tensor x = Tensor::randn({8, 2, 3, 3}, rng, 5.0F);
  Tensor y = bn.forward(x, true);
  // Per-channel mean ≈ 0, var ≈ 1 after normalization with γ=1, β=0.
  for (int c = 0; c < 2; ++c) {
    double s = 0.0, sq = 0.0;
    int n = 0;
    for (int b = 0; b < 8; ++b)
      for (int i = 0; i < 9; ++i) {
        const float v = y.at4(b, c, i / 3, i % 3);
        s += v;
        sq += v * v;
        ++n;
      }
    EXPECT_NEAR(s / n, 0.0, 1e-4);
    EXPECT_NEAR(sq / n, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, EvalUsesRunningStats) {
  Rng rng(4);
  BatchNorm2d bn("bn", 1);
  Tensor x = Tensor::full({4, 1, 2, 2}, 10.0F);
  // Without any training forward, running stats are mean 0 / var 1.
  Tensor y = bn.forward(x, false);
  EXPECT_NEAR(y.at(0), 10.0F, 1e-3F);
  // After many training passes on constant-10 data the running mean → 10.
  for (int i = 0; i < 200; ++i) bn.forward(x, true);
  Tensor y2 = bn.forward(x, false);
  EXPECT_NEAR(y2.at(0), 0.0F, 0.1F);
}

TEST(BatchNorm2d, GradientCheck) {
  Rng rng(10);
  BatchNorm2d bn("bn", 3);
  gradient_check(bn, Tensor::randn({4, 3, 2, 2}, rng), 5e-2);
}

TEST(ReLU, ForwardClampsNegatives) {
  ReLU relu("r");
  Tensor x = Tensor::from({-1, 0, 2});
  Tensor y = relu.forward(x, false);
  EXPECT_TRUE(allclose(y, Tensor::from({0, 0, 2})));
}

TEST(ReLU, GradientMasksNegativeInputs) {
  ReLU relu("r");
  Tensor x = Tensor::from({-1, 1, 2});
  relu.forward(x, true);
  Tensor g = relu.backward(Tensor::from({10, 10, 10}));
  EXPECT_TRUE(allclose(g, Tensor::from({0, 10, 10})));
}

TEST(Flatten, RoundTripsShape) {
  Flatten f("f");
  Tensor x = Tensor::ones({2, 3, 4, 5});
  Tensor y = f.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({2, 60}));
  Tensor g = f.backward(Tensor::ones({2, 60}));
  EXPECT_EQ(g.shape(), x.shape());
}

TEST(Dropout, EvalIsIdentity) {
  Dropout d("d", 0.5F, 1);
  Tensor x = Tensor::ones({100});
  Tensor y = d.forward(x, false);
  EXPECT_TRUE(allclose(y, x));
}

TEST(Dropout, TrainingPreservesExpectation) {
  Dropout d("d", 0.5F, 2);
  Tensor x = Tensor::ones({20000});
  Tensor y = d.forward(x, true);
  EXPECT_NEAR(mean(y), 1.0, 0.05);  // inverted dropout keeps E[y] = x
}

TEST(MaxPool2d, KnownValues) {
  MaxPool2d pool("p", 2, 2);
  Tensor x({1, 1, 2, 2}, {1, 5, 3, 2});
  Tensor y = pool.forward(x, false);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y.at(0), 5.0F);
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  MaxPool2d pool("p", 2, 2);
  Tensor x({1, 1, 2, 2}, {1, 5, 3, 2});
  pool.forward(x, true);
  Tensor g = pool.backward(Tensor::full({1, 1, 1, 1}, 7.0F));
  EXPECT_TRUE(
      allclose(g.reshape({4}), Tensor::from({0, 7, 0, 0})));
}

TEST(AvgPool2d, KnownValuesAndGradient) {
  AvgPool2d pool("p", 2, 2);
  Tensor x({1, 1, 2, 2}, {1, 2, 3, 6});
  Tensor y = pool.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0), 3.0F);
  Tensor g = pool.backward(Tensor::full({1, 1, 1, 1}, 4.0F));
  EXPECT_TRUE(allclose(g.reshape({4}), Tensor::from({1, 1, 1, 1})));
}

TEST(GlobalAvgPool, ReducesToPerChannelMean) {
  GlobalAvgPool gap("g");
  Tensor x({1, 2, 2, 2}, {1, 1, 1, 1, 2, 4, 6, 8});
  Tensor y = gap.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({1, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0), 1.0F);
  EXPECT_FLOAT_EQ(y.at(0, 1), 5.0F);
  Tensor g = gap.backward(Tensor::from({4.0F, 8.0F}).reshape({1, 2}));
  EXPECT_FLOAT_EQ(g.at4(0, 0, 0, 0), 1.0F);
  EXPECT_FLOAT_EQ(g.at4(0, 1, 1, 1), 2.0F);
}

TEST(Sequential, ChainsForwardAndBackward) {
  Rng rng(11);
  auto seq = std::make_unique<Sequential>("s");
  seq->emplace<Linear>("fc1", 4, 6, true, rng);
  seq->emplace<ReLU>("r");
  seq->emplace<Linear>("fc2", 6, 2, true, rng);
  gradient_check(*seq, Tensor::randn({3, 4}, rng));
}

TEST(Residual, IdentityShortcutGradient) {
  Rng rng(12);
  auto main = std::make_unique<Sequential>("m");
  main->emplace<Conv2d>("c1", 2, 2, 3, 1, 1, false, rng);
  Residual res("res", std::move(main), nullptr);
  gradient_check(res, Tensor::randn({2, 2, 3, 3}, rng));
}

TEST(Residual, ProjectionShortcutGradient) {
  Rng rng(13);
  auto main = std::make_unique<Sequential>("m");
  main->emplace<Conv2d>("c1", 2, 4, 3, 2, 1, false, rng);
  auto sc = std::make_unique<Sequential>("s");
  sc->emplace<Conv2d>("cs", 2, 4, 1, 2, 0, false, rng);
  Residual res("res", std::move(main), std::move(sc));
  gradient_check(res, Tensor::randn({1, 2, 4, 4}, rng));
}

TEST(Residual, VisitReachesAllChildren) {
  Rng rng(14);
  auto main = std::make_unique<Sequential>("m");
  main->emplace<Conv2d>("c1", 2, 2, 3, 1, 1, false, rng);
  auto sc = std::make_unique<Sequential>("s");
  sc->emplace<Conv2d>("cs", 2, 2, 1, 1, 0, false, rng);
  Residual res("res", std::move(main), std::move(sc));
  int count = 0;
  res.visit([&count](Layer&) { ++count; });
  EXPECT_EQ(count, 5);  // res + 2 sequentials + 2 convs
}

}  // namespace
}  // namespace tinyadc::nn
