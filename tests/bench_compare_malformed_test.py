#!/usr/bin/env python3
"""bench_compare must fail cleanly — one diagnostic line, no traceback —
when the candidate JSON is malformed or truncated (e.g. a bench binary
killed mid-write). Usage: bench_compare_malformed_test.py BENCH_COMPARE
BASELINE.json
"""

import os
import subprocess
import sys
import tempfile


def run_case(script, baseline, content, expect_phrase):
    fd, path = tempfile.mkstemp(suffix=".json")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            f.write(content)
        proc = subprocess.run(
            [sys.executable, script, baseline, path],
            capture_output=True, text=True, check=False)
        combined = proc.stdout + proc.stderr
        if proc.returncode == 0:
            print(f"FAIL: exit 0 on malformed input {content!r}")
            return False
        if "Traceback" in combined:
            print(f"FAIL: traceback leaked for input {content!r}:\n{combined}")
            return False
        if expect_phrase not in combined:
            print(f"FAIL: diagnostic {expect_phrase!r} missing for input "
                  f"{content!r}; got:\n{combined}")
            return False
        return True
    finally:
        os.unlink(path)


def main():
    script, baseline = sys.argv[1], sys.argv[2]
    cases = [
        # Truncated mid-array: the interrupted-bench shape.
        ('{"results": [{"kernel": "x", "threads": 1, "ms": 1.0',
         "not valid JSON"),
        # Not JSON at all.
        ("hello world", "not valid JSON"),
        # Valid JSON, wrong shape.
        ('{"rows": []}', "not a bench report"),
        ('[1, 2, 3]', "not a bench report"),
        # Bench report with a broken row.
        ('{"results": [{"kernel": "x"}]}', "malformed results row"),
    ]
    ok = all(run_case(script, baseline, content, phrase)
             for content, phrase in cases)
    if ok:
        print("OK: all malformed inputs fail with clean diagnostics")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
