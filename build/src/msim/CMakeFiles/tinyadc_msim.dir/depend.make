# Empty dependencies file for tinyadc_msim.
# This may be replaced when dependencies are built.
