#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/check.hpp"

namespace tinyadc::nn {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::int64_t>& labels) {
  TINYADC_CHECK(logits.ndim() == 2, "loss expects (N, K) logits");
  const std::int64_t n = logits.dim(0);
  const std::int64_t k = logits.dim(1);
  TINYADC_CHECK(static_cast<std::int64_t>(labels.size()) == n,
                "label count " << labels.size() << " != batch " << n);

  LossResult result;
  result.grad_logits = Tensor(logits.shape());
  const float* in = logits.data();
  float* g = result.grad_logits.data();
  double total = 0.0;
  const float inv_n = 1.0F / static_cast<float>(n);

  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t label = labels[static_cast<std::size_t>(i)];
    TINYADC_CHECK(label >= 0 && label < k,
                  "label " << label << " out of range [0, " << k << ")");
    const float* row = in + i * k;
    float row_max = row[0];
    std::int64_t arg = 0;
    for (std::int64_t j = 1; j < k; ++j)
      if (row[j] > row_max) {
        row_max = row[j];
        arg = j;
      }
    if (arg == label) ++result.correct;

    double denom = 0.0;
    for (std::int64_t j = 0; j < k; ++j)
      denom += std::exp(static_cast<double>(row[j] - row_max));
    const double log_denom = std::log(denom);
    total += log_denom - (row[label] - row_max);

    float* grow = g + i * k;
    for (std::int64_t j = 0; j < k; ++j) {
      const double p = std::exp(static_cast<double>(row[j] - row_max)) / denom;
      grow[j] = static_cast<float>(p) * inv_n;
    }
    grow[label] -= inv_n;
  }
  result.loss = total / static_cast<double>(n);
  return result;
}

double topk_accuracy(const Tensor& logits,
                     const std::vector<std::int64_t>& labels, int k) {
  TINYADC_CHECK(logits.ndim() == 2, "topk expects (N, K) logits");
  TINYADC_CHECK(k >= 1, "k must be >= 1");
  const std::int64_t n = logits.dim(0);
  const std::int64_t classes = logits.dim(1);
  TINYADC_CHECK(static_cast<std::int64_t>(labels.size()) == n,
                "label count mismatch");
  const float* in = logits.data();
  std::int64_t hits = 0;
  std::vector<std::int64_t> order(static_cast<std::size_t>(classes));
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = in + i * classes;
    for (std::int64_t j = 0; j < classes; ++j)
      order[static_cast<std::size_t>(j)] = j;
    const auto kk = std::min<std::int64_t>(k, classes);
    std::partial_sort(order.begin(), order.begin() + kk, order.end(),
                      [row](std::int64_t a, std::int64_t b) {
                        return row[a] > row[b];
                      });
    const std::int64_t label = labels[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < kk; ++j)
      if (order[static_cast<std::size_t>(j)] == label) {
        ++hits;
        break;
      }
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

}  // namespace tinyadc::nn
