// Per-inference energy and latency estimation for a mapped network.
//
// Analytical model with explicit (documented) assumptions, sufficient for
// relative comparisons between dense and pruned designs:
//  * one MVM = one application of a layer's input vector (conv layers run
//    one MVM per output pixel, FC layers one per image);
//  * a v-bit DAC streams ceil(input_bits / v) cycles per MVM;
//  * every physical array (slice plane × polarity) owns one ADC shared by
//    its `block.cols` columns, so an activation costs `cols` conversions
//    on that ADC; all arrays convert in parallel, layers run serially
//    (conservative vs ISAAC's inter-layer pipelining — stated in the
//    report);
//  * energy = conversions · E_adc(bits) + array/DAC activation energy per
//    cycle + resolution-scaled digital (S&H, shift&add, registers, buffer)
//    power integrated over the layer's active time.
#pragma once

#include "hw/cost_model.hpp"
#include "nn/model.hpp"

namespace tinyadc::hw {

/// Per-layer inference-cost breakdown.
struct LayerInferenceCost {
  std::string name;
  std::int64_t mvms = 0;             ///< MVMs this layer runs per image
  std::int64_t adc_conversions = 0;  ///< total conversions per image
  double latency_s = 0.0;            ///< serialized layer latency
  double energy_j = 0.0;             ///< total energy per image
};

/// Whole-network per-image cost.
struct InferenceCost {
  std::vector<LayerInferenceCost> layers;
  double latency_s = 0.0;        ///< Σ layer latencies (no pipelining)
  double energy_j = 0.0;         ///< Σ layer energies
  double adc_energy_j = 0.0;     ///< ADC share of energy
  double array_energy_j = 0.0;   ///< crossbar read share
  double dac_energy_j = 0.0;     ///< DAC share
  double digital_energy_j = 0.0; ///< S&H + shift&add + registers + buffers

  /// Images per second at this latency (serial execution).
  double fps() const { return latency_s > 0.0 ? 1.0 / latency_s : 0.0; }
  /// Images per joule.
  double images_per_joule() const {
    return energy_j > 0.0 ? 1.0 / energy_j : 0.0;
  }
};

/// MVM counts per prunable layer for one image of `input_shape`
/// (C, H, W): conv layers contribute out_h·out_w, FC layers 1. Runs a
/// single dummy forward pass to resolve spatial geometry.
std::vector<std::int64_t> mvms_per_inference(nn::Model& model,
                                             const Shape& input_shape);

/// Estimates per-image latency/energy for `net` (aligned with
/// `mvms_per_layer`, e.g. from mvms_per_inference). The first layer's ADC
/// resolution is held at the dense design value when
/// `full_first_layer_adc` is set, matching build_accelerator.
InferenceCost estimate_inference(const xbar::MappedNetwork& net,
                                 const std::vector<std::int64_t>&
                                     mvms_per_layer,
                                 const CostConstants& constants,
                                 bool full_first_layer_adc = true);

}  // namespace tinyadc::hw
