#include "msim/adc.hpp"

#include <cmath>

#include "tensor/check.hpp"

namespace tinyadc::msim {

Adc::Adc(int bits) : bits_(bits) {
  TINYADC_CHECK(bits >= 0 && bits <= 24, "ADC bits must be in [0, 24]");
  full_scale_ = bits == 0 ? 0 : (std::int64_t{1} << bits) - 1;
}

std::int64_t Adc::convert(double analog_sum) const {
  AdcCounters counters;
  const std::int64_t code = convert(analog_sum, counters);
  conversions_ += counters.conversions;
  clip_events_ += counters.clip_events;
  return code;
}

std::int64_t Adc::convert(double analog_sum, AdcCounters& counters) const {
  ++counters.conversions;
  if (bits_ == 0) return 0;
  auto code = static_cast<std::int64_t>(std::llround(analog_sum));
  if (code < 0) code = 0;
  if (code > full_scale_) {
    code = full_scale_;
    ++counters.clip_events;
  }
  return code;
}

void Adc::absorb(const AdcCounters& counters) {
  conversions_ += counters.conversions;
  clip_events_ += counters.clip_events;
}

void Adc::reset_stats() {
  conversions_ = 0;
  clip_events_ = 0;
}

}  // namespace tinyadc::msim
