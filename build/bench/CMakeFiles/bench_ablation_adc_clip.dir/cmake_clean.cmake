file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_adc_clip.dir/bench_ablation_adc_clip.cpp.o"
  "CMakeFiles/bench_ablation_adc_clip.dir/bench_ablation_adc_clip.cpp.o.d"
  "bench_ablation_adc_clip"
  "bench_ablation_adc_clip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_adc_clip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
